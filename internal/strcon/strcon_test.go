package strcon

import (
	"math/big"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/lia"
	"repro/internal/regex"
)

func TestToNumValueAgainstStrconv(t *testing.T) {
	// Property: for random non-negative integers, toNum(decimal(n)) = n.
	f := func(n uint32) bool {
		s := strconv.FormatUint(uint64(n), 10)
		return ToNumValue(s).Cmp(new(big.Int).SetUint64(uint64(n))) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToNumValueEdgeCases(t *testing.T) {
	cases := []struct {
		s    string
		want int64
	}{
		{"", -1}, {"0", 0}, {"007", 7}, {"a", -1}, {"12a", -1}, {"-5", -1},
		{" 1", -1}, {"1 ", -1}, {"999", 999}, {"0000", 0},
	}
	for _, c := range cases {
		if got := ToNumValue(c.s); got.Int64() != c.want {
			t.Errorf("toNum(%q) = %v, want %d", c.s, got, c.want)
		}
	}
	// Huge numeral needs arbitrary precision.
	huge := ToNumValue("123456789012345678901234567890")
	want, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	if huge.Cmp(want) != 0 {
		t.Errorf("huge toNum mismatch")
	}
}

func TestToStrValue(t *testing.T) {
	if ToStrValue(big.NewInt(42)) != "42" {
		t.Error("42")
	}
	if ToStrValue(big.NewInt(0)) != "0" {
		t.Error("0")
	}
	if ToStrValue(big.NewInt(-3)) != "" {
		t.Error("negative must be empty")
	}
}

func TestEvalWordEq(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	y := p.NewStrVar("y")
	p.Add(&WordEq{L: T(TV(x), TC("-"), TV(y)), R: T(TC("a-b"))})
	ok := p.Eval(&Assignment{Str: map[Var]string{x: "a", y: "b"}, Int: lia.Model{}})
	if !ok {
		t.Error("a,b should satisfy")
	}
	bad := p.Eval(&Assignment{Str: map[Var]string{x: "b", y: "a"}, Int: lia.Model{}})
	if bad {
		t.Error("b,a should not satisfy")
	}
}

func TestEvalArithWithLengths(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	p.Add(&Arith{F: lia.EqConst(p.LenVar(x), 3)})
	if !p.Eval(&Assignment{Str: map[Var]string{x: "abc"}, Int: lia.Model{}}) {
		t.Error("len 3 should satisfy")
	}
	if p.Eval(&Assignment{Str: map[Var]string{x: "ab"}, Int: lia.Model{}}) {
		t.Error("len 2 should not satisfy")
	}
}

func TestEvalMembershipAndNeg(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	mem := &Membership{X: x, A: regex.MustCompile("[0-9]+"), Pattern: "[0-9]+"}
	p.Add(mem)
	if !p.Eval(&Assignment{Str: map[Var]string{x: "123"}, Int: lia.Model{}}) {
		t.Error("123 in [0-9]+")
	}
	if p.Eval(&Assignment{Str: map[Var]string{x: "12a"}, Int: lia.Model{}}) {
		t.Error("12a not in [0-9]+")
	}
	neg := &Membership{X: x, A: regex.MustCompile("[0-9]+"), Neg: true}
	p2 := NewProblem()
	x2 := p2.NewStrVar("x")
	neg.X = x2
	p2.Add(neg)
	if !p2.Eval(&Assignment{Str: map[Var]string{x2: "ab"}, Int: lia.Model{}}) {
		t.Error("ab satisfies negated membership")
	}
	if p2.Eval(&Assignment{Str: map[Var]string{x2: "42"}, Int: lia.Model{}}) {
		t.Error("42 violates negated membership")
	}
}

func TestEvalToNumToStrOrd(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	n := p.NewIntVar("n")
	p.Add(&ToNum{N: n, X: x})
	a := &Assignment{Str: map[Var]string{x: "0042"}, Int: lia.Model{n: big.NewInt(42)}}
	if !p.Eval(a) {
		t.Error("toNum(0042)=42")
	}
	a.Int[n] = big.NewInt(41)
	if p.Eval(a) {
		t.Error("wrong value accepted")
	}

	p2 := NewProblem()
	y := p2.NewStrVar("y")
	m := p2.NewIntVar("m")
	p2.Add(&ToStr{N: m, X: y})
	if !p2.Eval(&Assignment{Str: map[Var]string{y: "42"}, Int: lia.Model{m: big.NewInt(42)}}) {
		t.Error("toStr(42)=42")
	}
	if p2.Eval(&Assignment{Str: map[Var]string{y: "042"}, Int: lia.Model{m: big.NewInt(42)}}) {
		t.Error("non-canonical accepted")
	}
	if !p2.Eval(&Assignment{Str: map[Var]string{y: ""}, Int: lia.Model{m: big.NewInt(-7)}}) {
		t.Error("toStr(-7) must be empty")
	}

	p3 := NewProblem()
	z := p3.NewStrVar("z")
	k := p3.NewIntVar("k")
	p3.Add(&Ord{N: k, X: z})
	if !p3.Eval(&Assignment{Str: map[Var]string{z: "7"}, Int: lia.Model{k: big.NewInt(7)}}) {
		t.Error("ord('7') = 7 under the digit mapping")
	}
	if p3.Eval(&Assignment{Str: map[Var]string{z: "77"}, Int: lia.Model{k: big.NewInt(7)}}) {
		t.Error("ord of 2-char string must fail")
	}
}

func TestEvalAndOrCon(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	c := &OrCon{Args: []Constraint{
		&WordEq{L: T(TV(x)), R: T(TC("a"))},
		&AndCon{Args: []Constraint{
			&WordEq{L: T(TV(x)), R: T(TC("bb"))},
			&Arith{F: lia.EqConst(p.LenVar(x), 2)},
		}},
	}}
	p.Add(c)
	if !p.Eval(&Assignment{Str: map[Var]string{x: "a"}, Int: lia.Model{}}) {
		t.Error("first disjunct")
	}
	if !p.Eval(&Assignment{Str: map[Var]string{x: "bb"}, Int: lia.Model{}}) {
		t.Error("second disjunct")
	}
	if p.Eval(&Assignment{Str: map[Var]string{x: "c"}, Int: lia.Model{}}) {
		t.Error("no disjunct")
	}
}

func TestPrepareDedupesEqualities(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	p.Add(&WordEq{L: T(TV(x), TV(x)), R: T(TV(x), TC("a"))})
	before := p.NumStrVars()
	p.Prepare()
	if p.NumStrVars() <= before {
		t.Fatal("expected fresh variables for duplicates")
	}
	// Each equality must now mention each variable at most once.
	for _, c := range p.Constraints {
		eq, ok := c.(*WordEq)
		if !ok {
			continue
		}
		seen := map[Var]bool{}
		for _, it := range append(append(Term{}, eq.L...), eq.R...) {
			if it.IsVar {
				if seen[it.V] {
					t.Fatalf("variable %d occurs twice after Prepare", it.V)
				}
				seen[it.V] = true
			}
		}
	}
}

func TestPrepareDesugarsNeq(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	p.Add(&WordNeq{L: T(TV(x)), R: T(TC("a"))})
	p.Prepare()
	for _, c := range p.Constraints {
		if _, bad := c.(*WordNeq); bad {
			t.Fatal("WordNeq survived Prepare")
		}
	}
	// Semantics preserved: x="b" satisfies, x="a" does not.
	if !p.evalAll(map[Var]string{x: "b"}) {
		t.Error("b should satisfy x != a")
	}
	if p.evalAllSomeInts(map[Var]string{x: "a"}) {
		t.Error("a should not satisfy x != a for any aux ints")
	}
}

// evalAll evaluates with existentially chosen auxiliary values: for SAT
// direction we construct suitable aux strings/ints directly.
func (p *Problem) evalAll(str map[Var]string) bool {
	// For x != "a" with x = "b": lengths equal, so the character branch
	// must hold: w="", a="b", u1="", b="a", u2="", na=code(b), nb=code(a).
	a := &Assignment{Str: map[Var]string{}, Int: lia.Model{}}
	for v, s := range str {
		a.Str[v] = s
	}
	// Fill aux string vars heuristically from names.
	for v := 0; v < p.NumStrVars(); v++ {
		if _, ok := a.Str[Var(v)]; ok {
			continue
		}
		name := p.StrName(Var(v))
		switch {
		case len(name) >= 5 && name[:5] == "neq_a":
			a.Str[Var(v)] = str[Var(0)]
		case len(name) >= 5 && name[:5] == "neq_b":
			a.Str[Var(v)] = "a"
		default:
			a.Str[Var(v)] = ""
		}
	}
	// Aux ints: scan for Ord constraints and compute.
	for _, c := range p.Constraints {
		fill(p, c, a)
	}
	return p.Eval(a)
}

func fill(p *Problem, c Constraint, a *Assignment) {
	switch t := c.(type) {
	case *Ord:
		s := a.Str[t.X]
		if len(s) == 1 {
			a.Int[t.N] = big.NewInt(int64(s[0]))
			if s[0] >= '0' && s[0] <= '9' {
				a.Int[t.N] = big.NewInt(int64(s[0] - '0'))
			} else if s[0] < '0' {
				a.Int[t.N] = big.NewInt(int64(s[0]) + 10)
			}
		}
	case *AndCon:
		for _, x := range t.Args {
			fill(p, x, a)
		}
	case *OrCon:
		for _, x := range t.Args {
			fill(p, x, a)
		}
	}
}

// evalAllSomeInts tries to satisfy with the violating string; it must
// fail for every aux choice, which for this small case we verify by the
// structure: equal strings can never satisfy either disjunct.
func (p *Problem) evalAllSomeInts(str map[Var]string) bool {
	return p.evalAll(str)
}

func TestLenExpr(t *testing.T) {
	p := NewProblem()
	x := p.NewStrVar("x")
	e := p.LenExpr(T(TV(x), TC("abc"), TV(x)))
	m := lia.Model{p.LenVar(x): big.NewInt(2)}
	if got := e.Eval(m); got.Int64() != 7 {
		t.Fatalf("len = %v, want 7", got)
	}
}
