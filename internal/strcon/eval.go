package strcon

import (
	"math/big"

	"repro/internal/alphabet"
	"repro/internal/lia"
)

// EvalTerm concatenates the term's value under the assignment.
func EvalTerm(t Term, a *Assignment) string {
	out := ""
	for _, it := range t {
		if it.IsVar {
			out += a.Str[it.V]
		} else {
			out += it.Const
		}
	}
	return out
}

// Eval reports whether the assignment satisfies every constraint of the
// problem; it is the validator of §9. String variables missing from the
// assignment are treated as "".
func (p *Problem) Eval(a *Assignment) bool {
	m := p.extend(a)
	for _, c := range p.Constraints {
		if !p.evalCon(c, a, m) {
			return false
		}
	}
	return true
}

// EvalConstraint evaluates one constraint under the assignment.
func (p *Problem) EvalConstraint(c Constraint, a *Assignment) bool {
	return p.evalCon(c, a, p.extend(a))
}

// extend completes the integer model with the length variables implied
// by the string assignment.
func (p *Problem) extend(a *Assignment) lia.Model {
	m := lia.Model{}
	for v, x := range a.Int {
		m[v] = x
	}
	for x, lv := range p.lenVars {
		m[lv] = big.NewInt(int64(len(a.Str[x])))
	}
	return m
}

func (p *Problem) evalCon(c Constraint, a *Assignment, m lia.Model) bool {
	switch t := c.(type) {
	case *WordEq:
		return EvalTerm(t.L, a) == EvalTerm(t.R, a)
	case *WordNeq:
		return EvalTerm(t.L, a) != EvalTerm(t.R, a)
	case *Membership:
		in := t.A.Accepts(alphabet.Encode(a.Str[t.X]))
		return in != t.Neg
	case *Arith:
		return lia.Eval(t.F, m)
	case *ToNum:
		return m.Value(t.N).Cmp(ToNumValue(a.Str[t.X])) == 0
	case *ToStr:
		return a.Str[t.X] == ToStrValue(m.Value(t.N))
	case *Ord:
		s := a.Str[t.X]
		if len(s) != 1 {
			return false
		}
		return m.Value(t.N).Cmp(big.NewInt(int64(alphabet.Code(s[0])))) == 0
	case *AndCon:
		for _, arg := range t.Args {
			if !p.evalCon(arg, a, m) {
				return false
			}
		}
		return true
	case *OrCon:
		for _, arg := range t.Args {
			if p.evalCon(arg, a, m) {
				return true
			}
		}
		return false
	}
	// contract: the constraint set is closed.
	panic("strcon: unknown constraint type")
}
