package strcon

import (
	"fmt"

	"repro/internal/lia"
)

// LenExpr returns the linear expression for the length of a term:
// the sum of the term's variable lengths plus its constant characters.
func (p *Problem) LenExpr(t Term) *lia.LinExpr {
	e := lia.NewLin()
	for _, it := range t {
		if it.IsVar {
			e.AddTermInt(p.LenVar(it.V), 1)
		} else {
			e.AddConst(int64(len(it.Const)))
		}
	}
	return e
}

// Prepare rewrites the problem into the form the decision procedure
// assumes: word disequalities are desugared into equalities plus
// character constraints, and within each equality every string variable
// occurs at most once (repeated occurrences are replaced by fresh
// variables tied back with auxiliary equalities, cf. §7.2). Prepare is
// idempotent.
func (p *Problem) Prepare() {
	var aux []Constraint
	out := make([]Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		out[i] = p.prepCon(c, &aux)
	}
	p.Constraints = append(out, aux...)
	resolveAutomata(p.Constraints)
}

// resolveAutomata forces every Membership constraint's effective
// automaton (including complements) to be computed now. The cache
// inside Membership is written lazily, so resolving it up front makes
// the constraint values safe to share across concurrently solved
// case-split branches.
func resolveAutomata(cons []Constraint) {
	for _, c := range cons {
		switch t := c.(type) {
		case *Membership:
			t.Automaton()
		case *AndCon:
			resolveAutomata(t.Args)
		case *OrCon:
			resolveAutomata(t.Args)
		}
	}
}

func (p *Problem) prepCon(c Constraint, aux *[]Constraint) Constraint {
	switch t := c.(type) {
	case *WordNeq:
		return p.prepCon(p.desugarNeq(t), aux)
	case *WordEq:
		return p.dedupeEq(t, aux)
	case *AndCon:
		args := make([]Constraint, len(t.Args))
		for i, a := range t.Args {
			args[i] = p.prepCon(a, aux)
		}
		return &AndCon{Args: args}
	case *OrCon:
		args := make([]Constraint, len(t.Args))
		for i, a := range t.Args {
			args[i] = p.prepCon(a, aux)
		}
		return &OrCon{Args: args}
	default:
		return c
	}
}

// dedupeEq ensures every variable occurs at most once across both sides
// of the equality, introducing fresh variables and x = x' equalities.
func (p *Problem) dedupeEq(eq *WordEq, aux *[]Constraint) Constraint {
	seen := make(map[Var]bool)
	rewrite := func(t Term) Term {
		out := make(Term, len(t))
		for i, it := range t {
			if !it.IsVar {
				out[i] = it
				continue
			}
			if !seen[it.V] {
				seen[it.V] = true
				out[i] = it
				continue
			}
			fresh := p.NewStrVar(fmt.Sprintf("%s#dup%d", p.StrName(it.V), p.NumStrVars()))
			*aux = append(*aux, &WordEq{L: T(TV(it.V)), R: T(TV(fresh))})
			out[i] = TV(fresh)
		}
		return out
	}
	l := rewrite(eq.L)
	r := rewrite(eq.R)
	return &WordEq{L: l, R: r}
}

// desugarNeq rewrites L != R as "lengths differ, or some position holds
// different characters" using fresh variables (the standard encoding,
// §7.2 / [4]).
func (p *Problem) desugarNeq(ne *WordNeq) Constraint {
	w := p.NewStrVar(fmt.Sprintf("neq_w%d", p.NumStrVars()))
	a := p.NewStrVar(fmt.Sprintf("neq_a%d", p.NumStrVars()))
	u1 := p.NewStrVar(fmt.Sprintf("neq_u%d", p.NumStrVars()))
	b := p.NewStrVar(fmt.Sprintf("neq_b%d", p.NumStrVars()))
	u2 := p.NewStrVar(fmt.Sprintf("neq_v%d", p.NumStrVars()))
	na := p.Lia.Fresh("neq_na")
	nb := p.Lia.Fresh("neq_nb")

	lenDiffer := &Arith{F: lia.Ne(p.LenExpr(ne.L), p.LenExpr(ne.R))}
	charDiffer := &AndCon{Args: []Constraint{
		&WordEq{L: ne.L, R: T(TV(w), TV(a), TV(u1))},
		&WordEq{L: ne.R, R: T(TV(w), TV(b), TV(u2))},
		&Ord{N: na, X: a},
		&Ord{N: nb, X: b},
		&Arith{F: lia.Ne(lia.V(na), lia.V(nb))},
	}}
	return &OrCon{Args: []Constraint{lenDiffer, charDiffer}}
}

// CharAt returns constraints expressing y = charAt(x, i) with SMT-LIB
// str.at semantics: the single character at index i when 0 <= i < |x|,
// otherwise the empty string. The index is an arbitrary linear
// expression.
func (p *Problem) CharAt(y, x Var, i *lia.LinExpr) Constraint {
	x1 := p.NewStrVar(fmt.Sprintf("at_p%d", p.NumStrVars()))
	x3 := p.NewStrVar(fmt.Sprintf("at_s%d", p.NumStrVars()))
	lenX := lia.V(p.LenVar(x))
	inRange := &AndCon{Args: []Constraint{
		&Arith{F: lia.And(lia.Ge(i.Clone(), lia.Const(0)), lia.Lt(i.Clone(), lenX))},
		&WordEq{L: T(TV(x)), R: T(TV(x1), TV(y), TV(x3))},
		&Arith{F: lia.Eq(lia.V(p.LenVar(x1)), i.Clone())},
		&Arith{F: lia.EqConst(p.LenVar(y), 1)},
	}}
	outRange := &AndCon{Args: []Constraint{
		&Arith{F: lia.Or(lia.Lt(i.Clone(), lia.Const(0)), lia.Ge(i.Clone(), lenX))},
		&WordEq{L: T(TV(y)), R: T()},
	}}
	return &OrCon{Args: []Constraint{inRange, outRange}}
}

// Substr returns constraints expressing y = substr(x, i, n) with
// SMT-LIB str.substr semantics.
func (p *Problem) Substr(y, x Var, i, n *lia.LinExpr) Constraint {
	x1 := p.NewStrVar(fmt.Sprintf("ss_p%d", p.NumStrVars()))
	x3 := p.NewStrVar(fmt.Sprintf("ss_s%d", p.NumStrVars()))
	lenX := lia.V(p.LenVar(x))
	lenY := lia.V(p.LenVar(y))
	avail := lenX.Clone().Sub(i) // |x| - i
	full := &AndCon{Args: []Constraint{
		&Arith{F: lia.And(
			lia.Ge(i.Clone(), lia.Const(0)),
			lia.Lt(i.Clone(), lenX),
			lia.Ge(n.Clone(), lia.Const(1)),
		)},
		&WordEq{L: T(TV(x)), R: T(TV(x1), TV(y), TV(x3))},
		&Arith{F: lia.Eq(lia.V(p.LenVar(x1)), i.Clone())},
		&Arith{F: lia.Or(
			lia.And(lia.Le(n.Clone(), avail.Clone()), lia.Eq(lenY.Clone(), n.Clone())),
			lia.And(lia.Gt(n.Clone(), avail.Clone()), lia.Eq(lenY.Clone(), avail.Clone())),
		)},
	}}
	empty := &AndCon{Args: []Constraint{
		&Arith{F: lia.Or(
			lia.Lt(i.Clone(), lia.Const(0)),
			lia.Ge(i.Clone(), lenX),
			lia.Le(n.Clone(), lia.Const(0)),
		)},
		&WordEq{L: T(TV(y)), R: T()},
	}}
	return &OrCon{Args: []Constraint{full, empty}}
}

// Contains returns constraints expressing that x contains the term t.
func (p *Problem) Contains(x Var, t Term) Constraint {
	a := p.NewStrVar(fmt.Sprintf("ct_a%d", p.NumStrVars()))
	b := p.NewStrVar(fmt.Sprintf("ct_b%d", p.NumStrVars()))
	items := Term{TV(a)}
	items = append(items, t...)
	items = append(items, TV(b))
	return &WordEq{L: T(TV(x)), R: items}
}

// PrefixOf returns constraints expressing that the term t is a prefix
// of x.
func (p *Problem) PrefixOf(t Term, x Var) Constraint {
	r := p.NewStrVar(fmt.Sprintf("pf_r%d", p.NumStrVars()))
	items := append(Term{}, t...)
	items = append(items, TV(r))
	return &WordEq{L: T(TV(x)), R: items}
}

// SuffixOf returns constraints expressing that the term t is a suffix
// of x.
func (p *Problem) SuffixOf(t Term, x Var) Constraint {
	l := p.NewStrVar(fmt.Sprintf("sf_l%d", p.NumStrVars()))
	items := Term{TV(l)}
	items = append(items, t...)
	return &WordEq{L: T(TV(x)), R: items}
}
