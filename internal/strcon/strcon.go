// Package strcon defines the string-constraint language of the paper
// (§3): word equalities and disequalities over word terms, regular
// membership constraints, linear integer constraints over integer
// variables and string lengths, and the string-number conversion
// constraints toNum/toStr. It also provides the concrete evaluator used
// as the result validator (§9) and the desugarings (charAt, substr,
// disequalities, duplicate-occurrence elimination) that the decision
// procedure assumes.
package strcon

import (
	"fmt"
	"math/big"

	"repro/internal/automata"
	"repro/internal/lia"
)

// Var identifies a string variable of a Problem.
type Var int

// Item is one element of a word term: a string variable or a constant.
type Item struct {
	IsVar bool
	V     Var
	Const string
}

// Term is a word term: a concatenation of variables and constants.
type Term []Item

// TV returns a term item for a variable.
func TV(v Var) Item { return Item{IsVar: true, V: v} }

// TC returns a term item for a constant string.
func TC(s string) Item { return Item{Const: s} }

// T builds a term from items.
func T(items ...Item) Term { return Term(items) }

// Constraint is an atomic or composite string constraint. Concrete
// types: *WordEq, *WordNeq, *Membership, *Arith, *ToNum, *ToStr, *Ord,
// *AndCon, *OrCon.
type Constraint interface {
	isConstraint()
}

// WordEq is the equality of two word terms.
type WordEq struct {
	L, R Term
}

func (*WordEq) isConstraint() {}

// WordNeq is the disequality of two word terms. The decision procedure
// desugars it (Prepare) into equalities, length and character
// constraints in the standard way.
type WordNeq struct {
	L, R Term
}

func (*WordNeq) isConstraint() {}

// Membership constrains a variable to (not) belong to a regular
// language. Pattern is informational (printing); the automaton is
// authoritative.
type Membership struct {
	X       Var
	A       *automata.NFA
	Neg     bool
	Pattern string

	complemented *automata.NFA // cache for flattening
}

func (*Membership) isConstraint() {}

// Automaton returns the effective automaton: A, or its complement when
// the constraint is negated (computed once and cached).
func (m *Membership) Automaton() *automata.NFA {
	if !m.Neg {
		return m.A
	}
	if m.complemented == nil {
		m.complemented = m.A.Complement().Trim()
	}
	return m.complemented
}

// Arith is a linear integer constraint over the problem's integer
// variables and string-length variables (see Problem.LenVar).
type Arith struct {
	F lia.Formula
}

func (*Arith) isConstraint() {}

// ToNum is the constraint N = toNum(X): the decimal value of X when X
// is a nonempty digit string, and -1 otherwise.
type ToNum struct {
	N lia.Var
	X Var
}

func (*ToNum) isConstraint() {}

// ToStr is the constraint X = toStr(N): X is the canonical decimal
// numeral of N when N >= 0, and the empty string when N < 0 (SMT-LIB
// str.from_int semantics).
type ToStr struct {
	N lia.Var
	X Var
}

func (*ToStr) isConstraint() {}

// Ord is the constraint |X| = 1 and N = code(X[0]); it is used by the
// disequality desugaring and by character-level reasoning.
type Ord struct {
	N lia.Var
	X Var
}

func (*Ord) isConstraint() {}

// AndCon is a conjunction of constraints.
type AndCon struct {
	Args []Constraint
}

func (*AndCon) isConstraint() {}

// OrCon is a disjunction of constraints. The flattening translates it
// to a disjunction of flattenings, so it is fully supported by the
// under-approximation.
type OrCon struct {
	Args []Constraint
}

func (*OrCon) isConstraint() {}

// Problem is a conjunction of string constraints over a shared pool of
// string variables and a shared lia pool of integer variables (which
// also hosts string-length variables and all auxiliary flattening
// variables).
type Problem struct {
	Lia         *lia.Pool
	Constraints []Constraint

	strNames []string
	lenVars  map[Var]lia.Var
	IntVars  []lia.Var // user-declared integer variables, for models
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{Lia: lia.NewPool(), lenVars: make(map[Var]lia.Var)}
}

// NewStrVar declares a string variable.
func (p *Problem) NewStrVar(name string) Var {
	v := Var(len(p.strNames))
	if name == "" {
		name = fmt.Sprintf("s%d", v)
	}
	p.strNames = append(p.strNames, name)
	return v
}

// NumStrVars reports how many string variables exist.
func (p *Problem) NumStrVars() int { return len(p.strNames) }

// StrName returns the name of a string variable.
func (p *Problem) StrName(v Var) string {
	if int(v) < 0 || int(v) >= len(p.strNames) {
		return fmt.Sprintf("?s%d", v)
	}
	return p.strNames[v]
}

// NewIntVar declares a user-visible integer variable.
func (p *Problem) NewIntVar(name string) lia.Var {
	v := p.Lia.Fresh(name)
	p.IntVars = append(p.IntVars, v)
	return v
}

// LenVar returns the lia variable standing for |x|, allocating it on
// first use.
func (p *Problem) LenVar(x Var) lia.Var {
	if v, ok := p.lenVars[x]; ok {
		return v
	}
	v := p.Lia.Fresh("len_" + p.StrName(x))
	p.lenVars[x] = v
	return v
}

// LenVars returns the allocated length variables (for flattening).
func (p *Problem) LenVars() map[Var]lia.Var { return p.lenVars }

// Add appends constraints to the problem.
func (p *Problem) Add(cs ...Constraint) {
	p.Constraints = append(p.Constraints, cs...)
}

// WithConstraints returns an independent copy of the problem carrying
// the given constraint slice. The clone owns its own lia pool and
// length-variable map, so flattening one clone never perturbs variable
// numbering in another — the property the parallel portfolio core
// relies on to keep concurrent case-split branches deterministic.
// Constraint values themselves are shared (they are never mutated after
// Prepare).
func (p *Problem) WithConstraints(cons []Constraint) *Problem {
	lenVars := make(map[Var]lia.Var, len(p.lenVars))
	for k, v := range p.lenVars {
		lenVars[k] = v
	}
	return &Problem{
		Lia:         p.Lia.Clone(),
		Constraints: cons,
		strNames:    append([]string(nil), p.strNames...),
		lenVars:     lenVars,
		IntVars:     append([]lia.Var(nil), p.IntVars...),
	}
}

// Assignment is a candidate model: values for string variables and an
// integer model covering the problem's integer variables.
type Assignment struct {
	Str map[Var]string
	Int lia.Model
}

// ToNumValue computes toNum(s) per the paper's semantics: the decimal
// value for nonempty digit strings (arbitrary precision), -1 otherwise.
func ToNumValue(s string) *big.Int {
	if len(s) == 0 {
		return big.NewInt(-1)
	}
	v := new(big.Int)
	ten := big.NewInt(10)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return big.NewInt(-1)
		}
		v.Mul(v, ten)
		v.Add(v, big.NewInt(int64(c-'0')))
	}
	return v
}

// ToStrValue computes toStr(n): the canonical decimal numeral for
// n >= 0, and "" for negative n.
func ToStrValue(n *big.Int) string {
	if n.Sign() < 0 {
		return ""
	}
	return n.String()
}
