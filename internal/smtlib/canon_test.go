package smtlib

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// mustCanon parses src and canonicalizes the problem.
func mustCanon(t *testing.T, src string) *Canon {
	t.Helper()
	script, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	c, err := Canonicalize(script.Problem)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	return c
}

func TestCanonicalHashAlphaRename(t *testing.T) {
	a := `(set-logic QF_SLIA)
(declare-fun x () String)
(declare-fun y () String)
(declare-fun n () Int)
(assert (= (str.++ x "a") (str.++ "a" y)))
(assert (= n (str.to_int x)))
(assert (> (+ n (str.len y)) 7))
(check-sat)`
	// Same problem with every variable renamed and the string
	// declarations swapped.
	b := `(set-logic QF_SLIA)
(declare-fun right () String)
(declare-fun left () String)
(declare-fun num () Int)
(assert (= (str.++ left "a") (str.++ "a" right)))
(assert (= num (str.to_int left)))
(assert (> (+ num (str.len right)) 7))
(check-sat)`
	ca, cb := mustCanon(t, a), mustCanon(t, b)
	if ca.Form != cb.Form {
		t.Fatalf("alpha-renamed forms differ:\n%s\nvs\n%s", ca.Form, cb.Form)
	}
	if ca.Hash != cb.Hash {
		t.Fatalf("alpha-renamed hashes differ: %s vs %s", ca.Hash, cb.Hash)
	}
	if len(ca.StrOrder) != len(cb.StrOrder) || len(ca.IntOrder) != len(cb.IntOrder) {
		t.Fatalf("variable orders differ in shape: %d/%d vs %d/%d",
			len(ca.StrOrder), len(ca.IntOrder), len(cb.StrOrder), len(cb.IntOrder))
	}
}

func TestCanonicalHashLenVsFreeInt(t *testing.T) {
	withLen := mustCanon(t, `(declare-fun x () String)
(assert (= (str.len x) 5))(check-sat)`)
	withInt := mustCanon(t, `(declare-fun x () String)(declare-fun n () Int)
(assert (= x x))(assert (= n 5))(check-sat)`)
	if withLen.Hash == withInt.Hash {
		t.Fatalf("length constraint and free-int constraint hash equal:\n%s", withLen.Form)
	}
	if !strings.Contains(withLen.Form, "len(s0)") {
		t.Fatalf("length var not serialized as len(s0):\n%s", withLen.Form)
	}
}

func TestCanonicalHashStructureSensitive(t *testing.T) {
	base := `(declare-fun x () String)(assert (str.in_re x (re.+ (re.range "0" "9"))))(check-sat)`
	variants := []string{
		`(declare-fun x () String)(assert (str.in_re x (re.* (re.range "0" "9"))))(check-sat)`,
		`(declare-fun x () String)(assert (not (str.in_re x (re.+ (re.range "0" "9")))))(check-sat)`,
		`(declare-fun x () String)(assert (str.in_re x (re.+ (re.range "1" "9"))))(check-sat)`,
	}
	h := mustCanon(t, base).Hash
	for _, v := range variants {
		if mustCanon(t, v).Hash == h {
			t.Errorf("structurally different problem hashes equal to base:\n%s", v)
		}
	}
}

func TestCanonicalWitnessTransport(t *testing.T) {
	srcBytes, err := os.ReadFile(filepath.Join("..", "..", "examples", "smt2", "quickstart.smt2"))
	if err != nil {
		t.Fatalf("reading example: %v", err)
	}
	src := string(srcBytes)
	nodes, err := parseSExprs(src)
	if err != nil {
		t.Fatalf("parseSExprs: %v", err)
	}
	renNodes, ok := renameDecls(nodes)
	if !ok {
		t.Fatal("example declarations not renameable")
	}
	renamed := renderNodes(renNodes)

	orig, err := Parse(string(src))
	if err != nil {
		t.Fatalf("Parse original: %v", err)
	}
	co, err := Canonicalize(orig.Problem)
	if err != nil {
		t.Fatalf("Canonicalize original: %v", err)
	}
	// Solve a fresh parse: core.Solve prepares the problem in place, and
	// the canonical form must describe the unprepared problem the server
	// would hash.
	solveMe, err := Parse(string(src))
	if err != nil {
		t.Fatalf("Parse for solving: %v", err)
	}
	res := core.Solve(solveMe.Problem, core.Options{})
	if res.Status != core.StatusSat {
		t.Fatalf("quickstart example not SAT: %v", res.Status)
	}
	w := co.WitnessOf(res.Model)
	if len(w.Str) != len(co.StrOrder) || len(w.Int) != len(co.IntOrder) {
		t.Fatalf("witness shape %d/%d does not match orders %d/%d",
			len(w.Str), len(w.Int), len(co.StrOrder), len(co.IntOrder))
	}

	other, err := Parse(renamed)
	if err != nil {
		t.Fatalf("Parse renamed: %v", err)
	}
	cr, err := Canonicalize(other.Problem)
	if err != nil {
		t.Fatalf("Canonicalize renamed: %v", err)
	}
	if cr.Hash != co.Hash {
		t.Fatalf("renamed example hashes differently:\n%s\nvs\n%s", co.Form, cr.Form)
	}
	a := cr.Assignment(w)
	if a == nil {
		t.Fatal("witness did not transport onto the renamed problem")
	}
	if !other.Problem.Eval(a) {
		t.Fatal("transported witness fails concrete evaluation on the renamed problem")
	}
	// Mutating the transported assignment must not reach back into the
	// witness (big.Int values are copied, not aliased).
	for _, v := range a.Int {
		v.SetInt64(-1)
	}
	for _, v := range w.Int {
		if v.Sign() < 0 {
			t.Fatal("witness big.Int aliased into the transported assignment")
		}
	}
}

// TestAlphaEquivalentVerdictsBench is the deterministic half of the
// FuzzCanonicalHash property: for real benchmark problems, an
// alpha-renamed re-parse hashes equal AND solves to the same verdict,
// with the original's witness transporting onto the renamed problem.
func TestAlphaEquivalentVerdictsBench(t *testing.T) {
	suites := append(bench.Table1Suites(2), bench.Table2Suites(2)...)
	for _, suite := range suites {
		for _, inst := range suite.Instances {
			src, err := Write(inst.Build())
			if err != nil {
				continue // unwritable instances are not in scope
			}
			t.Run(suite.Name+"/"+inst.Name, func(t *testing.T) {
				nodes, err := parseSExprs(src)
				if err != nil {
					t.Fatalf("parseSExprs: %v", err)
				}
				renamed, ok := renameDecls(nodes)
				if !ok {
					t.Skipf("declared names not renameable in %s", inst.Name)
				}
				origSrc, renSrc := renderNodes(nodes), renderNodes(renamed)
				co, cr := mustCanon(t, origSrc), mustCanon(t, renSrc)
				if co.Hash != cr.Hash {
					t.Fatalf("renamed problem hashes differently:\n%s\nvs\n%s", co.Form, cr.Form)
				}

				origScript, err := Parse(origSrc)
				if err != nil {
					t.Fatalf("Parse: %v", err)
				}
				renScript, err := Parse(renSrc)
				if err != nil {
					t.Fatalf("Parse renamed: %v", err)
				}
				ro := core.Solve(origScript.Problem, core.Options{})
				rr := core.Solve(renScript.Problem, core.Options{})
				if ro.Status != rr.Status {
					t.Fatalf("verdicts differ: %v vs %v", ro.Status, rr.Status)
				}
				if ro.Status == core.StatusSat {
					// Transport the original's model through canonical
					// coordinates onto a FRESH parse of the renamed
					// problem (solving prepared renScript in place).
					freshRen, err := Parse(renSrc)
					if err != nil {
						t.Fatalf("Parse renamed again: %v", err)
					}
					cf, err := Canonicalize(freshRen.Problem)
					if err != nil {
						t.Fatalf("Canonicalize fresh: %v", err)
					}
					a := cf.Assignment(co.WitnessOf(ro.Model))
					if a == nil {
						t.Fatal("witness did not transport")
					}
					if !freshRen.Problem.Eval(a) {
						t.Fatal("transported witness fails evaluation")
					}
				}
			})
		}
	}
}

// canonPlainName admits only simple alphanumeric symbols for renaming;
// anything containing '.', '-', etc. might be a keyword or need
// quoting, and is left alone.
var canonPlainName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// canonFuzzKeywords are the dot- and dash-free parser keywords a
// declared name could shadow; such declarations are not renamed.
var canonFuzzKeywords = map[string]bool{
	"String": true, "Int": true, "Bool": true,
	"true": true, "false": true, "not": true, "and": true, "or": true,
	"ite": true, "div": true, "mod": true, "abs": true,
	"distinct": true, "push": true, "pop": true, "exit": true, "_": true,
}

// renameDecls returns a deep copy of the forms with every declared
// variable consistently renamed to a fresh rn_<k> symbol. ok is false
// when any declaration is not safely renameable (keyword shadowing,
// exotic spelling, collision with an existing rn_<k> atom).
func renameDecls(nodes []*node) ([]*node, bool) {
	rename := map[string]string{}
	taken := map[string]bool{}
	var scan func(n *node, depth int) bool
	scan = func(n *node, depth int) bool {
		if depth > maxParseDepth {
			return false
		}
		if n.list == nil {
			if !n.str {
				taken[n.atom] = true
			}
			return true
		}
		for _, c := range n.list {
			if !scan(c, depth+1) {
				return false
			}
		}
		return true
	}
	for _, n := range nodes {
		if !scan(n, 0) {
			return nil, false
		}
	}
	for _, n := range nodes {
		if len(n.list) < 2 || n.list[1].list != nil || n.list[1].str {
			continue
		}
		head, name := n.list[0], n.list[1].atom
		if !head.isAtom("declare-fun") && !head.isAtom("declare-const") {
			continue
		}
		if _, done := rename[name]; done {
			continue
		}
		if !canonPlainName.MatchString(name) || canonFuzzKeywords[name] ||
			strings.HasPrefix(name, "rn_") {
			return nil, false
		}
		fresh := fmt.Sprintf("rn_%d", len(rename))
		if taken[fresh] {
			return nil, false
		}
		rename[name] = fresh
	}
	if len(rename) == 0 {
		return nil, false
	}
	var cp func(n *node, depth int) *node
	cp = func(n *node, depth int) *node {
		if depth > maxParseDepth {
			return nil
		}
		out := &node{atom: n.atom, str: n.str, line: n.line}
		if n.list == nil {
			if !n.str {
				if to, ok := rename[n.atom]; ok {
					out.atom = to
				}
			}
			return out
		}
		out.list = make([]*node, len(n.list))
		for i, c := range n.list {
			out.list[i] = cp(c, depth+1)
			if out.list[i] == nil {
				return nil
			}
		}
		return out
	}
	out := make([]*node, len(nodes))
	for i, n := range nodes {
		out[i] = cp(n, 0)
		if out[i] == nil {
			return nil, false
		}
	}
	return out, true
}

// renderNodes renders parsed forms back to SMT-LIB source using the
// writer's quoting rules (node.String is for diagnostics and does not
// re-escape string literals).
func renderNodes(nodes []*node) string {
	var b strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if depth > maxParseDepth {
			return
		}
		if n.list == nil {
			if n.str {
				b.WriteString(quote(n.atom))
			} else {
				b.WriteString(symbol(n.atom))
			}
			return
		}
		b.WriteByte('(')
		for i, c := range n.list {
			if i > 0 {
				b.WriteByte(' ')
			}
			walk(c, depth+1)
		}
		b.WriteByte(')')
	}
	for _, n := range nodes {
		walk(n, 0)
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzCanonicalHash checks the canonical-hash contract on arbitrary
// inputs: canonicalization is deterministic across parses, and an
// alpha-renamed re-render hashes identically (with matching variable
// order shapes, so witnesses transport). Renders are compared against
// each other — not the raw input — so lexer normalization (escape
// decoding, whitespace) cancels out.
func FuzzCanonicalHash(f *testing.F) {
	for _, suite := range append(bench.Table1Suites(1), bench.Table2Suites(1)...) {
		for _, inst := range suite.Instances {
			src, err := Write(inst.Build())
			if err != nil {
				continue
			}
			f.Add(src)
		}
	}
	if ents, err := os.ReadDir(filepath.Join("..", "..", "examples", "smt2")); err == nil {
		for _, e := range ents {
			if b, err := os.ReadFile(filepath.Join("..", "..", "examples", "smt2", e.Name())); err == nil {
				f.Add(string(b))
			}
		}
	}
	f.Add(`(declare-fun x () String)(assert (= (str.len x) 3))(check-sat)`)
	f.Add(`(declare-fun a () String)(declare-fun b () Int)(assert (= b (str.to_int a)))(check-sat)`)
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return
		}
		c1, err := Canonicalize(script.Problem)
		if err != nil {
			return // budget exhaustion is a legal outcome, not a crash
		}
		// Determinism: an independent parse canonicalizes identically.
		again, err := Parse(src)
		if err != nil {
			t.Fatalf("second Parse failed where first succeeded: %v", err)
		}
		c2, err := Canonicalize(again.Problem)
		if err != nil {
			t.Fatalf("second Canonicalize failed where first succeeded: %v", err)
		}
		if c1.Hash != c2.Hash {
			t.Fatalf("canonicalization not deterministic:\n%s\nvs\n%s", c1.Form, c2.Form)
		}

		// Alpha-renaming invariance, comparing render vs renamed render.
		nodes, err := parseSExprs(src)
		if err != nil {
			return
		}
		renamed, ok := renameDecls(nodes)
		if !ok {
			return
		}
		base, err := Parse(renderNodes(nodes))
		if err != nil {
			return // rendering round-trip out of scope for this input
		}
		ren, err := Parse(renderNodes(renamed))
		if err != nil {
			t.Fatalf("renamed render does not parse: %v", err)
		}
		cb, err := Canonicalize(base.Problem)
		if err != nil {
			return
		}
		cr, err := Canonicalize(ren.Problem)
		if err != nil {
			t.Fatalf("renamed problem does not canonicalize: %v", err)
		}
		if cb.Form != cr.Form {
			t.Fatalf("alpha-renamed form differs:\n%s\nvs\n%s", cb.Form, cr.Form)
		}
		if len(cb.StrOrder) != len(cr.StrOrder) || len(cb.IntOrder) != len(cr.IntOrder) {
			t.Fatalf("hash-equal problems have different variable order shapes")
		}
		if cr.Assignment(cb.WitnessOf(nil)) == nil {
			t.Fatal("zero witness does not transport between hash-equal problems")
		}
	})
}
