package smtlib

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/lia"
	"repro/internal/strcon"
)

// Write renders a problem as an SMT-LIB script (QF_SLIA). Regular
// membership constraints require their Pattern field to be set; the
// pattern (in the dialect of internal/regex) is converted to the re.*
// algebra.
func Write(prob *strcon.Problem) (string, error) {
	var b strings.Builder
	b.WriteString("(set-logic QF_SLIA)\n")
	for v := 0; v < prob.NumStrVars(); v++ {
		fmt.Fprintf(&b, "(declare-fun %s () String)\n", symbol(prob.StrName(strcon.Var(v))))
	}
	for _, iv := range prob.IntVars {
		fmt.Fprintf(&b, "(declare-fun %s () Int)\n", symbol(prob.Lia.Name(iv)))
	}
	for _, c := range prob.Constraints {
		s, err := writeCon(prob, c, 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "(assert %s)\n", s)
	}
	b.WriteString("(check-sat)\n")
	return b.String(), nil
}

func symbol(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '.' || c == '-' || c == '!') {
			return "|" + name + "|"
		}
	}
	return name
}

func writeCon(prob *strcon.Problem, c strcon.Constraint, depth int) (string, error) {
	if depth > maxParseDepth {
		return "", fmt.Errorf("smtlib: constraint nesting exceeds depth budget (%d)", maxParseDepth)
	}
	switch t := c.(type) {
	case *strcon.WordEq:
		return fmt.Sprintf("(= %s %s)", writeTerm(prob, t.L), writeTerm(prob, t.R)), nil
	case *strcon.WordNeq:
		return fmt.Sprintf("(not (= %s %s))", writeTerm(prob, t.L), writeTerm(prob, t.R)), nil
	case *strcon.Membership:
		if t.Pattern == "" {
			return "", fmt.Errorf("smtlib: membership constraint without a pattern")
		}
		re, err := patternToRe(t.Pattern)
		if err != nil {
			return "", err
		}
		s := fmt.Sprintf("(str.in_re %s %s)", symbol(prob.StrName(t.X)), re)
		if t.Neg {
			s = "(not " + s + ")"
		}
		return s, nil
	case *strcon.Arith:
		return writeFormula(prob, t.F), nil
	case *strcon.ToNum:
		return fmt.Sprintf("(= %s (str.to_int %s))",
			symbol(prob.Lia.Name(t.N)), symbol(prob.StrName(t.X))), nil
	case *strcon.ToStr:
		return fmt.Sprintf("(= %s (str.from_int %s))",
			symbol(prob.StrName(t.X)), symbol(prob.Lia.Name(t.N))), nil
	case *strcon.Ord:
		// ord is expressed through to_int on a single character plus a
		// length pin; exact only for digits, so emit the defining pair.
		return fmt.Sprintf("(and (= (str.len %s) 1) (= %s (str.to_int %s)))",
			symbol(prob.StrName(t.X)), symbol(prob.Lia.Name(t.N)), symbol(prob.StrName(t.X))), nil
	case *strcon.AndCon:
		return writeJunction(prob, "and", t.Args, depth+1)
	case *strcon.OrCon:
		return writeJunction(prob, "or", t.Args, depth+1)
	}
	return "", fmt.Errorf("smtlib: unsupported constraint %T", c)
}

func writeJunction(prob *strcon.Problem, op string, args []strcon.Constraint, depth int) (string, error) {
	if len(args) == 0 {
		if op == "and" {
			return "true", nil
		}
		return "false", nil
	}
	parts := make([]string, len(args))
	for i, a := range args {
		s, err := writeCon(prob, a, depth+1)
		if err != nil {
			return "", err
		}
		parts[i] = s
	}
	return "(" + op + " " + strings.Join(parts, " ") + ")", nil
}

func writeTerm(prob *strcon.Problem, t strcon.Term) string {
	if len(t) == 0 {
		return `""`
	}
	parts := make([]string, len(t))
	for i, it := range t {
		if it.IsVar {
			parts[i] = symbol(prob.StrName(it.V))
		} else {
			parts[i] = quote(it.Const)
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(str.++ " + strings.Join(parts, " ") + ")"
}

func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// writeFormula renders a lia formula, mapping length variables back to
// (str.len x).
func writeFormula(prob *strcon.Problem, f lia.Formula) string {
	lenName := map[lia.Var]string{}
	for x, lv := range prob.LenVars() {
		lenName[lv] = fmt.Sprintf("(str.len %s)", symbol(prob.StrName(x)))
	}
	var walk func(f lia.Formula) string
	walk = func(f lia.Formula) string {
		switch t := f.(type) {
		case lia.Bool:
			if bool(t) {
				return "true"
			}
			return "false"
		case *lia.Not:
			return "(not " + walk(t.F) + ")"
		case *lia.NAry:
			op := "and"
			if t.Op == lia.OpOr {
				op = "or"
			}
			parts := make([]string, len(t.Args))
			for i, a := range t.Args {
				parts[i] = walk(a)
			}
			return "(" + op + " " + strings.Join(parts, " ") + ")"
		case *lia.Atom:
			lhs := writeExpr(prob, t.E, lenName)
			switch t.Op {
			case lia.LE:
				return fmt.Sprintf("(<= %s 0)", lhs)
			case lia.LT:
				return fmt.Sprintf("(< %s 0)", lhs)
			case lia.GE:
				return fmt.Sprintf("(>= %s 0)", lhs)
			case lia.GT:
				return fmt.Sprintf("(> %s 0)", lhs)
			case lia.EQ:
				return fmt.Sprintf("(= %s 0)", lhs)
			default:
				return fmt.Sprintf("(not (= %s 0))", lhs)
			}
		}
		return "false"
	}
	return walk(f)
}

func writeExpr(prob *strcon.Problem, e *lia.LinExpr, lenName map[lia.Var]string) string {
	var parts []string
	vars := e.Vars()
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		name, isLen := lenName[v]
		if !isLen {
			name = symbol(prob.Lia.Name(v))
		}
		co := e.Coeff(v)
		switch {
		case co.Cmp(big.NewInt(1)) == 0:
			parts = append(parts, name)
		case co.Sign() < 0:
			parts = append(parts, fmt.Sprintf("(* (- %s) %s)", new(big.Int).Neg(co), name))
		default:
			parts = append(parts, fmt.Sprintf("(* %s %s)", co, name))
		}
	}
	if k := e.ConstPart(); k.Sign() != 0 {
		if k.Sign() < 0 {
			parts = append(parts, fmt.Sprintf("(- %s)", new(big.Int).Neg(k)))
		} else {
			parts = append(parts, k.String())
		}
	}
	switch len(parts) {
	case 0:
		return "0"
	case 1:
		return parts[0]
	}
	return "(+ " + strings.Join(parts, " ") + ")"
}

// patternToRe converts a pattern in the dialect of internal/regex to
// the SMT-LIB re.* algebra. The grammar mirrors regex.Compile.
func patternToRe(pat string) (string, error) {
	p := &reWriter{src: pat}
	out, err := p.alternation()
	if err != nil {
		return "", err
	}
	if p.pos != len(p.src) {
		return "", fmt.Errorf("smtlib: cannot convert pattern %q", pat)
	}
	return out, nil
}

type reWriter struct {
	src   string
	pos   int
	depth int // group nesting depth (bounded by maxParseDepth)
}

func (p *reWriter) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

func (p *reWriter) alternation() (string, error) {
	out, err := p.sequence()
	if err != nil {
		return "", err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return out, nil
		}
		p.pos++
		next, err := p.sequence()
		if err != nil {
			return "", err
		}
		out = fmt.Sprintf("(re.union %s %s)", out, next)
	}
}

func (p *reWriter) sequence() (string, error) {
	out := `(str.to_re "")`
	first := true
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			return out, nil
		}
		next, err := p.quantified()
		if err != nil {
			return "", err
		}
		if first {
			out = next
			first = false
		} else {
			out = fmt.Sprintf("(re.++ %s %s)", out, next)
		}
	}
}

func (p *reWriter) quantified() (string, error) {
	out, err := p.atom()
	if err != nil {
		return "", err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return out, nil
		}
		switch c {
		case '*':
			p.pos++
			out = fmt.Sprintf("(re.* %s)", out)
		case '+':
			p.pos++
			out = fmt.Sprintf("(re.+ %s)", out)
		case '?':
			p.pos++
			out = fmt.Sprintf("(re.opt %s)", out)
		case '{':
			return "", fmt.Errorf("smtlib: bounded repetition not supported in writer")
		default:
			return out, nil
		}
	}
}

func (p *reWriter) atom() (string, error) {
	c, ok := p.peek()
	if !ok {
		return "", fmt.Errorf("smtlib: unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		p.depth++
		if p.depth > maxParseDepth {
			return "", fmt.Errorf("smtlib: pattern nesting exceeds depth budget (%d)", maxParseDepth)
		}
		out, err := p.alternation()
		p.depth--
		if err != nil {
			return "", err
		}
		if b, ok := p.peek(); !ok || b != ')' {
			return "", fmt.Errorf("smtlib: missing ')'")
		}
		p.pos++
		return out, nil
	case '[':
		return p.class()
	case '.':
		p.pos++
		return "re.allchar", nil
	case '\\':
		p.pos++
		e, ok := p.peek()
		if !ok {
			return "", fmt.Errorf("smtlib: dangling backslash")
		}
		p.pos++
		if e == 'd' {
			return `(re.range "0" "9")`, nil
		}
		return fmt.Sprintf("(str.to_re %s)", quote(string(e))), nil
	default:
		p.pos++
		return fmt.Sprintf("(str.to_re %s)", quote(string(c))), nil
	}
}

func (p *reWriter) class() (string, error) {
	p.pos++ // '['
	if c, ok := p.peek(); ok && c == '^' {
		return "", fmt.Errorf("smtlib: negated classes not supported in writer")
	}
	var parts []string
	for {
		c, ok := p.peek()
		if !ok {
			return "", fmt.Errorf("smtlib: unterminated class")
		}
		if c == ']' {
			p.pos++
			break
		}
		p.pos++
		if d, ok := p.peek(); ok && d == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			hi := p.src[p.pos+1]
			p.pos += 2
			parts = append(parts, fmt.Sprintf("(re.range %s %s)", quote(string(c)), quote(string(hi))))
			continue
		}
		parts = append(parts, fmt.Sprintf("(str.to_re %s)", quote(string(c))))
	}
	switch len(parts) {
	case 0:
		return "re.none", nil
	case 1:
		return parts[0], nil
	}
	return "(re.union " + strings.Join(parts, " ") + ")", nil
}
