package smtlib

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// Script is the result of parsing an SMT-LIB file: a problem plus the
// name bindings needed to print models.
type Script struct {
	Problem *strcon.Problem
	// StrVars and IntVars map declared names to problem variables.
	StrVars map[string]strcon.Var
	IntVars map[string]lia.Var
	// CheckSat reports whether the script contained (check-sat).
	CheckSat bool
	// Logic is the declared logic, if any.
	Logic string
}

// Parse reads an SMT-LIB script in the supported fragment. The parse
// paths are error-based throughout; the deferred recover is the
// backstop of that policy — parsing is the most input-exposed code in
// the tree, and a panic slipping through must become a parse error,
// never kill a serving process.
func Parse(src string) (script *Script, err error) {
	defer func() {
		if v := recover(); v != nil {
			script, err = nil, fmt.Errorf("smtlib: internal parse failure: %v", v)
		}
	}()
	forms, err := parseSExprs(src)
	if err != nil {
		return nil, err
	}
	t := &translator{
		script: &Script{
			Problem: strcon.NewProblem(),
			StrVars: map[string]strcon.Var{},
			IntVars: map[string]lia.Var{},
		},
		sorts: map[string]string{},
	}
	for _, f := range forms {
		if err := t.command(f); err != nil {
			return nil, err
		}
	}
	t.script.Problem.Add(t.aux...)
	return t.script, nil
}

type translator struct {
	script *Script
	sorts  map[string]string // name -> "String" | "Int" | "Bool"
	aux    []strcon.Constraint
	fresh  int
	depth  int // term recursion depth (bounded by maxParseDepth)
}

// enter bounds the recursion of the mutually recursive term
// translators. The lexer already bounds node nesting, so this is
// defense in depth against translator-internal expansion.
func (t *translator) enter(n *node) error {
	t.depth++
	if t.depth > maxParseDepth {
		return t.errf(n, "term nesting exceeds depth budget (%d)", maxParseDepth)
	}
	return nil
}

func (t *translator) leave() { t.depth-- }

func (t *translator) errf(n *node, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s (in %s)", n.line, fmt.Sprintf(format, args...), truncate(n.String()))
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func (t *translator) command(n *node) error {
	if n.list == nil || len(n.list) == 0 {
		return t.errf(n, "expected a command list")
	}
	head := n.list[0]
	switch head.atom {
	case "set-logic":
		if len(n.list) > 1 {
			t.script.Logic = n.list[1].atom
		}
		return nil
	case "set-info", "set-option", "get-model", "exit", "push", "pop", "get-info":
		return nil
	case "check-sat":
		t.script.CheckSat = true
		return nil
	case "declare-fun":
		if len(n.list) != 4 || n.list[2].list == nil {
			return t.errf(n, "unsupported declare-fun shape")
		}
		if len(n.list[2].list) != 0 {
			return t.errf(n, "only nullary functions are supported")
		}
		return t.declare(n.list[1].atom, n.list[3], n)
	case "declare-const":
		if len(n.list) != 3 {
			return t.errf(n, "unsupported declare-const shape")
		}
		return t.declare(n.list[1].atom, n.list[2], n)
	case "assert":
		if len(n.list) != 2 {
			return t.errf(n, "assert takes one term")
		}
		c, err := t.boolTerm(n.list[1], true)
		if err != nil {
			return err
		}
		t.script.Problem.Add(c)
		return nil
	}
	return t.errf(n, "unsupported command %q", head.atom)
}

func (t *translator) declare(name string, sort *node, ctx *node) error {
	switch sort.atom {
	case "String":
		t.script.StrVars[name] = t.script.Problem.NewStrVar(name)
	case "Int":
		t.script.IntVars[name] = t.script.Problem.NewIntVar(name)
	default:
		return t.errf(ctx, "unsupported sort %q", sort.atom)
	}
	t.sorts[name] = sort.atom
	return nil
}

// sortOf infers String/Int for a term (enough for dispatching "=").
func (t *translator) sortOf(n *node) string {
	if n.list == nil {
		if n.str {
			return "String"
		}
		if s, ok := t.sorts[n.atom]; ok {
			return s
		}
		if _, err := strconv.Atoi(n.atom); err == nil {
			return "Int"
		}
		return ""
	}
	if len(n.list) == 0 {
		return ""
	}
	switch n.list[0].atom {
	case "str.++", "str.at", "str.substr", "str.from_int", "str.from.int", "str.replace":
		return "String"
	case "str.len", "str.to_int", "str.to.int", "+", "-", "*", "div", "mod", "abs":
		return "Int"
	case "ite":
		if len(n.list) == 4 {
			return t.sortOf(n.list[2])
		}
	}
	return ""
}

// boolTerm translates a boolean term under a polarity.
func (t *translator) boolTerm(n *node, pos bool) (strcon.Constraint, error) {
	if n.list == nil {
		switch n.atom {
		case "true":
			return boolCon(pos), nil
		case "false":
			return boolCon(!pos), nil
		}
		return nil, t.errf(n, "boolean variables are not supported")
	}
	if len(n.list) == 0 {
		return nil, t.errf(n, "empty term")
	}
	if err := t.enter(n); err != nil {
		return nil, err
	}
	defer t.leave()
	op := n.list[0].atom
	args := n.list[1:]
	switch op {
	case "not":
		if len(args) != 1 {
			return nil, t.errf(n, "not takes one argument")
		}
		return t.boolTerm(args[0], !pos)
	case "and", "or":
		isAnd := (op == "and") == pos
		var out []strcon.Constraint
		for _, a := range args {
			c, err := t.boolTerm(a, pos)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		if isAnd {
			return &strcon.AndCon{Args: out}, nil
		}
		return &strcon.OrCon{Args: out}, nil
	case "=>":
		if len(args) != 2 {
			return nil, t.errf(n, "=> takes two arguments")
		}
		na, err := t.boolTerm(args[0], !pos)
		if err != nil {
			return nil, err
		}
		nb, err := t.boolTerm(args[1], pos)
		if err != nil {
			return nil, err
		}
		if pos {
			return &strcon.OrCon{Args: []strcon.Constraint{na, nb}}, nil
		}
		return &strcon.AndCon{Args: []strcon.Constraint{na, nb}}, nil
	case "=", "distinct":
		eq := (op == "=") == pos
		if len(args) != 2 {
			return nil, t.errf(n, "%s takes two arguments", op)
		}
		if t.sortOf(args[0]) == "String" || t.sortOf(args[1]) == "String" {
			l, err := t.strTerm(args[0])
			if err != nil {
				return nil, err
			}
			r, err := t.strTerm(args[1])
			if err != nil {
				return nil, err
			}
			if eq {
				return &strcon.WordEq{L: l, R: r}, nil
			}
			return &strcon.WordNeq{L: l, R: r}, nil
		}
		l, err := t.intExpr(args[0])
		if err != nil {
			return nil, err
		}
		r, err := t.intExpr(args[1])
		if err != nil {
			return nil, err
		}
		if eq {
			return &strcon.Arith{F: lia.Eq(l, r)}, nil
		}
		return &strcon.Arith{F: lia.Ne(l, r)}, nil
	case "<", "<=", ">", ">=":
		if len(args) != 2 {
			return nil, t.errf(n, "%s takes two arguments", op)
		}
		l, err := t.intExpr(args[0])
		if err != nil {
			return nil, err
		}
		r, err := t.intExpr(args[1])
		if err != nil {
			return nil, err
		}
		var f lia.Formula
		switch op {
		case "<":
			f = lia.Lt(l, r)
		case "<=":
			f = lia.Le(l, r)
		case ">":
			f = lia.Gt(l, r)
		default:
			f = lia.Ge(l, r)
		}
		if !pos {
			f = lia.Negate(f)
		}
		return &strcon.Arith{F: f}, nil
	case "str.in_re", "str.in.re":
		if len(args) != 2 {
			return nil, t.errf(n, "%s takes two arguments", op)
		}
		x, err := t.strVarOf(args[0])
		if err != nil {
			return nil, err
		}
		re, err := t.reTerm(args[1])
		if err != nil {
			return nil, err
		}
		return &strcon.Membership{X: x, A: re, Neg: !pos, Pattern: args[1].String()}, nil
	case "str.prefixof", "str.suffixof":
		return t.fixof(n, op == "str.prefixof", pos)
	case "str.contains":
		return t.contains(n, pos)
	}
	return nil, t.errf(n, "unsupported boolean operator %q", op)
}

func boolCon(b bool) strcon.Constraint {
	if b {
		return &strcon.Arith{F: lia.True}
	}
	return &strcon.Arith{F: lia.False}
}

// fixof translates (str.prefixof s t) / (str.suffixof s t).
func (t *translator) fixof(n *node, prefix, pos bool) (strcon.Constraint, error) {
	args := n.list[1:]
	if len(args) != 2 {
		return nil, t.errf(n, "prefixof/suffixof take two arguments")
	}
	s, err := t.strTerm(args[0])
	if err != nil {
		return nil, err
	}
	tt, err := t.strTerm(args[1])
	if err != nil {
		return nil, err
	}
	prob := t.script.Problem
	if pos {
		rest := prob.NewStrVar(t.freshName("rest"))
		var r strcon.Term
		if prefix {
			r = append(append(strcon.Term{}, s...), strcon.TV(rest))
		} else {
			r = append(strcon.Term{strcon.TV(rest)}, s...)
		}
		return &strcon.WordEq{L: tt, R: r}, nil
	}
	// Negative: |t| < |s|, or the aligned part differs.
	part := prob.NewStrVar(t.freshName("part"))
	rest := prob.NewStrVar(t.freshName("rest"))
	var split strcon.Term
	if prefix {
		split = strcon.T(strcon.TV(part), strcon.TV(rest))
	} else {
		split = strcon.T(strcon.TV(rest), strcon.TV(part))
	}
	sLen := prob.LenExpr(s)
	return &strcon.OrCon{Args: []strcon.Constraint{
		&strcon.Arith{F: lia.Lt(prob.LenExpr(tt), sLen)},
		&strcon.AndCon{Args: []strcon.Constraint{
			&strcon.WordEq{L: tt, R: split},
			&strcon.Arith{F: lia.Eq(lia.V(prob.LenVar(part)), sLen.Clone())},
			&strcon.WordNeq{L: strcon.T(strcon.TV(part)), R: s},
		}},
	}}, nil
}

// contains translates (str.contains t s): t contains s.
func (t *translator) contains(n *node, pos bool) (strcon.Constraint, error) {
	args := n.list[1:]
	if len(args) != 2 {
		return nil, t.errf(n, "contains takes two arguments")
	}
	tt, err := t.strTerm(args[0])
	if err != nil {
		return nil, err
	}
	s, err := t.strTerm(args[1])
	if err != nil {
		return nil, err
	}
	prob := t.script.Problem
	if pos {
		a := prob.NewStrVar(t.freshName("ct_a"))
		b := prob.NewStrVar(t.freshName("ct_b"))
		mid := append(strcon.Term{strcon.TV(a)}, s...)
		mid = append(mid, strcon.TV(b))
		return &strcon.WordEq{L: tt, R: mid}, nil
	}
	// Negative containment: supported for constant needles through a
	// complemented automaton.
	if len(s) != 1 || s[0].IsVar {
		return nil, t.errf(n, "negated str.contains needs a constant needle")
	}
	needle := s[0].Const
	any := automata.AnyStar()
	pat := automata.Concat(automata.Concat(any, automata.Word(alphabet.Encode(needle))), automata.AnyStar())
	x, err := t.bindTerm(tt)
	if err != nil {
		return nil, err
	}
	return &strcon.Membership{X: x, A: pat, Neg: true, Pattern: ".*" + needle + ".*"}, nil
}

// strVarOf coerces a term to a single string variable, binding complex
// terms to a fresh variable.
func (t *translator) strVarOf(n *node) (strcon.Var, error) {
	tm, err := t.strTerm(n)
	if err != nil {
		return 0, err
	}
	return t.bindTerm(tm)
}

func (t *translator) bindTerm(tm strcon.Term) (strcon.Var, error) {
	if len(tm) == 1 && tm[0].IsVar {
		return tm[0].V, nil
	}
	v := t.script.Problem.NewStrVar(t.freshName("bind"))
	t.aux = append(t.aux, &strcon.WordEq{L: strcon.T(strcon.TV(v)), R: tm})
	return v, nil
}

func (t *translator) freshName(base string) string {
	t.fresh++
	return fmt.Sprintf("%s!%d", base, t.fresh)
}

// strTerm translates a string-valued term, introducing auxiliary
// definitional constraints for str.at/str.substr/str.from_int.
func (t *translator) strTerm(n *node) (strcon.Term, error) {
	if n.list == nil {
		if n.str {
			return strcon.T(strcon.TC(n.atom)), nil
		}
		if v, ok := t.script.StrVars[n.atom]; ok {
			return strcon.T(strcon.TV(v)), nil
		}
		return nil, t.errf(n, "unknown string symbol %q", n.atom)
	}
	if len(n.list) == 0 {
		return nil, t.errf(n, "empty term")
	}
	if err := t.enter(n); err != nil {
		return nil, err
	}
	defer t.leave()
	op := n.list[0].atom
	args := n.list[1:]
	prob := t.script.Problem
	switch op {
	case "str.++":
		var out strcon.Term
		for _, a := range args {
			part, err := t.strTerm(a)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	case "str.at":
		if len(args) != 2 {
			return nil, t.errf(n, "str.at takes two arguments")
		}
		x, err := t.strVarOf(args[0])
		if err != nil {
			return nil, err
		}
		i, err := t.intExpr(args[1])
		if err != nil {
			return nil, err
		}
		y := prob.NewStrVar(t.freshName("at"))
		t.aux = append(t.aux, prob.CharAt(y, x, i))
		return strcon.T(strcon.TV(y)), nil
	case "str.substr":
		if len(args) != 3 {
			return nil, t.errf(n, "str.substr takes three arguments")
		}
		x, err := t.strVarOf(args[0])
		if err != nil {
			return nil, err
		}
		i, err := t.intExpr(args[1])
		if err != nil {
			return nil, err
		}
		l, err := t.intExpr(args[2])
		if err != nil {
			return nil, err
		}
		y := prob.NewStrVar(t.freshName("ss"))
		t.aux = append(t.aux, prob.Substr(y, x, i, l))
		return strcon.T(strcon.TV(y)), nil
	case "str.from_int", "str.from.int":
		if len(args) != 1 {
			return nil, t.errf(n, "%s takes one argument", op)
		}
		e, err := t.intExpr(args[0])
		if err != nil {
			return nil, err
		}
		nv := prob.Lia.Fresh(t.freshName("fi"))
		t.aux = append(t.aux, &strcon.Arith{F: lia.Eq(lia.V(nv), e)})
		y := prob.NewStrVar(t.freshName("fs"))
		t.aux = append(t.aux, &strcon.ToStr{N: nv, X: y})
		return strcon.T(strcon.TV(y)), nil
	}
	return nil, t.errf(n, "unsupported string operator %q", op)
}

// intExpr translates an integer term to a linear expression.
func (t *translator) intExpr(n *node) (*lia.LinExpr, error) {
	if n.list == nil {
		if v, ok := t.script.IntVars[n.atom]; ok {
			return lia.V(v), nil
		}
		if k, err := strconv.ParseInt(n.atom, 10, 64); err == nil {
			return lia.Const(k), nil
		}
		return nil, t.errf(n, "unknown integer symbol %q", n.atom)
	}
	if len(n.list) == 0 {
		return nil, t.errf(n, "empty term")
	}
	if err := t.enter(n); err != nil {
		return nil, err
	}
	defer t.leave()
	op := n.list[0].atom
	args := n.list[1:]
	switch op {
	case "+":
		out := lia.NewLin()
		for _, a := range args {
			e, err := t.intExpr(a)
			if err != nil {
				return nil, err
			}
			out.Add(e)
		}
		return out, nil
	case "-":
		if len(args) == 0 {
			return nil, t.errf(n, "- takes at least one argument")
		}
		if len(args) == 1 {
			e, err := t.intExpr(args[0])
			if err != nil {
				return nil, err
			}
			return e.Clone().Neg(), nil
		}
		out, err := t.intExpr(args[0])
		if err != nil {
			return nil, err
		}
		out = out.Clone()
		for _, a := range args[1:] {
			e, err := t.intExpr(a)
			if err != nil {
				return nil, err
			}
			out.Sub(e)
		}
		return out, nil
	case "*":
		if len(args) != 2 {
			return nil, t.errf(n, "* takes two arguments")
		}
		a, errA := t.intExpr(args[0])
		b, errB := t.intExpr(args[1])
		if errA != nil {
			return nil, errA
		}
		if errB != nil {
			return nil, errB
		}
		if ka, isA := a.IsConst(); isA {
			return b.Clone().Scale(ka), nil
		}
		if kb, isB := b.IsConst(); isB {
			return a.Clone().Scale(kb), nil
		}
		return nil, t.errf(n, "nonlinear multiplication is not supported")
	case "str.len":
		if len(args) != 1 {
			return nil, t.errf(n, "str.len takes one argument")
		}
		x, err := t.strVarOf(args[0])
		if err != nil {
			return nil, err
		}
		return lia.V(t.script.Problem.LenVar(x)), nil
	case "str.to_int", "str.to.int":
		if len(args) != 1 {
			return nil, t.errf(n, "%s takes one argument", op)
		}
		x, err := t.strVarOf(args[0])
		if err != nil {
			return nil, err
		}
		nv := t.script.Problem.Lia.Fresh(t.freshName("ti"))
		t.aux = append(t.aux, &strcon.ToNum{N: nv, X: x})
		return lia.V(nv), nil
	case "ite":
		if len(args) != 3 {
			return nil, t.errf(n, "ite takes three arguments")
		}
		condP, err := t.boolTerm(args[0], true)
		if err != nil {
			return nil, err
		}
		condN, err := t.boolTerm(args[0], false)
		if err != nil {
			return nil, err
		}
		e1, err := t.intExpr(args[1])
		if err != nil {
			return nil, err
		}
		e2, err := t.intExpr(args[2])
		if err != nil {
			return nil, err
		}
		v := t.script.Problem.Lia.Fresh(t.freshName("ite"))
		t.aux = append(t.aux, &strcon.OrCon{Args: []strcon.Constraint{
			&strcon.AndCon{Args: []strcon.Constraint{condP, &strcon.Arith{F: lia.Eq(lia.V(v), e1)}}},
			&strcon.AndCon{Args: []strcon.Constraint{condN, &strcon.Arith{F: lia.Eq(lia.V(v), e2)}}},
		}})
		return lia.V(v), nil
	}
	return nil, t.errf(n, "unsupported integer operator %q", op)
}

// reTerm translates a regular-expression term to an automaton.
func (t *translator) reTerm(n *node) (*automata.NFA, error) {
	if n.list == nil {
		switch n.atom {
		case "re.allchar":
			return automata.Symbol(alphabet.AnyRange), nil
		case "re.all":
			return automata.AnyStar(), nil
		case "re.none", "re.nostr":
			return automata.Empty(), nil
		}
		return nil, t.errf(n, "unsupported regex atom %q", n.atom)
	}
	if len(n.list) == 0 {
		return nil, t.errf(n, "empty term")
	}
	if err := t.enter(n); err != nil {
		return nil, err
	}
	defer t.leave()
	op := n.list[0].atom
	args := n.list[1:]
	unary := func() (*automata.NFA, error) {
		if len(args) != 1 {
			return nil, t.errf(n, "%s takes one argument", op)
		}
		return t.reTerm(args[0])
	}
	switch op {
	case "str.to_re", "str.to.re":
		if len(args) != 1 || !args[0].str {
			return nil, t.errf(n, "str.to_re takes a string literal")
		}
		return automata.Word(alphabet.Encode(args[0].atom)), nil
	case "re.++", "re.concat":
		out := automata.Epsilon()
		for _, a := range args {
			r, err := t.reTerm(a)
			if err != nil {
				return nil, err
			}
			out = automata.Concat(out, r)
		}
		return out, nil
	case "re.union":
		out := automata.Empty()
		for _, a := range args {
			r, err := t.reTerm(a)
			if err != nil {
				return nil, err
			}
			out = automata.Union(out, r)
		}
		return out, nil
	case "re.inter":
		var out *automata.NFA
		for _, a := range args {
			r, err := t.reTerm(a)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = r
			} else {
				out = automata.Product(out, r)
			}
		}
		if out == nil {
			return automata.AnyStar(), nil
		}
		return out, nil
	case "re.*", "re.star":
		r, err := unary()
		if err != nil {
			return nil, err
		}
		return automata.Star(r), nil
	case "re.+", "re.plus":
		r, err := unary()
		if err != nil {
			return nil, err
		}
		return automata.Plus(r), nil
	case "re.opt":
		r, err := unary()
		if err != nil {
			return nil, err
		}
		return automata.Optional(r), nil
	case "re.comp":
		r, err := unary()
		if err != nil {
			return nil, err
		}
		return r.Complement(), nil
	case "re.range":
		if len(args) != 2 || !args[0].str || !args[1].str ||
			len(args[0].atom) != 1 || len(args[1].atom) != 1 {
			return nil, t.errf(n, "re.range takes two single-character literals")
		}
		lo, hi := args[0].atom[0], args[1].atom[0]
		out := automata.Empty()
		for _, r := range alphabet.CodeRanges(lo, hi) {
			out = automata.Union(out, automata.Symbol(r))
		}
		return out, nil
	case "re.loop":
		// (re.loop r lo hi) legacy form.
		if len(args) == 3 {
			r, err := t.reTerm(args[0])
			if err != nil {
				return nil, err
			}
			lo, err1 := strconv.Atoi(args[1].atom)
			hi, err2 := strconv.Atoi(args[2].atom)
			if err1 != nil || err2 != nil {
				return nil, t.errf(n, "re.loop bounds must be integers")
			}
			// Repeat unrolls the automaton hi times; cap the bounds so
			// adversarial inputs cannot demand gigantic unrollings.
			const maxLoopBound = 512
			if lo < 0 || hi < lo || hi > maxLoopBound {
				return nil, t.errf(n, "re.loop bounds out of range (0 <= lo <= hi <= %d)", maxLoopBound)
			}
			return automata.Repeat(r, lo, hi), nil
		}
		return nil, t.errf(n, "unsupported re.loop arity")
	}
	if op == "_" || strings.HasPrefix(op, "(_") {
		return nil, t.errf(n, "indexed regex operators are not supported")
	}
	return nil, t.errf(n, "unsupported regex operator %q", op)
}
