package smtlib_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/smtlib"
)

// FuzzParseSMTLIB throws arbitrary bytes at the SMT-LIB front end. The
// parser must either return a script or an error — never panic and
// never recurse past its depth budget — for any input. Seeds combine
// real scripts rendered from the generated benchmark suites with
// hand-picked tricky fragments (deep nesting, escapes, huge literals,
// malformed arities).
func FuzzParseSMTLIB(f *testing.F) {
	for _, suite := range append(bench.Table1Suites(1), bench.Table2Suites(1)...) {
		for _, inst := range suite.Instances {
			src, err := smtlib.Write(inst.Build())
			if err != nil {
				continue // unwritable instances are not parser seeds
			}
			f.Add(src)
		}
	}
	for _, s := range []string{
		"",
		"(",
		")",
		"(check-sat)",
		"(assert",
		"(assert (= x \"\\u{1F600}\"))",
		"(declare-fun x () String)(assert (= x \"a\\\"b\"))(check-sat)",
		"(assert (not))",
		"(assert (not (not (not true))))",
		"(assert (= (str.++) \"\"))",
		"(assert (str.in_re x (re.loop (str.to_re \"a\") 2 100000000)))",
		"(assert (str.in_re x (re.* (re.* (re.* re.allchar)))))",
		"(assert (= (str.substr x 0) x))",
		"(assert (> (str.to_int x)))",
		"(assert (= (str.from_int) x))",
		"(assert (and (= x y) (or (= y z))))",
		"(set-logic QF_SLIA)(declare-fun |weird name| () String)(check-sat)",
		"(assert (= x \"" + strings.Repeat("a", 4096) + "\"))",
		strings.Repeat("(assert (and ", 600) + "true" + strings.Repeat("))", 600),
		strings.Repeat("(", 10000),
		"(assert (str.in_re x " + strings.Repeat("(re.union ", 500) +
			"(str.to_re \"a\")" + strings.Repeat(" (re.none))", 500) + "))",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := smtlib.Parse(src)
		if err == nil && script == nil {
			t.Fatal("Parse returned nil script and nil error")
		}
	})
}
