package smtlib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lia"
	"repro/internal/strcon"
)

func solveSrc(t *testing.T, src string) (core.Result, *Script) {
	t.Helper()
	sc, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res := core.Solve(sc.Problem, core.Options{Timeout: 30 * time.Second})
	return res, sc
}

func TestParseBasicEquation(t *testing.T) {
	src := `
(set-logic QF_S)
(declare-fun x () String)
(declare-fun y () String)
(assert (= (str.++ x y) "hello"))
(assert (= (str.len x) 2))
(check-sat)
`
	res, sc := solveSrc(t, src)
	if res.Status != core.StatusSat {
		t.Fatalf("got %v", res.Status)
	}
	if res.Model.Str[sc.StrVars["x"]] != "he" {
		t.Fatalf("x = %q", res.Model.Str[sc.StrVars["x"]])
	}
	if !sc.CheckSat {
		t.Error("check-sat not detected")
	}
}

func TestParseToIntFromInt(t *testing.T) {
	src := `
(declare-fun s () String)
(declare-const n Int)
(assert (= n (str.to_int s)))
(assert (= n 42))
(assert (= (str.len s) 3))
(check-sat)
`
	res, sc := solveSrc(t, src)
	if res.Status != core.StatusSat {
		t.Fatalf("got %v", res.Status)
	}
	if res.Model.Str[sc.StrVars["s"]] != "042" {
		t.Fatalf("s = %q", res.Model.Str[sc.StrVars["s"]])
	}
	src2 := `
(declare-fun s () String)
(assert (= s (str.from_int 99)))
(check-sat)
`
	res2, sc2 := solveSrc(t, src2)
	if res2.Status != core.StatusSat || res2.Model.Str[sc2.StrVars["s"]] != "99" {
		t.Fatalf("from_int: %v", res2.Status)
	}
}

func TestParseRegexMembership(t *testing.T) {
	src := `
(declare-fun x () String)
(assert (str.in_re x (re.+ (re.range "0" "9"))))
(assert (not (str.in_re x (re.* (str.to_re "0")))))
(assert (= (str.len x) 2))
(check-sat)
`
	res, sc := solveSrc(t, src)
	if res.Status != core.StatusSat {
		t.Fatalf("got %v", res.Status)
	}
	got := res.Model.Str[sc.StrVars["x"]]
	if len(got) != 2 || got == "00" {
		t.Fatalf("x = %q", got)
	}
}

func TestParsePredicates(t *testing.T) {
	src := `
(declare-fun x () String)
(assert (str.prefixof "ab" x))
(assert (str.suffixof "yz" x))
(assert (str.contains x "m"))
(assert (= (str.len x) 5))
(check-sat)
`
	res, sc := solveSrc(t, src)
	if res.Status != core.StatusSat {
		t.Fatalf("got %v", res.Status)
	}
	got := res.Model.Str[sc.StrVars["x"]]
	if !strings.HasPrefix(got, "ab") || !strings.HasSuffix(got, "yz") || !strings.Contains(got, "m") {
		t.Fatalf("x = %q", got)
	}
}

func TestParseIteAndCharAt(t *testing.T) {
	src := `
(declare-fun v () String)
(declare-const d Int)
(declare-const e Int)
(assert (= d (str.to_int (str.at v 0))))
(assert (= e (ite (> (* 2 d) 9) (- (* 2 d) 9) (* 2 d))))
(assert (= e 3))
(assert (= (str.len v) 1))
(check-sat)
`
	res, sc := solveSrc(t, src)
	if res.Status != core.StatusSat {
		t.Fatalf("got %v", res.Status)
	}
	// e = 3 requires 2d-9 = 3 (d=6), since 2d = 3 has no integer d.
	if got := res.Model.Str[sc.StrVars["v"]]; got != "6" {
		t.Fatalf("v = %q, want 6", got)
	}
}

func TestParseUnsat(t *testing.T) {
	src := `
(declare-fun x () String)
(assert (= x "ab"))
(assert (= x "ba"))
(check-sat)
`
	res, _ := solveSrc(t, src)
	if res.Status != core.StatusUnsat {
		t.Fatalf("got %v", res.Status)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`(declare-fun x () Widget)`,
		`(assert (= x "a"))`,
		`(declare-fun f (Int) Int)`,
		`(assert (str.in_re "a" (re.magic)))(declare-fun y () String)`,
		`(`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(n, 42)},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)},
	)
	src, err := Write(prob)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	sc, err := Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	res := core.Solve(sc.Problem, core.Options{Timeout: 30 * time.Second})
	if res.Status != core.StatusSat {
		t.Fatalf("round-trip solve: %v\n%s", res.Status, src)
	}
	if got := res.Model.Str[sc.StrVars["x"]]; strcon.ToNumValue(got).Int64() != 42 {
		t.Fatalf("x = %q", got)
	}
}

func TestWriteMembershipPattern(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.Membership{X: x, A: nil, Pattern: "(ab|cd)+[0-9]"})
	src, err := Write(prob)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(src, "re.union") || !strings.Contains(src, "re.range") {
		t.Fatalf("pattern not converted:\n%s", src)
	}
}
