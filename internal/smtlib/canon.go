package smtlib

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// Canon is the canonical form of a problem. Variables are alpha-renamed
// into canonical indices assigned in first-use order over the
// constraint list, so two problems that differ only in variable names
// (or in the declaration order of their string variables) serialize —
// and therefore hash — equal, while any structural difference changes
// the hash. Length variables serialize as len(s<i>) of their string
// variable, so a constraint on |x| can never collide with one on a free
// integer. Regular memberships hash the automaton structurally (the
// informational Pattern field is ignored): automaton construction from
// a term is deterministic, so equal sources modulo names build
// byte-identical serializations.
//
// The StrOrder/IntOrder tables are the transport layer of the verdict
// cache: because canonical indices are assigned the same way in every
// alpha-equivalent problem, a witness expressed in canonical
// coordinates (Witness) can be moved from the problem that produced it
// onto any problem with the same canonical form.
//
// Declaration-order permutations of *integer* variables are not
// normalized away: terms inside a linear expression are ordered by pool
// index, which such a permutation changes. The hash stays sound — a
// changed hash can only miss a cache, never corrupt it.
type Canon struct {
	// Form is the canonical serialization; Hash is derived from it.
	// Kept mainly for tests and diagnostics.
	Form string
	// Hash is the hex-encoded SHA-256 of Form.
	Hash string
	// StrOrder maps canonical string indices to this problem's
	// variables (first-use order).
	StrOrder []strcon.Var
	// IntOrder maps canonical integer indices to this problem's lia
	// variables (first-use order). Length variables are excluded: they
	// serialize as len(s<i>) and are derived from the string values.
	IntOrder []lia.Var
}

// Witness is a SAT model in canonical coordinates: Str[i] is the value
// of the i-th canonical string variable, Int[i] of the i-th canonical
// integer variable. It is transportable between problems with equal
// canonical forms via Canon.Assignment.
type Witness struct {
	Str []string
	Int []*big.Int
}

// Canonicalize computes the canonical form of a problem. It fails only
// on constraint trees past the nesting budget or of unknown type.
func Canonicalize(prob *strcon.Problem) (*Canon, error) {
	c := &canonizer{
		strID: map[strcon.Var]int{},
		intID: map[lia.Var]int{},
		lenOf: map[lia.Var]strcon.Var{},
	}
	for x, lv := range prob.LenVars() {
		c.lenOf[lv] = x
	}
	for _, con := range prob.Constraints {
		if err := c.con(con, 0); err != nil {
			return nil, err
		}
		c.b.WriteByte('\n')
	}
	form := c.b.String()
	sum := sha256.Sum256([]byte(form))
	return &Canon{
		Form:     form,
		Hash:     hex.EncodeToString(sum[:]),
		StrOrder: c.strOrder,
		IntOrder: c.intOrder,
	}, nil
}

// WitnessOf expresses a model in canonical coordinates. Values the
// model lacks default to "" and 0, exactly as the concrete evaluator
// reads them. Integer values are copied, never aliased.
func (c *Canon) WitnessOf(a *strcon.Assignment) *Witness {
	w := &Witness{
		Str: make([]string, len(c.StrOrder)),
		Int: make([]*big.Int, len(c.IntOrder)),
	}
	if a == nil {
		for i := range w.Int {
			w.Int[i] = new(big.Int)
		}
		return w
	}
	for i, v := range c.StrOrder {
		w.Str[i] = a.Str[v]
	}
	for i, v := range c.IntOrder {
		w.Int[i] = new(big.Int).Set(a.Int.Value(v))
	}
	return w
}

// Assignment maps a canonical witness onto this problem's variables —
// the other half of the cache transport. It returns nil when the
// witness shape does not match (callers treat that as a failed
// revalidation, not an error). Integer values are copied.
func (c *Canon) Assignment(w *Witness) *strcon.Assignment {
	if w == nil || len(w.Str) != len(c.StrOrder) || len(w.Int) != len(c.IntOrder) {
		return nil
	}
	a := &strcon.Assignment{
		Str: make(map[strcon.Var]string, len(c.StrOrder)),
		Int: make(lia.Model, len(c.IntOrder)),
	}
	for i, v := range c.StrOrder {
		a.Str[v] = w.Str[i]
	}
	for i, v := range c.IntOrder {
		if w.Int[i] == nil {
			return nil
		}
		a.Int[v] = new(big.Int).Set(w.Int[i])
	}
	return a
}

// canonizer accumulates the canonical serialization and the first-use
// variable numbering.
type canonizer struct {
	b        strings.Builder
	strID    map[strcon.Var]int
	strOrder []strcon.Var
	intID    map[lia.Var]int
	intOrder []lia.Var
	lenOf    map[lia.Var]strcon.Var
}

func (c *canonizer) strVar(v strcon.Var) string {
	id, ok := c.strID[v]
	if !ok {
		id = len(c.strOrder)
		c.strID[v] = id
		c.strOrder = append(c.strOrder, v)
	}
	return fmt.Sprintf("s%d", id)
}

func (c *canonizer) intVar(v lia.Var) string {
	if x, ok := c.lenOf[v]; ok {
		return "len(" + c.strVar(x) + ")"
	}
	id, ok := c.intID[v]
	if !ok {
		id = len(c.intOrder)
		c.intID[v] = id
		c.intOrder = append(c.intOrder, v)
	}
	return fmt.Sprintf("i%d", id)
}

func (c *canonizer) term(t strcon.Term) {
	c.b.WriteByte('[')
	for i, it := range t {
		if i > 0 {
			c.b.WriteByte(',')
		}
		if it.IsVar {
			c.b.WriteString(c.strVar(it.V))
		} else {
			fmt.Fprintf(&c.b, "%q", it.Const)
		}
	}
	c.b.WriteByte(']')
}

// con serializes one constraint. depth bounds the recursion through
// nested conjunctions/disjunctions (defense in depth; the parser
// already bounds its own nesting).
func (c *canonizer) con(con strcon.Constraint, depth int) error {
	if depth > maxParseDepth {
		return fmt.Errorf("smtlib: canonical form exceeds nesting budget (%d)", maxParseDepth)
	}
	switch t := con.(type) {
	case *strcon.WordEq:
		c.b.WriteString("eq(")
		c.term(t.L)
		c.b.WriteByte(',')
		c.term(t.R)
		c.b.WriteByte(')')
	case *strcon.WordNeq:
		c.b.WriteString("neq(")
		c.term(t.L)
		c.b.WriteByte(',')
		c.term(t.R)
		c.b.WriteByte(')')
	case *strcon.Membership:
		fmt.Fprintf(&c.b, "mem(%s,%t,", c.strVar(t.X), t.Neg)
		c.nfa(t.A)
		c.b.WriteByte(')')
	case *strcon.Arith:
		c.b.WriteString("arith(")
		if err := c.formula(t.F, depth+1); err != nil {
			return err
		}
		c.b.WriteByte(')')
	case *strcon.ToNum:
		fmt.Fprintf(&c.b, "tonum(%s,%s)", c.intVar(t.N), c.strVar(t.X))
	case *strcon.ToStr:
		fmt.Fprintf(&c.b, "tostr(%s,%s)", c.intVar(t.N), c.strVar(t.X))
	case *strcon.Ord:
		fmt.Fprintf(&c.b, "ord(%s,%s)", c.intVar(t.N), c.strVar(t.X))
	case *strcon.AndCon:
		c.b.WriteString("all(")
		for i, a := range t.Args {
			if i > 0 {
				c.b.WriteByte(',')
			}
			if err := c.con(a, depth+1); err != nil {
				return err
			}
		}
		c.b.WriteByte(')')
	case *strcon.OrCon:
		c.b.WriteString("any(")
		for i, a := range t.Args {
			if i > 0 {
				c.b.WriteByte(',')
			}
			if err := c.con(a, depth+1); err != nil {
				return err
			}
		}
		c.b.WriteByte(')')
	default:
		return fmt.Errorf("smtlib: cannot canonicalize constraint %T", con)
	}
	return nil
}

func (c *canonizer) formula(f lia.Formula, depth int) error {
	if depth > maxParseDepth {
		return fmt.Errorf("smtlib: canonical form exceeds nesting budget (%d)", maxParseDepth)
	}
	switch t := f.(type) {
	case lia.Bool:
		if bool(t) {
			c.b.WriteString("true")
		} else {
			c.b.WriteString("false")
		}
	case *lia.Not:
		c.b.WriteString("not(")
		if err := c.formula(t.F, depth+1); err != nil {
			return err
		}
		c.b.WriteByte(')')
	case *lia.NAry:
		if t.Op == lia.OpOr {
			c.b.WriteString("or(")
		} else {
			c.b.WriteString("and(")
		}
		for i, a := range t.Args {
			if i > 0 {
				c.b.WriteByte(',')
			}
			if err := c.formula(a, depth+1); err != nil {
				return err
			}
		}
		c.b.WriteByte(')')
	case *lia.Atom:
		fmt.Fprintf(&c.b, "cmp(%s,", t.Op)
		c.lin(t.E)
		c.b.WriteByte(')')
	default:
		return fmt.Errorf("smtlib: cannot canonicalize formula %T", f)
	}
	return nil
}

// lin serializes a linear expression with its terms ordered by pool
// index (Vars returns ascending order) — deterministic, and invariant
// under renaming (which never renumbers the pool).
func (c *canonizer) lin(e *lia.LinExpr) {
	for _, v := range e.Vars() {
		fmt.Fprintf(&c.b, "%s*%s+", e.Coeff(v), c.intVar(v))
	}
	c.b.WriteString(e.ConstPart().String())
}

// nfa serializes an automaton structurally: initial state, sorted final
// states, transitions sorted by (from, to, eps, lo, hi). State
// numbering is whatever construction produced — deterministic, hence
// canonical across alpha-renamed parses of the same term.
func (c *canonizer) nfa(a *automata.NFA) {
	if a == nil {
		c.b.WriteString("nfa(nil)")
		return
	}
	finals := append([]int(nil), a.Finals...)
	sort.Ints(finals)
	trans := append([]automata.Transition(nil), a.Trans...)
	sort.Slice(trans, func(i, j int) bool {
		ti, tj := trans[i], trans[j]
		if ti.From != tj.From {
			return ti.From < tj.From
		}
		if ti.To != tj.To {
			return ti.To < tj.To
		}
		if ti.Eps != tj.Eps {
			return !ti.Eps
		}
		if ti.R.Lo != tj.R.Lo {
			return ti.R.Lo < tj.R.Lo
		}
		return ti.R.Hi < tj.R.Hi
	})
	fmt.Fprintf(&c.b, "nfa(%d,%d;", a.NumStates, a.Init)
	for i, f := range finals {
		if i > 0 {
			c.b.WriteByte(',')
		}
		fmt.Fprintf(&c.b, "%d", f)
	}
	c.b.WriteByte(';')
	for i, t := range trans {
		if i > 0 {
			c.b.WriteByte(',')
		}
		if t.Eps {
			fmt.Fprintf(&c.b, "%d>%d:e", t.From, t.To)
		} else {
			fmt.Fprintf(&c.b, "%d>%d:%d-%d", t.From, t.To, t.R.Lo, t.R.Hi)
		}
	}
	c.b.WriteByte(')')
}
