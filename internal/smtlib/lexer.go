// Package smtlib implements a reader and writer for the SMT-LIB 2
// fragment used by string-solving benchmarks (QF_S / QF_SLIA): sorts
// Bool, Int and String; the core boolean connectives; linear integer
// arithmetic; and the string operations str.++, str.len, str.at,
// str.substr, str.prefixof, str.suffixof, str.contains, str.in_re
// (with the re.* algebra), str.to_int and str.from_int (including the
// older str.to.int/str.from.int spellings used by legacy benchmarks).
package smtlib

import (
	"fmt"
	"strings"
)

// node is an S-expression: either an atom or a list.
type node struct {
	atom string
	str  bool // atom is a string literal (quotes removed, unescaped)
	list []*node
	line int
}

func (n *node) isAtom(s string) bool {
	return n != nil && n.list == nil && !n.str && n.atom == s
}

func (n *node) String() string {
	if n.list == nil {
		if n.str {
			return `"` + n.atom + `"`
		}
		return n.atom
	}
	parts := make([]string, len(n.list))
	for i, c := range n.list {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// parseSExprs tokenizes and parses a whole file into top-level forms.
func parseSExprs(src string) ([]*node, error) {
	p := &sparser{src: src, line: 1}
	var out []*node
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return out, nil
		}
		n, err := p.sexpr()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

// maxParseDepth bounds S-expression nesting. The recursive-descent
// parser would otherwise overflow the goroutine stack on adversarial
// inputs like a long run of '('; real benchmark files stay far below
// this.
const maxParseDepth = 4096

type sparser struct {
	src   string
	pos   int
	line  int
	depth int // current sexpr recursion depth (bounded by maxParseDepth)
}

func (p *sparser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == ';':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *sparser) sexpr() (*node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("line %d: unexpected end of input", p.line)
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, fmt.Errorf("line %d: expression nesting exceeds depth budget (%d)", p.line, maxParseDepth)
	}
	line := p.line
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		out := &node{list: []*node{}, line: line}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("line %d: unterminated list", line)
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return out, nil
			}
			child, err := p.sexpr()
			if err != nil {
				return nil, err
			}
			out.list = append(out.list, child)
		}
	case c == ')':
		return nil, fmt.Errorf("line %d: unexpected ')'", line)
	case c == '"':
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			ch := p.src[p.pos]
			if ch == '"' {
				// SMT-LIB escapes a quote by doubling it.
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '"' {
					b.WriteByte('"')
					p.pos += 2
					continue
				}
				p.pos++
				return &node{atom: unescape(b.String()), str: true, line: line}, nil
			}
			if ch == '\n' {
				p.line++
			}
			b.WriteByte(ch)
			p.pos++
		}
	case c == '|':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '|' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("line %d: unterminated quoted symbol", line)
		}
		sym := p.src[start:p.pos]
		p.pos++
		return &node{atom: sym, line: line}, nil
	default:
		start := p.pos
		for p.pos < len(p.src) {
			ch := p.src[p.pos]
			if ch == '(' || ch == ')' || ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == ';' || ch == '"' {
				break
			}
			p.pos++
		}
		return &node{atom: p.src[start:p.pos], line: line}, nil
	}
}

// unescape handles the legacy \xNN / \n / \\ escapes some benchmark
// files use inside string literals.
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		switch s[i+1] {
		case 'n':
			b.WriteByte('\n')
			i++
		case 't':
			b.WriteByte('\t')
			i++
		case '\\':
			b.WriteByte('\\')
			i++
		case 'x':
			if i+3 < len(s) {
				hi, okH := hexVal(s[i+2])
				lo, okL := hexVal(s[i+3])
				if okH && okL {
					b.WriteByte(byte(hi<<4 | lo))
					i += 3
					continue
				}
			}
			b.WriteByte(s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func hexVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}
