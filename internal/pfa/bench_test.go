package pfa

import (
	"fmt"
	"testing"

	"repro/internal/lia"
)

// benchSync builds the synchronization formula of two standard flat
// PFAs. With warm=false the skeleton cache is emptied first, so every
// iteration pays the full product construction; with warm=true only
// the first iteration does.
func benchSync(b *testing.B, loops, loopLen int, warm bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !warm {
			syncCache.Lock()
			syncCache.m = make(map[string]*syncSkeleton)
			syncCache.Unlock()
		}
		pool := lia.NewPool()
		x := NewFlat(pool, loops, loopLen, "x")
		y := NewFlat(pool, loops, loopLen, "y")
		reg := &CutRegistry{}
		f := Sync(nil, pool, x.PA(), y.PA(), reg, nil)
		if lia.FormulaSize(f) == 0 {
			b.Fatal("empty synchronization formula")
		}
	}
}

// BenchmarkSyncProduct measures Ψ_{P×P'} construction with the product
// skeleton rebuilt every time (cold) versus served from the template
// cache (warm), at the refinement loop's typical PFA sizes.
func BenchmarkSyncProduct(b *testing.B) {
	for _, sz := range []struct{ loops, loopLen int }{{2, 2}, {3, 3}, {4, 4}} {
		name := fmt.Sprintf("p%dq%d", sz.loops, sz.loopLen)
		b.Run("cold/"+name, func(b *testing.B) {
			benchSync(b, sz.loops, sz.loopLen, false)
		})
		b.Run("warm/"+name, func(b *testing.B) {
			benchSync(b, sz.loops, sz.loopLen, true)
		})
	}
}
