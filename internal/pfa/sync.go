package pfa

import (
	"strconv"
	"sync"

	"repro/internal/alphabet"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/parikh"
)

// prodEdge is one transition of the asynchronous product: at least one
// of left/right is a transition index into the respective automaton;
// -1 marks the side that stays put (the other side reads a variable
// that must then be ε).
type prodEdge struct {
	from, to    int // product state ids
	left, right int // transition indices, -1 = stay
}

// syncSkeleton is the pool-independent template of a synchronization
// formula: the trimmed asynchronous product graph. It depends only on
// the structural shape of the two operands — state counts, transition
// endpoints and label ranges — never on their lia variables, so one
// skeleton serves every branch and every solve whose automata share
// that shape. Skeletons are immutable once stored; Sync instantiates
// them into the caller's pool by allocating fresh flow variables (the
// allocation sequence is identical on cache hit and miss, which is what
// keeps variable numbering — and with it run-to-run determinism —
// unchanged by caching).
type syncSkeleton struct {
	empty bool
	aut   parikh.Automaton // trimmed product graph (read-only)
	edges []prodEdge       // index-aligned with aut.Edges
}

// syncCache memoizes product skeletons across branches and solves. The
// cap bounds memory on adversarial workloads; once full, new shapes are
// rebuilt on every request (correct, just slower).
var syncCache = struct {
	sync.Mutex
	m map[string]*syncSkeleton
}{m: make(map[string]*syncSkeleton)}

const syncCacheCap = 512

// shapeKey appends the structural shape of one operand: everything the
// product construction reads except the lia variables.
func shapeKey(b []byte, p *PA) []byte {
	b = strconv.AppendInt(b, int64(p.NumStates), 32)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Init), 32)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Final), 32)
	for _, t := range p.Trans {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(t.From), 32)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(t.To), 32)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(t.Lo), 32)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(t.Hi), 32)
	}
	return b
}

// skeleton returns the product skeleton for p and q, from the cache
// when the shape has been built before. Hit/miss counters land on st
// (nil-safe). A build truncated by the resource governor is returned
// as empty but never cached: the cache may only hold skeletons that
// are correct independent of any budget.
func skeleton(ec *engine.Ctx, p, q *PA, st *engine.Stats) *syncSkeleton {
	key := make([]byte, 0, 64)
	key = shapeKey(key, p)
	key = append(key, '|')
	key = shapeKey(key, q)
	k := string(key)

	syncCache.Lock()
	sk, ok := syncCache.m[k]
	syncCache.Unlock()
	if ok {
		st.Add("sync.hit", 1)
		return sk
	}
	st.Add("sync.miss", 1)
	sk, truncated := buildSkeleton(ec, p, q)
	if truncated {
		st.Add("sync.truncated", 1)
		return sk
	}
	syncCache.Lock()
	if len(syncCache.m) < syncCacheCap {
		syncCache.m[k] = sk
	}
	syncCache.Unlock()
	return sk
}

// buildSkeleton constructs the asynchronous product of p and q, trimmed
// to states reachable from (init,init) and co-reachable to
// (final,final). Product growth is charged to ec's resource budget;
// when it trips, the build stops and returns an empty skeleton with
// truncated set — sound only because the tripped context is stopped,
// which forces the enclosing solve to UNKNOWN rather than trusting the
// empty product.
func buildSkeleton(ec *engine.Ctx, p, q *PA) (sk *syncSkeleton, truncated bool) {
	type pair struct{ x, y int }
	id := map[pair]int{}
	var states []pair
	get := func(pr pair) int {
		if i, ok := id[pr]; ok {
			return i
		}
		id[pr] = len(states)
		states = append(states, pr)
		return len(states) - 1
	}

	// Index transitions by source state for both automata.
	pOut := make([][]int, p.NumStates)
	for i, t := range p.Trans {
		pOut[t.From] = append(pOut[t.From], i)
	}
	qOut := make([][]int, q.NumStates)
	for i, t := range q.Trans {
		qOut[t.From] = append(qOut[t.From], i)
	}

	var edges []prodEdge
	get(pair{p.Init, q.Init})
	billed := 0
	for si := 0; si < len(states); si++ {
		// Bill the states and edges materialized since the last check:
		// the product can be quadratic in the operands, and this loop is
		// where an adversarial instance's memory actually gets allocated.
		if grown := len(states) + len(edges) - billed; grown > 0 || si%64 == 0 {
			if ec.Charge("pfa product", int64(grown)) {
				return &syncSkeleton{empty: true}, true
			}
			billed += grown
		}
		st := states[si]
		for _, ti := range pOut[st.x] {
			t := p.Trans[ti]
			// Synchronous move: prune label pairs whose value ranges
			// cannot intersect.
			for _, ui := range qOut[st.y] {
				u := q.Trans[ui]
				if maxi(t.Lo, u.Lo) > mini(t.Hi, u.Hi) {
					continue
				}
				to := get(pair{t.To, u.To})
				edges = append(edges, prodEdge{from: si, to: to, left: ti, right: ui})
			}
			// Left reads an ε-valued variable, right stays; impossible
			// when the variable cannot take ε.
			if t.Lo <= -1 {
				to := get(pair{t.To, st.y})
				edges = append(edges, prodEdge{from: si, to: to, left: ti, right: -1})
			}
		}
		for _, ui := range qOut[st.y] {
			u := q.Trans[ui]
			if u.Lo > -1 {
				continue
			}
			to := get(pair{st.x, u.To})
			edges = append(edges, prodEdge{from: si, to: to, left: -1, right: ui})
		}
	}
	finalID, ok := id[pair{p.Final, q.Final}]
	if !ok {
		return &syncSkeleton{empty: true}, false
	}

	// Co-reachability pruning. The reverse index and the visited set are
	// the allocations; bill them before the traversal so the worklist
	// below runs under an already-debited budget.
	if ec.Charge("pfa coreach", int64(len(states))) {
		return &syncSkeleton{empty: true}, true
	}
	rev := make([][]int, len(states)) // state -> incoming edge indices
	for i, e := range edges {
		rev[e.to] = append(rev[e.to], i)
	}
	co := make([]bool, len(states))
	co[finalID] = true
	stack := []int{finalID}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range rev[s] {
			f := edges[ei].from
			if !co[f] {
				co[f] = true
				stack = append(stack, f)
			}
		}
	}
	if !co[0] { // product initial state is id 0
		return &syncSkeleton{empty: true}, false
	}
	// Renumber kept states; drop edges touching pruned states.
	newID := make([]int, len(states))
	cnt := 0
	for i := range states {
		if co[i] {
			newID[i] = cnt
			cnt++
		} else {
			newID[i] = -1
		}
	}
	sk = &syncSkeleton{
		aut: parikh.Automaton{NumStates: cnt, Init: newID[0], Final: newID[finalID]},
	}
	for _, e := range edges {
		if co[e.from] && co[e.to] {
			sk.edges = append(sk.edges, prodEdge{from: newID[e.from], to: newID[e.to], left: e.left, right: e.right})
			sk.aut.Edges = append(sk.aut.Edges, parikh.Edge{From: newID[e.from], To: newID[e.to]})
		}
	}
	return sk, false
}

// ProductFlows records one asynchronous product and its flow variables
// for lazy connectivity checking. Act is the product's activation
// variable: the synchronization formula pins it to 1, so in models that
// do not select the disjunct containing the product (where the flow
// variables are meaningless) it can take another value and the
// connectivity cuts are vacuous.
type ProductFlows struct {
	Aut  parikh.Automaton
	Flow []lia.Var
	Act  lia.Var
}

// CutRegistry collects the products built by Sync so that candidate
// models can be screened for used-edge connectivity, with violated
// products refined by cut lemmas (lazy alternative to the eager
// spanning-tree Parikh encoding; see parikh.CutFormula).
type CutRegistry struct {
	Products []ProductFlows
}

// Lemmas inspects a candidate model. It returns nil when every product
// flow is connected; otherwise a conjunction of cut lemmas that exclude
// the model but no genuine solution.
func (r *CutRegistry) Lemmas(m lia.Model) lia.Formula {
	var cuts []lia.Formula
	for _, pr := range r.Products {
		if m.Value(pr.Act).Sign() <= 0 {
			continue // product not active in this model
		}
		used := make([]bool, len(pr.Flow))
		for i, f := range pr.Flow {
			used[i] = m.Value(f).Sign() > 0
		}
		if comp, ok := parikh.Disconnected(pr.Aut, used); !ok {
			cuts = append(cuts, lia.Or(
				lia.Le(lia.V(pr.Act), lia.Const(0)),
				parikh.CutFormula(pr.Aut, pr.Flow, comp),
			))
		}
	}
	if len(cuts) == 0 {
		return nil
	}
	return lia.And(cuts...)
}

// Sync builds the synchronization formula Ψ_{P×P'} of §7 for two
// parametric automata over disjoint variable sets: a linear formula
// whose models pair the word encodings of a common word of both
// automata. It conjoins the Parikh-image formula of the asynchronous
// product, the counter-projection constraints Ψ_#, the value-matching
// constraints Ψ_=, and both automata's local constraints.
//
// When reg is non-nil, the Parikh part uses the flow-only encoding and
// registers the product for lazy connectivity cuts; with a nil reg the
// eager (spanning-tree) encoding is emitted instead.
//
// The product is trimmed to states reachable from (init,init) and
// co-reachable to (final,final); when none remain the intersection is
// empty and False is returned. The trimmed product graph is memoized
// across calls by structural shape (see syncSkeleton); cache counters
// are recorded on st, which may be nil.
//
// Product growth is metered against ec's resource budget (nil ec means
// no metering). A budget trip returns False with ec stopped, which the
// decision procedure degrades to UNKNOWN — a truncated product is never
// trusted for a verdict and never cached.
func Sync(ec *engine.Ctx, pool *lia.Pool, p, q *PA, reg *CutRegistry, st *engine.Stats) lia.Formula {
	sk := skeleton(ec, p, q, st)
	if sk.empty {
		return lia.False
	}
	// Instantiation allocates flow variables and constraints per kept
	// edge — real memory on a cache hit too, so it is billed as well.
	if ec.Charge("pfa product", int64(len(sk.edges))) {
		return lia.False
	}
	kept := sk.edges
	aut := sk.aut

	// Parikh formula of the product over fresh flow variables.
	flow := make([]lia.Var, len(kept))
	for i := range kept {
		flow[i] = pool.Fresh("yprod")
	}
	var conj []lia.Formula
	if reg != nil {
		act := pool.Fresh("act")
		conj = append(conj, parikh.FlowOnly(aut, flow), lia.EqConst(act, 1))
		reg.Products = append(reg.Products, ProductFlows{Aut: aut, Flow: flow, Act: act})
	} else {
		conj = append(conj, parikh.Formula(aut, flow, pool, st))
	}

	// Ψ_#: each component counter equals the sum of product flows whose
	// label projects to its transition. Transitions absent from the
	// trimmed product are forced to zero.
	leftSum := make([]*lia.LinExpr, len(p.Trans))
	for i := range leftSum {
		leftSum[i] = lia.NewLin()
	}
	rightSum := make([]*lia.LinExpr, len(q.Trans))
	for i := range rightSum {
		rightSum[i] = lia.NewLin()
	}
	for i, e := range kept {
		if e.left >= 0 {
			leftSum[e.left].AddTermInt(flow[i], 1)
		}
		if e.right >= 0 {
			rightSum[e.right].AddTermInt(flow[i], 1)
		}
	}
	if !p.Anonymous {
		for i, t := range p.Trans {
			conj = append(conj, lia.Eq(lia.V(t.C), leftSum[i]))
		}
	}
	if !q.Anonymous {
		for i, t := range q.Trans {
			conj = append(conj, lia.Eq(lia.V(t.C), rightSum[i]))
		}
	}

	// Ψ_=: a used product edge forces its two labels to agree (with ε
	// on the stalled side). When one side is anonymous, its variable is
	// value-irrelevant and a run may use the same transition for
	// several characters; the partner's variable is then constrained
	// positionally by the transition's range instead of equated.
	// Implications decided by the static ranges are omitted.
	for i, e := range kept {
		used := lia.Ge(lia.V(flow[i]), lia.Const(1))
		switch {
		case e.left >= 0 && e.right >= 0:
			t, u := p.Trans[e.left], q.Trans[e.right]
			switch {
			case p.Anonymous && q.Anonymous:
				// No external references on either side; the range
				// intersection check at edge generation suffices.
			case q.Anonymous:
				conj = append(conj, rangeConstraint(used, t, u.Lo, u.Hi)...)
			case p.Anonymous:
				conj = append(conj, rangeConstraint(used, u, t.Lo, t.Hi)...)
			default:
				if t.Lo == t.Hi && u.Lo == u.Hi {
					continue // intersecting singletons: already equal
				}
				conj = append(conj, lia.Implies(used, lia.Eq(lia.V(t.V), lia.V(u.V))))
			}
		case e.left >= 0:
			t := p.Trans[e.left]
			if p.Anonymous || t.Lo == -1 && t.Hi == -1 {
				continue
			}
			conj = append(conj, lia.Implies(used,
				lia.EqConst(t.V, alphabet.Epsilon)))
		default:
			u := q.Trans[e.right]
			if q.Anonymous || u.Lo == -1 && u.Hi == -1 {
				continue
			}
			conj = append(conj, lia.Implies(used,
				lia.EqConst(u.V, alphabet.Epsilon)))
		}
	}

	// Local interpretation constraints of both operands.
	conj = append(conj, p.Local...)
	conj = append(conj, q.Local...)
	return lia.And(conj...)
}

// rangeConstraint guards tr's character variable into [lo, hi] when the
// product edge is used, omitting statically implied bounds.
func rangeConstraint(used lia.Formula, tr Trans, lo, hi int) []lia.Formula {
	var out []lia.Formula
	if lo == -1 && hi == -1 {
		if !(tr.Lo == -1 && tr.Hi == -1) {
			out = append(out, lia.Implies(used, lia.EqConst(tr.V, alphabet.Epsilon)))
		}
		return out
	}
	var conj []lia.Formula
	if tr.Lo < lo {
		conj = append(conj, lia.Ge(lia.V(tr.V), lia.Const(int64(lo))))
	}
	if tr.Hi > hi {
		conj = append(conj, lia.Le(lia.V(tr.V), lia.Const(int64(hi))))
	}
	if len(conj) > 0 {
		out = append(out, lia.Implies(used, lia.And(conj...)))
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
