package pfa

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/lia"
	"repro/internal/regex"
)

// solveWith conjoins the formulas, solves with lazy connectivity cuts,
// and returns the model.
func solveWith(t *testing.T, reg *CutRegistry, fs ...lia.Formula) (lia.Result, lia.Model) {
	t.Helper()
	opts := &lia.Options{}
	if reg != nil {
		opts.OnModel = func(m lia.Model) lia.Formula { return reg.Lemmas(m) }
	}
	return lia.Solve(lia.And(fs...), opts)
}

func TestStandardPFAShape(t *testing.T) {
	pool := lia.NewPool()
	f := NewFlat(pool, 3, 2, "x")
	if len(f.Loops) != 3 || len(f.Bridges) != 2 {
		t.Fatalf("loops=%d bridges=%d", len(f.Loops), len(f.Bridges))
	}
	pa := f.PA()
	// 3 spine states + one extra state per loop of length 2.
	if pa.NumStates != 6 {
		t.Fatalf("NumStates = %d, want 6", pa.NumStates)
	}
	// 3 loops x 2 transitions + 2 bridges.
	if len(pa.Trans) != 8 {
		t.Fatalf("Trans = %d, want 8", len(pa.Trans))
	}
	// Character variables must be distinct across transitions (flatness
	// condition 3 of §5).
	seen := map[lia.Var]bool{}
	for _, tr := range pa.Trans {
		if seen[tr.V] {
			t.Fatalf("character variable reused")
		}
		seen[tr.V] = true
	}
}

func TestConstPFADecode(t *testing.T) {
	pool := lia.NewPool()
	c := NewConst(pool, "hi!", "k")
	res, m := solveWith(t, nil, c.Base())
	if res != lia.ResSat {
		t.Fatalf("const base unsat")
	}
	if got := decode(t, c, m); got != "hi!" {
		t.Fatalf("Decode = %q, want %q", got, "hi!")
	}
	if c.MaxLength() != 3 {
		t.Fatalf("MaxLength = %d", c.MaxLength())
	}
}

func TestFlatDecodeLemma51RoundTrip(t *testing.T) {
	// Lemma 5.1: a word in the language is uniquely determined by its
	// Parikh image (here: counts plus character values). Pin counts and
	// values, solve, decode, and compare.
	pool := lia.NewPool()
	f := NewFlat(pool, 2, 2, "x")
	var conj []lia.Formula
	conj = append(conj, f.Base())
	// Loop 0 = "ab" twice; bridge = "-"; loop 1 = "z" (second var ε) once.
	l0, l1, b := f.Loops[0], f.Loops[1], f.Bridges[0]
	conj = append(conj,
		lia.EqConst(l0[0], int64(alphabet.Code('a'))),
		lia.EqConst(l0[1], int64(alphabet.Code('b'))),
		lia.EqConst(f.Count(l0[0]), 2),
		lia.EqConst(b, int64(alphabet.Code('-'))),
		lia.EqConst(l1[0], int64(alphabet.Code('z'))),
		lia.EqConst(l1[1], alphabet.Epsilon),
		lia.EqConst(f.Count(l1[0]), 1),
	)
	res, m := solveWith(t, nil, conj...)
	if res != lia.ResSat {
		t.Fatalf("unsat")
	}
	if got := decode(t, f, m); got != "abab-z" {
		t.Fatalf("Decode = %q, want abab-z", got)
	}
}

func TestNumericToNumValues(t *testing.T) {
	// For several target values, pin n and check the decoded string
	// converts back to n.
	for _, want := range []int64{0, 7, 10, 99, 12345, 99999} {
		pool := lia.NewPool()
		nu := NewNumeric(pool, 5, "x")
		n := pool.Fresh("n")
		res, m := solveWith(t, nil, nu.Base(), nu.FlattenToNum(n), lia.EqConst(n, want))
		if res != lia.ResSat {
			t.Fatalf("value %d: unsat", want)
		}
		s := decode(t, nu, m)
		got := new(big.Int)
		if _, ok := got.SetString(s, 10); !ok {
			t.Fatalf("value %d: decoded %q is not a numeral", want, s)
		}
		if got.Int64() != want {
			t.Fatalf("decoded %q = %v, want %d", s, got, want)
		}
	}
}

func TestNumericTooManyDigits(t *testing.T) {
	pool := lia.NewPool()
	nu := NewNumeric(pool, 3, "x")
	n := pool.Fresh("n")
	// 4-digit value cannot be represented with m=3.
	res, _ := solveWith(t, nil, nu.Base(), nu.FlattenToNum(n), lia.EqConst(n, 1234))
	if res != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", res)
	}
}

func TestNumericEmptyString(t *testing.T) {
	pool := lia.NewPool()
	nu := NewNumeric(pool, 3, "x")
	n := pool.Fresh("n")
	lenSum := lia.NewLin()
	// Sum of counts of non-ε... simpler: force all chain ε and no loop.
	var conj []lia.Formula
	conj = append(conj, nu.Base(), nu.FlattenToNum(n))
	for _, v := range nu.Chain {
		conj = append(conj, lia.EqConst(v, alphabet.Epsilon))
	}
	conj = append(conj, lia.EqConst(nu.Count(nu.V0), 0))
	_ = lenSum
	res, m := solveWith(t, nil, conj...)
	if res != lia.ResSat {
		t.Fatalf("empty string case unsat")
	}
	if s := decode(t, nu, m); s != "" {
		t.Fatalf("decoded %q, want empty", s)
	}
	if m.Int64(n) != -1 {
		t.Fatalf("n = %v, want -1 (toNum of empty string)", m.Value(n))
	}
}

func TestNumericNaN(t *testing.T) {
	pool := lia.NewPool()
	nu := NewNumeric(pool, 4, "x")
	n := pool.Fresh("n")
	// Force a non-digit character in the chain.
	res, m := solveWith(t, nil, nu.Base(), nu.FlattenToNum(n),
		lia.EqConst(nu.Chain[0], int64(alphabet.Code('z'))))
	if res != lia.ResSat {
		t.Fatalf("NaN case unsat")
	}
	if m.Int64(n) != -1 {
		t.Fatalf("n = %v, want -1", m.Value(n))
	}
	s := decode(t, nu, m)
	if !strings.Contains(s, "z") {
		t.Fatalf("decoded %q should contain z", s)
	}
}

func TestNumericCanonical(t *testing.T) {
	pool := lia.NewPool()
	nu := NewNumeric(pool, 4, "x")
	n := pool.Fresh("n")
	conj := []lia.Formula{
		nu.Base(),
		nu.NotNaN(), lia.EqConst(nu.V0, 0), nu.Shift(), nu.ToInt(n), nu.Canonical(),
		lia.EqConst(n, 0),
	}
	res, m := solveWith(t, nil, conj...)
	if res != lia.ResSat {
		t.Fatalf("canonical 0 unsat")
	}
	if s := decode(t, nu, m); s != "0" {
		t.Fatalf("canonical zero decoded %q, want \"0\"", s)
	}
}

func TestSyncEqualWords(t *testing.T) {
	// Sync a free flat PFA against the constant "abc": decoding must
	// give "abc".
	pool := lia.NewPool()
	x := NewFlat(pool, 2, 2, "x")
	k := NewConst(pool, "abc", "k")
	reg := &CutRegistry{}
	sync := Sync(nil, pool, x.PA(), k.PA(), reg, nil)
	res, m := solveWith(t, reg, x.Base(), k.Base(), sync)
	if res != lia.ResSat {
		t.Fatalf("sync with constant unsat")
	}
	if got := decode(t, x, m); got != "abc" {
		t.Fatalf("Decode = %q, want abc", got)
	}
}

func TestSyncEmptyIntersection(t *testing.T) {
	pool := lia.NewPool()
	a := NewConst(pool, "ab", "a")
	b := NewConst(pool, "cd", "b")
	reg := &CutRegistry{}
	sync := Sync(nil, pool, a.PA(), b.PA(), reg, nil)
	res, _ := solveWith(t, reg, a.Base(), b.Base(), sync)
	if res != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", res)
	}
}

func TestSyncWithRegexPA(t *testing.T) {
	pool := lia.NewPool()
	x := NewFlat(pool, 2, 2, "x")
	nfa := regex.MustCompile("(ab)+").RemoveEpsilon().Trim()
	re := FromNFA(pool, nfa, "re")
	reg := &CutRegistry{}
	sync := Sync(nil, pool, x.PA(), re, reg, nil)
	// Also force length 6 via counts: loop words of x.
	res, m := solveWith(t, reg, x.Base(), sync)
	if res != lia.ResSat {
		t.Fatalf("unsat")
	}
	got := decode(t, x, m)
	if !regex.Matches(regex.MustCompile("(ab)+"), got) {
		t.Fatalf("decoded %q not in (ab)+", got)
	}
}

func TestConcatSharesVariables(t *testing.T) {
	pool := lia.NewPool()
	a := NewFlat(pool, 1, 1, "a")
	b := NewFlat(pool, 1, 1, "b")
	cat := Concat(pool, a.PA(), b.PA())
	// Transition variables of the operands must appear in the result.
	vars := map[lia.Var]bool{}
	for _, tr := range cat.Trans {
		vars[tr.V] = true
	}
	for _, tr := range a.PA().Trans {
		if !vars[tr.V] {
			t.Fatalf("concat lost a variable of the left operand")
		}
	}
	for _, tr := range b.PA().Trans {
		if !vars[tr.V] {
			t.Fatalf("concat lost a variable of the right operand")
		}
	}
	if cat.NumStates != a.PA().NumStates+b.PA().NumStates {
		t.Fatalf("state count")
	}
}

func TestFromNFAIsLanguageEquivalent(t *testing.T) {
	// Words of the PA under satisfying interpretations = words of the NFA.
	pool := lia.NewPool()
	nfa := automata.Word(alphabet.Encode("ok"))
	pa := FromNFA(pool, nfa, "w")
	if pa.Final != nfa.NumStates {
		t.Fatalf("final state should be the fresh funnel state")
	}
	// 2 word transitions + 1 funnel.
	if len(pa.Trans) != 3 {
		t.Fatalf("trans = %d", len(pa.Trans))
	}
}

// decode is the test shim over the error-returning Decode: the models
// built by these tests are well-formed, so a decode error is a test
// failure.
func decode(t testing.TB, r Restriction, m lia.Model) string {
	t.Helper()
	s, err := r.Decode(m)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return s
}
