package pfa

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/lia"
)

// MaxDecodeBytes caps the length of any decoded witness string. A
// model asking for more — possible only on adversarial inputs, since
// base constraints bound counters by the input's own lengths — is
// rejected with an error (which the decision procedure degrades to
// UNKNOWN) instead of materializing unbounded memory.
const MaxDecodeBytes = 1 << 20

// decodeChar reads the character variable v from the model: ok is
// false for ε. An error means the model carries a value no character
// has; the restriction's Base constraints rule that out for genuine
// models, so it indicates a truncated or under-constrained encoding
// and the caller must not trust the model.
func decodeChar(m lia.Model, v lia.Var) (b byte, ok bool, err error) {
	c, fits := m.Int64OK(v)
	if !fits {
		return 0, false, fmt.Errorf("pfa: model character value for v%d does not fit in int64", v)
	}
	if c < 0 {
		return 0, false, nil // ε
	}
	if c > int64(alphabet.MaxCode) {
		return 0, false, fmt.Errorf("pfa: model character code %d out of range", c)
	}
	return alphabet.Byte(int(c)), true, nil
}

// decodeCount reads a Parikh counter from the model, clamping
// negatives to zero (an unused loop) and rejecting counts that alone
// would blow the decode cap.
func decodeCount(m lia.Model, v lia.Var) (int64, error) {
	k, fits := m.Int64OK(v)
	if !fits || k > MaxDecodeBytes {
		return 0, fmt.Errorf("pfa: model loop count for v%d exceeds the %d-byte decode cap", v, MaxDecodeBytes)
	}
	if k < 0 {
		k = 0
	}
	return k, nil
}
