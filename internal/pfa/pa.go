// Package pfa implements parametric automata and parametric flat
// automata (PFA), the paper's core device (§5): finite automata whose
// transitions are labeled with integer character variables instead of
// concrete characters. A character variable may take any character code
// or the value ε (encoded as -1); constraints over the variables and
// their Parikh counters turn string reasoning into linear arithmetic.
//
// The package provides the standard loop-chain PFA (Figure 1), constant
// PFAs, the numeric PFA of §8 (Figure 3), conversion of classic NFAs to
// parametric form, concatenation, and the synchronization formula of §7
// built on the asynchronous product.
package pfa

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/lia"
)

// Trans is a parametric transition: reading the character variable V
// while moving between states. C is the Parikh counter of the
// transition (how many times an accepting run uses it). Every
// transition owns distinct V and C variables.
//
// Lo and Hi give the a-priori value range of V (a sound over-
// approximation of the constraints in Local); the synchronization
// product uses them to prune impossible pairings. -1 encodes ε, so a
// free variable has range [-1, 255] and an ε-pinned one [-1, -1].
type Trans struct {
	From, To int
	V        lia.Var // character variable (value in -1..255; -1 is ε)
	C        lia.Var // Parikh counter (#V)
	Lo, Hi   int
}

// PA is a parametric automaton with a single initial and final state.
// Local collects interpretation constraints specific to this automaton
// (ψ in the paper) that must accompany it into any synchronization
// formula: character ranges for NFA conversions, ε pins for
// concatenation bridges, character pins for constants.
type PA struct {
	NumStates int
	Init      int
	Final     int
	Trans     []Trans
	Local     []lia.Formula

	// Anonymous marks automata whose character variables are not
	// referenced outside the automaton (NFA conversions of regular
	// constraints). A run may traverse one of their transitions several
	// times reading different characters, so synchronization constrains
	// the partner's character variable by the transition's range
	// per product edge instead of equating the two variables (which
	// would wrongly force all traversals to read the same character).
	// The paper sidesteps this by giving every concrete character its
	// own transition — the alphabet explosion it complains about;
	// range transitions plus per-edge range constraints keep the
	// construction small and complete.
	Anonymous bool
}

// Chars returns the character variables of all transitions, in
// transition order.
func (p *PA) Chars() []lia.Var {
	out := make([]lia.Var, len(p.Trans))
	for i, t := range p.Trans {
		out[i] = t.V
	}
	return out
}

// shift returns a structural copy with state ids offset by d. Variable
// identities are preserved (they are global, not per-automaton).
func (p *PA) shift(d int) *PA {
	q := &PA{NumStates: p.NumStates, Init: p.Init + d, Final: p.Final + d, Local: p.Local}
	q.Trans = make([]Trans, len(p.Trans))
	for i, t := range p.Trans {
		q.Trans[i] = Trans{From: t.From + d, To: t.To + d, V: t.V, C: t.C, Lo: t.Lo, Hi: t.Hi}
	}
	return q
}

// Concat connects a's final state to b's initial state with a fresh
// ε-pinned bridge variable (paper §7, concatenation of PFAs). The
// operand automata share their variables with the result.
func Concat(pool *lia.Pool, a, b *PA) *PA {
	if a.Anonymous || b.Anonymous {
		// Concatenating an anonymous automaton would lose its
		// per-edge range semantics in Sync.
		// contract: API misuse by a caller inside the solver.
		panic("pfa: cannot concatenate anonymous automata")
	}
	bs := b.shift(a.NumStates)
	out := &PA{
		NumStates: a.NumStates + b.NumStates,
		Init:      a.Init,
		Final:     bs.Final,
	}
	out.Trans = append(out.Trans, a.Trans...)
	out.Trans = append(out.Trans, bs.Trans...)
	v := pool.Fresh("veps")
	c := pool.Fresh("#veps")
	out.Trans = append(out.Trans, Trans{From: a.Final, To: bs.Init, V: v, C: c, Lo: -1, Hi: -1})
	out.Local = append(out.Local, a.Local...)
	out.Local = append(out.Local, bs.Local...)
	out.Local = append(out.Local, lia.EqConst(v, alphabet.Epsilon))
	return out
}

// ConcatAll concatenates automata left to right; it panics on an empty
// list (callers insert an ε constant for empty word terms).
func ConcatAll(pool *lia.Pool, pas ...*PA) *PA {
	if len(pas) == 0 {
		// contract: API misuse by a caller inside the solver.
		panic("pfa: ConcatAll of zero automata")
	}
	out := pas[0]
	for _, p := range pas[1:] {
		out = Concat(pool, out, p)
	}
	return out
}

// FromNFA converts a classic automaton into a parametric one: each NFA
// transition becomes a parametric transition over a fresh character
// variable constrained to the transition's symbol range (ε-transitions
// pin the variable to ε). Multiple final states are funneled into a
// fresh single final state through ε-pinned bridges.
func FromNFA(pool *lia.Pool, n *automata.NFA, name string) *PA {
	out := &PA{NumStates: n.NumStates + 1, Init: n.Init, Final: n.NumStates, Anonymous: true}
	for i, t := range n.Trans {
		v := pool.Fresh(fmt.Sprintf("%s_t%d", name, i))
		c := pool.Fresh(fmt.Sprintf("#%s_t%d", name, i))
		if t.Eps {
			out.Trans = append(out.Trans, Trans{From: t.From, To: t.To, V: v, C: c, Lo: -1, Hi: -1})
		} else {
			out.Trans = append(out.Trans, Trans{From: t.From, To: t.To, V: v, C: c, Lo: t.R.Lo, Hi: t.R.Hi})
		}
	}
	for i, f := range n.Finals {
		v := pool.Fresh(fmt.Sprintf("%s_f%d", name, i))
		c := pool.Fresh(fmt.Sprintf("#%s_f%d", name, i))
		out.Trans = append(out.Trans, Trans{From: f, To: out.Final, V: v, C: c, Lo: -1, Hi: -1})
	}
	return out
}

// Restriction is the common interface of the per-variable domain
// restrictions R(x): a parametric flat automaton together with enough
// structure to decode models back into strings (Lemma 5.1).
type Restriction interface {
	// PA returns the parametric automaton.
	PA() *PA
	// Base returns the formula that must hold globally whenever this
	// restriction is used: character domains and the (specialized,
	// flat) Parikh-image constraints of the automaton.
	Base() lia.Formula
	// Decode reconstructs the string value from a model that satisfies
	// Base and whatever flattenings reference the restriction. Models
	// are input-derived, so malformed ones (character codes out of
	// range, counters past int64, decoded lengths past the cap) return
	// an error — degrading the solve to UNKNOWN — rather than panicking
	// or materializing unbounded memory.
	Decode(m lia.Model) (string, error)
	// MaxLength returns an upper bound on the length of decoded strings
	// when bounded, or -1 when the restriction contains loops.
	MaxLength() int
	// AllVars returns every character variable of the restriction.
	AllVars() []lia.Var
	// Count returns the Parikh counter of one of the restriction's
	// character variables.
	Count(v lia.Var) lia.Var
}
