package pfa

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/lia"
)

// Numeric is the numeric PFA of §8 (Figure 3): a self-loop on the
// initial state (used only for leading zeros in the numeral branch)
// followed by a chain of m character variables. Its shape keeps the
// integer value of the represented numeral expressible linearly — the
// exponential components that general loop structures would induce in
// toNum constraints never arise.
type Numeric struct {
	M     int
	V0    lia.Var   // self-loop character variable
	Chain []lia.Var // chain character variables, most significant first

	counts map[lia.Var]lia.Var
	pa     *PA
}

// NewNumeric builds a numeric PFA with m chain positions.
func NewNumeric(pool *lia.Pool, m int, name string) *Numeric {
	if m < 1 {
		// contract: API misuse by a caller inside the solver.
		panic("pfa: NewNumeric requires m >= 1")
	}
	n := &Numeric{M: m, counts: make(map[lia.Var]lia.Var)}
	n.V0 = pool.Fresh(name + "_v0")
	n.counts[n.V0] = pool.Fresh("#" + name + "_v0")
	for i := 1; i <= m; i++ {
		v := pool.Fresh(fmt.Sprintf("%s_v%d", name, i))
		n.counts[v] = pool.Fresh(fmt.Sprintf("#%s_v%d", name, i))
		n.Chain = append(n.Chain, v)
	}
	pa := &PA{NumStates: m + 1, Init: 0, Final: m}
	pa.Trans = append(pa.Trans, Trans{From: 0, To: 0, V: n.V0, C: n.counts[n.V0], Lo: -1, Hi: alphabet.MaxCode})
	for i, v := range n.Chain {
		pa.Trans = append(pa.Trans, Trans{From: i, To: i + 1, V: v, C: n.counts[v], Lo: -1, Hi: alphabet.MaxCode})
	}
	n.pa = pa
	return n
}

// PA returns the parametric automaton of the restriction.
func (n *Numeric) PA() *PA { return n.pa }

// Count returns the Parikh counter of a character variable of n.
func (n *Numeric) Count(v lia.Var) lia.Var { return n.counts[v] }

// Base returns character domains and the flat Parikh constraints: the
// chain is traversed exactly once, the self-loop any number of times.
func (n *Numeric) Base() lia.Formula {
	var conj []lia.Formula
	conj = append(conj, domain(n.V0)...)
	conj = append(conj, lia.Ge(lia.V(n.counts[n.V0]), lia.Const(0)))
	for _, v := range n.Chain {
		conj = append(conj, domain(v)...)
		conj = append(conj, lia.EqConst(n.counts[v], 1))
	}
	return lia.And(conj...)
}

// NaN is Ψ_NaN: some chain character is a non-digit (code > 9). Note
// that ε (-1) does not satisfy it.
func (n *Numeric) NaN() lia.Formula {
	var dis []lia.Formula
	for _, v := range n.Chain {
		dis = append(dis, lia.Ge(lia.V(v), lia.Const(10)))
	}
	return lia.Or(dis...)
}

// NotNaN is ¬Ψ_NaN: every chain character is a digit or ε.
func (n *Numeric) NotNaN() lia.Formula {
	var conj []lia.Formula
	for _, v := range n.Chain {
		conj = append(conj, lia.Le(lia.V(v), lia.Const(9)))
	}
	return lia.And(conj...)
}

// Shift is Ψ_shift: ε positions are pushed behind the least significant
// digit, so the digits form a prefix of the chain.
func (n *Numeric) Shift() lia.Formula {
	var conj []lia.Formula
	for i := 1; i < len(n.Chain); i++ {
		conj = append(conj, lia.Implies(
			lia.Ge(lia.V(n.Chain[i]), lia.Const(0)),
			lia.Ge(lia.V(n.Chain[i-1]), lia.Const(0)),
		))
	}
	return lia.And(conj...)
}

// ToInt is Ψ_toInt: a disjunction over the index k of the last non-ε
// chain position, each disjunct defining the integer value nv of the
// numeral linearly: nv = v1*10^(k-1) + ... + vk.
func (n *Numeric) ToInt(nv lia.Var) lia.Formula {
	var dis []lia.Formula
	ten := big.NewInt(10)
	for k := 1; k <= n.M; k++ {
		var conj []lia.Formula
		conj = append(conj, lia.Ge(lia.V(n.Chain[k-1]), lia.Const(0)))
		if k < n.M {
			conj = append(conj, lia.EqConst(n.Chain[k], alphabet.Epsilon))
		}
		sum := lia.NewLin()
		pow := big.NewInt(1)
		for j := k; j >= 1; j-- {
			sum.AddTerm(n.Chain[j-1], pow)
			pow = new(big.Int).Mul(pow, ten)
		}
		conj = append(conj, lia.Eq(lia.V(nv), sum))
		dis = append(dis, lia.And(conj...))
	}
	return lia.Or(dis...)
}

// FlattenToNum returns the flattening of the constraint nv = toNum(x)
// for a variable x restricted by n (paper §8, flatten_R(ϕ_s), extended
// with the empty-string case toNum(ε) = -1 which the paper's Ψ_toInt
// misses). The caller conjoins Base separately.
func (n *Numeric) FlattenToNum(nv lia.Var) lia.Formula {
	// Branch 1: not a numeral.
	nan := lia.And(n.NaN(), lia.EqConst(nv, -1))
	// Branch 2: a numeral 0^k d1..dj.
	num := lia.And(
		n.NotNaN(),
		lia.EqConst(n.V0, 0),
		n.Shift(),
		n.ToInt(nv),
	)
	// Branch 3: the empty string (not in [0-9]+, so toNum is -1).
	var empty []lia.Formula
	for _, v := range n.Chain {
		empty = append(empty, lia.EqConst(v, alphabet.Epsilon))
	}
	empty = append(empty, lia.EqConst(n.counts[n.V0], 0), lia.EqConst(nv, -1))
	return lia.Or(nan, num, lia.And(empty...))
}

// Canonical constrains the decoded string to be the canonical numeral
// of its value: no leading zeros from the self-loop, and the first
// chain digit nonzero unless the numeral is exactly "0". Used for
// toStr/str.from_int semantics.
func (n *Numeric) Canonical() lia.Formula {
	noLoop := lia.EqConst(n.counts[n.V0], 0)
	first := n.Chain[0]
	var singleZero []lia.Formula
	singleZero = append(singleZero, lia.EqConst(first, 0))
	for _, v := range n.Chain[1:] {
		singleZero = append(singleZero, lia.EqConst(v, alphabet.Epsilon))
	}
	return lia.And(noLoop, lia.Or(
		lia.Ge(lia.V(first), lia.Const(1)),
		lia.And(singleZero...),
	))
}

// Decode reconstructs the string from a model.
func (n *Numeric) Decode(m lia.Model) (string, error) {
	var b strings.Builder
	c, ok, err := decodeChar(m, n.V0)
	if err != nil {
		return "", err
	}
	if ok {
		k, err := decodeCount(m, n.counts[n.V0])
		if err != nil {
			return "", err
		}
		for ; k > 0; k-- {
			b.WriteByte(c)
		}
	}
	for _, v := range n.Chain {
		c, ok, err := decodeChar(m, v)
		if err != nil {
			return "", err
		}
		if ok {
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

// MaxLength reports -1: the self-loop makes lengths unbounded.
func (n *Numeric) MaxLength() int { return -1 }

// AllVars returns every character variable of n.
func (n *Numeric) AllVars() []lia.Var {
	out := []lia.Var{n.V0}
	out = append(out, n.Chain...)
	return out
}
