package pfa

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
	"repro/internal/lia"
)

func bigInt(v int64) *big.Int { return big.NewInt(v) }

// TestQuickFlatDecodeRoundTrip is Lemma 5.1 as a property: any word
// poured into a flat restriction's encoding (counts + character values)
// decodes back to itself.
func TestQuickFlatDecodeRoundTrip(t *testing.T) {
	f := func(loopWord0 []byte, reps0 uint8, bridge byte, loopWord1 []byte, reps1 uint8) bool {
		trim := func(w []byte, max int) []byte {
			if len(w) > max {
				return w[:max]
			}
			return w
		}
		loop0 := trim(loopWord0, 3)
		loop1 := trim(loopWord1, 3)
		k0 := int64(reps0 % 4)
		k1 := int64(reps1 % 4)

		pool := lia.NewPool()
		fl := NewFlat(pool, 2, 3, "x")
		m := lia.Model{}
		fill := func(loopVars []lia.Var, word []byte, reps int64) string {
			for i, v := range loopVars {
				if i < len(word) {
					m[v] = bigInt(int64(alphabet.Code(word[i])))
				} else {
					m[v] = bigInt(-1)
				}
				m[fl.Count(v)] = bigInt(reps)
			}
			var one strings.Builder
			for i := 0; i < len(word) && i < len(loopVars); i++ {
				one.WriteByte(word[i])
			}
			return strings.Repeat(one.String(), int(reps))
		}
		want := fill(fl.Loops[0], loop0, k0)
		m[fl.Bridges[0]] = bigInt(int64(alphabet.Code(bridge)))
		want += string([]byte{bridge})
		want += fill(fl.Loops[1], loop1, k1)

		return decode(t, fl, m) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNumericDecode: a numeric restriction with loop count k and a
// digit chain decodes to 0^k followed by the digits.
func TestQuickNumericDecode(t *testing.T) {
	f := func(digits []byte, zeros uint8) bool {
		if len(digits) > 5 {
			digits = digits[:5]
		}
		k := int64(zeros % 7)
		pool := lia.NewPool()
		nu := NewNumeric(pool, 5, "x")
		m := lia.Model{
			nu.V0:           bigInt(0),
			nu.Count(nu.V0): bigInt(k),
		}
		want := strings.Repeat("0", int(k))
		for i, v := range nu.Chain {
			if i < len(digits) {
				d := int64(digits[i] % 10)
				m[v] = bigInt(d)
				m[nu.Count(v)] = bigInt(1)
				want += string(byte('0' + d))
			} else {
				m[v] = bigInt(-1)
				m[nu.Count(v)] = bigInt(1)
			}
		}
		return decode(t, nu, m) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstPFA: constant restrictions always decode to their
// constant under any model satisfying Base.
func TestQuickConstPFA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := rng.Intn(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(' ' + rng.Intn(90))
		}
		s := string(b)
		pool := lia.NewPool()
		c := NewConst(pool, s, "k")
		res, m := solveWith(t, nil, c.Base())
		if res != lia.ResSat {
			t.Fatalf("const base unsat for %q", s)
		}
		if got := decode(t, c, m); got != s {
			t.Fatalf("decode %q != %q", got, s)
		}
	}
}
