package pfa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/lia"
)

// Flat is the standard parametric flat automaton of Figure 1: a spine
// of states, each carrying a simple cycle of character variables, with
// bridge character variables between consecutive spine states. Constant
// strings are represented as loop-free Flats with pinned bridges.
type Flat struct {
	// Loops[i] lists the cycle variables attached to spine state i, in
	// traversal order; it may be empty (no cycle).
	Loops [][]lia.Var
	// Bridges[i] is the character variable between spine states i and
	// i+1; len(Bridges) == len(Loops)-1.
	Bridges []lia.Var

	counts map[lia.Var]lia.Var
	pins   map[lia.Var]int // pinned character values (constants)
	pa     *PA
}

// NewFlat builds a PFA with numLoops spine states, each carrying a
// cycle of loopLen fresh character variables, joined by fresh bridge
// variables. All variables range over ε and the full character set.
func NewFlat(pool *lia.Pool, numLoops, loopLen int, name string) *Flat {
	if numLoops < 1 {
		// contract: API misuse by a caller inside the solver.
		panic("pfa: NewFlat requires at least one spine state")
	}
	f := &Flat{counts: make(map[lia.Var]lia.Var)}
	for i := 0; i < numLoops; i++ {
		loop := make([]lia.Var, loopLen)
		for j := range loop {
			v := pool.Fresh(fmt.Sprintf("%s_l%d_%d", name, i, j))
			f.counts[v] = pool.Fresh(fmt.Sprintf("#%s_l%d_%d", name, i, j))
			loop[j] = v
		}
		f.Loops = append(f.Loops, loop)
		if i+1 < numLoops {
			b := pool.Fresh(fmt.Sprintf("%s_b%d", name, i))
			f.counts[b] = pool.Fresh(fmt.Sprintf("#%s_b%d", name, i))
			f.Bridges = append(f.Bridges, b)
		}
	}
	f.build()
	return f
}

// NewFreeWord builds a loop-free PFA whose spine carries k free
// character variables: it represents exactly the words of length <= k
// (ε assignments shorten the word). It is the restriction of choice for
// variables whose length is pinned by the constraints, where it is
// complete and much smaller than a loop PFA.
func NewFreeWord(pool *lia.Pool, k int, name string) *Flat {
	f := &Flat{counts: make(map[lia.Var]lia.Var)}
	f.Loops = make([][]lia.Var, k+1)
	for i := 0; i < k; i++ {
		b := pool.Fresh(fmt.Sprintf("%s_w%d", name, i))
		f.counts[b] = pool.Fresh(fmt.Sprintf("#%s_w%d", name, i))
		f.Bridges = append(f.Bridges, b)
	}
	f.build()
	return f
}

// NewConst builds the PFA of the constant string s: a loop-free spine
// whose bridge variables are pinned to the characters of s.
func NewConst(pool *lia.Pool, s string, name string) *Flat {
	f := &Flat{counts: make(map[lia.Var]lia.Var), pins: make(map[lia.Var]int)}
	f.Loops = make([][]lia.Var, len(s)+1)
	for i := 0; i < len(s); i++ {
		b := pool.Fresh(fmt.Sprintf("%s_c%d", name, i))
		f.counts[b] = pool.Fresh(fmt.Sprintf("#%s_c%d", name, i))
		f.Bridges = append(f.Bridges, b)
		f.pins[b] = alphabet.Code(s[i])
	}
	f.build()
	return f
}

// build materializes the parametric automaton.
func (f *Flat) build() {
	pa := &PA{}
	spine := make([]int, len(f.Loops))
	next := 0
	alloc := func() int { next++; return next - 1 }
	for i := range f.Loops {
		spine[i] = alloc()
	}
	rng := func(v lia.Var) (int, int) {
		if code, ok := f.pins[v]; ok {
			return code, code
		}
		return -1, alphabet.MaxCode
	}
	for i, loop := range f.Loops {
		if len(loop) > 0 {
			prev := spine[i]
			for j, v := range loop {
				to := spine[i]
				if j+1 < len(loop) {
					to = alloc()
				}
				lo, hi := rng(v)
				pa.Trans = append(pa.Trans, Trans{From: prev, To: to, V: v, C: f.counts[v], Lo: lo, Hi: hi})
				prev = to
			}
		}
		if i < len(f.Bridges) {
			b := f.Bridges[i]
			lo, hi := rng(b)
			pa.Trans = append(pa.Trans, Trans{From: spine[i], To: spine[i+1], V: b, C: f.counts[b], Lo: lo, Hi: hi})
		}
	}
	pa.NumStates = next
	pa.Init = spine[0]
	pa.Final = spine[len(spine)-1]
	for _, v := range sortedPinVars(f.pins) {
		pa.Local = append(pa.Local, lia.EqConst(v, int64(f.pins[v])))
	}
	f.pa = pa
}

// sortedPinVars returns the pin map's keys in increasing order so pin
// constraints are emitted deterministically.
func sortedPinVars(pins map[lia.Var]int) []lia.Var {
	out := make([]lia.Var, 0, len(pins))
	for v := range pins {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PA returns the parametric automaton of the restriction.
func (f *Flat) PA() *PA { return f.pa }

// Base returns the character domains, the flat Parikh constraints
// (every edge of one cycle is used the same number of times; every
// bridge exactly once), and the constant pins.
func (f *Flat) Base() lia.Formula {
	var conj []lia.Formula
	for _, loop := range f.Loops {
		for j, v := range loop {
			conj = append(conj, domain(v)...)
			c := f.counts[v]
			if j == 0 {
				conj = append(conj, lia.Ge(lia.V(c), lia.Const(0)))
			} else {
				conj = append(conj, lia.Eq(lia.V(c), lia.V(f.counts[loop[0]])))
			}
		}
	}
	for _, b := range f.Bridges {
		conj = append(conj, domain(b)...)
		conj = append(conj, lia.EqConst(f.counts[b], 1))
	}
	for _, v := range sortedPinVars(f.pins) {
		conj = append(conj, lia.EqConst(v, int64(f.pins[v])))
	}
	return lia.And(conj...)
}

// domain constrains a character variable to ε or a character code.
func domain(v lia.Var) []lia.Formula {
	return []lia.Formula{
		lia.Ge(lia.V(v), lia.Const(alphabet.Epsilon)),
		lia.Le(lia.V(v), lia.Const(alphabet.MaxCode)),
	}
}

// Count returns the Parikh counter of a character variable of f.
func (f *Flat) Count(v lia.Var) lia.Var { return f.counts[v] }

// Decode reconstructs the string from a model (Lemma 5.1): each cycle
// contributes its (ε-filtered) word repeated by its counter; bridges
// contribute their character when not ε.
func (f *Flat) Decode(m lia.Model) (string, error) {
	var b strings.Builder
	for i, loop := range f.Loops {
		if len(loop) > 0 {
			k, err := decodeCount(m, f.counts[loop[0]])
			if err != nil {
				return "", err
			}
			var word []byte
			for _, v := range loop {
				c, ok, err := decodeChar(m, v)
				if err != nil {
					return "", err
				}
				if ok {
					word = append(word, c)
				}
			}
			if int64(b.Len())+k*int64(len(word)) > MaxDecodeBytes {
				return "", fmt.Errorf("pfa: decoded string exceeds the %d-byte cap", MaxDecodeBytes)
			}
			for ; k > 0; k-- {
				b.Write(word)
			}
		}
		if i < len(f.Bridges) {
			c, ok, err := decodeChar(m, f.Bridges[i])
			if err != nil {
				return "", err
			}
			if ok {
				b.WriteByte(c)
			}
		}
	}
	return b.String(), nil
}

// MaxLength reports -1 when f has cycles, else the spine length.
func (f *Flat) MaxLength() int {
	for _, loop := range f.Loops {
		if len(loop) > 0 {
			return -1
		}
	}
	return len(f.Bridges)
}

// AllVars returns every character variable of f (cycles then bridges).
func (f *Flat) AllVars() []lia.Var {
	var out []lia.Var
	for _, loop := range f.Loops {
		out = append(out, loop...)
	}
	out = append(out, f.Bridges...)
	return out
}
