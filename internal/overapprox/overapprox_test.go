package overapprox

import (
	"testing"

	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// abstractStatus solves the abstraction of a prepared problem.
func abstractStatus(t *testing.T, prob *strcon.Problem) lia.Result {
	t.Helper()
	prob.Prepare()
	oa := Abstract(prob, prob.Constraints, nil)
	res, _ := lia.Solve(oa.Formula, &lia.Options{OnModel: oa.OnModel})
	return res
}

func TestSoundOnSatisfiable(t *testing.T) {
	// The abstraction must never refute a satisfiable instance.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x), strcon.TV(y)), R: strcon.T(strcon.TC("abba"))},
		&strcon.Membership{X: x, A: regex.MustCompile("a(b)*")},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)},
	)
	if got := abstractStatus(t, prob); got == lia.ResUnsat {
		t.Fatal("over-approximation refuted a satisfiable instance")
	}
}

func TestRefutesLengthConflict(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x), strcon.TV(y)), R: strcon.T(strcon.TC("ab"))},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(y), 7)},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestRefutesCharCountConflict(t *testing.T) {
	// "1"x = x"2": the sides disagree on digit counts.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("1"), strcon.TV(x)),
		R: strcon.T(strcon.TV(x), strcon.TC("2")),
	})
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestRefutesRegexEmptiness(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(
		&strcon.Membership{X: x, A: regex.MustCompile("a+")},
		&strcon.Membership{X: x, A: regex.MustCompile("b+")},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestRefutesToNumMagnitude(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(1000))},
		&strcon.Arith{F: lia.Le(lia.V(prob.LenVar(x)), lia.Const(3))},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestRefutesToNumDigitPurity(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(0))},
		&strcon.Membership{X: x, A: regex.MustCompile("[a-z]+")},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestRefutesPrefixConflict(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	z := prob.NewStrVar("z")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("abc"), strcon.TV(y))},
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("abd"), strcon.TV(z))},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestSuffixConflict(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	z := prob.NewStrVar("z")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TV(y), strcon.TC("oo"))},
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TV(z), strcon.TC("xo"))},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestPrefixAgreementStaysSat(t *testing.T) {
	// Compatible prefixes (one extends the other) must not be refuted.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	z := prob.NewStrVar("z")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("ab"), strcon.TV(y))},
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("abc"), strcon.TV(z))},
	)
	if got := abstractStatus(t, prob); got == lia.ResUnsat {
		t.Fatal("compatible prefixes refuted")
	}
}

func TestToStrRanges(t *testing.T) {
	// Canonical numerals have no leading zeros: |x| = 3 forces n >= 100.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToStr{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 3)},
		&strcon.Arith{F: lia.Le(lia.V(n), lia.Const(99))},
	)
	if got := abstractStatus(t, prob); got != lia.ResUnsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestDisjunctionKeepsBothBranches(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.OrCon{Args: []strcon.Constraint{
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 90)},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)},
	}})
	prob.Add(&strcon.Arith{F: lia.Le(lia.V(prob.LenVar(x)), lia.Const(10))})
	if got := abstractStatus(t, prob); got == lia.ResUnsat {
		t.Fatal("live disjunct refuted")
	}
}
