// Package overapprox implements the over-approximation step of the
// decision procedure (paper §4): the string constraint is relaxed into
// a decidable linear-arithmetic abstraction; if the abstraction is
// unsatisfiable, so is the original constraint.
//
// The paper over-approximates into the chain-free fragment after
// rewriting toNum constraints into basic ones. Chain-free solving is a
// solver in its own right; this reproduction substitutes a
// character-count (Parikh) abstraction with the same role and similar
// UNSAT power on the benchmark families (documented in DESIGN.md):
//
//   - every string variable x gets per-bucket character counters
//     (one bucket per decimal digit, one for all other characters)
//     linked to |x|,
//   - word equations equate the bucket sums of both sides (this is the
//     Parikh-image abstraction of the equation; it is what breaks
//     dependency chains soundly),
//   - regular constraints contribute the flow-based Parikh image of
//     their automata, split over the buckets, plus a per-variable
//     automata-intersection emptiness check,
//   - toNum/toStr constraints contribute sign, digit-purity, and
//     piecewise magnitude bounds (10^(k-1) <= n < 10^k),
//   - integer constraints pass through unchanged.
package overapprox

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/automata"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/parikh"
	"repro/internal/pfa"
	"repro/internal/strcon"
)

// numBuckets is 10 digit buckets plus one for all other characters.
const numBuckets = 11

const otherBucket = 10

// Result carries the abstraction formula and the lazy-connectivity
// registry for the regular constraints' flow encodings.
type Result struct {
	Formula lia.Formula
	Cuts    *pfa.CutRegistry
}

// OnModel is the lazy-lemma callback for lia.Options.
func (r *Result) OnModel(m lia.Model) lia.Formula {
	return r.Cuts.Lemmas(m)
}

type abstractor struct {
	prob *strcon.Problem
	cuts *pfa.CutRegistry
	cnt  map[strcon.Var][]lia.Var // per-variable bucket counters
	base []lia.Formula            // per-variable linking constraints

	// memberships collects top-level regular constraints per variable
	// for the intersection-emptiness check.
	memberships map[strcon.Var][]*automata.NFA
}

// Abstract builds the over-approximation of the given constraints of a
// prepared problem. The slice is passed explicitly so case-split
// branches can be abstracted without mutating the shared problem; pass
// prob.Constraints for the whole problem. Abstraction size and time are
// recorded on ec's stats tree.
func Abstract(prob *strcon.Problem, cons []strcon.Constraint, ec *engine.Ctx) *Result {
	st := ec.Stats().Child("overapprox")
	st.Add("calls", 1)
	defer st.Time("time")()
	a := &abstractor{
		prob:        prob,
		cuts:        &pfa.CutRegistry{},
		cnt:         make(map[strcon.Var][]lia.Var),
		memberships: make(map[strcon.Var][]*automata.NFA),
	}
	var conj []lia.Formula
	for _, c := range cons {
		conj = append(conj, a.abstractCon(c, true))
	}
	if prefixSuffixConflict(cons) {
		conj = append(conj, lia.False)
	}
	// Intersection emptiness per variable (bounded product size).
	memberVars := make([]strcon.Var, 0, len(a.memberships))
	for x := range a.memberships {
		memberVars = append(memberVars, x)
	}
	sort.Slice(memberVars, func(i, j int) bool { return memberVars[i] < memberVars[j] })
	for _, x := range memberVars {
		if emptyIntersection(a.memberships[x]) {
			conj = append(conj, lia.False)
			break
		}
	}
	conj = append(conj, a.base...)
	res := &Result{Formula: lia.And(conj...), Cuts: a.cuts}
	st.Add("formula.size", int64(lia.FormulaSize(res.Formula)))
	return res
}

// counters returns (allocating on first use) the bucket counters of x,
// emitting the linking constraints cnt >= 0 and sum(cnt) = |x|.
func (a *abstractor) counters(x strcon.Var) []lia.Var {
	if cs, ok := a.cnt[x]; ok {
		return cs
	}
	cs := make([]lia.Var, numBuckets)
	sum := lia.NewLin()
	for b := range cs {
		cs[b] = a.prob.Lia.Fresh(fmt.Sprintf("cnt_%s_%d", a.prob.StrName(x), b))
		a.base = append(a.base, lia.Ge(lia.V(cs[b]), lia.Const(0)))
		sum.AddTermInt(cs[b], 1)
	}
	a.base = append(a.base, lia.Eq(sum, lia.V(a.prob.LenVar(x))))
	a.base = append(a.base, lia.Ge(lia.V(a.prob.LenVar(x)), lia.Const(0)))
	a.cnt[x] = cs
	return cs
}

// bucketExprs returns, for a word term, one linear expression per
// bucket summing the term's character counts.
func (a *abstractor) bucketExprs(t strcon.Term) []*lia.LinExpr {
	es := make([]*lia.LinExpr, numBuckets)
	for b := range es {
		es[b] = lia.NewLin()
	}
	for _, it := range t {
		if it.IsVar {
			cs := a.counters(it.V)
			for b := range es {
				es[b].AddTermInt(cs[b], 1)
			}
			continue
		}
		for i := 0; i < len(it.Const); i++ {
			ch := it.Const[i]
			if ch >= '0' && ch <= '9' {
				es[ch-'0'].AddConst(1)
			} else {
				es[otherBucket].AddConst(1)
			}
		}
	}
	return es
}

func (a *abstractor) abstractCon(c strcon.Constraint, topLevel bool) lia.Formula {
	switch t := c.(type) {
	case *strcon.WordEq:
		l := a.bucketExprs(t.L)
		r := a.bucketExprs(t.R)
		var conj []lia.Formula
		for b := range l {
			conj = append(conj, lia.Eq(l[b], r[b]))
		}
		return lia.And(conj...)

	case *strcon.WordNeq:
		// Conservative: a disequality excludes at most one value.
		return lia.True

	case *strcon.Membership:
		nfa := t.Automaton().RemoveEpsilon().Trim()
		if nfa.IsEmpty() {
			return lia.False
		}
		if topLevel {
			a.memberships[t.X] = append(a.memberships[t.X], nfa)
		}
		return a.regularParikh(t.X, nfa)

	case *strcon.Arith:
		return t.F

	case *strcon.ToNum:
		return a.toNum(t.N, t.X, false)

	case *strcon.ToStr:
		cs := a.counters(t.X)
		lenX := lia.V(a.prob.LenVar(t.X))
		neg := lia.And(
			lia.Le(lia.V(t.N), lia.Const(-1)),
			lia.Eq(lenX.Clone(), lia.Const(0)),
		)
		pos := lia.And(
			lia.Ge(lia.V(t.N), lia.Const(0)),
			lia.EqConst(cs[otherBucket], 0),
			lia.Ge(lenX.Clone(), lia.Const(1)),
			magnitude(t.N, a.prob.LenVar(t.X), true),
		)
		return lia.Or(neg, pos)

	case *strcon.Ord:
		return lia.And(
			lia.EqConst(a.prob.LenVar(t.X), 1),
			lia.Ge(lia.V(t.N), lia.Const(0)),
			lia.Le(lia.V(t.N), lia.Const(255)),
		)

	case *strcon.AndCon:
		var conj []lia.Formula
		for _, arg := range t.Args {
			conj = append(conj, a.abstractCon(arg, false))
		}
		return lia.And(conj...)

	case *strcon.OrCon:
		var dis []lia.Formula
		for _, arg := range t.Args {
			dis = append(dis, a.abstractCon(arg, false))
		}
		return lia.Or(dis...)
	}
	// contract: the constraint set is closed.
	panic("overapprox: unknown constraint type")
}

// toNum abstracts n = toNum(x).
func (a *abstractor) toNum(n lia.Var, x strcon.Var, canonical bool) lia.Formula {
	cs := a.counters(x)
	lenX := lia.V(a.prob.LenVar(x))
	nan := lia.And(
		lia.EqConst(n, -1),
		lia.Or(
			lia.Ge(lia.V(cs[otherBucket]), lia.Const(1)),
			lia.Eq(lenX.Clone(), lia.Const(0)),
		),
	)
	num := lia.And(
		lia.Ge(lia.V(n), lia.Const(0)),
		lia.EqConst(cs[otherBucket], 0),
		lia.Ge(lenX.Clone(), lia.Const(1)),
		magnitude(n, a.prob.LenVar(x), canonical),
	)
	return lia.Or(nan, num)
}

// magnitude links a numeral's value and length piecewise: for length k
// (up to a cutoff) n < 10^k, and for canonical numerals additionally
// n >= 10^(k-1).
func magnitude(n lia.Var, lenVar lia.Var, canonical bool) lia.Formula {
	const cutoff = 18
	var conj []lia.Formula
	pow := big.NewInt(1) // 10^(k-1) at iteration k
	ten := big.NewInt(10)
	for k := 1; k <= cutoff; k++ {
		hi := new(big.Int).Mul(pow, ten)
		upper := lia.Lt(lia.V(n), lia.ConstBig(hi))
		body := upper
		if canonical {
			body = lia.And(upper, lia.Ge(lia.V(n), lia.ConstBig(pow)))
		}
		conj = append(conj, lia.Implies(lia.EqConst(lenVar, int64(k)), body))
		pow = hi
	}
	return lia.And(conj...)
}

// regularParikh emits the bucket-split Parikh image of an automaton for
// variable x, registering the flow graph for lazy connectivity cuts.
func (a *abstractor) regularParikh(x strcon.Var, nfa *automata.NFA) lia.Formula {
	cs := a.counters(x)
	pool := a.prob.Lia
	aut := parikh.Automaton{NumStates: nfa.NumStates + 1, Init: nfa.Init, Final: nfa.NumStates}
	type edgeInfo struct {
		r   automata.Range
		eps bool
	}
	var infos []edgeInfo
	for _, tr := range nfa.Trans {
		aut.Edges = append(aut.Edges, parikh.Edge{From: tr.From, To: tr.To})
		infos = append(infos, edgeInfo{r: tr.R, eps: tr.Eps})
	}
	for _, f := range nfa.Finals {
		aut.Edges = append(aut.Edges, parikh.Edge{From: f, To: nfa.NumStates})
		infos = append(infos, edgeInfo{eps: true})
	}
	flow := make([]lia.Var, len(aut.Edges))
	for i := range flow {
		flow[i] = pool.Fresh("oaflow")
	}
	var conj []lia.Formula
	conj = append(conj, parikh.FlowOnly(aut, flow))
	act := pool.Fresh("oaact")
	conj = append(conj, lia.EqConst(act, 1))
	a.cuts.Products = append(a.cuts.Products, pfa.ProductFlows{Aut: aut, Flow: flow, Act: act})

	// Bucket split: each edge's flow distributes over the buckets its
	// range intersects; bucket counters are the per-bucket totals.
	sums := make([]*lia.LinExpr, numBuckets)
	for b := range sums {
		sums[b] = lia.NewLin()
	}
	for i, info := range infos {
		if info.eps {
			continue
		}
		var buckets []int
		for d := 0; d <= 9; d++ {
			if info.r.Contains(d) {
				buckets = append(buckets, d)
			}
		}
		if info.r.Hi >= 10 {
			buckets = append(buckets, otherBucket)
		}
		switch len(buckets) {
		case 0:
			conj = append(conj, lia.EqConst(flow[i], 0))
		case 1:
			sums[buckets[0]].AddTermInt(flow[i], 1)
		default:
			split := lia.NewLin()
			for _, b := range buckets {
				y := pool.Fresh("oasplit")
				conj = append(conj, lia.Ge(lia.V(y), lia.Const(0)))
				sums[b].AddTermInt(y, 1)
				split.AddTermInt(y, 1)
			}
			conj = append(conj, lia.Eq(split, lia.V(flow[i])))
		}
	}
	for b := range sums {
		conj = append(conj, lia.Eq(lia.V(cs[b]), sums[b]))
	}
	return lia.And(conj...)
}

// prefixSuffixConflict derives, for every variable, the constant
// prefixes and suffixes forced by top-level word equations of the form
// x = t, and reports a definite conflict (two forced prefixes of the
// same variable that disagree, or likewise for suffixes). This is the
// ordering-sensitive complement of the character-count abstraction; it
// cheaply refutes the prefix/suffix contradictions common in the
// cvc4pred-style suites.
func prefixSuffixConflict(cons []strcon.Constraint) bool {
	prefixes := map[strcon.Var][]string{}
	suffixes := map[strcon.Var][]string{}
	record := func(x strcon.Var, t strcon.Term) {
		// Leading constant characters of t.
		if len(t) > 0 && !t[0].IsVar && t[0].Const != "" {
			prefixes[x] = append(prefixes[x], t[0].Const)
		}
		if last := t[len(t)-1]; len(t) > 0 && !last.IsVar && last.Const != "" {
			suffixes[x] = append(suffixes[x], last.Const)
		}
	}
	for _, c := range cons {
		eq, ok := c.(*strcon.WordEq)
		if !ok {
			continue
		}
		if len(eq.L) == 1 && eq.L[0].IsVar && len(eq.R) > 0 {
			record(eq.L[0].V, eq.R)
		}
		if len(eq.R) == 1 && eq.R[0].IsVar && len(eq.L) > 0 {
			record(eq.R[0].V, eq.L)
		}
	}
	disagree := func(a, b string, fromEnd bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if fromEnd {
				if a[len(a)-1-i] != b[len(b)-1-i] {
					return true
				}
			} else if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	for _, ps := range prefixes {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if disagree(ps[i], ps[j], false) {
					return true
				}
			}
		}
	}
	for _, ss := range suffixes {
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				if disagree(ss[i], ss[j], true) {
					return true
				}
			}
		}
	}
	return false
}

// emptyIntersection intersects the automata pairwise (bounded) and
// reports definite emptiness.
func emptyIntersection(nfas []*automata.NFA) bool {
	if len(nfas) == 0 {
		return false
	}
	cur := nfas[0]
	for _, next := range nfas[1:] {
		if cur.NumStates*next.NumStates > 20000 {
			return false // too big; stay sound by giving up
		}
		cur = automata.Product(cur, next)
		if cur.IsEmpty() {
			return true
		}
	}
	return cur.IsEmpty()
}
