package simplex

import "math/big"

// IntResult is the outcome of an integer feasibility search.
type IntResult int

// Branch-and-bound outcomes.
const (
	IntUnsat IntResult = iota
	IntSat
	IntUnknown
)

// IntSolver searches for an integer solution of the bounds currently
// asserted in S by branch and bound over the rational relaxation.
type IntSolver struct {
	S *Solver
	// IntVars lists the variables that must take integer values.
	IntVars []int
	// NodeBudget bounds the number of explored branch nodes; zero means
	// a conservative default.
	NodeBudget int

	nodes int
}

// DefaultNodeBudget is used when IntSolver.NodeBudget is zero.
const DefaultNodeBudget = 8000

// Solve runs branch and bound. On IntSat the returned map assigns an
// integer to every variable in IntVars. On IntUnsat the conflict
// explains infeasibility (possibly tainted when derived under branch
// splits). On IntUnknown the budget was exhausted.
func (b *IntSolver) Solve() (IntResult, map[int]*big.Int, *Conflict) {
	if b.NodeBudget == 0 {
		b.NodeBudget = DefaultNodeBudget
	}
	b.nodes = 0
	return b.rec(0)
}

func (b *IntSolver) rec(depth int) (IntResult, map[int]*big.Int, *Conflict) {
	b.nodes++
	if b.nodes > b.NodeBudget || depth > 512 {
		return IntUnknown, nil, nil
	}
	if confl := b.S.Check(); confl != nil {
		if confl.Budget {
			return IntUnknown, nil, nil
		}
		return IntUnsat, nil, confl
	}
	// Find a fractional integer variable; branch on the one with the
	// smallest id for determinism. ValueIsInt reads the machine-word
	// representation directly, so this scan allocates nothing.
	v := -1
	for _, iv := range b.IntVars {
		if !b.S.ValueIsInt(iv) {
			v = iv
			break
		}
	}
	if v == -1 {
		m := make(map[int]*big.Int, len(b.IntVars))
		for _, iv := range b.IntVars {
			m[iv] = b.S.ValueInt(iv)
		}
		return IntSat, m, nil
	}
	// Split bounds are Nums computed straight off the tableau value —
	// no big.Rat/big.Int churn per branch step on the fast path.
	fl := b.S.ValueFloor(v)

	// Left branch: v <= floor.
	b.S.Push()
	var leftRes IntResult
	var leftConfl *Conflict
	var model map[int]*big.Int
	if c := b.S.AssertUpperNum(v, fl, NoTag); c != nil {
		leftRes, leftConfl = IntUnsat, c
	} else {
		leftRes, model, leftConfl = b.rec(depth + 1)
	}
	b.S.Pop()
	if leftRes == IntSat {
		return IntSat, model, nil
	}
	if leftRes == IntUnsat && leftConfl != nil && !leftConfl.Tainted {
		// The conflict does not involve the split bound, so it is valid
		// globally.
		return IntUnsat, nil, leftConfl
	}

	// Right branch: v >= floor+1.
	b.S.Push()
	var rightRes IntResult
	var rightConfl *Conflict
	if c := b.S.AssertLowerNum(v, fl.AddInt64(1), NoTag); c != nil {
		rightRes, rightConfl = IntUnsat, c
	} else {
		rightRes, model, rightConfl = b.rec(depth + 1)
	}
	b.S.Pop()
	if rightRes == IntSat {
		return IntSat, model, nil
	}
	if rightRes == IntUnsat && rightConfl != nil && !rightConfl.Tainted {
		return IntUnsat, nil, rightConfl
	}
	if leftRes == IntUnknown || rightRes == IntUnknown {
		return IntUnknown, nil, nil
	}
	// Both branches infeasible but only under split bounds: merge tags
	// as a tainted explanation.
	merged := &Conflict{Tainted: true}
	seen := make(map[int]bool)
	for _, c := range []*Conflict{leftConfl, rightConfl} {
		if c == nil {
			continue
		}
		for _, t := range c.Tags {
			if !seen[t] {
				seen[t] = true
				merged.Tags = append(merged.Tags, t)
			}
		}
	}
	return IntUnsat, nil, merged
}
