package simplex

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestSingleVarBounds(t *testing.T) {
	s := New(1)
	if c := s.AssertLower(0, rat(3, 1), 1); c != nil {
		t.Fatalf("lower: unexpected conflict")
	}
	if c := s.AssertUpper(0, rat(5, 1), 2); c != nil {
		t.Fatalf("upper: unexpected conflict")
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check: unexpected conflict")
	}
	v := s.Value(0)
	if v.Cmp(rat(3, 1)) < 0 || v.Cmp(rat(5, 1)) > 0 {
		t.Fatalf("value %v out of [3,5]", v)
	}
	// Now contradict.
	c := s.AssertUpper(0, rat(2, 1), 3)
	if c == nil {
		t.Fatalf("expected immediate bound conflict")
	}
	if len(c.Tags) != 2 || c.Tags[0] != 1 || c.Tags[1] != 3 {
		t.Fatalf("conflict tags = %v, want [1 3]", c.Tags)
	}
}

func TestSlackFeasible(t *testing.T) {
	// x + y >= 4, x - y <= 0, x <= 1  => y >= 3, fine.
	s := New(2)
	sum := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(1)})
	diff := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(-1)})
	if c := s.AssertLower(sum, rat(4, 1), 1); c != nil {
		t.Fatal("conflict on sum lower")
	}
	if c := s.AssertUpper(diff, rat(0, 1), 2); c != nil {
		t.Fatal("conflict on diff upper")
	}
	if c := s.AssertUpper(0, rat(1, 1), 3); c != nil {
		t.Fatal("conflict on x upper")
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check: unexpected conflict %+v", c)
	}
	x, y := s.Value(0), s.Value(1)
	got := new(big.Rat).Add(x, y)
	if got.Cmp(rat(4, 1)) < 0 {
		t.Errorf("x+y = %v < 4", got)
	}
	if new(big.Rat).Sub(x, y).Sign() > 0 {
		t.Errorf("x-y > 0")
	}
}

func TestSlackInfeasibleWithCore(t *testing.T) {
	// x + y <= 1, x >= 1, y >= 1 is infeasible.
	s := New(2)
	sum := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(1)})
	if c := s.AssertUpper(sum, rat(1, 1), 10); c != nil {
		t.Fatal("unexpected")
	}
	if c := s.AssertLower(0, rat(1, 1), 11); c != nil {
		t.Fatal("unexpected")
	}
	if c := s.AssertLower(1, rat(1, 1), 12); c != nil {
		t.Fatal("unexpected")
	}
	c := s.Check()
	if c == nil {
		t.Fatalf("expected conflict")
	}
	if c.Tainted {
		t.Fatalf("conflict should not be tainted")
	}
	// Core must mention all three bounds.
	want := map[int]bool{10: true, 11: true, 12: true}
	for _, tag := range c.Tags {
		delete(want, tag)
	}
	if len(want) != 0 {
		t.Errorf("core %v missing tags %v", c.Tags, want)
	}
}

func TestPushPop(t *testing.T) {
	s := New(1)
	s.AssertLower(0, rat(0, 1), 1)
	s.Push()
	if c := s.AssertUpper(0, rat(-5, 1), 2); c == nil {
		t.Fatal("expected conflict inside frame")
	}
	s.Pop()
	if c := s.AssertUpper(0, rat(7, 1), 3); c != nil {
		t.Fatal("conflict after pop; bounds not restored")
	}
	if c := s.Check(); c != nil {
		t.Fatal("check failed after pop")
	}
}

func TestBranchAndBoundSimple(t *testing.T) {
	// 2x = 3 has no integer solution: x in [3/2, 3/2].
	s := New(1)
	dbl := s.DefineSlack(map[int]*big.Int{0: big.NewInt(2)})
	s.AssertLower(dbl, rat(3, 1), 1)
	s.AssertUpper(dbl, rat(3, 1), 2)
	b := &IntSolver{S: s, IntVars: []int{0}}
	res, _, _ := b.Solve()
	if res != IntUnsat {
		t.Fatalf("2x=3 integer: got %v, want IntUnsat", res)
	}
}

func TestBranchAndBoundFindsModel(t *testing.T) {
	// 3x + 5y = 31, x,y >= 0: x=2,y=5 or x=7,y=2.
	s := New(2)
	e := s.DefineSlack(map[int]*big.Int{0: big.NewInt(3), 1: big.NewInt(5)})
	s.AssertLower(e, rat(31, 1), 1)
	s.AssertUpper(e, rat(31, 1), 2)
	s.AssertLower(0, rat(0, 1), 3)
	s.AssertLower(1, rat(0, 1), 4)
	b := &IntSolver{S: s, IntVars: []int{0, 1}}
	res, m, _ := b.Solve()
	if res != IntSat {
		t.Fatalf("got %v, want IntSat", res)
	}
	x, y := m[0], m[1]
	got := new(big.Int).Add(new(big.Int).Mul(big.NewInt(3), x), new(big.Int).Mul(big.NewInt(5), y))
	if got.Cmp(big.NewInt(31)) != 0 {
		t.Fatalf("3*%v+5*%v = %v != 31", x, y, got)
	}
	if x.Sign() < 0 || y.Sign() < 0 {
		t.Fatalf("negative solution %v %v", x, y)
	}
}

func TestFloorRval(t *testing.T) {
	cases := []struct {
		n, d int64
		want int64
	}{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {1, 3, 0}, {-1, 3, -1},
	}
	for _, c := range cases {
		// Fast path: machine-word representation.
		var x rval
		x.setFrac64(c.n, c.d)
		var got big.Int
		x.floorInt(&got)
		if !got.IsInt64() || got.Int64() != c.want {
			t.Errorf("fast floor(%d/%d) = %v, want %d", c.n, c.d, &got, c.want)
		}
		// Slow path: same value promoted to big.Rat.
		var w rval
		w.setFrac64(c.n, c.d)
		w.promote()
		var got2 big.Int
		w.floorInt(&got2)
		if !got2.IsInt64() || got2.Int64() != c.want {
			t.Errorf("wide floor(%d/%d) = %v, want %d", c.n, c.d, &got2, c.want)
		}
	}
}

// TestRandomSystemsAgainstBruteForce generates small random integer
// constraint systems with variables in [0,6] and compares branch-and-
// bound against exhaustive enumeration.
func TestRandomSystemsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 250; iter++ {
		nv := 2 + rng.Intn(2) // 2..3 vars
		type ineq struct {
			coef []int64
			lo   bool
			c    int64
		}
		nc := 1 + rng.Intn(5)
		sys := make([]ineq, nc)
		for i := range sys {
			co := make([]int64, nv)
			for j := range co {
				co[j] = int64(rng.Intn(7) - 3)
			}
			sys[i] = ineq{coef: co, lo: rng.Intn(2) == 0, c: int64(rng.Intn(15) - 5)}
		}

		// Brute force over [0,6]^nv.
		want := false
		var enumerate func(idx int, vals []int64)
		found := false
		enumerate = func(idx int, vals []int64) {
			if found {
				return
			}
			if idx == nv {
				for _, q := range sys {
					lhs := int64(0)
					for j, c := range q.coef {
						lhs += c * vals[j]
					}
					if q.lo && lhs < q.c {
						return
					}
					if !q.lo && lhs > q.c {
						return
					}
				}
				found = true
				return
			}
			for v := int64(0); v <= 6; v++ {
				vals[idx] = v
				enumerate(idx+1, vals)
			}
		}
		enumerate(0, make([]int64, nv))
		want = found

		s := New(nv)
		intVars := make([]int, nv)
		for j := 0; j < nv; j++ {
			intVars[j] = j
			s.AssertLower(j, rat(0, 1), 100+j)
			s.AssertUpper(j, rat(6, 1), 200+j)
		}
		bad := false
		for qi, q := range sys {
			def := make(map[int]*big.Int)
			for j, c := range q.coef {
				if c != 0 {
					def[j] = big.NewInt(c)
				}
			}
			var sv int
			if len(def) == 0 {
				// Constant zero expression: check directly.
				if q.lo && 0 < q.c || !q.lo && 0 > q.c {
					bad = true
				}
				continue
			}
			sv = s.DefineSlack(def)
			var confl *Conflict
			if q.lo {
				confl = s.AssertLower(sv, rat(q.c, 1), 300+qi)
			} else {
				confl = s.AssertUpper(sv, rat(q.c, 1), 300+qi)
			}
			if confl != nil {
				bad = true
			}
		}
		var res IntResult
		if bad {
			res = IntUnsat
		} else {
			b := &IntSolver{S: s, IntVars: intVars}
			res, _, _ = b.Solve()
		}
		if res == IntUnknown {
			continue // budget; rare on these sizes
		}
		if (res == IntSat) != want {
			t.Fatalf("iter %d: simplex=%v brute=%v system=%+v", iter, res, want, sys)
		}
	}
}
