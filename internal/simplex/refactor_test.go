package simplex

import (
	"math/big"
	"testing"
)

func TestUndoTrailPushPop(t *testing.T) {
	s := New(2)
	sum := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(1)})
	if c := s.AssertLower(0, rat(1, 1), 1); c != nil {
		t.Fatal(c)
	}
	s.Push()
	s.Push()
	if c := s.AssertUpper(sum, rat(1, 1), 2); c != nil {
		t.Fatal(c)
	}
	if c := s.AssertLower(1, rat(1, 1), 3); c != nil {
		t.Fatal(c)
	}
	if s.Check() == nil {
		t.Fatal("x>=1, y>=1, x+y<=1 must conflict")
	}
	s.Pop()
	s.Pop()
	// Outer frame: only x >= 1 remains; y free.
	if c := s.AssertUpper(1, rat(-5, 1), 4); c != nil {
		t.Fatal("y <= -5 should be fine after pop")
	}
	if c := s.Check(); c != nil {
		t.Fatalf("unexpected conflict after pop: %+v", c)
	}
}

func TestRefactorizePreservesFeasibility(t *testing.T) {
	// Build a system, force pivoting, refactorize explicitly, and
	// verify values still satisfy all constraints.
	s := New(3)
	e1 := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(2)})
	e2 := s.DefineSlack(map[int]*big.Int{1: big.NewInt(1), 2: big.NewInt(-1)})
	e3 := s.DefineSlack(map[int]*big.Int{0: big.NewInt(3), 2: big.NewInt(1)})
	s.AssertLower(e1, rat(4, 1), 1)
	s.AssertUpper(e2, rat(0, 1), 2)
	s.AssertLower(e3, rat(2, 1), 3)
	s.AssertLower(0, rat(0, 1), 4)
	if c := s.Check(); c != nil {
		t.Fatalf("feasible system rejected: %+v", c)
	}
	check := func(stage string) {
		x0, x1, x2 := s.Value(0), s.Value(1), s.Value(2)
		v1 := new(big.Rat).Add(x0, new(big.Rat).Mul(rat(2, 1), x1))
		v2 := new(big.Rat).Sub(x1, x2)
		v3 := new(big.Rat).Add(new(big.Rat).Mul(rat(3, 1), x0), x2)
		if v1.Cmp(rat(4, 1)) < 0 || v2.Sign() > 0 || v3.Cmp(rat(2, 1)) < 0 || x0.Sign() < 0 {
			t.Fatalf("%s: invalid solution x=(%v,%v,%v)", stage, x0, x1, x2)
		}
		if s.Value(e1).Cmp(v1) != 0 {
			t.Fatalf("%s: slack value out of sync", stage)
		}
	}
	check("before")
	s.refactorize()
	if c := s.Check(); c != nil {
		t.Fatalf("refactorized system rejected: %+v", c)
	}
	check("after")
}

func TestDefineSlackRejectsSlackRefs(t *testing.T) {
	s := New(1)
	sl := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on slack-referencing definition")
		}
	}()
	s.DefineSlack(map[int]*big.Int{sl: big.NewInt(1)})
}

func TestEnsureVars(t *testing.T) {
	s := New(1)
	s.EnsureVars(5)
	if s.NumVars() != 5 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if c := s.AssertLower(4, rat(7, 1), 1); c != nil {
		t.Fatal(c)
	}
	if c := s.Check(); c != nil {
		t.Fatal(c)
	}
	if s.Value(4).Cmp(rat(7, 1)) < 0 {
		t.Fatal("bound not respected on grown var")
	}
}
