package simplex

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/engine"
)

func TestCancelledCtxTurnsCheckIntoBudgetConflict(t *testing.T) {
	s := New(2)
	sum := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(1)})
	if c := s.AssertLower(sum, rat(4, 1), 1); c != nil {
		t.Fatal("unexpected conflict on assert")
	}
	ec := engine.Background()
	ec.Cancel()
	s.Ctx = ec
	c := s.Check()
	if c == nil || !c.Budget || !c.Tainted {
		t.Fatalf("Check() = %+v, want a tainted budget conflict", c)
	}
}

func TestCancelAbortsIntSolverSearch(t *testing.T) {
	// A system whose LP relaxation is feasible but where branch-and-
	// bound must split repeatedly: x + y even-sum style constraints over
	// a wide box. The exact instance matters less than the bound: the
	// cancelled run must return promptly with IntUnknown.
	n := 12
	s := New(n)
	ec := engine.Background()
	s.Ctx = ec
	intVars := make([]int, n)
	for i := range intVars {
		intVars[i] = i
		if c := s.AssertLower(i, rat(0, 1), i*2+1); c != nil {
			t.Fatal("lower bound conflict")
		}
		if c := s.AssertUpper(i, rat(1000, 1), i*2+2); c != nil {
			t.Fatal("upper bound conflict")
		}
	}
	// sum of all vars = 2k+1/2-ish fractional optimum: force many splits
	// with pairwise half-integral couplings.
	tag := 1000
	for i := 0; i+1 < n; i++ {
		sl := s.DefineSlack(map[int]*big.Int{i: big.NewInt(2), i + 1: big.NewInt(2)})
		if c := s.AssertLower(sl, rat(1, 1), tag); c != nil {
			t.Fatal("slack lower conflict")
		}
		tag++
		if c := s.AssertUpper(sl, rat(1, 1), tag); c != nil {
			t.Fatal("slack upper conflict")
		}
		tag++
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		ec.Cancel()
	}()
	b := &IntSolver{S: s, IntVars: intVars, NodeBudget: 1 << 30}
	start := time.Now()
	res, _, _ := b.Solve()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled branch-and-bound took %v", d)
	}
	// 2x_i + 2x_{i+1} = 1 has no integer solution, so any completed
	// outcome is IntUnsat; a cancelled one is IntUnknown. Both are
	// acceptable — the point is the bounded return.
	if res == IntSat {
		t.Fatalf("result = IntSat for an integrally infeasible system")
	}
}

func TestPivotStatsRecorded(t *testing.T) {
	s := New(3)
	a := s.DefineSlack(map[int]*big.Int{0: big.NewInt(1), 1: big.NewInt(1)})
	b := s.DefineSlack(map[int]*big.Int{1: big.NewInt(1), 2: big.NewInt(1)})
	if c := s.AssertLower(a, rat(3, 1), 1); c != nil {
		t.Fatal("conflict")
	}
	if c := s.AssertLower(b, rat(3, 1), 2); c != nil {
		t.Fatal("conflict")
	}
	if c := s.AssertUpper(0, rat(1, 1), 3); c != nil {
		t.Fatal("conflict")
	}
	if c := s.Check(); c != nil {
		t.Fatal("unexpected conflict")
	}
	if s.Pivots == 0 {
		t.Fatal("expected at least one pivot to be counted")
	}
}
