package simplex

import (
	"math"
	"math/big"
	"testing"
)

// ratOf returns the rval's value as a big.Rat without touching its
// representation.
func ratOf(x *rval) *big.Rat { return x.rat() }

func TestCheckedHelpers(t *testing.T) {
	cases := []struct {
		a, b int64
	}{
		{0, 0}, {1, -1}, {math.MaxInt64, 1}, {math.MinInt64, -1},
		{math.MinInt64, math.MinInt64}, {math.MaxInt64, math.MaxInt64},
		{math.MinInt64 / 2, 2}, {3037000499, 3037000499}, // isqrt(MaxInt64) boundary
		{-3037000500, 3037000500}, {1 << 31, 1 << 32},
	}
	for _, c := range cases {
		bigA, bigB := big.NewInt(c.a), big.NewInt(c.b)
		if got, ok := add64(c.a, c.b); ok {
			if want := new(big.Int).Add(bigA, bigB); !want.IsInt64() || want.Int64() != got {
				t.Errorf("add64(%d,%d) = %d, want %v", c.a, c.b, got, want)
			}
		} else if new(big.Int).Add(bigA, bigB).IsInt64() {
			t.Errorf("add64(%d,%d) reported overflow on a fitting sum", c.a, c.b)
		}
		if got, ok := sub64(c.a, c.b); ok {
			if want := new(big.Int).Sub(bigA, bigB); !want.IsInt64() || want.Int64() != got {
				t.Errorf("sub64(%d,%d) = %d, want %v", c.a, c.b, got, want)
			}
		} else if new(big.Int).Sub(bigA, bigB).IsInt64() {
			t.Errorf("sub64(%d,%d) reported overflow on a fitting difference", c.a, c.b)
		}
		if got, ok := mul64(c.a, c.b); ok {
			if want := new(big.Int).Mul(bigA, bigB); !want.IsInt64() || want.Int64() != got {
				t.Errorf("mul64(%d,%d) = %d, want %v", c.a, c.b, got, want)
			}
		} else if new(big.Int).Mul(bigA, bigB).IsInt64() {
			t.Errorf("mul64(%d,%d) reported overflow on a fitting product", c.a, c.b)
		}
	}
	// MinInt64 products that land exactly on the boundary.
	if got, ok := mul64(math.MinInt64, 1); !ok || got != math.MinInt64 {
		t.Errorf("mul64(MinInt64, 1) = %d, %v", got, ok)
	}
	if got, ok := mul64(-(int64(1) << 32), int64(1)<<31); !ok || got != math.MinInt64 {
		t.Errorf("mul64(-2^32, 2^31) = %d, %v; want MinInt64, true", got, ok)
	}
	if _, ok := mul64(int64(1)<<32, int64(1)<<31); ok {
		t.Error("mul64(2^32, 2^31) must overflow (MaxInt64+1)")
	}
	if _, ok := neg64(math.MinInt64); ok {
		t.Error("neg64(MinInt64) must overflow")
	}
}

// applyRval performs op on rvals; applyRat is the big.Rat ground truth.
func applyRval(op byte, z, x, y *rval) {
	switch op % 7 {
	case 0:
		z.set(x)
		z.add(y)
	case 1:
		z.sub(x, y)
	case 2:
		z.mul(x, y)
	case 3:
		z.set(x)
		z.addMul(y, y)
	case 4:
		if y.sign() != 0 {
			z.div(x, y)
		} else {
			z.set(x)
		}
	case 5:
		z.set(x)
		z.neg()
	case 6:
		z.mulNeg(x, y)
	}
}

func applyRat(op byte, x, y *big.Rat) *big.Rat {
	z := new(big.Rat)
	switch op % 7 {
	case 0:
		z.Add(x, y)
	case 1:
		z.Sub(x, y)
	case 2:
		z.Mul(x, y)
	case 3:
		z.Add(x, new(big.Rat).Mul(y, y))
	case 4:
		if y.Sign() != 0 {
			z.Quo(x, y)
		} else {
			z.Set(x)
		}
	case 5:
		z.Neg(x)
	case 6:
		z.Mul(x, y)
		z.Neg(z)
	}
	return z
}

// FuzzFastPathArith cross-checks every rval operation against big.Rat
// ground truth, including the +-2^63 overflow boundaries where the fast
// path must trip into the wide fallback without changing the value.
func FuzzFastPathArith(f *testing.F) {
	seeds := []struct {
		op             byte
		an, ad, bn, bd int64
	}{
		{0, 1, 2, 1, 3},
		{1, math.MaxInt64, 1, -1, 1},
		{2, math.MaxInt64, 3, 3, 1},
		{3, math.MinInt64, 1, 3037000499, 1},
		{4, 1, math.MaxInt64, math.MinInt64, 7},
		{2, math.MinInt64, math.MaxInt64, math.MaxInt64, math.MinInt64 + 1},
		{0, math.MaxInt64 - 1, 2, math.MaxInt64, 2},
		{6, math.MinInt64, 1, 1, math.MinInt64},
		{5, math.MinInt64, 1, 0, 1},
		{1, math.MinInt64 + 1, math.MaxInt64, math.MaxInt64, math.MaxInt64 - 1},
	}
	for _, s := range seeds {
		f.Add(s.op, s.an, s.ad, s.bn, s.bd)
	}
	f.Fuzz(func(t *testing.T, op byte, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 {
			t.Skip()
		}
		var x, y, z rval
		x.setFrac64(an, ad)
		y.setFrac64(bn, bd)
		rx, ry := ratOf(&x), ratOf(&y)
		if rx.Cmp(new(big.Rat).SetFrac64(an, ad)) != 0 {
			t.Fatalf("setFrac64(%d,%d) = %v", an, ad, rx)
		}
		applyRval(op, &z, &x, &y)
		want := applyRat(op, rx, ry)
		if got := ratOf(&z); got.Cmp(want) != 0 {
			t.Fatalf("op %d on %v, %v: fast path %v, big.Rat %v", op%7, rx, ry, got, want)
		}
		// Operands must be unchanged (ops only write their receiver).
		if ratOf(&x).Cmp(rx) != 0 || ratOf(&y).Cmp(ry) != 0 {
			t.Fatalf("op %d mutated an operand", op%7)
		}
		// cmp must agree with big.Rat comparison.
		if x.cmp(&y) != rx.Cmp(ry) {
			t.Fatalf("cmp(%v, %v) = %d, want %d", rx, ry, x.cmp(&y), rx.Cmp(ry))
		}
		// Aliased receiver: z = z op y.
		var za rval
		za.set(&x)
		applyRval(op, &za, &za, &y)
		wantAlias := applyRat(op, rx, ry)
		if got := ratOf(&za); got.Cmp(wantAlias) != 0 {
			t.Fatalf("aliased op %d: got %v, want %v", op%7, got, wantAlias)
		}
		// The same computation under ForceSlowPath must agree exactly.
		ForceSlowPath = true
		defer func() { ForceSlowPath = false }()
		var xs, ys, zs rval
		xs.setFrac64(an, ad)
		ys.setFrac64(bn, bd)
		applyRval(op, &zs, &xs, &ys)
		if got := ratOf(&zs); got.Cmp(want) != 0 {
			t.Fatalf("slow path disagrees: got %v, want %v", got, want)
		}
	})
}

func TestRvalNarrowsAfterWideDetour(t *testing.T) {
	// (2^62 + 2^62) / 2 overflows int64 transiently, then fits again.
	var x, two rval
	x.setInt64(1 << 62)
	x.add(&x)
	if !x.isWide {
		t.Fatal("2^63 must be wide")
	}
	two.setInt64(2)
	x.div(&x, &two)
	if x.isWide {
		t.Fatalf("2^63/2 = 2^62 should have narrowed, got wide %v", x.rat())
	}
	if x.n != 1<<62 || x.d != 1 {
		t.Fatalf("narrowed to %d/%d, want 2^62/1", x.n, x.d)
	}
}

// TestOverflowTripInSolver drives the full simplex solver over
// coefficients near 2^60 so pivot arithmetic must trip into the wide
// fallback, and checks the verdict and model against small-coefficient
// ground truth semantics.
func TestOverflowTripInSolver(t *testing.T) {
	huge := int64(1) << 60
	// huge*x + huge*y >= 3*huge, x <= 1, y <= 3: feasible (x=1, y=2).
	s := New(2)
	e := s.DefineSlack(map[int]*big.Int{0: big.NewInt(huge), 1: big.NewInt(huge)})
	lo := new(big.Rat).SetInt(new(big.Int).Mul(big.NewInt(3), big.NewInt(huge)))
	if c := s.AssertLower(e, lo, 1); c != nil {
		t.Fatal("unexpected conflict on lower")
	}
	if c := s.AssertUpper(0, rat(1, 1), 2); c != nil {
		t.Fatal(c)
	}
	if c := s.AssertUpper(1, rat(3, 1), 3); c != nil {
		t.Fatal(c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("feasible huge system rejected: %+v", c)
	}
	x, y := s.Value(0), s.Value(1)
	sum := new(big.Rat).Add(x, y)
	if sum.Cmp(rat(3, 1)) < 0 || x.Cmp(rat(1, 1)) > 0 || y.Cmp(rat(3, 1)) > 0 {
		t.Fatalf("invalid model x=%v y=%v", x, y)
	}
	// Now x+y can contribute at most 4*huge; demand 5*huge: infeasible,
	// and the conflict must cite all three bounds.
	hi := new(big.Rat).SetInt(new(big.Int).Mul(big.NewInt(5), big.NewInt(huge)))
	if c := s.AssertLower(e, hi, 4); c != nil {
		t.Fatal("bound-vs-bound conflict too early")
	}
	c := s.Check()
	if c == nil || c.Tainted {
		t.Fatalf("expected untainted conflict, got %+v", c)
	}
	want := map[int]bool{2: true, 3: true, 4: true}
	for _, tag := range c.Tags {
		delete(want, tag)
	}
	if len(want) != 0 {
		t.Fatalf("conflict %v missing tags %v", c.Tags, want)
	}
}

// TestForcedSlowPathSolverAgreement replays a pivot-heavy random system
// with and without the fast path and requires identical verdicts and
// values.
func TestForcedSlowPathSolverAgreement(t *testing.T) {
	build := func() *Solver {
		s := New(3)
		e1 := s.DefineSlack(map[int]*big.Int{0: big.NewInt(2), 1: big.NewInt(3), 2: big.NewInt(-1)})
		e2 := s.DefineSlack(map[int]*big.Int{0: big.NewInt(-1), 1: big.NewInt(5)})
		e3 := s.DefineSlack(map[int]*big.Int{1: big.NewInt(7), 2: big.NewInt(2)})
		s.AssertLower(e1, rat(4, 1), 1)
		s.AssertUpper(e2, rat(10, 3), 2)
		s.AssertLower(e3, rat(-2, 7), 3)
		s.AssertUpper(0, rat(9, 2), 4)
		s.AssertLower(1, rat(-3, 1), 5)
		s.AssertUpper(2, rat(11, 1), 6)
		return s
	}
	fast := build()
	cf := fast.Check()

	ForceSlowPath = true
	defer func() { ForceSlowPath = false }()
	slow := build()
	cs := slow.Check()

	if (cf == nil) != (cs == nil) {
		t.Fatalf("verdicts differ: fast %+v, slow %+v", cf, cs)
	}
	if cf != nil {
		return
	}
	for v := 0; v < fast.NumVars(); v++ {
		if fast.Value(v).Cmp(slow.Value(v)) != 0 {
			t.Fatalf("var %d: fast %v, slow %v", v, fast.Value(v), slow.Value(v))
		}
	}
	if fast.Pivots != slow.Pivots {
		t.Fatalf("pivot counts diverge: fast %d, slow %d", fast.Pivots, slow.Pivots)
	}
}

func TestNumAPI(t *testing.T) {
	n := NumFromInt64(41).AddInt64(1)
	if n.Rat().Cmp(rat(42, 1)) != 0 {
		t.Fatalf("41+1 = %v", n.Rat())
	}
	big9 := new(big.Int).Exp(big.NewInt(10), big.NewInt(30), nil)
	m := NumFromBigInt(big9)
	if m.Rat().Cmp(new(big.Rat).SetInt(big9)) != 0 {
		t.Fatalf("NumFromBigInt(10^30) = %v", m.Rat())
	}
	if m.Cmp(n) <= 0 {
		t.Fatal("10^30 must compare above 42")
	}
	r := NumFromRat(rat(-7, 3))
	if r.Rat().Cmp(rat(-7, 3)) != 0 {
		t.Fatalf("NumFromRat = %v", r.Rat())
	}
	if got := r.AddInt64(1).Rat(); got.Cmp(rat(-4, 3)) != 0 {
		t.Fatalf("-7/3 + 1 = %v", got)
	}
}
