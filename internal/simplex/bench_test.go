package simplex

import (
	"math/big"
	"testing"
)

// benchTableau builds a solver with nv problem variables and one slack
// per window of w consecutive variables, so columns are shared across
// rows and pivots exercise the substitution merge.
func benchTableau(nv, w int) (*Solver, []int) {
	s := New(nv)
	slacks := make([]int, 0, nv)
	for i := 0; i+w <= nv; i += w / 2 {
		def := make(map[int]*big.Int, w)
		for j := 0; j < w; j++ {
			c := int64(j + 1)
			if (i+j)%2 == 1 {
				c = -c
			}
			def[i+j] = big.NewInt(c)
		}
		slacks = append(slacks, s.DefineSlack(def))
	}
	return s, slacks
}

// BenchmarkPivot measures the raw row-transform + substitution cost of
// one pivot by swapping a basic/nonbasic pair back and forth.
func BenchmarkPivot(b *testing.B) {
	benchmarkPivot(b)
}

// BenchmarkPivotSlowPath is the same workload with every rval routed
// through big.Rat: the A/B pair quantifies the machine-word win.
func BenchmarkPivotSlowPath(b *testing.B) {
	ForceSlowPath = true
	defer func() { ForceSlowPath = false }()
	benchmarkPivot(b)
}

func benchmarkPivot(b *testing.B) {
	s, slacks := benchTableau(32, 8)
	basic, nonb := slacks[0], 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.pivot(basic, nonb)
		basic, nonb = nonb, basic
	}
}

// BenchmarkCheck measures feasibility restoration under alternating
// bound flips: every iteration pushes bounds that violate the current
// assignment, so Check must pivot, then pops them.
func BenchmarkCheck(b *testing.B) {
	benchmarkCheck(b)
}

// BenchmarkCheckSlowPath is BenchmarkCheck on the big.Rat fallback.
func BenchmarkCheckSlowPath(b *testing.B) {
	ForceSlowPath = true
	defer func() { ForceSlowPath = false }()
	benchmarkCheck(b)
}

func benchmarkCheck(b *testing.B) {
	s, slacks := benchTableau(24, 6)
	for v := 0; v < 24; v++ {
		s.AssertLower(v, big.NewRat(-50, 1), NoTag)
		s.AssertUpper(v, big.NewRat(50, 1), NoTag)
	}
	if c := s.Check(); c != nil {
		b.Fatalf("base system infeasible: %+v", c)
	}
	lo := NumFromInt64(20)
	hi := NumFromInt64(-20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := slacks[i%len(slacks)]
		s.Push()
		if i%2 == 0 {
			s.AssertLowerNum(e, lo, NoTag)
		} else {
			s.AssertUpperNum(e, hi, NoTag)
		}
		if c := s.Check(); c != nil && !c.Budget {
			b.Fatalf("iter %d: unexpected conflict", i)
		}
		s.Pop()
	}
}
