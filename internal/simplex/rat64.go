package simplex

// The machine-word fast path of the simplex arithmetic substrate.
//
// Tableau coefficients, assignment values, and bounds are rationals.
// On the instances this solver sees they are overwhelmingly small
// integers (the tableaux come from integer linear constraints), so
// representing every value as a heap-allocated big.Rat — as the first
// seven PRs did — pays pointer-chasing, allocation, and word-by-word
// arithmetic costs on values that fit comfortably in a machine word.
//
// rval stores a rational as a reduced int64 numerator/denominator pair
// and performs all arithmetic through overflow-checked helpers built on
// math/bits. Any operation whose exact result cannot be represented in
// int64 promotes that one value to an exact big.Rat ("wide") and the
// computation continues losslessly; results that shrink back into range
// are re-narrowed, so a single overflow does not poison a row. The
// traulint overflowguard check enforces that no raw int64 add/sub/mul
// sneaks into this package outside the checked helpers.
//
// ForceSlowPath routes every operation through the big.Rat fallback so
// differential tests can prove the two paths byte-identical.

import (
	"math/big"
	"math/bits"
)

// ForceSlowPath, when true, disables the int64 fast path: every rval
// operation computes through the exact big.Rat fallback and nothing is
// re-narrowed. It exists for the differential test suite (fast-path
// verdicts and witnesses must be identical with the flag on) and must
// only be toggled while no solver is running.
var ForceSlowPath bool

// rval is one rational value of the tableau: n/d with d >= 1 and
// gcd(|n|, d) == 1 while isWide is false, or the exact value in wide
// while isWide is true. The wide pointer is retained as scratch after
// re-narrowing so repeated overflow trips on the same cell do not
// reallocate.
//
// rvals must not be copied by struct assignment once wide is non-nil
// (two copies would share and corrupt the same big.Rat); use set.
type rval struct {
	n, d   int64
	wide   *big.Rat
	isWide bool
}

// add64 is an overflow-checked helper: a+b and whether it fit.
func add64(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff the operands share a sign the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// sub64 is an overflow-checked helper: a-b and whether it fit.
func sub64(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0) != (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// neg64 is an overflow-checked helper: -a and whether it fit (it does
// not for MinInt64).
func neg64(a int64) (int64, bool) {
	if a == minInt64 {
		return 0, false
	}
	return -a, true
}

// mul64 is an overflow-checked helper: a*b and whether it fit, via a
// full 64x64->128 multiply of the magnitudes.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU64(a), absU64(b))
	if hi != 0 {
		return 0, false
	}
	if neg {
		if lo > 1<<63 {
			return 0, false
		}
		return -int64(lo), true // lo == 1<<63 yields MinInt64 exactly
	}
	if lo > 1<<63-1 {
		return 0, false
	}
	return int64(lo), true
}

const minInt64 = -1 << 63

// absU64 returns |a| as a uint64 (total, including MinInt64).
func absU64(a int64) uint64 {
	u := uint64(a)
	if a < 0 {
		u = -u
	}
	return u
}

// gcd64 is Euclid's algorithm on magnitudes; gcd64(0, x) == x.
func gcd64(a, b uint64) uint64 {
	//lint:nopoll bounded: Euclid's algorithm halves a+b every two steps
	for a != 0 {
		a, b = b%a, a
	}
	return b
}

// reduce64 normalizes n/d (d > 0) to lowest terms. Division cannot
// overflow because d > 0.
func reduce64(n, d int64) (int64, int64) {
	if n == 0 {
		return 0, 1
	}
	g := gcd64(absU64(n), uint64(d))
	if g > 1 {
		n /= int64(g)
		d /= int64(g)
	}
	return n, d
}

// addSmall computes an/ad + bn/bd in int64 (ad, bd > 0), reporting
// whether every intermediate fit.
func addSmall(an, ad, bn, bd int64) (int64, int64, bool) {
	g := int64(gcd64(uint64(ad), uint64(bd)))
	db := bd / g
	da := ad / g
	t1, ok1 := mul64(an, db)
	t2, ok2 := mul64(bn, da)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	nn, ok := add64(t1, t2)
	if !ok {
		return 0, 0, false
	}
	dd, ok := mul64(ad, db)
	if !ok {
		return 0, 0, false
	}
	n, d := reduce64(nn, dd)
	return n, d, true
}

// mulSmall computes (an/ad) * (bn/bd) in int64 with cross-reduction.
func mulSmall(an, ad, bn, bd int64) (int64, int64, bool) {
	if an == 0 || bn == 0 {
		return 0, 1, true
	}
	g1 := int64(gcd64(absU64(an), uint64(bd)))
	g2 := int64(gcd64(absU64(bn), uint64(ad)))
	nn, ok1 := mul64(an/g1, bn/g2)
	dd, ok2 := mul64(ad/g2, bd/g1)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return nn, dd, true // cross-reduced operands are already coprime
}

// divSmall computes (an/ad) / (bn/bd) in int64; bn must be nonzero.
func divSmall(an, ad, bn, bd int64) (int64, int64, bool) {
	if bn < 0 {
		var ok bool
		if an, ok = neg64(an); !ok {
			return 0, 0, false
		}
		if bn, ok = neg64(bn); !ok {
			return 0, 0, false
		}
	}
	return mulSmall(an, ad, bd, bn)
}

// cmpSmall compares an/ad with bn/bd (ad, bd > 0) exactly via 128-bit
// cross products; it cannot overflow and never allocates.
func cmpSmall(an, ad, bn, bd int64) int {
	sa, sb := 0, 0
	if an > 0 {
		sa = 1
	} else if an < 0 {
		sa = -1
	}
	if bn > 0 {
		sb = 1
	} else if bn < 0 {
		sb = -1
	}
	if sa != sb {
		if sa < sb {
			return -1
		}
		return 1
	}
	if sa == 0 {
		return 0
	}
	h1, l1 := bits.Mul64(absU64(an), uint64(bd))
	h2, l2 := bits.Mul64(absU64(bn), uint64(ad))
	m := 0
	if h1 != h2 {
		if h1 < h2 {
			m = -1
		} else {
			m = 1
		}
	} else if l1 != l2 {
		if l1 < l2 {
			m = -1
		} else {
			m = 1
		}
	}
	return m * sa
}

// --- rval methods ---------------------------------------------------

// widen returns the wide scratch, allocating it on first use. It does
// not mark the value wide; callers overwrite the returned big.Rat.
func (z *rval) widen() *big.Rat {
	if z.wide == nil {
		z.wide = new(big.Rat)
	}
	return z.wide
}

// view returns the value as a big.Rat, materializing fast-path values
// into buf (wide values are returned directly; do not mutate).
func (x *rval) view(buf *big.Rat) *big.Rat {
	if x.isWide {
		return x.wide
	}
	return buf.SetFrac64(x.n, x.d)
}

// promote makes the value wide (loading the fast-path value into the
// scratch big.Rat if needed) and returns it for in-place mutation.
func (z *rval) promote() *big.Rat {
	w := z.widen()
	if !z.isWide {
		w.SetFrac64(z.n, z.d)
		z.isWide = true
	}
	return w
}

// finishWide re-narrows a freshly computed wide value when it fits the
// machine word again (big.Rat keeps values reduced, so the int64 fit
// check is exact). Under ForceSlowPath values stay wide.
func (z *rval) finishWide() {
	z.isWide = true
	if ForceSlowPath {
		return
	}
	if z.wide.Num().IsInt64() && z.wide.Denom().IsInt64() {
		z.n, z.d = z.wide.Num().Int64(), z.wide.Denom().Int64()
		z.isWide = false
	}
}

func fast1(x *rval) bool { return !ForceSlowPath && !x.isWide }

func fast2(x, y *rval) bool { return !ForceSlowPath && !x.isWide && !y.isWide }

// set copies x into z. Wide values are deep-copied so z and x never
// share a big.Rat.
func (z *rval) set(x *rval) {
	if z == x {
		return
	}
	if x.isWide {
		z.widen().Set(x.wide)
		z.isWide = true
		return
	}
	z.n, z.d = x.n, x.d
	z.isWide = false
}

// setInt64 sets z to x.
func (z *rval) setInt64(x int64) {
	if ForceSlowPath {
		z.widen().SetInt64(x)
		z.isWide = true
		return
	}
	z.n, z.d = x, 1
	z.isWide = false
}

// setFrac64 sets z to n/d (d != 0, any sign).
func (z *rval) setFrac64(n, d int64) {
	if d == 0 {
		panic("simplex: zero denominator") // contract: callers divide by nonzero values only
	}
	if !ForceSlowPath && d != minInt64 && n != minInt64 {
		if d < 0 {
			n, d = -n, -d //lint:nooverflow both negations guarded against MinInt64 above
		}
		z.n, z.d = reduce64(n, d)
		z.isWide = false
		return
	}
	z.widen().SetFrac64(n, d)
	z.finishWide()
}

// setBigInt sets z to x.
func (z *rval) setBigInt(x *big.Int) {
	if !ForceSlowPath && x.IsInt64() {
		z.n, z.d = x.Int64(), 1
		z.isWide = false
		return
	}
	z.widen().SetInt(x)
	z.isWide = true
}

// setRat sets z to x (copying).
func (z *rval) setRat(x *big.Rat) {
	if !ForceSlowPath && x.Num().IsInt64() && x.Denom().IsInt64() {
		z.n, z.d = x.Num().Int64(), x.Denom().Int64()
		z.isWide = false
		return
	}
	z.widen().Set(x)
	z.isWide = true
}

// rat returns the value as a freshly allocated big.Rat.
func (x *rval) rat() *big.Rat {
	if x.isWide {
		return new(big.Rat).Set(x.wide)
	}
	return new(big.Rat).SetFrac64(x.n, x.d)
}

// sign returns -1, 0, or 1.
func (x *rval) sign() int {
	if x.isWide {
		return x.wide.Sign()
	}
	if x.n > 0 {
		return 1
	}
	if x.n < 0 {
		return -1
	}
	return 0
}

// isInt reports whether the value is an integer.
func (x *rval) isInt() bool {
	if x.isWide {
		return x.wide.IsInt()
	}
	return x.d == 1
}

// cmp compares x with y.
func (x *rval) cmp(y *rval) int {
	if fast2(x, y) {
		return cmpSmall(x.n, x.d, y.n, y.d)
	}
	var bx, by big.Rat
	return x.view(&bx).Cmp(y.view(&by))
}

// neg negates z in place.
func (z *rval) neg() {
	if fast1(z) {
		if n, ok := neg64(z.n); ok {
			z.n = n
			return
		}
	}
	w := z.promote()
	w.Neg(w)
	z.finishWide()
}

// add sets z += x. z may alias x.
func (z *rval) add(x *rval) {
	if fast2(z, x) {
		if n, d, ok := addSmall(z.n, z.d, x.n, x.d); ok {
			z.n, z.d = n, d
			return
		}
	}
	var bx big.Rat
	xr := x.view(&bx)
	w := z.promote()
	w.Add(w, xr)
	z.finishWide()
}

// sub sets z = x - y. z may alias x or y.
func (z *rval) sub(x, y *rval) {
	if fast2(x, y) {
		if yn, ok := neg64(y.n); ok {
			if n, d, ok := addSmall(x.n, x.d, yn, y.d); ok {
				z.n, z.d = n, d
				z.isWide = false
				return
			}
		}
	}
	var bx, by big.Rat
	xr, yr := x.view(&bx), y.view(&by)
	z.widen().Sub(xr, yr)
	z.finishWide()
}

// addMul sets z += a*b. z must not alias a or b.
func (z *rval) addMul(a, b *rval) {
	if fast2(a, b) && !z.isWide {
		if tn, td, ok := mulSmall(a.n, a.d, b.n, b.d); ok {
			if n, d, ok := addSmall(z.n, z.d, tn, td); ok {
				z.n, z.d = n, d
				return
			}
		}
	}
	var ba, bb, bt big.Rat
	t := bt.Mul(a.view(&ba), b.view(&bb))
	w := z.promote()
	w.Add(w, t)
	z.finishWide()
}

// mul sets z = x * y. z may alias x or y.
func (z *rval) mul(x, y *rval) {
	if fast2(x, y) {
		if n, d, ok := mulSmall(x.n, x.d, y.n, y.d); ok {
			z.n, z.d = n, d
			z.isWide = false
			return
		}
	}
	var bx, by big.Rat
	xr, yr := x.view(&bx), y.view(&by)
	z.widen().Mul(xr, yr)
	z.finishWide()
}

// mulNeg sets z = -(x * y). z may alias x or y.
func (z *rval) mulNeg(x, y *rval) {
	z.mul(x, y)
	z.neg()
}

// div sets z = x / y (y nonzero). z may alias x or y.
func (z *rval) div(x, y *rval) {
	if fast2(x, y) {
		if n, d, ok := divSmall(x.n, x.d, y.n, y.d); ok {
			z.n, z.d = n, d
			z.isWide = false
			return
		}
	}
	var bx, by big.Rat
	xr, yr := x.view(&bx), y.view(&by)
	z.widen().Quo(xr, yr)
	z.finishWide()
}

// inv sets z = 1 / x (x nonzero). z may alias x.
func (z *rval) inv(x *rval) {
	if fast1(x) {
		n, d := x.n, x.d
		if n < 0 {
			if nn, ok := neg64(n); ok {
				if dd, ok := neg64(d); ok {
					z.n, z.d = dd, nn
					z.isWide = false
					return
				}
			}
		} else if n > 0 {
			z.n, z.d = d, n
			z.isWide = false
			return
		} else {
			panic("simplex: inverse of zero") // contract: pivot coefficients are nonzero
		}
	}
	var bx big.Rat
	z.widen().Inv(x.view(&bx))
	z.finishWide()
}

// floorInt stores floor(x) into dst and returns it.
func (x *rval) floorInt(dst *big.Int) *big.Int {
	if !x.isWide {
		q := x.n / x.d
		if x.n%x.d != 0 && x.n < 0 {
			q-- //lint:nooverflow q > MinInt64/2 here: a nonzero remainder implies d >= 2
		}
		return dst.SetInt64(q)
	}
	var m big.Int
	dst.QuoRem(x.wide.Num(), x.wide.Denom(), &m)
	if m.Sign() < 0 {
		dst.Sub(dst, oneBigInt)
	}
	return dst
}

var oneBigInt = big.NewInt(1)

// intInto stores the value into dst (the value must be an integer).
func (x *rval) intInto(dst *big.Int) *big.Int {
	if !x.isWide {
		return dst.SetInt64(x.n)
	}
	return dst.Set(x.wide.Num())
}

// --- the public Num wrapper -----------------------------------------

// Num is an immutable rational for the solver's public bound API. It
// lets callers (the lia layer, branch and bound) precompute bounds once
// and assert them repeatedly without allocating. Construct Nums with
// the NumFrom* functions: the zero Num is invalid (rval's denominator
// invariant requires d >= 1), not zero.
type Num struct{ rv rval }

// NumFromInt64 returns x as a Num.
func NumFromInt64(x int64) Num {
	var n Num
	n.rv.setInt64(x)
	return n
}

// NumFromBigInt returns x as a Num (copying).
func NumFromBigInt(x *big.Int) Num {
	var n Num
	n.rv.setBigInt(x)
	return n
}

// NumFromRat returns x as a Num (copying).
func NumFromRat(x *big.Rat) Num {
	var n Num
	n.rv.setRat(x)
	return n
}

// AddInt64 returns n + d as a new Num; n is unchanged.
func (n Num) AddInt64(d int64) Num {
	var out Num
	out.rv.set(&n.rv)
	var dd rval
	dd.setInt64(d)
	out.rv.add(&dd)
	return out
}

// Rat returns the value as a freshly allocated big.Rat.
func (n Num) Rat() *big.Rat { return n.rv.rat() }

// Cmp compares n with m.
func (n Num) Cmp(m Num) int { return n.rv.cmp(&m.rv) }
