// Package simplex implements a general simplex procedure for
// conjunctions of linear-arithmetic bounds in the style of Dutertre and
// de Moura ("A fast linear-arithmetic solver for DPLL(T)", CAV 2006),
// with exact rational arithmetic, pushed/popped bound frames, Farkas-style
// conflict explanations, and a branch-and-bound layer for integrality.
//
// It is the theory backend of the DPLL(T) loop in package lia.
//
// Arithmetic runs on the rval machine-word fast path (rat64.go):
// coefficients, assignment values, and bounds are int64 num/den pairs
// that promote to exact big.Rat on overflow. Rows are sorted sparse
// parallel slices (idx/coef) so pivots walk contiguous memory, and
// per-solver scratch buffers keep the pivot loop allocation-free.
package simplex

import (
	"math/big"
	"sort"

	"repro/internal/engine"
)

// NoTag marks bounds that do not correspond to an asserted atom (for
// example branch-and-bound split bounds); conflicts involving such a
// bound cannot be explained in terms of input atoms alone.
const NoTag = -1

type bound struct {
	val rval
	tag int
	set bool
}

// srow is one tableau row: a sparse linear form over nonbasic
// variables, as parallel slices sorted by variable id. Coefficient
// slots are owned by the row (see the rval copy discipline).
type srow struct {
	idx  []int32
	coef []rval
}

// find returns the position of v in r.idx, or -1. Rows are short, so a
// linear scan with early exit beats binary search in practice and is
// friendlier to the prefetcher.
func (r *srow) find(v int32) int {
	for p, k := range r.idx {
		if k >= v {
			if k == v {
				return p
			}
			return -1
		}
	}
	return -1
}

// Solver holds a simplex tableau over variables identified by small
// integers. Create one with New, define slack variables with
// DefineSlack, assert bounds, and call Check.
type Solver struct {
	n     int // number of variables
	beta  []rval
	lower []bound
	upper []bound

	rows []*srow   // basic var -> its row (nil when nonbasic)
	cols [][]int32 // nonbasic var -> unsorted basic rows containing it

	// defs keeps each slack's original definition over problem
	// variables so the tableau can be refactorized (rebuilt) when
	// pivoting fill-in makes the rows too dense.
	defs         map[int]map[int]*big.Int
	baseTerms    int
	lastRefactor int64

	// Scratch buffers for the pivot substitution merge and the column
	// snapshot, reused across pivots so the hot loop does not allocate.
	mergeIdx   []int32
	mergeCoef  []rval
	colScratch []int32

	// Bound changes are undone through a trail so Push is O(1).
	undo   []boundChange
	frames []int // marks into undo

	// dirty records that some basic variable may violate a bound, so
	// Check must actually pivot. Asserting a bound on a nonbasic
	// variable keeps the tableau feasible (the assignment is updated in
	// place), which makes most Check calls O(1).
	dirty bool

	// Pivots counts pivot operations, for diagnostics and budgets.
	Pivots int64
	// Refactors counts tableau refactorizations, for diagnostics.
	Refactors int64
	// PivotBudget, when positive, bounds the pivots per Check call.
	PivotBudget int64
	// Ctx, when non-nil, aborts Check (with a budget conflict) once the
	// context stops; polled once per pivot iteration.
	Ctx *engine.Ctx
}

type boundChange struct {
	v     int
	upper bool
	old   bound
}

// New returns a solver with n problem variables (ids 0..n-1).
func New(n int) *Solver {
	s := &Solver{
		n:    n,
		defs: make(map[int]map[int]*big.Int),
	}
	s.beta = make([]rval, n)
	for i := range s.beta {
		s.beta[i].d = 1 // value 0; the zero rval is not a valid rational
	}
	s.lower = make([]bound, n)
	s.upper = make([]bound, n)
	s.rows = make([]*srow, n)
	s.cols = make([][]int32, n)
	return s
}

// NumVars reports the number of variables including slack variables.
func (s *Solver) NumVars() int { return s.n }

// EnsureVars grows the variable space so ids 0..n-1 are valid. New
// variables are unbounded with value 0. Intended for callers that add
// constraints incrementally (lazy lemmas).
func (s *Solver) EnsureVars(n int) {
	if n <= s.n {
		return
	}
	s.Ctx.Charge("simplex tableau", int64(n-s.n))
	for i := s.n; i < n; i++ {
		s.beta = append(s.beta, rval{d: 1})
		s.lower = append(s.lower, bound{})
		s.upper = append(s.upper, bound{})
		s.rows = append(s.rows, nil)
		s.cols = append(s.cols, nil)
	}
	s.n = n
}

// DefineSlack introduces a new variable constrained to equal
// sum(def[v] * v) and returns its id. The new variable starts basic.
// The definition must be over problem variables (not other slacks) so
// refactorization can rebuild the tableau from definitions.
func (s *Solver) DefineSlack(def map[int]*big.Int) int {
	id := s.n
	s.n++
	s.lower = append(s.lower, bound{})
	s.upper = append(s.upper, bound{})
	stored := make(map[int]*big.Int, len(def))
	for v, c := range def {
		if _, isSlack := s.defs[v]; isSlack {
			// contract: lia defines slacks over problem variables only.
			panic("simplex: slack definition may not reference another slack")
		}
		stored[v] = new(big.Int).Set(c)
	}
	s.defs[id] = stored

	// Accumulate the row over nonbasic variables, substituting the rows
	// of definition variables that are currently basic. Exact arithmetic
	// makes the accumulation order-independent.
	acc := make(map[int]*rval)
	accAdd := func(w int, c *rval) {
		if cur, ok := acc[w]; ok {
			cur.add(c)
		} else {
			nv := new(rval)
			nv.set(c)
			acc[w] = nv
		}
	}
	var rc, t rval
	for v, c := range def {
		if c.Sign() == 0 {
			continue
		}
		rc.setBigInt(c)
		if br := s.rows[v]; br != nil {
			for p, k := range br.idx {
				t.mul(&rc, &br.coef[p])
				accAdd(int(k), &t)
			}
		} else {
			accAdd(v, &rc)
		}
	}
	keys := make([]int, 0, len(acc))
	for w := range acc {
		keys = append(keys, w)
	}
	sort.Ints(keys)
	row := &srow{
		idx:  make([]int32, 0, len(acc)),
		coef: make([]rval, 0, len(acc)),
	}
	var val rval
	val.setInt64(0)
	for _, w := range keys {
		cw := acc[w]
		if cw.sign() == 0 {
			continue
		}
		row.idx = append(row.idx, int32(w))
		row.coef = append(row.coef, *cw) // acc owns cw; ownership moves to the row
		val.addMul(cw, &s.beta[w])
		s.colAdd(w, id)
	}
	s.beta = append(s.beta, val) // val is dead after this; the slot takes ownership
	s.rows = append(s.rows, row)
	s.cols = append(s.cols, nil)
	s.baseTerms += len(stored)
	// Bill the new row against the resource budget: tableau growth is a
	// known memory blow-up site. A trip stops the Ctx; the next Check
	// observes it and returns a budget conflict, so the caller unwinds
	// with UNKNOWN rather than growing the tableau further.
	s.Ctx.Charge("simplex tableau", int64(len(row.idx)+len(stored)))
	return id
}

// refactorize rebuilds the tableau from the slack definitions, undoing
// accumulated pivot fill-in: every slack becomes basic again, every
// problem variable nonbasic. Problem variables whose current value
// drifted outside their bounds (they were basic) are clamped back,
// propagating through the fresh rows.
func (s *Solver) refactorize() {
	for r := range s.rows {
		s.rows[r] = nil
	}
	for v := range s.cols {
		s.cols[v] = s.cols[v][:0]
	}
	ids := make([]int, 0, len(s.defs))
	for id := range s.defs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var rc rval
	for _, id := range ids {
		def := s.defs[id]
		vs := make([]int, 0, len(def))
		for v := range def {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		row := &srow{
			idx:  make([]int32, 0, len(def)),
			coef: make([]rval, 0, len(def)),
		}
		var val rval
		val.setInt64(0)
		for _, v := range vs {
			rc.setBigInt(def[v])
			row.idx = append(row.idx, int32(v))
			row.coef = append(row.coef, rval{})
			row.coef[len(row.coef)-1].set(&rc)
			s.colAdd(v, id)
			val.addMul(&rc, &s.beta[v])
		}
		s.rows[id] = row
		s.beta[id].set(&val)
	}
	// Restore the nonbasic-within-bounds invariant for problem vars.
	for v := 0; v < s.n; v++ {
		if _, isSlack := s.defs[v]; isSlack {
			continue
		}
		if s.lower[v].set && s.beta[v].cmp(&s.lower[v].val) < 0 {
			s.update(v, &s.lower[v].val)
		} else if s.upper[v].set && s.beta[v].cmp(&s.upper[v].val) > 0 {
			s.update(v, &s.upper[v].val)
		}
	}
	s.dirty = true
}

// maybeRefactorize rebuilds the tableau when fill-in has grown it far
// beyond its definition size, at most once per pivot interval (frequent
// rebuilds would discard useful basis progress).
func (s *Solver) maybeRefactorize() {
	if s.Pivots-s.lastRefactor < 2000 { //lint:nooverflow Pivots is a monotone counter far below int64 range
		return
	}
	total := 0
	for _, row := range s.rows {
		if row != nil {
			total += len(row.idx)
		}
	}
	if total > 6*s.baseTerms+1024 {
		s.refactorize()
		s.Refactors++ //lint:nooverflow diagnostic counter, bounded by Pivots/2000
		s.lastRefactor = s.Pivots
	}
}

func (s *Solver) colAdd(v, row int) {
	s.cols[v] = append(s.cols[v], int32(row))
}

func (s *Solver) colDel(v, row int) {
	c := s.cols[v]
	for p, r := range c {
		if r == int32(row) {
			c[p] = c[len(c)-1]
			s.cols[v] = c[:len(c)-1]
			return
		}
	}
}

// Push saves the current bound state so a later Pop can restore it.
func (s *Solver) Push() {
	s.frames = append(s.frames, len(s.undo))
}

// Pop restores the bounds saved by the matching Push by replaying the
// undo trail. The tableau and assignment are unchanged (rows are
// equivalences and the assignment satisfied the tighter bounds, hence
// also the restored looser ones when the frame was feasible).
func (s *Solver) Pop() {
	mark := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	for i := len(s.undo) - 1; i >= mark; i-- {
		c := s.undo[i]
		if c.upper {
			s.upper[c.v] = c.old
		} else {
			s.lower[c.v] = c.old
		}
	}
	s.undo = s.undo[:mark]
}

// Conflict is a set of atom tags whose conjunction is infeasible. If
// Tainted is true the conflict involves an internal bound (NoTag) and
// the tags alone do not explain the infeasibility.
type Conflict struct {
	Tags    []int
	Tainted bool
	// Budget is true when the conflict is not a real infeasibility but
	// an exhausted pivot budget; the caller must report unknown.
	Budget bool
}

// AssertUpper adds the bound v <= c (tagged with the originating atom).
// It returns a non-nil conflict if the bound contradicts the current
// lower bound of v.
func (s *Solver) AssertUpper(v int, c *big.Rat, tag int) *Conflict {
	var cv rval
	cv.setRat(c)
	return s.assertUpper(v, &cv, tag)
}

// AssertUpperNum is AssertUpper taking a precomputed Num, so hot
// callers (branch and bound, the lia atom dispatcher) assert without
// converting through big.Rat.
func (s *Solver) AssertUpperNum(v int, c Num, tag int) *Conflict {
	return s.assertUpper(v, &c.rv, tag)
}

func (s *Solver) assertUpper(v int, c *rval, tag int) *Conflict {
	if s.lower[v].set && s.lower[v].val.cmp(c) > 0 {
		nb := bound{tag: tag, set: true}
		nb.val.set(c)
		return s.mkConflict([]bound{s.lower[v], nb})
	}
	if s.upper[v].set && s.upper[v].val.cmp(c) <= 0 {
		return nil // existing bound at least as tight
	}
	if len(s.frames) > 0 {
		s.undo = append(s.undo, boundChange{v: v, upper: true, old: s.upper[v]})
	}
	nb := bound{tag: tag, set: true}
	nb.val.set(c)
	s.upper[v] = nb
	if s.rows[v] != nil {
		if s.beta[v].cmp(c) > 0 {
			s.dirty = true
		}
	} else if s.beta[v].cmp(c) > 0 {
		s.update(v, c)
	}
	return nil
}

// AssertLower adds the bound v >= c.
func (s *Solver) AssertLower(v int, c *big.Rat, tag int) *Conflict {
	var cv rval
	cv.setRat(c)
	return s.assertLower(v, &cv, tag)
}

// AssertLowerNum is AssertLower taking a precomputed Num.
func (s *Solver) AssertLowerNum(v int, c Num, tag int) *Conflict {
	return s.assertLower(v, &c.rv, tag)
}

func (s *Solver) assertLower(v int, c *rval, tag int) *Conflict {
	if s.upper[v].set && s.upper[v].val.cmp(c) < 0 {
		nb := bound{tag: tag, set: true}
		nb.val.set(c)
		return s.mkConflict([]bound{s.upper[v], nb})
	}
	if s.lower[v].set && s.lower[v].val.cmp(c) >= 0 {
		return nil
	}
	if len(s.frames) > 0 {
		s.undo = append(s.undo, boundChange{v: v, upper: false, old: s.lower[v]})
	}
	nb := bound{tag: tag, set: true}
	nb.val.set(c)
	s.lower[v] = nb
	if s.rows[v] != nil {
		if s.beta[v].cmp(c) < 0 {
			s.dirty = true
		}
	} else if s.beta[v].cmp(c) < 0 {
		s.update(v, c)
	}
	return nil
}

func (s *Solver) mkConflict(bs []bound) *Conflict {
	c := &Conflict{}
	seen := make(map[int]bool)
	for _, b := range bs {
		if b.tag == NoTag {
			c.Tainted = true
			continue
		}
		if !seen[b.tag] {
			seen[b.tag] = true
			c.Tags = append(c.Tags, b.tag)
		}
	}
	sort.Ints(c.Tags)
	return c
}

// update sets the value of nonbasic variable j to v, adjusting all
// basic variables whose rows mention j. Adjusted basic variables may
// leave their bounds, so the tableau is marked dirty.
func (s *Solver) update(j int, v *rval) {
	var theta rval
	theta.sub(v, &s.beta[j])
	for _, r32 := range s.cols[j] {
		r := int(r32)
		row := s.rows[r]
		p := row.find(int32(j))
		if p < 0 {
			continue
		}
		s.beta[r].addMul(&row.coef[p], &theta)
		s.dirty = true
	}
	s.beta[j].set(v)
}

// pivotAndUpdate makes nonbasic j basic in place of basic i, setting
// x_i's value to v (one of its violated bounds).
func (s *Solver) pivotAndUpdate(i, j int, v *rval) {
	s.Pivots++ //lint:nooverflow monotone diagnostic counter; budgets trip long before int64 wraps
	rowI := s.rows[i]
	pj := rowI.find(int32(j))
	var theta rval
	theta.sub(v, &s.beta[i])
	theta.div(&theta, &rowI.coef[pj])
	s.beta[i].set(v)
	s.beta[j].add(&theta)
	for _, r32 := range s.cols[j] {
		r := int(r32)
		if r == i {
			continue
		}
		row := s.rows[r]
		p := row.find(int32(j))
		if p < 0 {
			continue
		}
		s.beta[r].addMul(&row.coef[p], &theta)
	}
	s.pivot(i, j)
}

// pivot swaps basic i with nonbasic j.
func (s *Solver) pivot(i, j int) {
	row := s.rows[i]
	pj := row.find(int32(j))
	// Solve for x_j: x_j = (1/aij) x_i - sum_{k != j} (a_ik/aij) x_k.
	// The transform happens in place: row becomes x_j's row.
	var inv rval
	inv.inv(&row.coef[pj])
	for p := range row.coef {
		if p == pj {
			continue
		}
		row.coef[p].mulNeg(&row.coef[p], &inv)
		k := int(row.idx[p])
		s.colDel(k, i)
		s.colAdd(k, j)
	}
	// Snapshot j's column before clearing it: these are the rows that
	// need x_j substituted away.
	s.colScratch = append(s.colScratch[:0], s.cols[j]...)
	s.cols[j] = s.cols[j][:0]
	// Rotate the j slot to i's sorted position and store 1/aij there.
	// Vacated slots are zeroed so no two slots share a wide pointer.
	ii := int32(i)
	q := pj
	if ii < row.idx[pj] {
		//lint:nopoll bounded: q strictly decreases toward 0
		for q > 0 && row.idx[q-1] > ii {
			q--
		}
		for t := pj; t > q; t-- {
			row.idx[t] = row.idx[t-1]
			row.coef[t] = row.coef[t-1]
			row.coef[t-1] = rval{}
		}
	} else {
		//lint:nopoll bounded: q strictly increases toward len(row.idx)
		for q+1 < len(row.idx) && row.idx[q+1] < ii {
			q++
		}
		for t := pj; t < q; t++ {
			row.idx[t] = row.idx[t+1]
			row.coef[t] = row.coef[t+1]
			row.coef[t+1] = rval{}
		}
	}
	row.idx[q] = ii
	row.coef[q] = inv // inv is dead after this; the slot takes ownership
	s.colAdd(i, j)
	s.rows[j] = row
	s.rows[i] = nil
	// Pivot fill-in is the other way the tableau grows; bill the cells
	// so dense instances trip the budget instead of exhausting memory.
	s.Ctx.Charge("simplex tableau", int64(len(row.idx)))

	// Substitute x_j's definition into every other row containing j.
	for _, r32 := range s.colScratch {
		r := int(r32)
		if r == i {
			continue
		}
		rr := s.rows[r]
		prj := rr.find(int32(j))
		if prj < 0 {
			continue
		}
		s.mergeScaled(r, rr, prj, row)
	}
}

// mergeScaled rewrites row rr (basic in r) as rr minus its x_j term
// plus f*src, where f is rr's coefficient at position pj (the x_j term
// being eliminated) and src is x_j's new row. It merges the two sorted
// sparse forms into the solver scratch, swaps the backing arrays, and
// maintains the column index for r. src never contains x_j.
func (s *Solver) mergeScaled(r int, rr *srow, pj int, src *srow) {
	f := &rr.coef[pj] // rr's arrays are read-only until the swap below
	mi := s.mergeIdx[:0]
	mc := s.mergeCoef[:0]
	pa, pb := 0, 0
	//lint:nopoll bounded: two-pointer merge, pa+pb strictly increases every iteration
	for pa < len(rr.idx) || pb < len(src.idx) {
		if pa == pj {
			pa++
			continue
		}
		aLeft := pa < len(rr.idx)
		bLeft := pb < len(src.idx)
		switch {
		case aLeft && (!bLeft || rr.idx[pa] < src.idx[pb]):
			mi = append(mi, rr.idx[pa])
			mc = append(mc, rval{})
			mc[len(mc)-1].set(&rr.coef[pa])
			pa++
		case bLeft && (!aLeft || src.idx[pb] < rr.idx[pa]):
			// A variable new to this row; f and src coefficients are
			// nonzero, so the product cannot cancel.
			mi = append(mi, src.idx[pb])
			mc = append(mc, rval{})
			mc[len(mc)-1].mul(f, &src.coef[pb])
			s.colAdd(int(src.idx[pb]), r)
			pb++
		default: // same variable in both
			mc = append(mc, rval{})
			d := &mc[len(mc)-1]
			d.set(&rr.coef[pa])
			d.addMul(f, &src.coef[pb])
			if d.sign() == 0 {
				mc = mc[:len(mc)-1]
				s.colDel(int(rr.idx[pa]), r)
			} else {
				mi = append(mi, rr.idx[pa])
			}
			pa++
			pb++
		}
	}
	// Swap: the merged form becomes the row; the row's old arrays become
	// the next merge's scratch. Every merged slot was written via
	// set/mul (deep copies), so no slot shares a wide with the old row.
	oldIdx, oldCoef := rr.idx, rr.coef
	rr.idx, rr.coef = mi, mc
	s.mergeIdx, s.mergeCoef = oldIdx[:0], oldCoef[:0]
}

// Check restores feasibility of the current bounds. It returns nil on
// success, or a conflict explaining infeasibility. On success every
// variable's value (Value) respects its bounds.
func (s *Solver) Check() *Conflict {
	if !s.dirty {
		return nil
	}
	s.maybeRefactorize()
	pivotsAtStart := s.Pivots
	// Heuristic rule (largest violation) first; pure Bland's rule after
	// a while to guarantee termination despite potential cycling.
	blandAfter := pivotsAtStart + 500 //lint:nooverflow monotone counter far below int64 range
	var viol, worst rval
	for {
		if s.PivotBudget > 0 && s.Pivots-pivotsAtStart > s.PivotBudget { //lint:nooverflow monotone counter difference
			return &Conflict{Tainted: true, Budget: true}
		}
		if s.Ctx.Poll() {
			return &Conflict{Tainted: true, Budget: true}
		}
		bland := s.Pivots >= blandAfter
		i := -1
		var needLower, haveWorst bool
		// The scan runs in ascending variable order, so on ties the
		// smallest basic variable wins — same tie-break as before, now
		// implicit in the iteration order.
		for r := 0; r < s.n; r++ {
			if s.rows[r] == nil {
				continue
			}
			var below bool
			if s.lower[r].set && s.beta[r].cmp(&s.lower[r].val) < 0 {
				below = true
			} else if !(s.upper[r].set && s.beta[r].cmp(&s.upper[r].val) > 0) {
				continue
			}
			if bland {
				i, needLower = r, below
				break // ascending scan: first violated is the smallest
			}
			if below {
				viol.sub(&s.lower[r].val, &s.beta[r])
			} else {
				viol.sub(&s.beta[r], &s.upper[r].val)
			}
			if !haveWorst || viol.cmp(&worst) > 0 {
				worst.set(&viol)
				haveWorst = true
				i, needLower = r, below
			}
		}
		if i == -1 {
			s.dirty = false
			return nil
		}
		row := s.rows[i]
		// Eligible nonbasic selection: under Bland's rule the smallest
		// index (termination guarantee); otherwise the one appearing in
		// the fewest rows (Markowitz-style, minimizes pivot fill-in).
		// Rows are sorted by variable id, so the ascending scan gives
		// smallest-index tie-breaks for free.
		j := -1
		jCost := 0
		for p, k32 := range row.idx {
			k := int(k32)
			sg := row.coef[p].sign()
			var ok bool
			if needLower {
				// x_i must increase.
				ok = sg > 0 && (!s.upper[k].set || s.beta[k].cmp(&s.upper[k].val) < 0) ||
					sg < 0 && (!s.lower[k].set || s.beta[k].cmp(&s.lower[k].val) > 0)
			} else {
				// x_i must decrease.
				ok = sg < 0 && (!s.upper[k].set || s.beta[k].cmp(&s.upper[k].val) < 0) ||
					sg > 0 && (!s.lower[k].set || s.beta[k].cmp(&s.lower[k].val) > 0)
			}
			if !ok {
				continue
			}
			if bland {
				j = k
				break // first eligible in ascending order is the smallest
			}
			cost := len(s.cols[k])
			if j == -1 || cost < jCost {
				j, jCost = k, cost
			}
		}
		if j == -1 {
			// Infeasible: explain with the bound of i and the blocking
			// bounds of all row variables, in ascending variable order.
			bs := make([]bound, 0, len(row.idx)+1)
			if needLower {
				bs = append(bs, s.lower[i])
			} else {
				bs = append(bs, s.upper[i])
			}
			for p, k32 := range row.idx {
				k := int(k32)
				pos := row.coef[p].sign() > 0
				if needLower == pos {
					bs = append(bs, s.upper[k])
				} else {
					bs = append(bs, s.lower[k])
				}
			}
			return s.mkConflict(bs)
		}
		if needLower {
			s.pivotAndUpdate(i, j, &s.lower[i].val)
		} else {
			s.pivotAndUpdate(i, j, &s.upper[i].val)
		}
	}
}

// Value returns the current value of variable v as a fresh big.Rat.
// Valid after a successful Check.
func (s *Solver) Value(v int) *big.Rat {
	return s.beta[v].rat()
}

// ValueIsInt reports whether variable v currently has an integer value,
// without materializing a big.Rat.
func (s *Solver) ValueIsInt(v int) bool {
	return s.beta[v].isInt()
}

// ValueFloor returns floor(value of v) as a Num, allocation-free on the
// fast path.
func (s *Solver) ValueFloor(v int) Num {
	var n Num
	x := &s.beta[v]
	if !x.isWide {
		q := x.n / x.d
		if x.n%x.d != 0 && x.n < 0 {
			q-- //lint:nooverflow a nonzero remainder implies d >= 2, so |q| < 2^62
		}
		n.rv.setInt64(q)
		return n
	}
	var f big.Int
	x.floorInt(&f)
	n.rv.setBigInt(&f)
	return n
}

// ValueInt returns the current (integer) value of v as a fresh big.Int.
// The caller must know the value is integral (ValueIsInt).
func (s *Solver) ValueInt(v int) *big.Int {
	return s.beta[v].intInto(new(big.Int))
}

// IsBasic reports whether v is currently basic (useful in tests).
func (s *Solver) IsBasic(v int) bool {
	return s.rows[v] != nil
}
