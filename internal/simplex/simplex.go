// Package simplex implements a general simplex procedure for
// conjunctions of linear-arithmetic bounds in the style of Dutertre and
// de Moura ("A fast linear-arithmetic solver for DPLL(T)", CAV 2006),
// with exact rational arithmetic, pushed/popped bound frames, Farkas-style
// conflict explanations, and a branch-and-bound layer for integrality.
//
// It is the theory backend of the DPLL(T) loop in package lia.
package simplex

import (
	"math/big"
	"sort"

	"repro/internal/engine"
)

// NoTag marks bounds that do not correspond to an asserted atom (for
// example branch-and-bound split bounds); conflicts involving such a
// bound cannot be explained in terms of input atoms alone.
const NoTag = -1

type bound struct {
	val *big.Rat
	tag int
	set bool
}

// Solver holds a simplex tableau over variables identified by small
// integers. Create one with New, define slack variables with
// DefineSlack, assert bounds, and call Check.
type Solver struct {
	n     int // number of variables
	beta  []*big.Rat
	lower []bound
	upper []bound

	rows map[int]map[int]*big.Rat // basic var -> coefficient map over nonbasic vars
	cols map[int]map[int]bool     // nonbasic var -> set of basic rows containing it

	// defs keeps each slack's original definition over problem
	// variables so the tableau can be refactorized (rebuilt) when
	// pivoting fill-in makes the rows too dense.
	defs         map[int]map[int]*big.Int
	baseTerms    int
	lastRefactor int64

	// Bound changes are undone through a trail so Push is O(1).
	undo   []boundChange
	frames []int // marks into undo

	// dirty records that some basic variable may violate a bound, so
	// Check must actually pivot. Asserting a bound on a nonbasic
	// variable keeps the tableau feasible (the assignment is updated in
	// place), which makes most Check calls O(1).
	dirty bool

	// Pivots counts pivot operations, for diagnostics and budgets.
	Pivots int64
	// Refactors counts tableau refactorizations, for diagnostics.
	Refactors int64
	// PivotBudget, when positive, bounds the pivots per Check call.
	PivotBudget int64
	// Ctx, when non-nil, aborts Check (with a budget conflict) once the
	// context stops; polled once per pivot iteration.
	Ctx *engine.Ctx
}

type boundChange struct {
	v     int
	upper bool
	old   bound
}

// New returns a solver with n problem variables (ids 0..n-1).
func New(n int) *Solver {
	s := &Solver{
		n:    n,
		rows: make(map[int]map[int]*big.Rat),
		cols: make(map[int]map[int]bool),
		defs: make(map[int]map[int]*big.Int),
	}
	s.beta = make([]*big.Rat, n)
	s.lower = make([]bound, n)
	s.upper = make([]bound, n)
	for i := 0; i < n; i++ {
		s.beta[i] = new(big.Rat)
	}
	return s
}

// NumVars reports the number of variables including slack variables.
func (s *Solver) NumVars() int { return s.n }

// EnsureVars grows the variable space so ids 0..n-1 are valid. New
// variables are unbounded with value 0. Intended for callers that add
// constraints incrementally (lazy lemmas).
func (s *Solver) EnsureVars(n int) {
	if n <= s.n {
		return
	}
	s.Ctx.Charge("simplex tableau", int64(n-s.n))
	for i := s.n; i < n; i++ {
		s.beta = append(s.beta, new(big.Rat))
		s.lower = append(s.lower, bound{})
		s.upper = append(s.upper, bound{})
	}
	s.n = n
}

// DefineSlack introduces a new variable constrained to equal
// sum(def[v] * v) and returns its id. The new variable starts basic.
// The definition must be over problem variables (not other slacks) so
// refactorization can rebuild the tableau from definitions.
func (s *Solver) DefineSlack(def map[int]*big.Int) int {
	id := s.n
	s.n++
	s.lower = append(s.lower, bound{})
	s.upper = append(s.upper, bound{})
	stored := make(map[int]*big.Int, len(def))
	for v, c := range def {
		if _, isSlack := s.defs[v]; isSlack {
			// contract: lia defines slacks over problem variables only.
			panic("simplex: slack definition may not reference another slack")
		}
		stored[v] = new(big.Int).Set(c)
	}
	s.defs[id] = stored

	row := make(map[int]*big.Rat, len(def))
	val := new(big.Rat)
	tmp := new(big.Rat)
	for v, c := range def {
		if c.Sign() == 0 {
			continue
		}
		rc := new(big.Rat).SetInt(c)
		// If v is itself basic, substitute its row.
		if r, ok := s.rows[v]; ok {
			for w, cw := range r {
				addInto(row, w, tmp.Mul(rc, cw))
			}
		} else {
			addInto(row, v, rc)
		}
	}
	for w, cw := range row {
		if cw.Sign() == 0 {
			delete(row, w)
			continue
		}
		val.Add(val, tmp.Mul(cw, s.beta[w]))
		s.colAdd(w, id)
	}
	s.beta = append(s.beta, new(big.Rat).Set(val))
	s.rows[id] = row
	s.baseTerms += len(stored)
	// Bill the new row against the resource budget: tableau growth is a
	// known memory blow-up site. A trip stops the Ctx; the next Check
	// observes it and returns a budget conflict, so the caller unwinds
	// with UNKNOWN rather than growing the tableau further.
	s.Ctx.Charge("simplex tableau", int64(len(row)+len(stored)))
	return id
}

// refactorize rebuilds the tableau from the slack definitions, undoing
// accumulated pivot fill-in: every slack becomes basic again, every
// problem variable nonbasic. Problem variables whose current value
// drifted outside their bounds (they were basic) are clamped back,
// propagating through the fresh rows.
func (s *Solver) refactorize() {
	s.rows = make(map[int]map[int]*big.Rat, len(s.defs))
	s.cols = make(map[int]map[int]bool)
	tmp := new(big.Rat)
	for id, def := range s.defs {
		row := make(map[int]*big.Rat, len(def))
		val := new(big.Rat)
		for v, c := range def {
			rc := new(big.Rat).SetInt(c)
			row[v] = rc
			s.colAdd(v, id)
			val.Add(val, tmp.Mul(rc, s.beta[v]))
		}
		s.rows[id] = row
		s.beta[id].Set(val)
	}
	// Restore the nonbasic-within-bounds invariant for problem vars.
	for v := 0; v < s.n; v++ {
		if _, isSlack := s.defs[v]; isSlack {
			continue
		}
		if s.lower[v].set && s.beta[v].Cmp(s.lower[v].val) < 0 {
			s.update(v, s.lower[v].val)
		} else if s.upper[v].set && s.beta[v].Cmp(s.upper[v].val) > 0 {
			s.update(v, s.upper[v].val)
		}
	}
	s.dirty = true
}

// maybeRefactorize rebuilds the tableau when fill-in has grown it far
// beyond its definition size, at most once per pivot interval (frequent
// rebuilds would discard useful basis progress).
func (s *Solver) maybeRefactorize() {
	if s.Pivots-s.lastRefactor < 2000 {
		return
	}
	total := 0
	for _, row := range s.rows {
		total += len(row)
	}
	if total > 6*s.baseTerms+1024 {
		s.refactorize()
		s.Refactors++
		s.lastRefactor = s.Pivots
	}
}

func addInto(row map[int]*big.Rat, v int, c *big.Rat) {
	if cur, ok := row[v]; ok {
		cur.Add(cur, c)
		if cur.Sign() == 0 {
			delete(row, v)
		}
	} else {
		row[v] = new(big.Rat).Set(c)
	}
}

func (s *Solver) colAdd(v, row int) {
	m, ok := s.cols[v]
	if !ok {
		m = make(map[int]bool)
		s.cols[v] = m
	}
	m[row] = true
}

func (s *Solver) colDel(v, row int) {
	if m, ok := s.cols[v]; ok {
		delete(m, row)
		if len(m) == 0 {
			delete(s.cols, v)
		}
	}
}

// Push saves the current bound state so a later Pop can restore it.
func (s *Solver) Push() {
	s.frames = append(s.frames, len(s.undo))
}

// Pop restores the bounds saved by the matching Push by replaying the
// undo trail. The tableau and assignment are unchanged (rows are
// equivalences and the assignment satisfied the tighter bounds, hence
// also the restored looser ones when the frame was feasible).
func (s *Solver) Pop() {
	mark := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	for i := len(s.undo) - 1; i >= mark; i-- {
		c := s.undo[i]
		if c.upper {
			s.upper[c.v] = c.old
		} else {
			s.lower[c.v] = c.old
		}
	}
	s.undo = s.undo[:mark]
}

// Conflict is a set of atom tags whose conjunction is infeasible. If
// Tainted is true the conflict involves an internal bound (NoTag) and
// the tags alone do not explain the infeasibility.
type Conflict struct {
	Tags    []int
	Tainted bool
	// Budget is true when the conflict is not a real infeasibility but
	// an exhausted pivot budget; the caller must report unknown.
	Budget bool
}

// AssertUpper adds the bound v <= c (tagged with the originating atom).
// It returns a non-nil conflict if the bound contradicts the current
// lower bound of v.
func (s *Solver) AssertUpper(v int, c *big.Rat, tag int) *Conflict {
	if s.lower[v].set && s.lower[v].val.Cmp(c) > 0 {
		return s.mkConflict([]bound{s.lower[v], {val: c, tag: tag, set: true}})
	}
	if s.upper[v].set && s.upper[v].val.Cmp(c) <= 0 {
		return nil // existing bound at least as tight
	}
	if len(s.frames) > 0 {
		s.undo = append(s.undo, boundChange{v: v, upper: true, old: s.upper[v]})
	}
	s.upper[v] = bound{val: new(big.Rat).Set(c), tag: tag, set: true}
	if _, basic := s.rows[v]; basic {
		if s.beta[v].Cmp(c) > 0 {
			s.dirty = true
		}
	} else if s.beta[v].Cmp(c) > 0 {
		s.update(v, c)
	}
	return nil
}

// AssertLower adds the bound v >= c.
func (s *Solver) AssertLower(v int, c *big.Rat, tag int) *Conflict {
	if s.upper[v].set && s.upper[v].val.Cmp(c) < 0 {
		return s.mkConflict([]bound{s.upper[v], {val: c, tag: tag, set: true}})
	}
	if s.lower[v].set && s.lower[v].val.Cmp(c) >= 0 {
		return nil
	}
	if len(s.frames) > 0 {
		s.undo = append(s.undo, boundChange{v: v, upper: false, old: s.lower[v]})
	}
	s.lower[v] = bound{val: new(big.Rat).Set(c), tag: tag, set: true}
	if _, basic := s.rows[v]; basic {
		if s.beta[v].Cmp(c) < 0 {
			s.dirty = true
		}
	} else if s.beta[v].Cmp(c) < 0 {
		s.update(v, c)
	}
	return nil
}

func (s *Solver) mkConflict(bs []bound) *Conflict {
	c := &Conflict{}
	seen := make(map[int]bool)
	for _, b := range bs {
		if b.tag == NoTag {
			c.Tainted = true
			continue
		}
		if !seen[b.tag] {
			seen[b.tag] = true
			c.Tags = append(c.Tags, b.tag)
		}
	}
	sort.Ints(c.Tags)
	return c
}

// update sets the value of nonbasic variable j to v, adjusting all
// basic variables whose rows mention j. Adjusted basic variables may
// leave their bounds, so the tableau is marked dirty.
func (s *Solver) update(j int, v *big.Rat) {
	theta := new(big.Rat).Sub(v, s.beta[j])
	tmp := new(big.Rat)
	for r := range s.cols[j] {
		a := s.rows[r][j]
		s.beta[r].Add(s.beta[r], tmp.Mul(a, theta))
		s.dirty = true
	}
	s.beta[j].Set(v)
}

// pivotAndUpdate makes nonbasic j basic in place of basic i, setting
// x_i's value to v (one of its violated bounds).
func (s *Solver) pivotAndUpdate(i, j int, v *big.Rat) {
	s.Pivots++
	aij := s.rows[i][j]
	theta := new(big.Rat).Sub(v, s.beta[i])
	theta.Quo(theta, aij)
	s.beta[i].Set(v)
	s.beta[j].Add(s.beta[j], theta)
	tmp := new(big.Rat)
	for r := range s.cols[j] {
		if r == i {
			continue
		}
		a := s.rows[r][j]
		s.beta[r].Add(s.beta[r], tmp.Mul(a, theta))
	}
	s.pivot(i, j)
}

// pivot swaps basic i with nonbasic j.
func (s *Solver) pivot(i, j int) {
	rowI := s.rows[i]
	aij := rowI[j]
	// Solve for x_j: x_j = (1/aij) x_i - sum_{k != j} (a_ik/aij) x_k.
	newRow := make(map[int]*big.Rat, len(rowI))
	inv := new(big.Rat).Inv(aij)
	for k, a := range rowI {
		if k == j {
			continue
		}
		c := new(big.Rat).Mul(a, inv)
		c.Neg(c)
		newRow[k] = c
		s.colDel(k, i)
		s.colAdd(k, j)
	}
	newRow[i] = new(big.Rat).Set(inv)
	s.colAdd(i, j)
	s.colDel(j, i)
	delete(s.rows, i)
	s.rows[j] = newRow
	// Pivot fill-in is the other way the tableau grows; bill the cells
	// so dense instances trip the budget instead of exhausting memory.
	s.Ctx.Charge("simplex tableau", int64(len(newRow)))

	// Substitute x_j's definition into every other row containing j.
	tmp := new(big.Rat)
	for r := range s.cols[j] {
		if r == j {
			continue
		}
		row := s.rows[r]
		arj := row[j]
		if arj == nil {
			continue
		}
		coef := new(big.Rat).Set(arj)
		delete(row, j)
		s.colDel(j, r)
		for k, c := range newRow {
			add := tmp.Mul(coef, c)
			if cur, ok := row[k]; ok {
				cur.Add(cur, add)
				if cur.Sign() == 0 {
					delete(row, k)
					s.colDel(k, r)
				}
			} else {
				row[k] = new(big.Rat).Set(add)
				s.colAdd(k, r)
			}
		}
	}
	// j is no longer in any column index as nonbasic.
	delete(s.cols, j)
	// Rebuild cols entries for j's row members done above via colAdd.
}

// Check restores feasibility of the current bounds. It returns nil on
// success, or a conflict explaining infeasibility. On success every
// variable's value (Value) respects its bounds.
func (s *Solver) Check() *Conflict {
	if !s.dirty {
		return nil
	}
	s.maybeRefactorize()
	pivotsAtStart := s.Pivots
	// Heuristic rule (largest violation) first; pure Bland's rule after
	// a while to guarantee termination despite potential cycling.
	blandAfter := pivotsAtStart + 500
	viol := new(big.Rat)
	for {
		if s.PivotBudget > 0 && s.Pivots-pivotsAtStart > s.PivotBudget {
			return &Conflict{Tainted: true, Budget: true}
		}
		if s.Ctx.Poll() {
			return &Conflict{Tainted: true, Budget: true}
		}
		bland := s.Pivots >= blandAfter
		i := -1
		var needLower bool
		var worst *big.Rat
		for r := range s.rows {
			var below bool
			if s.lower[r].set && s.beta[r].Cmp(s.lower[r].val) < 0 {
				below = true
			} else if !(s.upper[r].set && s.beta[r].Cmp(s.upper[r].val) > 0) {
				continue
			}
			if bland {
				if i == -1 || r < i {
					i, needLower = r, below
				}
				continue
			}
			if below {
				viol.Sub(s.lower[r].val, s.beta[r])
			} else {
				viol.Sub(s.beta[r], s.upper[r].val)
			}
			if worst == nil || viol.Cmp(worst) > 0 || (viol.Cmp(worst) == 0 && r < i) {
				if worst == nil {
					worst = new(big.Rat)
				}
				worst.Set(viol)
				i, needLower = r, below
			}
		}
		if i == -1 {
			s.dirty = false
			return nil
		}
		row := s.rows[i]
		// Eligible nonbasic selection: under Bland's rule the smallest
		// index (termination guarantee); otherwise the one appearing in
		// the fewest rows (Markowitz-style, minimizes pivot fill-in),
		// with index tie-breaks for determinism.
		j := -1
		jCost := 0
		for k, a := range row {
			var ok bool
			if needLower {
				// x_i must increase.
				ok = a.Sign() > 0 && (!s.upper[k].set || s.beta[k].Cmp(s.upper[k].val) < 0) ||
					a.Sign() < 0 && (!s.lower[k].set || s.beta[k].Cmp(s.lower[k].val) > 0)
			} else {
				// x_i must decrease.
				ok = a.Sign() < 0 && (!s.upper[k].set || s.beta[k].Cmp(s.upper[k].val) < 0) ||
					a.Sign() > 0 && (!s.lower[k].set || s.beta[k].Cmp(s.lower[k].val) > 0)
			}
			if !ok {
				continue
			}
			if bland {
				if j == -1 || k < j {
					j = k
				}
				continue
			}
			cost := len(s.cols[k])
			if j == -1 || cost < jCost || (cost == jCost && k < j) {
				j, jCost = k, cost
			}
		}
		if j == -1 {
			// Infeasible: explain with the bound of i and the blocking
			// bounds of all row variables.
			keys := make([]int, 0, len(row))
			for k := range row {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			bs := make([]bound, 0, len(row)+1)
			if needLower {
				bs = append(bs, s.lower[i])
			} else {
				bs = append(bs, s.upper[i])
			}
			for _, k := range keys {
				a := row[k]
				pos := a.Sign() > 0
				if needLower == pos {
					bs = append(bs, s.upper[k])
				} else {
					bs = append(bs, s.lower[k])
				}
			}
			return s.mkConflict(bs)
		}
		if needLower {
			s.pivotAndUpdate(i, j, s.lower[i].val)
		} else {
			s.pivotAndUpdate(i, j, s.upper[i].val)
		}
	}
}

// Value returns the current value of variable v. Valid after a
// successful Check.
func (s *Solver) Value(v int) *big.Rat {
	return s.beta[v]
}

// IsBasic reports whether v is currently basic (useful in tests).
func (s *Solver) IsBasic(v int) bool {
	_, ok := s.rows[v]
	return ok
}
