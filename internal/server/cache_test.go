package server

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(3)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), verdict{status: core.StatusUnsat})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry k0 survived eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
	_, _, evictions := c.counters()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func TestLRUCachePromotion(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", verdict{status: core.StatusUnsat})
	c.put("b", verdict{status: core.StatusUnsat})
	if _, ok := c.get("a"); !ok { // promote a over b
		t.Fatal("a missing")
	}
	c.put("c", verdict{status: core.StatusUnsat}) // must evict b, not a
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used entry b survived")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
}

func TestLRUCacheRemoveAndRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", verdict{status: core.StatusUnsat})
	c.put("a", verdict{status: core.StatusSat}) // refresh, not duplicate
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, ok := c.get("a"); !ok || v.status != core.StatusSat {
		t.Fatalf("get(a) = %+v, %v; want refreshed SAT", v, ok)
	}
	c.remove("a")
	if _, ok := c.get("a"); ok {
		t.Fatal("removed entry still present")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.put("a", verdict{status: core.StatusUnsat})
	if c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}
