package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/smtlib"
)

// qosSat builds a distinct satisfiable problem per k (x must be the
// decimal spelling of k).
func qosSat(k int) string {
	return fmt.Sprintf(`(declare-fun x () String)(declare-fun n () Int)`+
		`(assert (= n (str.to_int x)))(assert (= n %d))(check-sat)`, k)
}

// qosUnsat builds a distinct unsatisfiable problem per k (a literal
// pinned to the wrong length).
func qosUnsat(k int) string {
	return fmt.Sprintf(`(declare-fun c () String)(assert (= c "%d"))`+
		`(assert (= (str.len c) %d))(check-sat)`, k, len(fmt.Sprint(k))+2)
}

// directStatus solves src outside the server, the reference verdict
// every served result is compared against.
func directStatus(t *testing.T, src string) string {
	t.Helper()
	script, err := smtlib.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return core.Solve(script.Problem, core.Options{}).Status.String()
}

// postTenant is postSolve with an X-Tenant header.
func postTenant(t *testing.T, url, tenant string, req solveRequest) (solveResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.NewRequest("POST", url+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(tenantHeader, tenant)
	httpResp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer httpResp.Body.Close()
	var resp solveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, httpResp.StatusCode
}

// postBatch submits a batch for a tenant and decodes the 202.
func postBatch(t *testing.T, url, tenant string, req batchRequest) (batchAccepted, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	hr, err := http.NewRequest("POST", url+"/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(tenantHeader, tenant)
	httpResp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer httpResp.Body.Close()
	var acc batchAccepted
	if httpResp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(httpResp.Body).Decode(&acc); err != nil {
			t.Fatalf("decode 202: %v", err)
		}
	}
	return acc, httpResp.StatusCode
}

// pollJob polls GET /jobs/<id> until no instance is pending (or the
// deadline passes) and returns the final snapshot.
func pollJob(t *testing.T, url, id string, deadline time.Duration) jobResponse {
	t.Helper()
	var jr jobResponse
	stop := time.Now().Add(deadline)
	for {
		httpResp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		if httpResp.StatusCode != http.StatusOK {
			httpResp.Body.Close()
			t.Fatalf("GET /jobs/%s: status %d", id, httpResp.StatusCode)
		}
		err = json.NewDecoder(httpResp.Body).Decode(&jr)
		httpResp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if jr.Pending == 0 {
			return jr
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still has %d pending after %v", id, jr.Pending, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	httpResp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer httpResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// TestServerConcurrentQoSMixedTenantLoad is the mixed-tenant load
// harness the QoS layer is proven by (run under -race; ci.sh does).
// One tenant floods the server with a 500-instance batch while another
// issues interactive solves. The gate:
//
//   - batch floods cannot head-of-line-block interactive work: the
//     interactive p99 queue wait stays under a fixed bound;
//   - no served verdict — batch, interactive, cached, or coalesced —
//     differs from a direct core.Solve of the same problem;
//   - coalesced duplicates produce exactly one underlying solve per
//     distinct problem (the sat/unsat worker counters equal the
//     distinct-problem counts);
//   - a graceful drain loses no job state: after Shutdown, every
//     instance of an in-flight batch is settled (solved or failed with
//     reason "draining", never lost) and no goroutine leaks.
func TestServerConcurrentQoSMixedTenantLoad(t *testing.T) {
	before := fault.Snapshot()
	s := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Distinct problem sets, disjoint between tenants so the expected
	// solve counts are exact.
	const batchDistinct = 40 // 32 sat + 8 unsat
	const batchInstances = 500
	batchSrc := make([]string, batchDistinct)
	for i := range batchSrc {
		if i < 32 {
			batchSrc[i] = qosSat(100 + i)
		} else {
			batchSrc[i] = qosUnsat(200 + i)
		}
	}
	const interDistinct = 10 // 8 sat + 2 unsat
	interSrc := make([]string, interDistinct)
	for i := range interSrc {
		if i < 8 {
			interSrc[i] = qosSat(500 + i)
		} else {
			interSrc[i] = qosUnsat(600 + i)
		}
	}
	want := make(map[string]string) // src -> direct verdict
	wantSat, wantUnsat := 0, 0
	for _, src := range append(append([]string{}, batchSrc...), interSrc...) {
		want[src] = directStatus(t, src)
		switch want[src] {
		case "sat":
			wantSat++
		case "unsat":
			wantUnsat++
		default:
			t.Fatalf("direct solve of %q = %q, want settled", src, want[src])
		}
	}

	// The flood: 500 instances round-robining the 40 distinct problems,
	// so duplicates of each problem keep arriving while its first solve
	// is still in flight (coalescing) or already settled (cache).
	instances := make([]batchInstance, batchInstances)
	for i := range instances {
		instances[i] = batchInstance{SMTLIB: batchSrc[i%batchDistinct]}
	}
	acc, code := postBatch(t, ts.URL, "bulk", batchRequest{Instances: instances})
	if code != http.StatusAccepted {
		t.Fatalf("POST /batch: status %d, want 202", code)
	}
	if acc.Instances != batchInstances || acc.Tenant != "bulk" || acc.JobID == "" {
		t.Fatalf("batch accepted = %+v", acc)
	}

	// The interactive tenant, concurrent with the flood.
	const interClients = 4
	const interRounds = 15
	var mu sync.Mutex
	var waitsMS []float64
	var wg sync.WaitGroup
	errs := make(chan error, interClients*interRounds)
	for c := 0; c < interClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < interRounds; i++ {
				src := interSrc[(c*interRounds+i)%interDistinct]
				resp, code := postTenant(t, ts.URL, "alice", solveRequest{SMTLIB: src})
				if code != http.StatusOK {
					errs <- fmt.Errorf("interactive solve: status %d", code)
					continue
				}
				if resp.Status != want[src] {
					errs <- fmt.Errorf("interactive verdict %q (cached=%v coalesced=%v), direct solve says %q",
						resp.Status, resp.Cached, resp.Coalesced, want[src])
				}
				mu.Lock()
				waitsMS = append(waitsMS, resp.QueuedMS)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Collect the batch and check every instance against the direct
	// verdict.
	jr := pollJob(t, ts.URL, acc.JobID, 60*time.Second)
	if jr.State != "done" || jr.Settled != batchInstances {
		t.Fatalf("job final state %q settled=%d, want done/%d", jr.State, jr.Settled, batchInstances)
	}
	if len(jr.Results) != batchInstances {
		t.Fatalf("job has %d results, want %d", len(jr.Results), batchInstances)
	}
	for i, res := range jr.Results {
		src := batchSrc[i%batchDistinct]
		if res.Status != want[src] {
			t.Fatalf("instance %d verdict %q (cached=%v coalesced=%v reason=%q), direct solve says %q",
				i, res.Status, res.Cached, res.Coalesced, res.Reason, want[src])
		}
		if res.Index != i {
			t.Fatalf("instance %d reports index %d", i, res.Index)
		}
	}

	// Exactly one underlying solve per distinct problem: everything
	// else was served by the cache or coalesced onto the leader.
	st := getStats(t, ts.URL)
	if st.Requests.Sat != int64(wantSat) || st.Requests.Unsat != int64(wantUnsat) {
		t.Errorf("worker solves sat=%d unsat=%d, want exactly %d/%d (one per distinct problem)",
			st.Requests.Sat, st.Requests.Unsat, wantSat, wantUnsat)
	}
	if st.Dedup.Coalesced == 0 {
		t.Error("no request coalesced during a 500-duplicate flood")
	}
	if st.Dedup.Coalesced+st.Requests.CacheServed+st.Requests.Sat+st.Requests.Unsat !=
		int64(batchInstances+interClients*interRounds) {
		t.Errorf("accounting: coalesced=%d + cached=%d + solved=%d does not cover %d requests",
			st.Dedup.Coalesced, st.Requests.CacheServed, st.Requests.Sat+st.Requests.Unsat,
			batchInstances+interClients*interRounds)
	}

	// The QoS bound: interactive p99 queue wait under the flood. The
	// worst admissible case is waiting out the batch solves already on
	// both workers, far under a second for these problems; the bound
	// leaves room for race-detector and scheduler noise.
	sort.Float64s(waitsMS)
	p99 := waitsMS[len(waitsMS)*99/100]
	if p99 > 1500 {
		t.Errorf("interactive p99 queue wait = %.1fms: batch flood head-of-line-blocked interactive work", p99)
	}

	// Graceful drain: flood again with slow instances, then shut down
	// mid-batch. Every instance must settle — solved by an in-flight
	// worker or failed cleanly with reason "draining" — and the workers
	// and watchers must all exit.
	slow, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	slowInstances := make([]batchInstance, 200)
	for i := range slowInstances {
		// NoCache keeps every instance a real queue entry, so the drain
		// has a deep backlog to fail cleanly.
		slowInstances[i] = batchInstance{SMTLIB: slow, NoCache: true}
	}
	acc2, code := postBatch(t, ts.URL, "bulk", batchRequest{Instances: slowInstances, TimeoutMS: 2000})
	if code != http.StatusAccepted {
		t.Fatalf("slow batch: status %d, want 202", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown mid-batch: %v", err)
	}
	jr2 := pollJob(t, ts.URL, acc2.JobID, time.Second) // already settled; one GET
	drained := 0
	for i, res := range jr2.Results {
		switch {
		case res.Status == instancePending:
			t.Fatalf("instance %d lost by the drain (still pending after Shutdown)", i)
		case res.Reason == "draining":
			drained++
		}
	}
	if drained == 0 {
		t.Error("shutdown mid-batch drained no instances (backlog was not deep enough to prove anything)")
	}
	if st := getStats(t, ts.URL); st.Batch.Drained == 0 {
		t.Error("stats report no drained batch instances")
	}

	ts.Close()
	fault.CheckLeaks(t, before)
}

// TestTenantBudgetPoolSharedAcrossRequests pins the admission half of
// multi-tenant QoS: a tenant's solves collectively drain one budget
// pool; once dry, that tenant gets 429 while other tenants are
// untouched.
func TestTenantBudgetPoolSharedAcrossRequests(t *testing.T) {
	s := New(Config{Workers: 2, TenantBudget: 2000})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	slow, err := smtlib.Write(bench.Luhn(6).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	// Drain tenant "greedy" by solving until a request reports the pool
	// trip or admission starts refusing.
	sawDry := false
	for i := 0; i < 50 && !sawDry; i++ {
		resp, code := postTenant(t, ts.URL, "greedy", solveRequest{SMTLIB: slow, NoCache: true})
		switch code {
		case http.StatusOK:
			if resp.Status == "unknown" && resp.Reason != "" {
				sawDry = true // the solve itself tripped the pool
			}
		case http.StatusTooManyRequests:
			sawDry = true
		default:
			t.Fatalf("solve %d: status %d", i, code)
		}
	}
	if !sawDry {
		t.Fatal("tenant pool never ran dry")
	}
	// Now admission itself must refuse the tenant.
	_, code := postTenant(t, ts.URL, "greedy", solveRequest{SMTLIB: slow, NoCache: true})
	if code != http.StatusTooManyRequests {
		t.Fatalf("dry tenant admitted: status %d, want 429", code)
	}
	if _, code := postBatch(t, ts.URL, "greedy", batchRequest{
		Instances: []batchInstance{{SMTLIB: slow}},
	}); code != http.StatusTooManyRequests {
		t.Fatalf("dry tenant's batch admitted: status %d, want 429", code)
	}

	// Another tenant is untouched.
	resp, code := postTenant(t, ts.URL, "alice", solveRequest{SMTLIB: qosSat(7)})
	if code != http.StatusOK || resp.Status != "sat" {
		t.Fatalf("innocent tenant: status %d verdict %q", code, resp.Status)
	}

	st := getStats(t, ts.URL)
	if st.Requests.RejectedTenant == 0 {
		t.Error("stats report no tenant-budget rejections")
	}
	found := false
	for _, ten := range st.Tenants {
		if ten.Name == "greedy" {
			found = true
			if ten.BudgetRemaining > 0 {
				t.Errorf("greedy pool remaining = %d, want <= 0", ten.BudgetRemaining)
			}
		}
	}
	if !found {
		t.Error("stats do not list the greedy tenant's pool")
	}
}
