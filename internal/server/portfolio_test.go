package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPortfolioEndToEnd boots the server in portfolio mode and checks
// the full surface: solve responses name the winning backend, cache
// hits replay the annotation, and /stats exposes the scheduler's win
// rates.
func TestPortfolioEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2, Portfolio: true})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "quickstart.smt2")
	resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if code != http.StatusOK {
		t.Fatalf("status code = %d, want 200", code)
	}
	if resp.Status != "sat" || resp.Cached {
		t.Fatalf("first solve = %q cached=%v, want cold sat", resp.Status, resp.Cached)
	}
	if resp.Backend == "" || resp.Backend == "portfolio" {
		t.Fatalf("winning backend = %q, want a concrete engine name", resp.Backend)
	}
	if resp.Model == nil || resp.Model.Ints["n"] != "42" {
		t.Fatalf("model missing or wrong: %+v", resp.Model)
	}

	// Cache hit replays the stored winner annotation.
	again, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if !again.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if again.Backend != resp.Backend {
		t.Fatalf("cached backend = %q, want %q", again.Backend, resp.Backend)
	}

	// /stats carries the portfolio section with the race history.
	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer httpResp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Portfolio == nil {
		t.Fatal("stats response has no portfolio section")
	}
	if stats.Portfolio.Races < 1 {
		t.Fatalf("portfolio races = %d, want >= 1", stats.Portfolio.Races)
	}
	agg, ok := stats.Portfolio.Backends[resp.Backend]
	if !ok {
		t.Fatalf("stats lack counters for winning backend %q: %+v", resp.Backend, stats.Portfolio.Backends)
	}
	if agg.Wins < 1 || agg.WinRate <= 0 {
		t.Fatalf("winning backend counters = %+v, want a recorded win", agg)
	}
	if len(stats.Portfolio.Recent) == 0 || stats.Portfolio.Recent[0].Winner == "" {
		t.Fatalf("scheduler decisions missing: %+v", stats.Portfolio.Recent)
	}
}

// TestPortfolioOffOmitsSection pins the default: without -portfolio
// the stats response has no portfolio section and responses carry the
// single-engine backend label.
func TestPortfolioOffOmitsSection(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer httpResp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Portfolio != nil {
		t.Fatalf("portfolio section present on a non-portfolio server: %+v", stats.Portfolio)
	}
}
