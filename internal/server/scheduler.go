package server

import (
	"errors"
	"sync"
)

// schedClass is a job's QoS class. Interactive solves (POST /solve)
// always outrank batch instances: a flood of bulk work may fill the
// workers, but every dequeue decision prefers the interactive queue,
// so an interactive request waits at most for the solves already on
// the workers — never behind a tenant's backlog.
type schedClass int

const (
	classInteractive schedClass = iota
	classBatch
)

func (c schedClass) String() string {
	if c == classInteractive {
		return "interactive"
	}
	return "batch"
}

// Admission errors. Handlers map errSchedFull to 503 with a
// queue-depth-derived Retry-After and errSchedDraining to the drain
// 503.
var (
	errSchedFull     = errors.New("queue full")
	errSchedDraining = errors.New("draining")
)

// scheduler is the two-class, tenant-fair priority queue in front of
// the worker pool. Interactive jobs form one FIFO bounded by capacity
// (the old admission-queue depth). Batch jobs form one FIFO per
// tenant, each bounded by batchCap, and are dequeued round-robin
// across tenants — a tenant that submits 500 instances and a tenant
// that submits 5 alternate, instead of the flood draining first.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int // interactive queue bound
	batchCap int // per-tenant batch backlog bound
	closed   bool

	interactive []*job
	batch       map[string][]*job
	ring        []string // tenants with queued batch work, admission order
	next        int      // ring index served by the next batch dequeue
}

func newScheduler(capacity, batchCap int) *scheduler {
	s := &scheduler{capacity: capacity, batchCap: batchCap, batch: make(map[string][]*job)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push admits one job or reports why it cannot: errSchedDraining after
// close, errSchedFull when the job's queue is at its bound.
func (s *scheduler) push(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSchedDraining
	}
	if j.class == classInteractive {
		if len(s.interactive) >= s.capacity {
			return errSchedFull
		}
		s.interactive = append(s.interactive, j)
	} else {
		q := s.batch[j.tenant]
		if len(q) >= s.batchCap {
			return errSchedFull
		}
		if len(q) == 0 {
			s.ring = append(s.ring, j.tenant)
		}
		s.batch[j.tenant] = append(q, j)
	}
	s.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns it, preferring the
// interactive FIFO and round-robining batch tenants otherwise. After
// close it drains only the interactive queue (the drain path fails
// queued batch work explicitly) and then returns nil, which is the
// worker's exit signal.
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.interactive) > 0 {
			j := s.interactive[0]
			s.interactive = s.interactive[1:]
			return j
		}
		if len(s.ring) > 0 {
			return s.popBatchLocked()
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// popBatchLocked dequeues the head of the ring's current tenant and
// advances the ring; a tenant whose queue empties leaves the ring.
func (s *scheduler) popBatchLocked() *job {
	i := s.next % len(s.ring)
	t := s.ring[i]
	q := s.batch[t]
	j := q[0]
	q = q[1:]
	if len(q) == 0 {
		delete(s.batch, t)
		s.ring = append(s.ring[:i], s.ring[i+1:]...)
		if len(s.ring) > 0 {
			s.next = i % len(s.ring)
		} else {
			s.next = 0
		}
	} else {
		s.batch[t] = q
		s.next = (i + 1) % len(s.ring)
	}
	return j
}

// close stops admission and removes every queued batch job, returning
// them in deterministic (ring, then FIFO) order so the drain path can
// fail each one cleanly. Queued interactive jobs stay: their handlers
// hold connections and the workers finish them before exiting.
func (s *scheduler) close() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var orphans []*job
	for _, t := range s.ring {
		orphans = append(orphans, s.batch[t]...)
	}
	s.batch = make(map[string][]*job)
	s.ring = nil
	s.next = 0
	s.cond.Broadcast()
	return orphans
}

// depths reports the queued interactive and batch totals.
func (s *scheduler) depths() (interactive, batch int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	interactive = len(s.interactive)
	for _, t := range s.ring {
		batch += len(s.batch[t])
	}
	return interactive, batch
}

// tenantBacklog reports one tenant's queued batch instances.
func (s *scheduler) tenantBacklog(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batch[tenant])
}
