package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/smtlib"
)

// TestContainedWorkerPanicKeepsServing injects a panic at the worker
// boundary of the first job and checks the full containment story: the
// client gets a structured 500 with a fault id, the very next request
// is served normally by the same (undisturbed) worker pool, /stats
// exposes the diagnostic under that id, and no goroutine leaks.
func TestContainedWorkerPanicKeepsServing(t *testing.T) {
	before := fault.Snapshot()
	s := New(Config{Workers: 1, Fault: fault.At(1, fault.OpPanic)})
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := `(declare-fun a () String)(assert (= (str.len a) 2))(check-sat)`
	resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicked solve: status %d, want 500 (resp %+v)", code, resp)
	}
	if resp.Status != "unknown" || resp.FaultID == "" || !strings.HasPrefix(resp.Reason, "panic:") {
		t.Fatalf("panicked solve response = %+v, want unknown with fault id and panic reason", resp)
	}
	if resp.Error == "" {
		t.Fatal("500 response carries no error message")
	}

	// The schedule is one-shot, so the next request exercises the same
	// worker goroutine — which must have survived the panic.
	again, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if code != http.StatusOK || again.Status != "sat" {
		t.Fatalf("request after contained panic = %q (status %d), want sat 200", again.Status, code)
	}

	// /stats surfaces the diagnostic under the id the client saw.
	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer httpResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Faults.Contained != 1 {
		t.Fatalf("faults.contained = %d, want 1", st.Faults.Contained)
	}
	var found *fault.Diagnostic
	for _, d := range st.Faults.Recent {
		if d.ID == resp.FaultID {
			found = d
		}
	}
	if found == nil {
		t.Fatalf("fault %s not in /stats recent list %+v", resp.FaultID, st.Faults.Recent)
	}
	if !found.Injected || found.Boundary != "server.worker" {
		t.Fatalf("diagnostic = %+v, want injected at server.worker", found)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	fault.CheckLeaks(t, before)
}

// TestBudgetUnitsDegradesToUnknown sends a hard instance with a tiny
// per-request governor budget: the verdict degrades to UNKNOWN with a
// "budget: <site>" reason instead of running to the deadline.
func TestBudgetUnitsDegradesToUnknown(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	hard, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: hard, BudgetUnits: 50})
	if code != http.StatusOK {
		t.Fatalf("budgeted solve: status %d, want 200", code)
	}
	if resp.Status != "unknown" || !strings.HasPrefix(resp.Reason, "budget") {
		t.Fatalf("budgeted solve = %q reason %q, want unknown with budget reason", resp.Status, resp.Reason)
	}
	if resp.FaultID != "" {
		t.Fatalf("budget degradation is not a fault, got fault id %s", resp.FaultID)
	}
}

// TestMemBudgetCapClampsRequests checks the server-wide cap: requests
// without a budget inherit it, and a request cannot raise it.
func TestMemBudgetCapClampsRequests(t *testing.T) {
	s := New(Config{Workers: 1, MemBudget: 50})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	hard, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	resp, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: hard})
	if resp.Status != "unknown" || !strings.HasPrefix(resp.Reason, "budget") {
		t.Fatalf("default-budget solve = %q reason %q, want unknown budget", resp.Status, resp.Reason)
	}
	// Asking for more than the cap is clamped back to the cap.
	resp, _ = postSolve(t, ts.URL, solveRequest{SMTLIB: hard, BudgetUnits: 1 << 40, NoCache: true})
	if resp.Status != "unknown" || !strings.HasPrefix(resp.Reason, "budget") {
		t.Fatalf("over-cap solve = %q reason %q, want unknown budget", resp.Status, resp.Reason)
	}
	// A budget-stopped verdict must never have been cached.
	resp, _ = postSolve(t, ts.URL, solveRequest{SMTLIB: hard})
	if resp.Cached {
		t.Fatal("budget-degraded verdict was served from cache")
	}
}
