// Package server is the trauserve serving layer: a bounded worker pool
// solving SMT-LIB problems received over HTTP, behind an admission
// queue with explicit overload responses, and a canonical-form verdict
// cache whose witnesses are re-validated by the concrete evaluator
// before being served (see DESIGN.md, "The serving layer").
package server

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/smtlib"
)

// verdict is a cache entry: a settled status plus, for SAT, the model
// in canonical coordinates. Only SAT and UNSAT are cached — unknown,
// timed-out, and cancelled results depend on the request's budget, not
// the problem.
type verdict struct {
	status  core.Status
	witness *smtlib.Witness // canonical coordinates; nil for UNSAT
	backend string          // engine that settled it ("" for a direct core solve)
}

// lruCache is a size-bounded verdict cache keyed by canonical hash,
// with hit/miss/eviction counters. Safe for concurrent use.
type lruCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key string
	val verdict
}

func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get looks up a verdict and promotes it on hit.
func (c *lruCache) get(key string) (verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return verdict{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a verdict, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, v verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: v})
	for len(c.entries) > c.max {
		last := c.order.Back()
		if last == nil {
			break
		}
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).key)
		c.evictions++
	}
}

// remove drops an entry (a cached witness that failed revalidation).
func (c *lruCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// removeIf drops the entry for key only while it still holds exactly v
// (verdicts compare by witness pointer, so "exactly" means the same
// cached object, not an equal-looking one) and reports whether it did.
// This is the evict-exactly-once primitive for failed revalidations:
// of N concurrent readers that all fetched the same poisoned verdict,
// one wins the eviction, and none can clobber a fresh verdict that a
// re-solve has already put in its place.
func (c *lruCache) removeIf(key string, v verdict) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok || el.Value.(*lruEntry).val != v {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return true
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// counters reads the hit/miss/eviction counters atomically with respect
// to cache operations.
func (c *lruCache) counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
