package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/smtlib"
)

// TestServerConcurrentMixedLoad hammers a deliberately undersized
// server with concurrent clients mixing duplicate (cache-hitting)
// problems, tight timeouts, mid-flight cancellations, and malformed
// requests. Run under -race (ci.sh does); the assertions here are
// sanity — the real check is the race detector over the admission
// gate, the cache, and the merged stats tree.
func TestServerConcurrentMixedLoad(t *testing.T) {
	before := fault.Snapshot()
	s := New(Config{Workers: 2, QueueDepth: 2, CacheEntries: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	easy := []string{
		`(declare-fun a () String)(assert (= (str.len a) 2))(check-sat)`,
		`(declare-fun b () String)(declare-fun n () Int)(assert (= n (str.to_int b)))(assert (= n 7))(check-sat)`,
		`(declare-fun c () String)(assert (= c "x"))(assert (= (str.len c) 2))(check-sat)`, // unsat
	}
	hard, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}

	post := func(ctx context.Context, req solveRequest) (int, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		hr, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/solve", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var decoded solveResponse
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			return resp.StatusCode, fmt.Errorf("decode: %w", err)
		}
		return resp.StatusCode, nil
	}

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (c + i) % 5 {
				case 0, 1: // duplicate easy problems: cold once, then cache hits
					code, err := post(context.Background(), solveRequest{SMTLIB: easy[i%len(easy)]})
					if err != nil {
						errs <- err
					} else if code != 200 && code != 503 {
						errs <- fmt.Errorf("easy solve: status %d", code)
					}
				case 2: // tight deadline on a hard problem
					code, err := post(context.Background(), solveRequest{SMTLIB: hard, TimeoutMS: 20})
					if err != nil {
						errs <- err
					} else if code != 200 && code != 503 {
						errs <- fmt.Errorf("timeout solve: status %d", code)
					}
				case 3: // client cancels mid-flight
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
					_, err := post(ctx, solveRequest{SMTLIB: hard, NoCache: true})
					cancel()
					if err == nil {
						// The server may still answer inside 10ms; fine.
						continue
					}
					if ctx.Err() == nil {
						errs <- fmt.Errorf("cancelled solve: %v", err)
					}
				case 4: // malformed input must never disturb the pool
					code, err := post(context.Background(), solveRequest{SMTLIB: "(assert (="})
					if err != nil {
						errs <- err
					} else if code != 400 && code != 503 {
						errs <- fmt.Errorf("parse error: status %d", code)
					}
				}
			}
		}()
	}
	// Concurrent observers over the stats endpoints while solving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/stats", "/metrics", "/healthz"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- err
					continue
				}
				_ = resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after load: %v", err)
	}
	// Workers, FromContext watchers, and branch racers must all be gone.
	fault.CheckLeaks(t, before)
}
