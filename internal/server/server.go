package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/portfolio"
	"repro/internal/smtlib"
	"repro/internal/strcon"
)

// Config sizes the serving layer. The zero value of every field selects
// a sensible default (see withDefaults).
type Config struct {
	// Workers is the number of solver goroutines (default 4).
	Workers int
	// QueueDepth bounds the interactive admission queue; a request
	// arriving with the queue full is rejected with 503 and a
	// queue-depth-derived Retry-After (default 2*Workers).
	QueueDepth int
	// CacheEntries bounds the verdict cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout applies when a request names no deadline (default
	// 5s); MaxTimeout clamps what a request may ask for (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRequestBytes bounds a POST /solve body (default 1 MiB);
	// MaxBatchBytes bounds a POST /batch body (default 16 MiB).
	MaxRequestBytes int64
	MaxBatchBytes   int64
	// Solve configures the engine (parallel case splits, incremental
	// mode). Timeout inside it is ignored — deadlines are per request.
	Solve core.Options
	// Portfolio routes solves through the racing portfolio scheduler
	// instead of the single refinement engine. Backends selects its
	// candidate pool (nil = the whole backend registry); it is ignored
	// when Portfolio is false.
	Portfolio bool
	Backends  []backend.Backend
	// MemBudget is the per-solve resource-governor budget in units
	// (0 = unlimited). A request may lower it with budget_units but
	// never raise it past this cap.
	MemBudget int64
	// TenantBudget is the per-tenant budget pool in governor units
	// (0 = unlimited): every solve carrying the same tenant id (the
	// X-Tenant header) debits one shared engine.Pool, so a tenant's
	// whole workload — batch jobs and interactive solves together — is
	// bounded collectively. A dry pool rejects the tenant's new work
	// with 429 for the life of the process.
	TenantBudget int64
	// TenantRefill turns each tenant pool into a token bucket: the pool
	// earns this many governor units per second, capped at
	// TenantBudget, so a throttled tenant recovers on its own instead
	// of staying dry forever. 0 (the default) keeps pools prepaid.
	// Ignored without TenantBudget.
	TenantRefill int64
	// Peers is this shard's view of its cluster, enabling peer
	// cache-fill: on a verdict-cache miss the shard asks the canonical
	// hash's owner for an already-settled verdict before solving. nil
	// (standalone) disables the lookup.
	Peers *cluster.Peers
	// MaxBatchInstances bounds the instances of one POST /batch
	// (default 512).
	MaxBatchInstances int
	// BatchBacklog bounds a tenant's queued batch instances
	// (default 2048); a batch that would exceed it is rejected whole.
	BatchBacklog int
	// MaxJobs bounds retained batch jobs (default 256); the oldest
	// completed job is evicted to make room for a new one.
	MaxJobs int
	// Fault is a deterministic fault-injection schedule consulted by
	// every solve's engine context and once per job at the worker
	// boundary. Chaos tests and the ci smoke install one; nil (the
	// production value) injects nothing.
	Fault *fault.Schedule
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 16 << 20
	}
	if c.MaxBatchInstances <= 0 {
		c.MaxBatchInstances = 512
	}
	if c.BatchBacklog <= 0 {
		c.BatchBacklog = 2048
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	c.Solve.Timeout = 0
	return c
}

// Server is a concurrent solving service. Create with New, expose via
// net/http (it implements http.Handler), stop with Shutdown.
type Server struct {
	cfg   Config
	cache *lruCache
	mux   *http.ServeMux

	// portfolio is the shared racing scheduler (nil unless
	// Config.Portfolio): its win/loss history accumulates across
	// requests, so the server's scheduling improves as it serves.
	portfolio *portfolio.Solver

	// sched is the two-class, tenant-fair priority queue in front of
	// the worker pool; flights coalesces concurrent identical
	// canonical problems onto one solve; store holds async batch jobs.
	sched   *scheduler
	flights *flightTable
	store   *jobStore

	// tenants maps tenant ids to their shared budget pools (only
	// populated under Config.TenantBudget); order preserves first-seen
	// order for deterministic /stats rendering.
	tenants struct {
		sync.Mutex
		pools map[string]*engine.Pool
		order []string
	}

	draining atomic.Bool
	workers  sync.WaitGroup

	stats *engine.Stats // merged engine statistics across all solves
	ctr   counters

	// Queue-wait accounting per QoS class: the proof obligation of the
	// priority queue is that interactive waits stay bounded under a
	// batch flood, so the server measures them itself.
	waitInteractive waitStats
	waitBatch       waitStats

	// faults keeps the most recent contained-panic diagnostics for
	// /stats, so a fault_id from an error response can be looked up.
	faults struct {
		sync.Mutex
		recent []*fault.Diagnostic
	}

	start time.Time
}

// faultLogCap bounds the recent-diagnostics ring in /stats.
const faultLogCap = 16

// tenantHeader names the request header carrying the tenant id; absent
// or empty means the "default" tenant.
const tenantHeader = "X-Tenant"

// maxCoalesceAttempts bounds how many consecutive unsettled flights a
// request will wait on before solving on its own: coalescing is an
// optimization, never a livelock.
const maxCoalesceAttempts = 3

// counters are the serving-layer metrics (cache counters live on the
// cache itself).
type counters struct {
	requests       atomic.Int64 // jobs accepted for processing (solve + batch instances)
	parseErrors    atomic.Int64
	rejectedQueue  atomic.Int64 // 503: queue or backlog full
	rejectedDrain  atomic.Int64 // 503: shutting down
	rejectedTenant atomic.Int64 // 429: tenant budget pool dry
	solvedSat      atomic.Int64
	solvedUnsat    atomic.Int64
	solvedUnknown  atomic.Int64
	timeouts       atomic.Int64
	faultsContain  atomic.Int64 // panics contained at any boundary
	cacheServed    atomic.Int64 // responses answered from cache
	revalFailures  atomic.Int64 // poisoned cache entries evicted after a failed revalidation
	uncacheable    atomic.Int64 // problems with no canonical form
	clientsGone    atomic.Int64 // client disconnected while queued/solving
	activeRequests atomic.Int64

	coalesced        atomic.Int64 // waiters served by another request's solve
	coalesceFallback atomic.Int64 // waiters whose flight resolved unsettled
	batchJobs        atomic.Int64
	batchInstances   atomic.Int64
	batchDrained     atomic.Int64 // instances failed cleanly by a drain

	peerFills  atomic.Int64 // misses answered by the owner shard's cache
	peerMisses atomic.Int64 // owner asked, had nothing settled
	peerErrors atomic.Int64 // owner unreachable or its entry failed revalidation
	peerServed atomic.Int64 // cache entries this shard handed to peers
}

// waitStats accumulates queue-wait observations for one QoS class.
type waitStats struct {
	count atomic.Int64
	sumNS atomic.Int64
	maxNS atomic.Int64
}

func (ws *waitStats) note(d time.Duration) {
	ws.count.Add(1)
	ws.sumNS.Add(int64(d))
	for {
		cur := ws.maxNS.Load()
		if int64(d) <= cur || ws.maxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

func (ws *waitStats) snapshot() queueWaitStats {
	n := ws.count.Load()
	out := queueWaitStats{Count: n, MaxMS: float64(ws.maxNS.Load()) / 1e6}
	if n > 0 {
		out.MeanMS = float64(ws.sumNS.Load()) / float64(n) / 1e6
	}
	return out
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheEntries),
		sched:   newScheduler(cfg.QueueDepth, cfg.BatchBacklog),
		flights: newFlightTable(),
		store:   newJobStore(cfg.MaxJobs),
		stats:   engine.NewStats(),
		start:   time.Now(),
	}
	s.tenants.pools = make(map[string]*engine.Pool)
	if cfg.Portfolio {
		s.portfolio = portfolio.New(portfolio.Config{Backends: cfg.Backends})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /cache/{hash}", s.handleCacheEntry)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker() //lint:nocontain — runJob contains panics per job, so the loop itself cannot panic
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new work is accepted, queued and
// in-flight interactive solves finish (their handlers write
// responses), queued batch instances are failed cleanly (settled with
// reason "draining" — job state is never lost, only degraded), and
// Shutdown returns when the workers exit or ctx expires. Call after
// http.Server.Shutdown so no handler is still trying to enqueue.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// close is idempotent (nil on repeat calls), so orphaned batch
	// work is failed exactly once.
	for _, j := range s.sched.close() {
		s.ctr.batchDrained.Add(1)
		s.finish(j, core.Result{Status: core.StatusUnknown, Reason: "draining"}, nil, 0)
	}
	done := make(chan struct{})
	go func() { //lint:nocontain — waits on the pool, runs no solver code
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
}

// tenantOf extracts the request's tenant id.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return "default"
}

// tenantPool returns the tenant's shared budget pool, creating it on
// first sight (nil when the server runs without -tenantbudget).
func (s *Server) tenantPool(tenant string) *engine.Pool {
	if s.cfg.TenantBudget <= 0 {
		return nil
	}
	s.tenants.Lock()
	defer s.tenants.Unlock()
	p, ok := s.tenants.pools[tenant]
	if !ok {
		p = engine.NewRefillingPool("tenant "+tenant, s.cfg.TenantBudget, s.cfg.TenantRefill)
		s.tenants.pools[tenant] = p
		s.tenants.order = append(s.tenants.order, tenant)
	}
	return p
}

// retryAfterSecs maps a backlog to the Retry-After hint on a 503:
// roughly the backlog's drain time at one solve-second per worker,
// clamped to [1, 30], so bulk clients back off proportionally to the
// congestion they observe instead of hammering a fixed interval.
func retryAfterSecs(queued, workers int) int {
	if workers < 1 {
		workers = 1
	}
	secs := 1 + queued/workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// solveRequest is the POST /solve body.
type solveRequest struct {
	// SMTLIB is the problem source.
	SMTLIB string `json:"smtlib"`
	// TimeoutMS is the per-request deadline (0 = server default,
	// clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the verdict cache (and dedup-in-flight) for
	// this request.
	NoCache bool `json:"no_cache,omitempty"`
	// BudgetUnits caps the solve's resource-governor budget. It can
	// tighten the server's MemBudget but never exceed it; 0 means
	// "use the server default".
	BudgetUnits int64 `json:"budget_units,omitempty"`
}

// solveResponse is the POST /solve reply. Witness reports a SAT model
// in canonical coordinates (strings by canonical index; integers as
// decimal strings); Model reports it by declared variable name.
type solveResponse struct {
	Status    string       `json:"status"`
	Model     *modelJSON   `json:"model,omitempty"`
	Witness   *witnessJSON `json:"witness,omitempty"`
	Canonical string       `json:"canonical_hash,omitempty"`
	// Backend names the engine that produced the verdict (the race
	// winner under -portfolio; on cache hits, the engine that settled
	// the cached entry). Empty for a direct core solve.
	Backend string `json:"backend,omitempty"`
	Cached  bool   `json:"cached"`
	// PeerFilled marks a cached verdict obtained from the canonical
	// hash's owner shard (peer cache-fill) rather than solved here.
	PeerFilled bool `json:"peer_filled,omitempty"`
	// Coalesced marks a verdict received from another request's solve
	// of the same canonical problem (dedup-in-flight).
	Coalesced bool    `json:"coalesced,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	TimedOut  bool    `json:"timed_out,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// QueuedMS is the time the solve spent in the admission queue.
	QueuedMS float64 `json:"queued_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
	// Reason explains an unknown verdict ("budget: <site>", "deadline",
	// "panic: <value>", ...). FaultID names the contained-panic
	// diagnostic retrievable from /stats when the solve panicked.
	Reason  string `json:"reason,omitempty"`
	FaultID string `json:"fault_id,omitempty"`
}

type modelJSON struct {
	Strings map[string]string `json:"strings,omitempty"`
	Ints    map[string]string `json:"ints,omitempty"`
}

type witnessJSON struct {
	Str []string `json:"str"`
	Int []string `json:"int"`
}

func witnessToJSON(w *smtlib.Witness) *witnessJSON {
	if w == nil {
		return nil
	}
	out := &witnessJSON{Str: append([]string{}, w.Str...), Int: make([]string, len(w.Int))}
	for i, v := range w.Int {
		out.Int[i] = v.String()
	}
	return out
}

// job is one admitted solve, handed to a worker by the scheduler.
// Interactive jobs carry their engine context (created at admission so
// queue time counts against the deadline) and a buffered done channel
// (a worker never blocks on a handler that stopped listening). Batch
// jobs carry the deadline parameters instead — their context is
// created at dequeue, so a deep backlog does not expire instances that
// were merely waiting — and a deliver callback into the job store.
type job struct {
	class   schedClass
	tenant  string
	script  *smtlib.Script
	canon   *smtlib.Canon
	noCache bool

	ec      *engine.Ctx   // interactive only
	timeout time.Duration // batch only
	budget  int64         // batch only
	pool    *engine.Pool  // batch only (interactive pools ride on ec)

	fl       *flight // the flight this job leads (nil when not coalescable)
	admitted time.Time

	done    chan jobOutcome  // interactive
	deliver func(jobOutcome) // batch
}

// jobOutcome is what a worker (or the drain path) produced for a job.
type jobOutcome struct {
	res    core.Result
	ec     *engine.Ctx // nil when drained before dequeue
	queued time.Duration
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection may be gone; there is nowhere to report to.
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, a ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, a...)})
}

// rejectDraining answers the drain 503. Retry-After stays constant
// here: the queue is irrelevant, the process is about to exit.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.ctr.rejectedDrain.Add(1)
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
}

// rejectTenant answers the 429 for a tenant whose budget pool is dry.
// Retry-After reuses the queue-full mapping on the tenant's own queued
// batch backlog: a tenant with deep queued work backs off longer,
// since its pool has that much more demand to absorb before new work
// stands a chance.
func (s *Server) rejectTenant(w http.ResponseWriter, tenant string) {
	s.ctr.rejectedTenant.Add(1)
	w.Header().Set("Retry-After",
		strconv.Itoa(retryAfterSecs(s.sched.tenantBacklog(tenant), s.cfg.Workers)))
	s.writeError(w, http.StatusTooManyRequests, "tenant %q budget exhausted", tenant)
}

// clampTimeout applies the server's default and maximum to a
// client-requested deadline.
func (s *Server) clampTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// clampBudget applies the server's MemBudget cap to a client-requested
// governor budget.
func (s *Server) clampBudget(units int64) int64 {
	budget := s.cfg.MemBudget
	if units > 0 && (budget <= 0 || units < budget) {
		budget = units
	}
	return budget
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.ctr.activeRequests.Add(1)
	defer s.ctr.activeRequests.Add(-1)
	start := time.Now()

	// A draining server takes no new solve work — not even cache hits —
	// so clients fail over promptly and deterministically.
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxRequestBytes)
			return
		}
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req solveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	script, err := smtlib.Parse(req.SMTLIB)
	if err != nil {
		s.ctr.parseErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, "parsing problem: %v", err)
		return
	}

	canon, err := smtlib.Canonicalize(script.Problem)
	if err != nil {
		// Not an input error: the problem is solvable, just not
		// cacheable (e.g. past the canonical nesting budget).
		canon = nil
		s.ctr.uncacheable.Add(1)
	}

	// Cache fast path; see cacheLookup for the revalidation rule. On a
	// local miss, peer cache-fill asks the canonical hash's owner shard
	// before spending any solver time.
	if canon != nil && !req.NoCache {
		if resp, ok := s.cacheLookup(script, canon, start); ok {
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		if resp, ok := s.peerFill(r, script, canon, start); ok {
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	tenant := tenantOf(r)
	pool := s.tenantPool(tenant)
	if pool.Dry() {
		s.rejectTenant(w, tenant)
		return
	}

	// The deadline starts here, so time spent queued — or waiting on a
	// coalesced flight — counts against the request's budget; a client
	// disconnect cancels the engine context through r.Context().
	ec, stop := engine.FromContext(r.Context(), s.clampTimeout(req.TimeoutMS))
	defer stop()
	if budget := s.clampBudget(req.BudgetUnits); budget > 0 {
		ec.SetBudget(budget)
	}
	ec.SetBudgetPool(pool)
	if s.cfg.Fault != nil {
		ec.SetSchedule(s.cfg.Fault)
	}

	// Dispatch loop: cache, then coalesce onto an identical in-flight
	// solve, then the interactive queue. A flight that resolves
	// unsettled (the leader timed out, was cancelled, or panicked)
	// proves nothing about the problem, so the waiter loops back and
	// tries again — re-checking the cache first, becoming the next
	// leader if the hash is now unclaimed, and solving uncoalesced
	// after maxCoalesceAttempts.
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if s.draining.Load() {
				s.rejectDraining(w)
				return
			}
			if canon != nil && !req.NoCache {
				if resp, ok := s.cacheLookup(script, canon, start); ok {
					s.writeJSON(w, http.StatusOK, resp)
					return
				}
			}
		}
		var fl *flight
		leader := true
		if canon != nil && !req.NoCache && attempt < maxCoalesceAttempts {
			fl, leader = s.flights.join(canon.Hash)
		}
		if !leader {
			var expired <-chan time.Time
			if t, ok := ec.Deadline(); ok {
				timer := time.NewTimer(time.Until(t))
				defer timer.Stop()
				expired = timer.C
			}
			select {
			case <-fl.done:
			case <-expired:
				// The waiter's own deadline passed while the leader
				// solved; answer exactly like a queued timeout.
				s.ctr.timeouts.Add(1)
				s.writeJSON(w, http.StatusOK, solveResponse{
					Status: core.StatusUnknown.String(), Reason: "deadline",
					TimedOut: true, Canonical: canon.Hash, ElapsedMS: msSince(start),
				})
				return
			case <-r.Context().Done():
				s.ctr.clientsGone.Add(1)
				return
			}
			if fl.settled {
				if resp, ok := s.renderVerdict(script, canon, fl.v, false, true, start); ok {
					s.ctr.coalesced.Add(1)
					s.writeJSON(w, http.StatusOK, resp)
					return
				}
			}
			s.ctr.coalesceFallback.Add(1)
			continue
		}

		j := &job{
			class: classInteractive, tenant: tenant,
			script: script, canon: canon, noCache: req.NoCache,
			ec: ec, fl: fl, admitted: time.Now(),
			done: make(chan jobOutcome, 1),
		}
		if err := s.sched.push(j); err != nil {
			if fl != nil {
				s.flights.resolve(fl, false, verdict{}, "not admitted")
			}
			if errors.Is(err, errSchedDraining) {
				s.rejectDraining(w)
				return
			}
			s.ctr.rejectedQueue.Add(1)
			depth, _ := s.sched.depths()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(depth, s.cfg.Workers)))
			s.writeError(w, http.StatusServiceUnavailable,
				"admission queue full (%d queued)", depth)
			return
		}
		s.ctr.requests.Add(1)

		select {
		case out := <-j.done:
			resp := s.outcomeResponse(script, canon, out, start)
			if out.res.Fault != nil {
				// A contained panic is a server-side defect, not a
				// property of the problem: report 500 with the
				// diagnostic id so the full trace can be pulled from
				// /stats.
				s.writeJSON(w, http.StatusInternalServerError, resp)
				return
			}
			s.writeJSON(w, http.StatusOK, resp)
			return
		case <-r.Context().Done():
			// Client gone: FromContext's watcher cancels ec, the worker
			// finishes promptly, and the buffered done channel absorbs
			// the result. Nothing to write to.
			s.ctr.clientsGone.Add(1)
			return
		}
	}
}

// cacheLookup serves a request from the verdict cache when possible.
// A cached SAT witness is never trusted blindly: it is transported
// onto THIS request's parse and re-checked by the concrete evaluator.
// A poisoned entry is evicted exactly once across any number of
// concurrent readers — removeIf is a no-op for every reader after the
// first, and for an entry a fresh solve has already replaced — and
// every reader falls through to the dispatch path, where
// dedup-in-flight collapses them onto one real solve.
func (s *Server) cacheLookup(script *smtlib.Script, canon *smtlib.Canon, start time.Time) (solveResponse, bool) {
	v, ok := s.cache.get(canon.Hash)
	if !ok {
		return solveResponse{}, false
	}
	resp, ok := s.renderVerdict(script, canon, v, true, false, start)
	if !ok {
		if s.cache.removeIf(canon.Hash, v) {
			s.ctr.revalFailures.Add(1)
		}
		return solveResponse{}, false
	}
	s.ctr.cacheServed.Add(1)
	return resp, true
}

// renderVerdict builds a response from a settled canonical verdict —
// the shared tail of the cache-hit and coalesced-flight paths. For
// SAT, the canonical witness is transported onto the requesting parse
// and re-checked by the concrete evaluator; ok=false means the
// witness did not fit (callers treat it as a miss).
func (s *Server) renderVerdict(script *smtlib.Script, canon *smtlib.Canon, v verdict, cached, coalesced bool, start time.Time) (solveResponse, bool) {
	resp := solveResponse{
		Canonical: canon.Hash,
		Backend:   v.backend,
		Cached:    cached,
		Coalesced: coalesced,
	}
	switch v.status {
	case core.StatusUnsat:
		resp.Status = "unsat"
	case core.StatusSat:
		a := canon.Assignment(v.witness)
		if a == nil || !script.Problem.Eval(a) {
			return solveResponse{}, false
		}
		resp.Status = "sat"
		resp.Model = modelOf(script, a)
		resp.Witness = witnessToJSON(v.witness)
	default:
		return solveResponse{}, false
	}
	resp.ElapsedMS = msSince(start)
	return resp, true
}

// outcomeResponse renders a worker-produced result for the request
// that led the solve.
func (s *Server) outcomeResponse(script *smtlib.Script, canon *smtlib.Canon, out jobOutcome, start time.Time) solveResponse {
	resp := solveResponse{
		Status:    out.res.Status.String(),
		Backend:   out.res.Backend,
		Rounds:    out.res.Rounds,
		TimedOut:  out.ec.TimedOut(),
		ElapsedMS: msSince(start),
		QueuedMS:  float64(out.queued) / float64(time.Millisecond),
		Reason:    out.res.Reason,
	}
	if canon != nil {
		resp.Canonical = canon.Hash
	}
	if out.res.Status == core.StatusSat {
		resp.Model = modelOf(script, out.res.Model)
		if canon != nil {
			resp.Witness = witnessToJSON(canon.WitnessOf(out.res.Model))
		}
	}
	if out.res.Fault != nil {
		resp.FaultID = out.res.Fault.ID
		resp.Error = "solver panic contained (see /stats faults." + out.res.Fault.ID + ")"
	}
	return resp
}

// worker drains the scheduler until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := s.sched.pop(); j != nil; j = s.sched.pop() {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	queued := time.Since(j.admitted)
	if j.class == classInteractive {
		s.waitInteractive.note(queued)
	} else {
		s.waitBatch.note(queued)
	}
	ec := j.ec
	if ec == nil {
		// Batch deadlines start at dequeue: a deep backlog must not
		// expire instances that were merely waiting their turn.
		ec = engine.WithTimeout(j.timeout)
		if j.budget > 0 {
			ec.SetBudget(j.budget)
		}
		ec.SetBudgetPool(j.pool)
		if s.cfg.Fault != nil {
			ec.SetSchedule(s.cfg.Fault)
		}
	}
	var res core.Result
	// The worker boundary: core.SolveCtx contains panics raised inside
	// the solve, so this Contain only ever fires for faults injected at
	// the worker's own schedule site (and is the backstop that keeps the
	// pool alive if the pre-solve path ever panics).
	d := fault.Contain("server.worker", func() {
		if op := s.cfg.Fault.Visit(); op != fault.OpNone {
			ec.ApplyFault(op)
		}
		if ec.Expired() {
			// Deadline or client disconnect consumed the budget while
			// queued; report without touching the solver.
			reason := ec.BudgetReason()
			if reason == "" {
				reason = ec.Cause().String()
			}
			res = core.Result{Status: core.StatusUnknown, Reason: reason}
		} else if s.portfolio != nil {
			res = s.portfolio.Solve(j.script.Problem, backend.Options{
				Parallel:  s.cfg.Solve.Parallel,
				MaxRounds: s.cfg.Solve.MaxRounds,
			}, ec)
		} else {
			res = core.SolveCtx(j.script.Problem, s.cfg.Solve, ec)
		}
	})
	if d != nil {
		res = core.Result{Status: core.StatusUnknown, Reason: "panic: " + d.Value, Fault: d}
	}
	if res.Fault != nil {
		s.ctr.faultsContain.Add(1)
		s.recordFault(res.Fault)
	}
	switch res.Status {
	case core.StatusSat:
		s.ctr.solvedSat.Add(1)
	case core.StatusUnsat:
		s.ctr.solvedUnsat.Add(1)
	default:
		if ec.TimedOut() {
			s.ctr.timeouts.Add(1)
		} else {
			s.ctr.solvedUnknown.Add(1)
		}
	}
	s.stats.Merge(ec.Stats())

	// Cache only settled verdicts of canonicalizable problems. A
	// timed-out or cancelled run says nothing about the problem, and an
	// unknown depends on the round budget.
	if j.canon != nil && !j.noCache && !ec.Expired() {
		switch res.Status {
		case core.StatusSat:
			s.cache.put(j.canon.Hash, verdict{
				status:  core.StatusSat,
				witness: j.canon.WitnessOf(res.Model),
				backend: res.Backend,
			})
		case core.StatusUnsat:
			s.cache.put(j.canon.Hash, verdict{status: core.StatusUnsat, backend: res.Backend})
		}
	}
	s.finish(j, res, ec, queued)
}

// finish resolves the job's flight (waking every coalesced waiter with
// the same verdict) and delivers the outcome to the job's consumer.
// The drain path uses it too, with a synthetic "draining" result and
// no engine context.
func (s *Server) finish(j *job, res core.Result, ec *engine.Ctx, queued time.Duration) {
	if j.fl != nil {
		settled := (res.Status == core.StatusSat || res.Status == core.StatusUnsat) && !ec.Expired()
		if settled {
			v := verdict{status: res.Status, backend: res.Backend}
			if res.Status == core.StatusSat {
				v.witness = j.canon.WitnessOf(res.Model)
			}
			s.flights.resolve(j.fl, true, v, "")
		} else {
			reason := res.Reason
			if reason == "" {
				reason = "unsettled"
			}
			s.flights.resolve(j.fl, false, verdict{}, reason)
		}
	}
	out := jobOutcome{res: res, ec: ec, queued: queued}
	if j.done != nil {
		j.done <- out
	}
	if j.deliver != nil {
		j.deliver(out)
	}
}

// recordFault keeps the newest faultLogCap contained-panic diagnostics
// for /stats.
func (s *Server) recordFault(d *fault.Diagnostic) {
	s.faults.Lock()
	defer s.faults.Unlock()
	s.faults.recent = append(s.faults.recent, d)
	if n := len(s.faults.recent); n > faultLogCap {
		s.faults.recent = s.faults.recent[n-faultLogCap:]
	}
}

// modelOf renders an assignment under the script's declared names.
// Variables the model leaves unassigned default to "" and 0, matching
// the concrete evaluator. Length variables are internal, not reported.
func modelOf(script *smtlib.Script, a *strcon.Assignment) *modelJSON {
	if a == nil {
		return nil
	}
	m := &modelJSON{}
	if len(script.StrVars) > 0 {
		m.Strings = make(map[string]string, len(script.StrVars))
		for name, v := range script.StrVars {
			m.Strings[name] = a.Str[v]
		}
	}
	if len(script.IntVars) > 0 {
		m.Ints = make(map[string]string, len(script.IntVars))
		for name, v := range script.IntVars {
			m.Ints[name] = a.Int.Value(v).String()
		}
	}
	return m
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	UptimeMS float64      `json:"uptime_ms"`
	Requests requestStats `json:"requests"`
	Cache    cacheStats   `json:"cache"`
	Queue    queueStats   `json:"queue"`
	Dedup    dedupStats   `json:"dedup"`
	Batch    batchStats   `json:"batch"`
	// Cluster reports the peer cache-fill counters (absent for a
	// standalone server that has also never served a peer).
	Cluster *clusterStats `json:"cluster,omitempty"`
	// Tenants lists the per-tenant budget pools in first-seen order
	// (empty unless the server runs with a tenant budget).
	Tenants []tenantStat `json:"tenants,omitempty"`
	Faults  faultStats   `json:"faults"`
	// Portfolio reports the racing scheduler's cumulative win rates and
	// recent decisions; absent unless the server runs with -portfolio.
	Portfolio *portfolio.Snapshot `json:"portfolio,omitempty"`
	Engine    *engine.Snapshot    `json:"engine"`
}

// faultStats surfaces contained panics: the total and the most recent
// diagnostics (full trimmed stacks), keyed by the fault_id that error
// responses carry.
type faultStats struct {
	Contained int64               `json:"contained"`
	Recent    []*fault.Diagnostic `json:"recent,omitempty"`
}

type requestStats struct {
	Accepted       int64 `json:"accepted"`
	ParseErrors    int64 `json:"parse_errors"`
	RejectedQueue  int64 `json:"rejected_queue_full"`
	RejectedDrain  int64 `json:"rejected_draining"`
	RejectedTenant int64 `json:"rejected_tenant_budget"`
	Sat            int64 `json:"sat"`
	Unsat          int64 `json:"unsat"`
	Unknown        int64 `json:"unknown"`
	Timeouts       int64 `json:"timeouts"`
	CacheServed    int64 `json:"cache_served"`
	RevalFailures  int64 `json:"revalidation_failures"`
	Uncacheable    int64 `json:"uncacheable"`
	ClientsGone    int64 `json:"clients_gone"`
	ActiveRequests int64 `json:"active"`
}

type cacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type queueStats struct {
	Depth           int            `json:"depth"` // interactive queue
	BatchDepth      int            `json:"batch_depth"`
	Capacity        int            `json:"capacity"`
	Workers         int            `json:"workers"`
	InteractiveWait queueWaitStats `json:"interactive_wait"`
	BatchWait       queueWaitStats `json:"batch_wait"`
}

// queueWaitStats summarizes admission-to-dequeue waits for one QoS
// class — the observable the priority queue exists to bound.
type queueWaitStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// dedupStats reports dedup-in-flight outcomes: Coalesced counts
// requests served by another request's solve of the same canonical
// problem, Fallbacks counts waiters whose flight resolved unsettled
// and who re-dispatched on their own.
type dedupStats struct {
	Coalesced int64 `json:"coalesced"`
	Fallbacks int64 `json:"fallbacks"`
}

type batchStats struct {
	Jobs      int64 `json:"jobs"`
	Instances int64 `json:"instances"`
	Drained   int64 `json:"drained"`
	Stored    int   `json:"stored"`
}

// clusterStats is the shard-local view of the distributed verdict
// cache: both directions of peer cache-fill.
type clusterStats struct {
	Self       string `json:"self,omitempty"` // this shard's cluster address
	PeerFills  int64  `json:"peer_fills"`
	PeerMisses int64  `json:"peer_misses"`
	PeerErrors int64  `json:"peer_errors"`
	PeerServed int64  `json:"peer_served"`
}

type tenantStat struct {
	Name            string `json:"name"`
	BudgetRemaining int64  `json:"budget_remaining"`
	QueuedBatch     int    `json:"queued_batch"`
}

func (s *Server) snapshotStats() statsResponse {
	hits, misses, evictions := s.cache.counters()
	depth, batchDepth := s.sched.depths()
	return statsResponse{
		UptimeMS: msSince(s.start),
		Requests: requestStats{
			Accepted:       s.ctr.requests.Load(),
			ParseErrors:    s.ctr.parseErrors.Load(),
			RejectedQueue:  s.ctr.rejectedQueue.Load(),
			RejectedDrain:  s.ctr.rejectedDrain.Load(),
			RejectedTenant: s.ctr.rejectedTenant.Load(),
			Sat:            s.ctr.solvedSat.Load(),
			Unsat:          s.ctr.solvedUnsat.Load(),
			Unknown:        s.ctr.solvedUnknown.Load(),
			Timeouts:       s.ctr.timeouts.Load(),
			CacheServed:    s.ctr.cacheServed.Load(),
			RevalFailures:  s.ctr.revalFailures.Load(),
			Uncacheable:    s.ctr.uncacheable.Load(),
			ClientsGone:    s.ctr.clientsGone.Load(),
			ActiveRequests: s.ctr.activeRequests.Load(),
		},
		Cache: cacheStats{
			Entries:   s.cache.len(),
			Capacity:  s.cfg.CacheEntries,
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Queue: queueStats{
			Depth:           depth,
			BatchDepth:      batchDepth,
			Capacity:        s.cfg.QueueDepth,
			Workers:         s.cfg.Workers,
			InteractiveWait: s.waitInteractive.snapshot(),
			BatchWait:       s.waitBatch.snapshot(),
		},
		Dedup: dedupStats{
			Coalesced: s.ctr.coalesced.Load(),
			Fallbacks: s.ctr.coalesceFallback.Load(),
		},
		Batch: batchStats{
			Jobs:      s.ctr.batchJobs.Load(),
			Instances: s.ctr.batchInstances.Load(),
			Drained:   s.ctr.batchDrained.Load(),
			Stored:    s.store.len(),
		},
		Cluster:   s.snapshotCluster(),
		Tenants:   s.snapshotTenants(),
		Faults:    s.snapshotFaults(),
		Portfolio: s.snapshotPortfolio(),
		Engine:    s.stats.Snapshot(),
	}
}

func (s *Server) snapshotTenants() []tenantStat {
	s.tenants.Lock()
	order := append([]string(nil), s.tenants.order...)
	pools := make([]*engine.Pool, len(order))
	for i, name := range order {
		pools[i] = s.tenants.pools[name]
	}
	s.tenants.Unlock()
	out := make([]tenantStat, len(order))
	for i, name := range order {
		out[i] = tenantStat{
			Name:            name,
			BudgetRemaining: pools[i].Remaining(),
			QueuedBatch:     s.sched.tenantBacklog(name),
		}
	}
	return out
}

func (s *Server) snapshotCluster() *clusterStats {
	cs := clusterStats{
		Self:       s.cfg.Peers.Self(),
		PeerFills:  s.ctr.peerFills.Load(),
		PeerMisses: s.ctr.peerMisses.Load(),
		PeerErrors: s.ctr.peerErrors.Load(),
		PeerServed: s.ctr.peerServed.Load(),
	}
	if s.cfg.Peers == nil && cs.PeerServed == 0 {
		return nil
	}
	return &cs
}

func (s *Server) snapshotPortfolio() *portfolio.Snapshot {
	if s.portfolio == nil {
		return nil
	}
	snap := s.portfolio.Snapshot()
	return &snap
}

func (s *Server) snapshotFaults() faultStats {
	s.faults.Lock()
	recent := append([]*fault.Diagnostic(nil), s.faults.recent...)
	s.faults.Unlock()
	return faultStats{Contained: s.ctr.faultsContain.Load(), Recent: recent}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotStats())
}

// handleMetrics is the flat machine-readable view: one JSON object of
// numeric gauges/counters, keys stable and sorted by encoding/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.snapshotStats()
	m := map[string]float64{
		"uptime_ms":                      st.UptimeMS,
		"requests_accepted_total":        float64(st.Requests.Accepted),
		"requests_parse_errors_total":    float64(st.Requests.ParseErrors),
		"requests_rejected_queue_total":  float64(st.Requests.RejectedQueue),
		"requests_rejected_drain_total":  float64(st.Requests.RejectedDrain),
		"requests_rejected_tenant_total": float64(st.Requests.RejectedTenant),
		"requests_sat_total":             float64(st.Requests.Sat),
		"requests_unsat_total":           float64(st.Requests.Unsat),
		"requests_unknown_total":         float64(st.Requests.Unknown),
		"requests_timeouts_total":        float64(st.Requests.Timeouts),
		"requests_cache_served_total":    float64(st.Requests.CacheServed),
		"requests_reval_failures_total":  float64(st.Requests.RevalFailures),
		"requests_uncacheable_total":     float64(st.Requests.Uncacheable),
		"requests_clients_gone_total":    float64(st.Requests.ClientsGone),
		"requests_active":                float64(st.Requests.ActiveRequests),
		"requests_coalesced_total":       float64(st.Dedup.Coalesced),
		"coalesce_fallbacks_total":       float64(st.Dedup.Fallbacks),
		"batch_jobs_total":               float64(st.Batch.Jobs),
		"batch_instances_total":          float64(st.Batch.Instances),
		"batch_drained_total":            float64(st.Batch.Drained),
		"batch_jobs_stored":              float64(st.Batch.Stored),
		"cache_entries":                  float64(st.Cache.Entries),
		"cache_capacity":                 float64(st.Cache.Capacity),
		"cache_hits_total":               float64(st.Cache.Hits),
		"cache_misses_total":             float64(st.Cache.Misses),
		"cache_evictions_total":          float64(st.Cache.Evictions),
		"queue_depth":                    float64(st.Queue.Depth),
		"queue_batch_depth":              float64(st.Queue.BatchDepth),
		"queue_capacity":                 float64(st.Queue.Capacity),
		"queue_interactive_wait_max_ms":  st.Queue.InteractiveWait.MaxMS,
		"queue_batch_wait_max_ms":        st.Queue.BatchWait.MaxMS,
		"workers":                        float64(st.Queue.Workers),
		"faults_contained_total":         float64(st.Faults.Contained),
	}
	s.writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}
