package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/portfolio"
	"repro/internal/smtlib"
	"repro/internal/strcon"
)

// Config sizes the serving layer. The zero value of every field selects
// a sensible default (see withDefaults).
type Config struct {
	// Workers is the number of solver goroutines (default 4).
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with
	// the queue full is rejected with 503 (default 2*Workers).
	QueueDepth int
	// CacheEntries bounds the verdict cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// DefaultTimeout applies when a request names no deadline (default
	// 5s); MaxTimeout clamps what a request may ask for (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRequestBytes bounds a request body (default 1 MiB).
	MaxRequestBytes int64
	// Solve configures the engine (parallel case splits, incremental
	// mode). Timeout inside it is ignored — deadlines are per request.
	Solve core.Options
	// Portfolio routes solves through the racing portfolio scheduler
	// instead of the single refinement engine. Backends selects its
	// candidate pool (nil = the whole backend registry); it is ignored
	// when Portfolio is false.
	Portfolio bool
	Backends  []backend.Backend
	// MemBudget is the per-solve resource-governor budget in units
	// (0 = unlimited). A request may lower it with budget_units but
	// never raise it past this cap.
	MemBudget int64
	// Fault is a deterministic fault-injection schedule consulted by
	// every solve's engine context and once per job at the worker
	// boundary. Chaos tests and the ci smoke install one; nil (the
	// production value) injects nothing.
	Fault *fault.Schedule
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	c.Solve.Timeout = 0
	return c
}

// Server is a concurrent solving service. Create with New, expose via
// net/http (it implements http.Handler), stop with Shutdown.
type Server struct {
	cfg   Config
	cache *lruCache
	mux   *http.ServeMux

	// portfolio is the shared racing scheduler (nil unless
	// Config.Portfolio): its win/loss history accumulates across
	// requests, so the server's scheduling improves as it serves.
	portfolio *portfolio.Solver

	// admission gates senders against close(jobs): senders hold the
	// read lock and check draining before attempting a queue send;
	// Shutdown takes the write lock to flip draining and close the
	// channel, so no send can race the close.
	admission sync.RWMutex
	draining  bool
	jobs      chan *job
	workers   sync.WaitGroup

	stats *engine.Stats // merged engine statistics across all solves
	ctr   counters

	// faults keeps the most recent contained-panic diagnostics for
	// /stats, so a fault_id from an error response can be looked up.
	faults struct {
		sync.Mutex
		recent []*fault.Diagnostic
	}

	start time.Time
}

// faultLogCap bounds the recent-diagnostics ring in /stats.
const faultLogCap = 16

// counters are the serving-layer metrics (cache counters live on the
// cache itself).
type counters struct {
	requests       atomic.Int64 // POST /solve accepted for processing
	parseErrors    atomic.Int64
	rejectedQueue  atomic.Int64 // 503: queue full
	rejectedDrain  atomic.Int64 // 503: shutting down
	solvedSat      atomic.Int64
	solvedUnsat    atomic.Int64
	solvedUnknown  atomic.Int64
	timeouts       atomic.Int64
	faultsContain  atomic.Int64 // panics contained at any boundary
	cacheServed    atomic.Int64 // responses answered from cache
	revalFailures  atomic.Int64 // cached witnesses that failed Eval
	uncacheable    atomic.Int64 // problems with no canonical form
	clientsGone    atomic.Int64 // client disconnected while queued/solving
	activeRequests atomic.Int64
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheEntries),
		jobs:  make(chan *job, cfg.QueueDepth),
		stats: engine.NewStats(),
		start: time.Now(),
	}
	if cfg.Portfolio {
		s.portfolio = portfolio.New(portfolio.Config{Backends: cfg.Backends})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker() //lint:nocontain — runJob contains panics per job, so the loop itself cannot panic
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the admission queue: no new work is accepted, queued
// and in-flight solves finish (their handlers write responses), and
// Shutdown returns when the workers exit or ctx expires. Call after
// http.Server.Shutdown so no handler is still trying to enqueue.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admission.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.admission.Unlock()
	done := make(chan struct{})
	go func() { //lint:nocontain — waits on the pool, runs no solver code
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
}

// solveRequest is the POST /solve body.
type solveRequest struct {
	// SMTLIB is the problem source.
	SMTLIB string `json:"smtlib"`
	// TimeoutMS is the per-request deadline (0 = server default,
	// clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the verdict cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// BudgetUnits caps the solve's resource-governor budget. It can
	// tighten the server's MemBudget but never exceed it; 0 means
	// "use the server default".
	BudgetUnits int64 `json:"budget_units,omitempty"`
}

// solveResponse is the POST /solve reply. Witness reports a SAT model
// in canonical coordinates (strings by canonical index; integers as
// decimal strings); Model reports it by declared variable name.
type solveResponse struct {
	Status    string       `json:"status"`
	Model     *modelJSON   `json:"model,omitempty"`
	Witness   *witnessJSON `json:"witness,omitempty"`
	Canonical string       `json:"canonical_hash,omitempty"`
	// Backend names the engine that produced the verdict (the race
	// winner under -portfolio; on cache hits, the engine that settled
	// the cached entry). Empty for a direct core solve.
	Backend   string  `json:"backend,omitempty"`
	Cached    bool    `json:"cached"`
	Rounds    int     `json:"rounds,omitempty"`
	TimedOut  bool    `json:"timed_out,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
	// Reason explains an unknown verdict ("budget: <site>", "deadline",
	// "panic: <value>", ...). FaultID names the contained-panic
	// diagnostic retrievable from /stats when the solve panicked.
	Reason  string `json:"reason,omitempty"`
	FaultID string `json:"fault_id,omitempty"`
}

type modelJSON struct {
	Strings map[string]string `json:"strings,omitempty"`
	Ints    map[string]string `json:"ints,omitempty"`
}

type witnessJSON struct {
	Str []string `json:"str"`
	Int []string `json:"int"`
}

func witnessToJSON(w *smtlib.Witness) *witnessJSON {
	if w == nil {
		return nil
	}
	out := &witnessJSON{Str: append([]string{}, w.Str...), Int: make([]string, len(w.Int))}
	for i, v := range w.Int {
		out.Int[i] = v.String()
	}
	return out
}

// job is one admitted solve, handed from the handler to a worker. done
// is buffered so a worker never blocks on a handler that stopped
// listening (client gone).
type job struct {
	script  *smtlib.Script
	canon   *smtlib.Canon
	noCache bool
	ec      *engine.Ctx
	done    chan jobResult
}

type jobResult struct {
	res core.Result
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection may be gone; there is nowhere to report to.
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, a ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, a...)})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.ctr.activeRequests.Add(1)
	defer s.ctr.activeRequests.Add(-1)
	start := time.Now()

	// A draining server takes no new solve work — not even cache hits —
	// so clients fail over promptly and deterministically.
	s.admission.RLock()
	draining := s.draining
	s.admission.RUnlock()
	if draining {
		s.ctr.rejectedDrain.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxRequestBytes)
			return
		}
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req solveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	script, err := smtlib.Parse(req.SMTLIB)
	if err != nil {
		s.ctr.parseErrors.Add(1)
		s.writeError(w, http.StatusBadRequest, "parsing problem: %v", err)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	canon, err := smtlib.Canonicalize(script.Problem)
	if err != nil {
		// Not an input error: the problem is solvable, just not
		// cacheable (e.g. past the canonical nesting budget).
		canon = nil
		s.ctr.uncacheable.Add(1)
	}

	// Cache fast path. A cached SAT witness is never trusted blindly:
	// it is transported onto THIS request's parse and re-checked by the
	// concrete evaluator; on failure the entry is evicted and the
	// request falls through to a real solve.
	if canon != nil && !req.NoCache {
		if v, ok := s.cache.get(canon.Hash); ok {
			switch v.status {
			case core.StatusUnsat:
				s.ctr.cacheServed.Add(1)
				s.writeJSON(w, http.StatusOK, solveResponse{
					Status:    "unsat",
					Canonical: canon.Hash,
					Backend:   v.backend,
					Cached:    true,
					ElapsedMS: msSince(start),
				})
				return
			case core.StatusSat:
				if a := canon.Assignment(v.witness); a != nil && script.Problem.Eval(a) {
					s.ctr.cacheServed.Add(1)
					s.writeJSON(w, http.StatusOK, solveResponse{
						Status:    "sat",
						Model:     modelOf(script, a),
						Witness:   witnessToJSON(v.witness),
						Canonical: canon.Hash,
						Backend:   v.backend,
						Cached:    true,
						ElapsedMS: msSince(start),
					})
					return
				}
				s.ctr.revalFailures.Add(1)
				s.cache.remove(canon.Hash)
			}
		}
	}

	// Admission. The deadline starts here, so time spent queued counts
	// against the request's budget; a client disconnect cancels the
	// engine context through r.Context().
	ec, stop := engine.FromContext(r.Context(), timeout)
	defer stop()
	budget := s.cfg.MemBudget
	if req.BudgetUnits > 0 && (budget <= 0 || req.BudgetUnits < budget) {
		budget = req.BudgetUnits
	}
	if budget > 0 {
		ec.SetBudget(budget)
	}
	if s.cfg.Fault != nil {
		ec.SetSchedule(s.cfg.Fault)
	}
	j := &job{script: script, canon: canon, noCache: req.NoCache, ec: ec, done: make(chan jobResult, 1)}

	s.admission.RLock()
	if s.draining {
		s.admission.RUnlock()
		s.ctr.rejectedDrain.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	select {
	case s.jobs <- j:
		s.admission.RUnlock()
	default:
		s.admission.RUnlock()
		s.ctr.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable,
			"admission queue full (%d queued)", s.cfg.QueueDepth)
		return
	}
	s.ctr.requests.Add(1)

	select {
	case out := <-j.done:
		resp := solveResponse{
			Status:    out.res.Status.String(),
			Backend:   out.res.Backend,
			Rounds:    out.res.Rounds,
			TimedOut:  ec.TimedOut(),
			ElapsedMS: msSince(start),
			Reason:    out.res.Reason,
		}
		if canon != nil {
			resp.Canonical = canon.Hash
		}
		if out.res.Status == core.StatusSat {
			resp.Model = modelOf(script, out.res.Model)
			if canon != nil {
				resp.Witness = witnessToJSON(canon.WitnessOf(out.res.Model))
			}
		}
		if out.res.Fault != nil {
			// A contained panic is a server-side defect, not a property
			// of the problem: report 500 with the diagnostic id so the
			// full trace can be pulled from /stats.
			resp.FaultID = out.res.Fault.ID
			resp.Error = "solver panic contained (see /stats faults." + out.res.Fault.ID + ")"
			s.writeJSON(w, http.StatusInternalServerError, resp)
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone: FromContext's watcher cancels ec, the worker
		// finishes promptly, and the buffered done channel absorbs the
		// result. Nothing to write to.
		s.ctr.clientsGone.Add(1)
	}
}

// worker drains the admission queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.jobs {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	var res core.Result
	// The worker boundary: core.SolveCtx contains panics raised inside
	// the solve, so this Contain only ever fires for faults injected at
	// the worker's own schedule site (and is the backstop that keeps the
	// pool alive if the pre-solve path ever panics).
	d := fault.Contain("server.worker", func() {
		if op := s.cfg.Fault.Visit(); op != fault.OpNone {
			j.ec.ApplyFault(op)
		}
		if j.ec.Expired() {
			// Deadline or client disconnect consumed the budget while
			// queued; report without touching the solver.
			reason := j.ec.BudgetReason()
			if reason == "" {
				reason = j.ec.Cause().String()
			}
			res = core.Result{Status: core.StatusUnknown, Reason: reason}
		} else if s.portfolio != nil {
			res = s.portfolio.Solve(j.script.Problem, backend.Options{
				Parallel:  s.cfg.Solve.Parallel,
				MaxRounds: s.cfg.Solve.MaxRounds,
			}, j.ec)
		} else {
			res = core.SolveCtx(j.script.Problem, s.cfg.Solve, j.ec)
		}
	})
	if d != nil {
		res = core.Result{Status: core.StatusUnknown, Reason: "panic: " + d.Value, Fault: d}
	}
	if res.Fault != nil {
		s.ctr.faultsContain.Add(1)
		s.recordFault(res.Fault)
	}
	switch res.Status {
	case core.StatusSat:
		s.ctr.solvedSat.Add(1)
	case core.StatusUnsat:
		s.ctr.solvedUnsat.Add(1)
	default:
		if j.ec.TimedOut() {
			s.ctr.timeouts.Add(1)
		} else {
			s.ctr.solvedUnknown.Add(1)
		}
	}
	s.stats.Merge(j.ec.Stats())

	// Cache only settled verdicts of canonicalizable problems. A
	// timed-out or cancelled run says nothing about the problem, and an
	// unknown depends on the round budget.
	if j.canon != nil && !j.noCache && !j.ec.Expired() {
		switch res.Status {
		case core.StatusSat:
			s.cache.put(j.canon.Hash, verdict{
				status:  core.StatusSat,
				witness: j.canon.WitnessOf(res.Model),
				backend: res.Backend,
			})
		case core.StatusUnsat:
			s.cache.put(j.canon.Hash, verdict{status: core.StatusUnsat, backend: res.Backend})
		}
	}
	j.done <- jobResult{res: res}
}

// recordFault keeps the newest faultLogCap contained-panic diagnostics
// for /stats.
func (s *Server) recordFault(d *fault.Diagnostic) {
	s.faults.Lock()
	defer s.faults.Unlock()
	s.faults.recent = append(s.faults.recent, d)
	if n := len(s.faults.recent); n > faultLogCap {
		s.faults.recent = s.faults.recent[n-faultLogCap:]
	}
}

// modelOf renders an assignment under the script's declared names.
// Variables the model leaves unassigned default to "" and 0, matching
// the concrete evaluator. Length variables are internal, not reported.
func modelOf(script *smtlib.Script, a *strcon.Assignment) *modelJSON {
	if a == nil {
		return nil
	}
	m := &modelJSON{}
	if len(script.StrVars) > 0 {
		m.Strings = make(map[string]string, len(script.StrVars))
		for name, v := range script.StrVars {
			m.Strings[name] = a.Str[v]
		}
	}
	if len(script.IntVars) > 0 {
		m.Ints = make(map[string]string, len(script.IntVars))
		for name, v := range script.IntVars {
			m.Ints[name] = a.Int.Value(v).String()
		}
	}
	return m
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	UptimeMS float64      `json:"uptime_ms"`
	Requests requestStats `json:"requests"`
	Cache    cacheStats   `json:"cache"`
	Queue    queueStats   `json:"queue"`
	Faults   faultStats   `json:"faults"`
	// Portfolio reports the racing scheduler's cumulative win rates and
	// recent decisions; absent unless the server runs with -portfolio.
	Portfolio *portfolio.Snapshot `json:"portfolio,omitempty"`
	Engine    *engine.Snapshot    `json:"engine"`
}

// faultStats surfaces contained panics: the total and the most recent
// diagnostics (full trimmed stacks), keyed by the fault_id that error
// responses carry.
type faultStats struct {
	Contained int64               `json:"contained"`
	Recent    []*fault.Diagnostic `json:"recent,omitempty"`
}

type requestStats struct {
	Accepted       int64 `json:"accepted"`
	ParseErrors    int64 `json:"parse_errors"`
	RejectedQueue  int64 `json:"rejected_queue_full"`
	RejectedDrain  int64 `json:"rejected_draining"`
	Sat            int64 `json:"sat"`
	Unsat          int64 `json:"unsat"`
	Unknown        int64 `json:"unknown"`
	Timeouts       int64 `json:"timeouts"`
	CacheServed    int64 `json:"cache_served"`
	RevalFailures  int64 `json:"revalidation_failures"`
	Uncacheable    int64 `json:"uncacheable"`
	ClientsGone    int64 `json:"clients_gone"`
	ActiveRequests int64 `json:"active"`
}

type cacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type queueStats struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

func (s *Server) snapshotStats() statsResponse {
	hits, misses, evictions := s.cache.counters()
	return statsResponse{
		UptimeMS: msSince(s.start),
		Requests: requestStats{
			Accepted:       s.ctr.requests.Load(),
			ParseErrors:    s.ctr.parseErrors.Load(),
			RejectedQueue:  s.ctr.rejectedQueue.Load(),
			RejectedDrain:  s.ctr.rejectedDrain.Load(),
			Sat:            s.ctr.solvedSat.Load(),
			Unsat:          s.ctr.solvedUnsat.Load(),
			Unknown:        s.ctr.solvedUnknown.Load(),
			Timeouts:       s.ctr.timeouts.Load(),
			CacheServed:    s.ctr.cacheServed.Load(),
			RevalFailures:  s.ctr.revalFailures.Load(),
			Uncacheable:    s.ctr.uncacheable.Load(),
			ClientsGone:    s.ctr.clientsGone.Load(),
			ActiveRequests: s.ctr.activeRequests.Load(),
		},
		Cache: cacheStats{
			Entries:   s.cache.len(),
			Capacity:  s.cfg.CacheEntries,
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Queue: queueStats{
			Depth:    len(s.jobs),
			Capacity: s.cfg.QueueDepth,
			Workers:  s.cfg.Workers,
		},
		Faults:    s.snapshotFaults(),
		Portfolio: s.snapshotPortfolio(),
		Engine:    s.stats.Snapshot(),
	}
}

func (s *Server) snapshotPortfolio() *portfolio.Snapshot {
	if s.portfolio == nil {
		return nil
	}
	snap := s.portfolio.Snapshot()
	return &snap
}

func (s *Server) snapshotFaults() faultStats {
	s.faults.Lock()
	recent := append([]*fault.Diagnostic(nil), s.faults.recent...)
	s.faults.Unlock()
	return faultStats{Contained: s.ctr.faultsContain.Load(), Recent: recent}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotStats())
}

// handleMetrics is the flat machine-readable view: one JSON object of
// numeric gauges/counters, keys stable and sorted by encoding/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.snapshotStats()
	m := map[string]float64{
		"uptime_ms":                     st.UptimeMS,
		"requests_accepted_total":       float64(st.Requests.Accepted),
		"requests_parse_errors_total":   float64(st.Requests.ParseErrors),
		"requests_rejected_queue_total": float64(st.Requests.RejectedQueue),
		"requests_rejected_drain_total": float64(st.Requests.RejectedDrain),
		"requests_sat_total":            float64(st.Requests.Sat),
		"requests_unsat_total":          float64(st.Requests.Unsat),
		"requests_unknown_total":        float64(st.Requests.Unknown),
		"requests_timeouts_total":       float64(st.Requests.Timeouts),
		"requests_cache_served_total":   float64(st.Requests.CacheServed),
		"requests_reval_failures_total": float64(st.Requests.RevalFailures),
		"requests_uncacheable_total":    float64(st.Requests.Uncacheable),
		"requests_clients_gone_total":   float64(st.Requests.ClientsGone),
		"requests_active":               float64(st.Requests.ActiveRequests),
		"cache_entries":                 float64(st.Cache.Entries),
		"cache_capacity":                float64(st.Cache.Capacity),
		"cache_hits_total":              float64(st.Cache.Hits),
		"cache_misses_total":            float64(st.Cache.Misses),
		"cache_evictions_total":         float64(st.Cache.Evictions),
		"queue_depth":                   float64(st.Queue.Depth),
		"queue_capacity":                float64(st.Queue.Capacity),
		"workers":                       float64(st.Queue.Workers),
		"faults_contained_total":        float64(st.Faults.Contained),
	}
	s.writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admission.RLock()
	draining := s.draining
	s.admission.RUnlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}
