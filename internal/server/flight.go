package server

import "sync"

// flightTable implements dedup-in-flight: concurrent requests whose
// problems share a canonical hash coalesce onto one underlying solve.
// The first arrival becomes the leader (it is admitted and solved
// normally); later arrivals attach to the leader's flight and receive
// the same verdict, transported onto their own parse exactly like a
// cache hit — so all waiters observe the identical verdict and
// witness, and the cache fill happens once.
//
// A flight that resolves unsettled (timeout, cancellation, fault, a
// leader that was never admitted) promises nothing about the problem:
// waiters fall back and re-enter the dispatch path themselves rather
// than inheriting a verdict that was the leader's budget, not the
// problem's answer.
type flightTable struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-flight canonical problem. The fields below done are
// written exactly once, before done closes, and read only after.
type flight struct {
	hash string
	done chan struct{}

	settled bool
	v       verdict // canonical-coordinate verdict when settled
	reason  string  // unknown classification when not settled

	subs []func(*flight) // callbacks for waiters that do not block (batch)
}

func newFlightTable() *flightTable {
	return &flightTable{flights: make(map[string]*flight)}
}

// join returns the flight for hash and whether the caller is its
// leader. A leader must eventually resolve the flight — even on its
// failure paths — or followers wait forever.
func (t *flightTable) join(hash string) (*flight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.flights[hash]; ok {
		return f, false
	}
	f := &flight{hash: hash, done: make(chan struct{})}
	t.flights[hash] = f
	return f, true
}

// subscribe registers fn to run when fl resolves; if fl has already
// resolved, fn runs immediately. Callbacks run outside the table lock,
// on the resolving goroutine (a worker, or the drain path).
func (t *flightTable) subscribe(fl *flight, fn func(*flight)) {
	t.mu.Lock()
	select {
	case <-fl.done:
		t.mu.Unlock()
		fn(fl)
		return
	default:
	}
	fl.subs = append(fl.subs, fn)
	t.mu.Unlock()
}

// resolve publishes the leader's outcome: the flight leaves the table
// first (new arrivals for the hash start a fresh flight), then waiters
// wake and subscribers run.
func (t *flightTable) resolve(fl *flight, settled bool, v verdict, reason string) {
	t.mu.Lock()
	delete(t.flights, fl.hash)
	fl.settled, fl.v, fl.reason = settled, v, reason
	subs := fl.subs
	fl.subs = nil
	close(fl.done)
	t.mu.Unlock()
	for _, fn := range subs {
		fn(fl)
	}
}
