package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/smtlib"
)

// liveShard is one real trauserve shard on a real TCP socket: its own
// Server, worker pool, and http.Server. kill() models a SIGKILL from
// the cluster's point of view — the socket drops mid-conversation, no
// drain, no goodbye.
type liveShard struct {
	addr      string
	srv       *Server
	hs        *http.Server
	serveDone chan error
}

// kill severs the shard from the network abruptly (listener and all
// live connections closed). The solver process state is reaped later
// by stop, so goroutine accounting stays clean.
func (s *liveShard) kill() {
	s.hs.Close()
	<-s.serveDone
}

func (s *liveShard) stop(t *testing.T) {
	t.Helper()
	s.hs.Close()
	select {
	case <-s.serveDone:
	default:
	}
	if err := s.srv.Shutdown(context.Background()); err != nil {
		t.Errorf("shard %s shutdown: %v", s.addr, err)
	}
}

// startShardCluster boots n shards on pre-assigned loopback ports, so
// every shard knows the full address list (and its own place in it)
// before serving — exactly how -shards/-self wires a real cluster.
func startShardCluster(t *testing.T, n int, mk func(self string, addrs []string) Config) ([]*liveShard, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	shards := make([]*liveShard, n)
	for i := range shards {
		srv := New(mk(addrs[i], addrs))
		hs := &http.Server{Handler: srv}
		done := make(chan error, 1)
		go func(ln net.Listener) { done <- hs.Serve(ln) }(listeners[i])
		shards[i] = &liveShard{addr: addrs[i], srv: srv, hs: hs, serveDone: done}
	}
	return shards, addrs
}

// TestPeerCacheFill pins the distributed verdict cache: a shard that
// misses locally asks the canonical hash's owner before solving, the
// filled verdict re-validates against the requesting parse, and the
// fill is adopted so later requests are plain local hits.
func TestPeerCacheFill(t *testing.T) {
	before := fault.Snapshot()
	shards, addrs := startShardCluster(t, 2, func(self string, all []string) Config {
		return Config{Workers: 2, Peers: cluster.NewPeers(self, all, nil)}
	})

	src := qosSat(4242)
	script, err := smtlib.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	canon, err := smtlib.Canonicalize(script.Problem)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	ownerAddr := cluster.NewRing(addrs, 0).Owner(canon.Hash)
	var owner, other *liveShard
	for _, sh := range shards {
		if sh.addr == ownerAddr {
			owner = sh
		} else {
			other = sh
		}
	}

	// Solve on the owner: fills its cache.
	resp, code := postSolve(t, "http://"+owner.addr, solveRequest{SMTLIB: src})
	if code != 200 || resp.Status != "sat" || resp.PeerFilled {
		t.Fatalf("owner solve: code %d status %q peer_filled %v", code, resp.Status, resp.PeerFilled)
	}

	// The non-owner misses locally, fills from the owner, and serves
	// without solving.
	resp, code = postSolve(t, "http://"+other.addr, solveRequest{SMTLIB: src})
	if code != 200 || resp.Status != "sat" {
		t.Fatalf("peer-filled solve: code %d status %q", code, resp.Status)
	}
	if !resp.PeerFilled || !resp.Cached {
		t.Fatalf("non-owner response not marked peer-filled+cached: %+v", resp)
	}
	if resp.Witness == nil {
		t.Fatal("peer-filled sat verdict without witness")
	}

	// The fill was adopted: the next request is a plain local hit.
	resp, code = postSolve(t, "http://"+other.addr, solveRequest{SMTLIB: src})
	if code != 200 || !resp.Cached || resp.PeerFilled {
		t.Fatalf("post-fill request: code %d cached %v peer_filled %v, want a local hit",
			code, resp.Cached, resp.PeerFilled)
	}

	ownerStats := getStats(t, "http://"+owner.addr)
	otherStats := getStats(t, "http://"+other.addr)
	if ownerStats.Cluster == nil || ownerStats.Cluster.PeerServed != 1 {
		t.Errorf("owner cluster stats = %+v, want peer_served 1", ownerStats.Cluster)
	}
	if otherStats.Cluster == nil || otherStats.Cluster.PeerFills != 1 {
		t.Errorf("non-owner cluster stats = %+v, want peer_fills 1", otherStats.Cluster)
	}

	for _, sh := range shards {
		sh.stop(t)
	}
	fault.CheckLeaks(t, before)
}

// TestDifferentialClusterVsDirect is the cluster soundness gate: every
// bench generator solved through a 3-shard routed cluster must agree
// with a direct core.Solve — including after one shard is killed
// abruptly mid-load. Zero lost requests (every POST answers 200), zero
// SAT<->UNSAT flips, every served witness validates, and no goroutine
// leaks once the cluster is torn down.
func TestDifferentialClusterVsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite solves the full bench corpus twice")
	}
	before := fault.Snapshot()
	const budget = 20 * time.Second
	shards, addrs := startShardCluster(t, 3, func(self string, all []string) Config {
		return Config{
			Workers: 4, QueueDepth: 64,
			DefaultTimeout: budget, MaxTimeout: budget,
			Peers: cluster.NewPeers(self, all, nil),
		}
	})
	local := New(Config{Workers: 2, DefaultTimeout: budget, MaxTimeout: budget})
	rt, err := cluster.New(cluster.Config{
		Shards:          addrs,
		Local:           local,
		ProbeInterval:   50 * time.Millisecond,
		BreakerCooldown: 250 * time.Millisecond,
		MaxRetries:      2,
		RetryBase:       5 * time.Millisecond,
		RequestTimeout:  budget + 10*time.Second,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	front := httptest.NewServer(rt)

	insts := differentialInstances()
	killAt := len(insts) / 3
	for i, inst := range insts {
		if i == killAt {
			// SIGKILL one shard mid-load: in-flight and future requests
			// must fail over without losing a single verdict.
			shards[0].kill()
		}
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			src, err := smtlib.Write(inst.Build())
			if err != nil {
				t.Skipf("instance not writable as SMT-LIB: %v", err)
			}
			resp, code := postSolve(t, front.URL, solveRequest{SMTLIB: src})
			if code != 200 {
				t.Fatalf("request lost: cluster answered %d", code)
			}

			script, err := smtlib.Parse(src)
			if err != nil {
				t.Fatalf("re-parsing written source: %v", err)
			}
			ec := engine.WithTimeout(budget)
			direct := core.SolveCtx(script.Problem, core.Options{}, ec)
			if resp.Status != direct.Status.String() {
				excused := resp.Status == "unknown" && (resp.TimedOut || resp.Reason != "") ||
					direct.Status == core.StatusUnknown && ec.TimedOut()
				if !excused {
					t.Fatalf("verdict flip: cluster %q, direct %v", resp.Status, direct.Status)
				}
				t.Logf("verdicts differ under resource limits (cluster %q, direct %v)", resp.Status, direct.Status)
			}
			if resp.Status == "sat" {
				if resp.Witness == nil {
					t.Fatal("cluster sat without witness")
				}
				w := witnessFromJSON(t, resp.Witness)
				fresh, err := smtlib.Parse(src)
				if err != nil {
					t.Fatalf("parsing for validation: %v", err)
				}
				canon, err := smtlib.Canonicalize(fresh.Problem)
				if err != nil {
					t.Fatalf("canonicalizing for validation: %v", err)
				}
				a := canon.Assignment(w)
				if a == nil || !fresh.Problem.Eval(a) {
					t.Fatal("served witness fails concrete evaluation")
				}
			}
		})
	}

	// The dead shard's breaker must have opened under the flood.
	st := rt.Snapshot(false)
	opened := false
	for _, sh := range st.Shards {
		if sh.Addr == shards[0].addr && sh.Breaker != "closed" {
			opened = true
		}
	}
	if !opened {
		t.Error("killed shard's breaker never opened")
	}
	if st.Failovers == 0 {
		t.Error("no failovers recorded though a shard died mid-load")
	}

	front.Close()
	rt.Close()
	if err := local.Shutdown(context.Background()); err != nil {
		t.Errorf("local fallback shutdown: %v", err)
	}
	for _, sh := range shards {
		sh.stop(t)
	}
	fault.CheckLeaks(t, before)
}

// TestClusterNetworkChaosSweep drives the network fault boundary the
// way the engine chaos tests drive Poll sites: one counting pass
// learns how many hops the workload takes, then every (k, op) pair
// injects exactly one fault — a refused connection, a black-holed
// stall, or a mid-body cut — at the k-th hop. Under every injection
// the workload must still settle completely and correctly: the
// robustness stack turns network faults into latency, never into lost
// requests or flipped verdicts.
func TestClusterNetworkChaosSweep(t *testing.T) {
	before := fault.Snapshot()
	type problem struct {
		src  string
		want string
	}
	problems := []problem{
		{qosSat(91), "sat"},
		{qosUnsat(92), "unsat"},
		{qosSat(93), "sat"},
		{qosUnsat(94), "unsat"},
	}
	for _, p := range problems {
		if got := directStatus(t, p.src); got != p.want {
			t.Fatalf("workload problem solves %q directly, want %q", got, p.want)
		}
	}

	run := func(t *testing.T, sched *fault.Schedule) {
		t.Helper()
		shards, addrs := startShardCluster(t, 3, func(self string, all []string) Config {
			return Config{Workers: 2}
		})
		rt, err := cluster.New(cluster.Config{
			Shards:        addrs,
			ProbeInterval: time.Hour, // quiet probes: hop counts stay deterministic
			MaxRetries:    2,
			RetryBase:     time.Millisecond,
			HedgeDelay:    time.Hour, // no hedges: one hop per clean request
			HopTimeout:    300 * time.Millisecond,
			Fault:         sched,
		})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		front := httptest.NewServer(rt)
		defer func() {
			front.Close()
			rt.Close()
			for _, sh := range shards {
				sh.stop(t)
			}
		}()
		for i, p := range problems {
			resp, code := postSolve(t, front.URL, solveRequest{SMTLIB: p.src})
			if code != 200 {
				t.Fatalf("request %d lost under injection: code %d", i, code)
			}
			if resp.Status != p.want {
				t.Fatalf("request %d verdict %q under injection, want %q", i, resp.Status, p.want)
			}
		}
	}

	counting := fault.AtNet(0, fault.NetNone)
	run(t, counting)
	hops := counting.NetVisits()
	if hops == 0 {
		t.Fatal("counting pass saw no network hops")
	}
	t.Logf("workload takes %d hops clean", hops)

	for _, op := range []fault.NetOp{fault.NetConnectFail, fault.NetStall, fault.NetCut} {
		for k := uint64(1); k <= hops; k++ {
			t.Run(op.String()+"@"+strconv.FormatUint(k, 10), func(t *testing.T) {
				sched := fault.AtNet(k, op)
				run(t, sched)
				if !sched.NetFired() {
					t.Errorf("schedule never fired at hop %d", k)
				}
			})
		}
	}
	fault.CheckLeaks(t, before)
}

// TestTenantRejectRetryAfterMapping pins the 429 backoff hint to the
// same backlog->drain-time mapping the queue-full 503 uses: a dry
// tenant with queued batch work is told to wait proportionally to its
// own backlog, not a constant.
func TestTenantRejectRetryAfterMapping(t *testing.T) {
	s := &Server{cfg: Config{Workers: 3}.withDefaults(), sched: newScheduler(8, 100)}
	s.cfg.Workers = 3
	for i := 0; i < 7; i++ {
		if err := s.sched.push(&job{class: classBatch, tenant: "hot"}); err != nil {
			t.Fatalf("push backlog job %d: %v", i, err)
		}
	}

	rr := httptest.NewRecorder()
	s.rejectTenant(rr, "hot")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("rejectTenant wrote %d, want 429", rr.Code)
	}
	want := strconv.Itoa(retryAfterSecs(7, 3))
	if got := rr.Header().Get("Retry-After"); got != want {
		t.Fatalf("Retry-After for a backlog of 7 over 3 workers = %q, want %q (the 503 mapping)", got, want)
	}

	// A dry tenant with no queued work gets the mapping's floor.
	rr = httptest.NewRecorder()
	s.rejectTenant(rr, "idle")
	if got := rr.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After with empty backlog = %q, want the floor \"1\"", got)
	}
}

// TestTenantRefillRecovers pins the token-bucket satellite end to end:
// a tenant that drains its pool is refused, but with -tenantrefill its
// admission re-opens on its own once the bucket earns its way back
// above zero.
func TestTenantRefillRecovers(t *testing.T) {
	// A Luhn(6) solve charges ~130k units, so a 1500-unit bucket trips
	// mid-solve on the first request; the recovery probes (~350 units
	// each) need less than one 20ms refill tick at 50k units/sec.
	s := New(Config{Workers: 2, TenantBudget: 1500, TenantRefill: 50000})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	slow, err := smtlib.Write(bench.Luhn(6).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	sawDry := false
	for i := 0; i < 50 && !sawDry; i++ {
		resp, code := postTenant(t, ts.URL, "bursty", solveRequest{SMTLIB: slow, NoCache: true})
		switch code {
		case http.StatusOK:
			if resp.Status == "unknown" && resp.Reason != "" {
				sawDry = true // the solve itself tripped the pool
			}
		case http.StatusTooManyRequests:
			sawDry = true
		default:
			t.Fatalf("solve %d: status %d", i, code)
		}
	}
	if !sawDry {
		t.Fatal("tenant pool never ran dry")
	}

	// Unlike the prepaid pool (dry for the life of the process), the
	// bucket must recover: cheap unique problems so the verdict cache
	// cannot mask admission.
	recovered := false
	for i := 0; i < 150 && !recovered; i++ {
		resp, code := postTenant(t, ts.URL, "bursty", solveRequest{SMTLIB: qosSat(10000 + i)})
		if code == http.StatusOK && resp.Status == "sat" {
			recovered = true
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatal("refilling tenant pool never re-opened admission")
	}
}
