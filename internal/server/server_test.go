package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/smtlib"
)

// postSolve submits one problem and decodes the reply.
func postSolve(t *testing.T, url string, req solveRequest) (solveResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	httpResp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer httpResp.Body.Close()
	var resp solveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, httpResp.StatusCode
}

func readExample(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "smt2", name))
	if err != nil {
		t.Fatalf("reading example: %v", err)
	}
	return string(b)
}

func TestSolveEndpoint(t *testing.T) {
	s := New(Config{Workers: 2})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "quickstart.smt2")
	resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if code != http.StatusOK {
		t.Fatalf("status code = %d, want 200", code)
	}
	if resp.Status != "sat" || resp.Cached {
		t.Fatalf("first solve = %q cached=%v, want cold sat", resp.Status, resp.Cached)
	}
	if resp.Model == nil || resp.Model.Strings["x"] == "" || resp.Model.Ints["n"] != "42" {
		t.Fatalf("model missing or wrong: %+v", resp.Model)
	}
	if resp.Witness == nil || len(resp.Witness.Str) == 0 {
		t.Fatalf("witness missing: %+v", resp.Witness)
	}
	if resp.Canonical == "" {
		t.Fatal("canonical hash missing")
	}

	// Identical repeat: served from cache.
	again, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if again.Status != "sat" || !again.Cached {
		t.Fatalf("repeat = %q cached=%v, want cached sat", again.Status, again.Cached)
	}
	if again.Canonical != resp.Canonical {
		t.Fatal("repeat produced a different canonical hash")
	}

	// Alpha-renamed variant of the quickstart example: same canonical
	// hash, still a cache hit, model under the NEW names.
	renamed := `(set-logic QF_SLIA)
(declare-fun value () String)
(declare-fun num () Int)
(assert (= num (str.to_int value)))
(assert (= num 42))
(assert (= (str.len value) 4))
(check-sat)`
	ren, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: renamed})
	if !ren.Cached || ren.Status != "sat" {
		t.Fatalf("alpha-renamed request = %q cached=%v, want cached sat", ren.Status, ren.Cached)
	}
	if ren.Canonical != resp.Canonical {
		t.Fatal("alpha-renamed problem hashed differently")
	}
	if ren.Model == nil || ren.Model.Ints["num"] != "42" {
		t.Fatalf("cached model not under renamed variables: %+v", ren.Model)
	}

	// no_cache bypasses the cache.
	fresh, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src, NoCache: true})
	if fresh.Cached {
		t.Fatal("no_cache request served from cache")
	}
}

func TestSolveUnsatCached(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := `(declare-fun x () String)
(assert (= (str.len x) 3))
(assert (= x "ab"))
(check-sat)`
	resp, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if resp.Status != "unsat" || resp.Cached {
		t.Fatalf("first solve = %q cached=%v, want cold unsat", resp.Status, resp.Cached)
	}
	again, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if again.Status != "unsat" || !again.Cached {
		t.Fatalf("repeat = %q cached=%v, want cached unsat", again.Status, again.Cached)
	}
}

func TestSolveBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, MaxRequestBytes: 512})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		name string
		body string
		code int
	}{
		{"not json", "pure garbage", http.StatusBadRequest},
		{"parse error", `{"smtlib": "(assert (="}`, http.StatusBadRequest},
		{"oversized", fmt.Sprintf(`{"smtlib": %q}`, strings.Repeat("x", 600)),
			http.StatusRequestEntityTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
}

func TestSolveTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src, err := smtlib.Write(bench.Luhn(9).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src, TimeoutMS: 50})
	if code != http.StatusOK {
		t.Fatalf("status code = %d, want 200", code)
	}
	if resp.Status != "unknown" || !resp.TimedOut {
		t.Fatalf("got %q timed_out=%v, want unknown timed_out", resp.Status, resp.TimedOut)
	}
	// A timed-out run must not poison the cache.
	again, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src, TimeoutMS: 50})
	if again.Cached {
		t.Fatal("timed-out verdict was served from cache")
	}
}

func TestStatsAndMetricsEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "date.smt2")
	if resp, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src}); resp.Status != "sat" {
		t.Fatalf("date example = %q, want sat", resp.Status)
	}
	postSolve(t, ts.URL, solveRequest{SMTLIB: src}) // cache hit

	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer httpResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if st.Requests.Sat != 1 {
		t.Fatalf("stats sat = %d, want 1", st.Requests.Sat)
	}
	if st.Requests.CacheServed != 1 || st.Cache.Hits != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats = served %d hits %d entries %d, want 1/1/1",
			st.Requests.CacheServed, st.Cache.Hits, st.Cache.Entries)
	}
	if st.Queue.Workers != 1 || st.Queue.Capacity != 2 {
		t.Fatalf("queue stats = %+v", st.Queue)
	}
	if st.Engine == nil || len(st.Engine.Children) == 0 {
		t.Fatal("engine stats snapshot empty after a solve")
	}

	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer metResp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(metResp.Body).Decode(&metrics); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if metrics["requests_sat_total"] != 1 || metrics["cache_hits_total"] != 1 {
		t.Fatalf("metrics = %v", metrics)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "jsarray.smt2")
	if resp, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src}); resp.Status != "sat" {
		t.Fatalf("jsarray example = %q, want sat", resp.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// New work is rejected with an explicit drain response.
	_, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown solve status = %d, want 503", code)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", health.StatusCode)
	}
}

// TestCacheHitFaster is the acceptance criterion: a repeated identical
// request is served from cache measurably faster than the cold solve.
func TestCacheHitFaster(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: 60 * time.Second, MaxTimeout: 60 * time.Second})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src, err := smtlib.Write(bench.Luhn(7).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	coldStart := time.Now()
	cold, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	coldDur := time.Since(coldStart)
	if cold.Status != "sat" || cold.Cached {
		t.Fatalf("cold solve = %q cached=%v, want cold sat", cold.Status, cold.Cached)
	}
	warmStart := time.Now()
	warm, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	warmDur := time.Since(warmStart)
	if warm.Status != "sat" || !warm.Cached {
		t.Fatalf("warm solve = %q cached=%v, want cached sat", warm.Status, warm.Cached)
	}
	if warmDur >= coldDur/2 {
		t.Fatalf("cache hit not measurably faster: cold %v, warm %v", coldDur, warmDur)
	}
	t.Logf("cold %v, warm %v", coldDur, warmDur)
}
