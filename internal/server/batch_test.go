package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/smtlib"
)

func TestBatchEndpointBasics(t *testing.T) {
	s := New(Config{Workers: 2})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "quickstart.smt2")
	acc, code := postBatch(t, ts.URL, "team-a", batchRequest{Instances: []batchInstance{
		{SMTLIB: src},            // sat
		{SMTLIB: qosUnsat(9)},    // unsat
		{SMTLIB: "(assert (= x"}, // parse error: settles instantly, batch survives
		{SMTLIB: src},            // duplicate: cache or coalesce
	}})
	if code != http.StatusAccepted {
		t.Fatalf("POST /batch: status %d, want 202", code)
	}
	if acc.JobID == "" || acc.Tenant != "team-a" || acc.Instances != 4 {
		t.Fatalf("202 body = %+v", acc)
	}

	jr := pollJob(t, ts.URL, acc.JobID, 30*time.Second)
	if jr.State != "done" || jr.Pending != 0 || jr.Settled != 4 || jr.Tenant != "team-a" {
		t.Fatalf("final job = %+v", jr)
	}
	if jr.Results[0].Status != "sat" || jr.Results[0].Model == nil ||
		jr.Results[0].Model.Ints["n"] != "42" {
		t.Fatalf("instance 0 = %+v, want sat with n=42", jr.Results[0])
	}
	if jr.Results[1].Status != "unsat" {
		t.Fatalf("instance 1 = %+v, want unsat", jr.Results[1])
	}
	if jr.Results[2].Status != "error" || jr.Results[2].Error == "" {
		t.Fatalf("instance 2 = %+v, want a parse error", jr.Results[2])
	}
	if jr.Results[3].Status != "sat" || !(jr.Results[3].Cached || jr.Results[3].Coalesced) {
		t.Fatalf("instance 3 = %+v, want sat via cache or coalescing", jr.Results[3])
	}

	// Unknown job ids are 404.
	resp, err := http.Get(ts.URL + "/jobs/no-such-job")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	st := getStats(t, ts.URL)
	if st.Batch.Jobs != 1 || st.Batch.Instances != 4 || st.Batch.Stored != 1 {
		t.Fatalf("batch stats = %+v", st.Batch)
	}
}

func TestBatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatchInstances: 2})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, code := postBatch(t, ts.URL, "t", batchRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	three := []batchInstance{{SMTLIB: "x"}, {SMTLIB: "x"}, {SMTLIB: "x"}}
	if _, code := postBatch(t, ts.URL, "t", batchRequest{Instances: three}); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", code)
	}
}

// TestBatchBacklogRejectionDerivesRetryAfter: a batch that would
// overflow its tenant's backlog is rejected whole with 503, and the
// Retry-After header scales with the backlog the request observed.
func TestBatchBacklogRejectionDerivesRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, BatchBacklog: 4})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	slow, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	fill := make([]batchInstance, 4)
	for i := range fill {
		fill[i] = batchInstance{SMTLIB: slow, NoCache: true}
	}
	if _, code := postBatch(t, ts.URL, "bulk", batchRequest{Instances: fill, TimeoutMS: 2000}); code != http.StatusAccepted {
		t.Fatalf("fill batch: status %d, want 202", code)
	}

	body, _ := json.Marshal(batchRequest{Instances: fill, TimeoutMS: 2000})
	hr, _ := http.NewRequest("POST", ts.URL+"/batch", bytes.NewReader(body))
	hr.Header.Set(tenantHeader, "bulk")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow batch: status %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
	// Backlog is at least 3 with one worker (one dequeued), so the
	// derived hint must exceed the 1-second floor.
	if secs < 2 {
		t.Fatalf("Retry-After = %d does not reflect a %d-deep backlog", secs, 3)
	}

	// Another tenant's backlog is independent: same batch admitted.
	if _, code := postBatch(t, ts.URL, "other", batchRequest{Instances: fill, TimeoutMS: 2000}); code != http.StatusAccepted {
		t.Fatalf("other tenant's batch: status %d, want 202", code)
	}
}

func TestJobStoreEvictsOldestDoneJob(t *testing.T) {
	s := New(Config{Workers: 2, MaxJobs: 1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	one := []batchInstance{{SMTLIB: qosSat(1)}}
	acc1, code := postBatch(t, ts.URL, "t", batchRequest{Instances: one})
	if code != http.StatusAccepted {
		t.Fatalf("first batch: status %d", code)
	}
	pollJob(t, ts.URL, acc1.JobID, 30*time.Second)

	// The store is full but its only job is done: the next batch
	// evicts it.
	acc2, code := postBatch(t, ts.URL, "t", batchRequest{Instances: one})
	if code != http.StatusAccepted {
		t.Fatalf("second batch: status %d, want 202 after eviction", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + acc1.JobID)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job: status %d, want 404", resp.StatusCode)
	}
	pollJob(t, ts.URL, acc2.JobID, 30*time.Second)
}

func TestJobStoreFullOfRunningJobsRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxJobs: 1, BatchBacklog: 16})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	slow, err := smtlib.Write(bench.Luhn(8).Build())
	if err != nil {
		t.Fatalf("writing luhn: %v", err)
	}
	running := []batchInstance{{SMTLIB: slow, NoCache: true}, {SMTLIB: slow, NoCache: true}}
	if _, code := postBatch(t, ts.URL, "t", batchRequest{Instances: running, TimeoutMS: 2000}); code != http.StatusAccepted {
		t.Fatalf("first batch: status %d", code)
	}
	if _, code := postBatch(t, ts.URL, "t", batchRequest{Instances: running, TimeoutMS: 2000}); code != http.StatusServiceUnavailable {
		t.Fatalf("batch into a full store of running jobs: status %d, want 503", code)
	}
}

// TestServerConcurrentRevalidationEvictsExactlyOnce is the
// cache-poisoning race gate: many concurrent identical requests hit a
// cached witness that fails revalidation. Exactly one of them evicts
// the poisoned entry (removeIf is conditional on the entry identity),
// exactly one real solve refills it, and everyone still receives the
// correct verdict.
func TestServerConcurrentRevalidationEvictsExactlyOnce(t *testing.T) {
	s := New(Config{Workers: 2})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := readExample(t, "quickstart.smt2")
	script, err := smtlib.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	canon, err := smtlib.Canonicalize(script.Problem)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	// Poison the cache with a shape-correct, value-wrong witness: the
	// canonical coordinates exist but satisfy nothing (n must be 42).
	poisoned := &smtlib.Witness{
		Str: make([]string, len(canon.StrOrder)),
		Int: make([]*big.Int, len(canon.IntOrder)),
	}
	for i := range poisoned.Int {
		poisoned.Int[i] = big.NewInt(0)
	}
	s.cache.put(canon.Hash, verdict{status: core.StatusSat, witness: poisoned})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
			if code != http.StatusOK || resp.Status != "sat" {
				errs <- errStatus(code, resp.Status)
				return
			}
			if resp.Model.Ints["n"] != "42" {
				errs <- errModel(resp.Model.Ints["n"])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := s.ctr.revalFailures.Load(); got != 1 {
		t.Errorf("revalidation evictions = %d, want exactly 1 across %d concurrent readers", got, clients)
	}
	if got := s.ctr.solvedSat.Load(); got != 1 {
		t.Errorf("real solves = %d, want exactly 1 (the rest coalesce or hit the refilled cache)", got)
	}
	// The refilled entry must serve cleanly now.
	resp, _ := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
	if resp.Status != "sat" || !resp.Cached {
		t.Fatalf("post-refill solve = %q cached=%v, want cached sat", resp.Status, resp.Cached)
	}
}

type statusErr struct {
	code   int
	status string
}

func (e statusErr) Error() string {
	return "solve: status " + strconv.Itoa(e.code) + " verdict " + e.status
}
func errStatus(code int, status string) error { return statusErr{code, status} }

type modelErr struct{ n string }

func (e modelErr) Error() string { return "model n = " + e.n + ", want 42" }
func errModel(n string) error    { return modelErr{n} }
