package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/smtlib"
)

// The async batch API. POST /batch accepts many instances at once and
// answers 202 with a job id; GET /jobs/<id> reports incremental
// per-instance results with settled/pending counts. Batch instances
// run at the low QoS class — they share the cache and dedup-in-flight
// machinery with interactive solves, but never delay them — and debit
// the submitting tenant's budget pool collectively.

// batchRequest is the POST /batch body. TimeoutMS, NoCache, and
// BudgetUnits apply to every instance (an instance may additionally
// opt out of caching for itself).
type batchRequest struct {
	Instances   []batchInstance `json:"instances"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
	NoCache     bool            `json:"no_cache,omitempty"`
	BudgetUnits int64           `json:"budget_units,omitempty"`
}

type batchInstance struct {
	SMTLIB  string `json:"smtlib"`
	NoCache bool   `json:"no_cache,omitempty"`
}

// batchAccepted is the 202 reply to POST /batch.
type batchAccepted struct {
	JobID     string `json:"job_id"`
	Tenant    string `json:"tenant"`
	Instances int    `json:"instances"`
}

// instancePending is the Status of an instance whose solve has not
// finished; every other Status is final.
const instancePending = "pending"

// instanceResult is one instance's slot in a job. Status is "pending"
// until the instance settles; then "sat", "unsat", "unknown", or
// "error" (the instance never solved: parse failure, backlog
// overflow), with the same supporting fields a POST /solve reply
// carries.
type instanceResult struct {
	Index     int          `json:"index"`
	Status    string       `json:"status"`
	Model     *modelJSON   `json:"model,omitempty"`
	Witness   *witnessJSON `json:"witness,omitempty"`
	Canonical string       `json:"canonical_hash,omitempty"`
	Backend   string       `json:"backend,omitempty"`
	Cached    bool         `json:"cached,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	TimedOut  bool         `json:"timed_out,omitempty"`
	Reason    string       `json:"reason,omitempty"`
	Error     string       `json:"error,omitempty"`
	FaultID   string       `json:"fault_id,omitempty"`
}

// jobResponse is the GET /jobs/<id> body. State is "running" while any
// instance is pending and "done" after; Results always has one entry
// per instance, in submission order.
type jobResponse struct {
	ID        string           `json:"id"`
	Tenant    string           `json:"tenant"`
	State     string           `json:"state"`
	Instances int              `json:"instances"`
	Settled   int              `json:"settled"`
	Pending   int              `json:"pending"`
	Results   []instanceResult `json:"results"`
}

// batchJob tracks one submitted batch. Results settle exactly once:
// concurrent deliveries (a worker finishing versus the drain path
// failing the queue) race benignly, first writer wins.
type batchJob struct {
	id      string
	tenant  string
	created time.Time

	mu      sync.Mutex
	results []instanceResult
	pending int
}

func (b *batchJob) settle(idx int, res instanceResult) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.results[idx].Status != instancePending {
		return
	}
	res.Index = idx
	b.results[idx] = res
	b.pending--
}

func (b *batchJob) snapshot() jobResponse {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := jobResponse{
		ID:        b.id,
		Tenant:    b.tenant,
		State:     "done",
		Instances: len(b.results),
		Settled:   len(b.results) - b.pending,
		Pending:   b.pending,
		Results:   append([]instanceResult(nil), b.results...),
	}
	if b.pending > 0 {
		out.State = "running"
	}
	return out
}

// jobStore retains batch jobs for polling, bounded by cap. When full,
// the oldest completed job is evicted to admit a new one; if every
// retained job is still running, admission fails (the caller answers
// 503) rather than dropping live results.
type jobStore struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]*batchJob
	order []string // creation order, for deterministic eviction
	seq   int64
}

func newJobStore(cap int) *jobStore {
	return &jobStore{cap: cap, jobs: make(map[string]*batchJob)}
}

// create allocates a job with n pending instances, or reports that the
// store is full of running jobs.
func (st *jobStore) create(tenant string, n int) (*batchJob, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.jobs) >= st.cap {
		evicted := false
		for i, id := range st.order {
			j := st.jobs[id]
			j.mu.Lock()
			done := j.pending == 0
			j.mu.Unlock()
			if done {
				delete(st.jobs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, false
		}
	}
	st.seq++
	b := &batchJob{
		id:      fmt.Sprintf("job-%d", st.seq),
		tenant:  tenant,
		created: time.Now(),
		results: make([]instanceResult, n),
		pending: n,
	}
	for i := range b.results {
		b.results[i] = instanceResult{Index: i, Status: instancePending}
	}
	st.jobs[b.id] = b
	st.order = append(st.order, b.id)
	return b, true
}

func (st *jobStore) get(id string) *batchJob {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

func (st *jobStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.ctr.activeRequests.Add(1)
	defer s.ctr.activeRequests.Add(-1)

	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBatchBytes)
			return
		}
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	n := len(req.Instances)
	if n == 0 {
		s.writeError(w, http.StatusBadRequest, "batch has no instances")
		return
	}
	if n > s.cfg.MaxBatchInstances {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d instances exceeds the %d-instance limit", n, s.cfg.MaxBatchInstances)
		return
	}

	tenant := tenantOf(r)
	pool := s.tenantPool(tenant)
	if pool.Dry() {
		s.rejectTenant(w, tenant)
		return
	}
	// Admission is whole-batch: a batch that would overflow the
	// tenant's backlog is rejected up front, with a Retry-After derived
	// from the backlog it observed, rather than accepted and then
	// half-failed instance by instance.
	if backlog := s.sched.tenantBacklog(tenant); backlog+n > s.cfg.BatchBacklog {
		s.ctr.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(backlog, s.cfg.Workers)))
		s.writeError(w, http.StatusServiceUnavailable,
			"tenant %q batch backlog full (%d queued)", tenant, backlog)
		return
	}
	bj, ok := s.store.create(tenant, n)
	if !ok {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable,
			"job store full (%d jobs still running)", s.cfg.MaxJobs)
		return
	}

	timeout := s.clampTimeout(req.TimeoutMS)
	budget := s.clampBudget(req.BudgetUnits)
	for i, inst := range req.Instances {
		s.submitInstance(bj, i, inst.SMTLIB, req.NoCache || inst.NoCache, tenant, timeout, budget, pool)
	}
	s.ctr.batchJobs.Add(1)
	s.ctr.batchInstances.Add(int64(n))
	s.writeJSON(w, http.StatusAccepted, batchAccepted{JobID: bj.id, Tenant: tenant, Instances: n})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	// Deliberately not gated on draining: pollers must be able to
	// collect results (including drain-failed ones) until the process
	// exits.
	id := r.PathValue("id")
	bj := s.store.get(id)
	if bj == nil {
		s.writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, bj.snapshot())
}

// submitInstance parses one instance and hands it to the dispatch
// path. Parse failures settle the instance immediately — one bad
// instance never fails its batch.
func (s *Server) submitInstance(bj *batchJob, idx int, src string, noCache bool, tenant string, timeout time.Duration, budget int64, pool *engine.Pool) {
	script, err := smtlib.Parse(src)
	if err != nil {
		s.ctr.parseErrors.Add(1)
		bj.settle(idx, instanceResult{Status: "error", Error: "parsing problem: " + err.Error()})
		return
	}
	canon, err := smtlib.Canonicalize(script.Problem)
	if err != nil {
		canon = nil
		s.ctr.uncacheable.Add(1)
	}
	s.dispatchInstance(bj, idx, script, canon, noCache, tenant, timeout, budget, pool, 0)
}

// dispatchInstance routes one batch instance: cache, then coalescing
// onto an identical in-flight solve, then the tenant's batch queue —
// the same ladder as an interactive request, asynchronous instead of
// blocking. An unsettled flight re-dispatches (attempt+1) until
// maxCoalesceAttempts, after which the instance solves uncoalesced.
func (s *Server) dispatchInstance(bj *batchJob, idx int, script *smtlib.Script, canon *smtlib.Canon, noCache bool, tenant string, timeout time.Duration, budget int64, pool *engine.Pool, attempt int) {
	if s.draining.Load() {
		s.ctr.batchDrained.Add(1)
		bj.settle(idx, instanceResult{Status: "unknown", Reason: "draining"})
		return
	}
	start := time.Now()
	if canon != nil && !noCache {
		if resp, ok := s.cacheLookup(script, canon, start); ok {
			bj.settle(idx, instanceFromResponse(resp))
			return
		}
	}
	var fl *flight
	leader := true
	if canon != nil && !noCache && attempt < maxCoalesceAttempts {
		fl, leader = s.flights.join(canon.Hash)
	}
	if !leader {
		s.flights.subscribe(fl, func(fl *flight) {
			if fl.settled {
				if resp, ok := s.renderVerdict(script, canon, fl.v, false, true, start); ok {
					s.ctr.coalesced.Add(1)
					bj.settle(idx, instanceFromResponse(resp))
					return
				}
			}
			s.ctr.coalesceFallback.Add(1)
			s.dispatchInstance(bj, idx, script, canon, noCache, tenant, timeout, budget, pool, attempt+1)
		})
		return
	}
	j := &job{
		class: classBatch, tenant: tenant,
		script: script, canon: canon, noCache: noCache,
		timeout: timeout, budget: budget, pool: pool,
		fl: fl, admitted: time.Now(),
		deliver: func(out jobOutcome) {
			bj.settle(idx, instanceFromOutcome(script, canon, out))
		},
	}
	if err := s.sched.push(j); err != nil {
		if fl != nil {
			s.flights.resolve(fl, false, verdict{}, "not admitted")
		}
		if errors.Is(err, errSchedDraining) {
			s.ctr.batchDrained.Add(1)
			bj.settle(idx, instanceResult{Status: "unknown", Reason: "draining"})
			return
		}
		// The whole-batch precheck makes this rare (coalesce fallbacks
		// re-entering a queue that filled meanwhile); the instance
		// fails alone, its batch survives.
		s.ctr.rejectedQueue.Add(1)
		bj.settle(idx, instanceResult{Status: "error", Error: "tenant batch backlog full"})
	}
}

// instanceFromResponse converts a rendered verdict (cache hit or
// coalesced flight) into an instance slot.
func instanceFromResponse(r solveResponse) instanceResult {
	return instanceResult{
		Status: r.Status, Model: r.Model, Witness: r.Witness,
		Canonical: r.Canonical, Backend: r.Backend,
		Cached: r.Cached, Coalesced: r.Coalesced,
		TimedOut: r.TimedOut, Reason: r.Reason,
		Error: r.Error, FaultID: r.FaultID,
	}
}

// instanceFromOutcome converts a worker-produced outcome into an
// instance slot.
func instanceFromOutcome(script *smtlib.Script, canon *smtlib.Canon, out jobOutcome) instanceResult {
	res := instanceResult{
		Status:   out.res.Status.String(),
		Backend:  out.res.Backend,
		TimedOut: out.ec.TimedOut(),
		Reason:   out.res.Reason,
	}
	if canon != nil {
		res.Canonical = canon.Hash
	}
	if out.res.Status == core.StatusSat {
		res.Model = modelOf(script, out.res.Model)
		if canon != nil {
			res.Witness = witnessToJSON(canon.WitnessOf(out.res.Model))
		}
	}
	if out.res.Fault != nil {
		res.FaultID = out.res.Fault.ID
		res.Error = "solver panic contained (see /stats faults." + out.res.Fault.ID + ")"
	}
	return res
}
