package server

import (
	"context"
	"math/big"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/smtlib"
)

// witnessFromJSON decodes a served witness back into canonical
// coordinates.
func witnessFromJSON(t *testing.T, w *witnessJSON) *smtlib.Witness {
	t.Helper()
	out := &smtlib.Witness{Str: w.Str, Int: make([]*big.Int, len(w.Int))}
	for i, s := range w.Int {
		v, ok := new(big.Int).SetString(s, 10)
		if !ok {
			t.Fatalf("bad integer in witness: %q", s)
		}
		out.Int[i] = v
	}
	return out
}

// differentialInstances mirrors internal/bench's equivalence corpus:
// every generator of the benchmark tables plus the small end of the
// checkLuhn family.
func differentialInstances() []*bench.Instance {
	var insts []*bench.Instance
	for _, s := range bench.Table1Suites(3) {
		insts = append(insts, s.Instances...)
	}
	for _, s := range bench.Table2Suites(3) {
		insts = append(insts, s.Instances...)
	}
	for k := 2; k <= 4; k++ {
		insts = append(insts, bench.Luhn(k))
	}
	return insts
}

// TestDifferentialServerVsDirect submits every bench generator through
// an in-process trauserve and requires verdict identity with a direct
// core.Solve of the same source (modulo deadline), with every served
// SAT witness validating against a fresh parse of the problem.
func TestDifferentialServerVsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite solves the full bench corpus twice")
	}
	const budget = 20 * time.Second
	s := New(Config{Workers: 4, QueueDepth: 64, DefaultTimeout: budget, MaxTimeout: budget})
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, inst := range differentialInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			src, err := smtlib.Write(inst.Build())
			if err != nil {
				t.Skipf("instance not writable as SMT-LIB: %v", err)
			}

			resp, code := postSolve(t, ts.URL, solveRequest{SMTLIB: src})
			if code != 200 {
				t.Fatalf("server status code = %d", code)
			}

			script, err := smtlib.Parse(src)
			if err != nil {
				t.Fatalf("re-parsing written source: %v", err)
			}
			ec := engine.WithTimeout(budget)
			direct := core.SolveCtx(script.Problem, core.Options{}, ec)

			if resp.Status != direct.Status.String() {
				// Equivalence holds modulo resource limits, exactly as in
				// internal/bench's incremental-vs-fresh suite.
				excused := resp.Status == "unknown" && resp.TimedOut ||
					direct.Status == core.StatusUnknown && ec.TimedOut()
				if !excused {
					t.Fatalf("server %q, direct %v", resp.Status, direct.Status)
				}
				t.Logf("verdicts differ under timeout (server %q, direct %v)", resp.Status, direct.Status)
			}

			if resp.Status == "sat" {
				if resp.Witness == nil {
					t.Fatal("server sat without witness")
				}
				w := witnessFromJSON(t, resp.Witness)
				fresh, err := smtlib.Parse(src)
				if err != nil {
					t.Fatalf("parsing for validation: %v", err)
				}
				canon, err := smtlib.Canonicalize(fresh.Problem)
				if err != nil {
					t.Fatalf("canonicalizing for validation: %v", err)
				}
				a := canon.Assignment(w)
				if a == nil {
					t.Fatalf("served witness shape does not match the problem: %d/%d vs %d/%d",
						len(w.Str), len(w.Int), len(canon.StrOrder), len(canon.IntOrder))
				}
				if !fresh.Problem.Eval(a) {
					t.Fatal("served witness fails concrete evaluation")
				}
			}
		})
	}
}
