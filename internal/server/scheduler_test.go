package server

import (
	"errors"
	"testing"
)

func mkJob(class schedClass, tenant string) *job {
	return &job{class: class, tenant: tenant}
}

func TestSchedulerInteractiveOutranksBatch(t *testing.T) {
	s := newScheduler(4, 16)
	b1 := mkJob(classBatch, "bulk")
	b2 := mkJob(classBatch, "bulk")
	i1 := mkJob(classInteractive, "alice")
	for _, j := range []*job{b1, b2, i1} {
		if err := s.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// The interactive job arrived last but is dequeued first.
	if got := s.pop(); got != i1 {
		t.Fatalf("pop = %+v, want the interactive job", got)
	}
	if got := s.pop(); got != b1 {
		t.Fatalf("pop = %+v, want first batch job", got)
	}
	// Interactive work arriving mid-backlog still jumps the queue.
	i2 := mkJob(classInteractive, "alice")
	if err := s.push(i2); err != nil {
		t.Fatalf("push: %v", err)
	}
	if got := s.pop(); got != i2 {
		t.Fatal("interactive job did not preempt the remaining backlog")
	}
	if got := s.pop(); got != b2 {
		t.Fatal("remaining batch job lost")
	}
}

func TestSchedulerBatchRoundRobinsTenants(t *testing.T) {
	s := newScheduler(4, 16)
	// Tenant "flood" queues 4 jobs before "drip" queues 2: dequeues
	// must alternate, not drain the flood first.
	var flood, drip []*job
	for i := 0; i < 4; i++ {
		j := mkJob(classBatch, "flood")
		flood = append(flood, j)
		if err := s.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		j := mkJob(classBatch, "drip")
		drip = append(drip, j)
		if err := s.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	want := []*job{flood[0], drip[0], flood[1], drip[1], flood[2], flood[3]}
	for i, w := range want {
		if got := s.pop(); got != w {
			t.Fatalf("dequeue %d: got tenant %q, want tenant %q (round-robin violated)",
				i, got.tenant, w.tenant)
		}
	}
	if i, b := s.depths(); i != 0 || b != 0 {
		t.Fatalf("depths after drain = %d,%d", i, b)
	}
}

func TestSchedulerBounds(t *testing.T) {
	s := newScheduler(1, 2)
	if err := s.push(mkJob(classInteractive, "a")); err != nil {
		t.Fatalf("push: %v", err)
	}
	if err := s.push(mkJob(classInteractive, "a")); !errors.Is(err, errSchedFull) {
		t.Fatalf("overfull interactive push = %v, want errSchedFull", err)
	}
	// Batch bounds are per tenant: one tenant filling its backlog does
	// not consume another's.
	for i := 0; i < 2; i++ {
		if err := s.push(mkJob(classBatch, "bulk")); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if err := s.push(mkJob(classBatch, "bulk")); !errors.Is(err, errSchedFull) {
		t.Fatalf("overfull batch push = %v, want errSchedFull", err)
	}
	if err := s.push(mkJob(classBatch, "other")); err != nil {
		t.Fatalf("second tenant rejected by first tenant's backlog: %v", err)
	}
	if got := s.tenantBacklog("bulk"); got != 2 {
		t.Fatalf("tenantBacklog(bulk) = %d, want 2", got)
	}
	if got := s.tenantBacklog("other"); got != 1 {
		t.Fatalf("tenantBacklog(other) = %d, want 1", got)
	}
}

func TestSchedulerCloseOrphansBatchKeepsInteractive(t *testing.T) {
	s := newScheduler(4, 16)
	i1 := mkJob(classInteractive, "alice")
	b1 := mkJob(classBatch, "bulk")
	b2 := mkJob(classBatch, "drip")
	b3 := mkJob(classBatch, "bulk")
	for _, j := range []*job{b1, i1, b2, b3} {
		if err := s.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	orphans := s.close()
	// Deterministic order: ring (admission) order, FIFO within tenant.
	if len(orphans) != 3 || orphans[0] != b1 || orphans[1] != b3 || orphans[2] != b2 {
		t.Fatalf("orphans = %v, want [bulk, bulk, drip] jobs in ring order", orphans)
	}
	if err := s.push(mkJob(classInteractive, "x")); !errors.Is(err, errSchedDraining) {
		t.Fatalf("push after close = %v, want errSchedDraining", err)
	}
	// The queued interactive job is still served, then pop reports
	// closed-and-empty with nil (the worker exit signal).
	if got := s.pop(); got != i1 {
		t.Fatal("queued interactive job lost by close")
	}
	if got := s.pop(); got != nil {
		t.Fatalf("pop on a closed empty scheduler = %+v, want nil", got)
	}
	if again := s.close(); again != nil {
		t.Fatalf("second close returned %v, want nil (idempotent)", again)
	}
}

// TestRetryAfterDerivedFromQueueDepth pins the 503 backoff mapping:
// one second base plus the backlog's drain time at one solve-second
// per worker, clamped to [1, 30].
func TestRetryAfterDerivedFromQueueDepth(t *testing.T) {
	cases := []struct {
		queued, workers, want int
	}{
		{0, 4, 1},    // empty queue: minimum backoff
		{3, 4, 1},    // less than one solve per worker rounds down
		{4, 4, 2},    // one queued solve per worker adds a second
		{16, 4, 5},   // deep backlog scales linearly
		{400, 4, 30}, // clamped at 30s
		{10, 0, 11},  // degenerate worker count treated as 1
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.queued, c.workers); got != c.want {
			t.Errorf("retryAfterSecs(%d, %d) = %d, want %d", c.queued, c.workers, got, c.want)
		}
	}
}
