package server

import (
	"math/big"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/smtlib"
)

// This file is the shard side of the distributed verdict cache: the
// GET /cache/<hash> endpoint that hands settled canonical verdicts to
// peers, and the pre-solve peer cache-fill that asks a canonical
// problem's owner shard before spending solver time. Both directions
// obey the cache soundness rule — only settled SAT/UNSAT verdicts
// travel, always in canonical coordinates, and a received witness is
// transported onto the requesting parse and re-validated by the
// concrete evaluator before anything is served or cached. A peer can
// therefore cost this shard a wasted lookup, never a wrong answer.

// handleCacheEntry serves one settled canonical verdict to a peer (or
// any client). Misses and unsettled entries answer 404: "solve it
// yourself" is always a safe reply. A draining shard keeps answering —
// the endpoint reads immutable state and helps peers warm up while
// this shard exits.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	v, ok := s.cache.get(hash)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no cached verdict for %q", hash)
		return
	}
	e := cluster.CacheEntry{Backend: v.backend}
	switch v.status {
	case core.StatusSat:
		if v.witness == nil {
			s.writeError(w, http.StatusNotFound, "no cached verdict for %q", hash)
			return
		}
		e.Status = "sat"
		e.Str = append([]string{}, v.witness.Str...)
		e.Int = make([]string, len(v.witness.Int))
		for i, n := range v.witness.Int {
			e.Int[i] = n.String()
		}
	case core.StatusUnsat:
		e.Status = "unsat"
	default:
		// The cache only stores settled verdicts; this arm is defensive.
		s.writeError(w, http.StatusNotFound, "no cached verdict for %q", hash)
		return
	}
	s.ctr.peerServed.Add(1)
	s.writeJSON(w, http.StatusOK, e)
}

// peerFill tries to answer a cache miss from the canonical hash's
// owner shard. ok=false means "no usable verdict" for any reason —
// standalone server, we own the hash, owner unreachable or cold, or
// the entry failed re-validation — and the caller falls through to
// solving, which is always available.
func (s *Server) peerFill(r *http.Request, script *smtlib.Script, canon *smtlib.Canon, start time.Time) (solveResponse, bool) {
	if s.cfg.Peers == nil {
		return solveResponse{}, false
	}
	e, err := s.cfg.Peers.Fetch(r.Context(), canon.Hash)
	if err != nil {
		s.ctr.peerErrors.Add(1)
		return solveResponse{}, false
	}
	if e == nil {
		s.ctr.peerMisses.Add(1)
		return solveResponse{}, false
	}
	var v verdict
	switch e.Status {
	case "sat":
		wit, ok := witnessFromWire(e)
		if !ok {
			s.ctr.peerErrors.Add(1)
			return solveResponse{}, false
		}
		v = verdict{status: core.StatusSat, witness: wit, backend: e.Backend}
	case "unsat":
		v = verdict{status: core.StatusUnsat, backend: e.Backend}
	default:
		return solveResponse{}, false
	}
	// Same revalidation as a local cache hit: the witness must satisfy
	// THIS request's parse or the entry is worthless here.
	resp, ok := s.renderVerdict(script, canon, v, true, false, start)
	if !ok {
		s.ctr.peerErrors.Add(1)
		return solveResponse{}, false
	}
	resp.PeerFilled = true
	s.ctr.peerFills.Add(1)
	// Adopt the verdict locally so the next request is a plain hit and
	// the owner is asked once per shard, not once per request.
	switch v.status {
	case core.StatusSat:
		s.cache.put(canon.Hash, verdict{status: core.StatusSat, witness: v.witness, backend: v.backend})
	case core.StatusUnsat:
		s.cache.put(canon.Hash, verdict{status: core.StatusUnsat, backend: v.backend})
	}
	return resp, true
}

// witnessFromWire decodes a peer's canonical witness (integers travel
// as decimal strings).
func witnessFromWire(e *cluster.CacheEntry) (*smtlib.Witness, bool) {
	w := &smtlib.Witness{
		Str: append([]string{}, e.Str...),
		Int: make([]*big.Int, len(e.Int)),
	}
	for i, s := range e.Int {
		n, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return nil, false
		}
		w.Int[i] = n
	}
	return w, true
}
