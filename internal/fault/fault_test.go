package fault

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestContainNormalReturn(t *testing.T) {
	ran := false
	if d := Contain("test", func() { ran = true }); d != nil {
		t.Fatalf("Contain returned %v for a normal run", d)
	}
	if !ran {
		t.Fatal("fn did not run")
	}
}

func TestContainCapturesPanic(t *testing.T) {
	d := Contain("core.Solve", func() { panic("model value does not fit in int64") })
	if d == nil {
		t.Fatal("panic not contained")
	}
	if d.Boundary != "core.Solve" {
		t.Fatalf("boundary = %q", d.Boundary)
	}
	if d.Value != "model value does not fit in int64" {
		t.Fatalf("value = %q", d.Value)
	}
	if d.Injected {
		t.Fatal("real panic marked injected")
	}
	if d.ID == "" || !strings.HasPrefix(d.ID, "f") {
		t.Fatalf("bad id %q", d.ID)
	}
	if !strings.Contains(d.Stack, "fault_test.go") {
		t.Fatalf("stack does not point at the panic site:\n%s", d.Stack)
	}
	if strings.Contains(d.Stack, "fault.Contain") || strings.Contains(d.Stack, "debug.Stack") {
		t.Fatalf("stack keeps containment machinery frames:\n%s", d.Stack)
	}
}

func TestContainDistinctIDs(t *testing.T) {
	a := Contain("b", func() { panic(1) })
	b := Contain("b", func() { panic(2) })
	if a.ID == b.ID {
		t.Fatalf("duplicate diagnostic id %q", a.ID)
	}
}

func TestContainMarksInjected(t *testing.T) {
	d := Contain("b", func() { InjectPanic() })
	if d == nil || !d.Injected {
		t.Fatalf("injected panic not marked: %v", d)
	}
}

func TestScheduleFiresOnceAtK(t *testing.T) {
	s := At(3, OpCancel)
	got := []Op{s.Visit(), s.Visit(), s.Visit(), s.Visit(), s.Visit()}
	want := []Op{OpNone, OpNone, OpCancel, OpNone, OpNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d: got %v want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if !s.Fired() {
		t.Fatal("Fired() = false after firing")
	}
	if s.Visits() != 5 {
		t.Fatalf("Visits() = %d, want 5", s.Visits())
	}
}

func TestScheduleCountingNeverFires(t *testing.T) {
	s := Counting()
	for i := 0; i < 100; i++ {
		if op := s.Visit(); op != OpNone {
			t.Fatalf("counting schedule fired %v at visit %d", op, i+1)
		}
	}
	if s.Visits() != 100 {
		t.Fatalf("Visits() = %d", s.Visits())
	}
}

func TestScheduleNilSafe(t *testing.T) {
	var s *Schedule
	if s.Visit() != OpNone || s.Visits() != 0 || s.Fired() || s.Op() != OpNone {
		t.Fatal("nil schedule misbehaved")
	}
}

func TestScheduleConcurrentFiresExactlyOnce(t *testing.T) {
	s := At(50, OpPanic)
	var fired atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if s.Visit() == OpPanic {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != 1 {
		t.Fatalf("schedule fired %d times across 800 visits with k=50, want exactly 1", n)
	}
}

func TestScheduleNetFiresOnceAtK(t *testing.T) {
	s := AtNet(2, NetCut)
	got := []NetOp{s.NetVisit(), s.NetVisit(), s.NetVisit()}
	want := []NetOp{NetNone, NetCut, NetNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d: got %v want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if !s.NetFired() {
		t.Fatal("NetFired() = false after firing")
	}
	if s.NetVisits() != 3 {
		t.Fatalf("NetVisits() = %d, want 3", s.NetVisits())
	}
}

func TestScheduleNetBoundaryIndependent(t *testing.T) {
	// An engine schedule never fires at the network boundary and does
	// not count hops against its Poll/Charge index — and vice versa.
	eng := At(1, OpPanic)
	if op := eng.NetVisit(); op != NetNone {
		t.Fatalf("engine schedule fired %v at a network hop", op)
	}
	if op := eng.Visit(); op != OpPanic {
		t.Fatalf("net hop consumed the engine visit index: got %v", op)
	}
	net := AtNet(1, NetStall)
	if op := net.Visit(); op != OpNone {
		t.Fatalf("network schedule fired %v at a Poll site", op)
	}
	if op := net.NetVisit(); op != NetStall {
		t.Fatalf("Poll visit consumed the net hop index: got %v", op)
	}
}

func TestScheduleNetNilSafe(t *testing.T) {
	var s *Schedule
	if s.NetVisit() != NetNone || s.NetVisits() != 0 || s.NetFired() || s.NetOp() != NetNone {
		t.Fatal("nil schedule misbehaved at the network boundary")
	}
}

func TestNewSchedule(t *testing.T) {
	if NewSchedule(0) != nil || NewSchedule(-5) != nil {
		t.Fatal("non-positive seed must disable injection")
	}
	// Seed 3072: 3072%3 == 0 → panic, 1 + (3072/3)%1024 == 1 → first visit.
	s := NewSchedule(3072)
	if s.Op() != OpPanic {
		t.Fatalf("seed 3072 op = %v, want panic", s.Op())
	}
	if op := s.Visit(); op != OpPanic {
		t.Fatalf("seed 3072 first visit = %v, want panic", op)
	}
	if NewSchedule(1).Op() != OpCancel || NewSchedule(2).Op() != OpBudget {
		t.Fatal("seed→op mapping changed")
	}
}

type fakeTB struct {
	mu     sync.Mutex
	errors []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errors = append(f.errors, format)
}

func TestLeakCheckerCatchesAndClears(t *testing.T) {
	before := Snapshot()

	// A goroutine that exits promptly must not be reported even if it
	// is alive at the first comparison: CheckLeaks retries.
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	tb := &fakeTB{}
	CheckLeaks(tb, before)
	if len(tb.errors) != 0 {
		t.Fatalf("transient goroutine reported as leak: %v", tb.errors)
	}
	<-done
}

func TestLeakCheckerSeesOurGoroutines(t *testing.T) {
	before := Snapshot()
	stop := make(chan struct{})
	go leakyHelper(stop)
	time.Sleep(20 * time.Millisecond)
	after := leakedSince(before)
	if len(after) == 0 {
		t.Fatal("running repository goroutine not visible to the checker")
	}
	close(stop)
	tb := &fakeTB{}
	CheckLeaks(tb, before)
	if len(tb.errors) != 0 {
		t.Fatalf("stopped goroutine still reported: %v", tb.errors)
	}
}

func leakyHelper(stop <-chan struct{}) { <-stop }
