// Package fault is the solver's fault-containment toolkit: panic
// boundaries that convert a crashing computation into a structured
// diagnostic (Contain), a deterministic fault-injection schedule the
// engine consults at every Poll/Charge site (Schedule), and a
// goroutine-leak checker for the -race tests (Snapshot/CheckLeaks).
//
// The package sits below internal/engine (engine imports fault, never
// the reverse) and uses only the standard library.
//
// Panic policy. Production code distinguishes two kinds of panic:
//
//   - contract panics — violations of internal invariants ("pool
//     mismatch", "slack references slack") that indicate a bug in the
//     solver itself. They stay panics, are marked with a "// contract:"
//     comment at the panic site, and are converted to UNKNOWN verdicts
//     by the Contain boundaries rather than killing the process.
//   - input-reachable panics — anything a hostile input could trigger.
//     These must be errors, not panics; Contain is the backstop, not
//     the mechanism.
package fault

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"
)

// Diagnostic describes one contained panic.
type Diagnostic struct {
	// ID is unique within the process ("f000001", ...); servers echo it
	// in error responses so a log line can be found from a client.
	ID string `json:"id"`
	// Boundary names the Contain call that recovered the panic
	// ("core.Solve", "core.branch", "server.worker").
	Boundary string `json:"boundary"`
	// Value is the rendered panic value.
	Value string `json:"value"`
	// Stack is the trimmed stack of the panicking goroutine.
	Stack string `json:"stack,omitempty"`
	// Injected is true when the panic came from a fault Schedule
	// rather than real code.
	Injected bool `json:"injected,omitempty"`
}

func (d *Diagnostic) String() string {
	if d == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s at %s: %s", d.ID, d.Boundary, d.Value)
}

// Error makes a Diagnostic usable as an error value.
func (d *Diagnostic) Error() string { return d.String() }

var diagSeq atomic.Uint64

// injected is the panic value used by InjectPanic so Contain can tell
// scheduled faults from real ones.
type injected struct{}

func (injected) String() string { return "fault: injected panic" }

// InjectPanic panics with the sentinel value a Schedule-driven
// injection uses; Contain marks the resulting Diagnostic as Injected.
func InjectPanic() {
	panic(injected{})
}

// Contain runs fn and recovers any panic, returning a Diagnostic for
// it (nil when fn returns normally). It is the trust boundary between
// the solver internals — which may contract-panic on a bug — and the
// layers that must keep running: the top-level solve, each parallel
// case-split branch, and each server worker.
func Contain(boundary string, fn func()) (d *Diagnostic) {
	defer func() {
		if v := recover(); v != nil {
			d = capture(boundary, v)
		}
	}()
	fn()
	return nil
}

func capture(boundary string, v any) *Diagnostic {
	d := &Diagnostic{
		ID:       fmt.Sprintf("f%06d", diagSeq.Add(1)),
		Boundary: boundary,
		Stack:    trimStack(debug.Stack()),
	}
	if _, ok := v.(injected); ok {
		d.Injected = true
		d.Value = injected{}.String()
	} else {
		d.Value = fmt.Sprintf("%v", v)
	}
	return d
}

// stackLimit bounds how much of a panicking stack a Diagnostic keeps:
// enough to find the site, small enough to ship in /stats.
const (
	stackMaxLines = 40
	stackMaxBytes = 4 << 10
)

// trimStack drops the recover machinery frames (debug.Stack, capture,
// the Contain deferred closure, runtime.gopanic) and truncates what
// remains to a bounded number of lines and bytes.
func trimStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	// A stack is a "goroutine N [state]:" header followed by pairs of
	// function and file:line lines. Skip machinery frame pairs at the
	// top; they describe the containment, not the fault.
	out := make([]string, 0, len(lines))
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		out = append(out, lines[0])
		lines = lines[1:]
	}
	skip := [...]string{
		"runtime/debug.Stack",
		"repro/internal/fault.trimStack",
		"repro/internal/fault.capture",
		"repro/internal/fault.Contain",
		"runtime.gopanic",
		"panic(",
	}
	for i := 0; i < len(lines); i++ {
		fn := lines[i]
		machinery := false
		for _, s := range skip {
			if strings.Contains(fn, s) {
				machinery = true
				break
			}
		}
		if machinery {
			i++ // swallow the paired file:line
			continue
		}
		out = append(out, fn)
	}
	if len(out) > stackMaxLines {
		out = append(out[:stackMaxLines], "\t...")
	}
	s := strings.Join(out, "\n")
	if len(s) > stackMaxBytes {
		s = s[:stackMaxBytes] + "\n\t..."
	}
	return strings.TrimRight(s, "\n")
}
