package fault

import "sync/atomic"

// Op is the fault a Schedule injects when it fires.
type Op int

// Injectable faults.
const (
	// OpNone: nothing fires at this visit.
	OpNone Op = iota
	// OpPanic: panic at the visit site (contained at the boundaries).
	OpPanic
	// OpCancel: cancel the visiting context.
	OpCancel
	// OpBudget: exhaust the visiting context's resource budget.
	OpBudget
)

func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpPanic:
		return "panic"
	case OpCancel:
		return "cancel"
	case OpBudget:
		return "budget"
	}
	return "?"
}

// NetOp is the fault a Schedule injects at the network boundary: the
// cluster layer calls NetVisit once per hop (every forward, retry,
// hedge, probe, or peer cache-fill attempt), and the schedule fires
// its NetOp exactly once, at the k-th hop.
type NetOp int

// Injectable network faults.
const (
	// NetNone: nothing fires at this hop.
	NetNone NetOp = iota
	// NetConnectFail: the hop fails before any bytes move, as a
	// refused or unroutable connection would.
	NetConnectFail
	// NetStall: the hop hangs until the caller's context gives up, as
	// a black-holed peer would.
	NetStall
	// NetCut: the hop's response body is severed mid-read, as a peer
	// dying after its headers went out would.
	NetCut
)

func (o NetOp) String() string {
	switch o {
	case NetNone:
		return "none"
	case NetConnectFail:
		return "connect-fail"
	case NetStall:
		return "stall"
	case NetCut:
		return "cut"
	}
	return "?"
}

// Schedule is a deterministic fault-injection plan: the engine calls
// Visit at every Poll/Charge site, and the schedule fires its Op
// exactly once, at the k-th visit. A Schedule with k == 0 never fires
// and only counts visits — chaos tests run one counting pass to learn
// how many injection points an instance has, then sweep k over that
// range. All methods are safe on a nil receiver (a nil Schedule is
// "no injection") and for concurrent use; under a parallel portfolio
// the k-th visit is whichever goroutine gets there first, so sweeps
// assert verdict invariants, not which site fired.
//
// The network boundary is a second, independent visit counter: the
// cluster transport calls NetVisit at every hop, and a schedule built
// with AtNet fires its NetOp exactly once, at the k-th hop. The two
// boundaries never interfere — an engine schedule counts no hops and a
// network schedule fires at no Poll site — so one Schedule value can
// drive either sweep.
type Schedule struct {
	k      uint64
	op     Op
	visits atomic.Uint64
	fired  atomic.Bool

	netK      uint64
	netOp     NetOp
	netVisits atomic.Uint64
	netFired  atomic.Bool
}

// At returns a Schedule that fires op at the k-th visit (1-based).
// k == 0 returns a counting-only schedule.
func At(k uint64, op Op) *Schedule {
	return &Schedule{k: k, op: op}
}

// AtNet returns a Schedule that fires op at the k-th network hop
// (1-based). k == 0 returns a counting-only schedule: chaos sweeps run
// one counting pass to learn how many hops a scenario takes, then
// sweep k over that range.
func AtNet(k uint64, op NetOp) *Schedule {
	return &Schedule{netK: k, netOp: op}
}

// Combine merges an engine-boundary plan and a network-boundary plan
// into one fresh Schedule, so a single value can drive both sweeps
// (the boundaries are independent; see the type comment). Either input
// may be nil; both nil returns nil. Visit counts are not carried over —
// use it on unfired schedules.
func Combine(eng, net *Schedule) *Schedule {
	if eng == nil && net == nil {
		return nil
	}
	s := &Schedule{}
	if eng != nil {
		s.k, s.op = eng.k, eng.op
	}
	if net != nil {
		s.netK, s.netOp = net.netK, net.netOp
	}
	return s
}

// Counting returns a schedule that never fires and only counts visits.
func Counting() *Schedule {
	return &Schedule{}
}

// NewSchedule derives a schedule from a seed: op cycles through
// panic/cancel/budget with seed%3 (0 is panic) and the visit index is
// 1 + (seed/3) % 1024. A seed <= 0 returns nil (no injection). Seed
// 3072 is the conventional "panic at the first visit" smoke seed.
func NewSchedule(seed int64) *Schedule {
	if seed <= 0 {
		return nil
	}
	u := uint64(seed)
	op := Op(1 + u%3)
	return &Schedule{k: 1 + (u/3)%1024, op: op}
}

// Visit records one arrival at an injection site and returns the Op to
// inject now (OpNone almost always; the schedule's op exactly once, at
// the k-th visit).
func (s *Schedule) Visit() Op {
	if s == nil || s.k == 0 {
		if s != nil {
			s.visits.Add(1)
		}
		return OpNone
	}
	if s.visits.Add(1) == s.k && s.fired.CompareAndSwap(false, true) {
		return s.op
	}
	return OpNone
}

// Visits reports how many injection sites have been visited.
func (s *Schedule) Visits() uint64 {
	if s == nil {
		return 0
	}
	return s.visits.Load()
}

// Fired reports whether the schedule has injected its fault.
func (s *Schedule) Fired() bool {
	return s != nil && s.fired.Load()
}

// Op returns the fault the schedule injects when it fires.
func (s *Schedule) Op() Op {
	if s == nil {
		return OpNone
	}
	return s.op
}

// NetVisit records one arrival at the network boundary and returns the
// NetOp to inject now (NetNone almost always; the schedule's netOp
// exactly once, at the k-th hop).
func (s *Schedule) NetVisit() NetOp {
	if s == nil || s.netK == 0 {
		if s != nil {
			s.netVisits.Add(1)
		}
		return NetNone
	}
	if s.netVisits.Add(1) == s.netK && s.netFired.CompareAndSwap(false, true) {
		return s.netOp
	}
	return NetNone
}

// NetVisits reports how many network hops have been visited.
func (s *Schedule) NetVisits() uint64 {
	if s == nil {
		return 0
	}
	return s.netVisits.Load()
}

// NetFired reports whether the schedule has injected its network fault.
func (s *Schedule) NetFired() bool {
	return s != nil && s.netFired.Load()
}

// NetOp returns the network fault the schedule injects when it fires.
func (s *Schedule) NetOp() NetOp {
	if s == nil {
		return NetNone
	}
	return s.netOp
}
