package fault

import "sync/atomic"

// Op is the fault a Schedule injects when it fires.
type Op int

// Injectable faults.
const (
	// OpNone: nothing fires at this visit.
	OpNone Op = iota
	// OpPanic: panic at the visit site (contained at the boundaries).
	OpPanic
	// OpCancel: cancel the visiting context.
	OpCancel
	// OpBudget: exhaust the visiting context's resource budget.
	OpBudget
)

func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpPanic:
		return "panic"
	case OpCancel:
		return "cancel"
	case OpBudget:
		return "budget"
	}
	return "?"
}

// Schedule is a deterministic fault-injection plan: the engine calls
// Visit at every Poll/Charge site, and the schedule fires its Op
// exactly once, at the k-th visit. A Schedule with k == 0 never fires
// and only counts visits — chaos tests run one counting pass to learn
// how many injection points an instance has, then sweep k over that
// range. All methods are safe on a nil receiver (a nil Schedule is
// "no injection") and for concurrent use; under a parallel portfolio
// the k-th visit is whichever goroutine gets there first, so sweeps
// assert verdict invariants, not which site fired.
type Schedule struct {
	k      uint64
	op     Op
	visits atomic.Uint64
	fired  atomic.Bool
}

// At returns a Schedule that fires op at the k-th visit (1-based).
// k == 0 returns a counting-only schedule.
func At(k uint64, op Op) *Schedule {
	return &Schedule{k: k, op: op}
}

// Counting returns a schedule that never fires and only counts visits.
func Counting() *Schedule {
	return &Schedule{}
}

// NewSchedule derives a schedule from a seed: op cycles through
// panic/cancel/budget with seed%3 (0 is panic) and the visit index is
// 1 + (seed/3) % 1024. A seed <= 0 returns nil (no injection). Seed
// 3072 is the conventional "panic at the first visit" smoke seed.
func NewSchedule(seed int64) *Schedule {
	if seed <= 0 {
		return nil
	}
	u := uint64(seed)
	op := Op(1 + u%3)
	return &Schedule{k: 1 + (u/3)%1024, op: op}
}

// Visit records one arrival at an injection site and returns the Op to
// inject now (OpNone almost always; the schedule's op exactly once, at
// the k-th visit).
func (s *Schedule) Visit() Op {
	if s == nil || s.k == 0 {
		if s != nil {
			s.visits.Add(1)
		}
		return OpNone
	}
	if s.visits.Add(1) == s.k && s.fired.CompareAndSwap(false, true) {
		return s.op
	}
	return OpNone
}

// Visits reports how many injection sites have been visited.
func (s *Schedule) Visits() uint64 {
	if s == nil {
		return 0
	}
	return s.visits.Load()
}

// Fired reports whether the schedule has injected its fault.
func (s *Schedule) Fired() bool {
	return s != nil && s.fired.Load()
}

// Op returns the fault the schedule injects when it fires.
func (s *Schedule) Op() Op {
	if s == nil {
		return OpNone
	}
	return s.op
}
