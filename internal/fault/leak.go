package fault

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak checker needs; taking an
// interface keeps "testing" out of the production import graph.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Snapshot returns the normalized stacks of live goroutines running
// repository code, with multiplicities. Take one before the code under
// test, then call CheckLeaks with it afterwards.
func Snapshot() map[string]int {
	return grab()
}

// CheckLeaks compares the current goroutines against a prior Snapshot
// and reports any repository goroutine that is still running and was
// not in the snapshot. Goroutines legitimately take a moment to unwind
// after a cancel, so the check retries for up to leakWait before
// failing with the leaked stacks.
func CheckLeaks(tb TB, before map[string]int) {
	tb.Helper()
	deadline := time.Now().Add(leakWait)
	var leaked []string
	for {
		leaked = leakedSince(before)
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, s := range leaked {
		tb.Errorf("leaked goroutine:\n%s", s)
	}
}

const leakWait = 2 * time.Second

// modulePrefix marks "our" goroutines: only stacks with a frame in the
// repository count, so runtime, testing, and net/http internals never
// trip the checker.
const modulePrefix = "repro/"

func leakedSince(before map[string]int) []string {
	cur := grab()
	var leaked []string
	for key, n := range cur {
		if n > before[key] {
			leaked = append(leaked, key)
		}
	}
	sort.Strings(leaked) // deterministic report order
	return leaked
}

func grab() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		key := normalizeStack(g)
		if key == "" {
			continue
		}
		out[key]++
	}
	return out
}

// normalizeStack strips everything that varies between two otherwise
// identical goroutines — the goroutine id and state header, argument
// values, pc offsets — so stacks compare by shape. It returns "" for
// the goroutine running the checker itself.
func normalizeStack(g string) string {
	lines := strings.Split(g, "\n")
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		if strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if strings.Contains(line, "repro/internal/fault.grab") {
			return "" // the checker's own goroutine
		}
		if strings.HasPrefix(line, "\t") {
			// "\tfile.go:12 +0x85" → drop the pc offset.
			if i := strings.LastIndex(line, " +0x"); i >= 0 {
				line = line[:i]
			}
		} else if strings.HasPrefix(line, "created by ") {
			// "created by pkg.fn in goroutine 7" → drop the spawner id.
			if i := strings.Index(line, " in goroutine "); i >= 0 {
				line = line[:i]
			}
		} else {
			// "pkg.fn(0xc000..., 0x2)" → drop the argument values.
			if i := strings.Index(line, "("); i >= 0 {
				line = line[:i]
			}
		}
		out = append(out, line)
	}
	return strings.TrimRight(strings.Join(out, "\n"), "\n")
}
