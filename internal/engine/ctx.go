// Package engine provides the shared solve context threaded through
// every layer of the solver: a wall-clock deadline, a cooperative
// cancellation flag cheap enough to poll from the CDCL propagate loop
// and the simplex pivot loop, and a hierarchical statistics tree of
// counters and phase timers.
//
// A Ctx forms a tree: Child contexts observe the parent's cancellation
// and deadline, while cancelling a child leaves the parent (and the
// child's siblings) running. That asymmetry is what lets the parallel
// portfolio core race independent case-split branches and cancel the
// losers. All Ctx and Stats methods are safe on a nil receiver (a nil
// Ctx never expires, a nil Stats records nothing) and safe for
// concurrent use.
package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Cause reports why a context stopped.
type Cause int32

// Stop causes.
const (
	// CauseNone: the context has not stopped.
	CauseNone Cause = iota
	// CauseCancelled: Cancel was called (directly or via an ancestor).
	CauseCancelled
	// CauseDeadline: the wall-clock deadline passed.
	CauseDeadline
	// CauseBudget: the resource governor's step budget ran out.
	CauseBudget
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCancelled:
		return "cancelled"
	case CauseDeadline:
		return "deadline"
	case CauseBudget:
		return "budget"
	}
	return "?"
}

// pollStride is how many Poll calls share one wall-clock read: the
// cancellation flags are atomic loads checked on every call, but
// time.Now is only consulted once per stride.
const pollStride = 32

// meter is the resource governor shared by a whole Ctx tree: one
// atomic pool of budget units debited by Charge from every goroutine
// of the solve, plus the first site that tripped it (for the
// "budget: <site>" UNKNOWN reason).
type meter struct {
	remaining atomic.Int64
	site      atomic.Pointer[string]
}

func (m *meter) trip(site string) {
	m.site.CompareAndSwap(nil, &site)
}

// Pool is a named, shared budget pool: a tenant-level resource
// governor that any number of concurrent solves debit collectively.
// Where SetBudget bounds one solve, a Pool bounds a whole workload —
// trauserve attaches one pool per tenant, so a tenant's jobs drain a
// single budget no matter how many requests carry them. Attach with
// SetBudgetPool before creating children. All methods are safe on a
// nil receiver (a nil Pool is "no pool") and for concurrent use.
//
// A pool built with NewRefillingPool is a token bucket: units flow
// back at a fixed rate, capped at the original capacity, so a dry
// tenant recovers after a proportional wait instead of being rejected
// for the life of the process. The refill is lazy — credited on the
// admission-side Dry check — so a tenant with no new work costs
// nothing. Refill never un-stops a solve the dry pool already tripped
// (Charge observes the pool once, trips, and the solve settles
// UNKNOWN); it only re-opens admission for the tenant's NEXT request.
type Pool struct {
	name string
	m    meter

	// capacity caps what refill can restore; perSec is the refill rate
	// (0 = prepaid, never refills). lastRefill is the UnixNano stamp
	// of the last credited refill instant.
	capacity   int64
	perSec     int64
	lastRefill atomic.Int64
}

// NewPool returns a pool named name holding n units. n <= 0 returns
// nil: an unlimited tenant carries no pool at all.
func NewPool(name string, n int64) *Pool {
	if n <= 0 {
		return nil
	}
	p := &Pool{name: name, capacity: n}
	p.m.remaining.Store(n)
	return p
}

// NewRefillingPool returns a pool of capacity n that refills at perSec
// units per second (token bucket, capped at n). perSec <= 0 degrades
// to NewPool's prepaid semantics.
func NewRefillingPool(name string, n, perSec int64) *Pool {
	p := NewPool(name, n)
	if p == nil || perSec <= 0 {
		return p
	}
	p.perSec = perSec
	p.lastRefill.Store(time.Now().UnixNano())
	return p
}

// refill credits elapsed-time units into the bucket, capped at
// capacity. One goroutine wins the CAS for any given interval; losers
// retry against the advanced stamp and credit only what remains. The
// stamp advances by exactly the time the credited units represent, so
// fractional units are never lost to rounding.
func (p *Pool) refill() {
	if p == nil || p.perSec <= 0 {
		return
	}
	for {
		last := p.lastRefill.Load()
		now := time.Now().UnixNano()
		elapsed := now - last
		if elapsed <= 0 {
			return
		}
		credit := elapsed * p.perSec / int64(time.Second)
		if credit <= 0 {
			return
		}
		consumed := credit * int64(time.Second) / p.perSec
		if !p.lastRefill.CompareAndSwap(last, last+consumed) {
			continue
		}
		for {
			cur := p.m.remaining.Load()
			next := cur + credit
			if next > p.capacity {
				next = p.capacity
			}
			if next <= cur {
				return
			}
			if p.m.remaining.CompareAndSwap(cur, next) {
				if cur <= 0 && next > 0 {
					// The bucket recovered: clear the trip marker so
					// the next exhaustion blames its own site.
					p.m.site.Store(nil)
				}
				return
			}
		}
	}
}

// Name reports the pool's name ("" for nil).
func (p *Pool) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Remaining reports the units left in the pool (negative once dry),
// after crediting any pending refill.
func (p *Pool) Remaining() int64 {
	if p == nil {
		return 0
	}
	p.refill()
	return p.m.remaining.Load()
}

// Dry reports whether the pool is exhausted right now. Admission
// layers check it before accepting new work for the pool's tenant; on
// a refilling pool the answer flips back to false once the bucket has
// recovered above zero.
func (p *Pool) Dry() bool {
	if p == nil {
		return false
	}
	p.refill()
	return p.m.remaining.Load() <= 0
}

// Ctx is the cancellable solve context.
type Ctx struct {
	parent   *Ctx
	deadline time.Time // zero = none

	stopped atomic.Bool
	cause   atomic.Int32
	ticks   atomic.Uint64

	// gov, pool, and sched are installed on a root before the solve
	// starts (SetBudget/SetBudgetPool/SetSchedule) and shared by the
	// whole tree: Child copies the pointers, so children created
	// earlier do not see a later install.
	gov   *meter
	pool  *Pool
	sched *fault.Schedule

	stats *Stats
}

// Background returns a root context with no deadline.
func Background() *Ctx {
	return &Ctx{stats: NewStats()}
}

// WithTimeout returns a root context that expires d from now; d <= 0
// means no deadline.
func WithTimeout(d time.Duration) *Ctx {
	c := Background()
	if d > 0 {
		c.deadline = time.Now().Add(d)
	}
	return c
}

// WithDeadline returns a root context that expires at t (zero t means
// no deadline).
func WithDeadline(t time.Time) *Ctx {
	c := Background()
	c.deadline = t
	return c
}

// FromContext bridges a context.Context into an engine context: the
// returned Ctx inherits ctx's deadline, tightened by timeout when
// positive, and is cancelled when ctx's Done channel fires. The
// returned stop function releases the watcher goroutine; call it once
// the solve has returned.
func FromContext(ctx context.Context, timeout time.Duration) (*Ctx, func()) {
	var deadline time.Time
	if t, ok := ctx.Deadline(); ok {
		deadline = t
	}
	if timeout > 0 {
		if t := time.Now().Add(timeout); deadline.IsZero() || t.Before(deadline) {
			deadline = t
		}
	}
	c := Background()
	c.deadline = deadline
	done := ctx.Done()
	if done == nil {
		return c, func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //lint:nocontain — pure select on two channels, no solver code
		defer wg.Done()
		select {
		case <-done:
			c.Cancel()
		case <-stop:
		}
	}()
	return c, func() { close(stop); wg.Wait() }
}

// Child returns a sub-context: it shares the parent's deadline and
// observes the parent's cancellation, while Cancel on the child leaves
// the parent running. Its statistics node is the parent's child of the
// given name.
func (c *Ctx) Child(name string) *Ctx {
	if c == nil {
		return Background()
	}
	return &Ctx{parent: c, deadline: c.deadline, gov: c.gov, pool: c.pool, sched: c.sched, stats: c.stats.Child(name)}
}

// SetBudget installs a cooperative resource budget of n units on the
// tree rooted at c (n <= 0 removes it). Units are debited by Charge at
// the solver's big allocation sites; when the pool runs dry the whole
// tree stops with CauseBudget and the verdict degrades to UNKNOWN.
// Install before creating children — the meter is inherited at Child
// time.
func (c *Ctx) SetBudget(n int64) {
	if c == nil {
		return
	}
	if n <= 0 {
		c.gov = nil
		return
	}
	m := &meter{}
	m.remaining.Store(n)
	c.gov = m
}

// SetBudgetPool attaches a shared budget pool to the tree rooted at c
// (nil detaches). Charge debits the pool alongside any per-solve
// budget installed with SetBudget; when the pool runs dry the tree
// stops with CauseBudget, exactly as a per-solve trip does, but the
// exhaustion is shared — every other solve attached to the same pool
// trips on its next Charge too. Install before creating children.
func (c *Ctx) SetBudgetPool(p *Pool) {
	if c == nil {
		return
	}
	c.pool = p
}

// SetSchedule installs a deterministic fault-injection schedule
// consulted at every Poll and Charge site of the tree rooted at c.
// Install before creating children; a nil schedule means no injection.
func (c *Ctx) SetSchedule(s *fault.Schedule) {
	if c == nil {
		return
	}
	c.sched = s
}

// BudgetRemaining reports the units left in the governor's pool
// (negative once tripped) and whether a budget is installed at all.
func (c *Ctx) BudgetRemaining() (int64, bool) {
	if c == nil || c.gov == nil {
		return 0, false
	}
	return c.gov.remaining.Load(), true
}

// BudgetReason returns "budget: <site>" for the allocation site that
// exhausted the budget — or "budget: tenant <name>: <site>" when the
// stop came from a shared pool — and "" when no budget has tripped.
// The pool's site is only consulted when THIS context stopped with
// CauseBudget: the pool is shared, so another solve may have tripped
// it while this one stopped for its own reason.
func (c *Ctx) BudgetReason() string {
	if c == nil {
		return ""
	}
	if c.gov != nil {
		if site := c.gov.site.Load(); site != nil {
			return "budget: " + *site
		}
	}
	if c.pool != nil && c.Cause() == CauseBudget {
		if site := c.pool.m.site.Load(); site != nil {
			return "budget: " + c.pool.name + ": " + *site
		}
	}
	return ""
}

// tripBudget marks the budget exhausted at site and stops the subtree
// that owns the tripped meter: ancestors are marked too for as long as
// they share the same governor pointer (the pool is global to that
// subtree), so sibling branches observe the stop through
// cancelRequested. Where an ancestor carries a different meter — a
// portfolio attempt running under its own budget slice via SetBudget —
// the walk stops, confining the trip to the attempt and leaving the
// other racing attempts (and the race's parent) running.
func (c *Ctx) tripBudget(site string) {
	if c.gov != nil {
		c.gov.trip(site)
	}
	for p := c; p != nil && p.gov == c.gov; p = p.parent {
		p.markStopped(CauseBudget)
	}
}

// tripPool marks the shared pool exhausted at site and stops the
// subtree attached to it. Only contexts carrying the same pool pointer
// are stopped — the pool is tenant-wide, not process-wide, so solves
// of other tenants (and pool-less solves) keep running.
func (c *Ctx) tripPool(site string) {
	c.pool.m.trip(site)
	for p := c; p != nil && p.pool == c.pool; p = p.parent {
		p.markStopped(CauseBudget)
	}
}

// ApplyFault applies one injected fault op to the context: OpPanic
// panics (contain it at a boundary), OpCancel cancels, OpBudget trips
// the budget with site "injected". Injection sites outside the engine
// — the server's worker boundary — consult their own Schedule and act
// through this.
func (c *Ctx) ApplyFault(op fault.Op) {
	if op == fault.OpPanic {
		fault.InjectPanic()
	}
	if c == nil {
		return
	}
	switch op {
	case fault.OpCancel:
		c.Cancel()
	case fault.OpBudget:
		c.tripBudget("injected")
	}
}

// inject consults the fault schedule at a Poll/Charge site. It reports
// whether the context should stop (cancel and budget faults); a panic
// fault does not return.
func (c *Ctx) inject() bool {
	op := c.sched.Visit()
	if op == fault.OpNone {
		return false
	}
	c.ApplyFault(op)
	return true
}

// Charge debits n budget units at a named allocation site and reports
// whether the context should stop. It is Poll plus the resource
// governor: fault schedules fire here, the budget is debited here, and
// the cancellation/deadline checks ride along. Callers that trip the
// budget must discard partial work (or return results only valid under
// "the context is stopped" semantics) — see pfa.Sync.
func (c *Ctx) Charge(site string, n int64) bool {
	if c == nil {
		return false
	}
	if c.sched != nil && c.inject() {
		return true
	}
	// Both governors are debited on every Charge — the tenant pool
	// accounts for work even when the per-solve budget is the one that
	// ends it — and the per-solve trip wins the blame when both dry up.
	govDry := c.gov != nil && c.gov.remaining.Add(-n) < 0
	poolDry := c.pool != nil && c.pool.m.remaining.Add(-n) < 0
	if govDry {
		c.tripBudget(site)
		return true
	}
	if poolDry {
		c.tripPool(site)
		return true
	}
	return c.pollClock()
}

// Cancel stops the context and, transitively, its children.
func (c *Ctx) Cancel() {
	if c == nil {
		return
	}
	c.markStopped(CauseCancelled)
}

func (c *Ctx) markStopped(cause Cause) {
	c.cause.CompareAndSwap(int32(CauseNone), int32(cause))
	c.stopped.Store(true)
}

// cancelRequested reports whether this context or an ancestor has
// stopped.
func (c *Ctx) cancelRequested() bool {
	for p := c; p != nil; p = p.parent {
		if p.stopped.Load() {
			return true
		}
	}
	return false
}

// expireDeadline records a deadline expiry on this context and on every
// ancestor whose (inherited, hence identical or earlier) deadline has
// also passed, so the root's Cause classifies the run as timed out even
// when only a descendant observed the clock.
func (c *Ctx) expireDeadline(now time.Time) {
	for p := c; p != nil; p = p.parent {
		if !p.deadline.IsZero() && !now.Before(p.deadline) {
			p.markStopped(CauseDeadline)
		}
	}
}

// Poll reports whether the context should stop, cheaply enough for hot
// loops: the cancellation flags are checked on every call, the wall
// clock only once per pollStride calls.
func (c *Ctx) Poll() bool {
	if c == nil {
		return false
	}
	if c.sched != nil && c.inject() {
		return true
	}
	return c.pollClock()
}

// pollClock is Poll's cancellation/deadline half, shared with Charge
// (which has already consulted the fault schedule once).
func (c *Ctx) pollClock() bool {
	if c.cancelRequested() {
		c.markStopped(CauseCancelled)
		return true
	}
	if c.deadline.IsZero() {
		return false
	}
	if c.ticks.Add(1)%pollStride != 0 {
		return false
	}
	if now := time.Now(); !now.Before(c.deadline) {
		c.expireDeadline(now)
		return true
	}
	return false
}

// Expired is Poll without the stride: it always consults the wall
// clock. Use it at phase boundaries; hot loops use Poll.
func (c *Ctx) Expired() bool {
	if c == nil {
		return false
	}
	if c.sched != nil && c.inject() {
		return true
	}
	if c.cancelRequested() {
		c.markStopped(CauseCancelled)
		return true
	}
	if c.deadline.IsZero() {
		return false
	}
	if now := time.Now(); !now.Before(c.deadline) {
		c.expireDeadline(now)
		return true
	}
	return false
}

// Cause reports why this context stopped (CauseNone if it has not).
func (c *Ctx) Cause() Cause {
	if c == nil {
		return CauseNone
	}
	return Cause(c.cause.Load())
}

// TimedOut reports whether the context stopped because its deadline
// passed, as opposed to explicit cancellation or not stopping at all.
// Benchmark runners use it to count TIMEOUT only when the budget
// actually fired.
func (c *Ctx) TimedOut() bool {
	return c.Cause() == CauseDeadline
}

// Deadline returns the context's deadline, if any.
func (c *Ctx) Deadline() (time.Time, bool) {
	if c == nil || c.deadline.IsZero() {
		return time.Time{}, false
	}
	return c.deadline, true
}

// Stats returns the context's statistics node (nil for a nil context;
// Stats methods are nil-safe, so callers need not check).
func (c *Ctx) Stats() *Stats {
	if c == nil {
		return nil
	}
	return c.stats
}
