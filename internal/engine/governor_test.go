package engine

import (
	"testing"

	"repro/internal/fault"
)

func TestChargeWithoutBudgetIsPoll(t *testing.T) {
	c := Background()
	for i := 0; i < 100; i++ {
		if c.Charge("site", 1000) {
			t.Fatal("Charge stopped a context with no budget installed")
		}
	}
	var nilCtx *Ctx
	if nilCtx.Charge("site", 1) {
		t.Fatal("nil Ctx Charge returned true")
	}
	if _, ok := nilCtx.BudgetRemaining(); ok {
		t.Fatal("nil Ctx reports a budget")
	}
}

func TestBudgetTripStopsTreeWithReason(t *testing.T) {
	root := Background()
	root.SetBudget(10)
	child := root.Child("branch")
	sibling := root.Child("other")

	if child.Charge("pfa product", 4) {
		t.Fatal("tripped with 6 units left")
	}
	if !child.Charge("simplex tableau", 7) {
		t.Fatal("did not trip past the budget")
	}
	if root.Cause() != CauseBudget {
		t.Fatalf("root cause = %v, want budget", root.Cause())
	}
	if got := root.BudgetReason(); got != "budget: simplex tableau" {
		t.Fatalf("BudgetReason = %q", got)
	}
	// The pool is global: siblings observe the stop.
	if !sibling.Poll() {
		t.Fatal("sibling kept running after the tree's budget tripped")
	}
	if !root.Expired() {
		t.Fatal("root did not report stopped")
	}
}

// TestBudgetSliceConfinedToSubtree pins the portfolio contract: when a
// child installs its own budget slice via SetBudget, exhausting the
// slice stops only that child's subtree. The parent and the sibling
// attempts (racing the same problem under their own slices) keep
// running.
func TestBudgetSliceConfinedToSubtree(t *testing.T) {
	root := Background()
	a := root.Child("try.a")
	a.SetBudget(5)
	b := root.Child("try.b")
	b.SetBudget(5)
	inner := a.Child("round0")

	if !inner.Charge("pfa product", 9) {
		t.Fatal("slice did not trip")
	}
	if a.Cause() != CauseBudget {
		t.Fatalf("slice owner cause = %v, want budget", a.Cause())
	}
	if got := a.BudgetReason(); got != "budget: pfa product" {
		t.Fatalf("BudgetReason = %q", got)
	}
	if root.Cause() != CauseNone || root.Expired() {
		t.Fatal("parent stopped by a child's budget slice")
	}
	if b.Poll() {
		t.Fatal("sibling attempt stopped by another attempt's slice")
	}
	if b.Charge("simplex tableau", 3) {
		t.Fatal("sibling's own slice charged by another attempt's trip")
	}
}

func TestBudgetFirstSiteSticks(t *testing.T) {
	c := Background()
	c.SetBudget(1)
	c.Charge("first", 5)
	c.Charge("second", 5)
	if got := c.BudgetReason(); got != "budget: first" {
		t.Fatalf("BudgetReason = %q, want the first tripping site", got)
	}
}

func TestBudgetInheritedByChildren(t *testing.T) {
	root := Background()
	root.SetBudget(5)
	child := root.Child("a").Child("b")
	if rem, ok := child.BudgetRemaining(); !ok || rem != 5 {
		t.Fatalf("grandchild budget = %d,%v; want 5,true", rem, ok)
	}
	child.Charge("x", 3)
	if rem, _ := root.BudgetRemaining(); rem != 2 {
		t.Fatalf("root sees remaining = %d, want 2", rem)
	}
}

func TestSetBudgetNonPositiveClears(t *testing.T) {
	c := Background()
	c.SetBudget(5)
	c.SetBudget(0)
	if _, ok := c.BudgetRemaining(); ok {
		t.Fatal("SetBudget(0) left a budget installed")
	}
}

func TestScheduleCancelInjection(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(3, fault.OpCancel))
	child := c.Child("branch")
	stops := 0
	for i := 0; i < 5; i++ {
		if child.Poll() {
			stops++
		}
	}
	if stops != 3 { // fires at visit 3, then stays cancelled
		t.Fatalf("stopped %d times, want 3 (inject at 3rd then sticky)", stops)
	}
	if child.Cause() != CauseCancelled {
		t.Fatalf("cause = %v", child.Cause())
	}
}

func TestScheduleBudgetInjection(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(1, fault.OpBudget))
	if !c.Charge("site", 0) {
		t.Fatal("injected budget exhaustion did not stop the context")
	}
	if c.Cause() != CauseBudget {
		t.Fatalf("cause = %v, want budget", c.Cause())
	}
}

func TestSchedulePanicInjectionIsContainable(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(2, fault.OpPanic))
	d := fault.Contain("test", func() {
		for i := 0; i < 10; i++ {
			c.Poll()
		}
	})
	if d == nil || !d.Injected {
		t.Fatalf("injected panic not contained/marked: %v", d)
	}
}

func TestScheduleCountsExpiredSitesToo(t *testing.T) {
	c := Background()
	s := fault.Counting()
	c.SetSchedule(s)
	c.Poll()
	c.Expired()
	c.Charge("x", 1)
	if s.Visits() != 3 {
		t.Fatalf("Visits = %d, want 3 (Poll, Expired, Charge)", s.Visits())
	}
}
