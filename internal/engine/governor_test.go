package engine

import (
	"testing"
	"time"

	"repro/internal/fault"
)

func TestChargeWithoutBudgetIsPoll(t *testing.T) {
	c := Background()
	for i := 0; i < 100; i++ {
		if c.Charge("site", 1000) {
			t.Fatal("Charge stopped a context with no budget installed")
		}
	}
	var nilCtx *Ctx
	if nilCtx.Charge("site", 1) {
		t.Fatal("nil Ctx Charge returned true")
	}
	if _, ok := nilCtx.BudgetRemaining(); ok {
		t.Fatal("nil Ctx reports a budget")
	}
}

func TestBudgetTripStopsTreeWithReason(t *testing.T) {
	root := Background()
	root.SetBudget(10)
	child := root.Child("branch")
	sibling := root.Child("other")

	if child.Charge("pfa product", 4) {
		t.Fatal("tripped with 6 units left")
	}
	if !child.Charge("simplex tableau", 7) {
		t.Fatal("did not trip past the budget")
	}
	if root.Cause() != CauseBudget {
		t.Fatalf("root cause = %v, want budget", root.Cause())
	}
	if got := root.BudgetReason(); got != "budget: simplex tableau" {
		t.Fatalf("BudgetReason = %q", got)
	}
	// The pool is global: siblings observe the stop.
	if !sibling.Poll() {
		t.Fatal("sibling kept running after the tree's budget tripped")
	}
	if !root.Expired() {
		t.Fatal("root did not report stopped")
	}
}

// TestBudgetSliceConfinedToSubtree pins the portfolio contract: when a
// child installs its own budget slice via SetBudget, exhausting the
// slice stops only that child's subtree. The parent and the sibling
// attempts (racing the same problem under their own slices) keep
// running.
func TestBudgetSliceConfinedToSubtree(t *testing.T) {
	root := Background()
	a := root.Child("try.a")
	a.SetBudget(5)
	b := root.Child("try.b")
	b.SetBudget(5)
	inner := a.Child("round0")

	if !inner.Charge("pfa product", 9) {
		t.Fatal("slice did not trip")
	}
	if a.Cause() != CauseBudget {
		t.Fatalf("slice owner cause = %v, want budget", a.Cause())
	}
	if got := a.BudgetReason(); got != "budget: pfa product" {
		t.Fatalf("BudgetReason = %q", got)
	}
	if root.Cause() != CauseNone || root.Expired() {
		t.Fatal("parent stopped by a child's budget slice")
	}
	if b.Poll() {
		t.Fatal("sibling attempt stopped by another attempt's slice")
	}
	if b.Charge("simplex tableau", 3) {
		t.Fatal("sibling's own slice charged by another attempt's trip")
	}
}

func TestBudgetFirstSiteSticks(t *testing.T) {
	c := Background()
	c.SetBudget(1)
	c.Charge("first", 5)
	c.Charge("second", 5)
	if got := c.BudgetReason(); got != "budget: first" {
		t.Fatalf("BudgetReason = %q, want the first tripping site", got)
	}
}

func TestBudgetInheritedByChildren(t *testing.T) {
	root := Background()
	root.SetBudget(5)
	child := root.Child("a").Child("b")
	if rem, ok := child.BudgetRemaining(); !ok || rem != 5 {
		t.Fatalf("grandchild budget = %d,%v; want 5,true", rem, ok)
	}
	child.Charge("x", 3)
	if rem, _ := root.BudgetRemaining(); rem != 2 {
		t.Fatalf("root sees remaining = %d, want 2", rem)
	}
}

func TestSetBudgetNonPositiveClears(t *testing.T) {
	c := Background()
	c.SetBudget(5)
	c.SetBudget(0)
	if _, ok := c.BudgetRemaining(); ok {
		t.Fatal("SetBudget(0) left a budget installed")
	}
}

// TestPoolDebitedCollectively pins the multi-tenant contract: two
// independent solve trees attached to one pool drain a single budget,
// and exhausting it stops only trees carrying that pool.
func TestPoolDebitedCollectively(t *testing.T) {
	pool := NewPool("tenant bulk", 10)
	a := Background()
	a.SetBudgetPool(pool)
	b := Background()
	b.SetBudgetPool(pool)
	other := Background()
	other.SetBudgetPool(NewPool("tenant alice", 10))

	if a.Charge("pfa product", 6) {
		t.Fatal("tripped with 4 units left")
	}
	if pool.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", pool.Remaining())
	}
	// The OTHER solve of the same tenant exhausts what is left.
	if !b.Child("round0").Charge("cnf clause", 7) {
		t.Fatal("collective debit did not trip the pool")
	}
	if b.Cause() != CauseBudget {
		t.Fatalf("b cause = %v, want budget", b.Cause())
	}
	if got := b.BudgetReason(); got != "budget: tenant bulk: cnf clause" {
		t.Fatalf("BudgetReason = %q", got)
	}
	if !pool.Dry() {
		t.Fatal("pool not reported dry after trip")
	}
	// a has not stopped yet, but its next Charge observes the dry pool.
	if !a.Charge("simplex tableau", 1) {
		t.Fatal("sibling solve kept running on a dry pool")
	}
	// First tripping site sticks pool-wide.
	if got := a.BudgetReason(); got != "budget: tenant bulk: cnf clause" {
		t.Fatalf("a BudgetReason = %q, want the first pool site", got)
	}
	// Another tenant's pool is unaffected.
	if other.Charge("pfa product", 5) || other.Cause() != CauseNone {
		t.Fatal("dry pool stopped a different tenant's solve")
	}
}

// TestPoolRidesAlongPerSolveBudget: the per-request SetBudget cap and
// the tenant pool are debited together; whichever runs dry first stops
// the solve, and the reason names the right governor.
func TestPoolAndBudgetStack(t *testing.T) {
	pool := NewPool("tenant bulk", 100)
	c := Background()
	c.SetBudget(5)
	c.SetBudgetPool(pool)
	if !c.Charge("pfa product", 7) {
		t.Fatal("per-solve budget did not trip first")
	}
	if got := c.BudgetReason(); got != "budget: pfa product" {
		t.Fatalf("BudgetReason = %q, want the per-solve site", got)
	}
	if pool.Remaining() != 93 {
		t.Fatalf("pool Remaining = %d, want 93 (debited before the trip)", pool.Remaining())
	}
}

// TestPoolReasonNotLeakedAcrossCauses: a solve that stops for its own
// reason (cancellation) must not report the pool's trip site, even
// when another solve of the same tenant has already drained the pool.
func TestPoolReasonNotLeakedAcrossCauses(t *testing.T) {
	pool := NewPool("tenant bulk", 1)
	first := Background()
	first.SetBudgetPool(pool)
	first.Charge("pfa product", 5) // drains the pool
	second := Background()
	second.SetBudgetPool(pool)
	second.Cancel()
	if got := second.BudgetReason(); got != "" {
		t.Fatalf("cancelled solve reports pool reason %q", got)
	}
	if second.Cause() != CauseCancelled {
		t.Fatalf("cause = %v, want cancelled", second.Cause())
	}
}

// TestRefillingPoolRecovers: a token-bucket pool that runs dry flips
// Dry() back to false once enough time has passed for the refill rate
// to restore units — the process-lifetime 429 becomes a bounded wait.
func TestRefillingPoolRecovers(t *testing.T) {
	pool := NewRefillingPool("tenant bulk", 10, 1000) // 1000 units/sec
	c := Background()
	c.SetBudgetPool(pool)
	if !c.Charge("pfa product", 20) {
		t.Fatal("overdraft did not trip the pool")
	}
	if !pool.Dry() {
		t.Fatal("pool not dry immediately after the trip")
	}
	deadline := time.Now().Add(2 * time.Second)
	for pool.Dry() {
		if time.Now().After(deadline) {
			t.Fatal("refilling pool never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r := pool.Remaining(); r <= 0 {
		t.Fatalf("Remaining = %d after recovery, want > 0", r)
	}
	// A fresh solve admitted after recovery runs and can trip again,
	// blaming its own site rather than the pre-recovery one.
	fresh := Background()
	fresh.SetBudgetPool(pool)
	if !fresh.Charge("cnf clause", 1<<40) {
		t.Fatal("recovered pool did not trip on a fresh overdraft")
	}
	if got := fresh.BudgetReason(); got != "budget: tenant bulk: cnf clause" {
		t.Fatalf("BudgetReason = %q, want the post-recovery site", got)
	}
}

// TestRefillingPoolCapsAtCapacity: refill never grows the bucket past
// its configured capacity, no matter how long the tenant idles.
func TestRefillingPoolCapsAtCapacity(t *testing.T) {
	pool := NewRefillingPool("t", 5, 1_000_000)
	time.Sleep(20 * time.Millisecond) // worth ~20000 units at this rate
	if r := pool.Remaining(); r != 5 {
		t.Fatalf("Remaining = %d, want capped capacity 5", r)
	}
	c := Background()
	c.SetBudgetPool(pool)
	c.Charge("site", 3)
	time.Sleep(20 * time.Millisecond)
	if r := pool.Remaining(); r != 5 {
		t.Fatalf("Remaining = %d after idle refill, want 5", r)
	}
}

// TestRefillingPoolZeroRateIsPrepaid: perSec <= 0 keeps the original
// prepaid semantics — a dry pool stays dry forever.
func TestRefillingPoolZeroRateIsPrepaid(t *testing.T) {
	pool := NewRefillingPool("t", 2, 0)
	c := Background()
	c.SetBudgetPool(pool)
	c.Charge("site", 5)
	time.Sleep(20 * time.Millisecond)
	if !pool.Dry() {
		t.Fatal("prepaid pool refilled")
	}
	if NewRefillingPool("t", 0, 100) != nil {
		t.Fatal("zero-capacity refilling pool must be nil (unlimited)")
	}
}

func TestNilPoolIsNoPool(t *testing.T) {
	if p := NewPool("x", 0); p != nil {
		t.Fatal("NewPool(0) did not return nil")
	}
	var p *Pool
	if p.Dry() || p.Name() != "" || p.Remaining() != 0 {
		t.Fatal("nil Pool misbehaves")
	}
	c := Background()
	c.SetBudgetPool(nil)
	if c.Charge("site", 1000) {
		t.Fatal("nil pool charged")
	}
	// Children inherit the pool at Child time.
	pool := NewPool("t", 3)
	root := Background()
	root.SetBudgetPool(pool)
	if !root.Child("a").Child("b").Charge("x", 4) {
		t.Fatal("grandchild did not debit the inherited pool")
	}
	if root.Cause() != CauseBudget {
		t.Fatalf("root cause = %v, want budget via inherited pool", root.Cause())
	}
}

func TestScheduleCancelInjection(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(3, fault.OpCancel))
	child := c.Child("branch")
	stops := 0
	for i := 0; i < 5; i++ {
		if child.Poll() {
			stops++
		}
	}
	if stops != 3 { // fires at visit 3, then stays cancelled
		t.Fatalf("stopped %d times, want 3 (inject at 3rd then sticky)", stops)
	}
	if child.Cause() != CauseCancelled {
		t.Fatalf("cause = %v", child.Cause())
	}
}

func TestScheduleBudgetInjection(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(1, fault.OpBudget))
	if !c.Charge("site", 0) {
		t.Fatal("injected budget exhaustion did not stop the context")
	}
	if c.Cause() != CauseBudget {
		t.Fatalf("cause = %v, want budget", c.Cause())
	}
}

func TestSchedulePanicInjectionIsContainable(t *testing.T) {
	c := Background()
	c.SetSchedule(fault.At(2, fault.OpPanic))
	d := fault.Contain("test", func() {
		for i := 0; i < 10; i++ {
			c.Poll()
		}
	})
	if d == nil || !d.Injected {
		t.Fatalf("injected panic not contained/marked: %v", d)
	}
}

func TestScheduleCountsExpiredSitesToo(t *testing.T) {
	c := Background()
	s := fault.Counting()
	c.SetSchedule(s)
	c.Poll()
	c.Expired()
	c.Charge("x", 1)
	if s.Visits() != 3 {
		t.Fatalf("Visits = %d, want 3 (Poll, Expired, Charge)", s.Visits())
	}
}
