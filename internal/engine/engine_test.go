package engine

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCtxIsInert(t *testing.T) {
	var c *Ctx
	if c.Poll() || c.Expired() {
		t.Fatal("nil ctx must never stop")
	}
	c.Cancel()
	if c.Cause() != CauseNone || c.TimedOut() {
		t.Fatal("nil ctx has no cause")
	}
	if _, ok := c.Deadline(); ok {
		t.Fatal("nil ctx has no deadline")
	}
	if c.Stats() != nil {
		t.Fatal("nil ctx has nil stats")
	}
	child := c.Child("x")
	if child == nil || child.Poll() {
		t.Fatal("child of nil ctx must be a live background ctx")
	}
}

func TestCancelStopsEveryPoll(t *testing.T) {
	c := Background()
	if c.Poll() {
		t.Fatal("fresh ctx must not stop")
	}
	c.Cancel()
	// The cancel flag must be observed on the very next Poll, not only
	// on a stride boundary.
	if !c.Poll() || !c.Expired() {
		t.Fatal("cancelled ctx must stop immediately")
	}
	if c.Cause() != CauseCancelled || c.TimedOut() {
		t.Fatalf("cause = %v, want cancelled", c.Cause())
	}
}

func TestDeadlineExpiryPropagatesToRoot(t *testing.T) {
	root := WithTimeout(time.Nanosecond)
	child := root.Child("branch0")
	time.Sleep(time.Millisecond)
	// Only the child observes the clock; the root must still classify
	// as timed out.
	for i := 0; i < 2*pollStride && !child.Poll(); i++ {
	}
	if child.Cause() != CauseDeadline {
		t.Fatalf("child cause = %v, want deadline", child.Cause())
	}
	if !root.TimedOut() {
		t.Fatalf("root cause = %v, want deadline", root.Cause())
	}
}

func TestChildCancelDoesNotStopParentOrSibling(t *testing.T) {
	root := Background()
	a := root.Child("a")
	b := root.Child("b")
	a.Cancel()
	if !a.Expired() {
		t.Fatal("cancelled child must stop")
	}
	if root.Expired() || b.Expired() {
		t.Fatal("parent and sibling must keep running")
	}
	root.Cancel()
	if !b.Poll() {
		t.Fatal("child must observe parent cancellation")
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ec, stop := FromContext(ctx, 0)
	defer stop()
	if ec.Expired() {
		t.Fatal("fresh bridged ctx must not stop")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !ec.Expired() {
		if time.Now().After(deadline) {
			t.Fatal("bridged ctx did not observe context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if ec.Cause() != CauseCancelled {
		t.Fatalf("cause = %v, want cancelled", ec.Cause())
	}
}

func TestFromContextTightensDeadline(t *testing.T) {
	far := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), far)
	defer cancel()
	ec, stop := FromContext(ctx, time.Minute)
	defer stop()
	d, ok := ec.Deadline()
	if !ok || !d.Before(far) {
		t.Fatalf("deadline %v not tightened below %v", d, far)
	}
}

func TestStatsCountersTimersChildren(t *testing.T) {
	st := NewStats()
	st.Add("rounds", 2)
	st.Add("rounds", 1)
	st.AddDuration("search", time.Second)
	c := st.Child("sat")
	c.Add("conflicts", 7)
	if st.Counter("rounds") != 3 {
		t.Fatalf("rounds = %d, want 3", st.Counter("rounds"))
	}
	if st.Duration("search") != time.Second {
		t.Fatalf("search = %v", st.Duration("search"))
	}
	if st.Total("conflicts") != 7 {
		t.Fatalf("Total(conflicts) = %d, want 7", st.Total("conflicts"))
	}
	if st.Child("sat") != c {
		t.Fatal("Child must be idempotent")
	}
}

func TestStatsNilSafe(t *testing.T) {
	var st *Stats
	st.Add("x", 1)
	st.AddDuration("t", time.Second)
	st.Time("t")()
	st.Merge(NewStats())
	if st.Counter("x") != 0 || st.Total("x") != 0 || st.Duration("t") != 0 {
		t.Fatal("nil stats must read as zero")
	}
	if st.Child("c") != nil {
		t.Fatal("child of nil stats is nil")
	}
	var buf bytes.Buffer
	st.Write(&buf, "root")
	if buf.String() != "root:\n" {
		t.Fatalf("nil Write = %q", buf.String())
	}
}

func TestStatsMerge(t *testing.T) {
	a := NewStats()
	a.Add("n", 1)
	a.Child("x").Add("m", 2)
	b := NewStats()
	b.Add("n", 10)
	b.Child("x").Add("m", 20)
	b.Child("y").Add("k", 5)
	a.Merge(b)
	if a.Counter("n") != 11 || a.Child("x").Counter("m") != 22 || a.Child("y").Counter("k") != 5 {
		t.Fatal("merge mismatch")
	}
}

func TestStatsWriteDeterministic(t *testing.T) {
	build := func() *Stats {
		st := NewStats()
		st.Add("zeta", 1)
		st.Add("alpha", 2)
		st.Child("second").Add("x", 1)
		st.Child("first").Add("y", 2)
		return st
	}
	var b1, b2 bytes.Buffer
	build().Write(&b1, "solve")
	build().Write(&b2, "solve")
	if b1.String() != b2.String() {
		t.Fatalf("nondeterministic render:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	// Counters sorted by name, children in creation order.
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if strings.Index(out, "second") > strings.Index(out, "first") {
		t.Fatalf("children not in creation order:\n%s", out)
	}
}

func TestStatsConcurrent(t *testing.T) {
	st := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				st.Add("n", 1)
				st.Child("c").Add("m", 1)
			}
		}()
	}
	wg.Wait()
	if st.Counter("n") != 8000 || st.Total("m") != 8000 {
		t.Fatalf("lost updates: n=%d m=%d", st.Counter("n"), st.Total("m"))
	}
}
