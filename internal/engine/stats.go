package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stats is one node of a hierarchical tree of named counters and phase
// timers. Layers record into the node of the context they run under
// (solver verdict diagnostics, §9-style evaluation tables); the tree is
// rendered deterministically by Write. A nil *Stats ignores writes and
// reads as zero, so instrumented code needs no nil checks. All methods
// are safe for concurrent use.
type Stats struct {
	mu       sync.Mutex
	counters map[string]int64
	timers   map[string]time.Duration
	children map[string]*Stats
	order    []string // child names in creation order
}

// NewStats returns an empty statistics node.
func NewStats() *Stats {
	return &Stats{}
}

// Add increments counter name by n.
func (s *Stats) Add(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += n
	s.mu.Unlock()
}

// AddDuration accumulates d under timer name.
func (s *Stats) AddDuration(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.timers == nil {
		s.timers = make(map[string]time.Duration)
	}
	s.timers[name] += d
	s.mu.Unlock()
}

// Time starts a phase timer; the returned stop function accumulates the
// elapsed time under name. Typical use: defer st.Time("presolve")().
func (s *Stats) Time(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.AddDuration(name, time.Since(start)) }
}

// Counter reads counter name (0 when absent).
func (s *Stats) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Duration reads timer name (0 when absent).
func (s *Stats) Duration(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timers[name]
}

// Child returns the named child node, creating it on first use.
// Children render in creation order.
func (s *Stats) Child(name string) *Stats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = make(map[string]*Stats)
	}
	c, ok := s.children[name]
	if !ok {
		c = NewStats()
		s.children[name] = c
		s.order = append(s.order, name)
	}
	return c
}

// Total sums counter name over this node and all descendants; the
// benchmark aggregates (mean conflicts, pivots, rounds per instance)
// are built from it.
func (s *Stats) Total(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	total := s.counters[name]
	kids := make([]*Stats, 0, len(s.order))
	for _, n := range s.order {
		kids = append(kids, s.children[n])
	}
	s.mu.Unlock()
	for _, c := range kids {
		total += c.Total(name)
	}
	return total
}

// TotalDuration sums timer name over this node and all descendants.
func (s *Stats) TotalDuration(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	total := s.timers[name]
	kids := make([]*Stats, 0, len(s.order))
	for _, n := range s.order {
		kids = append(kids, s.children[n])
	}
	s.mu.Unlock()
	for _, c := range kids {
		total += c.TotalDuration(name)
	}
	return total
}

// Merge adds every counter, timer, and (recursively) child of o into s.
func (s *Stats) Merge(o *Stats) {
	if s == nil || o == nil {
		return
	}
	o.mu.Lock()
	counters := make(map[string]int64, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	timers := make(map[string]time.Duration, len(o.timers))
	for k, v := range o.timers {
		timers[k] = v
	}
	names := append([]string(nil), o.order...)
	kids := make([]*Stats, len(names))
	for i, n := range names {
		kids[i] = o.children[n]
	}
	o.mu.Unlock()
	for k, v := range counters {
		s.Add(k, v)
	}
	for k, v := range timers {
		s.AddDuration(k, v)
	}
	for i, n := range names {
		s.Child(n).Merge(kids[i])
	}
}

// Snapshot is a point-in-time copy of a Stats subtree with exported
// fields, so callers (the trauserve /stats endpoint) can render the
// hierarchical statistics as JSON. Timers are nanoseconds. JSON
// objects do not preserve key order, so Order carries the children's
// creation order alongside the Children map.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	TimersNS map[string]int64     `json:"timers_ns,omitempty"`
	Children map[string]*Snapshot `json:"children,omitempty"`
	Order    []string             `json:"order,omitempty"`
}

// Snapshot copies the subtree rooted at s. It is safe to call
// concurrently with writers; each node is copied under its own lock, so
// the snapshot is per-node (not globally) consistent — the same
// guarantee Write gives.
func (s *Stats) Snapshot() *Snapshot {
	out := &Snapshot{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	if len(s.counters) > 0 {
		out.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			out.Counters[k] = v
		}
	}
	if len(s.timers) > 0 {
		out.TimersNS = make(map[string]int64, len(s.timers))
		for k, v := range s.timers {
			out.TimersNS[k] = int64(v)
		}
	}
	names := append([]string(nil), s.order...)
	kids := make([]*Stats, len(names))
	for i, n := range names {
		kids[i] = s.children[n]
	}
	s.mu.Unlock()
	if len(names) > 0 {
		out.Children = make(map[string]*Snapshot, len(names))
		for i, n := range names {
			out.Children[n] = kids[i].Snapshot()
		}
		out.Order = names
	}
	return out
}

// Write renders the subtree rooted at s under the given name:
// counters first, then timers, each sorted by name, then children in
// creation order, indented two spaces per level. The layout is
// deterministic (timer values naturally vary run to run; ordering does
// not).
func (s *Stats) Write(w io.Writer, name string) {
	s.write(w, name, 0)
}

func (s *Stats) write(w io.Writer, name string, depth int) {
	indent := make([]byte, 2*depth)
	for i := range indent {
		indent[i] = ' '
	}
	fmt.Fprintf(w, "%s%s:\n", indent, name)
	if s == nil {
		return
	}
	s.mu.Lock()
	counterNames := make([]string, 0, len(s.counters))
	for k := range s.counters {
		counterNames = append(counterNames, k)
	}
	timerNames := make([]string, 0, len(s.timers))
	for k := range s.timers {
		timerNames = append(timerNames, k)
	}
	counters := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	timers := make(map[string]time.Duration, len(s.timers))
	for k, v := range s.timers {
		timers[k] = v
	}
	childNames := append([]string(nil), s.order...)
	kids := make([]*Stats, len(childNames))
	for i, n := range childNames {
		kids[i] = s.children[n]
	}
	s.mu.Unlock()

	sort.Strings(counterNames)
	sort.Strings(timerNames)
	for _, k := range counterNames {
		fmt.Fprintf(w, "%s  %-24s %d\n", indent, k, counters[k])
	}
	for _, k := range timerNames {
		fmt.Fprintf(w, "%s  %-24s %v\n", indent, k, timers[k].Round(time.Microsecond))
	}
	for i, n := range childNames {
		kids[i].write(w, n, depth+1)
	}
}
