package portfolio

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// convProblem builds n = toNum(x), n = 42, len(x) = 4 — the
// quickstart instance, with a conversion-heavy feature vector.
func convProblem() *strcon.Problem {
	p := strcon.NewProblem()
	x := p.NewStrVar("x")
	n := p.NewIntVar("n")
	p.Add(&strcon.ToNum{X: x, N: n})
	p.Add(&strcon.Arith{F: lia.EqConst(n, 42)})
	p.Add(&strcon.Arith{F: lia.EqConst(p.LenVar(x), 4)})
	return p
}

func TestExtractFeatures(t *testing.T) {
	p := convProblem()
	p.Prepare()
	f := Extract(p)
	if f.Conversions != 1 {
		t.Fatalf("Conversions = %d, want 1", f.Conversions)
	}
	if f.LengthCons != 2 {
		t.Fatalf("LengthCons = %d, want 2", f.LengthCons)
	}
	if f.StrVars != 1 {
		t.Fatalf("StrVars = %d, want 1", f.StrVars)
	}
	if f.Constraints != 3 {
		t.Fatalf("Constraints = %d, want 3", f.Constraints)
	}
	b := f.Bucket()
	if b != "conv1 re0 len1 eq0 sz0 loop2" {
		t.Fatalf("Bucket = %q", b)
	}
	if b != Extract(p).Bucket() {
		t.Fatal("Bucket not deterministic")
	}
}

// TestScheduleDeterministicAndAnchored pins the scheduler: identical
// features and history produce an identical selection, in registry
// order, and the fully-capable anchor backend survives any history
// bias against it.
func TestScheduleDeterministicAndAnchored(t *testing.T) {
	s := New(Config{})
	p := convProblem()
	p.Prepare()
	f := Extract(p)
	first := names(s.schedule(f, f.Bucket()))
	if !reflect.DeepEqual(first, names(s.schedule(f, f.Bucket()))) {
		t.Fatalf("schedule not deterministic: %v", first)
	}
	anchored := false
	for _, n := range first {
		if n == "refine" {
			anchored = true
		}
	}
	if !anchored {
		t.Fatalf("selection %v lacks the anchor backend", first)
	}

	// Poison the history: enum, split and overapprox-only win
	// overwhelmingly in this bucket. The bias must reorder the race,
	// yet the anchor stays in.
	bucket := f.Bucket()
	s.hist[bucket] = map[string]*record{
		"enum":            {picks: 100, wins: 100},
		"split":           {picks: 100, wins: 100},
		"overapprox-only": {picks: 100, wins: 100},
		"refine":          {picks: 100, losses: 100},
	}
	biased := names(s.schedule(f, bucket))
	anchored = false
	for _, n := range biased {
		if n == "refine" {
			anchored = true
		}
	}
	if !anchored {
		t.Fatalf("biased selection %v dropped the anchor backend", biased)
	}
}

func names(bs []backend.Backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name()
	}
	return out
}

// TestSolveRecordsHistoryAndStats solves one instance and checks the
// full bookkeeping chain: win recorded in the bucket history, stats
// tree counters under portfolio/<bucket>, and a Snapshot exposing the
// win rate and the decision.
func TestSolveRecordsHistoryAndStats(t *testing.T) {
	s := New(Config{})
	ec := engine.WithTimeout(10 * time.Second)
	res := s.Solve(convProblem(), backend.Options{}, ec)
	if res.Status != core.StatusSat {
		t.Fatalf("solve = %v (%s), want sat", res.Status, res.Reason)
	}
	if res.Backend == "" || res.Backend == "portfolio" {
		t.Fatalf("winner backend = %q, want a concrete engine", res.Backend)
	}
	if res.Model == nil || !convProblem().Eval(res.Model) {
		t.Fatal("winner model missing or invalid on the original problem")
	}

	snap := s.Snapshot()
	if snap.Races != 1 {
		t.Fatalf("Races = %d, want 1", snap.Races)
	}
	agg, ok := snap.Backends[res.Backend]
	if !ok || agg.Wins != 1 || agg.WinRate != 1 {
		t.Fatalf("winner counters = %+v (present %v)", agg, ok)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Winner != res.Backend {
		t.Fatalf("Recent = %+v", snap.Recent)
	}
	bucket := snap.Recent[0].Bucket
	if _, ok := snap.Buckets[bucket][res.Backend]; !ok {
		t.Fatalf("bucket %q missing winner entry: %+v", bucket, snap.Buckets)
	}

	if got := ec.Stats().Total("races"); got != 1 {
		t.Fatalf("stats races = %d, want 1", got)
	}
	if got := ec.Stats().Total(res.Backend + ".win"); got != 1 {
		t.Fatalf("stats tree win counter = %d, want 1", got)
	}
}

// TestCapsUnion checks the portfolio's capability report is the union
// of its pool.
func TestCapsUnion(t *testing.T) {
	c := New(Config{}).Caps()
	if !c.ProvesSat || !c.ProvesUnsat || !c.Conversion || !c.Regex {
		t.Fatalf("Caps() = %+v, want the full union", c)
	}
	only, err := backend.Select("overapprox-only")
	if err != nil {
		t.Fatal(err)
	}
	c = New(Config{Backends: only}).Caps()
	if c.ProvesSat {
		t.Fatalf("refutation-only pool reports ProvesSat: %+v", c)
	}
}

// TestBackendsSubsetRespected pins -backends: with a restricted pool
// the race never consults engines outside it.
func TestBackendsSubsetRespected(t *testing.T) {
	pool, err := backend.Select("refine,enum")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Backends: pool})
	res := s.Solve(convProblem(), backend.Options{}, engine.WithTimeout(10*time.Second))
	if res.Status != core.StatusSat {
		t.Fatalf("solve = %v, want sat", res.Status)
	}
	for name := range s.Snapshot().Backends {
		if name != "refine" && name != "enum" {
			t.Fatalf("backend %q raced outside the configured pool", name)
		}
	}
}
