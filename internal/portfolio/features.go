// Package portfolio races complementary decision procedures from the
// backend registry against each other: a scheduler picks a subset per
// problem from cheap syntactic features, each backend runs on its own
// goroutine with a private problem clone and a slice of the resource
// budget, the first settled SAT/UNSAT verdict cancels the rest, and
// per-backend win/loss/timeout counts — bucketed by feature vector —
// bias future scheduling toward historical winners.
package portfolio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/strcon"
)

// Features is the cheap syntactic profile the scheduler extracts from
// a prepared problem. Extraction is a single recursive scan of the
// constraint tree, StaticLoopLen-style — no solving.
type Features struct {
	// Conversions counts string-number constraints (toNum + toStr).
	Conversions int
	// Memberships counts regular-membership constraints.
	Memberships int
	// LengthCons counts arithmetic constraints (length and integer
	// atoms riding on the string structure).
	LengthCons int
	// WordEqs counts word (dis)equations and orderings.
	WordEqs int
	// Constraints is the total leaf-constraint count.
	Constraints int
	// StrVars is the number of string variables.
	StrVars int
	// LoopLen is the static loop-length estimate (core.StaticLoopLen).
	LoopLen int
}

// Extract profiles the problem. It only reads; call it after Prepare
// so desugared constraints are counted in their final shape.
func Extract(prob *strcon.Problem) Features {
	f := Features{StrVars: prob.NumStrVars(), LoopLen: core.StaticLoopLen(prob)}
	var scan func(c strcon.Constraint)
	scan = func(c strcon.Constraint) {
		switch t := c.(type) {
		case *strcon.ToNum, *strcon.ToStr:
			f.Conversions++
			f.Constraints++
		case *strcon.Membership:
			f.Memberships++
			f.Constraints++
		case *strcon.Arith:
			f.LengthCons++
			f.Constraints++
		case *strcon.WordEq, *strcon.WordNeq, *strcon.Ord:
			f.WordEqs++
			f.Constraints++
		case *strcon.AndCon:
			for _, a := range t.Args {
				scan(a)
			}
		case *strcon.OrCon:
			for _, a := range t.Args {
				scan(a)
			}
		default:
			f.Constraints++
		}
	}
	for _, c := range prob.Constraints {
		scan(c)
	}
	return f
}

// level coarsens a count into 0, 1 (1–3) or 2 (4+): buckets must be
// coarse enough that instances of one family land in one bucket and
// the win history actually accumulates.
func level(n int) int {
	switch {
	case n <= 0:
		return 0
	case n <= 3:
		return 1
	default:
		return 2
	}
}

// sizeLevel coarsens the total constraint count.
func sizeLevel(n int) int {
	switch {
	case n <= 8:
		return 0
	case n <= 32:
		return 1
	default:
		return 2
	}
}

// Bucket is the feature vector's coarse key: the unit of win/loss
// bookkeeping and of scheduling bias.
func (f Features) Bucket() string {
	return fmt.Sprintf("conv%d re%d len%d eq%d sz%d loop%d",
		level(f.Conversions), level(f.Memberships), level(f.LengthCons),
		level(f.WordEqs), sizeLevel(f.Constraints), f.LoopLen)
}
