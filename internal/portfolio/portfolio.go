package portfolio

import (
	"sort"
	"sync"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/strcon"
)

// Config configures a portfolio solver.
type Config struct {
	// Backends is the candidate pool, in registry order (nil means the
	// whole registry).
	Backends []backend.Backend
	// MaxRace bounds how many backends race per solve (default 3).
	MaxRace int
}

// record is the per-bucket, per-backend outcome history.
type record struct {
	picks, wins, losses, timeouts int64
}

// Solver is a stateful portfolio: the outcome history it accumulates
// across solves biases future scheduling. It implements
// backend.Backend and is safe for concurrent use.
type Solver struct {
	backends []backend.Backend
	maxRace  int

	mu     sync.Mutex
	races  int64
	hist   map[string]map[string]*record // bucket -> backend -> outcomes
	recent []Decision
}

// New builds a portfolio solver over the configured backend pool.
func New(cfg Config) *Solver {
	bs := cfg.Backends
	if len(bs) == 0 {
		bs = backend.All()
	}
	maxRace := cfg.MaxRace
	if maxRace <= 0 {
		maxRace = 3
	}
	return &Solver{backends: bs, maxRace: maxRace, hist: map[string]map[string]*record{}}
}

// Name implements backend.Backend.
func (s *Solver) Name() string { return "portfolio" }

// Caps reports the union of the pool's capabilities.
func (s *Solver) Caps() backend.Caps {
	var u backend.Caps
	for _, b := range s.backends {
		c := b.Caps()
		u.ProvesSat = u.ProvesSat || c.ProvesSat
		u.ProvesUnsat = u.ProvesUnsat || c.ProvesUnsat
		u.Conversion = u.Conversion || c.Conversion
		u.Regex = u.Regex || c.Regex
		if c.CostHint > u.CostHint {
			u.CostHint = c.CostHint
		}
	}
	return u
}

// Solve races a scheduled subset of the pool on the problem.
//
// Solve is a panic boundary: a contract panic in the scheduler (or in
// a backend before its goroutine boundary takes over) degrades the
// solve to UNKNOWN with a Fault diagnostic.
func (s *Solver) Solve(prob *strcon.Problem, opts backend.Options, ec *engine.Ctx) core.Result {
	if ec == nil {
		ec = engine.Background()
	}
	var res core.Result
	if d := fault.Contain("portfolio.Solve", func() { res = s.solve(prob, opts, ec) }); d != nil {
		ec.Stats().Add("fault.contained", 1)
		res = core.Result{Status: core.StatusUnknown, Reason: "panic: " + d.Value,
			Fault: d, Backend: "portfolio", Stats: ec.Stats()}
	}
	return res
}

// settled reports a verdict that ends the race.
func settled(st core.Status) bool {
	return st == core.StatusSat || st == core.StatusUnsat
}

func (s *Solver) solve(prob *strcon.Problem, opts backend.Options, ec *engine.Ctx) core.Result {
	st := ec.Stats().Child("portfolio")
	stop := st.Time("time.schedule")
	// Prepare once on the caller's goroutine: resolving the membership
	// automata up front is what makes the constraint values safe to
	// share across the concurrently racing clones (same rule as the
	// core's parallel branches).
	prob.Prepare()
	f := Extract(prob)
	bucket := f.Bucket()
	sel := s.schedule(f, bucket)
	stop()
	st.Add("races", 1)
	for _, b := range sel {
		st.Add("pick."+b.Name(), 1)
	}

	winner, results := race(prob, opts, sel, ec)

	out := core.Result{Status: core.StatusUnknown, Backend: "portfolio", Stats: ec.Stats()}
	if winner >= 0 {
		out = results[winner]
		out.Stats = ec.Stats()
		if out.Model != nil && !prob.Eval(out.Model) {
			// A winner's model must hold on the original problem, not
			// just its racing clone. Degrade, never trust it.
			out = core.Result{Status: core.StatusUnknown, ValidationFailed: true,
				Reason: "validation failed", Backend: out.Backend, Stats: ec.Stats()}
			winner = -1
		}
	}
	if out.Status == core.StatusUnknown && out.Reason == "" {
		out.Reason = core.UnknownReason(ec)
		if out.Reason == "rounds exhausted" {
			// The race's own context never stopped (budget slices are
			// confined to the attempts); surface the first attempt's
			// specific reason — "budget: <site>", "deadline" — instead
			// of the generic fallback.
			for _, r := range results {
				if r.Reason != "" && r.Reason != "rounds exhausted" {
					out.Reason = r.Reason
					break
				}
			}
		}
	}

	s.recordOutcomes(st, bucket, sel, winner, results, ec)
	return out
}

// race runs the selected backends concurrently, each under its own
// child context with an equal slice of the remaining resource budget
// (a backend exhausting its slice stops only itself — see
// engine.Ctx.SetBudget). The first settled SAT/UNSAT cancels every
// other attempt; after all goroutines join, the winner is the
// lowest-indexed settled result, so simultaneous finishes tie-break
// positionally (selection order follows registry order). Returns -1
// when nobody settled.
func race(prob *strcon.Problem, opts backend.Options, sel []backend.Backend,
	ec *engine.Ctx) (int, []core.Result) {
	n := len(sel)
	attempts := make([]*engine.Ctx, n)
	probs := make([]*strcon.Problem, n)
	rem, hasBudget := ec.BudgetRemaining()
	for i, b := range sel {
		attempts[i] = ec.Child("try." + b.Name())
		if hasBudget && rem > 0 {
			slice := rem / int64(n)
			if slice < 1 {
				slice = 1
			}
			// Install before the backend creates children: the slice
			// meter is inherited at Child time.
			attempts[i].SetBudget(slice)
		}
		// A private clone per backend: its own arithmetic pool and
		// variable tables, so concurrent solves never share mutable
		// state. Variable numbering is shared, so models transfer back.
		probs[i] = prob.WithConstraints(prob.Constraints)
	}
	results := make([]core.Result, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range sel {
		wg.Add(1)
		go func(i int) {
			// Panic boundary: a goroutine panic would bypass the
			// recover in Solve and kill the process. A crashed backend
			// counts as UNKNOWN — it degrades only itself, never the
			// race's verdict.
			defer wg.Done()
			if d := fault.Contain("portfolio.race", func() {
				results[i] = sel[i].Solve(probs[i], opts, attempts[i])
			}); d != nil {
				attempts[i].Stats().Add("fault.contained", 1)
				results[i] = core.Result{Status: core.StatusUnknown,
					Reason: "panic: " + d.Value, Fault: d,
					Backend: sel[i].Name(), Stats: attempts[i].Stats()}
			}
			if settled(results[i].Status) {
				mu.Lock()
				for j := range attempts {
					if j != i {
						attempts[j].Cancel()
					}
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for i := range results {
		if settled(results[i].Status) {
			return i, results
		}
	}
	return -1, results
}

// schedule picks up to maxRace backends for this feature vector:
// capability fit and cost order the candidates, the bucket's win
// history biases the score, and a fully-capable anchor backend is
// always kept in the race so the biased selection can never drop the
// only engine able to settle the instance. The returned slice is in
// registry order (the race's positional tie-break).
func (s *Solver) schedule(f Features, bucket string) []backend.Backend {
	type cand struct {
		b     backend.Backend
		score int64
		pos   int
	}
	s.mu.Lock()
	hb := s.hist[bucket]
	cands := make([]cand, 0, len(s.backends))
	for pos, b := range s.backends {
		c := b.Caps()
		var sc int64
		if f.Conversions > 0 {
			if c.Conversion {
				sc += 40
			} else {
				sc -= 80
			}
		}
		if f.Memberships > 0 {
			if c.Regex {
				sc += 20
			} else {
				sc -= 80
			}
		}
		if c.ProvesSat && c.ProvesUnsat {
			sc += 20
		}
		sc -= int64(c.CostHint) * 5
		if r := hb[b.Name()]; r != nil {
			sc += 30*r.wins - 10*r.losses - 10*r.timeouts
		}
		cands = append(cands, cand{b: b, score: sc, pos: pos})
	}
	s.mu.Unlock()
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].pos < cands[j].pos
	})
	k := s.maxRace
	if k > len(cands) {
		k = len(cands)
	}
	sel := cands[:k]
	if a := s.anchor(); a >= 0 {
		present := false
		for _, c := range sel {
			if c.pos == a {
				present = true
				break
			}
		}
		if !present {
			sel[len(sel)-1] = cand{b: s.backends[a], pos: a}
		}
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].pos < sel[j].pos })
	out := make([]backend.Backend, len(sel))
	for i, c := range sel {
		out[i] = c.b
	}
	return out
}

// anchor returns the pool index of the first fully-capable backend
// (proves both verdicts, handles conversion and regex), or -1 when the
// configured pool has none.
func (s *Solver) anchor() int {
	for i, b := range s.backends {
		c := b.Caps()
		if c.ProvesSat && c.ProvesUnsat && c.Conversion && c.Regex {
			return i
		}
	}
	return -1
}

// recordOutcomes books the race's outcome both into the solver's own
// history (the scheduling bias) and into the solve's engine stats tree
// under portfolio/<bucket>, so /stats and -stats expose win/loss/
// timeout counts per feature bucket.
func (s *Solver) recordOutcomes(st *engine.Stats, bucket string, sel []backend.Backend,
	winner int, results []core.Result, ec *engine.Ctx) {
	bst := st.Child(bucket)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.races++
	hb := s.hist[bucket]
	if hb == nil {
		hb = map[string]*record{}
		s.hist[bucket] = hb
	}
	d := Decision{Bucket: bucket}
	for i, b := range sel {
		name := b.Name()
		r := hb[name]
		if r == nil {
			r = &record{}
			hb[name] = r
		}
		r.picks++
		d.Picked = append(d.Picked, name)
		switch {
		case i == winner:
			r.wins++
			bst.Add(name+".win", 1)
			d.Winner = name
		case timedOut(results[i], ec):
			r.timeouts++
			bst.Add(name+".timeout", 1)
		default:
			r.losses++
			bst.Add(name+".loss", 1)
		}
	}
	if len(s.recent) >= recentCap {
		s.recent = append(s.recent[:0], s.recent[1:]...)
	}
	s.recent = append(s.recent, d)
}

// timedOut classifies a losing attempt: the race's shared deadline
// expiring counts as a timeout, everything else (cancelled by the
// winner, budget slice, incomplete engine) as a plain loss.
func timedOut(r core.Result, ec *engine.Ctx) bool {
	return ec.TimedOut() && r.Status == core.StatusUnknown && r.Reason == "deadline"
}

// recentCap bounds the decision log exposed under /stats.
const recentCap = 32

// BackendCounts is one backend's aggregated outcome counters.
type BackendCounts struct {
	Picks    int64   `json:"picks"`
	Wins     int64   `json:"wins"`
	Losses   int64   `json:"losses"`
	Timeouts int64   `json:"timeouts"`
	WinRate  float64 `json:"win_rate"`
}

// Decision is one scheduling decision: which backends raced for a
// bucket and who settled it.
type Decision struct {
	Bucket string   `json:"bucket"`
	Picked []string `json:"picked"`
	Winner string   `json:"winner,omitempty"`
}

// Snapshot is the portfolio's observable state for /stats: total
// races, per-backend win rates (aggregate and per feature bucket), and
// the most recent scheduling decisions.
type Snapshot struct {
	Races    int64                               `json:"races"`
	Backends map[string]BackendCounts            `json:"backends"`
	Buckets  map[string]map[string]BackendCounts `json:"buckets"`
	Recent   []Decision                          `json:"recent,omitempty"`
}

// Snapshot returns a copy of the solver's cumulative outcome history.
func (s *Solver) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		Races:    s.races,
		Backends: map[string]BackendCounts{},
		Buckets:  map[string]map[string]BackendCounts{},
	}
	for bucket, hb := range s.hist {
		bb := map[string]BackendCounts{}
		for name, r := range hb {
			c := BackendCounts{Picks: r.picks, Wins: r.wins, Losses: r.losses, Timeouts: r.timeouts}
			if r.picks > 0 {
				c.WinRate = float64(r.wins) / float64(r.picks)
			}
			bb[name] = c
			agg := out.Backends[name]
			agg.Picks += r.picks
			agg.Wins += r.wins
			agg.Losses += r.losses
			agg.Timeouts += r.timeouts
			out.Backends[name] = agg
		}
		out.Buckets[bucket] = bb
	}
	for name, agg := range out.Backends {
		if agg.Picks > 0 {
			agg.WinRate = float64(agg.Wins) / float64(agg.Picks)
			out.Backends[name] = agg
		}
	}
	out.Recent = append([]Decision(nil), s.recent...)
	return out
}
