package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errDrop flags expression statements that discard an error return
// inside internal/. fmt printing functions and the never-failing
// strings.Builder / bytes.Buffer writers are exempt; an explicit
// `_ = f()` assignment documents intent and is also accepted.
var errDrop = &Analyzer{
	Name:  "errdrop",
	Doc:   "discarded error returns inside internal/",
	Scope: inInternal,
	Run:   runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || errDropExempt(p, call) {
				return true
			}
			p.Report(call.Pos(), "errdrop",
				fmt.Sprintf("result of %s discards an error; handle it or assign to _ explicitly", callName(call)))
			return true
		})
	}
}

// returnsError reports whether the call's result contains an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// errDropExempt exempts fmt print calls and writers that are
// documented never to fail.
func errDropExempt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if x, isIdent := sel.X.(*ast.Ident); isIdent {
		if pkg, isPkg := p.Info.Uses[x].(*types.PkgName); isPkg {
			if pkg.Imported().Path() == "fmt" {
				return true
			}
			return false
		}
	}
	// Methods on strings.Builder / bytes.Buffer return nil errors by
	// contract.
	recv := p.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	s := recv.String()
	return strings.HasSuffix(s, "strings.Builder") || strings.HasSuffix(s, "bytes.Buffer")
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
