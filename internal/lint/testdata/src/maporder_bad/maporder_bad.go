// Package maporder_bad holds failing fixtures for the maporder check.
package maporder_bad

import (
	"fmt"
	"io"
	"strings"
)

// CollectUnsorted appends map keys without ever sorting the result:
// callers observe a different order every run.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

// PrintEntries prints in map iteration order.
func PrintEntries(m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Println(k, v)
	}
}

// WriteEntries writes clauses to an output stream in map order.
func WriteEntries(w io.Writer, m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BuildString builds a string in map iteration order; as
// nondeterministic as printing.
func BuildString(m map[string]bool) string {
	var b strings.Builder
	for k := range m { // want maporder
		b.WriteString(k)
	}
	return b.String()
}

// BareDirective has a //lint:ordered with no justification, which is
// itself a finding.
func BareDirective(m map[string]int) []string {
	var keys []string
	//lint:ordered
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}
