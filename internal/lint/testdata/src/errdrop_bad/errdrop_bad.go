// Package errdrop_bad holds failing fixtures for the errdrop check.
package errdrop_bad

import (
	"io"
	"os"
	"strconv"
)

func step() error { return nil }

func parse(s string) (int, error) { return strconv.Atoi(s) }

// DropPlain discards a bare error return.
func DropPlain() {
	step() // want errdrop
}

// DropTuple discards the error half of a (value, error) return.
func DropTuple(s string) {
	parse(s) // want errdrop
}

// DropMethod discards an error from a method call.
func DropMethod(f *os.File, p []byte) {
	f.Write(p) // want errdrop
}

// DropInterface discards an error from an interface method.
func DropInterface(c io.Closer) {
	c.Close() // want errdrop
}
