// Package cachetaint_good holds the sanctioned caching patterns:
// field-sensitive separation of diagnostics from verdicts, boolean
// Expired/Poll guards, settled-status proofs, and a justified
// suppression.
package cachetaint_good

type status int

const (
	StatusUnknown status = iota
	StatusSat
	StatusUnsat
)

type witness struct{ s string }

type verdict struct {
	status  status
	witness *witness
}

type cache struct{ m map[string]verdict }

func (c *cache) put(k string, v verdict) { c.m[k] = v }

type result struct {
	Status status
	Reason string
	Model  []int
}

type ectx struct{}

func (e *ectx) BudgetReason() string { return "budget: x" }
func (e *ectx) Expired() bool        { return false }

// The sanctioned pattern: the Reason field is budget-tainted but never
// reaches the cache; Status does, under a clean Expired guard and a
// settled switch.
func cacheSettled(c *cache, e *ectx, key string, res result) {
	if e.Expired() {
		res = result{Status: StatusUnknown, Reason: e.BudgetReason()}
	}
	if !e.Expired() {
		switch res.Status {
		case StatusSat:
			c.put(key, verdict{status: StatusSat, witness: &witness{s: "w"}})
		case StatusUnsat:
			c.put(key, verdict{status: StatusUnsat})
		}
	}
}

// Witness material derived from the model, not from diagnostics.
func stringify(m []int) string {
	s := ""
	for range m {
		s += "x"
	}
	return s
}

func cacheModel(c *cache, key string, res result) {
	if res.Status == StatusSat {
		c.put(key, verdict{status: StatusSat, witness: &witness{s: stringify(res.Model)}})
	}
}

// A justified suppression stays silent.
func cacheSuppressed(c *cache, key string, st status) {
	//lint:cachesafe st is proven settled by the caller's contract
	c.put(key, verdict{status: st})
}
