// Package overflowguard_good holds the shapes overflowguard must
// accept: checked helpers, justified range arguments, constant folds,
// and arithmetic on types outside the substrate's word type.
package overflowguard_good

// add64 is an overflow-checked helper: a+b and whether it fit. The
// marker phrase in this doc comment exempts the raw operations that
// implement the check itself.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// viaHelper routes its arithmetic through the checked helper.
func viaHelper(a, b int64) int64 {
	s, ok := add64(a, b)
	if !ok {
		return 0
	}
	return s
}

// justified carries range arguments on every raw operation.
func justified(pivots int64) int64 {
	pivots++              //lint:nooverflow monotone counter, budgets trip long before int64 wraps
	limit := pivots + 500 //lint:nooverflow counter stays far below int64 range
	return limit
}

// constants and non-int64 arithmetic are out of scope: untyped folds
// cannot wrap at run time, and int loop counters are not substrate
// values.
func outOfScope(xs []int) int {
	const page = 1 << 20
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	var u uint64
	u = u + 3
	_ = u
	return total + page
}

// division keeps the denominator invariant: / and % cannot overflow
// off MinInt64/-1, which reduced form excludes, so they are exempt.
func divide(n, d int64) int64 {
	q := n / d
	r := n % d
	if r != 0 {
		return q
	}
	return q
}
