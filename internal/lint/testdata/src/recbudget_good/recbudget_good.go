// Package recbudget_good holds passing fixtures for the recbudget check.
package recbudget_good

import "fmt"

type tree struct {
	kids []*tree
}

// SizeAt carries an explicit depth parameter.
func SizeAt(t *tree, depth int) int {
	if depth > 1024 {
		panic("recbudget_good: tree too deep")
	}
	n := 1
	for _, k := range t.kids {
		n += SizeAt(k, depth+1)
	}
	return n
}

// countDown carries its budget under another accepted name.
func countDown(t *tree, fuel int) int {
	if fuel == 0 {
		return 0
	}
	n := 1
	for _, k := range t.kids {
		n += countDown(k, fuel-1)
	}
	return n
}

type walker struct {
	depthLimit int
}

// Walk recurses but the receiver carries a budget field.
func (w *walker) Walk(t *tree) int {
	if w.depthLimit == 0 {
		return 0
	}
	inner := walker{depthLimit: w.depthLimit - 1}
	n := 1
	for _, k := range t.kids {
		n += inner.Walk(k)
	}
	return n
}

// String is recursive but exempt: the Stringer contract fixes its
// signature, so it cannot take a budget parameter.
func (t *tree) String() string {
	out := "("
	for _, k := range t.kids {
		out += k.String()
	}
	return out + ")"
}

// Flat is iterative: never flagged.
func Flat(t *tree) string {
	return fmt.Sprintf("%d kids", len(t.kids))
}
