// Package maporder_good holds passing fixtures for the maporder check.
package maporder_good

import (
	"fmt"
	"sort"
)

// CollectSorted appends map keys and sorts them before returning: the
// subsequent sort discharges the finding.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrintSortedKeys iterates an already-sorted key slice, not the map.
func PrintSortedKeys(m map[string]int) {
	keys := CollectSorted(m)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// SumValues ranges over a map but the body neither appends to an
// outer slice nor writes output: order cannot be observed.
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Justified carries a //lint:ordered directive with a justification.
func Justified(m map[string]int) []string {
	var keys []string
	//lint:ordered order is re-established by the caller's sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// LocalAppend appends to a slice declared inside the loop body; it
// cannot outlive an iteration, so order is unobservable.
func LocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
