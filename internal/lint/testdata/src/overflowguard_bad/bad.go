// Package overflowguard_bad holds raw int64 arithmetic outside the
// checked helpers: every operation here can wrap silently.
package overflowguard_bad

// combine mixes unchecked int64 operations.
func combine(a, b int64) int64 {
	s := a + b           // want overflowguard
	p := a * b           // want overflowguard
	d := a - b           // want overflowguard
	n := -a              // want overflowguard
	return s + p + d + n // want overflowguard
}

// count increments and op-assigns without a range argument.
func count(xs []int64) int64 {
	var total int64
	for _, x := range xs {
		total += x // want overflowguard
	}
	var c int64
	c++              // want overflowguard
	return total * c // want overflowguard
}

// unjustified has a directive with no argument: the suppression is
// consulted but the missing justification is itself a finding.
func unjustified(a, b int64) int64 {
	//lint:nooverflow
	return a + b // want overflowguard
}
