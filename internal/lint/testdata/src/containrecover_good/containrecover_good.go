// Package containrecover_good holds passing fixtures for the
// containrecover check.
package containrecover_good

// boundary mimics the fault package's Contain surface.
type boundary struct{}

func (boundary) Contain(name string, fn func()) error {
	fn()
	return nil
}

var fault boundary

// contained runs the goroutine body under a panic boundary.
func contained(work func()) {
	go func() {
		_ = fault.Contain("worker", func() {
			work()
		})
	}()
}

// annotated spawns plumbing that runs no solver code and says so.
func annotated(done chan struct{}) {
	go func() { //lint:nocontain only closes a channel, no solver code
		close(done)
	}()
}

// annotatedNamed spawns a named function under an annotation on the
// preceding line.
func annotatedNamed(done chan struct{}) {
	//lint:nocontain channel close only
	go closer(done)
}

func closer(done chan struct{}) { close(done) }
