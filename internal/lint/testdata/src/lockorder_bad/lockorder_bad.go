// Package lockorder_bad holds lock-order inversions: a direct AB/BA
// cycle, an exclusive re-acquisition, and a cycle that only appears
// through the call graph.
package lockorder_bad

import "sync"

type s struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
}

// Direct inversion: ab takes a then b, ba takes b then a.
func ab(x *s) {
	x.a.Lock()
	x.b.Lock() // want lockorder
	x.b.Unlock()
	x.a.Unlock()
}

func ba(x *s) {
	x.b.Lock()
	x.a.Lock()
	x.a.Unlock()
	x.b.Unlock()
}

// Exclusive re-acquisition self-deadlocks.
func rec(x *s) {
	x.c.Lock()
	x.c.Lock() // want lockorder
	x.c.Unlock()
	x.c.Unlock()
}

// The d->a edge exists only through the call graph: viaCall holds d
// across a call into helper, which takes a.
func viaCall(x *s) {
	x.d.Lock()
	defer x.d.Unlock()
	helper(x)
}

func helper(x *s) {
	x.a.Lock()
	x.a.Unlock()
}

func inverse(x *s) {
	x.a.Lock()
	x.d.Lock() // want lockorder
	x.d.Unlock()
	x.a.Unlock()
}
