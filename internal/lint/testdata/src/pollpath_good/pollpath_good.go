// Package pollpath_good holds cycles that poll on every path, bounded
// loops that need no poll, and a justified suppression.
package pollpath_good

type ctx struct{ n int }

func (c *ctx) Poll() bool                       { return false }
func (c *ctx) Expired() bool                    { return false }
func (c *ctx) Charge(site string, n int64) bool { return false }

type solver struct {
	c     *ctx
	props int
	trail []int
	qhead int
}

// The strided-poll idiom: the condition containing the Poll sits on
// every path through the cycle.
func strided(s *solver) {
	for s.qhead < len(s.trail) {
		if s.props%64 == 0 && s.c.Poll() {
			return
		}
		s.props++
		s.qhead++
	}
}

// Bounded loops are exempt: ranges and counted loops whose bound does
// not grow.
func bounded(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	for i := 0; i < 100; i++ {
		t++
	}
	return t
}

// Charge polls as part of billing.
func charged(s *solver, n int) {
	x := 0
	for {
		if s.c.Charge("site", 1) {
			return
		}
		x++
		if x > n {
			return
		}
	}
}

// Interprocedural: the callee polls on every one of its own paths, so
// the call covers the cycle.
func alwaysPoll(c *ctx) bool {
	if c.n%2 == 0 {
		return c.Poll()
	}
	return c.Expired()
}

func viaGoodCallee(c *ctx) {
	x := 0
	for {
		if alwaysPoll(c) {
			return
		}
		x++
	}
}

// A justified suppression stays silent.
func suppressed(n int) int {
	i := 0
	//lint:nopoll halving terminates in log2(n) iterations
	for n > 1 {
		n /= 2
		i++
	}
	return i
}
