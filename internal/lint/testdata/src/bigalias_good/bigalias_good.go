// Package bigalias_good holds passing fixtures for the bigalias check.
package bigalias_good

import "math/big"

type row struct {
	val *big.Int
}

// StoreCopy stores a defensive copy before continuing to mutate the
// accumulator: the canonical safe idiom.
func StoreCopy(m map[string]*big.Int, x *big.Int) {
	m["total"] = new(big.Int).Set(x)
	x.Add(x, big.NewInt(1))
}

// FreshReceiver stores the result of an Add whose receiver is a fresh
// value, so nothing is aliased.
func FreshReceiver(m map[string]*big.Int, a, b *big.Int) {
	m["sum"] = new(big.Int).Add(a, b)
}

// AppendCopies appends copies, mutating the accumulator afterwards.
func AppendCopies(out []*big.Int, acc *big.Int) []*big.Int {
	out = append(out, new(big.Int).Set(acc))
	acc.Mul(acc, acc)
	return out
}

// MutateBeforeEscape mutates first and stores afterwards; the stored
// value is never changed again inside this function.
func MutateBeforeEscape(r *row, a, b *big.Int) {
	a.Sub(a, b)
	r.val = a
}

// ReadOnly only reads escaped values.
func ReadOnly(m map[string]*big.Int, x *big.Int) *big.Int {
	m["seen"] = x
	return new(big.Int).Add(x, m["seen"])
}
