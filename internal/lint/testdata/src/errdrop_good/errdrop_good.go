// Package errdrop_good holds passing fixtures for the errdrop check.
package errdrop_good

import (
	"fmt"
	"strconv"
	"strings"
)

func step() error { return nil }

// Handled checks the error.
func Handled() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

// ExplicitDiscard documents intent with a blank assignment.
func ExplicitDiscard() {
	_ = step()
}

// HandledTuple consumes both results.
func HandledTuple(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// FmtExempt: fmt printing error returns are conventionally ignored.
func FmtExempt(v int) {
	fmt.Println(v)
}

// BuilderExempt: strings.Builder writes never fail.
func BuilderExempt(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// NoError calls a function without an error result.
func NoError(xs []int) {
	count(xs)
}

func count(xs []int) int { return len(xs) }
