// Package chargecover_bad holds growth sites in unbounded cycles with
// no Charge metering them.
package chargecover_bad

type ctx struct{}

func (c *ctx) Poll() bool                       { return false }
func (c *ctx) Charge(site string, n int64) bool { return false }

// Growth in an unbounded cycle with no Charge anywhere; Poll does not
// meter.
func grow(c *ctx, n int) []int {
	var out []int
	for len(out) < n {
		out = append(out, len(out)) // want chargecover
		if c.Poll() {
			break
		}
	}
	return out
}

// A worklist: the counted bound grows inside the loop, so the append
// amplifies and must be metered.
func worklist(xs []int) []int {
	for i := 0; i < len(xs); i++ {
		if xs[i] > 0 {
			xs = append(xs, xs[i]-1) // want chargecover
		}
	}
	return xs
}

// Non-constant makes amplify too.
func alloc(n int) [][]int {
	var out [][]int
	i := 0
	for {
		if i >= n {
			return out
		}
		row := make([]int, i)  // want chargecover
		out = append(out, row) // want chargecover
		i++
	}
}

// Interprocedural: the caller rule does not rescue fill because its
// only call site is uncharged.
func fill(xs []int, n int) []int {
	for len(xs) < n {
		xs = append(xs, 0) // want chargecover
	}
	return xs
}

func useFill(xs []int) []int {
	return fill(xs, 10)
}
