// Package recbudget_bad holds failing fixtures for the recbudget check.
package recbudget_bad

type tree struct {
	kids []*tree
}

// Size is directly recursive with no depth budget: a deep input blows
// the stack.
func Size(t *tree) int { // want recbudget
	n := 1
	for _, k := range t.kids {
		n += Size(k)
	}
	return n
}

// evenNodes and oddNodes are mutually recursive without a budget.
func evenNodes(t *tree) int { // want recbudget
	n := 0
	for _, k := range t.kids {
		n += oddNodes(k)
	}
	return n
}

func oddNodes(t *tree) int { // want recbudget
	n := 1
	for _, k := range t.kids {
		n += evenNodes(k)
	}
	return n
}

type walker struct {
	seen int
}

// Walk is a recursive method on a receiver without a budget field.
func (w *walker) Walk(t *tree) { // want recbudget
	w.seen++
	for _, k := range t.kids {
		w.Walk(k)
	}
}
