// Package ctxpoll_good holds passing fixtures for the ctxpoll check.
package ctxpoll_good

// ctx mimics the engine context's polling surface.
type ctx struct{ stop bool }

func (c *ctx) Poll() bool    { return c.stop }
func (c *ctx) Expired() bool { return c.stop }

// polled checks the context every iteration.
func polled(c *ctx, work []int) int {
	n := 0
	i := 0
	for {
		if c.Poll() {
			return n
		}
		n += work[i%len(work)]
		i++
	}
}

// phased consults the wall clock at a phase boundary inside the loop.
func phased(c *ctx) int {
	n := 0
	for {
		if c.Expired() {
			return n
		}
		n++
	}
}

// justified is bounded and says why.
func justified(work []int) int {
	n, i := 0, 0
	//lint:nopoll bounded by the work slice: i strictly increases toward len(work)
	for {
		if i >= len(work) {
			return n
		}
		n += work[i]
		i++
	}
}

// conditional loops are out of scope: their bound is the condition.
func conditional(work []int) int {
	n := 0
	for i := 0; i < len(work); i++ {
		n += work[i]
	}
	return n
}
