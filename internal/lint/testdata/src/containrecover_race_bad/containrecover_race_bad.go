// Package containrecover_race_bad holds the failing half of the
// portfolio fixture pair: racing backend goroutines launched without a
// fault.Contain panic boundary. A panicking backend would kill the
// whole process instead of degrading to one lost race attempt.
package containrecover_race_bad

// boundary mimics the fault package's Contain surface.
type boundary struct{}

func (boundary) Contain(name string, fn func()) error {
	fn()
	return nil
}

var fault boundary

type backend interface {
	Name() string
	Solve() int
}

// race spawns one goroutine per backend with no panic boundary: a
// crash in any engine escapes every recover on the spawning stack.
func race(pool []backend, out chan<- int) {
	for _, b := range pool {
		b := b
		go func() { // want containrecover
			out <- b.Solve()
		}()
	}
}

// raceNamed hands the backend to a named runner the check cannot
// inspect locally, unannotated.
func raceNamed(pool []backend, out chan<- int) {
	for _, b := range pool {
		go runBackend(b, out) // want containrecover
	}
}

func runBackend(b backend, out chan<- int) { out <- b.Solve() }

// raceDeferredContain only installs the boundary inside a nested
// literal that may never run on the spawned goroutine itself.
func raceDeferredContain(b backend, out chan<- int) {
	go func() { // want containrecover
		guard := func() {
			_ = fault.Contain("try."+b.Name(), func() { out <- b.Solve() })
		}
		_ = guard
	}()
}
