// Package stalesupp_bad exercises the stale-suppression check: the
// first directive suppresses a real maporder finding and is kept, the
// second suppresses nothing and is reported, and the third belongs to
// a check whose scope excludes this package, so it is left alone.
package stalesupp_bad

func used(m map[int]int) []int {
	var out []int
	//lint:ordered fixture emits keys unordered on purpose
	for k := range m {
		out = append(out, k)
	}
	return out
}

func stale(m map[int]int) int {
	t := 0
	//lint:ordered keys are pre-sorted // want stalesupp
	for _, v := range m {
		t += v
	}
	return t
}

func notRun(n int) int {
	s := 0
	//lint:nopoll bounded by the caller's contract
	for s < n {
		s++
	}
	return s
}
