// Package containrecover_bad holds failing fixtures for the
// containrecover check.
package containrecover_bad

// boundary mimics the fault package's Contain surface.
type boundary struct{}

func (boundary) Contain(name string, fn func()) error {
	fn()
	return nil
}

var fault boundary

// bare spawns solver work with no panic boundary.
func bare(work func()) {
	go func() { // want containrecover
		work()
	}()
}

// named spawns a function the check cannot inspect, unannotated.
func named(work func()) {
	go run(work) // want containrecover
}

func run(work func()) { work() }

// nested only contains inside an inner literal that may run elsewhere;
// the spawned goroutine itself is unprotected.
func nested(work func()) {
	go func() { // want containrecover
		inner := func() {
			_ = fault.Contain("inner", work)
		}
		_ = inner
	}()
}

// unjustified has the directive but no reason.
func unjustified(done chan struct{}) {
	//lint:nocontain
	go func() { // want containrecover
		close(done)
	}()
}
