// Package containrecover_race_good holds the passing half of the
// portfolio fixture pair: racing backend goroutines whose bodies run
// under a fault.Contain boundary, so a crashing engine degrades to one
// lost race attempt instead of a process death.
package containrecover_race_good

import "sync"

// boundary mimics the fault package's Contain surface.
type boundary struct{}

func (boundary) Contain(name string, fn func()) error {
	fn()
	return nil
}

var fault boundary

type backend interface {
	Name() string
	Solve() int
}

// race is the portfolio idiom: the go literal's body calls Contain
// directly, so the boundary is provably on the spawned goroutine.
func race(pool []backend, out chan<- int) {
	var wg sync.WaitGroup
	for _, b := range pool {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fault.Contain("try."+b.Name(), func() {
				out <- b.Solve()
			})
		}()
	}
	wg.Wait()
}

// joiner spawns pure channel plumbing and says so.
func joiner(wg *sync.WaitGroup, done chan struct{}) {
	go func() { //lint:nocontain waits and closes a channel, no solver code
		wg.Wait()
		close(done)
	}()
}
