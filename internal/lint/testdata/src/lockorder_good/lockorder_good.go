// Package lockorder_good holds consistent lock usage: one global
// order, hand-over-hand release, and read-lock nesting.
package lockorder_good

import "sync"

type s struct {
	a sync.Mutex
	b sync.RWMutex
}

// One consistent order everywhere: a before b.
func one(x *s) {
	x.a.Lock()
	x.b.Lock()
	x.b.Unlock()
	x.a.Unlock()
}

func two(x *s) {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.RLock()
	defer x.b.RUnlock()
}

// Hand-over-hand: release before the next acquire creates no edge.
func three(x *s) {
	x.b.Lock()
	x.b.Unlock()
	x.a.Lock()
	x.a.Unlock()
}

// Read locks may nest with themselves.
func four(x *s) {
	x.b.RLock()
	x.b.RLock()
	x.b.RUnlock()
	x.b.RUnlock()
}
