// Package chargecover_good holds metered or bounded growth: amortised
// in-cycle charges, dominating charges, bounded loops, the one-level
// caller rule, and a justified suppression.
package chargecover_good

type ctx struct{}

func (c *ctx) Charge(site string, n int64) bool { return false }

// Amortised billing: a Charge anywhere in the same cycle covers the
// growth.
func amortised(c *ctx, n int) []int {
	var out []int
	for len(out) < n {
		out = append(out, len(out))
		if len(out)%64 == 0 {
			if c.Charge("amortised", 64) {
				break
			}
		}
	}
	return out
}

// A Charge dominating the site covers it.
func dominated(c *ctx, n int) [][]int {
	var out [][]int
	i := 0
	for {
		if i >= n {
			return out
		}
		if c.Charge("rows", int64(i)) {
			return out
		}
		out = append(out, make([]int, i))
		i++
	}
}

// Bounded loops are input-linear and exempt.
func bounded(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	for i := 0; i < 10; i++ {
		out = append(out, i)
	}
	return out
}

// One level up the call graph: every static call site of fill is
// charge-covered, so fill's own growth is billed by its callers.
func fill(xs []int, n int) []int {
	for len(xs) < n {
		xs = append(xs, 0)
	}
	return xs
}

func useFill(c *ctx, m int) []int {
	var xs []int
	i := 0
	for {
		if i >= m {
			return xs
		}
		if c.Charge("fill", int64(m)) {
			return xs
		}
		xs = fill(xs, i)
		i++
	}
}

// A justified function-level suppression stays silent.
//
//lint:nocharge pos grows to the allocated variable count only
func grow(pos []int, v int) []int {
	for len(pos) <= v {
		pos = append(pos, -1)
	}
	return pos
}
