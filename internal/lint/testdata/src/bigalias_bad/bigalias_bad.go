// Package bigalias_bad holds failing fixtures for the bigalias check.
package bigalias_bad

import "math/big"

type row struct {
	val *big.Int
}

// MutateAfterEscape stores x in a map and then keeps mutating it: the
// stored entry silently changes underfoot.
func MutateAfterEscape(m map[string]*big.Int, x *big.Int) {
	m["total"] = x
	x.Add(x, big.NewInt(1)) // want bigalias
}

// StoreInPlaceResult stores the result of an in-place Add whose
// receiver is an existing value: the map entry aliases acc.
func StoreInPlaceResult(m map[string]*big.Int, acc, delta *big.Int) {
	m["sum"] = acc.Add(acc, delta) // want bigalias
}

// AppendAlias appends the result of an in-place Mul: every element of
// the slice ends up aliasing the same accumulator.
func AppendAlias(out []*big.Int, acc *big.Int) []*big.Int {
	out = append(out, acc.Mul(acc, acc)) // want bigalias
	return out
}

// FieldAlias stores an in-place Sub result into a struct field.
func FieldAlias(r *row, a, b *big.Int) {
	r.val = a.Sub(a, b) // want bigalias
}

// CompositeAlias builds a struct literal around an in-place Neg result.
func CompositeAlias(a *big.Int) row {
	return row{val: a.Neg(a)} // want bigalias
}

// MutateAfterAppend mutates after the value escaped into a slice.
func MutateAfterAppend(xs []*big.Int, x *big.Int) []*big.Int {
	xs = append(xs, x)
	x.SetInt64(0) // want bigalias
	return xs
}
