// Package cachetaint_bad holds verdict-cache puts that depend on the
// run's budget diagnostics — the soundness bug cachetaint exists to
// catch: a budget-truncated UNKNOWN cached as if it held for the
// problem itself.
package cachetaint_bad

type status int

const (
	StatusUnknown status = iota
	StatusSat
	StatusUnsat
)

type verdict struct {
	status status
	reason string
}

type cache struct{ m map[string]verdict }

func (c *cache) put(k string, v verdict) { c.m[k] = v }

type ectx struct{}

func (e *ectx) BudgetReason() string { return "budget: propagation budget exhausted" }
func (e *ectx) Expired() bool        { return false }

// Data dependence: the cached verdict carries the "budget:" reason of
// this run — the acceptance case.
func cacheBudgetReason(c *cache, e *ectx, key string) {
	reason := e.BudgetReason()
	c.put(key, verdict{status: StatusUnknown, reason: reason}) // want cachetaint
}

// Control dependence: whether to cache is decided by budget data.
func cacheUnderBudgetGuard(c *cache, e *ectx, key string) {
	reason := e.BudgetReason()
	if len(reason) > 0 {
		c.put(key, verdict{status: StatusSat}) // want cachetaint
	}
}

// Unsettled: nothing proves the status is SAT or UNSAT.
func cacheUnsettled(c *cache, key string, st status) {
	c.put(key, verdict{status: st}) // want cachetaint
}

// Interprocedural: a helper launders the budget reason through its
// return value.
func describe(e *ectx) string {
	return e.BudgetReason()
}

func cacheLaundered(c *cache, e *ectx, key string) {
	v := verdict{status: StatusSat, reason: describe(e)}
	c.put(key, v) // want cachetaint
}
