// Package ctxpoll_bad holds failing fixtures for the ctxpoll check.
package ctxpoll_bad

// ctx mimics the engine context's polling surface.
type ctx struct{ stop bool }

func (c *ctx) Poll() bool    { return c.stop }
func (c *ctx) Expired() bool { return c.stop }

// spin never polls: cancellation cannot reach it.
func spin(work []int) int {
	n := 0
	i := 0
	for { // want ctxpoll
		n += work[i%len(work)]
		i++
		if n > 1<<30 {
			return n
		}
	}
}

// spinClosure polls only inside a deferred closure, which does not run
// on the loop path.
func spinClosure(c *ctx, work []int) int {
	n := 0
	for { // want ctxpoll
		f := func() bool { return c.Poll() }
		_ = f
		n++
		if n > len(work)*1000 {
			return n
		}
	}
}

// spinBare carries a bare directive without a justification.
func spinBare(work []int) int {
	n := 0
	//lint:nopoll
	for { // want ctxpoll
		n++
		if n > len(work) {
			return n
		}
	}
}
