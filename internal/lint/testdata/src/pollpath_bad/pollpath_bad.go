// Package pollpath_bad holds unbounded cycles with at least one path
// that never observes the solve context.
package pollpath_bad

type ctx struct{ n int }

func (c *ctx) Poll() bool                       { return false }
func (c *ctx) Charge(site string, n int64) bool { return false }

type solver struct {
	trail []int
	qhead int
}

// Unconditional loop with no poll anywhere.
func spin(n int) int {
	s := 0
	for { // want pollpath
		s += n
		if s > 1000 {
			return s
		}
	}
}

// Polls on one path only: the odd iterations close the cycle without
// touching the context.
func partial(c *ctx, n int) int {
	s := 0
	for { // want pollpath
		if s%2 == 0 {
			if c.Poll() {
				return s
			}
		}
		s += n
		if s > 1000 {
			return s
		}
	}
}

// A counted loop whose bound grows inside the body is a worklist, not
// a bounded loop.
func worklist(xs []int) int {
	out := 0
	for i := 0; i < len(xs); i++ { // want pollpath
		if xs[i] > 0 {
			xs = append(xs, xs[i]-1)
		}
		out++
	}
	return out
}

// Condition-only loops are unbounded-class.
func drain(s *solver) {
	for s.qhead < len(s.trail) { // want pollpath
		s.qhead++
	}
}

// Interprocedural: the callee polls on only some of its own paths, so
// calling it does not cover the cycle.
func maybePoll(c *ctx, b bool) {
	if b {
		c.Poll()
	}
}

func viaBadCallee(c *ctx) {
	x := 0
	for { // want pollpath
		maybePoll(c, x%2 == 0)
		x++
		if x > 10 {
			return
		}
	}
}

// A directive without a justification is itself a finding.
func unjustified(n int) int {
	s := 0
	//lint:nopoll
	for s < n*n { // want pollpath
		s++
	}
	return s
}
