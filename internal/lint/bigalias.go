package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// bigAlias guards against the two classic math/big aliasing bugs: the
// mutating methods (Add, Mul, Set, ...) update their receiver in
// place, so
//
//  1. mutating a *big.Int/*big.Rat after it was stored into a struct,
//     map, or slice silently corrupts the stored value, and
//  2. storing the result of an in-place call whose receiver is an
//     existing value stores an alias of that receiver, not a copy.
//
// Both are fixed by copying: new(big.Int).Set(x).
var bigAlias = &Analyzer{
	Name: "bigalias",
	Doc:  "big.Int/big.Rat mutated after escaping, or aliased result stored",
	Run:  runBigAlias,
}

// bigMutators are the math/big methods that write to their receiver.
var bigMutators = map[string]bool{
	"Abs": true, "Add": true, "And": true, "AndNot": true, "Div": true,
	"DivMod": true, "Exp": true, "GCD": true, "Inv": true, "Lsh": true,
	"Mod": true, "ModInverse": true, "ModSqrt": true, "Mul": true,
	"MulRange": true, "Neg": true, "Not": true, "Or": true, "Quo": true,
	"QuoRem": true, "Rem": true, "Rsh": true, "Scan": true, "Set": true,
	"SetBit": true, "SetBits": true, "SetBytes": true, "SetFloat64": true,
	"SetFrac": true, "SetFrac64": true, "SetInt": true, "SetInt64": true,
	"SetRat": true, "SetString": true, "SetUint64": true, "Sqrt": true,
	"Sub": true, "Xor": true,
}

// isBigPtr reports whether t is *big.Int or *big.Rat.
func isBigPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "math/big" {
		return false
	}
	return obj.Name() == "Int" || obj.Name() == "Rat"
}

func runBigAlias(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBigAliasFunc(p, fn)
		}
	}
}

func checkBigAliasFunc(p *Pass, fn *ast.FuncDecl) {
	// Phase 1: where does each big-valued identifier escape into a
	// container (struct field, map/slice element, append, composite
	// literal)?
	escapes := map[types.Object]token.Pos{}
	recordEscape := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || !isBigPtr(p.TypeOf(id)) {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return
		}
		if prev, seen := escapes[obj]; !seen || id.Pos() < prev {
			escapes[obj] = id.Pos()
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) != len(t.Rhs) {
				return true
			}
			for i, lhs := range t.Lhs {
				switch lhs.(type) {
				case *ast.IndexExpr, *ast.SelectorExpr:
					recordEscape(t.Rhs[i])
				}
			}
		case *ast.CallExpr:
			if appendTarget(p, t) != nil {
				for _, arg := range t.Args[1:] {
					recordEscape(arg)
				}
			}
		case *ast.CompositeLit:
			for _, el := range t.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					recordEscape(kv.Value)
				} else {
					recordEscape(el)
				}
			}
		}
		return true
	})

	// Phase 2a: mutating calls on an identifier after it escaped.
	var muts []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && mutatedBigReceiver(p, call) != nil {
			muts = append(muts, call)
		}
		return true
	})
	sort.Slice(muts, func(i, j int) bool { return muts[i].Pos() < muts[j].Pos() })
	for _, call := range muts {
		id := mutatedBigReceiver(p, call)
		obj := p.Info.Uses[id]
		if obj == nil {
			continue
		}
		if escPos, escaped := escapes[obj]; escaped && escPos < call.Pos() {
			sel := call.Fun.(*ast.SelectorExpr)
			p.Report(call.Pos(), "bigalias",
				fmt.Sprintf("%s.%s mutates a big value after it escaped into a container at line %d; "+
					"store a copy (new(big.%s).Set(%s)) instead",
					id.Name, sel.Sel.Name, p.Fset.Position(escPos).Line, bigKind(p.TypeOf(id)), id.Name))
		}
	}

	// Phase 2b: storing the direct result of an in-place call whose
	// receiver is an existing identifier (aliasing the stored value).
	reportStore := func(e ast.Expr, where string) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		id := mutatedBigReceiver(p, call)
		if id == nil {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		p.Report(e.Pos(), "bigalias",
			fmt.Sprintf("stores the result of in-place %s.%s into %s; the stored value aliases %q — "+
				"use new(big.%s).%s(...) or copy first",
				id.Name, sel.Sel.Name, where, id.Name, bigKind(p.TypeOf(id)), sel.Sel.Name))
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) != len(t.Rhs) {
				return true
			}
			for i, lhs := range t.Lhs {
				switch lhs.(type) {
				case *ast.IndexExpr:
					reportStore(t.Rhs[i], "a map/slice element")
				case *ast.SelectorExpr:
					reportStore(t.Rhs[i], "a struct field")
				}
			}
		case *ast.CallExpr:
			if appendTarget(p, t) != nil {
				for _, arg := range t.Args[1:] {
					reportStore(arg, "a slice")
				}
			}
		case *ast.CompositeLit:
			for _, el := range t.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					reportStore(kv.Value, "a composite literal")
				} else {
					reportStore(el, "a composite literal")
				}
			}
		}
		return true
	})
}

// mutatedBigReceiver returns the receiver identifier when call is an
// in-place math/big mutation on an existing identifier (x.Add(...),
// not new(big.Int).Add(...)).
func mutatedBigReceiver(p *Pass, call *ast.CallExpr) *ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !bigMutators[sel.Sel.Name] {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isBigPtr(p.TypeOf(id)) {
		return nil
	}
	return id
}

func bigKind(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return "Int"
}
