package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectations reads the "// want <check>" markers from every fixture
// file in dir, returning "<base>:<line>:<check>" keys.
func expectations(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			check := strings.TrimSpace(line[idx+len("// want "):])
			out[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, check)] = true
		}
	}
	return out
}

// checkFixture runs one analyzer over one fixture package and matches
// the findings against the // want markers.
func checkFixture(t *testing.T, pkg string, a *Analyzer) {
	t.Helper()
	checkFixtureAll(t, pkg, []*Analyzer{a})
}

// checkFixtureAll is checkFixture with a batch of analyzers, for
// checks (stalesupp) that only make sense alongside others.
func checkFixtureAll(t *testing.T, pkg string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	want := expectations(t, dir)
	findings, err := Run("../..", []string{dir}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: expected finding %s, got none", pkg, k)
		}
	}
	for _, f := range findings {
		k := fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)
		if !want[k] {
			t.Errorf("%s: unexpected finding: %s", pkg, f)
		}
	}
}

func TestBigAliasFixtures(t *testing.T) {
	checkFixture(t, "bigalias_bad", bigAlias)
	checkFixture(t, "bigalias_good", bigAlias)
}

func TestMapOrderFixtures(t *testing.T) {
	checkFixture(t, "maporder_bad", mapOrder)
	checkFixture(t, "maporder_good", mapOrder)
}

func TestErrDropFixtures(t *testing.T) {
	checkFixture(t, "errdrop_bad", errDrop)
	checkFixture(t, "errdrop_good", errDrop)
}

func TestRecBudgetFixtures(t *testing.T) {
	checkFixture(t, "recbudget_bad", recBudget)
	checkFixture(t, "recbudget_good", recBudget)
}

func TestPollPathFixtures(t *testing.T) {
	checkFixture(t, "pollpath_bad", pollPath)
	checkFixture(t, "pollpath_good", pollPath)
}

func TestChargeCoverFixtures(t *testing.T) {
	checkFixture(t, "chargecover_bad", chargeCover)
	checkFixture(t, "chargecover_good", chargeCover)
}

func TestCacheTaintFixtures(t *testing.T) {
	checkFixture(t, "cachetaint_bad", cacheTaint)
	checkFixture(t, "cachetaint_good", cacheTaint)
}

func TestLockOrderFixtures(t *testing.T) {
	checkFixture(t, "lockorder_bad", lockOrder)
	checkFixture(t, "lockorder_good", lockOrder)
}

func TestStaleSuppFixtures(t *testing.T) {
	// stalesupp needs the owning checks in the batch: it only judges
	// directives whose check actually ran over the package. The nopoll
	// directive in the fixture stays unreported because pollpath's
	// scope excludes the package even though it is in the batch.
	checkFixtureAll(t, "stalesupp_bad", []*Analyzer{mapOrder, pollPath, staleSupp})
}

func TestContainRecoverFixtures(t *testing.T) {
	checkFixture(t, "containrecover_bad", containRecover)
	checkFixture(t, "containrecover_good", containRecover)
	// The portfolio pair: racing backend goroutines outside/inside a
	// fault.Contain boundary.
	checkFixture(t, "containrecover_race_bad", containRecover)
	checkFixture(t, "containrecover_race_good", containRecover)
}

func TestOverflowGuardFixtures(t *testing.T) {
	checkFixture(t, "overflowguard_bad", overflowGuard)
	checkFixture(t, "overflowguard_good", overflowGuard)
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 11 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 11, nil", len(all), err)
	}
	if all[len(all)-1].Name != "stalesupp" {
		t.Fatalf("stalesupp must run last, got %s", all[len(all)-1].Name)
	}
	two, err := ByName("bigalias, errdrop")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName two checks: %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if two[0].Name != "bigalias" || two[1].Name != "errdrop" {
		t.Fatalf("ByName order: got %s,%s", two[0].Name, two[1].Name)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch): expected error")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: "maporder", Msg: "msg"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 12
	if got, want := f.String(), "x.go:12: [maporder] msg"; got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}

func TestFindingsSorted(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder_bad")
	findings, err := Run("../..", []string{dir}, []*Analyzer{mapOrder})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Line < findings[j].Pos.Line
	}) {
		t.Fatalf("findings not sorted: %v", findings)
	}
}
