package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// recBudget flags recursive functions (direct or mutual) in the
// parser/normalizer packages that have no depth or iteration budget:
// without one, adversarial input (deeply nested .smt2 terms, deep
// formula trees) drives the recursion until the goroutine stack blows.
// A function passes if it has a parameter — or its receiver type a
// field — whose name suggests a budget (depth, budget, fuel, limit,
// steps, gas, guard). String methods are exempt: the Stringer contract
// fixes their signature.
var recBudget = &Analyzer{
	Name: "recbudget",
	Doc:  "recursive functions without a depth/iteration budget",
	Scope: func(path string) bool {
		for _, p := range []string{"internal/lia", "internal/automata", "internal/smtlib"} {
			if strings.HasSuffix(path, p) {
				return true
			}
		}
		return strings.Contains(path, "/testdata/")
	},
	Run: runRecBudget,
}

var budgetName = regexp.MustCompile(`(?i)depth|budget|fuel|limit|steps|gas|guard`)

// fnode is one call-graph node: a package-level function declaration
// and the set of same-package functions it references.
type fnode struct {
	decl  *ast.FuncDecl
	calls map[*types.Func]bool
}

func runRecBudget(p *Pass) {
	// Package-level functions and methods, and the call edges between
	// them (a reference to a function counts as a potential call).
	nodes := map[*types.Func]*fnode{}
	var order []*types.Func
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			nodes[obj] = &fnode{decl: fn, calls: map[*types.Func]bool{}}
			order = append(order, obj)
		}
	}
	for obj, node := range nodes {
		_ = obj
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := p.Info.Uses[id].(*types.Func); ok {
				if _, local := nodes[callee]; local {
					node.calls[callee] = true
				}
			}
			return true
		})
	}

	recursive := findRecursive(nodes, order)
	for _, obj := range order {
		if !recursive[obj] {
			continue
		}
		decl := nodes[obj].decl
		if decl.Name.Name == "String" && decl.Recv != nil {
			continue // Stringer contract: cannot take a budget parameter
		}
		if hasBudgetParam(decl) || hasBudgetReceiverField(p, decl) {
			continue
		}
		p.Report(decl.Pos(), "recbudget",
			fmt.Sprintf("recursive function %q has no depth/iteration budget parameter "+
				"(stack overflow on adversarial input)", obj.Name()))
	}
}

// findRecursive returns the functions on a call-graph cycle (including
// self-loops), via DFS-based strongly connected components.
func findRecursive(nodes map[*types.Func]*fnode, order []*types.Func) map[*types.Func]bool {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next := 0
	recursive := map[*types.Func]bool{}

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		callees := make([]*types.Func, 0, len(nodes[v].calls))
		for w := range nodes[v].calls {
			callees = append(callees, w)
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].Pos() < callees[j].Pos() })
		for _, w := range callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				for _, w := range scc {
					recursive[w] = true
				}
			} else if nodes[v].calls[v] {
				recursive[v] = true // direct self-recursion
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return recursive
}

func hasBudgetParam(decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if budgetName.MatchString(name.Name) {
				return true
			}
		}
	}
	return false
}

// hasBudgetReceiverField reports whether the method's receiver is a
// struct (possibly behind a pointer) with a budget-named field: the
// budget travels on the receiver instead of the parameter list.
func hasBudgetReceiverField(p *Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := p.TypeOf(decl.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if budgetName.MatchString(st.Field(i).Name()) {
			return true
		}
	}
	return false
}
