// Package lint is a stdlib-only static-analysis suite for this
// repository. It type-checks packages with go/parser + go/types and
// runs repo-specific analyzers guarding solver correctness. The
// syntactic checks walk the AST:
//
//   - bigalias:  big.Int/big.Rat values mutated after escaping into a
//     container, and in-place results stored under an alias,
//   - maporder:  map iteration feeding ordered output (appends,
//     writes) without a subsequent sort,
//   - errdrop:   discarded error returns inside internal/,
//   - recbudget: recursive functions in the parser/normalizer
//     packages without a depth or iteration budget,
//   - containrecover: goroutines in solver/server code without a
//     fault.Contain panic boundary.
//
// The flow-aware checks build per-function CFGs and a module-wide call
// graph (cfg.go, callgraph.go) and prove the solver's soundness
// invariants:
//
//   - pollpath:    every unbounded CFG cycle in the hot packages
//     (internal/sat, internal/simplex) reaches an engine-context poll
//     (Poll/Expired/Charge) on every path through the cycle, including
//     via one level of statically resolved callees,
//   - chargecover: every growth site (append, non-constant make)
//     inside an unbounded cycle of the amplifier packages (pfa, sat,
//     simplex, baseline) is metered by an engine.Ctx.Charge,
//   - cachetaint:  no value data- or control-dependent on budget or
//     fault diagnostics reaches a verdict-cache put in internal/server,
//     and cached verdicts are provably settled (SAT/UNSAT),
//   - lockorder:   mutex acquisition order is consistent across
//     internal/server and internal/engine, via the call graph,
//   - overflowguard: every int64 add/sub/mul/negate in the simplex
//     fast path flows through the overflow-checked helpers (or is
//     annotated with a proven range bound), so machine-word
//     arithmetic cannot wrap silently,
//   - stalesupp:   suppression directives that no longer suppress any
//     finding are themselves reported, so suppressions cannot rot.
//
// Findings are reported as "file:line: [check] message". Suppression
// directives carry a mandatory justification and annotate the line of
// (or the line before) the flagged statement:
//
//	//lint:ordered <why>    suppresses maporder
//	//lint:nopoll <why>     suppresses pollpath (argue the loop bound)
//	//lint:nocontain <why>  suppresses containrecover
//	//lint:nocharge <why>   suppresses chargecover (line or function)
//	//lint:cachesafe <why>  suppresses cachetaint
//	//lint:locks <why>      suppresses lockorder
//	//lint:nooverflow <why> suppresses overflowguard (argue the range)
//
// A directive that does not suppress anything is reported by
// stalesupp.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Analyzer is one check. Scope, when non-nil, restricts the packages
// the check runs on (by import path).
type Analyzer struct {
	Name  string
	Doc   string
	Scope func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Path   string
	Prog   *Program
	report func(Finding)
	dirs   *directiveSet
	active []*Analyzer // the analyzers running in this pass's batch
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, check, msg string) {
	p.report(Finding{Pos: p.Fset.Position(pos), Check: check, Msg: msg})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// All returns the analyzers in their canonical order. stalesupp must
// run last: it reports the directives the other checks left unused.
func All() []*Analyzer {
	return []*Analyzer{
		bigAlias, mapOrder, errDrop, recBudget, containRecover,
		pollPath, chargeCover, cacheTaint, lockOrder, overflowGuard,
		staleSupp,
	}
}

// ByName resolves a comma-separated check list ("bigalias,errdrop");
// an empty string selects all checks.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// CheckStat is the per-analyzer summary of one run.
type CheckStat struct {
	Name     string
	Findings int
	Elapsed  time.Duration
}

// Report is the outcome of one lint run.
type Report struct {
	Findings []Finding
	Checks   []CheckStat // in analyzer order
	Packages int         // packages analyzed (dependencies excluded)
}

// Run type-checks every package under modRoot and runs the analyzers,
// returning the findings sorted by position. Dirs, when non-empty,
// restricts analysis to those package directories (they must be inside
// the module); dependencies are still loaded as needed.
func Run(modRoot string, dirs []string, analyzers []*Analyzer) ([]Finding, error) {
	rep, err := RunReport(modRoot, dirs, analyzers)
	if err != nil {
		return nil, err
	}
	return rep.Findings, nil
}

// RunReport is Run with per-check timing and counts. All requested
// packages are loaded before any analyzer runs, so interprocedural
// checks see the whole module through Pass.Prog.
func RunReport(modRoot string, dirs []string, analyzers []*Analyzer) (*Report, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		dirs, err = walkDirs(l.modRoot)
		if err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	prog := newProgram(l.pkgs)
	rep := &Report{Packages: len(pkgs)}
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		ds := collectDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:   pkg.Fset,
				Files:  pkg.Files,
				Pkg:    pkg.Types,
				Info:   pkg.Info,
				Path:   pkg.Path,
				Prog:   prog,
				dirs:   ds,
				active: analyzers,
				report: func(f Finding) { rep.Findings = append(rep.Findings, f) },
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
	}
	sortFindings(rep.Findings)
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Check]++
	}
	for _, a := range analyzers {
		rep.Checks = append(rep.Checks, CheckStat{
			Name:     a.Name,
			Findings: counts[a.Name],
			Elapsed:  elapsed[a.Name],
		})
	}
	return rep, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
}

// Suppression directives.
const (
	// orderedDirective suppresses maporder.
	orderedDirective = "lint:ordered"
	// nopollDirective suppresses pollpath.
	nopollDirective = "lint:nopoll"
	// nocontainDirective suppresses containrecover.
	nocontainDirective = "lint:nocontain"
	// nochargeDirective suppresses chargecover.
	nochargeDirective = "lint:nocharge"
	// cachesafeDirective suppresses cachetaint.
	cachesafeDirective = "lint:cachesafe"
	// locksDirective suppresses lockorder.
	locksDirective = "lint:locks"
	// nooverflowDirective suppresses overflowguard.
	nooverflowDirective = "lint:nooverflow"
)

// directiveChecks maps each directive kind to the check it suppresses;
// stalesupp uses it to decide which unused directives to report.
var directiveChecks = map[string]string{
	orderedDirective:    "maporder",
	nopollDirective:     "pollpath",
	nocontainDirective:  "containrecover",
	nochargeDirective:   "chargecover",
	cachesafeDirective:  "cachetaint",
	locksDirective:      "lockorder",
	nooverflowDirective: "overflowguard",
}

// directive is one suppression comment. used records whether any
// analyzer consulted it while swallowing a finding; stalesupp reports
// the leftovers.
type directive struct {
	pos  token.Pos
	just string
	used bool
}

// directiveSet indexes the suppression comments of one package by kind
// and by the line they annotate. One set is shared by every analyzer
// running over the package so usage marks accumulate.
type directiveSet struct {
	byKind map[string]map[int]*directive
}

// collectDirectives scans the comments of a package for //lint:<kind>
// directives. A directive on line N annotates a statement starting on
// line N or N+1; the text after the kind is the justification.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byKind: map[string]map[int]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				for kind := range directiveChecks {
					rest, ok := strings.CutPrefix(text, kind)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					m := ds.byKind[kind]
					if m == nil {
						m = map[int]*directive{}
						ds.byKind[kind] = m
					}
					line := fset.Position(c.Pos()).Line
					m[line] = &directive{pos: c.Pos(), just: strings.TrimSpace(rest)}
				}
			}
		}
	}
	return ds
}

// lookup finds a directive of kind covering line (the directive's own
// line or the line above the statement).
func (ds *directiveSet) lookup(kind string, line int) *directive {
	m := ds.byKind[kind]
	if m == nil {
		return nil
	}
	if d, ok := m[line]; ok {
		return d
	}
	if d, ok := m[line-1]; ok {
		return d
	}
	return nil
}

// suppression consults a directive of kind for the statement at pos,
// marking it used. Checks must call this only once a finding is
// otherwise certain: consulting a directive that suppresses nothing
// would hide it from stalesupp.
func (p *Pass) suppression(kind string, pos token.Pos) (found, justified bool) {
	d := p.dirs.lookup(kind, p.Fset.Position(pos).Line)
	if d == nil {
		return false, false
	}
	d.used = true
	return true, d.just != ""
}

// analyzerRan reports whether the named check ran over this package in
// the current batch.
func (p *Pass) analyzerRan(name string) bool {
	for _, a := range p.active {
		if a.Name == name {
			return a.Scope == nil || a.Scope(p.Path)
		}
	}
	return false
}

// inInternal reports whether the import path is inside internal/ (the
// repo's own code) or a lint fixture package.
func inInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/") || strings.HasSuffix(pkgPath, "internal") ||
		strings.Contains(pkgPath, "/testdata/")
}

// scopeFor builds a Scope function matching packages whose import path
// ends with one of the suffixes, plus fixture packages whose path
// contains the check's own name (so fixtures of other checks do not
// trip it).
func scopeFor(check string, suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return strings.Contains(path, "/testdata/") && strings.Contains(path, check)
	}
}
