// Package lint is a stdlib-only static-analysis suite for this
// repository. It type-checks packages with go/parser + go/types and
// runs repo-specific analyzers guarding solver correctness:
//
//   - bigalias:  big.Int/big.Rat values mutated after escaping into a
//     container, and in-place results stored under an alias,
//   - maporder:  map iteration feeding ordered output (appends,
//     writes) without a subsequent sort,
//   - errdrop:   discarded error returns inside internal/,
//   - recbudget: recursive functions in the parser/normalizer
//     packages without a depth or iteration budget,
//   - ctxpoll:   unconditional for-loops in the hot solver packages
//     (internal/sat, internal/simplex) that never poll the engine
//     solve context, so cancellation could not reach them,
//   - containrecover: goroutines in solver/server code without a
//     fault.Contain panic boundary, so a contract panic would kill
//     the process instead of degrading the verdict.
//
// Findings are reported as "file:line: [check] message". A
// "//lint:ordered <justification>" comment on the line of (or the line
// before) a range statement suppresses maporder for that loop;
// "//lint:nopoll <justification>" likewise suppresses ctxpoll for a
// loop whose bound is argued in the justification, and
// "//lint:nocontain <justification>" suppresses containrecover for a
// goroutine that runs no solver code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Analyzer is one check. Scope, when non-nil, restricts the packages
// the check runs on (by import path).
type Analyzer struct {
	Name  string
	Doc   string
	Scope func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	Path      string
	report    func(Finding)
	ordered   map[int]string // //lint:ordered line -> justification
	nopoll    map[int]string // //lint:nopoll line -> justification
	nocontain map[int]string // //lint:nocontain line -> justification
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, check, msg string) {
	p.report(Finding{Pos: p.Fset.Position(pos), Check: check, Msg: msg})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// All returns the analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{bigAlias, mapOrder, errDrop, recBudget, ctxPoll, containRecover}
}

// ByName resolves a comma-separated check list ("bigalias,errdrop");
// an empty string selects all checks.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run type-checks every package under modRoot and runs the analyzers,
// returning the findings sorted by position. Dirs, when non-empty,
// restricts analysis to those package directories (they must be inside
// the module); dependencies are still loaded as needed.
func Run(modRoot string, dirs []string, analyzers []*Analyzer) ([]Finding, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		dirs, err = walkDirs(l.modRoot)
		if err != nil {
			return nil, err
		}
	}
	var findings []Finding
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, analyze(pkg, analyzers)...)
	}
	sortFindings(findings)
	return findings, nil
}

// analyze runs the analyzers over one loaded package.
func analyze(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Path:      pkg.Path,
			ordered:   directives(pkg.Fset, pkg.Files, orderedDirective),
			nopoll:    directives(pkg.Fset, pkg.Files, nopollDirective),
			nocontain: directives(pkg.Fset, pkg.Files, nocontainDirective),
			report:    func(f Finding) { findings = append(findings, f) },
		}
		a.Run(pass)
	}
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
}

// Suppression directives.
const (
	// orderedDirective suppresses maporder.
	orderedDirective = "lint:ordered"
	// nopollDirective suppresses ctxpoll.
	nopollDirective = "lint:nopoll"
	// nocontainDirective suppresses containrecover.
	nocontainDirective = "lint:nocontain"
)

// directives collects //lint:<name> comments with the given prefix,
// keyed by the line they annotate (the comment's own line; a directive
// on line N suppresses a statement starting on line N or N+1). The
// value is the justification text after the directive.
func directives(fset *token.FileSet, files []*ast.File, prefix string) map[int]string {
	out := map[int]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if rest, ok := strings.CutPrefix(text, prefix); ok {
					line := fset.Position(c.Pos()).Line
					out[line] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return out
}

// covers reports whether a statement starting at pos is covered by a
// directive in m with a non-empty justification, on either its own line
// or the line above.
func (p *Pass) covers(m map[int]string, pos token.Pos) (bool, bool) {
	line := p.Fset.Position(pos).Line
	if just, ok := m[line]; ok {
		return true, just != ""
	}
	if just, ok := m[line-1]; ok {
		return true, just != ""
	}
	return false, false
}

// suppressed reports whether a statement starting at pos is covered by
// a //lint:ordered directive with a non-empty justification, on either
// its own line or the line above.
func (p *Pass) suppressed(pos token.Pos) (bool, bool) {
	return p.covers(p.ordered, pos)
}

// nopollAt reports whether a loop starting at pos carries a
// //lint:nopoll directive, and whether it is justified.
func (p *Pass) nopollAt(pos token.Pos) (bool, bool) {
	return p.covers(p.nopoll, pos)
}

// nocontainAt reports whether a go statement starting at pos carries a
// //lint:nocontain directive, and whether it is justified.
func (p *Pass) nocontainAt(pos token.Pos) (bool, bool) {
	return p.covers(p.nocontain, pos)
}

// inInternal reports whether the import path is inside internal/ (the
// repo's own code) or a lint fixture package.
func inInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/") || strings.HasSuffix(pkgPath, "internal") ||
		strings.Contains(pkgPath, "/testdata/")
}
