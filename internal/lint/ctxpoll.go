package lint

import (
	"go/ast"
	"strings"
)

// ctxPoll flags unconditional for-loops in the solver's hot-loop
// packages (internal/sat, internal/simplex) that never call an engine
// context poll (Poll or Expired): such a loop cannot observe a deadline
// or a portfolio cancellation, so a pathological instance would pin the
// solve past its budget. A loop whose iteration count is structurally
// bounded may instead carry a "//lint:nopoll <justification>" comment
// arguing its bound; the search loop around it is then responsible for
// polling.
var ctxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "unbounded solver loops without an engine context poll",
	Scope: func(path string) bool {
		for _, p := range []string{"internal/sat", "internal/simplex"} {
			if strings.HasSuffix(path, p) {
				return true
			}
		}
		return strings.Contains(path, "/testdata/")
	},
	Run: runCtxPoll,
}

// pollMethods are the engine.Ctx methods that count as observing
// cancellation.
var pollMethods = map[string]bool{"Poll": true, "Expired": true}

func runCtxPoll(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if has, justified := p.nopollAt(loop.For); has {
				if !justified {
					p.Report(loop.For, "ctxpoll", "//lint:nopoll needs a justification")
				}
				return true
			}
			if pollsCtx(loop.Body) {
				return true
			}
			p.Report(loop.For, "ctxpoll",
				"unbounded for-loop never polls the solve context; add a ctx.Poll() check or //lint:nopoll <why it is bounded>")
			return true
		})
	}
}

// pollsCtx reports whether the loop body calls a poll method directly
// (calls inside nested function literals do not count: they may never
// run on the loop's path).
func pollsCtx(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pollMethods[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
