package lint

import (
	"go/ast"
	"strings"
)

// containRecover flags go statements in solver/server code whose
// goroutine does not run under a fault.Contain panic boundary: a panic
// on such a goroutine bypasses every recover in the call stack that
// spawned it and kills the whole process. A goroutine that provably
// runs no solver code (pure channel plumbing, WaitGroup waiters) may
// instead carry a "//lint:nocontain <justification>" comment.
//
// The check is syntactic: a go statement passes when its function
// literal's body calls a Contain method/function (the fault package's
// boundary) directly. Spawning a named function (`go s.worker()`)
// cannot be inspected locally and always needs either a Contain-wrapped
// literal or an annotation.
var containRecover = &Analyzer{
	Name: "containrecover",
	Doc:  "goroutines in solver/server code without a fault.Contain panic boundary",
	Scope: func(path string) bool {
		return inInternal(path) || strings.Contains(path, "/cmd/")
	},
	Run: runContainRecover,
}

func runContainRecover(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok && callsContain(lit.Body) {
				return true
			}
			// Finding imminent: only now consult (and use up) the
			// directive, so stale ones surface via stalesupp.
			if has, justified := p.suppression(nocontainDirective, stmt.Go); has {
				if !justified {
					p.Report(stmt.Go, "containrecover", "//lint:nocontain needs a justification")
				}
				return true
			}
			p.Report(stmt.Go, "containrecover",
				"goroutine has no panic boundary; run its body under fault.Contain or annotate //lint:nocontain <why no solver code runs here>")
			return true
		})
	}
}

// callsContain reports whether the body calls a Contain boundary
// directly (calls inside nested function literals do not count: the
// nested literal may itself be handed to another goroutine).
func callsContain(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Contain" {
				found = true
				return false
			}
		case *ast.Ident:
			if fun.Name == "Contain" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
