package lint

// chargecover proves the resource-governor invariant of the amplifier
// packages (pfa, sat, simplex, baseline): any allocation that can grow
// without bound — an append or a non-constant make reached from an
// unbounded cycle — must be metered by an engine.Ctx.Charge, so the
// budget governor observes memory amplification before it happens.
// Growth inside structurally bounded loops (ranges, counted loops
// whose bound does not grow) is input-linear and exempt. A site counts
// as covered when a Charge dominates it, when the cycle it sits in
// bills amortised (a Charge anywhere in the same cycle), or — one
// level up the call graph — when every static call site of the
// enclosing function is itself charge-covered.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var chargeCover = &Analyzer{
	Name: "chargecover",
	Doc:  "growth sites in unbounded cycles not metered by an engine.Ctx.Charge",
	Scope: scopeFor("chargecover",
		"internal/pfa", "internal/sat", "internal/simplex", "internal/baseline",
		"internal/portfolio", "internal/cluster"),
	Run: runChargeCover,
}

// loopInfo is one natural loop of a unit (all back edges of one
// header merged).
type loopInfo struct {
	header  *block
	blocks  map[*block]bool
	bounded bool
	charged bool // some block of the loop calls Charge directly
}

func runChargeCover(p *Pass) {
	for _, u := range p.Prog.unitsOf(p.Path) {
		g := p.Prog.cfgOf(u)
		loops := loopsOf(p, u, g)
		hasUnbounded := false
		for _, l := range loops {
			if !l.bounded {
				hasUnbounded = true
			}
		}
		if !hasUnbounded {
			continue
		}
		dom := dominators(g)
		chargeBlks := chargeBlocks(g)
		for _, site := range growthSites(p, u) {
			blk := blockContaining(g, site.pos)
			if blk == nil {
				continue
			}
			needs := false
			amortised := false
			for _, l := range loops {
				if l.bounded || !l.blocks[blk] {
					continue
				}
				needs = true
				if l.charged {
					amortised = true
				}
			}
			if !needs || amortised {
				continue
			}
			if dominatedByCharge(dom, chargeBlks, blk) {
				continue
			}
			if u.decl != nil && callersCharged(p, u) {
				continue
			}
			if has, justified := p.suppression(nochargeDirective, site.pos); has {
				if !justified {
					p.Report(site.pos, "chargecover", "//lint:nocharge needs a justification")
				}
				continue
			}
			if has, justified := p.suppression(nochargeDirective, u.encl.Pos()); has {
				if !justified {
					p.Report(site.pos, "chargecover", "//lint:nocharge needs a justification")
				}
				continue
			}
			p.Report(site.pos, "chargecover",
				site.what+" in an unbounded cycle is never metered; "+
					"Charge the growth on this path or //lint:nocharge <why it is bounded>")
		}
	}
}

// growthSite is one allocation that can amplify.
type growthSite struct {
	pos  token.Pos
	what string
}

// growthSites collects the appends and non-constant makes of a unit
// (nested literals excluded: they are their own units).
func growthSites(p *Pass, u *funcUnit) []growthSite {
	var out []growthSite
	inspectUnit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		switch id.Name {
		case "append":
			if len(call.Args) > 0 {
				out = append(out, growthSite{call.Pos(), "append"})
			}
		case "make":
			for _, a := range call.Args[1:] {
				if tv, ok := p.Info.Types[a]; ok && tv.Value == nil {
					out = append(out, growthSite{call.Pos(), "make with non-constant size"})
					break
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// loopsOf merges the back edges of each header into one loopInfo and
// classifies it.
func loopsOf(p *Pass, u *funcUnit, g *funcCFG) []*loopInfo {
	byHeader := map[*block]*loopInfo{}
	var out []*loopInfo
	for _, be := range backEdges(g) {
		l := byHeader[be.to]
		if l == nil {
			l = &loopInfo{header: be.to, blocks: map[*block]bool{}}
			l.bounded = be.to.loop != nil && boundedLoop(p, u, be.to.loop)
			byHeader[be.to] = l
			out = append(out, l)
		}
		for b := range naturalLoop(be) {
			l.blocks[b] = true
		}
	}
	for _, l := range out {
		for b := range l.blocks {
			if blockCharges(b) {
				l.charged = true
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].header.id < out[j].header.id })
	return out
}

// blockCharges reports a direct Charge call in the block.
func blockCharges(b *block) bool {
	found := false
	for _, n := range b.nodes {
		walkCalls(n, func(call *ast.CallExpr) {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Charge" {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

func chargeBlocks(g *funcCFG) []*block {
	var out []*block
	for _, b := range g.blocks {
		if blockCharges(b) {
			out = append(out, b)
		}
	}
	return out
}

func dominatedByCharge(dom *domTree, charges []*block, blk *block) bool {
	for _, cb := range charges {
		if dom.dominates(cb, blk) {
			return true
		}
	}
	return false
}

// callersCharged applies the one-level interprocedural rule: every
// static call site of the function is dominated by a Charge in its
// caller or sits inside a caller cycle that charges. A function with
// no resolved call sites is not covered.
func callersCharged(p *Pass, u *funcUnit) bool {
	obj, ok := p.Info.Defs[u.decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sites := p.Prog.callersOf(obj)
	if len(sites) == 0 {
		return false
	}
	for _, cs := range sites {
		if !callSiteCharged(p, cs) {
			return false
		}
	}
	return true
}

func callSiteCharged(p *Pass, cs callSite) bool {
	g := p.Prog.cfgOf(cs.unit)
	blk := blockContaining(g, cs.call.Pos())
	if blk == nil {
		return false
	}
	charges := chargeBlocks(g)
	if len(charges) == 0 {
		return false
	}
	if dominatedByCharge(dominators(g), charges, blk) {
		return true
	}
	for _, be := range backEdges(g) {
		nl := naturalLoop(be)
		if !nl[blk] {
			continue
		}
		for b := range nl {
			if blockCharges(b) {
				return true
			}
		}
	}
	return false
}
