package lint

// stalesupp keeps the suppression inventory honest: every //lint:*
// directive must still be suppressing a finding. The other checks
// consult a directive only at the moment a finding is otherwise
// certain (marking it used), so any directive left unused after they
// ran is dead weight — the hazard it once excused was fixed, or the
// flow-aware analysis got precise enough to prove it never existed.
// Rotten suppressions are dangerous: they silently swallow the NEXT
// real finding at that line.
//
// stalesupp must run last in the batch (All() orders it so) and only
// judges directives whose owning check actually ran over the package.

import "sort"

var staleSupp = &Analyzer{
	Name: "stalesupp",
	Doc:  "suppression directives that no longer suppress any finding",
	Run:  runStaleSupp,
}

func runStaleSupp(p *Pass) {
	kinds := make([]string, 0, len(p.dirs.byKind))
	for kind := range p.dirs.byKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		check := directiveChecks[kind]
		if !p.analyzerRan(check) {
			continue
		}
		lines := make([]int, 0, len(p.dirs.byKind[kind]))
		for line := range p.dirs.byKind[kind] {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			d := p.dirs.byKind[kind][line]
			if d.used {
				continue
			}
			p.Report(d.pos, "stalesupp",
				"stale //"+kind+": no "+check+" finding here needs suppressing; delete the directive")
		}
	}
}
