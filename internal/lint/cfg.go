package lint

// Statement-granularity control-flow graphs. Each block holds the
// statements and condition expressions evaluated in it, in order; a
// loop header block remembers the For/Range statement it heads so the
// flow checks can classify the loop. Function literals are NOT inlined:
// a literal's body is a separate analysis unit with its own CFG, and
// the literal value itself appears inside whatever node mentions it.
//
// The graphs are built once per function body and shared by every
// flow-aware check (pollpath, chargecover, lockorder): back edges via
// depth-first search, dominators with the iterative Cooper-Harvey-
// Kennedy algorithm, and natural loops from back edges.

import (
	"go/ast"
	"go/token"
)

// block is one CFG node.
type block struct {
	id    int
	nodes []ast.Node // statements and condition expressions, in order
	succs []*block
	preds []*block
	// loop is the For/Range statement this block heads, when the block
	// is a loop header created by the builder (nil for headers reached
	// only by goto).
	loop ast.Stmt
}

// funcCFG is the graph of one function body.
type funcCFG struct {
	entry  *block
	exit   *block
	blocks []*block
}

// backEdge is a DFS back edge: from -> to where to is an ancestor on
// the DFS stack, i.e. the edge that closes a cycle.
type backEdge struct {
	from, to *block
}

type cfgBuilder struct {
	g   *funcCFG
	cur *block
	// breaks/conts are stacks of branch targets; label is "" for the
	// plain innermost target.
	breaks []branchTarget
	conts  []branchTarget
	// pendingLabel is set while building the statement wrapped by a
	// LabeledStmt so loops and switches register labeled targets.
	pendingLabel string
	labels       map[string]*block
	gotos        []gotoPatch
}

type branchTarget struct {
	label string
	blk   *block
}

type gotoPatch struct {
	from  *block
	label string
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		labels: map[string]*block{},
	}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.exit)
	for _, p := range b.gotos {
		if target, ok := b.labels[p.label]; ok {
			b.edge(p.from, target)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// add appends a node to the current block, materialising an
// unreachable block after a terminator so every statement has a home.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a breakable construct.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *block) {
	b.breaks = append(b.breaks, branchTarget{"", brk})
	if label != "" {
		b.breaks = append(b.breaks, branchTarget{label, brk})
	}
	if cont != nil {
		b.conts = append(b.conts, branchTarget{"", cont})
		if label != "" {
			b.conts = append(b.conts, branchTarget{label, cont})
		}
	}
}

func (b *cfgBuilder) popTargets(label string, hasCont bool) {
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	if hasCont {
		b.conts = b.conts[:len(b.conts)-n]
	}
}

func findTarget(stack []branchTarget, label string) *block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].blk
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		header.loop = s
		if label != "" {
			b.labels[label] = header
		}
		b.edge(b.cur, header)
		b.cur = header
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, after)
		}
		cont := header
		var post *block
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, header)
			cont = post
		}
		b.pushTargets(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.popTargets(label, true)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		header := b.newBlock()
		header.loop = s
		if label != "" {
			b.labels[label] = header
		}
		b.edge(b.cur, header)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.pushTargets(label, after, header)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, header)
		b.popTargets(label, true)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		after := b.newBlock()
		b.pushTargets(label, after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			b.edge(sel, blk)
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		if len(s.Body.List) == 0 {
			b.edge(sel, after)
		}
		b.popTargets(label, false)
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, findTarget(b.breaks, labelName(s.Label)))
			b.cur = nil
		case token.CONTINUE:
			b.edge(b.cur, findTarget(b.conts, labelName(s.Label)))
			b.cur = nil
		case token.GOTO:
			if b.cur == nil {
				b.cur = b.newBlock()
			}
			b.gotos = append(b.gotos, gotoPatch{b.cur, labelName(s.Label)})
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by caseClauses; a stray fallthrough is a no-op.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.exit)
			b.cur = nil
		}

	case nil:
		// no statement (e.g. empty else)

	default:
		// Decl, Assign, IncDec, Send, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

// caseClauses builds the clause blocks of a switch or type switch.
// The tag block branches to every clause (and past them when there is
// no default); fallthrough chains a clause into the next one.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, allowFallthrough bool) {
	tag := b.cur
	after := b.newBlock()
	b.pushTargets(label, after, nil)
	blks := make([]*block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blks[i] = b.newBlock()
		for _, e := range cc.List {
			blks[i].nodes = append(blks[i].nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(tag, blks[i])
	}
	if !hasDefault {
		b.edge(tag, after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		body := cc.Body
		fallsThrough := false
		if allowFallthrough && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(blks)
				body = body[:len(body)-1]
			}
		}
		b.cur = blks[i]
		b.stmtList(body)
		if fallsThrough {
			b.edge(b.cur, blks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.popTargets(label, false)
	b.cur = after
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// backEdges returns the DFS back edges of g, reachable from entry.
func backEdges(g *funcCFG) []backEdge {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.blocks))
	var out []backEdge
	var dfs func(b *block)
	dfs = func(b *block) {
		color[b.id] = grey
		for _, s := range b.succs {
			switch color[s.id] {
			case white:
				dfs(s)
			case grey:
				out = append(out, backEdge{b, s})
			}
		}
		color[b.id] = black
	}
	dfs(g.entry)
	return out
}

// domTree holds immediate dominators of the blocks reachable from
// entry.
type domTree struct {
	idom map[*block]*block
	post map[*block]int // postorder number
}

// dominators computes the dominator tree with the iterative algorithm
// of Cooper, Harvey and Kennedy, over the reachable subgraph.
func dominators(g *funcCFG) *domTree {
	// Postorder over reachable blocks.
	var order []*block
	seen := make([]bool, len(g.blocks))
	var dfs func(b *block)
	dfs = func(b *block) {
		seen[b.id] = true
		for _, s := range b.succs {
			if !seen[s.id] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.entry)
	d := &domTree{idom: map[*block]*block{}, post: map[*block]int{}}
	for i, b := range order {
		d.post[b] = i
	}
	d.idom[g.entry] = g.entry
	intersect := func(a, b *block) *block {
		for a != b {
			for d.post[a] < d.post[b] {
				a = d.idom[a]
			}
			for d.post[b] < d.post[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		// Reverse postorder, skipping entry.
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == g.entry {
				continue
			}
			var newIdom *block
			for _, p := range b.preds {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// dominates reports whether a dominates b (reflexively).
func (d *domTree) dominates(a, b *block) bool {
	if _, ok := d.idom[b]; !ok {
		return false // b unreachable
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// naturalLoop returns the natural loop of back edge e: every block
// that can reach e.from without passing through e.to, plus e.to.
func naturalLoop(e backEdge) map[*block]bool {
	loop := map[*block]bool{e.to: true}
	stack := []*block{e.from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if loop[b] {
			continue
		}
		loop[b] = true
		stack = append(stack, b.preds...)
	}
	return loop
}

// blockContaining returns the block whose node list covers pos, or nil.
// Positions inside nested function literals resolve to the node that
// mentions the literal; callers analysing literal bodies must use the
// literal's own CFG.
func blockContaining(g *funcCFG, pos token.Pos) *block {
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return b
			}
		}
	}
	return nil
}
