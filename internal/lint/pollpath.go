package lint

// pollpath proves the cooperative-cancellation invariant of the hot
// solver packages: every cycle a solve can stay in for an unbounded
// number of iterations must observe the engine context — via Poll,
// Expired, or Charge (which polls) — on EVERY path through the cycle,
// so a deadline, budget trip, or portfolio cancellation always
// reaches it. The predecessor check (ctxpoll) was syntactic: it only
// looked at `for {}` loops and only for a poll call anywhere in the
// body. pollpath walks the CFG instead: it finds every back edge,
// skips loops whose iteration count is structurally bounded (range
// loops, counted for-loops whose bound does not grow inside the
// loop), and then searches the natural loop for a path from header to
// latch that crosses no polling block — including polls performed by
// one level of statically resolved callees that poll on all their own
// paths.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var pollPath = &Analyzer{
	Name: "pollpath",
	Doc:  "unbounded solver cycles with a path that never polls the engine context",
	Scope: scopeFor("pollpath", "internal/sat", "internal/simplex", "internal/portfolio",
		"internal/cluster"),
	Run: runPollPath,
}

// pollMethods are the engine.Ctx methods that count as observing
// cancellation. Charge polls as part of billing.
var pollMethods = map[string]bool{"Poll": true, "Expired": true, "Charge": true}

func runPollPath(p *Pass) {
	for _, u := range p.Prog.unitsOf(p.Path) {
		g := p.Prog.cfgOf(u)
		byHeader := map[*block][]backEdge{}
		var headers []*block
		for _, be := range backEdges(g) {
			if len(byHeader[be.to]) == 0 {
				headers = append(headers, be.to)
			}
			byHeader[be.to] = append(byHeader[be.to], be)
		}
		sort.Slice(headers, func(i, j int) bool { return headers[i].id < headers[j].id })
		for _, header := range headers {
			if header.loop != nil && boundedLoop(p, u, header.loop) {
				continue
			}
			if !cycleMissesPoll(p, byHeader[header]) {
				continue
			}
			pos := loopPos(header)
			if has, justified := p.suppression(nopollDirective, pos); has {
				if !justified {
					p.Report(pos, "pollpath", "//lint:nopoll needs a justification")
				}
				continue
			}
			p.Report(pos, "pollpath",
				"unbounded cycle has a path that never polls the solve context; "+
					"add a ctx.Poll()/Charge() on every path or //lint:nopoll <why it is bounded>")
		}
	}
}

// loopPos is the position findings and suppressions anchor to: the
// loop keyword when the header belongs to a for/range statement, the
// first statement of the header otherwise (goto cycles).
func loopPos(header *block) token.Pos {
	if header.loop != nil {
		return header.loop.Pos()
	}
	if len(header.nodes) > 0 {
		return header.nodes[0].Pos()
	}
	return token.NoPos
}

// cycleMissesPoll reports whether some path through the cycle closed
// by the back edges (all targeting one header) avoids every polling
// block.
func cycleMissesPoll(p *Pass, edges []backEdge) bool {
	header := edges[0].to
	if blockPolls(p, header) {
		return false
	}
	inLoop := map[*block]bool{}
	targets := map[*block]bool{}
	for _, e := range edges {
		targets[e.from] = true
		for b := range naturalLoop(e) {
			inLoop[b] = true
		}
	}
	if targets[header] {
		return true // self-loop on a non-polling header
	}
	visited := map[*block]bool{header: true}
	stack := []*block{header}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			if !inLoop[s] || visited[s] {
				continue
			}
			if blockPolls(p, s) {
				continue
			}
			if targets[s] {
				return true
			}
			visited[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// blockPolls reports whether executing the block necessarily reaches a
// poll: a direct Poll/Expired/Charge call, or a call to a statically
// resolved module function that polls on every one of its own paths.
func blockPolls(p *Pass, b *block) bool {
	found := false
	for _, n := range b.nodes {
		walkCalls(n, func(call *ast.CallExpr) {
			if found {
				return
			}
			if isDirectPoll(call) {
				found = true
				return
			}
			if f := staticCallee(p.Info, call); f != nil {
				if u := p.Prog.unitFor(f); u != nil && alwaysPolls(p.Prog, u) {
					found = true
				}
			}
		})
		if found {
			return true
		}
	}
	return false
}

// isDirectPoll matches a call of a method named Poll/Expired/Charge.
func isDirectPoll(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && pollMethods[sel.Sel.Name]
}

// alwaysPolls reports whether every entry-to-exit path of the unit
// crosses a direct poll call. The summary is one level deep on
// purpose: it does not recurse into the unit's own callees, so the
// interprocedural search cannot loop.
func alwaysPolls(pr *Program, u *funcUnit) bool {
	if v, ok := pr.pollMemo[u]; ok {
		return v
	}
	g := pr.cfgOf(u)
	directPolls := func(b *block) bool {
		found := false
		for _, n := range b.nodes {
			walkCalls(n, func(call *ast.CallExpr) {
				if isDirectPoll(call) {
					found = true
				}
			})
			if found {
				return true
			}
		}
		return false
	}
	// Exit unreachable through non-polling blocks => always polls.
	reachesExit := false
	visited := map[*block]bool{}
	var stack []*block
	if !directPolls(g.entry) {
		visited[g.entry] = true
		stack = append(stack, g.entry)
	}
	for len(stack) > 0 && !reachesExit {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == g.exit {
			reachesExit = true
			break
		}
		for _, s := range b.succs {
			if visited[s] || directPolls(s) {
				continue
			}
			visited[s] = true
			stack = append(stack, s)
		}
	}
	v := !reachesExit
	pr.pollMemo[u] = v
	return v
}

// walkCalls visits the call expressions of a node, skipping nested
// function literals (they may never run on this path) and go/defer
// statements (their calls run elsewhere or at return, not on the
// cycle's iteration path).
func walkCalls(n ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			f(m)
		}
		return true
	})
}

// boundedLoop classifies a loop statement as structurally bounded:
// a range over anything but a channel, or a counted for-loop
// (init; i OP bound; i++/i--) whose bound does not grow inside the
// loop. A counted loop over `len(x)` where x is appended to in the
// loop body — or in a function literal of the same enclosing function,
// the worklist idiom — is NOT bounded.
func boundedLoop(p *Pass, u *funcUnit, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if t := p.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return false
			}
		}
		return true
	case *ast.ForStmt:
		if s.Init == nil || s.Cond == nil || s.Post == nil {
			return false
		}
		iv := countedInit(p, s.Init)
		if iv == nil || !countedPost(p, s.Post, iv) {
			return false
		}
		bound := countedBound(p, s.Cond, iv)
		if bound == nil {
			return false
		}
		for _, obj := range lenTargets(p, bound) {
			if growsIn(p, u, s.Body, obj) {
				return false
			}
		}
		return true
	}
	return false
}

// countedInit matches `i := e` or `i = e` and returns i's object.
func countedInit(p *Pass, s ast.Stmt) types.Object {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// countedPost matches i++/i--/i+=e/i-=e on the induction variable.
func countedPost(p *Pass, s ast.Stmt, iv types.Object) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		id, ok := s.X.(*ast.Ident)
		return ok && p.Info.Uses[id] == iv
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || (s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN) {
			return false
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		return ok && p.Info.Uses[id] == iv
	}
	return false
}

// countedBound matches `i OP bound` (or `bound OP i`) and returns the
// bound expression.
func countedBound(p *Pass, cond ast.Expr, iv types.Object) ast.Expr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return nil
	}
	isIV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.Info.Uses[id] == iv
	}
	if isIV(be.X) {
		return be.Y
	}
	if isIV(be.Y) {
		return be.X
	}
	return nil
}

// lenTargets returns the objects measured by len(...) calls inside e.
func lenTargets(p *Pass, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" {
			return true
		}
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "len" {
			return true
		}
		if obj := objOfExpr(p, call.Args[0]); obj != nil {
			out = append(out, obj)
		}
		return true
	})
	return out
}

// objOfExpr resolves an identifier or field selector to its object.
func objOfExpr(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// growsIn reports whether obj is appended to inside body or inside any
// function literal of the enclosing unit (a closure the loop may call
// to push work).
func growsIn(p *Pass, u *funcUnit, body ast.Node, obj types.Object) bool {
	appends := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if objOfExpr(p, call.Args[0]) == obj {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if appends(body) {
		return true
	}
	grown := false
	ast.Inspect(u.body, func(m ast.Node) bool {
		if grown {
			return false
		}
		if lit, ok := m.(*ast.FuncLit); ok {
			if appends(lit.Body) {
				grown = true
				return false
			}
		}
		return true
	})
	return grown
}
