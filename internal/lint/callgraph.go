package lint

// The module-wide call graph. The loader type-checks every module-
// internal package in one shared FileSet and object universe, so a
// *types.Func identifies the same function no matter which package
// mentions it; the Program built on top indexes every function body
// (declarations and function literals alike) as an analysis unit,
// resolves static call sites, and caches one CFG per unit for the
// flow-aware checks.

import (
	"go/ast"
	"go/types"
	"sort"
)

// funcUnit is one analysable function body: a declared function or
// method, or a function literal.
type funcUnit struct {
	pkg  *Package
	decl *ast.FuncDecl // non-nil for declarations
	lit  *ast.FuncLit  // non-nil for literals
	encl *ast.FuncDecl // enclosing declaration (== decl for declarations)
	body *ast.BlockStmt
}

// callSite is one static call of a resolved function.
type callSite struct {
	unit *funcUnit
	call *ast.CallExpr
}

// Program is the whole-module view shared by interprocedural checks.
type Program struct {
	pkgs       map[string]*Package
	units      []*funcUnit
	unitsByPkg map[string][]*funcUnit
	byFunc     map[*types.Func]*funcUnit
	callers    map[*types.Func][]callSite
	cfgs       map[*funcUnit]*funcCFG
	pollMemo   map[*funcUnit]bool // alwaysPolls summaries
}

// newProgram indexes every loaded package.
func newProgram(pkgs map[string]*Package) *Program {
	pr := &Program{
		pkgs:       pkgs,
		unitsByPkg: map[string][]*funcUnit{},
		byFunc:     map[*types.Func]*funcUnit{},
		callers:    map[*types.Func][]callSite{},
		cfgs:       map[*funcUnit]*funcCFG{},
		pollMemo:   map[*funcUnit]bool{},
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := pkgs[path]
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				u := &funcUnit{pkg: pkg, decl: fn, encl: fn, body: fn.Body}
				pr.addUnit(path, u)
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					pr.byFunc[obj] = u
				}
				// Nested literals are their own units.
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						pr.addUnit(path, &funcUnit{pkg: pkg, lit: lit, encl: fn, body: lit.Body})
					}
					return true
				})
			}
		}
	}
	for _, u := range pr.units {
		unit := u
		inspectUnit(unit.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := staticCallee(unit.pkg.Info, call); f != nil {
				pr.callers[f] = append(pr.callers[f], callSite{unit, call})
			}
			return true
		})
	}
	return pr
}

func (pr *Program) addUnit(path string, u *funcUnit) {
	pr.units = append(pr.units, u)
	pr.unitsByPkg[path] = append(pr.unitsByPkg[path], u)
}

// unitsOf returns the analysis units of one package, declaration and
// literal alike, in source order.
func (pr *Program) unitsOf(path string) []*funcUnit {
	return pr.unitsByPkg[path]
}

// unitFor returns the body of a resolved function when it is part of
// the module, nil otherwise.
func (pr *Program) unitFor(f *types.Func) *funcUnit {
	return pr.byFunc[f]
}

// callersOf returns the static call sites of f across the module.
func (pr *Program) callersOf(f *types.Func) []callSite {
	return pr.callers[f]
}

// cfgOf builds (once) and returns the CFG of a unit.
func (pr *Program) cfgOf(u *funcUnit) *funcCFG {
	if g, ok := pr.cfgs[u]; ok {
		return g
	}
	g := buildCFG(u.body)
	pr.cfgs[u] = g
	return g
}

// staticCallee resolves a call expression to the function or method it
// statically invokes: package-level functions, methods on concrete
// receivers, and qualified identifiers. Interface method calls, calls
// of function-typed values, conversions, and builtins resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return concreteOnly(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return concreteOnly(f)
			}
			return nil
		}
		// Package-qualified: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return concreteOnly(f)
		}
	}
	return nil
}

// concreteOnly filters out interface methods: their call sites are
// dynamic.
func concreteOnly(f *types.Func) *types.Func {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return f
}

// inspectUnit walks n in source order without descending into nested
// function literals: a literal's body belongs to its own unit and may
// never run on the enclosing path.
func inspectUnit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			_ = lit
			return false
		}
		return f(m)
	})
}
