package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path (module path + relative directory)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the
// module root and type-checked from source recursively; standard-
// library imports are delegated to the source importer. No external
// tooling (x/tools, go list) is involved.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

func newLoader(modRoot string) (*loader, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// pathForDir maps a directory inside the module to its import path.
func (l *loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside the module root %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirForPath maps a module-internal import path to its directory.
func (l *loader) dirForPath(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	rel := strings.TrimPrefix(path, l.modPath+"/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer for the type-checker: module-
// internal paths are loaded from source, everything else goes to the
// standard-library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isModulePath(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir.
func (l *loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirForPath(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// walkDirs returns every directory under root (inclusive) that contains
// at least one non-test Go file, skipping testdata, hidden, and VCS
// directories. The result is sorted for deterministic report order.
func walkDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") &&
				!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
