package lint

// cachetaint proves the verdict-cache soundness invariant of
// internal/server: a cached verdict must hold for the problem itself,
// not for the budget or fault environment of the run that produced
// it. Concretely, no value data- or control-dependent on budget or
// fault diagnostics (BudgetReason/Cause/TimedOut, Reason/Fault
// fields, fault.Diagnostic values) may reach a verdict-cache put, and
// every cached verdict must be provably settled — its status a
// constant SAT/UNSAT or guarded by an equality test against one. The
// sanctioned pattern `if !ec.Expired() { cache.put(...) }` stays
// clean: Expired and Poll are boolean guards, not diagnostic data.
//
// The analysis is field-sensitive (a Result with a tainted Reason
// does not taint its Status or Model) and one level interprocedural:
// a package function returning a source-derived value taints its call
// sites.

import (
	"go/ast"
	"go/types"
	"strings"
)

var cacheTaint = &Analyzer{
	Name:  "cachetaint",
	Doc:   "budget- or fault-dependent values reaching the verdict cache",
	Scope: scopeFor("cachetaint", "internal/server"),
	Run:   runCacheTaint,
}

// cachetaintSourceMethods yield budget/fault diagnostics.
var cachetaintSourceMethods = map[string]bool{
	"BudgetReason":    true,
	"BudgetRemaining": true,
	"Cause":           true,
	"TimedOut":        true,
}

// cachetaintSourceFields are diagnostic struct fields.
var cachetaintSourceFields = map[string]bool{"Reason": true, "Fault": true}

// cachetaintCleanMethods are the sanctioned boolean guards.
var cachetaintCleanMethods = map[string]bool{"Expired": true, "Poll": true}

// cachetaintSourceTypes are diagnostic value types by name.
var cachetaintSourceTypes = map[string]bool{"Diagnostic": true, "Cause": true}

func runCacheTaint(p *Pass) {
	sourceFuncs := cachetaintSummaries(p)
	isSource := func(e ast.Expr) bool { return cachetaintIsSource(p, sourceFuncs, e) }
	for _, u := range p.Prog.unitsOf(p.Path) {
		ts := taintFunc(p, u.body, isSource, cachetaintCleanMethods)
		inspectUnit(u.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCachePut(p, call) {
				return true
			}
			var msgs []string
			for _, a := range call.Args {
				if ts.valueTainted(a) {
					msgs = append(msgs,
						"budget/fault-tainted value flows into the verdict cache; cache only settled verdicts")
					break
				}
			}
			for _, cond := range condStackAt(u.body, call.Pos()) {
				if ts.exprTainted(cond) {
					msgs = append(msgs,
						"verdict cached under a budget/fault-dependent condition; the cached entry would encode this run's budget, not the problem")
					break
				}
			}
			if msg := unsettledStatus(p, ts, u, call); msg != "" {
				msgs = append(msgs, msg)
			}
			if len(msgs) == 0 {
				return true
			}
			if has, justified := p.suppression(cachesafeDirective, call.Pos()); has {
				if !justified {
					p.Report(call.Pos(), "cachetaint", "//lint:cachesafe needs a justification")
				}
				return true
			}
			for _, m := range msgs {
				p.Report(call.Pos(), "cachetaint", m)
			}
			return true
		})
	}
}

// cachetaintSummaries finds package functions whose return values are
// source-derived (one level: summaries use only direct sources).
func cachetaintSummaries(p *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	base := func(e ast.Expr) bool { return cachetaintIsSource(p, nil, e) }
	for _, u := range p.Prog.unitsOf(p.Path) {
		if u.decl == nil {
			continue
		}
		obj, ok := p.Info.Defs[u.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		ts := taintFunc(p, u.body, base, cachetaintCleanMethods)
		tainted := false
		inspectUnit(u.body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || tainted {
				return !tainted
			}
			for _, r := range ret.Results {
				if ts.exprTainted(r) {
					tainted = true
				}
			}
			return true
		})
		if tainted {
			out[obj] = true
		}
	}
	return out
}

func cachetaintIsSource(p *Pass, sourceFuncs map[*types.Func]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && cachetaintSourceMethods[sel.Sel.Name] {
			return true
		}
		if sourceFuncs != nil {
			if f := staticCallee(p.Info, e); f != nil && sourceFuncs[f] {
				return true
			}
		}
	case *ast.SelectorExpr:
		if !cachetaintSourceFields[e.Sel.Name] {
			return false
		}
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return true
		}
	case *ast.Ident, *ast.ParenExpr:
		// fall through to the type check below
	default:
		return false
	}
	if t := p.TypeOf(e); t != nil {
		if named, ok := derefType(t).(*types.Named); ok {
			if cachetaintSourceTypes[named.Obj().Name()] && named.Obj().Pkg() != nil {
				return true
			}
		}
	}
	return false
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isCachePut matches a put/Put method call on a cache-named receiver
// type.
func isCachePut(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "put" && sel.Sel.Name != "Put") {
		return false
	}
	return typeNameContains(p.TypeOf(sel.X), "cache")
}

// unsettledStatus checks that the verdict argument of a cache put
// carries a provably settled status: the composite literal (given
// directly or via a single local assignment) sets its status field to
// StatusSat/StatusUnsat, or the put is guarded by an equality or
// switch case against one of them. Returns a finding message, or "".
func unsettledStatus(p *Pass, ts *taintState, u *funcUnit, call *ast.CallExpr) string {
	var statusVal ast.Expr
	found := false
	for _, a := range call.Args {
		comp := compositeFor(p, u, a)
		if comp == nil {
			continue
		}
		for _, elt := range comp.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !strings.Contains(strings.ToLower(key.Name), "status") {
				continue
			}
			found = true
			statusVal = kv.Value
		}
	}
	if !found {
		return ""
	}
	if settledName(statusVal) {
		return ""
	}
	for _, cond := range condStackAt(u.body, call.Pos()) {
		if be, ok := cond.(*ast.BinaryExpr); ok {
			if settledName(be.X) || settledName(be.Y) {
				return ""
			}
		}
		if settledName(cond) { // case StatusSat:
			return ""
		}
	}
	return "cached verdict status is not provably settled; only constant SAT/UNSAT verdicts (or ones guarded by an equality test against them) may enter the cache"
}

// compositeFor resolves an argument to a struct composite literal:
// directly, or through the single assignment of a local variable.
func compositeFor(p *Pass, u *funcUnit, e ast.Expr) *ast.CompositeLit {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if _, ok := derefType(p.TypeOf(e)).Underlying().(*types.Struct); ok {
			return e
		}
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			return nil
		}
		var comp *ast.CompositeLit
		count := 0
		inspectUnit(u.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if p.Info.Defs[id] != obj && p.Info.Uses[id] != obj {
					continue
				}
				count++
				if i < len(as.Rhs) {
					if c, ok := ast.Unparen(as.Rhs[i]).(*ast.CompositeLit); ok {
						comp = c
					}
				}
			}
			return true
		})
		if count == 1 {
			return comp
		}
	}
	return nil
}

// settledName reports whether the expression names a settled verdict
// constant (StatusSat / StatusUnsat, possibly package-qualified).
func settledName(e ast.Expr) bool {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return name == "StatusSat" || name == "StatusUnsat"
}
