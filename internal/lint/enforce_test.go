package lint

import "testing"

// TestRepoIsLintClean runs every analyzer over the whole module and
// fails on any finding: this is the tier-1 enforcement gate that keeps
// the repo free of nondeterministic map iteration, big-number aliasing
// bugs, dropped errors, unbounded recursion, unpollable or unmetered
// solver cycles, budget-tainted cache entries, lock-order inversions,
// and stale suppressions. Fixture packages under testdata/ are
// excluded by the directory walker.
func TestRepoIsLintClean(t *testing.T) {
	all := All()
	// The flow-aware soundness checks must be part of the gate: dropping
	// one from All() would silently stop enforcing its invariant.
	for _, name := range []string{"pollpath", "chargecover", "cachetaint", "lockorder", "overflowguard", "stalesupp"} {
		found := false
		for _, a := range all {
			if a.Name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("soundness check %q missing from All()", name)
		}
	}
	findings, err := Run("../..", nil, all)
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d lint finding(s); fix them or add a justified //lint:<check> suppression", len(findings))
	}
}
