package lint

import "testing"

// TestRepoIsLintClean runs every analyzer over the whole module and
// fails on any finding: this is the tier-1 enforcement gate that keeps
// the repo free of nondeterministic map iteration, big-number aliasing
// bugs, dropped errors, and unbounded recursion. Fixture packages under
// testdata/ are excluded by the directory walker.
func TestRepoIsLintClean(t *testing.T) {
	findings, err := Run("../..", nil, All())
	if err != nil {
		t.Fatalf("lint run failed: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d lint finding(s); fix them or add a justified //lint:ordered", len(findings))
	}
}
