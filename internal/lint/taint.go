package lint

// A small field-sensitive taint engine for intra-function data-flow.
// Taint is tracked per object and per object.field, so a struct with
// one tainted field (a Result whose Reason came from BudgetReason)
// does not taint its sibling fields (the Status the cache is allowed
// to see). Propagation iterates the function's assignments to a
// fixpoint; the source predicate is supplied by the check.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type taintKey string

func keyOf(obj types.Object) taintKey {
	return taintKey(fmt.Sprintf("%s@%d", obj.Name(), obj.Pos()))
}

func fieldKeyOf(obj types.Object, field string) taintKey {
	return keyOf(obj) + taintKey("."+field)
}

type taintState struct {
	p        *Pass
	isSource func(ast.Expr) bool
	// clean names short-circuit call taint: a call of a method with
	// one of these names is never tainted (the sanctioned negative
	// guards like Expired/Poll).
	cleanMethods map[string]bool
	tainted      map[taintKey]bool
}

// taintFunc runs the fixpoint over one function body (nested literals
// excluded — they are separate units).
func taintFunc(p *Pass, body ast.Node, isSource func(ast.Expr) bool, clean map[string]bool) *taintState {
	ts := &taintState{p: p, isSource: isSource, cleanMethods: clean, tainted: map[taintKey]bool{}}
	for changed := true; changed; {
		changed = false
		inspectUnit(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs == nil {
						continue
					}
					if ts.assign(lhs, rhs) {
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && ts.assign(name, vs.Values[i]) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if ts.exprTainted(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && e != nil {
							if obj := ts.objOf(id); obj != nil && !ts.tainted[keyOf(obj)] {
								ts.tainted[keyOf(obj)] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return ts
}

func (ts *taintState) objOf(id *ast.Ident) types.Object {
	if obj := ts.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return ts.p.Info.Uses[id]
}

// assign propagates taint from rhs into the lhs target, returning
// whether new taint was recorded. Composite literals assign
// field-sensitively.
func (ts *taintState) assign(lhs, rhs ast.Expr) bool {
	obj, field := ts.target(lhs)
	if obj == nil {
		return false
	}
	mark := func(k taintKey) bool {
		if ts.tainted[k] {
			return false
		}
		ts.tainted[k] = true
		return true
	}
	if comp, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok && field == "" {
		changed := false
		for _, elt := range comp.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					if ts.exprTainted(kv.Value) && mark(fieldKeyOf(obj, key.Name)) {
						changed = true
					}
					continue
				}
			}
			// Positional or keyless element: lose field precision.
			if ts.exprTainted(elt) && mark(keyOf(obj)) {
				changed = true
			}
		}
		return changed
	}
	if !ts.exprTainted(rhs) {
		return false
	}
	if field != "" {
		return mark(fieldKeyOf(obj, field))
	}
	return mark(keyOf(obj))
}

// target resolves an assignment destination to (object, field): x ->
// (x, ""), x.f -> (x, "f"), anything deeper or indexed taints the base
// object wholly.
func (ts *taintState) target(lhs ast.Expr) (types.Object, string) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return ts.objOf(lhs), ""
	case *ast.SelectorExpr:
		if id, ok := lhs.X.(*ast.Ident); ok {
			return ts.objOf(id), lhs.Sel.Name
		}
		if obj := objOfExpr(ts.p, lhs.X); obj != nil {
			return obj, ""
		}
	case *ast.IndexExpr:
		if obj := objOfExpr(ts.p, lhs.X); obj != nil {
			return obj, ""
		}
	case *ast.StarExpr:
		if obj := objOfExpr(ts.p, lhs.X); obj != nil {
			return obj, ""
		}
	}
	return nil, ""
}

// exprTainted reports whether evaluating e can produce a
// source-derived value.
func (ts *taintState) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if ts.isSource(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := ts.objOf(e)
		return obj != nil && ts.tainted[keyOf(obj)]
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if obj := ts.objOf(id); obj != nil {
				if ts.tainted[fieldKeyOf(obj, e.Sel.Name)] || ts.tainted[keyOf(obj)] {
					return true
				}
			}
			return false
		}
		return ts.exprTainted(e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if ts.cleanMethods[sel.Sel.Name] {
				return false
			}
			if ts.exprTainted(sel.X) {
				return true
			}
		}
		for _, a := range e.Args {
			if ts.exprTainted(a) {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if ts.exprTainted(kv.Value) {
					return true
				}
				continue
			}
			if ts.exprTainted(elt) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return ts.exprTainted(e.X) || ts.exprTainted(e.Y)
	case *ast.UnaryExpr:
		return ts.exprTainted(e.X)
	case *ast.ParenExpr:
		return ts.exprTainted(e.X)
	case *ast.StarExpr:
		return ts.exprTainted(e.X)
	case *ast.IndexExpr:
		return ts.exprTainted(e.X) || ts.exprTainted(e.Index)
	case *ast.SliceExpr:
		return ts.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return ts.exprTainted(e.X)
	case *ast.KeyValueExpr:
		return ts.exprTainted(e.Value)
	}
	return false
}

// valueTainted is exprTainted plus field transport: passing a struct
// variable by value carries its tainted fields along, so at a sink an
// identifier with any tainted field counts as tainted.
func (ts *taintState) valueTainted(e ast.Expr) bool {
	if ts.exprTainted(e) {
		return true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := ts.objOf(id); obj != nil {
			prefix := string(keyOf(obj)) + "."
			for k := range ts.tainted {
				if strings.HasPrefix(string(k), prefix) {
					return true
				}
			}
		}
	}
	return false
}

// condStackAt collects the condition expressions the statement at pos
// is control-dependent on: enclosing if conditions (either branch),
// switch tags, case-clause expression lists, and loop conditions.
func condStackAt(root ast.Node, pos token.Pos) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Cond.End() < pos && pos <= n.End() {
				out = append(out, n.Cond)
			}
		case *ast.SwitchStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() && n.Tag != nil {
				out = append(out, n.Tag)
			}
		case *ast.CaseClause:
			if n.Pos() <= pos && pos <= n.End() {
				out = append(out, n.List...)
			}
		case *ast.ForStmt:
			if n.Body.Pos() <= pos && pos <= n.Body.End() && n.Cond != nil {
				out = append(out, n.Cond)
			}
		}
		return true
	})
	return out
}

// typeNameContains reports whether the (possibly pointer) type's name
// contains the substring, case-insensitively.
func typeNameContains(t types.Type, sub string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(strings.ToLower(named.Obj().Name()), sub)
}
