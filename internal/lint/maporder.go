package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// mapOrder flags `for range` over a map whose body appends to a slice
// declared outside the loop or writes output: Go randomizes map
// iteration order, so such loops make emitted clauses, variable
// numbering, and printed results differ between runs. A subsequent
// sort of the appended slice (in the same function, after the loop)
// discharges the finding, as does a //lint:ordered comment with a
// justification.
var mapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding ordered output without a subsequent sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapOrderFunc(p, fn)
		}
	}
}

func checkMapOrderFunc(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Decide first, suppress second: a directive is consulted (and
		// marked used) only when it actually swallows a finding, so
		// stalesupp can report the ones that rot.
		findings := checkMapRange(p, fn, rs)
		if len(findings) == 0 {
			return true
		}
		if has, justified := p.suppression(orderedDirective, rs.For); has {
			if !justified {
				p.Report(rs.For, "maporder", "//lint:ordered needs a justification")
			}
			return true
		}
		for _, msg := range findings {
			p.Report(rs.For, "maporder", msg)
		}
		return true
	})
}

// checkMapRange returns the finding messages the loop would produce.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) []string {
	var msgs []string
	appended := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := appendTarget(p, call); obj != nil {
			// Only appends to slices that outlive the loop matter.
			if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
				appended[obj] = true
			}
			return true
		}
		if name, isOut := outputCall(p, call); isOut {
			msgs = append(msgs,
				fmt.Sprintf("%s writes output in map iteration order; iterate sorted keys instead", name))
		}
		return true
	})
	objs := make([]types.Object, 0, len(appended))
	for obj := range appended {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		if !sortedAfter(p, fn, rs.End(), obj) {
			msgs = append(msgs,
				fmt.Sprintf("appends to %q in map iteration order without a subsequent sort; "+
					"sort the result or iterate sorted keys (//lint:ordered <why> suppresses)", obj.Name()))
		}
	}
	return msgs
}

// appendTarget returns the object being appended to when call is
// `append(x, ...)` with an identifier first argument.
func appendTarget(p *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.Uses[target]
}

// outputCall reports whether the call emits output: an fmt print
// function or a Write*/Print* method on any receiver (including
// strings.Builder — building a string in map order is as
// nondeterministic as printing in map order).
func outputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if x, isIdent := sel.X.(*ast.Ident); isIdent {
		if pkg, isPkg := p.Info.Uses[x].(*types.PkgName); isPkg {
			if pkg.Imported().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return "fmt." + name, true
			}
			return "", false
		}
	}
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") {
		return "." + name, true
	}
	return "", false
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning
// obj appears after pos inside the function body.
func sortedAfter(p *Pass, fn *ast.FuncDecl, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := p.Info.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pkg.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, isIdent := a.(*ast.Ident); isIdent && p.Info.Uses[id] == obj {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
