package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSource parses src and returns the CFG of the first function
// declaration together with its AST.
func buildFromSource(t *testing.T, src string) (*funcCFG, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return buildCFG(fn.Body), fn
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func TestCFGCountedLoop(t *testing.T) {
	g, fn := buildFromSource(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	bes := backEdges(g)
	if len(bes) != 1 {
		t.Fatalf("back edges = %d, want 1", len(bes))
	}
	var loop *ast.ForStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			loop = fs
		}
		return true
	})
	header := bes[0].to
	if header.loop != loop {
		t.Fatalf("back edge target is not the loop header (loop=%v)", header.loop)
	}
	d := dominators(g)
	if !d.dominates(g.entry, header) {
		t.Error("entry must dominate the loop header")
	}
	if !d.dominates(header, bes[0].from) {
		t.Error("loop header must dominate the back-edge source")
	}
	nl := naturalLoop(bes[0])
	if !nl[header] || !nl[bes[0].from] {
		t.Error("natural loop must contain header and latch")
	}
	if nl[g.entry] {
		t.Error("natural loop must not contain the function entry")
	}
}

func TestCFGNestedLoops(t *testing.T) {
	g, fn := buildFromSource(t, `package p
func f(n int) {
	for {
		for j := 0; j < n; j++ {
			_ = j
		}
	}
}`)
	bes := backEdges(g)
	if len(bes) != 2 {
		t.Fatalf("back edges = %d, want 2", len(bes))
	}
	var outer, inner *ast.ForStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			if outer == nil {
				outer = fs
			} else {
				inner = fs
			}
		}
		return true
	})
	var outerHdr, innerHdr *block
	for _, b := range g.blocks {
		switch b.loop {
		case outer:
			outerHdr = b
		case inner:
			innerHdr = b
		}
	}
	if outerHdr == nil || innerHdr == nil {
		t.Fatal("missing loop header blocks")
	}
	d := dominators(g)
	if !d.dominates(outerHdr, innerHdr) {
		t.Error("outer header must dominate inner header")
	}
	if d.dominates(innerHdr, outerHdr) {
		t.Error("inner header must not dominate outer header")
	}
}

func TestCFGGotoCycle(t *testing.T) {
	g, _ := buildFromSource(t, `package p
func f(n int) {
	i := 0
L:
	i++
	if i < n {
		goto L
	}
}`)
	bes := backEdges(g)
	if len(bes) != 1 {
		t.Fatalf("back edges = %d, want 1", len(bes))
	}
	if bes[0].to.loop != nil {
		t.Error("goto cycle header must have no loop statement")
	}
}

func TestCFGBranchesDoNotDominate(t *testing.T) {
	g, fn := buildFromSource(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	var ret *ast.ReturnStmt
	var thenAssign ast.Stmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			ret = n
		case *ast.IfStmt:
			thenAssign = n.Body.List[0]
		}
		return true
	})
	retBlk := blockContaining(g, ret.Pos())
	thenBlk := blockContaining(g, thenAssign.Pos())
	if retBlk == nil || thenBlk == nil {
		t.Fatal("statement blocks not found")
	}
	d := dominators(g)
	if d.dominates(thenBlk, retBlk) {
		t.Error("then-branch must not dominate the merge point")
	}
	if !d.dominates(g.entry, retBlk) {
		t.Error("entry must dominate the return")
	}
	if len(backEdges(g)) != 0 {
		t.Error("acyclic function must have no back edges")
	}
}

func TestCFGBreakAndSwitch(t *testing.T) {
	g, _ := buildFromSource(t, `package p
func f(xs []int) int {
	s := 0
outer:
	for _, x := range xs {
		switch {
		case x < 0:
			break outer
		case x == 0:
			continue
		default:
			s += x
		}
	}
	return s
}`)
	bes := backEdges(g)
	if len(bes) == 0 {
		t.Fatal("range loop with continue must have back edges")
	}
	for _, be := range bes {
		if _, ok := be.to.loop.(*ast.RangeStmt); !ok {
			t.Errorf("back edge target must be the range header, got %T", be.to.loop)
		}
	}
}
