package lint

// overflowguard proves the arithmetic discipline of the simplex fast
// path: the int64 rational substrate (internal/simplex) is only sound
// because every add, subtract, multiply, and negate that could wrap
// flows through an overflow-checked helper that reports whether the
// result fit, promoting to big.Rat when it did not. A raw int64
// operation anywhere else in the package silently wraps instead of
// promoting, corrupting the tableau with no failing test to show for
// it — the verdicts are wrong only on inputs large enough to trip the
// wrap. The check flags every +, -, *, ++, --, +=, -=, and *= whose
// operands are int64, except:
//
//   - inside the checked helpers themselves, marked by the phrase
//     "overflow-checked helper" in the function's doc comment,
//   - constant-folded expressions (the compiler rejects wrapping
//     constants),
//   - sites annotated //lint:nooverflow <why the value stays in
//     range>, for counters and values with proven headroom.
//
// Divisions and remainders are exempt by construction: the substrate
// keeps denominators >= 1, and int64 division only overflows for
// MinInt64 / -1, which the reduced-form invariant excludes.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var overflowGuard = &Analyzer{
	Name:  "overflowguard",
	Doc:   "raw int64 arithmetic in the simplex fast path outside the overflow-checked helpers",
	Scope: scopeFor("overflowguard", "internal/simplex"),
	Run:   runOverflowGuard,
}

// checkedHelperMarker exempts a whole function: the helpers that
// implement the checked arithmetic must of course perform the raw
// operations they guard.
const checkedHelperMarker = "overflow-checked helper"

func runOverflowGuard(p *Pass) {
	for _, u := range p.Prog.unitsOf(p.Path) {
		if u.encl != nil && u.encl.Doc != nil &&
			strings.Contains(u.encl.Doc.Text(), checkedHelperMarker) {
			continue
		}
		unit := u
		inspectUnit(unit.body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if wrapOp(e.Op) && p.isInt64(e.X) && constValue(p, e) == nil {
					reportOverflow(p, e.Pos(), "int64 "+e.Op.String())
				}
			case *ast.UnaryExpr:
				if e.Op == token.SUB && p.isInt64(e.X) && constValue(p, e) == nil {
					reportOverflow(p, e.Pos(), "int64 negation")
				}
			case *ast.IncDecStmt:
				if p.isInt64(e.X) {
					reportOverflow(p, e.Pos(), "int64 "+e.Tok.String())
				}
			case *ast.AssignStmt:
				if wrapAssign(e.Tok) && len(e.Lhs) == 1 && p.isInt64(e.Lhs[0]) {
					reportOverflow(p, e.Pos(), "int64 "+e.Tok.String())
				}
			}
			return true
		})
	}
}

func wrapOp(op token.Token) bool {
	return op == token.ADD || op == token.SUB || op == token.MUL
}

func wrapAssign(tok token.Token) bool {
	return tok == token.ADD_ASSIGN || tok == token.SUB_ASSIGN || tok == token.MUL_ASSIGN
}

// isInt64 reports whether the expression's type is exactly int64 (the
// substrate's word type). Plain int, int32, and the unsigned types are
// out of scope: the fast path stores everything that matters in int64,
// and flagging every loop counter would drown the signal.
func (p *Pass) isInt64(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// constValue returns the expression's constant-folded value, nil when
// the expression is evaluated at run time.
func constValue(p *Pass, e ast.Expr) interface{} {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	return nil
}

func reportOverflow(p *Pass, pos token.Pos, what string) {
	if has, justified := p.suppression(nooverflowDirective, pos); has {
		if !justified {
			p.Report(pos, "overflowguard", "//lint:nooverflow needs a justification")
		}
		return
	}
	p.Report(pos, "overflowguard",
		what+" outside the checked helpers can wrap silently; "+
			"route it through add64/sub64/mul64/neg64 or //lint:nooverflow <why it stays in range>")
}
