package lint

// lockorder proves that internal/server, internal/engine, and
// internal/cluster acquire
// their mutexes in one consistent order, so the service layer cannot
// deadlock no matter how requests, shutdown, and stats merging
// interleave. Lock identity is the declared mutex variable or struct
// field (instances of the same field share a class). Per function, a
// may-hold set flows forward over the CFG: Lock/RLock adds, an inline
// Unlock/RUnlock removes, a deferred unlock holds to function exit.
// Acquiring B while holding A records the order edge A->B; calling a
// function that (transitively, via the call graph) acquires B while
// holding A records the same edge. A cycle in the resulting order
// graph — including a self-edge, an exclusive re-acquisition — is a
// potential deadlock and is reported.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var lockOrder = &Analyzer{
	Name:  "lockorder",
	Doc:   "inconsistent mutex acquisition order across server and engine",
	Scope: scopeFor("lockorder", "internal/server"),
	Run:   runLockOrder,
}

// lockEdge is "to acquired while holding from".
type lockEdge struct {
	from, to types.Object
}

type lockGraph struct {
	p     *Pass
	edges map[lockEdge]token.Pos // first example site
	self  map[types.Object]token.Pos
}

func runLockOrder(p *Pass) {
	// Universe: the fixture package when analysing testdata, otherwise
	// server + engine together (the check's Scope anchors it to the
	// server package so the pair is analysed exactly once per run).
	var paths []string
	if strings.Contains(p.Path, "/testdata/") {
		paths = []string{p.Path}
	} else {
		for path := range p.Prog.pkgs {
			if strings.HasSuffix(path, "internal/server") || strings.HasSuffix(path, "internal/engine") ||
				strings.HasSuffix(path, "internal/cluster") {
				paths = append(paths, path)
			}
		}
	}
	sort.Strings(paths)

	lg := &lockGraph{p: p, edges: map[lockEdge]token.Pos{}, self: map[types.Object]token.Pos{}}

	// Pass 1: direct acquire sets per declared function, then the
	// transitive closure over the call graph.
	acq := map[*types.Func]map[types.Object]bool{}
	var units []*funcUnit
	objOfUnit := map[*funcUnit]*types.Func{}
	for _, path := range paths {
		for _, u := range p.Prog.unitsOf(path) {
			units = append(units, u)
			if u.decl != nil {
				if f, ok := u.pkg.Info.Defs[u.decl.Name].(*types.Func); ok {
					objOfUnit[u] = f
					acq[f] = directAcquires(u)
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			f := objOfUnit[u]
			if f == nil {
				continue
			}
			inspectUnit(u.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(u.pkg.Info, call)
				if callee == nil {
					return true
				}
				for l := range acq[callee] {
					if !acq[f][l] {
						acq[f][l] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: flow the may-hold set through each unit, recording order
	// edges at direct acquires and at calls into acquiring functions.
	for _, u := range units {
		lg.flowUnit(u, acq)
	}

	lg.report()
}

// lockTarget resolves a Lock/RLock/Unlock/RUnlock call to the mutex's
// declared object, requiring a *Mutex*-named receiver type.
func lockTarget(pkg *Package, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	t := pkg.Info.TypeOf(sel.X)
	if !typeNameContains(t, "mutex") {
		return nil, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x], name
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel], name
	}
	return nil, ""
}

// directAcquires collects the mutexes a unit locks anywhere in its
// body.
func directAcquires(u *funcUnit) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectUnit(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, kind := lockTarget(u.pkg, call); obj != nil && (kind == "Lock" || kind == "RLock") {
			out[obj] = true
		}
		return true
	})
	return out
}

// flowUnit runs the may-hold dataflow over one unit's CFG.
func (lg *lockGraph) flowUnit(u *funcUnit, acq map[*types.Func]map[types.Object]bool) {
	g := lg.p.Prog.cfgOf(u)
	in := map[*block]map[types.Object]string{} // lock -> acquire kind
	in[g.entry] = map[types.Object]string{}
	work := []*block{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		held := map[types.Object]string{}
		for l, k := range in[b] {
			held[l] = k
		}
		lg.transferBlock(u, b, held, acq)
		for _, s := range b.succs {
			if merged, grew := mergeHeld(in[s], held, in[s] == nil); grew {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
}

// mergeHeld unions src into dst (may-hold), reporting growth.
func mergeHeld(dst, src map[types.Object]string, fresh bool) (map[types.Object]string, bool) {
	if fresh {
		out := map[types.Object]string{}
		for l, k := range src {
			out[l] = k
		}
		return out, true
	}
	grew := false
	for l, k := range src {
		if _, ok := dst[l]; !ok {
			dst[l] = k
			grew = true
		}
	}
	return dst, grew
}

// transferBlock walks a block's nodes in order, mutating held and
// recording order edges.
func (lg *lockGraph) transferBlock(u *funcUnit, b *block, held map[types.Object]string, acq map[*types.Func]map[types.Object]bool) {
	for _, n := range b.nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			// Deferred unlocks run at return: the lock stays held for
			// the rest of the function, which is exactly what may-hold
			// models. Deferred locks are not a pattern we accept.
			continue
		}
		walkCalls(n, func(call *ast.CallExpr) {
			if obj, kind := lockTarget(u.pkg, call); obj != nil {
				switch kind {
				case "Lock", "RLock":
					for h, hk := range held {
						if h == obj {
							// Re-acquisition: a write lock involved on
							// either side self-deadlocks.
							if kind == "Lock" || hk == "Lock" {
								lg.addSelf(obj, call.Pos())
							}
							continue
						}
						lg.addEdge(h, obj, call.Pos())
					}
					held[obj] = kind
				case "Unlock", "RUnlock":
					delete(held, obj)
				}
				return
			}
			if len(held) == 0 {
				return
			}
			callee := staticCallee(u.pkg.Info, call)
			if callee == nil {
				return
			}
			for l := range acq[callee] {
				for h, hk := range held {
					if h == l {
						if hk == "Lock" {
							lg.addSelf(l, call.Pos())
						}
						continue
					}
					lg.addEdge(h, l, call.Pos())
				}
			}
		})
	}
}

func (lg *lockGraph) addEdge(from, to types.Object, pos token.Pos) {
	e := lockEdge{from, to}
	if _, ok := lg.edges[e]; !ok {
		lg.edges[e] = pos
	}
}

func (lg *lockGraph) addSelf(l types.Object, pos token.Pos) {
	if _, ok := lg.self[l]; !ok {
		lg.self[l] = pos
	}
}

// report emits self-deadlocks and order-graph cycles, deterministically.
func (lg *lockGraph) report() {
	var selfs []types.Object
	for l := range lg.self {
		selfs = append(selfs, l)
	}
	sort.Slice(selfs, func(i, j int) bool { return lg.lockName(selfs[i]) < lg.lockName(selfs[j]) })
	for _, l := range selfs {
		pos := lg.self[l]
		if has, justified := lg.p.suppression(locksDirective, pos); has {
			if !justified {
				lg.p.Report(pos, "lockorder", "//lint:locks needs a justification")
			}
			continue
		}
		lg.p.Report(pos, "lockorder",
			fmt.Sprintf("%s is re-acquired while already held: self-deadlock", lg.lockName(l)))
	}

	// succ adjacency for reachability.
	succs := map[types.Object][]types.Object{}
	for e := range lg.edges {
		succs[e.from] = append(succs[e.from], e.to)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{from: true}
		stack := []types.Object{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range succs[n] {
				if s == to {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}
	var cyclic []lockEdge
	for e := range lg.edges {
		if reaches(e.to, e.from) {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		a := lg.lockName(cyclic[i].from) + "->" + lg.lockName(cyclic[i].to)
		b := lg.lockName(cyclic[j].from) + "->" + lg.lockName(cyclic[j].to)
		return a < b
	})
	reported := map[string]bool{}
	for _, e := range cyclic {
		a, b := lg.lockName(e.from), lg.lockName(e.to)
		key := a + "|" + b
		if a > b {
			key = b + "|" + a
		}
		if reported[key] {
			continue
		}
		reported[key] = true
		pos := lg.edges[e]
		if has, justified := lg.p.suppression(locksDirective, pos); has {
			if !justified {
				lg.p.Report(pos, "lockorder", "//lint:locks needs a justification")
			}
			continue
		}
		lg.p.Report(pos, "lockorder",
			fmt.Sprintf("inconsistent lock order: %s acquired while holding %s, but the reverse order also occurs; pick one order", b, a))
	}
}

// lockName renders a lock class readably: pkg.Struct.field for struct
// fields, pkg.var for package-level mutexes.
func (lg *lockGraph) lockName(obj types.Object) string {
	pkgName := "?"
	if obj.Pkg() != nil {
		pkgName = obj.Pkg().Name()
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() && obj.Pkg() != nil {
		scope := obj.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return fmt.Sprintf("%s.%s.%s", pkgName, name, obj.Name())
				}
			}
		}
	}
	return fmt.Sprintf("%s.%s", pkgName, obj.Name())
}
