package sat

import (
	"testing"
)

// mkLearnt builds a detached learnt clause for clause-management tests;
// reduceDB never inspects watches, only the clause records.
func mkLearnt(lits []Lit, lbd int32, act float64) *clause {
	return &clause{lits: lits, learnt: true, act: act, lbd: lbd}
}

func TestReduceDBKeepsGlue(t *testing.T) {
	s := New()
	for i := 0; i < 9; i++ {
		s.NewVar()
	}
	lits := []Lit{MkLit(0, false), MkLit(1, false), MkLit(2, false)}
	var glue []*clause
	// 2100 reducible high-LBD clauses plus glue sprinkled among them.
	for i := 0; i < 2100; i++ {
		s.clauses = append(s.clauses, mkLearnt(lits, 5+int32(i%7), float64(i)))
		if i%100 == 0 {
			g := mkLearnt(lits, 2, 0) // worst activity, best glue
			glue = append(glue, g)
			s.clauses = append(s.clauses, g)
		}
	}
	s.reduceDB()
	for _, g := range glue {
		if g.deleted {
			t.Fatal("glue clause (lbd<=2) was deleted")
		}
	}
	kept := map[*clause]bool{}
	for _, c := range s.clauses {
		kept[c] = true
	}
	for _, g := range glue {
		if !kept[g] {
			t.Fatal("glue clause dropped from the clause list")
		}
	}
	// Half of the 2100 reducible clauses must be gone.
	if got := len(s.clauses); got != 2100/2+len(glue) {
		t.Fatalf("clauses after reduce = %d, want %d", got, 2100/2+len(glue))
	}
}

func TestReduceDBPrefersHighLBD(t *testing.T) {
	s := New()
	for i := 0; i < 9; i++ {
		s.NewVar()
	}
	lits := []Lit{MkLit(0, false), MkLit(1, false), MkLit(2, false)}
	// 1000 clauses with lbd 10 and high activity, 1000 with lbd 3 and
	// low activity: LBD must outrank activity, so the lbd-10 half dies.
	var high, low []*clause
	for i := 0; i < 1000; i++ {
		h := mkLearnt(lits, 10, 1e9)
		l := mkLearnt(lits, 3, 0)
		high = append(high, h)
		low = append(low, l)
		s.clauses = append(s.clauses, h, l)
	}
	s.reduceDB()
	for _, c := range high {
		if !c.deleted {
			t.Fatal("high-LBD clause survived while low-LBD candidates existed")
		}
	}
	for _, c := range low {
		if c.deleted {
			t.Fatal("low-LBD clause deleted before high-LBD ones")
		}
	}
}

func TestComputeLBDCountsDistinctLevels(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		s.NewVar()
	}
	// Fake a trail: vars 0,1 at level 1; var 2 at level 2; var 3 at
	// level 0 (must not count); var 4 at level 3.
	s.lim = []int{0, 0, 0} // three open decision levels
	s.level[0], s.level[1], s.level[2], s.level[3], s.level[4] = 1, 1, 2, 0, 3
	got := s.computeLBD([]Lit{MkLit(0, false), MkLit(1, true), MkLit(2, false), MkLit(3, false), MkLit(4, true)})
	if got != 3 {
		t.Fatalf("computeLBD = %d, want 3 (levels 1,2,3; level 0 ignored)", got)
	}
	// A second call must not be confused by the first (stamp freshness).
	if got := s.computeLBD([]Lit{MkLit(0, false)}); got != 1 {
		t.Fatalf("second computeLBD = %d, want 1", got)
	}
}

func BenchmarkReduceDB(b *testing.B) {
	lits := []Lit{MkLit(0, false), MkLit(1, false), MkLit(2, false)}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		for v := 0; v < 9; v++ {
			s.NewVar()
		}
		for k := 0; k < 4000; k++ {
			s.clauses = append(s.clauses, mkLearnt(lits, int32(k%16), float64(k%97)))
		}
		b.StartTimer()
		s.reduceDB()
	}
}
