// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver in the MiniSat tradition: two-watched
// literals, first-UIP conflict analysis, VSIDS variable activities,
// phase saving, and Luby restarts.
//
// The string solver uses it in two roles: as the propositional engine
// of the DPLL(T) linear-integer-arithmetic solver (package lia), and as
// the backend of the bit-blasting baseline solver (package baseline).
package sat

import (
	"sort"

	"repro/internal/engine"
)

// Lit is a literal: variable index shifted left with the low bit as
// negation flag. Use MkLit to construct literals.
type Lit int32

// MkLit returns the literal for variable v, negated if neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

const (
	valUnassigned int8 = iota
	valTrue
	valFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
	// lbd is the literal block distance (glue) at learn time: the
	// number of distinct nonzero decision levels among the literals.
	// Clauses with lbd <= 2 tie together few decision levels and are
	// retained forever (Glucose-style clause management).
	lbd int32
}

// FinalResult is the outcome of a theory final check.
type FinalResult int

// Theory final-check outcomes.
const (
	// FinalOK accepts the full assignment; Solve returns Sat.
	FinalOK FinalResult = iota
	// FinalConflict rejects it with a conflict clause built from the
	// returned literals (which must all be currently true).
	FinalConflict
	// FinalRestart indicates the client added clauses (lazy lemmas);
	// search continues from decision level zero.
	FinalRestart
	// FinalUnknown aborts the search (theory budget exhausted).
	FinalUnknown
)

// TheoryClient is the DPLL(T) hook: the SAT solver streams literal
// assignments to the theory as they happen, synchronizing decision
// levels, and asks for a final check on complete assignments. All
// conflict explanations are sets of currently-true literals whose
// conjunction the theory refutes.
type TheoryClient interface {
	// TheoryAssert observes one newly assigned literal (cheap check).
	TheoryAssert(l Lit) []Lit
	// TheoryCheck runs the full consistency check at a propagation
	// fixpoint.
	TheoryCheck() []Lit
	// TheoryPush marks a new decision level.
	TheoryPush()
	// TheoryPop undoes the n most recent levels.
	TheoryPop(n int)
	// TheoryFinal checks a complete assignment.
	TheoryFinal() (FinalResult, []Lit)
}

// Solver is a CDCL SAT solver with an optional DPLL(T) theory hook. The
// zero value is not ready; use New. Clauses may be added between Solve
// calls (incremental use); the solver automatically restarts from
// decision level zero.
type Solver struct {
	clauses []*clause
	watches [][]*clause // watches[lit] = clauses watching lit

	assign []int8 // per var
	level  []int
	reason []*clause
	trail  []Lit
	lim    []int // decision-level boundaries in trail
	qhead  int

	activity []float64
	varInc   float64
	heap     *varHeap
	phase    []bool

	ok        bool // false once a top-level conflict is derived
	seen      []bool
	conflicts int64
	decisions int64
	propags   int64
	restarts  int64
	stopped   bool // context observed stopped during propagate

	// Budget limits the number of conflicts per Solve call; 0 means
	// unlimited. When exhausted, Solve returns Unknown.
	Budget int64
	// Assumptions are literals assumed true for the duration of each
	// Solve call, as pseudo-decisions at levels 1..n of every restart.
	// When they make the instance unsatisfiable, Solve returns Unsat
	// but the solver stays usable (ok is not cleared) and
	// FailedAssumptions reports an inconsistent subset. The caller owns
	// the slice and may change it between Solve calls.
	Assumptions []Lit
	// Ctx, when non-nil, aborts Solve with Unknown once the context
	// stops; polled in the search loop and inside unit propagation.
	Ctx *engine.Ctx
	// Stats, when non-nil, receives per-Solve counter deltas
	// (conflicts, decisions, propagations, restarts) on return.
	Stats *engine.Stats
	// Theory, when non-nil, receives assignments and level changes and
	// vetoes complete assignments (DPLL(T)).
	Theory TheoryClient

	theoryHead int // trail prefix already sent to the theory

	failed []Lit // failed-assumption core of the last Solve, or nil

	claInc float64

	// lbdStamp/lbdCounter implement the distinct-decision-level count
	// for LBD scoring without clearing a seen-array per clause: a level
	// is counted when its stamp differs from the current counter.
	lbdStamp   []int64
	lbdCounter int64
}

// Result is the outcome of Solve.
type Result int

// Solve outcomes.
const (
	Unsat Result = iota
	Sat
	Unknown
)

// New returns an empty solver.
func New() *Solver {
	return &Solver{ok: true, varInc: 1, claInc: 1, heap: newVarHeap()}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

// NumVars reports how many variables have been allocated.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses reports how many clauses are in the database.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Conflicts reports the total number of conflicts across Solve calls.
func (s *Solver) Conflicts() int64 { return s.conflicts }

func (s *Solver) litValue(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l.Neg() {
		if a == valTrue {
			return valFalse
		}
		return valTrue
	}
	return a
}

// AddClause adds a clause. Duplicate and false literals are removed;
// tautologies are dropped. Adding an empty (or all-false at level 0)
// clause makes the solver permanently unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	if !s.ok {
		return
	}
	s.cancelUntil(0)
	// Sort and dedupe; detect tautology.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Flip() {
			return // tautology
		}
		switch s.litValue(l) {
		case valTrue:
			return // already satisfied at level 0
		case valFalse:
			// drop false literal
		default:
			out = append(out, l)
		}
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
		} else if s.propagate() != nil {
			s.ok = false
		}
		return
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.attach(c)
	s.clauses = append(s.clauses, c)
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], c)
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.litValue(l) {
	case valTrue:
		return true
	case valFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = len(s.lim)
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil. When the context stops mid-propagation it sets s.stopped and
// bails between watch-list scans (the trail stays consistent; the
// unpropagated suffix is simply re-examined by the next propagate).
//
//lint:nocharge watch entries move between lists, never multiply: kept reuses ws's backing array and the new-watch append removes the clause from the scanned list
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		if s.propags%64 == 0 && s.Ctx.Poll() {
			s.stopped = true
			return nil
		}
		p := s.trail[s.qhead]
		s.qhead++
		s.propags++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if confl != nil || c.deleted {
				if !c.deleted {
					kept = append(kept, c)
				}
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Flip() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.litValue(c.lits[0]) == valTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				confl = c
			}
		}
		s.watches[p] = kept
		if confl != nil {
			s.qhead = len(s.trail)
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if len(s.lim) <= lvl {
		return
	}
	if s.Theory != nil {
		s.Theory.TheoryPop(len(s.lim) - lvl)
	}
	for i := len(s.trail) - 1; i >= s.lim[lvl]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assign[v] == valTrue
		s.assign[v] = valUnassigned
		s.reason[v] = nil
		if !s.heap.contains(v) {
			s.heap.push(v, s.activity)
		}
	}
	s.trail = s.trail[:s.lim[lvl]]
	s.lim = s.lim[:lvl]
	s.qhead = len(s.trail)
	if s.theoryHead > len(s.trail) {
		s.theoryHead = len(s.trail)
	}
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, d := range s.clauses {
			d.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze computes a first-UIP learnt clause and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := len(s.lim)
	var marked []int // vars with seen set, cleared at the end

	//lint:nopoll bounded by the trail: each resolution step moves idx strictly down
	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				marked = append(marked, v)
				s.bumpVar(v)
				if s.level[v] >= curLevel {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal to resolve on. Resolved variables keep
		// their seen flag so later reason clauses cannot re-introduce
		// them; idx only moves down, so they are never revisited.
		//lint:nopoll bounded: idx moves strictly down a trail this loop does not extend
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Flip()

	// Clause minimization: remove literals implied by the rest.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.redundant(l, learnt) {
			out = append(out, l)
		}
	}
	learnt = out

	for _, v := range marked {
		s.seen[v] = false
	}

	// Backjump level: max level among learnt[1:].
	bj := 0
	swapIdx := -1
	for i, l := range learnt[1:] {
		if s.level[l.Var()] > bj {
			bj = s.level[l.Var()]
			swapIdx = i + 1
		}
	}
	if swapIdx > 1 {
		learnt[1], learnt[swapIdx] = learnt[swapIdx], learnt[1]
	}
	return learnt, bj
}

// redundant reports whether literal l in a learnt clause is implied by
// the remaining literals (simple local minimization: l's reason clause
// consists only of literals already in the clause or at level 0).
func (s *Solver) redundant(l Lit, learnt []Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits[1:] {
		v := q.Var()
		if s.level[v] == 0 {
			continue
		}
		in := false
		for _, m := range learnt {
			if m.Var() == v {
				in = true
				break
			}
		}
		if !in {
			return false
		}
	}
	return true
}

// assumeMore installs the next pending assumption as a pseudo-decision.
// It returns the assumption literal and what happened: failed means the
// assumption is false under the current trail (unsat under assumptions),
// made means a fresh assumption was enqueued and needs propagation.
// Assumptions already implied true get an empty decision level so level
// i always corresponds to Assumptions[i-1].
func (s *Solver) assumeMore() (p Lit, failed, made bool) {
	//lint:nopoll bounded: every iteration installs an assumption level or returns
	for len(s.lim) < len(s.Assumptions) {
		p = s.Assumptions[len(s.lim)]
		switch s.litValue(p) {
		case valTrue:
			s.lim = append(s.lim, len(s.trail))
			if s.Theory != nil {
				s.Theory.TheoryPush()
			}
		case valFalse:
			return p, true, false
		default:
			s.lim = append(s.lim, len(s.trail))
			if s.Theory != nil {
				s.Theory.TheoryPush()
			}
			s.enqueue(p, nil)
			return p, false, true
		}
	}
	return 0, false, false
}

// analyzeFinal computes the subset of assumption literals that imply
// the falsified assumption p (MiniSat's final-conflict analysis): the
// returned core, conjoined, is inconsistent with the clause database.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if len(s.lim) == 0 {
		return out
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.lim[0]; i-- {
		x := s.trail[i].Var()
		if !s.seen[x] {
			continue
		}
		if s.reason[x] == nil {
			// A pseudo-decision: at this point every decision on the
			// trail is an assumption.
			out = append(out, s.trail[i])
		} else {
			for _, q := range s.reason[x].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[x] = false
	}
	s.seen[p.Var()] = false
	return out
}

// FailedAssumptions returns an inconsistent subset of the assumptions
// after a Solve call that returned Unsat because of them, or nil when
// the last Unsat was assumption-free (a permanent contradiction).
func (s *Solver) FailedAssumptions() []Lit { return s.failed }

func (s *Solver) decide() bool {
	//lint:nopoll bounded by the heap size; the search loop polls the context between decisions
	for {
		v, ok := s.heap.pop(s.activity)
		if !ok {
			return false
		}
		if s.assign[v] == valUnassigned {
			s.decisions++
			s.lim = append(s.lim, len(s.trail))
			if s.Theory != nil {
				s.Theory.TheoryPush()
			}
			s.enqueue(MkLit(v, !s.phase[v]), nil)
			return true
		}
	}
}

// luby returns the i-th element of the Luby restart sequence.
func luby(i int64) int64 {
	//lint:nopoll terminates: k grows until the bracket containing i is found
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment consistent with the
// theory (when one is attached). It returns Sat, Unsat, or Unknown
// (budget exhausted, context stopped, or the theory gave up).
func (s *Solver) Solve() Result {
	startConflicts := s.conflicts
	startDecisions := s.decisions
	startPropags := s.propags
	startRestarts := s.restarts
	defer func() {
		s.Stats.Add("conflicts", s.conflicts-startConflicts)
		s.Stats.Add("decisions", s.decisions-startDecisions)
		s.Stats.Add("propagations", s.propags-startPropags)
		s.Stats.Add("restarts", s.restarts-startRestarts)
	}()
	s.failed = nil
	if !s.ok {
		return Unsat
	}
	s.stopped = false
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	var restart int64 = 1
	restartBudget := luby(restart) * 100

	for {
		if s.stopped || s.Ctx.Poll() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if s.stopped {
			s.cancelUntil(0)
			return Unknown
		}
		if confl == nil && s.Theory != nil {
			confl = s.theorySync()
		}
		if confl == nil {
			if p, failed, made := s.assumeMore(); failed {
				s.failed = s.analyzeFinal(p)
				s.cancelUntil(0)
				return Unsat
			} else if made {
				continue
			}
			if s.decide() {
				continue
			}
			// Complete propositionally consistent assignment.
			if s.Theory == nil {
				return Sat
			}
			res, core := s.Theory.TheoryFinal()
			switch res {
			case FinalOK:
				return Sat
			case FinalRestart:
				s.cancelUntil(0)
				continue
			case FinalUnknown:
				s.cancelUntil(0)
				return Unknown
			}
			confl = s.clauseFromCore(core)
		}

		// Conflict handling. Theory clauses may lack a literal at the
		// current decision level; backtrack to the deepest level they
		// mention first so first-UIP analysis applies.
		s.conflicts++
		maxLvl := 0
		for _, l := range confl.lits {
			if lv := s.level[l.Var()]; lv > maxLvl {
				maxLvl = lv
			}
		}
		if maxLvl == 0 {
			s.ok = false
			return Unsat
		}
		if maxLvl < len(s.lim) {
			s.cancelUntil(maxLvl)
		}
		learnt, bj := s.analyze(confl)
		// LBD must be computed before backjumping: it reads the decision
		// levels of the learnt literals, which cancelUntil resets.
		lbd := s.computeLBD(learnt)
		s.cancelUntil(bj)
		if len(learnt) == 1 {
			s.cancelUntil(0)
			if !s.enqueue(learnt[0], nil) {
				s.ok = false
				return Unsat
			}
		} else {
			c := &clause{lits: learnt, learnt: true, act: s.claInc, lbd: lbd}
			s.attach(c)
			s.clauses = append(s.clauses, c)
			// Learnt clauses are the solver's only unbounded memory
			// amplifier; bill them as they enter the database. A budget
			// trip surfaces at the next loop-head Poll.
			s.Ctx.Charge("sat learnt", int64(len(learnt)))
			s.enqueue(learnt[0], c)
		}
		s.varInc /= 0.95
		s.claInc /= 0.999
		if s.Budget > 0 && s.conflicts-startConflicts >= s.Budget {
			s.cancelUntil(0)
			return Unknown
		}
		if s.conflicts-startConflicts >= restartBudget {
			restart++
			s.restarts++
			restartBudget += luby(restart) * 100
			s.cancelUntil(0)
			s.reduceDB()
		}
	}
}

// theorySync streams newly assigned literals to the theory and runs its
// fixpoint check, converting any reported conflict into a clause.
func (s *Solver) theorySync() *clause {
	advanced := false
	//lint:nopoll bounded: theoryHead advances to a trail this loop does not extend
	for s.theoryHead < len(s.trail) {
		l := s.trail[s.theoryHead]
		s.theoryHead++
		advanced = true
		if core := s.Theory.TheoryAssert(l); core != nil {
			return s.clauseFromCore(core)
		}
	}
	if !advanced {
		return nil
	}
	if core := s.Theory.TheoryCheck(); core != nil {
		return s.clauseFromCore(core)
	}
	return nil
}

// clauseFromCore negates a set of currently-true literals into a
// (falsified) conflict clause. An empty core yields the empty clause,
// which the conflict handler turns into Unsat.
func (s *Solver) clauseFromCore(core []Lit) *clause {
	lits := make([]Lit, len(core))
	for i, l := range core {
		lits[i] = l.Flip()
	}
	return &clause{lits: lits}
}

// computeLBD returns the literal block distance of a clause: the
// number of distinct nonzero decision levels among its literals. Valid
// only while those literals' levels are current (before backjumping).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdCounter++
	if need := len(s.lim) + 2; len(s.lbdStamp) < need {
		s.lbdStamp = append(s.lbdStamp, make([]int64, need-len(s.lbdStamp))...)
	}
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv > 0 && s.lbdStamp[lv] != s.lbdCounter {
			s.lbdStamp[lv] = s.lbdCounter
			n++
		}
	}
	return n
}

// reduceDB deletes half of the reducible learnt clauses: clauses that
// are not currently reasons, are longer than binary, and have LBD > 2.
// Glue clauses (LBD <= 2) tie together at most two decision levels and
// are never deleted (Glucose-style retention). Deletion prefers
// high-LBD clauses, breaking ties toward low activity.
func (s *Solver) reduceDB() {
	learnts := make([]*clause, 0, len(s.clauses))
	for _, c := range s.clauses {
		if c.learnt && !c.deleted && len(c.lits) > 2 && c.lbd > 2 {
			learnts = append(learnts, c)
		}
	}
	if len(learnts) < 2000 {
		return
	}
	sort.SliceStable(learnts, func(i, j int) bool {
		if learnts[i].lbd != learnts[j].lbd {
			return learnts[i].lbd > learnts[j].lbd
		}
		return learnts[i].act < learnts[j].act
	})
	locked := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	for _, c := range learnts[:len(learnts)/2] {
		if !locked[c] {
			c.deleted = true
		}
	}
	// Compact the clause list and watch lists lazily: deleted clauses
	// are skipped during propagation; here we drop them from s.clauses.
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
}

// Value reports the assignment of variable v after a Sat result.
func (s *Solver) Value(v int) bool {
	return s.assign[v] == valTrue
}

// SetPhase sets the initial decision polarity of a variable (phase
// saving overwrites it as search progresses). Callers use it to bias
// don't-care decisions toward theory-friendly values.
func (s *Solver) SetPhase(v int, val bool) {
	s.phase[v] = val
}

// Fixed reports whether v is permanently assigned (at decision level
// zero) and, if so, its value. Such assignments hold in every model of
// the current clause set.
func (s *Solver) Fixed(v int) (value, fixed bool) {
	if s.assign[v] == valUnassigned || s.level[v] != 0 {
		return false, false
	}
	return s.assign[v] == valTrue, true
}

// varHeap is a max-heap over variable activities.
type varHeap struct {
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func newVarHeap() *varHeap { return &varHeap{} }

func (h *varHeap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) push(v int, act []float64) {
	//lint:nopoll bounded: pos grows to the variable count, then the loop exits
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1) //lint:nocharge pos grows to the variable count only
	}
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(h.pos[v], act)
}

func (h *varHeap) pop(act []float64) (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return v, true
}

func (h *varHeap) update(v int, act []float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	//lint:nopoll bounded by the heap depth
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	//lint:nopoll bounded by the heap depth
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
