package sat

import (
	"testing"
	"time"

	"repro/internal/engine"
)

func TestPreCancelledCtxStopsSolveImmediately(t *testing.T) {
	s := New()
	pigeonhole(s, 11)
	ec := engine.Background()
	ec.Cancel()
	s.Ctx = ec
	start := time.Now()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve() = %v, want Unknown", got)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled solve took %v", d)
	}
}

func TestCancelAbortsMidSearch(t *testing.T) {
	// PHP(12, 11) keeps a CDCL solver busy far longer than the cancel
	// delay; the solve must abort from inside the search loop.
	s := New()
	pigeonhole(s, 11)
	ec := engine.Background()
	s.Ctx = ec
	s.Stats = engine.NewStats()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ec.Cancel()
	}()
	start := time.Now()
	got := s.Solve()
	elapsed := time.Since(start)
	if got != Unknown {
		t.Fatalf("Solve() = %v, want Unknown after cancellation", got)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled solve took %v, want prompt return", elapsed)
	}
	if s.Stats.Counter("decisions") == 0 {
		t.Fatalf("expected the search to have started before the cancel")
	}
	// The solver must remain usable: a later Solve without the stop
	// condition runs afresh (tiny instance, trivially sat).
	s2 := New()
	a := s2.NewVar()
	s2.AddClause(MkLit(a, false))
	if got := s2.Solve(); got != Sat {
		t.Fatalf("fresh solver = %v, want Sat", got)
	}
}

func TestDeadlineAbortsMidSearch(t *testing.T) {
	s := New()
	pigeonhole(s, 11)
	ec := engine.WithTimeout(50 * time.Millisecond)
	s.Ctx = ec
	start := time.Now()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve() = %v, want Unknown after deadline", got)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline solve took %v", d)
	}
	if !ec.TimedOut() {
		t.Fatalf("cause = %v, want deadline", ec.Cause())
	}
}
