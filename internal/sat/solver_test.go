package sat

import (
	"math/rand"
	"testing"
)

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Errorf("a should be true")
	}
	if s.Value(b) {
		t.Errorf("b should be false")
	}
}

func TestDirectContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := New()
	s.AddClause()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
}

func TestImplicationChain(t *testing.T) {
	// a, a->b, b->c, c->d; then assert !d later.
	s := New()
	vs := make([]int, 4)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(MkLit(vs[0], false))
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(vs[i], true), MkLit(vs[i+1], false))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	for i, v := range vs {
		if !s.Value(v) {
			t.Errorf("var %d should be true", i)
		}
	}
	// Incremental: now forbid d.
	s.AddClause(MkLit(vs[3], true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after adding !d, Solve() = %v, want Unsat", got)
	}
}

// pigeonhole encodes n+1 pigeons in n holes (unsatisfiable).
func pigeonhole(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("pigeonhole(%d) = %v, want Unsat", n, got)
		}
	}
}

// bruteForce checks satisfiability of a CNF by enumeration.
func bruteForce(nvars int, cnf [][]Lit) bool {
	for mask := 0; mask < 1<<nvars; mask++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				val := mask>>uint(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		nvars := 3 + rng.Intn(8)
		nclauses := 1 + rng.Intn(30)
		cnf := make([][]Lit, nclauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 0)
			}
			cnf[i] = cl
		}
		want := bruteForce(nvars, cnf)

		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v cnf=%v", iter, got, want, cnf)
		}
		if got == Sat {
			// The returned model must satisfy every clause.
			for ci, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %d (%v)", iter, ci, cl)
				}
			}
		}
	}
}

func TestBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9) // hard instance
	s.Budget = 50
	got := s.Solve()
	if got == Sat {
		t.Fatalf("pigeonhole(9) reported Sat")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
