package sat

import (
	"math/rand"
	"testing"
)

func TestAssumptionsSatAndUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b

	s.Assumptions = []Lit{MkLit(a, false)}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve under {a} = %v, want Sat", got)
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatalf("model under {a} should set a and b true")
	}

	s.Assumptions = []Lit{MkLit(a, false), MkLit(b, true)}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve under {a, !b} = %v, want Unsat", got)
	}
	if core := s.FailedAssumptions(); len(core) == 0 {
		t.Fatalf("Unsat under assumptions must report a failed core")
	}

	// The solver must stay usable: dropping the assumptions restores Sat.
	s.Assumptions = nil
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve after failed assumptions = %v, want Sat", got)
	}
}

func TestAssumptionsFailedCoreSubset(t *testing.T) {
	// x1..x4 free; clause (!x1 | !x3). Assume all four positively: the
	// failed core is a subset of the assumptions and must not be larger
	// than the minimal conflict {x1, x3}.
	s := New()
	var lits []Lit
	for i := 0; i < 4; i++ {
		lits = append(lits, MkLit(s.NewVar(), false))
	}
	s.AddClause(lits[0].Flip(), lits[2].Flip())
	s.Assumptions = lits
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	core := s.FailedAssumptions()
	isAssumed := make(map[Lit]bool)
	for _, l := range lits {
		isAssumed[l] = true
	}
	for _, l := range core {
		if !isAssumed[l] {
			t.Fatalf("failed core contains non-assumption literal %v", l)
		}
	}
	if len(core) > 2 {
		t.Fatalf("failed core %v larger than the minimal conflict", core)
	}
}

func TestAssumptionsDoNotPoisonSolver(t *testing.T) {
	// An assumption-level conflict must leave the solver usable; only a
	// genuine level-0 contradiction makes it permanently Unsat (nil core).
	s := New()
	a := s.NewVar()
	s.Assumptions = []Lit{MkLit(a, false), MkLit(a, true)}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("contradictory assumptions = %v, want Unsat", got)
	}
	if len(s.FailedAssumptions()) == 0 {
		t.Fatalf("contradictory assumptions must yield a failed core")
	}
	s.Assumptions = nil
	if got := s.Solve(); got != Sat {
		t.Fatalf("solver poisoned by contradictory assumptions: %v", got)
	}

	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("genuine contradiction = %v, want Unsat", got)
	}
	if core := s.FailedAssumptions(); core != nil {
		t.Fatalf("genuine Unsat reported failed assumptions %v", core)
	}
}

// TestAssumptionsAgainstFreshSolve is the differential check: solving F
// under assumptions A must agree with solving F ∧ A from scratch, and
// after an Unsat-under-assumptions the incremental solver must keep
// agreeing on later queries.
func TestAssumptionsAgainstFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 80; iter++ {
		nv := 6 + rng.Intn(6)
		nc := 2 + rng.Intn(4*nv)
		cnf := make([][]Lit, nc)
		for i := range cnf {
			w := 2 + rng.Intn(2)
			c := make([]Lit, w)
			for j := range c {
				c[j] = MkLit(rng.Intn(nv), rng.Intn(2) == 1)
			}
			cnf[i] = c
		}

		inc := New()
		for i := 0; i < nv; i++ {
			inc.NewVar()
		}
		for _, c := range cnf {
			inc.AddClause(c...)
		}

		// Several assumption queries against the same incremental solver.
		for q := 0; q < 4; q++ {
			na := rng.Intn(nv)
			seen := make(map[int]bool)
			var assume []Lit
			for len(assume) < na {
				v := rng.Intn(nv)
				if seen[v] {
					continue
				}
				seen[v] = true
				assume = append(assume, MkLit(v, rng.Intn(2) == 1))
			}

			fresh := New()
			for i := 0; i < nv; i++ {
				fresh.NewVar()
			}
			for _, c := range cnf {
				fresh.AddClause(c...)
			}
			for _, l := range assume {
				fresh.AddClause(l)
			}

			inc.Assumptions = assume
			got, want := inc.Solve(), fresh.Solve()
			if got != want {
				t.Fatalf("iter %d query %d: incremental=%v fresh=%v (assumptions %v)",
					iter, q, got, want, assume)
			}
			if got == Sat {
				for _, l := range assume {
					if inc.Value(l.Var()) == l.Neg() {
						t.Fatalf("iter %d query %d: model violates assumption %v", iter, q, l)
					}
				}
			}
		}
	}
}
