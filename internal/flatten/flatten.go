// Package flatten implements the flat domain restriction of §6 and the
// per-constraint flattenings of §7 and §8: every string variable is
// restricted to the language of a parametric flat automaton, and the
// whole string constraint is translated into one linear-integer-
// arithmetic formula whose models decode (decode_R, Theorem 6.2) into
// models of the string constraint.
package flatten

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/alphabet"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/pfa"
	"repro/internal/strcon"
)

// Params selects the sizes of the domain-restriction automata: M is the
// chain length of numeric PFAs (the m of §8); Loops and LoopLen are the
// p and q of the standard PFAs used for all other variables (§9).
type Params struct {
	M       int
	Loops   int
	LoopLen int
}

// DefaultParams mirrors the paper's initial strategy (m, p) = (5, 2)
// with a q chosen by static analysis; LoopLen here is the fallback.
var DefaultParams = Params{M: 5, Loops: 2, LoopLen: 2}

// Refine returns the next parameter triple in the paper's refinement
// schedule: m doubles, p and q increase by one.
func (p Params) Refine() Params {
	return Params{M: p.M * 2, Loops: p.Loops + 1, LoopLen: p.LoopLen + 1}
}

// Result carries the flattened formula and the restrictions needed to
// decode a model.
//
// The synchronization formulas use the flow-only Parikh encoding; pass
// OnModel to lia.Options so candidate models are screened for used-edge
// connectivity and refined with cut lemmas (the lazy counterpart of the
// eager spanning-tree encoding).
type Result struct {
	Formula lia.Formula
	R       map[strcon.Var]pfa.Restriction
	Cuts    *pfa.CutRegistry

	prob  *strcon.Problem
	stats *engine.Stats
	ec    *engine.Ctx
}

// OnModel is the lazy-lemma callback for lia.Options. It is a no-op
// for eager flattenings.
func (res *Result) OnModel(m lia.Model) lia.Formula {
	if res.Cuts == nil {
		return nil
	}
	return res.Cuts.Lemmas(m)
}

// Flatten builds the under-approximation formula flatten_R(ϕ_in) for
// the given constraints of the (Prepared) problem under the given
// parameters. Variables occurring in string-number constraints receive
// numeric PFAs; all others standard loop-chain PFAs (§9 selection
// strategy). The constraint slice is passed explicitly so case-split
// branches can flatten their own conjunct sets without mutating the
// shared problem; pass prob.Constraints for whole-problem flattening.
// Formula sizes and flattening time are recorded on ec's stats tree.
func Flatten(prob *strcon.Problem, cons []strcon.Constraint, params Params, ec *engine.Ctx) *Result {
	return flattenWith(prob, cons, params, &pfa.CutRegistry{}, ec)
}

// FlattenEager is Flatten with the eager spanning-tree Parikh encoding
// instead of lazy connectivity cuts (for ablation studies; the lazy
// variant is dramatically faster on nontrivial products).
func FlattenEager(prob *strcon.Problem, cons []strcon.Constraint, params Params, ec *engine.Ctx) *Result {
	return flattenWith(prob, cons, params, nil, ec)
}

func flattenWith(prob *strcon.Problem, cons []strcon.Constraint, params Params, cuts *pfa.CutRegistry, ec *engine.Ctx) *Result {
	st := ec.Stats().Child("flatten")
	st.Add("calls", 1)
	defer st.Time("time")()
	res := &Result{R: make(map[strcon.Var]pfa.Restriction), Cuts: cuts, prob: prob,
		stats: ec.Stats().Child("cache"), ec: ec}
	pool := prob.Lia

	numeric := make(map[strcon.Var]bool)
	var scanNumeric func(c strcon.Constraint)
	scanNumeric = func(c strcon.Constraint) {
		switch t := c.(type) {
		case *strcon.ToNum:
			numeric[t.X] = true
		case *strcon.ToStr:
			numeric[t.X] = true
		case *strcon.Ord:
			numeric[t.X] = true
		case *strcon.AndCon:
			for _, a := range t.Args {
				scanNumeric(a)
			}
		case *strcon.OrCon:
			for _, a := range t.Args {
				scanNumeric(a)
			}
		}
	}
	for _, c := range cons {
		scanNumeric(c)
	}

	exact := exactLengths(prob, cons)
	for v := 0; v < prob.NumStrVars(); v++ {
		x := strcon.Var(v)
		name := prob.StrName(x)
		k, pinned := exact[x]
		switch {
		case numeric[x]:
			m := params.M
			if pinned && k >= 1 && k < m {
				// A numeric PFA with chain length |x| is complete for a
				// variable of pinned length and much smaller.
				m = k
			}
			if pinned && k == 0 {
				m = 1
			}
			res.R[x] = pfa.NewNumeric(pool, m, name)
		case pinned && k <= 12:
			res.R[x] = pfa.NewFreeWord(pool, k, name)
		default:
			res.R[x] = pfa.NewFlat(pool, params.Loops, params.LoopLen, name)
		}
	}

	var conj []lia.Formula
	// Global per-variable constraints: automaton structure (Parikh of
	// the flat automaton, character domains) and length definitions.
	for v := 0; v < prob.NumStrVars(); v++ {
		x := strcon.Var(v)
		conj = append(conj, res.R[x].Base())
	}
	lenVars := prob.LenVars()
	lenKeys := make([]strcon.Var, 0, len(lenVars))
	for x := range lenVars {
		lenKeys = append(lenKeys, x)
	}
	sort.Slice(lenKeys, func(i, j int) bool { return lenKeys[i] < lenKeys[j] })
	for _, x := range lenKeys {
		conj = append(conj, lengthFormula(pool, res.R[x], lenVars[x]))
	}

	for _, c := range cons {
		conj = append(conj, res.flattenCon(c, params))
	}
	res.Formula = lia.And(conj...)
	st.Add("formula.size", int64(lia.FormulaSize(res.Formula)))
	return res
}

// exactLengths scans top-level integer constraints for exact length
// pins |x| = k, which permit smaller complete restrictions.
func exactLengths(prob *strcon.Problem, cons []strcon.Constraint) map[strcon.Var]int {
	lenOwner := make(map[lia.Var]strcon.Var, len(prob.LenVars()))
	for x, lv := range prob.LenVars() {
		lenOwner[lv] = x
	}
	out := make(map[strcon.Var]int)
	for _, c := range cons {
		ar, ok := c.(*strcon.Arith)
		if !ok {
			continue
		}
		at, ok := ar.F.(*lia.Atom)
		if !ok || at.Op != lia.EQ || at.E.NumTerms() != 1 {
			continue
		}
		v := at.E.Vars()[0]
		x, isLen := lenOwner[v]
		if !isLen {
			continue
		}
		co := at.E.Coeff(v)
		k := new(big.Int).Neg(at.E.ConstPart())
		if co.Cmp(bigOne) != 0 || !k.IsInt64() || k.Sign() < 0 || k.Int64() > 64 {
			continue
		}
		out[x] = int(k.Int64())
	}
	return out
}

var bigOne = big.NewInt(1)

// lengthFormula is Ψ_lx of §7.3: the length variable equals the sum of
// the per-character-variable contributions l_v, where l_v is 0 for
// ε-valued variables and #v otherwise.
func lengthFormula(pool *lia.Pool, r pfa.Restriction, lx lia.Var) lia.Formula {
	var conj []lia.Formula
	sum := lia.NewLin()
	for _, v := range r.AllVars() {
		lv := pool.Fresh("l")
		sum.AddTermInt(lv, 1)
		conj = append(conj, lia.Or(
			lia.And(lia.EqConst(v, alphabet.Epsilon), lia.EqConst(lv, 0)),
			lia.And(lia.Ge(lia.V(v), lia.Const(0)), lia.Eq(lia.V(lv), lia.V(r.Count(v)))),
		))
	}
	conj = append(conj, lia.Eq(lia.V(lx), sum))
	return lia.And(conj...)
}

// termPA builds the parametric automaton of one side of a word
// equation: the concatenation of the variables' restrictions and fresh
// constant PFAs. Constant PFAs are ephemeral; their base constraints
// are appended to extra.
func (res *Result) termPA(t strcon.Term, extra *[]lia.Formula) *pfa.PA {
	pool := res.prob.Lia
	if len(t) == 0 {
		c := pfa.NewConst(pool, "", "eps")
		*extra = append(*extra, c.Base())
		return c.PA()
	}
	pas := make([]*pfa.PA, 0, len(t))
	for i, it := range t {
		if it.IsVar {
			pas = append(pas, res.R[it.V].PA())
		} else {
			c := pfa.NewConst(pool, it.Const, fmt.Sprintf("k%d", i))
			*extra = append(*extra, c.Base())
			pas = append(pas, c.PA())
		}
	}
	return pfa.ConcatAll(pool, pas...)
}

// flattenCon translates one constraint.
func (res *Result) flattenCon(c strcon.Constraint, params Params) lia.Formula {
	pool := res.prob.Lia
	switch t := c.(type) {
	case *strcon.WordEq:
		var extra []lia.Formula
		left := res.termPA(t.L, &extra)
		right := res.termPA(t.R, &extra)
		sync := pfa.Sync(res.ec, pool, left, right, res.Cuts, res.stats)
		return lia.And(append(extra, sync)...)

	case *strcon.WordNeq:
		// contract: Prepare runs before flattening.
		panic("flatten: WordNeq must be desugared by Problem.Prepare")

	case *strcon.Membership:
		a := t.Automaton().RemoveEpsilon().Trim()
		if a.IsEmpty() {
			return lia.False
		}
		pa := pfa.FromNFA(pool, a, "re")
		return pfa.Sync(res.ec, pool, res.R[t.X].PA(), pa, res.Cuts, res.stats)

	case *strcon.Arith:
		return t.F

	case *strcon.ToNum:
		n := mustNumeric(res.R[t.X])
		return n.FlattenToNum(t.N)

	case *strcon.ToStr:
		n := mustNumeric(res.R[t.X])
		canonical := lia.And(
			n.NotNaN(),
			lia.EqConst(n.V0, 0),
			n.Shift(),
			n.ToInt(t.N),
			n.Canonical(),
			lia.Ge(lia.V(t.N), lia.Const(0)),
		)
		// Negative numbers map to the empty string.
		var empty []lia.Formula
		empty = append(empty, lia.Le(lia.V(t.N), lia.Const(-1)))
		empty = append(empty, emptyNumeric(n)...)
		return lia.Or(canonical, lia.And(empty...))

	case *strcon.Ord:
		n := mustNumeric(res.R[t.X])
		var conj []lia.Formula
		conj = append(conj,
			lia.EqConst(n.Count(n.V0), 0),
			lia.Ge(lia.V(n.Chain[0]), lia.Const(0)),
			lia.Eq(lia.V(t.N), lia.V(n.Chain[0])))
		for _, v := range n.Chain[1:] {
			conj = append(conj, lia.EqConst(v, alphabet.Epsilon))
		}
		return lia.And(conj...)

	case *strcon.AndCon:
		var conj []lia.Formula
		for _, a := range t.Args {
			conj = append(conj, res.flattenCon(a, params))
		}
		return lia.And(conj...)

	case *strcon.OrCon:
		var dis []lia.Formula
		for _, a := range t.Args {
			dis = append(dis, res.flattenCon(a, params))
		}
		return lia.Or(dis...)
	}
	// contract: the constraint set is closed.
	panic("flatten: unknown constraint type")
}

func emptyNumeric(n *pfa.Numeric) []lia.Formula {
	var conj []lia.Formula
	conj = append(conj, lia.EqConst(n.Count(n.V0), 0))
	for _, v := range n.Chain {
		conj = append(conj, lia.EqConst(v, alphabet.Epsilon))
	}
	return conj
}

func mustNumeric(r pfa.Restriction) *pfa.Numeric {
	n, ok := r.(*pfa.Numeric)
	if !ok {
		// contract: flattenWith assigns numeric restrictions to these variables.
		panic("flatten: string-number constraint on a non-numeric restriction")
	}
	return n
}

// Decode maps a model of the flattened formula back to an assignment of
// the string constraint (decode_R, Theorem 6.2). Malformed models —
// possible only for adversarial inputs or truncated encodings — return
// an error; the decision procedure treats that as a failed candidate,
// never as a verdict.
func (res *Result) Decode(m lia.Model) (*strcon.Assignment, error) {
	a := &strcon.Assignment{Str: make(map[strcon.Var]string), Int: lia.Model{}}
	for x, r := range res.R {
		s, err := r.Decode(m)
		if err != nil {
			return nil, err
		}
		a.Str[x] = s
	}
	// Copy the whole integer model: the validator needs auxiliary
	// integer variables (desugaring ords, etc.), not just user ones.
	for v, x := range m {
		a.Int[v] = x
	}
	for _, iv := range res.prob.IntVars {
		a.Int[iv] = m.Value(iv)
	}
	return a, nil
}
