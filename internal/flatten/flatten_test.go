package flatten

import (
	"testing"

	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// solve flattens and solves; on SAT it validates the decoded assignment
// with the concrete evaluator and returns it.
func solve(t *testing.T, prob *strcon.Problem, params Params) (*strcon.Assignment, lia.Result) {
	t.Helper()
	prob.Prepare()
	res := Flatten(prob, prob.Constraints, params, nil)
	r, m := lia.Solve(res.Formula, &lia.Options{OnModel: res.OnModel})
	if r != lia.ResSat {
		return nil, r
	}
	a, err := res.Decode(m)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !prob.Eval(a) {
		t.Fatalf("decoded assignment fails validation: %+v", a.Str)
	}
	return a, r
}

func TestConstEquality(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("ab"))})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "ab" {
		t.Fatalf("x = %q, want ab", a.Str[x])
	}
}

func TestConstMismatchUnsat(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("ab"))})
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("ba"))})
	_, r := solve(t, prob, DefaultParams)
	if r != lia.ResUnsat {
		t.Fatalf("result %v, want unsat", r)
	}
}

func TestMembershipWithLength(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.Membership{X: x, A: regex.MustCompile("(ab)+"), Pattern: "(ab)+"})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 4)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "abab" {
		t.Fatalf("x = %q, want abab", a.Str[x])
	}
}

func TestToNumFixedValueAndLength(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToNum{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.EqConst(n, 42)})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 4)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "0042" {
		t.Fatalf("x = %q, want 0042", a.Str[x])
	}
}

func TestToNumNaN(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToNum{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.EqConst(n, -1)})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if len(a.Str[x]) != 2 {
		t.Fatalf("|x| = %d, want 2", len(a.Str[x]))
	}
}

func TestPaperOverlapEquality(t *testing.T) {
	// "0"x = x"0" with |x| = 2 forces x = "00".
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("0"), strcon.TV(x)),
		R: strcon.T(strcon.TV(x), strcon.TC("0")),
	})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "00" {
		t.Fatalf("x = %q, want 00", a.Str[x])
	}
}

func TestConcatSplit(t *testing.T) {
	// x·y = "hello", |x| = 2.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(x), strcon.TV(y)),
		R: strcon.T(strcon.TC("hello")),
	})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "he" || a.Str[y] != "llo" {
		t.Fatalf("x,y = %q,%q", a.Str[x], a.Str[y])
	}
}

func TestDisequality(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.Membership{X: x, A: regex.MustCompile("a|b"), Pattern: "a|b"})
	prob.Add(&strcon.WordNeq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("a"))})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "b" {
		t.Fatalf("x = %q, want b", a.Str[x])
	}
}

func TestToStrCanonical(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToStr{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.EqConst(n, 907)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "907" {
		t.Fatalf("x = %q, want 907", a.Str[x])
	}
}

func TestToStrRejectsLeadingZeros(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToStr{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(0))})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 3)})
	prob.Add(&strcon.Arith{F: lia.Le(lia.V(n), lia.Const(99))})
	_, r := solve(t, prob, DefaultParams)
	if r != lia.ResUnsat {
		t.Fatalf("result %v, want unsat (three digits cannot encode <=99 canonically)", r)
	}
}

func TestDuplicateOccurrences(t *testing.T) {
	// x·x = "abab" forces x = "ab" (needs the dedup preparation).
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(x), strcon.TV(x)),
		R: strcon.T(strcon.TC("abab")),
	})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "ab" {
		t.Fatalf("x = %q, want ab", a.Str[x])
	}
}

func TestOrConstraint(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.OrCon{Args: []strcon.Constraint{
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("no"))},
		&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("yes"))},
	}})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 3)})
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[x] != "yes" {
		t.Fatalf("x = %q, want yes", a.Str[x])
	}
}

func TestRangeTransitionReadsDistinctCharacters(t *testing.T) {
	// Regression: a single range transition of a regular constraint
	// (the loop of [0-9]+) must admit runs that read different
	// characters on different traversals. An early version equated the
	// PFA character with the regex transition's variable, wrongly
	// forcing all traversals to read the same digit and losing
	// witnesses like "00512".
	prob := strcon.NewProblem()
	card := prob.NewStrVar("card")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.Membership{X: card, A: regex.MustCompile("[0-9]+"), Pattern: "[0-9]+"},
		&strcon.ToNum{N: n, X: card},
		&strcon.Arith{F: lia.EqConst(n, 512)},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(card), 5)},
	)
	a, r := solve(t, prob, DefaultParams)
	if r != lia.ResSat {
		t.Fatalf("result %v, want sat", r)
	}
	if a.Str[card] != "00512" {
		t.Fatalf("card = %q, want 00512", a.Str[card])
	}
}
