package backend

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// satProblem: x ++ "b" = "ab" with toNum-free structure — every
// complete backend settles it quickly.
func satProblem() *strcon.Problem {
	p := strcon.NewProblem()
	x := p.NewStrVar("x")
	p.Add(&strcon.WordEq{
		L: strcon.Term{{IsVar: true, V: x}, {Const: "b"}},
		R: strcon.Term{{Const: "ab"}},
	})
	return p
}

// unsatProblem: x ++ "a" = "b" — refutable by the over-approximation.
func unsatProblem() *strcon.Problem {
	p := strcon.NewProblem()
	x := p.NewStrVar("x")
	p.Add(&strcon.WordEq{
		L: strcon.Term{{IsVar: true, V: x}, {Const: "a"}},
		R: strcon.Term{{Const: "b"}},
	})
	return p
}

func TestRegistryShape(t *testing.T) {
	want := []string{"refine", "refine-fresh", "overapprox-only", "enum", "split"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (order is the race tie-break)", i, got[i], want[i])
		}
	}
	for _, name := range want {
		b, ok := Get(name)
		if !ok || b.Name() != name {
			t.Fatalf("Get(%q) = %v, %v", name, b, ok)
		}
	}
	if _, ok := Get("nosuch"); ok {
		t.Fatal("Get(nosuch) resolved")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(registry) {
		t.Fatalf("Select(\"\") = %d backends, err %v", len(all), err)
	}
	// Flag order must not reorder the result: selection is in registry
	// order regardless of spelling.
	two, err := Select(" split , refine ")
	if err != nil || len(two) != 2 || two[0].Name() != "refine" || two[1].Name() != "split" {
		t.Fatalf("Select(split,refine) = %v, err %v; want [refine split]", two, err)
	}
	if _, err := Select("refine,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Select with unknown name: err = %v", err)
	}
}

// TestBackendsAgreeOnEasyInstances runs every registry backend on a
// trivially SAT and a trivially UNSAT problem: settled verdicts must
// match ground truth within each backend's capability report, results
// must carry the backend name, and SAT models must validate.
func TestBackendsAgreeOnEasyInstances(t *testing.T) {
	for _, b := range All() {
		ec := engine.WithTimeout(10 * time.Second)
		res := b.Solve(satProblem(), Options{}, ec)
		if res.Backend != b.Name() {
			t.Errorf("%s: sat result labeled %q", b.Name(), res.Backend)
		}
		caps := b.Caps()
		switch res.Status {
		case core.StatusSat:
			if !caps.ProvesSat {
				t.Errorf("%s: returned SAT but reports ProvesSat=false", b.Name())
			}
			if res.Model == nil || !satProblem().Eval(res.Model) {
				t.Errorf("%s: SAT model missing or invalid", b.Name())
			}
		case core.StatusUnsat:
			t.Errorf("%s: UNSAT on a satisfiable problem", b.Name())
		default:
			if res.Reason == "" {
				t.Errorf("%s: unknown verdict with no reason", b.Name())
			}
		}

		res = b.Solve(unsatProblem(), Options{}, engine.WithTimeout(10*time.Second))
		switch res.Status {
		case core.StatusUnsat:
			if !caps.ProvesUnsat {
				t.Errorf("%s: returned UNSAT but reports ProvesUnsat=false", b.Name())
			}
		case core.StatusSat:
			t.Errorf("%s: SAT on an unsatisfiable problem", b.Name())
		}
	}
}

// overapproxUnsatProblem: toNum(x) >= 1000 with len(x) <= 3 — a
// magnitude conflict the over-approximation alone refutes.
func overapproxUnsatProblem() *strcon.Problem {
	p := strcon.NewProblem()
	x := p.NewStrVar("x")
	n := p.NewIntVar("n")
	p.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(1000))},
		&strcon.Arith{F: lia.Le(lia.V(p.LenVar(x)), lia.Const(3))},
	)
	return p
}

// TestOverApproxOnlyBackend pins the refutation-only engine: it proves
// an abstraction-refutable UNSAT via the gate and returns UNKNOWN
// (never a guess) on the SAT instance.
func TestOverApproxOnlyBackend(t *testing.T) {
	b, _ := Get("overapprox-only")
	res := b.Solve(overapproxUnsatProblem(), Options{}, engine.WithTimeout(10*time.Second))
	if res.Status != core.StatusUnsat || !res.OverApproxDecided {
		t.Fatalf("overapprox-only on unsat = %v (decided=%v), want abstraction UNSAT",
			res.Status, res.OverApproxDecided)
	}
	res = b.Solve(satProblem(), Options{}, engine.WithTimeout(10*time.Second))
	if res.Status != core.StatusUnknown {
		t.Fatalf("overapprox-only on sat = %v, want unknown", res.Status)
	}
	if res.Reason == "" {
		t.Fatal("overapprox-only unknown carries no reason")
	}
}

// TestEnumNeverUnsat pins the capability report of the enumeration
// baseline: exhausting a bounded domain is not a refutation.
func TestEnumNeverUnsat(t *testing.T) {
	b, _ := Get("enum")
	if b.Caps().ProvesUnsat {
		t.Fatal("enum reports ProvesUnsat")
	}
	res := b.Solve(unsatProblem(), Options{}, engine.WithTimeout(10*time.Second))
	if res.Status == core.StatusUnsat {
		t.Fatal("enum returned UNSAT")
	}
}
