// Package backend turns the repository's solving engines into
// interchangeable decision procedures behind one interface and one
// registry. The refinement loop (incremental and fresh), the
// over-approximation-only refuter, and the two baseline families
// (bounded enumeration, word-equation splitting) all implement
// Backend; benchtab, the differential suites, the portfolio scheduler,
// and trauserve resolve engines from here instead of building ad-hoc
// closures.
package backend

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strcon"
)

// Options configure one Solve call, engine-independently. Fields a
// backend cannot honor are ignored (the baselines have no rounds and
// no branch parallelism).
type Options struct {
	// Parallel races case-split branches inside a refinement backend on
	// up to this many workers; values <= 1 solve sequentially.
	Parallel int
	// MaxRounds bounds under-approximation refinement rounds (0 =
	// engine default).
	MaxRounds int
}

// Caps is a backend's static capability report: what verdicts it can
// prove and which constraint features it handles. The portfolio
// scheduler reads it to keep incapable engines out of a race and to
// order candidates before any win history exists.
type Caps struct {
	// ProvesSat: the engine can return a validated SAT model.
	ProvesSat bool
	// ProvesUnsat: the engine can soundly refute.
	ProvesUnsat bool
	// Conversion: str.to_int / str.from_int constraints are decided,
	// not ignored or rejected.
	Conversion bool
	// Regex: membership constraints are decided.
	Regex bool
	// CostHint ranks expected cost per solve, 1 (cheap probe) to 4
	// (heavyweight); used only to break scheduling ties.
	CostHint int
}

// Backend is one decision procedure. Solve must honor the context's
// deadline/cancellation, record statistics on its stats tree, and set
// Result.Backend to Name().
type Backend interface {
	Name() string
	Caps() Caps
	Solve(prob *strcon.Problem, opts Options, ec *engine.Ctx) core.Result
}

// coreBackend adapts core.SolveCtx under a fixed engine mode.
type coreBackend struct {
	name     string
	caps     Caps
	mode     core.IncrementalMode
	overOnly bool
}

func (b *coreBackend) Name() string { return b.name }
func (b *coreBackend) Caps() Caps   { return b.caps }

func (b *coreBackend) Solve(prob *strcon.Problem, opts Options, ec *engine.Ctx) core.Result {
	res := core.SolveCtx(prob, core.Options{
		Parallel:       opts.Parallel,
		MaxRounds:      opts.MaxRounds,
		Incremental:    b.mode,
		OverApproxOnly: b.overOnly,
	}, ec)
	res.Backend = b.name
	return res
}

// enumBackend adapts the bounded-length enumeration baseline.
type enumBackend struct{}

func (enumBackend) Name() string { return "enum" }
func (enumBackend) Caps() Caps {
	// Enumeration validates candidates with the concrete evaluator, so
	// every constraint kind is decided on the bounded domain — but
	// exhausting the domain proves nothing, hence no UNSAT.
	return Caps{ProvesSat: true, Conversion: true, Regex: true, CostHint: 2}
}

func (enumBackend) Solve(prob *strcon.Problem, opts Options, ec *engine.Ctx) core.Result {
	r := baseline.SolveEnum(prob, baseline.EnumOptions{}, ec)
	return fromBaseline("enum", r, ec)
}

// splitBackend adapts the word-equation splitting baseline.
type splitBackend struct{}

func (splitBackend) Name() string { return "split" }
func (splitBackend) Caps() Caps {
	// Nielsen-style splitting is sound and complete only on the pure
	// word-equation fragment; conversion and membership constraints
	// make it give up with UNKNOWN.
	return Caps{ProvesSat: true, ProvesUnsat: true, CostHint: 2}
}

func (splitBackend) Solve(prob *strcon.Problem, opts Options, ec *engine.Ctx) core.Result {
	r := baseline.SolveSplit(prob, baseline.SplitOptions{}, ec)
	return fromBaseline("split", r, ec)
}

// fromBaseline lifts a baseline result into a core.Result with the
// backend name, the context's stats tree, and an UNKNOWN reason from
// the shared taxonomy.
func fromBaseline(name string, r baseline.Result, ec *engine.Ctx) core.Result {
	out := core.Result{Status: r.Status, Model: r.Model, Backend: name, Stats: ec.Stats()}
	if out.Status == core.StatusUnknown {
		out.Reason = core.UnknownReason(ec)
	}
	return out
}

// registry is the fixed, ordered set of engines. Order matters: the
// portfolio's deterministic tie-break prefers lower-indexed backends,
// and Names/Select report this order.
var registry = []Backend{
	&coreBackend{
		name: "refine",
		caps: Caps{ProvesSat: true, ProvesUnsat: true, Conversion: true, Regex: true, CostHint: 3},
		mode: core.IncrementalOn,
	},
	&coreBackend{
		name: "refine-fresh",
		caps: Caps{ProvesSat: true, ProvesUnsat: true, Conversion: true, Regex: true, CostHint: 4},
		mode: core.IncrementalOff,
	},
	&coreBackend{
		name:     "overapprox-only",
		caps:     Caps{ProvesUnsat: true, Conversion: true, Regex: true, CostHint: 1},
		overOnly: true,
	},
	enumBackend{},
	splitBackend{},
}

// All returns every registered backend in registry order. The slice is
// fresh; the backends themselves are stateless shared values.
func All() []Backend {
	out := make([]Backend, len(registry))
	copy(out, registry)
	return out
}

// Names lists the registry in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name()
	}
	return out
}

// Get resolves one backend by name.
func Get(name string) (Backend, bool) {
	for _, b := range registry {
		if b.Name() == name {
			return b, true
		}
	}
	return nil, false
}

// Select resolves a comma-separated name list in registry order,
// ignoring the order names appear in the list (so the portfolio's
// positional tie-break cannot be reshuffled by flag spelling). An
// empty list selects everything.
func Select(csv string) ([]Backend, error) {
	if strings.TrimSpace(csv) == "" {
		return All(), nil
	}
	want := map[string]bool{}
	for _, f := range strings.Split(csv, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		if _, ok := Get(name); !ok {
			return nil, fmt.Errorf("unknown backend %q (have %s)", name, strings.Join(Names(), ", "))
		}
		want[name] = true
	}
	var out []Backend
	for _, b := range registry {
		if want[b.Name()] {
			out = append(out, b)
		}
	}
	return out, nil
}
