package automata

import (
	"math/rand"
	"testing"
)

func sym(s int) Range { return Range{s, s} }

func TestWordAccepts(t *testing.T) {
	n := Word([]int{1, 2, 3})
	if !n.Accepts([]int{1, 2, 3}) {
		t.Error("should accept its word")
	}
	for _, w := range [][]int{{}, {1}, {1, 2}, {1, 2, 3, 4}, {3, 2, 1}} {
		if n.Accepts(w) {
			t.Errorf("should reject %v", w)
		}
	}
}

func TestEpsilonAndEmpty(t *testing.T) {
	if !Epsilon().Accepts(nil) {
		t.Error("Epsilon should accept empty word")
	}
	if Epsilon().Accepts([]int{0}) {
		t.Error("Epsilon should reject nonempty")
	}
	if Empty().Accepts(nil) || Empty().Accepts([]int{1}) {
		t.Error("Empty should reject everything")
	}
	if !Empty().IsEmpty() {
		t.Error("Empty language should be empty")
	}
	if Epsilon().IsEmpty() {
		t.Error("Epsilon language should not be empty")
	}
}

func TestUnionConcatStar(t *testing.T) {
	a := Word([]int{1})
	b := Word([]int{2})
	ab := Union(a, b)
	for _, w := range [][]int{{1}, {2}} {
		if !ab.Accepts(w) {
			t.Errorf("union should accept %v", w)
		}
	}
	if ab.Accepts([]int{1, 2}) {
		t.Error("union should reject 12")
	}
	cat := Concat(a, b)
	if !cat.Accepts([]int{1, 2}) || cat.Accepts([]int{1}) || cat.Accepts([]int{2, 1}) {
		t.Error("concat wrong")
	}
	st := Star(cat)
	for _, w := range [][]int{{}, {1, 2}, {1, 2, 1, 2, 1, 2}} {
		if !st.Accepts(w) {
			t.Errorf("star should accept %v", w)
		}
	}
	if st.Accepts([]int{1, 2, 1}) {
		t.Error("star should reject 121")
	}
}

func TestRepeat(t *testing.T) {
	a := Symbol(sym(5))
	r := Repeat(a, 2, 4)
	for l := 0; l <= 6; l++ {
		w := make([]int, l)
		for i := range w {
			w[i] = 5
		}
		want := l >= 2 && l <= 4
		if got := r.Accepts(w); got != want {
			t.Errorf("len %d: got %v want %v", l, got, want)
		}
	}
	unb := Repeat(a, 3, -1)
	w := []int{5, 5, 5, 5, 5, 5, 5}
	if !unb.Accepts(w) || unb.Accepts(w[:2]) {
		t.Error("unbounded repeat wrong")
	}
}

func TestProduct(t *testing.T) {
	// L1 = words over {1,2} of even length; L2 = 1*.
	even := &NFA{NumStates: 2, Init: 0, Finals: []int{0}, Trans: []Transition{
		{From: 0, R: Range{1, 2}, To: 1},
		{From: 1, R: Range{1, 2}, To: 0},
	}}
	ones := Star(Symbol(sym(1)))
	p := Product(even, ones)
	for _, c := range []struct {
		w    []int
		want bool
	}{
		{[]int{}, true},
		{[]int{1, 1}, true},
		{[]int{1}, false},
		{[]int{1, 2}, false},
		{[]int{1, 1, 1, 1}, true},
	} {
		if got := p.Accepts(c.w); got != c.want {
			t.Errorf("product accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestProductEmptiness(t *testing.T) {
	a := Word([]int{1, 2})
	b := Word([]int{2, 1})
	if !Product(a, b).IsEmpty() {
		t.Error("disjoint singletons should have empty intersection")
	}
	if Product(a, a).IsEmpty() {
		t.Error("self-intersection should be nonempty")
	}
}

func TestComplement(t *testing.T) {
	a := Word([]int{3, 4})
	c := a.Complement()
	if c.Accepts([]int{3, 4}) {
		t.Error("complement should reject the word")
	}
	for _, w := range [][]int{{}, {3}, {4, 3}, {3, 4, 5}, {255}} {
		if !c.Accepts(w) {
			t.Errorf("complement should accept %v", w)
		}
	}
}

func TestTrimPreservesLanguage(t *testing.T) {
	// Build an automaton with junk states.
	n := &NFA{NumStates: 6, Init: 0, Finals: []int{2}, Trans: []Transition{
		{From: 0, R: sym(1), To: 1},
		{From: 1, R: sym(2), To: 2},
		{From: 0, R: sym(9), To: 3}, // dead end
		{From: 4, R: sym(9), To: 2}, // unreachable
		{From: 3, R: sym(9), To: 5},
	}}
	tr := n.Trim()
	if tr.NumStates >= n.NumStates {
		t.Errorf("Trim did not remove states: %d -> %d", n.NumStates, tr.NumStates)
	}
	if !tr.Accepts([]int{1, 2}) || tr.Accepts([]int{9}) {
		t.Error("Trim changed the language")
	}
}

func TestShortestWord(t *testing.T) {
	n := Union(Word([]int{1, 2, 3}), Word([]int{7}))
	w, ok := n.ShortestWord()
	if !ok || len(w) != 1 || w[0] != 7 {
		t.Errorf("ShortestWord = %v, %v; want [7]", w, ok)
	}
	if _, ok := Empty().ShortestWord(); ok {
		t.Error("Empty should have no word")
	}
	w, ok = Epsilon().ShortestWord()
	if !ok || len(w) != 0 {
		t.Errorf("Epsilon shortest = %v, %v", w, ok)
	}
}

// randomNFA builds a small random automaton over symbols {0,1,2}.
func randomNFA(rng *rand.Rand) *NFA {
	states := 2 + rng.Intn(4)
	n := &NFA{NumStates: states, Init: 0}
	for s := 0; s < states; s++ {
		if rng.Intn(3) == 0 {
			n.Finals = append(n.Finals, s)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			lo := rng.Intn(3)
			n.Trans = append(n.Trans, Transition{
				From: s, R: Range{lo, lo + rng.Intn(2)}, To: rng.Intn(states),
			})
		}
		if rng.Intn(4) == 0 {
			n.Trans = append(n.Trans, Transition{From: s, To: rng.Intn(states), Eps: true})
		}
	}
	return n
}

func allWords(maxLen int) [][]int {
	var out [][]int
	var rec func(cur []int)
	rec = func(cur []int) {
		w := append([]int(nil), cur...)
		out = append(out, w)
		if len(cur) == maxLen {
			return
		}
		for s := 0; s <= 3; s++ {
			rec(append(cur, s))
		}
	}
	rec(nil)
	return out
}

func TestPropertyProductMatchesIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := allWords(4)
	for iter := 0; iter < 60; iter++ {
		a, b := randomNFA(rng), randomNFA(rng)
		p := Product(a, b)
		for _, w := range words {
			want := a.Accepts(w) && b.Accepts(w)
			if got := p.Accepts(w); got != want {
				t.Fatalf("iter %d: product(%v) = %v, want %v", iter, w, got, want)
			}
		}
	}
}

func TestPropertyEpsilonRemovalPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := allWords(4)
	for iter := 0; iter < 60; iter++ {
		a := randomNFA(rng)
		b := a.RemoveEpsilon()
		for _, t2 := range b.Trans {
			if t2.Eps {
				t.Fatal("epsilon transition survived")
			}
		}
		for _, w := range words {
			if a.Accepts(w) != b.Accepts(w) {
				t.Fatalf("iter %d: languages differ on %v", iter, w)
			}
		}
	}
}

func TestPropertyComplementIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	words := allWords(3)
	for iter := 0; iter < 40; iter++ {
		a := randomNFA(rng)
		c := a.Complement()
		for _, w := range words {
			if a.Accepts(w) == c.Accepts(w) {
				t.Fatalf("iter %d: complement agrees with original on %v", iter, w)
			}
		}
	}
}

func TestPropertyTrimPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	words := allWords(4)
	for iter := 0; iter < 60; iter++ {
		a := randomNFA(rng)
		b := a.Trim()
		for _, w := range words {
			if a.Accepts(w) != b.Accepts(w) {
				t.Fatalf("iter %d: trim changed language on %v", iter, w)
			}
		}
	}
}
