// Package automata implements nondeterministic finite automata over a
// numeric alphabet, with transitions labeled by symbol ranges so that
// character classes stay compact. It provides the classic constructions
// (concatenation, union, star, product, determinization, complement)
// needed by the regular-constraint machinery of the string solver.
//
// Symbols are small non-negative integers; the string solver maps
// characters to codes with digits '0'..'9' at codes 0..9 (paper §3).
package automata

import "sort"

// Range is an inclusive symbol interval.
type Range struct {
	Lo, Hi int
}

// Contains reports whether the symbol is inside the range.
func (r Range) Contains(s int) bool { return r.Lo <= s && s <= r.Hi }

// Transition is an edge of an NFA. If Eps is true the transition
// consumes no input and the range is ignored.
type Transition struct {
	From int
	R    Range
	To   int
	Eps  bool
}

// NFA is a nondeterministic finite automaton with a single initial
// state and a set of final states.
type NFA struct {
	NumStates int
	Init      int
	Finals    []int
	Trans     []Transition
}

// MaxSymbol is the largest symbol used by the solver's alphabets.
const MaxSymbol = 255

// Empty returns an automaton accepting the empty language.
func Empty() *NFA {
	return &NFA{NumStates: 1, Init: 0}
}

// Epsilon returns an automaton accepting only the empty word.
func Epsilon() *NFA {
	return &NFA{NumStates: 1, Init: 0, Finals: []int{0}}
}

// Symbol returns an automaton accepting the single-symbol words in r.
func Symbol(r Range) *NFA {
	return &NFA{
		NumStates: 2,
		Init:      0,
		Finals:    []int{1},
		Trans:     []Transition{{From: 0, R: r, To: 1}},
	}
}

// Word returns an automaton accepting exactly the word w.
func Word(w []int) *NFA {
	n := &NFA{NumStates: len(w) + 1, Init: 0, Finals: []int{len(w)}}
	for i, s := range w {
		n.Trans = append(n.Trans, Transition{From: i, R: Range{s, s}, To: i + 1})
	}
	return n
}

// AnyStar returns an automaton accepting all words over [0,MaxSymbol].
func AnyStar() *NFA {
	return &NFA{
		NumStates: 1,
		Init:      0,
		Finals:    []int{0},
		Trans:     []Transition{{From: 0, R: Range{0, MaxSymbol}, To: 0}},
	}
}

// shift returns a copy of n with all state ids offset by d.
func (n *NFA) shift(d int) *NFA {
	m := &NFA{NumStates: n.NumStates, Init: n.Init + d}
	m.Finals = make([]int, len(n.Finals))
	for i, f := range n.Finals {
		m.Finals[i] = f + d
	}
	m.Trans = make([]Transition, len(n.Trans))
	for i, t := range n.Trans {
		m.Trans[i] = Transition{From: t.From + d, R: t.R, To: t.To + d, Eps: t.Eps}
	}
	return m
}

// Concat returns an automaton for L(a)·L(b).
func Concat(a, b *NFA) *NFA {
	bs := b.shift(a.NumStates)
	out := &NFA{
		NumStates: a.NumStates + b.NumStates,
		Init:      a.Init,
		Finals:    bs.Finals,
	}
	out.Trans = append(out.Trans, a.Trans...)
	out.Trans = append(out.Trans, bs.Trans...)
	for _, f := range a.Finals {
		out.Trans = append(out.Trans, Transition{From: f, To: bs.Init, Eps: true})
	}
	return out
}

// Union returns an automaton for L(a) ∪ L(b).
func Union(a, b *NFA) *NFA {
	as := a.shift(1)
	bs := b.shift(1 + a.NumStates)
	out := &NFA{
		NumStates: 1 + a.NumStates + b.NumStates,
		Init:      0,
	}
	out.Trans = append(out.Trans, Transition{From: 0, To: as.Init, Eps: true})
	out.Trans = append(out.Trans, Transition{From: 0, To: bs.Init, Eps: true})
	out.Trans = append(out.Trans, as.Trans...)
	out.Trans = append(out.Trans, bs.Trans...)
	out.Finals = append(out.Finals, as.Finals...)
	out.Finals = append(out.Finals, bs.Finals...)
	return out
}

// Star returns an automaton for L(a)*.
func Star(a *NFA) *NFA {
	as := a.shift(1)
	out := &NFA{
		NumStates: 1 + a.NumStates,
		Init:      0,
		Finals:    []int{0},
	}
	out.Trans = append(out.Trans, Transition{From: 0, To: as.Init, Eps: true})
	out.Trans = append(out.Trans, as.Trans...)
	for _, f := range as.Finals {
		out.Trans = append(out.Trans, Transition{From: f, To: 0, Eps: true})
	}
	return out
}

// Plus returns an automaton for L(a)+.
func Plus(a *NFA) *NFA {
	return Concat(a, Star(a))
}

// Optional returns an automaton for L(a) ∪ {ε}.
func Optional(a *NFA) *NFA {
	return Union(a, Epsilon())
}

// Repeat returns an automaton for L(a) repeated between min and max
// times; max < 0 means unbounded (min copies followed by a star).
func Repeat(a *NFA, min, max int) *NFA {
	out := Epsilon()
	for i := 0; i < min; i++ {
		out = Concat(out, a)
	}
	if max < 0 {
		return Concat(out, Star(a))
	}
	for i := min; i < max; i++ {
		out = Concat(out, Optional(a))
	}
	return out
}

// epsClosure expands the state set with all ε-reachable states.
func (n *NFA) epsClosure(set map[int]bool) {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	sort.Ints(stack)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Trans {
			if t.Eps && t.From == s && !set[t.To] {
				set[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
}

// Accepts reports whether the automaton accepts the word.
func (n *NFA) Accepts(w []int) bool {
	cur := map[int]bool{n.Init: true}
	n.epsClosure(cur)
	for _, s := range w {
		next := make(map[int]bool)
		for q := range cur {
			for _, t := range n.Trans {
				if !t.Eps && t.From == q && t.R.Contains(s) {
					next[t.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		n.epsClosure(next)
		cur = next
	}
	for _, f := range n.Finals {
		if cur[f] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the language of n is empty.
func (n *NFA) IsEmpty() bool {
	finals := make(map[int]bool, len(n.Finals))
	for _, f := range n.Finals {
		finals[f] = true
	}
	seen := map[int]bool{n.Init: true}
	stack := []int{n.Init}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if finals[s] {
			return false
		}
		for _, t := range n.Trans {
			if t.From == s && !seen[t.To] && (t.Eps || t.R.Lo <= t.R.Hi) {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return true
}

// Trim removes states that are not both reachable from the initial
// state and co-reachable to a final state, renumbering the rest. The
// initial state is always kept. Languages are preserved.
func (n *NFA) Trim() *NFA {
	fwd := make([]bool, n.NumStates)
	fwd[n.Init] = true
	stack := []int{n.Init}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Trans {
			if t.From == s && !fwd[t.To] {
				fwd[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	bwd := make([]bool, n.NumStates)
	for _, f := range n.Finals {
		if !bwd[f] {
			bwd[f] = true
			stack = append(stack, f)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Trans {
			if t.To == s && !bwd[t.From] {
				bwd[t.From] = true
				stack = append(stack, t.From)
			}
		}
	}
	keep := make([]int, n.NumStates)
	cnt := 0
	for i := range keep {
		if (fwd[i] && bwd[i]) || i == n.Init {
			keep[i] = cnt
			cnt++
		} else {
			keep[i] = -1
		}
	}
	out := &NFA{NumStates: cnt, Init: keep[n.Init]}
	for _, f := range n.Finals {
		if keep[f] >= 0 {
			out.Finals = append(out.Finals, keep[f])
		}
	}
	for _, t := range n.Trans {
		if keep[t.From] >= 0 && keep[t.To] >= 0 && (fwd[t.From] && bwd[t.To]) {
			out.Trans = append(out.Trans, Transition{From: keep[t.From], R: t.R, To: keep[t.To], Eps: t.Eps})
		}
	}
	return out
}

// Product returns an automaton for L(a) ∩ L(b). Both inputs are first
// ε-eliminated; the result has no ε-transitions.
func Product(a, b *NFA) *NFA {
	a = a.RemoveEpsilon()
	b = b.RemoveEpsilon()
	type pair struct{ x, y int }
	id := map[pair]int{}
	var order []pair
	get := func(p pair) int {
		if i, ok := id[p]; ok {
			return i
		}
		id[p] = len(order)
		order = append(order, p)
		return len(order) - 1
	}
	out := &NFA{}
	init := get(pair{a.Init, b.Init})
	out.Init = init
	aFin := make(map[int]bool)
	for _, f := range a.Finals {
		aFin[f] = true
	}
	bFin := make(map[int]bool)
	for _, f := range b.Finals {
		bFin[f] = true
	}
	for qi := 0; qi < len(order); qi++ {
		p := order[qi]
		for _, ta := range a.Trans {
			if ta.From != p.x {
				continue
			}
			for _, tb := range b.Trans {
				if tb.From != p.y {
					continue
				}
				lo := max(ta.R.Lo, tb.R.Lo)
				hi := min(ta.R.Hi, tb.R.Hi)
				if lo > hi {
					continue
				}
				to := get(pair{ta.To, tb.To})
				out.Trans = append(out.Trans, Transition{From: qi, R: Range{lo, hi}, To: to})
			}
		}
	}
	out.NumStates = len(order)
	for i, p := range order {
		if aFin[p.x] && bFin[p.y] {
			out.Finals = append(out.Finals, i)
		}
	}
	return out.Trim()
}

// RemoveEpsilon returns an equivalent automaton without ε-transitions.
func (n *NFA) RemoveEpsilon() *NFA {
	// closure[s] = ε-closure of {s}
	out := &NFA{NumStates: n.NumStates, Init: n.Init}
	finals := make(map[int]bool)
	for _, f := range n.Finals {
		finals[f] = true
	}
	for s := 0; s < n.NumStates; s++ {
		cl := map[int]bool{s: true}
		n.epsClosure(cl)
		cls := make([]int, 0, len(cl))
		for q := range cl {
			cls = append(cls, q)
		}
		sort.Ints(cls)
		isFinal := false
		for _, q := range cls {
			if finals[q] {
				isFinal = true
			}
			for _, t := range n.Trans {
				if !t.Eps && t.From == q {
					out.Trans = append(out.Trans, Transition{From: s, R: t.R, To: t.To})
				}
			}
		}
		if isFinal {
			out.Finals = append(out.Finals, s)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Determinize returns a complete DFA (as an NFA value with
// deterministic transitions over a partition of [0,MaxSymbol],
// including an explicit sink state).
func (n *NFA) Determinize() *NFA {
	m := n.RemoveEpsilon()
	// Collect range boundaries to partition the alphabet.
	cuts := map[int]bool{0: true, MaxSymbol + 1: true}
	for _, t := range m.Trans {
		cuts[t.R.Lo] = true
		cuts[t.R.Hi+1] = true
	}
	bounds := make([]int, 0, len(cuts))
	for c := range cuts {
		bounds = append(bounds, c)
	}
	sort.Ints(bounds)
	var parts []Range
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] <= MaxSymbol {
			parts = append(parts, Range{bounds[i], min(bounds[i+1]-1, MaxSymbol)})
		}
	}

	finals := make(map[int]bool)
	for _, f := range m.Finals {
		finals[f] = true
	}
	type key = string
	enc := func(set []int) key {
		b := make([]byte, 0, len(set)*3)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), ',')
		}
		return string(b)
	}
	id := map[key]int{}
	var sets [][]int
	get := func(set []int) int {
		sort.Ints(set)
		k := enc(set)
		if i, ok := id[k]; ok {
			return i
		}
		id[k] = len(sets)
		sets = append(sets, set)
		return len(sets) - 1
	}
	out := &NFA{}
	out.Init = get([]int{m.Init})
	for qi := 0; qi < len(sets); qi++ {
		cur := sets[qi]
		for _, p := range parts {
			nextSet := map[int]bool{}
			for _, s := range cur {
				for _, t := range m.Trans {
					if t.From == s && t.R.Lo <= p.Lo && p.Hi <= t.R.Hi {
						nextSet[t.To] = true
					}
				}
			}
			ns := make([]int, 0, len(nextSet))
			for s := range nextSet {
				ns = append(ns, s)
			}
			sort.Ints(ns)
			to := get(ns) // empty set becomes the sink
			out.Trans = append(out.Trans, Transition{From: qi, R: p, To: to})
		}
	}
	out.NumStates = len(sets)
	for i, set := range sets {
		for _, s := range set {
			if finals[s] {
				out.Finals = append(out.Finals, i)
				break
			}
		}
	}
	return out
}

// Complement returns an automaton accepting the complement of L(n)
// with respect to all words over [0,MaxSymbol].
func (n *NFA) Complement() *NFA {
	d := n.Determinize()
	finals := make(map[int]bool)
	for _, f := range d.Finals {
		finals[f] = true
	}
	out := &NFA{NumStates: d.NumStates, Init: d.Init, Trans: d.Trans}
	for s := 0; s < d.NumStates; s++ {
		if !finals[s] {
			out.Finals = append(out.Finals, s)
		}
	}
	return out
}

// ShortestWord returns a shortest accepted word, or nil when the
// language is empty (ok reports acceptance of some word; the empty word
// yields an empty non-nil slice).
func (n *NFA) ShortestWord() (w []int, ok bool) {
	m := n.RemoveEpsilon()
	finals := make(map[int]bool)
	for _, f := range m.Finals {
		finals[f] = true
	}
	type node struct {
		state int
		via   int // symbol used to reach this state
		prev  int // index in bfs order, -1 for init
	}
	seen := make([]bool, m.NumStates)
	queue := []node{{state: m.Init, via: -1, prev: -1}}
	seen[m.Init] = true
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if finals[cur.state] {
			var rev []int
			for j := i; queue[j].via != -1; j = queue[j].prev {
				rev = append(rev, queue[j].via)
			}
			w := make([]int, 0, len(rev))
			for k := len(rev) - 1; k >= 0; k-- {
				w = append(w, rev[k])
			}
			return w, true
		}
		for _, t := range m.Trans {
			if t.From == cur.state && !seen[t.To] && t.R.Lo <= t.R.Hi {
				seen[t.To] = true
				queue = append(queue, node{state: t.To, via: t.R.Lo, prev: i})
			}
		}
	}
	return nil, false
}
