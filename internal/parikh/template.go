package parikh

import (
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/lia"
)

// Parikh-image formulas are memoized as templates over placeholder
// variables — flow[i] is lia.Var(i), the depth variable of state q is
// lia.Var(len(Edges)+q) — keyed by the automaton's shape. Templates are
// immutable and pool-independent; Formula instantiates one by renaming
// the placeholders into the caller's variables (lia.Rename does not
// modify its input, so concurrent instantiation of a shared template is
// safe). The refinement loop re-derives the same product shapes round
// after round, which is what makes the memo pay.
var tmplCache = struct {
	sync.Mutex
	m map[string]lia.Formula
}{m: make(map[string]lia.Formula)}

const tmplCacheCap = 512

// template returns the memoized placeholder-variable encoding of a,
// building and (capacity permitting) storing it on a miss. Hit/miss
// counters are recorded on st (nil-safe).
func template(a Automaton, st *engine.Stats) lia.Formula {
	key := make([]byte, 0, 16+8*len(a.Edges))
	key = strconv.AppendInt(key, int64(a.NumStates), 32)
	key = append(key, ',')
	key = strconv.AppendInt(key, int64(a.Init), 32)
	key = append(key, ',')
	key = strconv.AppendInt(key, int64(a.Final), 32)
	for _, e := range a.Edges {
		key = append(key, ';')
		key = strconv.AppendInt(key, int64(e.From), 32)
		key = append(key, ',')
		key = strconv.AppendInt(key, int64(e.To), 32)
	}
	k := string(key)

	tmplCache.Lock()
	f, ok := tmplCache.m[k]
	tmplCache.Unlock()
	if ok {
		st.Add("parikh.hit", 1)
		return f
	}
	st.Add("parikh.miss", 1)
	flow := make([]lia.Var, len(a.Edges))
	for i := range flow {
		flow[i] = lia.Var(i)
	}
	z := make([]lia.Var, a.NumStates)
	for q := range z {
		z[q] = lia.Var(len(a.Edges) + q)
	}
	f = formulaBody(a, flow, z)
	tmplCache.Lock()
	if len(tmplCache.m) < tmplCacheCap {
		tmplCache.m[k] = f
	}
	tmplCache.Unlock()
	return f
}
