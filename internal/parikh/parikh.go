// Package parikh computes, for a finite automaton, a linear formula
// whose models are exactly the Parikh images of its accepting runs
// (paper Lemma 2.1). The construction is the standard existential
// Presburger encoding of Verma, Seidl, and Schwentick: per-edge flow
// variables with Euler-path flow conservation, plus spanning-tree depth
// variables that force the used edges to be connected to the initial
// state.
//
// The string solver applies it to asynchronous products of parametric
// automata when building synchronization formulas (paper §7).
package parikh

import (
	"repro/internal/engine"
	"repro/internal/lia"
)

// Edge is a directed edge of the automaton graph. Labels are irrelevant
// here; callers keep the edge order and attach meaning to the flow
// variables.
type Edge struct {
	From, To int
}

// Automaton is the graph view of a finite automaton with one initial
// and one final state.
type Automaton struct {
	NumStates int
	Init      int
	Final     int
	Edges     []Edge
}

// FlowOnly returns the flow-conservation part of the Parikh encoding:
// non-negativity plus Euler-path flow balance. Its models
// over-approximate the Parikh images of accepting runs — used-edge
// connectivity is not enforced. Pair it with Disconnected/CutFormula
// for lazy connectivity refinement, or use Formula for the eager
// encoding.
func FlowOnly(a Automaton, flow []lia.Var) lia.Formula {
	if len(flow) != len(a.Edges) {
		// contract: callers allocate one flow variable per edge.
		panic("parikh: flow variable count mismatch")
	}
	var conj []lia.Formula
	for _, f := range flow {
		conj = append(conj, lia.Ge(lia.V(f), lia.Const(0)))
	}
	in := make([][]int, a.NumStates)
	out := make([][]int, a.NumStates)
	for i, e := range a.Edges {
		out[e.From] = append(out[e.From], i)
		in[e.To] = append(in[e.To], i)
	}
	for q := 0; q < a.NumStates; q++ {
		e := lia.NewLin()
		for _, i := range in[q] {
			e.AddTermInt(flow[i], 1)
		}
		for _, i := range out[q] {
			e.AddTermInt(flow[i], -1)
		}
		rhs := int64(0)
		if q == a.Final {
			rhs++
		}
		if q == a.Init {
			rhs--
		}
		conj = append(conj, lia.Eq(e, lia.Const(rhs)))
	}
	return lia.And(conj...)
}

// Disconnected checks the used-edge subgraph of a flow assignment. It
// returns a set of states that carry used edges but are unreachable
// from Init through used edges, or ok=true when the flow is connected
// (and hence a genuine Parikh image, given flow conservation).
func Disconnected(a Automaton, used []bool) (component []int, ok bool) {
	touched := make([]bool, a.NumStates)
	for i, e := range a.Edges {
		if used[i] {
			touched[e.From] = true
			touched[e.To] = true
		}
	}
	reach := make([]bool, a.NumStates)
	reach[a.Init] = true
	stack := []int{a.Init}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, e := range a.Edges {
			if used[i] && e.From == s && !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for q := 0; q < a.NumStates; q++ {
		if touched[q] && !reach[q] {
			component = append(component, q)
		}
	}
	if len(component) == 0 {
		return nil, true
	}
	return component, false
}

// CutFormula builds the connectivity cut for a violated component C:
// either some edge entering C from outside is used, or every edge
// leaving a state of C is unused. Every true Parikh image satisfies it,
// and it excludes the flows for which Disconnected returned C.
func CutFormula(a Automaton, flow []lia.Var, component []int) lia.Formula {
	inC := make(map[int]bool, len(component))
	for _, q := range component {
		inC[q] = true
	}
	enter := lia.NewLin()
	leave := lia.NewLin()
	for i, e := range a.Edges {
		if inC[e.To] && !inC[e.From] {
			enter.AddTermInt(flow[i], 1)
		}
		if inC[e.From] {
			leave.AddTermInt(flow[i], 1)
		}
	}
	return lia.Or(
		lia.Ge(enter, lia.Const(1)),
		lia.Eq(leave, lia.Const(0)),
	)
}

// Formula returns a linear formula over the per-edge flow variables
// flow[i] (one per a.Edges[i], allocated by the caller) such that its
// models, projected to flow, are exactly the functions counting how
// often each edge is used by some accepting run from Init to Final.
// Auxiliary depth variables are allocated from pool.
//
// The formula is instantiated from a template memoized by the
// automaton's shape (see template); cache counters are recorded on st,
// which may be nil.
func Formula(a Automaton, flow []lia.Var, pool *lia.Pool, st *engine.Stats) lia.Formula {
	if len(flow) != len(a.Edges) {
		panic("parikh: flow variable count mismatch")
	}
	tmpl := template(a, st)
	// The renaming maps the template's placeholders onto the caller's
	// flow variables and onto depth variables freshly allocated here —
	// in the same order whether the template was cached or just built,
	// so caching never perturbs pool numbering.
	ren := make(map[lia.Var]lia.Var, len(flow)+a.NumStates)
	for i, f := range flow {
		ren[lia.Var(i)] = f
	}
	for q := 0; q < a.NumStates; q++ {
		ren[lia.Var(len(flow)+q)] = pool.Fresh("z")
	}
	return lia.Rename(tmpl, ren)
}

// formulaBody is the Verma–Seidl–Schwentick encoding over explicit
// flow and depth variables.
func formulaBody(a Automaton, flow, z []lia.Var) lia.Formula {
	var conj []lia.Formula

	// Non-negativity.
	for _, f := range flow {
		conj = append(conj, lia.Ge(lia.V(f), lia.Const(0)))
	}

	// Flow conservation: in(q) - out(q) = [q==Final] - [q==Init].
	in := make([][]int, a.NumStates)  // edge indices
	out := make([][]int, a.NumStates) // edge indices
	for i, e := range a.Edges {
		out[e.From] = append(out[e.From], i)
		in[e.To] = append(in[e.To], i)
	}
	for q := 0; q < a.NumStates; q++ {
		e := lia.NewLin()
		for _, i := range in[q] {
			e.AddTermInt(flow[i], 1)
		}
		for _, i := range out[q] {
			e.AddTermInt(flow[i], -1)
		}
		rhs := int64(0)
		if q == a.Final {
			rhs++
		}
		if q == a.Init {
			rhs--
		}
		conj = append(conj, lia.Eq(e, lia.Const(rhs)))
	}

	// Connectivity: depth variables z_q. z_Init = 1; for every other
	// state, either no incoming flow (then flow conservation forces no
	// outgoing flow either) or it is reached from a connected
	// predecessor one level deeper.
	conj = append(conj, lia.EqConst(z[a.Init], 1))
	maxDepth := int64(a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		conj = append(conj,
			lia.Ge(lia.V(z[q]), lia.Const(0)),
			lia.Le(lia.V(z[q]), lia.Const(maxDepth)))
		if q == a.Init {
			continue
		}
		inflow := lia.NewLin()
		for _, i := range in[q] {
			inflow.AddTermInt(flow[i], 1)
		}
		noIn := lia.Eq(inflow, lia.Const(0))
		var reach []lia.Formula
		for _, i := range in[q] {
			p := a.Edges[i].From
			if p == q {
				continue // self-loop cannot establish first reachability
			}
			reach = append(reach, lia.And(
				lia.Ge(lia.V(flow[i]), lia.Const(1)),
				lia.Ge(lia.V(z[p]), lia.Const(1)),
				lia.Eq(lia.V(z[q]), lia.V(z[p]).AddConst(1)),
			))
		}
		conj = append(conj, lia.Or(noIn, lia.Or(reach...)))
	}
	return lia.And(conj...)
}
