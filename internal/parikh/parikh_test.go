package parikh

import (
	"math/rand"
	"testing"

	"repro/internal/lia"
)

// realizable reports whether some accepting run from a.Init to a.Final
// uses each edge exactly counts[i] times (Euler-path style search).
func realizable(a Automaton, counts []int) bool {
	total := 0
	for _, c := range counts {
		total += c
	}
	remaining := append([]int(nil), counts...)
	var dfs func(state, left int) bool
	dfs = func(state, left int) bool {
		if left == 0 {
			return state == a.Final
		}
		for i, e := range a.Edges {
			if e.From == state && remaining[i] > 0 {
				remaining[i]--
				if dfs(e.To, left-1) {
					remaining[i]++
					return true
				}
				remaining[i]++
			}
		}
		return false
	}
	return dfs(a.Init, total)
}

// formulaSat checks whether the Parikh formula admits the given counts.
func formulaSat(t *testing.T, a Automaton, counts []int) bool {
	t.Helper()
	pool := lia.NewPool()
	flow := make([]lia.Var, len(a.Edges))
	for i := range flow {
		flow[i] = pool.Fresh("y")
	}
	f := Formula(a, flow, pool, nil)
	var conj []lia.Formula
	conj = append(conj, f)
	for i, c := range counts {
		conj = append(conj, lia.EqConst(flow[i], int64(c)))
	}
	res, _ := lia.Solve(lia.And(conj...), nil)
	if res == lia.ResUnknown {
		t.Fatalf("unexpected unknown for counts %v", counts)
	}
	return res == lia.ResSat
}

func enumVectors(n, max int, visit func([]int)) {
	vec := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			visit(vec)
			return
		}
		for v := 0; v <= max; v++ {
			vec[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func checkAutomaton(t *testing.T, a Automaton, maxCount int) {
	t.Helper()
	enumVectors(len(a.Edges), maxCount, func(vec []int) {
		want := realizable(a, vec)
		got := formulaSat(t, a, vec)
		if got != want {
			t.Fatalf("automaton %+v counts %v: formula=%v realizable=%v", a, vec, got, want)
		}
	})
}

func TestLinearChain(t *testing.T) {
	a := Automaton{NumStates: 3, Init: 0, Final: 2, Edges: []Edge{{0, 1}, {1, 2}}}
	checkAutomaton(t, a, 2)
}

func TestSelfLoop(t *testing.T) {
	a := Automaton{NumStates: 2, Init: 0, Final: 1, Edges: []Edge{{0, 0}, {0, 1}}}
	checkAutomaton(t, a, 3)
}

func TestCycleNotConnected(t *testing.T) {
	// A disconnected cycle 2->3->2 must not be usable.
	a := Automaton{NumStates: 4, Init: 0, Final: 1, Edges: []Edge{{0, 1}, {2, 3}, {3, 2}}}
	checkAutomaton(t, a, 2)
}

func TestInitEqualsFinal(t *testing.T) {
	a := Automaton{NumStates: 2, Init: 0, Final: 0, Edges: []Edge{{0, 1}, {1, 0}}}
	checkAutomaton(t, a, 3)
}

func TestDiamond(t *testing.T) {
	a := Automaton{NumStates: 4, Init: 0, Final: 3, Edges: []Edge{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0},
	}}
	checkAutomaton(t, a, 2)
}

func TestPropertyRandomAutomata(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive cross-check is slow")
	}
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 12; iter++ {
		states := 2 + rng.Intn(3)
		edges := 2 + rng.Intn(4)
		a := Automaton{NumStates: states, Init: 0, Final: rng.Intn(states)}
		for i := 0; i < edges; i++ {
			a.Edges = append(a.Edges, Edge{From: rng.Intn(states), To: rng.Intn(states)})
		}
		checkAutomaton(t, a, 2)
	}
}
