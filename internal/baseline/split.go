package baseline

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// SplitOptions tune the word-equation splitting baseline.
type SplitOptions struct {
	MaxNodes int // search-tree budget (default 20000)
	MaxDepth int // recursion bound (default 160)
}

// sym is one symbol of a word equation: a variable or a character.
type sym struct {
	isVar bool
	v     strcon.Var
	c     byte
}

type equation struct {
	l, r []sym
}

type splitState struct {
	prob       *strcon.Problem
	opts       SplitOptions
	ec         *engine.Ctx
	nodes      int
	others     []strcon.Constraint // non-equation constraints, checked at leaves
	sound      bool                // exhaustion implies unsat
	sawUnknown bool
}

// SolveSplit runs the Nielsen/Levi word-equation splitting baseline
// under the given context's deadline and cancellation.
func SolveSplit(prob *strcon.Problem, opts SplitOptions, ec *engine.Ctx) Result {
	prob.Prepare()
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 20000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 160
	}
	s := &splitState{prob: prob, opts: opts, ec: ec}

	var eqs []equation
	s.sound = true
	for _, c := range prob.Constraints {
		switch t := c.(type) {
		case *strcon.WordEq:
			eqs = append(eqs, equation{l: toSyms(t.L), r: toSyms(t.R)})
		default:
			s.others = append(s.others, c)
			s.sound = false
		}
	}
	sub := map[strcon.Var][]sym{}
	st := s.search(eqs, sub, 0)
	if st == core.StatusSat {
		a := s.groundAssignment(sub)
		if a != nil && prob.Eval(a) {
			return Result{Status: core.StatusSat, Model: a}
		}
		return Result{Status: core.StatusUnknown}
	}
	if st == core.StatusUnsat && s.sound && !s.sawUnknown {
		return Result{Status: core.StatusUnsat}
	}
	return Result{Status: core.StatusUnknown}
}

func toSyms(t strcon.Term) []sym {
	var out []sym
	for _, it := range t {
		if it.IsVar {
			out = append(out, sym{isVar: true, v: it.V})
			continue
		}
		for i := 0; i < len(it.Const); i++ {
			out = append(out, sym{c: it.Const[i]})
		}
	}
	return out
}

// search explores the Nielsen transformation tree. sub is extended in
// place on the SAT path (the caller reads it after success).
func (s *splitState) search(eqs []equation, sub map[strcon.Var][]sym, depth int) core.Status {
	s.nodes++
	if s.nodes > s.opts.MaxNodes || depth > s.opts.MaxDepth {
		s.sawUnknown = true
		return core.StatusUnknown
	}
	if s.ec.Poll() {
		s.sawUnknown = true
		return core.StatusUnknown
	}

	// Normalize: strip equal heads; drop trivial equations.
	var work []equation
	for _, eq := range eqs {
		l, r := eq.l, eq.r
		for len(l) > 0 && len(r) > 0 {
			if l[0] == r[0] {
				l, r = l[1:], r[1:]
				continue
			}
			if !l[0].isVar && !r[0].isVar && l[0].c != r[0].c {
				return core.StatusUnsat
			}
			break
		}
		if len(l) == 0 && len(r) == 0 {
			continue
		}
		work = append(work, equation{l: l, r: r})
	}
	if len(work) == 0 {
		if s.leafOK(sub) {
			return core.StatusSat
		}
		s.sawUnknown = true // leaf completion is not exhaustive
		return core.StatusUnsat
	}

	eq := work[0]
	// One side empty: every symbol on the other side must vanish.
	if len(eq.l) == 0 || len(eq.r) == 0 {
		side := eq.l
		if len(side) == 0 {
			side = eq.r
		}
		for _, y := range side {
			if !y.isVar {
				return core.StatusUnsat
			}
		}
		next := work[1:]
		assignments := map[strcon.Var][]sym{}
		for _, y := range side {
			assignments[y.v] = nil
		}
		return s.branch(next, sub, assignments, depth)
	}

	lh, rh := eq.l[0], eq.r[0]
	unknown := false
	try := func(assign map[strcon.Var][]sym) bool {
		switch s.branch(work, sub, assign, depth) {
		case core.StatusSat:
			return true
		case core.StatusUnknown:
			unknown = true
		}
		return false
	}
	switch {
	case lh.isVar && !rh.isVar:
		// x = ε or x = c·x'
		if try(map[strcon.Var][]sym{lh.v: nil}) {
			return core.StatusSat
		}
		fresh := s.freshVar(lh.v)
		if try(map[strcon.Var][]sym{lh.v: {{c: rh.c}, {isVar: true, v: fresh}}}) {
			return core.StatusSat
		}
	case !lh.isVar && rh.isVar:
		if try(map[strcon.Var][]sym{rh.v: nil}) {
			return core.StatusSat
		}
		fresh := s.freshVar(rh.v)
		if try(map[strcon.Var][]sym{rh.v: {{c: lh.c}, {isVar: true, v: fresh}}}) {
			return core.StatusSat
		}
	default: // both variables, different (equal heads were stripped)
		if try(map[strcon.Var][]sym{lh.v: nil}) {
			return core.StatusSat
		}
		if try(map[strcon.Var][]sym{rh.v: nil}) {
			return core.StatusSat
		}
		fx := s.freshVar(lh.v)
		if try(map[strcon.Var][]sym{lh.v: {{isVar: true, v: rh.v}, {isVar: true, v: fx}}}) {
			return core.StatusSat
		}
		fy := s.freshVar(rh.v)
		if try(map[strcon.Var][]sym{rh.v: {{isVar: true, v: lh.v}, {isVar: true, v: fy}}}) {
			return core.StatusSat
		}
	}
	if unknown {
		s.sawUnknown = true
		return core.StatusUnknown
	}
	return core.StatusUnsat
}

// branch applies an assignment to all equations and recurses; on
// failure the substitution entries are rolled back.
func (s *splitState) branch(eqs []equation, sub map[strcon.Var][]sym,
	assign map[strcon.Var][]sym, depth int) core.Status {
	next := make([]equation, len(eqs))
	for i, eq := range eqs {
		next[i] = equation{l: applySub(eq.l, assign), r: applySub(eq.r, assign)}
	}
	for v, rep := range assign {
		sub[v] = rep
	}
	st := s.search(next, sub, depth+1)
	if st != core.StatusSat {
		for v := range assign {
			delete(sub, v)
		}
	}
	return st
}

func applySub(syms []sym, assign map[strcon.Var][]sym) []sym {
	var out []sym
	for _, y := range syms {
		if y.isVar {
			if rep, ok := assign[y.v]; ok {
				out = append(out, rep...)
				continue
			}
		}
		out = append(out, y)
	}
	return out
}

func (s *splitState) freshVar(base strcon.Var) strcon.Var {
	return s.prob.NewStrVar(s.prob.StrName(base) + "'")
}

// leafOK completes the substitution to ground strings (free variables
// become ε) and validates all remaining constraints.
func (s *splitState) leafOK(sub map[strcon.Var][]sym) bool {
	a := s.groundAssignment(sub)
	return a != nil && s.prob.Eval(a)
}

// groundAssignment resolves the substitution to strings, derives forced
// integers, and solves the arithmetic residue.
func (s *splitState) groundAssignment(sub map[strcon.Var][]sym) *strcon.Assignment {
	memo := map[strcon.Var]string{}
	var resolve func(v strcon.Var, guard int) string
	resolve = func(v strcon.Var, guard int) string {
		if guard > 64 {
			return ""
		}
		if str, ok := memo[v]; ok {
			return str
		}
		rep, ok := sub[v]
		if !ok {
			memo[v] = ""
			return ""
		}
		out := ""
		for _, y := range rep {
			if y.isVar {
				out += resolve(y.v, guard+1)
			} else {
				out += string(y.c)
			}
		}
		memo[v] = out
		return out
	}
	a := &strcon.Assignment{Str: map[strcon.Var]string{}, Int: lia.Model{}}
	for v := 0; v < s.prob.NumStrVars(); v++ {
		a.Str[strcon.Var(v)] = resolve(strcon.Var(v), 0)
	}
	if !checkCandidate(s.prob, a, s.ec) {
		return nil
	}
	return a
}
