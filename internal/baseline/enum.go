// Package baseline implements the two competitor-algorithm families the
// paper compares against (§9, §10), standing in for the closed-source
// CVC4/Z3/Z3Str3 binaries:
//
//   - Enum: bounded-length exhaustive search in the style of the
//     SAT/bit-blasting solvers (HAMPI, Kaluza): candidate strings up to
//     a length bound are enumerated over a constraint-derived alphabet,
//     integers are derived from the string assignment, and the residue
//     is checked by the arithmetic solver plus the concrete validator.
//
//   - Split: DPLL-style word-equation splitting (Nielsen/Levi
//     transformation) as in the Z3str family: equations are decomposed
//     by case analysis on their first symbols, with length-abstraction
//     pruning; leaves are completed and validated concretely.
//
// Both are deliberately faithful to their families' weaknesses: neither
// has a dedicated mechanism for string-number conversion, which is what
// Table 2 and Table 3 of the paper demonstrate.
package baseline

import (
	"sort"

	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// Result mirrors core.Result for the baseline solvers.
type Result struct {
	Status core.Status
	Model  *strcon.Assignment
}

// EnumOptions tune the bounded search.
type EnumOptions struct {
	MaxLen     int   // per-variable length bound (default 4)
	Candidates int64 // total assignment budget (default 300000)
}

// SolveEnum runs the bounded-length enumeration baseline under the
// given context's deadline and cancellation.
func SolveEnum(prob *strcon.Problem, opts EnumOptions, ec *engine.Ctx) Result {
	prob.Prepare()
	if opts.MaxLen == 0 {
		opts.MaxLen = 4
	}
	if opts.Candidates == 0 {
		opts.Candidates = 300000
	}

	sigma := alphabetOf(prob)
	nvars := prob.NumStrVars()
	// Words in length order, shared across variables.
	words := wordsUpTo(sigma, opts.MaxLen)

	assign := &strcon.Assignment{Str: make(map[strcon.Var]string), Int: lia.Model{}}
	var budget = opts.Candidates
	var dfs func(v int) core.Status
	dfs = func(v int) core.Status {
		if budget <= 0 {
			return core.StatusUnknown
		}
		// Each visited assignment costs one unit of the resource budget
		// on top of the solver-local candidate budget above.
		if ec.Charge("baseline enumeration", 1) {
			return core.StatusUnknown
		}
		if v == nvars {
			budget--
			if checkCandidate(prob, assign, ec) {
				return core.StatusSat
			}
			return core.StatusUnsat // this candidate only
		}
		unknown := false
		for _, w := range words {
			assign.Str[strcon.Var(v)] = w
			switch dfs(v + 1) {
			case core.StatusSat:
				return core.StatusSat
			case core.StatusUnknown:
				unknown = true
			}
		}
		if unknown {
			return core.StatusUnknown
		}
		return core.StatusUnsat
	}
	st := dfs(0)
	if st == core.StatusSat {
		return Result{Status: core.StatusSat, Model: assign}
	}
	// Exhausting the bounded space never proves unsatisfiability.
	return Result{Status: core.StatusUnknown}
}

// checkCandidate derives the integer variables forced by the string
// assignment, solves the remaining arithmetic, and validates.
func checkCandidate(prob *strcon.Problem, a *strcon.Assignment, ec *engine.Ctx) bool {
	// Derive integers from string-number constraints; collect the
	// arithmetic residue.
	var arith []lia.Formula
	var walk func(c strcon.Constraint) lia.Formula
	walk = func(c strcon.Constraint) lia.Formula {
		switch t := c.(type) {
		case *strcon.WordEq:
			return boolLit(strcon.EvalTerm(t.L, a) == strcon.EvalTerm(t.R, a))
		case *strcon.WordNeq:
			return boolLit(strcon.EvalTerm(t.L, a) != strcon.EvalTerm(t.R, a))
		case *strcon.Membership:
			return boolLit(prob.EvalConstraint(c, a))
		case *strcon.Arith:
			return t.F
		case *strcon.ToNum:
			return lia.Eq(lia.V(t.N), lia.ConstBig(strcon.ToNumValue(a.Str[t.X])))
		case *strcon.ToStr:
			s := a.Str[t.X]
			v := strcon.ToNumValue(s)
			if s != "" && s == strcon.ToStrValue(v) {
				return lia.Eq(lia.V(t.N), lia.ConstBig(v))
			}
			if s == "" {
				return lia.Le(lia.V(t.N), lia.Const(-1))
			}
			return lia.False // non-canonical numeral can never be toStr
		case *strcon.Ord:
			s := a.Str[t.X]
			if len(s) != 1 {
				return lia.False
			}
			return lia.Eq(lia.V(t.N), lia.Const(int64(alphabet.Code(s[0]))))
		case *strcon.AndCon:
			var fs []lia.Formula
			for _, x := range t.Args {
				fs = append(fs, walk(x))
			}
			return lia.And(fs...)
		case *strcon.OrCon:
			var fs []lia.Formula
			for _, x := range t.Args {
				fs = append(fs, walk(x))
			}
			return lia.Or(fs...)
		}
		return lia.False
	}
	lenVars := prob.LenVars()
	lenKeys := make([]strcon.Var, 0, len(lenVars))
	for x := range lenVars {
		lenKeys = append(lenKeys, x)
	}
	sort.Slice(lenKeys, func(i, j int) bool { return lenKeys[i] < lenKeys[j] })
	for _, x := range lenKeys {
		arith = append(arith, lia.EqConst(lenVars[x], int64(len(a.Str[x]))))
	}
	for _, c := range prob.Constraints {
		arith = append(arith, walk(c))
	}
	res, m := lia.Solve(lia.And(arith...), &lia.Options{Ctx: ec})
	if res != lia.ResSat {
		return false
	}
	a.Int = m
	return prob.Eval(a)
}

func boolLit(b bool) lia.Formula {
	if b {
		return lia.True
	}
	return lia.False
}

// alphabetOf collects a small candidate alphabet from the constraints'
// constants, padded with digits and letters.
func alphabetOf(prob *strcon.Problem) []byte {
	seen := map[byte]bool{}
	var add func(s string)
	add = func(s string) {
		for i := 0; i < len(s); i++ {
			seen[s[i]] = true
		}
	}
	var walk func(c strcon.Constraint)
	walk = func(c strcon.Constraint) {
		switch t := c.(type) {
		case *strcon.WordEq:
			for _, it := range append(append(strcon.Term{}, t.L...), t.R...) {
				if !it.IsVar {
					add(it.Const)
				}
			}
		case *strcon.ToNum, *strcon.ToStr, *strcon.Ord:
			add("0123456789")
		case *strcon.Membership:
			add("019a")
		case *strcon.AndCon:
			for _, x := range t.Args {
				walk(x)
			}
		case *strcon.OrCon:
			for _, x := range t.Args {
				walk(x)
			}
		}
	}
	for _, c := range prob.Constraints {
		walk(c)
	}
	if len(seen) == 0 {
		seen['a'] = true
		seen['0'] = true
	}
	out := make([]byte, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > 8 {
		out = out[:8] // keep the search tractable, like fixed-size encodings
	}
	return out
}

// wordsUpTo enumerates all words over sigma with length <= max, in
// length order.
func wordsUpTo(sigma []byte, max int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 1; l <= max; l++ {
		var next []string
		for _, w := range frontier {
			for _, c := range sigma {
				next = append(next, w+string(c))
			}
		}
		out = append(out, next...)
		frontier = next
		if len(out) > 60000 {
			break
		}
	}
	return out
}
