package baseline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

func secs(n int) time.Duration { return time.Duration(n) * time.Second }

func simpleConcat() *strcon.Problem {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(x), strcon.TV(y)),
		R: strcon.T(strcon.TC("abab")),
	})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)})
	return prob
}

func TestEnumSolvesSimpleConcat(t *testing.T) {
	res := SolveEnum(simpleConcat(), EnumOptions{}, engine.WithTimeout(secs(20)))
	if res.Status != core.StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if res.Model.Str[0] != "ab" || res.Model.Str[1] != "ab" {
		t.Fatalf("model %v", res.Model.Str)
	}
}

func TestSplitSolvesSimpleConcat(t *testing.T) {
	res := SolveSplit(simpleConcat(), SplitOptions{}, engine.WithTimeout(secs(20)))
	if res.Status != core.StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
}

func TestSplitProvesEquationUnsat(t *testing.T) {
	// "a"·x = "b"·y has a head mismatch: the splitting tree closes
	// immediately. (Instances like "a"x = x"b" make pure Nielsen
	// splitting diverge — a known weakness of this solver family; the
	// solver must then answer unknown, see TestBaselinesGiveUpGracefully.)
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("a"), strcon.TV(x)),
		R: strcon.T(strcon.TC("b"), strcon.TV(y)),
	})
	res := SolveSplit(prob, SplitOptions{}, engine.WithTimeout(secs(20)))
	if res.Status != core.StatusUnsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
}

func TestEnumHandlesSmallToNum(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToNum{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.EqConst(n, 7)})
	res := SolveEnum(prob, EnumOptions{}, engine.WithTimeout(secs(20)))
	if res.Status != core.StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if got := strcon.ToNumValue(res.Model.Str[0]); got.Int64() != 7 {
		t.Fatalf("x = %q", res.Model.Str[0])
	}
}

func TestBaselinesGiveUpGracefully(t *testing.T) {
	// A conversion instance beyond the bounded search: toNum(x) = 123456.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(&strcon.ToNum{N: n, X: x})
	prob.Add(&strcon.Arith{F: lia.EqConst(n, 123456)})
	res := SolveEnum(prob, EnumOptions{MaxLen: 3}, engine.WithTimeout(secs(2)))
	if res.Status == core.StatusUnsat {
		t.Fatalf("enum must not claim unsat")
	}
	prob2 := strcon.NewProblem()
	x2 := prob2.NewStrVar("x")
	prob2.Add(&strcon.Membership{X: x2, A: regex.MustCompile("(ab)+")})
	prob2.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x2)), R: strcon.T(strcon.TV(x2))})
	res2 := SolveSplit(prob2, SplitOptions{}, engine.WithTimeout(secs(2)))
	if res2.Status == core.StatusUnsat {
		t.Fatalf("split must not claim unsat with non-equation constraints present")
	}
}

func TestSplitRespectsBudget(t *testing.T) {
	// x·"a" = "a"·x has infinitely many solutions explored breadth-
	// first; ensure the solver either finds one or stops in time.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(x), strcon.TC("a")),
		R: strcon.T(strcon.TC("a"), strcon.TV(x)),
	})
	start := time.Now()
	res := SolveSplit(prob, SplitOptions{}, engine.WithTimeout(secs(5)))
	if time.Since(start) > secs(30) {
		t.Fatalf("split ignored its budget")
	}
	if res.Status == core.StatusUnsat {
		t.Fatalf("x·a = a·x is satisfiable (e.g. x = ε)")
	}
}
