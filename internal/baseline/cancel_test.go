package baseline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lia"
	"repro/internal/strcon"
)

func TestEnumCancellation(t *testing.T) {
	// A digit-heavy instance gives the enumeration an 11k-word alphabet
	// closure per variable; without cancellation the candidate budget
	// alone would keep it busy far longer than the cancel delay.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	n := prob.NewIntVar("n")
	m := prob.NewIntVar("m")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.ToNum{N: m, X: y},
		&strcon.Arith{F: lia.Eq(lia.V(n), lia.V(m).ScaleInt(3))},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(100000))},
	)
	ec := engine.Background()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ec.Cancel()
	}()
	start := time.Now()
	res := SolveEnum(prob, EnumOptions{MaxLen: 4}, ec)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled enumeration took %v", d)
	}
	if res.Status != core.StatusUnknown {
		t.Fatalf("got %v, want unknown from a cancelled search", res.Status)
	}
}

func TestSplitCancellation(t *testing.T) {
	// "a"x = x"b" makes pure Nielsen splitting diverge; with the node
	// and depth budgets lifted, only cancellation can stop the search.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("a"), strcon.TV(x)),
		R: strcon.T(strcon.TV(x), strcon.TC("b")),
	})
	ec := engine.Background()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ec.Cancel()
	}()
	start := time.Now()
	res := SolveSplit(prob, SplitOptions{MaxNodes: 1 << 30, MaxDepth: 1 << 20}, ec)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled splitting took %v", d)
	}
	if res.Status != core.StatusUnknown {
		t.Fatalf("got %v, want unknown from a cancelled search", res.Status)
	}
}

func TestBaselineDeadlineClassifiesAsTimeout(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("a"), strcon.TV(x)),
		R: strcon.T(strcon.TV(x), strcon.TC("b")),
	})
	ec := engine.WithTimeout(100 * time.Millisecond)
	res := SolveSplit(prob, SplitOptions{MaxNodes: 1 << 30, MaxDepth: 1 << 20}, ec)
	if res.Status != core.StatusUnknown {
		t.Fatalf("got %v, want unknown", res.Status)
	}
	if !ec.TimedOut() {
		t.Fatalf("cause = %v, want deadline", ec.Cause())
	}
}
