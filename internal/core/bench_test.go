package core

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/flatten"
	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// buildLuhnBench replicates the checkLuhn generator of internal/bench
// (which cannot be imported here: bench imports core). It is the
// Table 3 workload: a k-digit nonzero string whose Luhn checksum ends
// in "0".
func buildLuhnBench(k int) *strcon.Problem {
	prob := strcon.NewProblem()
	value := prob.NewStrVar("value0")
	prob.Add(&strcon.Membership{X: value, A: regex.MustCompile("[1-9]+"), Pattern: "[1-9]+"})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(value), int64(k))})
	chars := make([]strcon.Var, k)
	term := make(strcon.Term, k)
	for i := range chars {
		chars[i] = prob.NewStrVar(fmt.Sprintf("c%d", i))
		term[i] = strcon.TV(chars[i])
		prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(chars[i]), 1)})
	}
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(value)), R: term})
	sum := lia.NewLin()
	for i := 0; i < k; i++ {
		d := prob.NewIntVar(fmt.Sprintf("d%d", i))
		prob.Add(&strcon.ToNum{N: d, X: chars[i]})
		if (k-1-i)%2 == 0 {
			sum.AddTermInt(d, 1)
			continue
		}
		e := prob.NewIntVar(fmt.Sprintf("e%d", i))
		dbl := lia.V(d).ScaleInt(2)
		prob.Add(&strcon.Arith{F: lia.Or(
			lia.And(lia.Ge(dbl.Clone(), lia.Const(10)), lia.Eq(lia.V(e), dbl.Clone().AddConst(-9))),
			lia.And(lia.Le(dbl.Clone(), lia.Const(9)), lia.Eq(lia.V(e), dbl.Clone())),
		)})
		sum.AddTermInt(e, 1)
	}
	total := prob.NewIntVar("sum")
	prob.Add(&strcon.Arith{F: lia.Eq(lia.V(total), sum)})
	sumStr := prob.NewStrVar("sumStr")
	pre := prob.NewStrVar("sumPre")
	prob.Add(&strcon.ToStr{N: total, X: sumStr})
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(sumStr)),
		R: strcon.T(strcon.TV(pre), strcon.TC("0")),
	})
	return prob
}

// benchLuhn is the solver-level hot path: the full decision procedure
// on one checkLuhn instance (the Table 3 workload).
func benchLuhn(b *testing.B, k int, o Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prob := buildLuhnBench(k)
		res := SolveCtx(prob, o, engine.Background())
		if res.Status != StatusSat {
			b.Fatalf("luhn-%d: got %v, want sat", k, res.Status)
		}
	}
}

// BenchmarkRefineLoop measures the refinement loop end to end, cold
// (fresh lia solver per round) versus incremental (persistent sessions).
func BenchmarkRefineLoop(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("cold/luhn-%02d", k), func(b *testing.B) {
			benchLuhn(b, k, Options{Incremental: IncrementalOff})
		})
		b.Run(fmt.Sprintf("incremental/luhn-%02d", k), func(b *testing.B) {
			benchLuhn(b, k, Options{})
		})
	}
}

// BenchmarkFlattenRound measures one round's flattening of a checkLuhn
// branch (formula construction only, no solving).
func BenchmarkFlattenRound(b *testing.B) {
	for _, k := range []int{6, 10} {
		b.Run(fmt.Sprintf("luhn-%02d", k), func(b *testing.B) {
			prob := buildLuhnBench(k)
			prob.Prepare()
			params := flatten.Params{M: 5, Loops: 2, LoopLen: 2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bp := prob.WithConstraints(prob.Constraints)
				fl := flatten.Flatten(bp, bp.Constraints, params, engine.Background())
				if lia.FormulaSize(fl.Formula) == 0 {
					b.Fatal("empty flattening")
				}
			}
		})
	}
}
