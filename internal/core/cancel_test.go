package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/lia"
	"repro/internal/strcon"
)

// hardProblem builds an instance the refinement loop cannot settle
// quickly (an overlapping-equation system whose flattenings keep
// growing), so a cancelled solve demonstrably aborts mid-search.
func hardProblem() *strcon.Problem {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	z := prob.NewStrVar("z")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x), strcon.TV(y)), R: strcon.T(strcon.TV(y), strcon.TV(z))},
		&strcon.WordNeq{L: strcon.T(strcon.TV(x), strcon.TV(z)), R: strcon.T(strcon.TV(z), strcon.TV(x))},
		&strcon.Arith{F: lia.Ge(lia.V(prob.LenVar(x)), lia.Const(4))},
	)
	return prob
}

func TestCancellationStopsSolve(t *testing.T) {
	before := fault.Snapshot()
	defer fault.CheckLeaks(t, before)
	ec := engine.Background()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ec.Cancel()
	}()
	start := time.Now()
	res := SolveCtx(hardProblem(), Options{MaxRounds: 50}, ec)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled solve took %v, want prompt return", elapsed)
	}
	if res.Status == StatusSat {
		t.Fatalf("cancelled solve claims sat")
	}
	if res.Stats == nil {
		t.Fatalf("Result.Stats must never be nil")
	}
	if ec.TimedOut() {
		t.Fatalf("cancellation misclassified as a deadline expiry")
	}
}

func TestCancellationStopsParallelSolve(t *testing.T) {
	before := fault.Snapshot()
	defer fault.CheckLeaks(t, before)
	ec := engine.Background()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ec.Cancel()
	}()
	start := time.Now()
	res := SolveCtx(hardProblem(), Options{MaxRounds: 50, Parallel: 4}, ec)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled parallel solve took %v", d)
	}
	if res.Status == StatusSat {
		t.Fatalf("cancelled solve claims sat")
	}
}

// orProblem builds a disjunctive instance with several case-split
// branches where a middle branch is the satisfiable one.
func orProblem() *strcon.Problem {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	var alts []strcon.Constraint
	for _, k := range []int64{7, 21, 52, 90} {
		alts = append(alts, &strcon.Arith{F: lia.EqConst(n, k)})
	}
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)},
		// Only n = 52 survives the extra parity-free pin below.
		&strcon.OrCon{Args: alts},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(30))},
		&strcon.Arith{F: lia.Le(lia.V(n), lia.Const(60))},
	)
	return prob
}

// render flattens a result to a canonical comparable string.
func render(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "status=%v rounds=%d oa=%v vf=%v\n",
		res.Status, res.Rounds, res.OverApproxDecided, res.ValidationFailed)
	if res.Model != nil {
		keys := make([]int, 0, len(res.Model.Str))
		for k := range res.Model.Str {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "s%d=%q\n", k, res.Model.Str[strcon.Var(k)])
		}
	}
	return b.String()
}

// wordOrProblem is a second decidable disjunctive instance: the
// satisfiable disjunct is a word equation rather than an arithmetic
// pin, so branch racing crosses the flattening path too.
func wordOrProblem() *strcon.Problem {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	var alts []strcon.Constraint
	for _, w := range []string{"aa", "cd", "zz"} {
		alts = append(alts, &strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC(w))})
	}
	prob.Add(
		&strcon.OrCon{Args: alts},
		&strcon.WordEq{
			L: strcon.T(strcon.TV(y)),
			R: strcon.T(strcon.TC("c"), strcon.TV(x), strcon.TC("d")),
		},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(y), 4)},
		&strcon.WordNeq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("aa"))},
	)
	return prob
}

func TestParallelMatchesSequential(t *testing.T) {
	builders := []func() *strcon.Problem{orProblem, wordOrProblem}
	for bi, build := range builders {
		seq := Solve(build(), Options{Timeout: 30 * time.Second})
		for _, workers := range []int{2, 4} {
			par := Solve(build(), Options{Timeout: 30 * time.Second, Parallel: workers})
			if got, want := render(par), render(seq); got != want {
				t.Errorf("problem %d: parallel(%d) result differs from sequential:\n%s\nvs\n%s",
					bi, workers, got, want)
			}
		}
	}
}

func TestParallelIsRunToRunDeterministic(t *testing.T) {
	first := render(Solve(orProblem(), Options{Timeout: 30 * time.Second, Parallel: 4}))
	for i := 0; i < 3; i++ {
		again := render(Solve(orProblem(), Options{Timeout: 30 * time.Second, Parallel: 4}))
		if again != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, again, first)
		}
	}
}

func TestStatsTreePopulated(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(n, 1234567)},
	)
	res := Solve(prob, Options{Timeout: 30 * time.Second})
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("nil stats")
	}
	if got := st.Counter("rounds"); got != int64(res.Rounds) {
		t.Fatalf("rounds counter = %d, Result.Rounds = %d", got, res.Rounds)
	}
	if st.Total("pivots") == 0 {
		t.Fatalf("no simplex pivots recorded anywhere in the tree")
	}
	if st.Total("decisions") == 0 {
		t.Fatalf("no SAT decisions recorded anywhere in the tree")
	}
	var b strings.Builder
	st.Write(&b, "solve")
	out := b.String()
	for _, want := range []string{"rounds", "round0", "flatten", "overapprox", "time.total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats render missing %q:\n%s", want, out)
		}
	}
}
