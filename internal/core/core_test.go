package core

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

func opts() Options {
	return Options{Timeout: 30 * time.Second}
}

// TestToyPhi is the paper's motivating formula Φ (§1):
//
//	"0"x = x"0" ∧ toNum(x) = toNum(y) ∧ |y| > |x| > 1 ∧ 1000 < |y|
//
// which no state-of-the-art solver handled within 10 minutes while the
// paper's procedure takes seconds.
func TestToyPhi(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	nx := prob.NewIntVar("nx")
	ny := prob.NewIntVar("ny")
	prob.Add(
		&strcon.WordEq{
			L: strcon.T(strcon.TC("0"), strcon.TV(x)),
			R: strcon.T(strcon.TV(x), strcon.TC("0")),
		},
		&strcon.ToNum{N: nx, X: x},
		&strcon.ToNum{N: ny, X: y},
		&strcon.Arith{F: lia.Eq(lia.V(nx), lia.V(ny))},
		&strcon.Arith{F: lia.Gt(lia.V(prob.LenVar(y)), lia.V(prob.LenVar(x)))},
		&strcon.Arith{F: lia.Gt(lia.V(prob.LenVar(x)), lia.Const(1))},
		&strcon.Arith{F: lia.Gt(lia.V(prob.LenVar(y)), lia.Const(1000))},
	)
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("Φ: got %v (rounds=%d, validationFailed=%v), want sat",
			res.Status, res.Rounds, res.ValidationFailed)
	}
	if len(res.Model.Str[y]) <= 1000 {
		t.Fatalf("|y| = %d, want > 1000", len(res.Model.Str[y]))
	}
	if len(res.Model.Str[x]) <= 1 {
		t.Fatalf("|x| = %d, want > 1", len(res.Model.Str[x]))
	}
}

func TestOverApproxCatchesLengthContradiction(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x), strcon.TV(y)), R: strcon.T(strcon.TC("ab"))},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 5)},
	)
	res := Solve(prob, opts())
	if res.Status != StatusUnsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
	if !res.OverApproxDecided {
		t.Errorf("length contradiction should be caught by the over-approximation")
	}
}

func TestOverApproxCatchesDigitContradiction(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(n, 5)},
		&strcon.Membership{X: x, A: regex.MustCompile("(a|b)+")},
	)
	res := Solve(prob, opts())
	if res.Status != StatusUnsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
}

func TestOverApproxCatchesCharCountContradiction(t *testing.T) {
	// "0"x = x"1" has no solution: the sides have different character
	// counts (the Parikh abstraction of the equation).
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TC("0"), strcon.TV(x)),
		R: strcon.T(strcon.TV(x), strcon.TC("1")),
	})
	res := Solve(prob, opts())
	if res.Status != StatusUnsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
	if !res.OverApproxDecided {
		t.Errorf("character-count contradiction should be caught by the over-approximation")
	}
}

func TestSatWithRegexAndArith(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(
		&strcon.Membership{X: x, A: regex.MustCompile("(ab|cd)+")},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 6)},
	)
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	s := res.Model.Str[x]
	if len(s) != 6 || !regex.Matches(regex.MustCompile("(ab|cd)+"), s) {
		t.Fatalf("model %q invalid", s)
	}
}

func TestToNumRoundTrip(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	m := prob.NewIntVar("m")
	y := prob.NewStrVar("y")
	// n = toNum(x), x has length 3, n = 2*m, m = 26, y = toStr(n).
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 3)},
		&strcon.Arith{F: lia.Eq(lia.V(n), lia.V(m).ScaleInt(2))},
		&strcon.Arith{F: lia.EqConst(m, 26)},
		&strcon.ToStr{N: n, X: y},
	)
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if res.Model.Str[x] != "052" {
		t.Fatalf("x = %q, want 052", res.Model.Str[x])
	}
	if res.Model.Str[y] != "52" {
		t.Fatalf("y = %q, want 52", res.Model.Str[y])
	}
	if res.Model.Int.Value(n).Cmp(big.NewInt(52)) != 0 {
		t.Fatalf("n = %v", res.Model.Int.Value(n))
	}
}

func TestRefinementGrowsNumericPFA(t *testing.T) {
	// A 7-digit value needs m > 5, i.e. at least one refinement round.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(n, 1234567)},
	)
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if res.Rounds < 2 {
		t.Errorf("expected at least 2 rounds, got %d", res.Rounds)
	}
	if got := res.Model.Str[x]; strcon.ToNumValue(got).Int64() != 1234567 {
		t.Fatalf("x = %q", got)
	}
}

func TestCharAtDesugar(t *testing.T) {
	// y = charAt("hello", 1) => y = "e".
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("hello"))})
	prob.Add(prob.CharAt(y, x, lia.Const(1)))
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if res.Model.Str[y] != "e" {
		t.Fatalf("y = %q, want e", res.Model.Str[y])
	}
}

func TestSubstrDesugar(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(x)), R: strcon.T(strcon.TC("abcde"))})
	prob.Add(prob.Substr(y, x, lia.Const(2), lia.Const(3)))
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if res.Model.Str[y] != "cde" {
		t.Fatalf("y = %q, want cde", res.Model.Str[y])
	}
}

func TestTimeoutReturnsUnknown(t *testing.T) {
	// An instance the under-approximation cannot decide quickly, with a
	// tiny timeout, must come back unknown (not hang).
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	y := prob.NewStrVar("y")
	z := prob.NewStrVar("z")
	prob.Add(
		&strcon.WordEq{L: strcon.T(strcon.TV(x), strcon.TV(y)), R: strcon.T(strcon.TV(y), strcon.TV(z))},
		&strcon.WordNeq{L: strcon.T(strcon.TV(x), strcon.TV(z)), R: strcon.T(strcon.TV(z), strcon.TV(x))},
		&strcon.Arith{F: lia.Ge(lia.V(prob.LenVar(x)), lia.Const(4))},
	)
	start := time.Now()
	res := Solve(prob, Options{Timeout: 300 * time.Millisecond})
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("solve took %v despite 300ms timeout", d)
	}
	_ = res // any status is acceptable; the point is bounded time
}

func TestPrefixSuffixContains(t *testing.T) {
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	prob.Add(prob.PrefixOf(strcon.T(strcon.TC("ab")), x))
	prob.Add(prob.SuffixOf(strcon.T(strcon.TC("yz")), x))
	prob.Add(prob.Contains(x, strcon.T(strcon.TC("m"))))
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 5)})
	res := Solve(prob, opts())
	if res.Status != StatusSat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	s := res.Model.Str[x]
	if len(s) != 5 || s[:2] != "ab" || s[3:] != "yz" || s[2] != 'm' {
		t.Fatalf("x = %q", s)
	}
}

func TestUnsatNumericRange(t *testing.T) {
	// toNum(x) = n, |x| = 2, n >= 100 is unsatisfiable.
	prob := strcon.NewProblem()
	x := prob.NewStrVar("x")
	n := prob.NewIntVar("n")
	prob.Add(
		&strcon.ToNum{N: n, X: x},
		&strcon.Arith{F: lia.EqConst(prob.LenVar(x), 2)},
		&strcon.Arith{F: lia.Ge(lia.V(n), lia.Const(100))},
	)
	res := Solve(prob, opts())
	if res.Status != StatusUnsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
}
