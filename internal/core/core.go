// Package core implements the paper's two-step decision procedure (§4,
// §9): an over-approximation gate that can prove UNSAT, followed by a
// refinement loop of PFA-based under-approximations that can prove SAT.
// Every SAT answer is validated against the concrete evaluator before
// being reported (the validator of §9).
package core

import (
	"time"

	"repro/internal/flatten"
	"repro/internal/lia"
	"repro/internal/overapprox"
	"repro/internal/strcon"
)

// Status is the solver verdict.
type Status int

// Solver verdicts.
const (
	StatusUnknown Status = iota
	StatusSat
	StatusUnsat
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	}
	return "?"
}

// Options configure the decision procedure. The zero value uses
// defaults: over-approximation on, three refinement rounds starting
// from the paper's (m, p) = (5, 2) with q from a static scan.
type Options struct {
	// Timeout bounds the whole solve; zero means none.
	Timeout time.Duration
	// MaxRounds bounds under-approximation refinement rounds.
	MaxRounds int
	// InitialParams overrides the starting PFA sizes when non-zero.
	InitialParams flatten.Params
	// SkipOverApprox disables the UNSAT gate (for ablation studies).
	SkipOverApprox bool
	// Lia tunes the arithmetic backend (budgets, not deadline).
	Lia lia.Options
}

// Result is the solver outcome. Model is non-nil exactly when Status is
// StatusSat, and has been validated by the concrete evaluator.
type Result struct {
	Status Status
	Model  *strcon.Assignment
	// Rounds is the number of under-approximation rounds executed.
	Rounds int
	// OverApproxDecided reports that the over-approximation already
	// settled the instance (always an UNSAT).
	OverApproxDecided bool
	// ValidationFailed flags an internal soundness problem: a decoded
	// model did not pass the validator (the answer degrades to
	// unknown).
	ValidationFailed bool
}

// Solve decides the problem. The problem is Prepared in place.
func Solve(prob *strcon.Problem, opts Options) Result {
	prob.Prepare()

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	liaOpts := func() *lia.Options {
		o := opts.Lia
		o.Deadline = deadline
		return &o
	}
	original := prob.Constraints

	// abstractUnsat checks a constraint set with the over-approximation.
	abstractUnsat := func(cons []strcon.Constraint) bool {
		prob.Constraints = cons
		oa := overapprox.Abstract(prob)
		prob.Constraints = original
		o := liaOpts()
		o.OnModel = oa.OnModel
		res, _ := lia.Solve(oa.Formula, o)
		return res == lia.ResUnsat
	}

	if !opts.SkipOverApprox && abstractUnsat(original) {
		return Result{Status: StatusUnsat, OverApproxDecided: true}
	}

	// Case splitting: enumerate the top-level disjunction structure
	// into conjunctive branches, pruning with the over-approximation
	// (this plays the role of the DPLL core "trying another solution
	// branch" in §9). Each surviving branch is then attacked by the
	// PFA refinement loop, round-robin over rounds.
	branches, truncated := splitBranches(prob, original, opts, abstractUnsat, deadline)
	if len(branches) == 0 {
		if truncated || opts.SkipOverApprox {
			return Result{Status: StatusUnknown}
		}
		// Every branch refuted by a sound over-approximation.
		return Result{Status: StatusUnsat, OverApproxDecided: true}
	}

	params := opts.InitialParams
	if params.M == 0 {
		params = flatten.Params{M: 5, Loops: 2, LoopLen: 2}
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 3
	}

	out := Result{Status: StatusUnknown}
	for round := 0; round < maxRounds; round++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		out.Rounds = round + 1
		for _, branch := range branches {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				break
			}
			prob.Constraints = branch
			fl := flatten.Flatten(prob, params)
			o := liaOpts()
			o.OnModel = fl.OnModel
			res, m := lia.Solve(fl.Formula, o)
			prob.Constraints = original
			if res != lia.ResSat {
				// "No solution within the current PFA domains" or
				// unknown; other branches and larger parameters remain.
				continue
			}
			a := fl.Decode(m)
			if prob.Eval(a) {
				out.Status = StatusSat
				out.Model = a
				return out
			}
			out.ValidationFailed = true
			return out
		}
		params = params.Refine()
	}
	return out
}

// maxBranches bounds the case-split enumeration.
const maxBranches = 64

// splitBranches expands top-level OrCon constraints into conjunctive
// branches, pruning refuted prefixes with the over-approximation.
// truncated reports that the bound was hit (so an all-branches-refuted
// outcome must not be read as UNSAT).
func splitBranches(prob *strcon.Problem, cons []strcon.Constraint, opts Options,
	abstractUnsat func([]strcon.Constraint) bool, deadline time.Time) ([][]strcon.Constraint, bool) {
	var base []strcon.Constraint
	var ors []*strcon.OrCon
	for _, c := range cons {
		if o, ok := c.(*strcon.OrCon); ok {
			ors = append(ors, o)
			continue
		}
		base = append(base, c)
	}
	if len(ors) == 0 {
		return [][]strcon.Constraint{cons}, false
	}
	var out [][]strcon.Constraint
	truncated := false
	var rec func(d int, chosen []strcon.Constraint)
	rec = func(d int, chosen []strcon.Constraint) {
		if truncated {
			return
		}
		if len(out) >= maxBranches {
			truncated = true
			return
		}
		if d == len(ors) {
			branch := make([]strcon.Constraint, 0, len(base)+len(chosen))
			branch = append(branch, base...)
			branch = append(branch, chosen...)
			out = append(out, branch)
			return
		}
		for _, disjunct := range ors[d].Args {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				truncated = true
				return
			}
			next := append(chosen[:len(chosen):len(chosen)], flattenAnd(disjunct)...)
			if !opts.SkipOverApprox {
				// Prune: base + chosen prefix + remaining Ors.
				candidate := make([]strcon.Constraint, 0, len(base)+len(next)+len(ors)-d-1)
				candidate = append(candidate, base...)
				candidate = append(candidate, next...)
				for _, o := range ors[d+1:] {
					candidate = append(candidate, o)
				}
				if abstractUnsat(candidate) {
					continue
				}
			}
			rec(d+1, next)
		}
	}
	rec(0, nil)
	return out, truncated
}

// flattenAnd expands nested conjunctions into a flat constraint list.
func flattenAnd(c strcon.Constraint) []strcon.Constraint {
	if a, ok := c.(*strcon.AndCon); ok {
		var out []strcon.Constraint
		for _, arg := range a.Args {
			out = append(out, flattenAnd(arg)...)
		}
		return out
	}
	return []strcon.Constraint{c}
}

// StaticLoopLen mirrors the paper's "q obtained from our internal
// static analysis": a loop length derived from the longest constant
// string in the constraints, clamped to a practical range. The default
// strategy starts at the smaller (2,2) shape — which already represents
// every word of length <= 5 exactly and keeps synchronization products
// small — and relies on refinement to grow; this helper is exposed for
// callers that want the paper's variant via Options.InitialParams.
func StaticLoopLen(prob *strcon.Problem) int {
	longest := 0
	var scanTerm func(t strcon.Term)
	scanTerm = func(t strcon.Term) {
		for _, it := range t {
			if !it.IsVar && len(it.Const) > longest {
				longest = len(it.Const)
			}
		}
	}
	var scan func(c strcon.Constraint)
	scan = func(c strcon.Constraint) {
		switch t := c.(type) {
		case *strcon.WordEq:
			scanTerm(t.L)
			scanTerm(t.R)
		case *strcon.WordNeq:
			scanTerm(t.L)
			scanTerm(t.R)
		case *strcon.AndCon:
			for _, a := range t.Args {
				scan(a)
			}
		case *strcon.OrCon:
			for _, a := range t.Args {
				scan(a)
			}
		}
	}
	for _, c := range prob.Constraints {
		scan(c)
	}
	switch {
	case longest < 2:
		return 2
	case longest > 6:
		return 6
	default:
		return longest
	}
}
