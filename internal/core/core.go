// Package core implements the paper's two-step decision procedure (§4,
// §9): an over-approximation gate that can prove UNSAT, followed by a
// refinement loop of PFA-based under-approximations that can prove SAT.
// Every SAT answer is validated against the concrete evaluator before
// being reported (the validator of §9).
//
// The refinement loop can race the case-split branches of a round on
// worker goroutines (Options.Parallel). The portfolio is deterministic:
// the winner is the lowest-indexed branch whose flattening is
// satisfiable, exactly the branch the sequential scan would have
// stopped at, so verdicts and models are identical run to run and
// identical between the sequential and parallel modes.
package core

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/flatten"
	"repro/internal/lia"
	"repro/internal/overapprox"
	"repro/internal/strcon"
)

// Status is the solver verdict.
type Status int

// Solver verdicts.
const (
	StatusUnknown Status = iota
	StatusSat
	StatusUnsat
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	}
	return "?"
}

// Options configure the decision procedure. The zero value uses
// defaults: over-approximation on, three refinement rounds starting
// from the paper's (m, p) = (5, 2) with q from a static scan.
type Options struct {
	// Timeout bounds the whole solve when calling Solve; zero means
	// none. SolveCtx ignores it (the context carries the deadline).
	Timeout time.Duration
	// MaxRounds bounds under-approximation refinement rounds.
	MaxRounds int
	// InitialParams overrides the starting PFA sizes when non-zero.
	InitialParams flatten.Params
	// SkipOverApprox disables the UNSAT gate (for ablation studies).
	SkipOverApprox bool
	// OverApproxOnly stops after the over-approximation phase: the gate
	// plus the case-split enumeration (whose prefixes are pruned by the
	// same abstraction) may prove UNSAT, and anything else is UNKNOWN
	// with reason "rounds exhausted". This is the cheap refutation-only
	// engine the portfolio races alongside the refinement loop.
	OverApproxOnly bool
	// Parallel races the case-split branches of each refinement round
	// on up to this many worker goroutines. Values <= 1 solve
	// sequentially. The verdict and model are identical either way.
	Parallel int
	// Incremental selects the refinement engine. The zero value
	// (IncrementalOn) keeps one arithmetic solver session alive per
	// case-split branch, so round r+1 reuses round r's learned
	// clauses, activity and simplex state under assumption literals.
	// IncrementalOff re-solves every round cold (the A/B baseline).
	Incremental IncrementalMode
	// Lia tunes the arithmetic backend (budgets, not deadline).
	Lia lia.Options
}

// IncrementalMode toggles the incremental refinement engine.
type IncrementalMode int

// Incremental engine modes. The zero value is on.
const (
	IncrementalOn IncrementalMode = iota
	IncrementalOff
)

// Result is the solver outcome. Model is non-nil exactly when Status is
// StatusSat, and has been validated by the concrete evaluator.
type Result struct {
	Status Status
	Model  *strcon.Assignment
	// Rounds is the number of under-approximation rounds executed.
	Rounds int
	// OverApproxDecided reports that the over-approximation already
	// settled the instance (always an UNSAT).
	OverApproxDecided bool
	// ValidationFailed flags an internal soundness problem: a decoded
	// model did not pass the validator (the answer degrades to
	// unknown).
	ValidationFailed bool
	// Reason classifies an UNKNOWN verdict for callers: "deadline",
	// "cancelled", "budget: <site>", "panic: <value>", "validation
	// failed", or "rounds exhausted". Empty for SAT/UNSAT.
	Reason string
	// Fault is the diagnostic of a panic contained at the solve or
	// branch boundary; nil when nothing panicked.
	Fault *fault.Diagnostic
	// Backend names the engine that produced the verdict when the solve
	// went through the backend registry or the portfolio scheduler;
	// empty for a direct core solve.
	Backend string
	// Stats is the statistics tree of the solve (never nil).
	Stats *engine.Stats
}

// Solve decides the problem under opts.Timeout. The problem is
// Prepared in place.
func Solve(prob *strcon.Problem, opts Options) Result {
	return SolveCtx(prob, opts, engine.WithTimeout(opts.Timeout))
}

// SolveCtx decides the problem under the given context's deadline and
// cancellation. The problem is Prepared in place.
//
// SolveCtx is a panic boundary: a contract panic anywhere in the
// solver degrades this one solve to UNKNOWN with a Fault diagnostic
// instead of killing the process (parallel branch goroutines have
// their own boundary in raceBranches — a goroutine panic would bypass
// this one).
func SolveCtx(prob *strcon.Problem, opts Options, ec *engine.Ctx) Result {
	if ec == nil {
		ec = engine.Background()
	}
	var res Result
	if d := fault.Contain("core.Solve", func() { res = solveCtx(prob, opts, ec) }); d != nil {
		ec.Stats().Add("fault.contained", 1)
		res = Result{Status: StatusUnknown, Reason: "panic: " + d.Value, Fault: d, Stats: ec.Stats()}
	}
	return res
}

func solveCtx(prob *strcon.Problem, opts Options, ec *engine.Ctx) Result {
	st := ec.Stats()
	stopTotal := st.Time("time.total")
	defer stopTotal()

	prob.Prepare()
	original := prob.Constraints

	// abstractUnsat checks a constraint set with the over-approximation.
	// The branch enumeration of splitBranches probes heavily overlapping
	// constraint sets (shared prefixes plus one candidate conjunct), so
	// results are memoized per solve, keyed by the canonical identity of
	// the slice. All callers run on the solve goroutine.
	memo := make(map[string]bool)
	memoID := make(map[strcon.Constraint]int)
	memoKey := func(cons []strcon.Constraint) string {
		// Constraint objects are shared across the enumeration, so a
		// per-solve identity numbering (first-seen order, which is
		// deterministic) canonicalizes a slice cheaply.
		key := make([]byte, 0, 4*len(cons))
		for _, c := range cons {
			id, ok := memoID[c]
			if !ok {
				id = len(memoID)
				memoID[c] = id
			}
			key = strconv.AppendInt(key, int64(id), 32)
			key = append(key, '.')
		}
		return string(key)
	}
	abstractUnsat := func(cons []strcon.Constraint) bool {
		key := memoKey(cons)
		if v, ok := memo[key]; ok {
			st.Add("cache.overapprox.hit", 1)
			return v
		}
		st.Add("cache.overapprox.miss", 1)
		oa := overapprox.Abstract(prob, cons, ec)
		o := opts.Lia
		o.Ctx = ec
		o.OnModel = oa.OnModel
		res, _ := lia.Solve(oa.Formula, &o)
		v := res == lia.ResUnsat
		memo[key] = v
		return v
	}

	if !opts.SkipOverApprox && abstractUnsat(original) {
		return Result{Status: StatusUnsat, OverApproxDecided: true, Stats: st}
	}

	// Case splitting: enumerate the top-level disjunction structure
	// into conjunctive branches, pruning with the over-approximation
	// (this plays the role of the DPLL core "trying another solution
	// branch" in §9). Each surviving branch is then attacked by the
	// PFA refinement loop, round-robin over rounds.
	branches, truncated := splitBranches(original, opts, abstractUnsat, ec)
	st.Add("branches", int64(len(branches)))
	if len(branches) == 0 {
		if truncated || opts.SkipOverApprox {
			r := Result{Status: StatusUnknown, Stats: st}
			r.Reason = unknownReason(ec, &r)
			return r
		}
		// Every branch refuted by a sound over-approximation.
		return Result{Status: StatusUnsat, OverApproxDecided: true, Stats: st}
	}

	params := opts.InitialParams
	if params.M == 0 {
		params = flatten.Params{M: 5, Loops: 2, LoopLen: 2}
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 3
	}

	if opts.OverApproxOnly {
		// The abstraction could not refute every branch; refinement is
		// someone else's job (the portfolio races a refining backend).
		r := Result{Status: StatusUnknown, Stats: st}
		r.Reason = unknownReason(ec, &r)
		return r
	}

	states := make([]*branchState, len(branches))
	for i, b := range branches {
		states[i] = &branchState{branch: b}
	}

	out := Result{Status: StatusUnknown, Stats: st}
	for round := 0; round < maxRounds; round++ {
		if ec.Expired() {
			break
		}
		out.Rounds = round + 1
		st.Add("rounds", 1)
		roundCtx := ec.Child(fmt.Sprintf("round%d", round))
		var win *branchOutcome
		if opts.Parallel > 1 && len(branches) > 1 {
			var bf *fault.Diagnostic
			win, bf = raceBranches(prob, states, params, opts, roundCtx)
			if bf != nil && out.Fault == nil {
				out.Fault = bf
			}
		} else {
			win = runBranchesSeq(prob, states, params, opts, roundCtx)
		}
		if win != nil {
			if win.validated {
				out.Status = StatusSat
				out.Model = win.model
				return out
			}
			out.ValidationFailed = true
			out.Reason = "validation failed"
			return out
		}
		params = params.Refine()
	}
	out.Reason = unknownReason(ec, &out)
	return out
}

// UnknownReason classifies an UNKNOWN verdict for a context-driven
// engine with no richer result state: the standard taxonomy minus the
// result-only causes (validation failure, contained panic). Backends
// wrapping the baseline solvers use it so their UNKNOWNs speak the
// same language as the core's.
func UnknownReason(ec *engine.Ctx) string {
	var r Result
	return unknownReason(ec, &r)
}

// unknownReason classifies an UNKNOWN verdict by why the solve gave
// up, in decreasing order of specificity.
func unknownReason(ec *engine.Ctx, r *Result) string {
	if r.ValidationFailed {
		return "validation failed"
	}
	switch ec.Cause() {
	case engine.CauseBudget:
		if br := ec.BudgetReason(); br != "" {
			return br
		}
		return "budget"
	case engine.CauseDeadline:
		return "deadline"
	case engine.CauseCancelled:
		return "cancelled"
	}
	if r.Fault != nil {
		return "panic: " + r.Fault.Value
	}
	return "rounds exhausted"
}

// branchState is the per-branch state the refinement loop keeps across
// rounds: the case-split conjuncts, a private problem clone (its own
// lia pool, growing round over round), and — with the incremental
// engine — the persistent arithmetic session.
type branchState struct {
	branch []strcon.Constraint
	bp     *strcon.Problem
	sess   *lia.Session
}

// branchOutcome is the result of flattening and solving one case-split
// branch at one parameter level. hit reports that the flattening was
// satisfiable (the sequential scan stops there, validated or not).
type branchOutcome struct {
	hit       bool
	validated bool
	model     *strcon.Assignment
}

// solveBranch flattens one branch on a private clone of the problem
// (its own lia pool, so concurrent branches allocate identically
// numbered variables) and validates any model against the full original
// problem.
//
// With the incremental engine the clone and the arithmetic session
// persist on the branch state across rounds: the flattening of round
// r+1 enters the same solver under a fresh activation literal, reusing
// learned clauses, activity and simplex state (see lia.Session). With
// IncrementalOff every round re-solves cold from a fresh clone.
func solveBranch(prob *strcon.Problem, bs *branchState,
	params flatten.Params, opts Options, ec *engine.Ctx) branchOutcome {
	var res lia.Result
	var m lia.Model
	var fl *flatten.Result
	if opts.Incremental == IncrementalOn {
		if bs.bp == nil {
			bs.bp = prob.WithConstraints(bs.branch)
		}
		fl = flatten.Flatten(bs.bp, bs.branch, params, ec)
		if bs.sess == nil {
			o := opts.Lia
			o.Ctx = ec
			bs.sess = lia.NewSession(&o)
		}
		res, m = bs.sess.SolveRound(fl.Formula, fl.OnModel, ec)
	} else {
		bp := prob.WithConstraints(bs.branch)
		fl = flatten.Flatten(bp, bs.branch, params, ec)
		o := opts.Lia
		o.Ctx = ec
		o.OnModel = fl.OnModel
		res, m = lia.Solve(fl.Formula, &o)
	}
	if res != lia.ResSat {
		// "No solution within the current PFA domains" or unknown;
		// other branches and larger parameters remain.
		return branchOutcome{}
	}
	a, err := fl.Decode(m)
	if err != nil {
		// The flattening was satisfiable but its model cannot be
		// materialized (value past int64, decode cap). Treat it like a
		// failed validation: the verdict degrades to UNKNOWN, it never
		// becomes an UNSAT.
		ec.Stats().Add("decode.rejected", 1)
		return branchOutcome{hit: true}
	}
	if prob.Eval(a) {
		return branchOutcome{hit: true, validated: true, model: a}
	}
	return branchOutcome{hit: true}
}

// runBranchesSeq scans the branches in order and returns the first hit,
// or nil when the whole round comes up dry.
func runBranchesSeq(prob *strcon.Problem, states []*branchState,
	params flatten.Params, opts Options, ec *engine.Ctx) *branchOutcome {
	for i, bs := range states {
		if ec.Expired() {
			return nil
		}
		out := solveBranch(prob, bs, params, opts, ec.Child(fmt.Sprintf("branch%d", i)))
		if out.hit {
			return &out
		}
	}
	return nil
}

// raceBranches solves the branches of one round concurrently on up to
// opts.Parallel workers. Each branch gets a child context; when branch
// i hits, every sibling with a higher index is cancelled (their results
// can no longer matter), while lower-indexed branches run to completion
// so the final winner — the lowest-indexed hit — is exactly the branch
// the sequential scan would have returned.
func raceBranches(prob *strcon.Problem, states []*branchState,
	params flatten.Params, opts Options, ec *engine.Ctx) (*branchOutcome, *fault.Diagnostic) {
	n := len(states)
	workers := opts.Parallel
	if workers > n {
		workers = n
	}
	attempts := make([]*engine.Ctx, n)
	for i := range attempts {
		attempts[i] = ec.Child(fmt.Sprintf("branch%d", i))
	}
	results := make([]branchOutcome, n)
	var next atomic.Int64
	var mu sync.Mutex
	winner := n
	var firstFault *fault.Diagnostic
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				dead := i > winner
				mu.Unlock()
				if dead {
					continue
				}
				// Panic boundary: a goroutine panic would bypass the
				// recover in SolveCtx and kill the process. A crashed
				// branch counts as no-hit — it can only push the final
				// verdict toward UNKNOWN, never flip it.
				var out branchOutcome
				if d := fault.Contain("core.branch", func() {
					out = solveBranch(prob, states[i], params, opts, attempts[i])
				}); d != nil {
					ec.Stats().Add("fault.contained", 1)
					mu.Lock()
					if firstFault == nil {
						firstFault = d
					}
					mu.Unlock()
					continue
				}
				results[i] = out
				if !out.hit {
					continue
				}
				mu.Lock()
				if i < winner {
					winner = i
					for j := i + 1; j < n; j++ {
						attempts[j].Cancel()
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i := range results {
		if results[i].hit {
			return &results[i], firstFault
		}
	}
	return nil, firstFault
}

// maxBranches bounds the case-split enumeration.
const maxBranches = 64

// splitBranches expands top-level OrCon constraints into conjunctive
// branches, pruning refuted prefixes with the over-approximation.
// truncated reports that the bound was hit (so an all-branches-refuted
// outcome must not be read as UNSAT).
func splitBranches(cons []strcon.Constraint, opts Options,
	abstractUnsat func([]strcon.Constraint) bool, ec *engine.Ctx) ([][]strcon.Constraint, bool) {
	var base []strcon.Constraint
	var ors []*strcon.OrCon
	for _, c := range cons {
		if o, ok := c.(*strcon.OrCon); ok {
			ors = append(ors, o)
			continue
		}
		base = append(base, c)
	}
	if len(ors) == 0 {
		return [][]strcon.Constraint{cons}, false
	}
	st := ec.Stats()
	var out [][]strcon.Constraint
	truncated := false
	var rec func(d int, chosen []strcon.Constraint)
	rec = func(d int, chosen []strcon.Constraint) {
		if truncated {
			return
		}
		if len(out) >= maxBranches {
			truncated = true
			return
		}
		if d == len(ors) {
			branch := make([]strcon.Constraint, 0, len(base)+len(chosen))
			branch = append(branch, base...)
			branch = append(branch, chosen...)
			out = append(out, branch)
			return
		}
		for _, disjunct := range ors[d].Args {
			if ec.Expired() {
				truncated = true
				return
			}
			next := append(chosen[:len(chosen):len(chosen)], flattenAnd(disjunct)...)
			if !opts.SkipOverApprox {
				// Prune: base + chosen prefix + remaining Ors.
				candidate := make([]strcon.Constraint, 0, len(base)+len(next)+len(ors)-d-1)
				candidate = append(candidate, base...)
				candidate = append(candidate, next...)
				for _, o := range ors[d+1:] {
					candidate = append(candidate, o)
				}
				if abstractUnsat(candidate) {
					st.Add("branches.pruned", 1)
					continue
				}
			}
			rec(d+1, next)
		}
	}
	rec(0, nil)
	return out, truncated
}

// flattenAnd expands nested conjunctions into a flat constraint list.
func flattenAnd(c strcon.Constraint) []strcon.Constraint {
	if a, ok := c.(*strcon.AndCon); ok {
		var out []strcon.Constraint
		for _, arg := range a.Args {
			out = append(out, flattenAnd(arg)...)
		}
		return out
	}
	return []strcon.Constraint{c}
}

// StaticLoopLen mirrors the paper's "q obtained from our internal
// static analysis": a loop length derived from the longest constant
// string in the constraints, clamped to a practical range. The default
// strategy starts at the smaller (2,2) shape — which already represents
// every word of length <= 5 exactly and keeps synchronization products
// small — and relies on refinement to grow; this helper is exposed for
// callers that want the paper's variant via Options.InitialParams.
func StaticLoopLen(prob *strcon.Problem) int {
	longest := 0
	var scanTerm func(t strcon.Term)
	scanTerm = func(t strcon.Term) {
		for _, it := range t {
			if !it.IsVar && len(it.Const) > longest {
				longest = len(it.Const)
			}
		}
	}
	var scan func(c strcon.Constraint)
	scan = func(c strcon.Constraint) {
		switch t := c.(type) {
		case *strcon.WordEq:
			scanTerm(t.L)
			scanTerm(t.R)
		case *strcon.WordNeq:
			scanTerm(t.L)
			scanTerm(t.R)
		case *strcon.AndCon:
			for _, a := range t.Args {
				scan(a)
			}
		case *strcon.OrCon:
			for _, a := range t.Args {
				scan(a)
			}
		}
	}
	for _, c := range prob.Constraints {
		scan(c)
	}
	switch {
	case longest < 2:
		return 2
	case longest > 6:
		return 6
	default:
		return longest
	}
}
