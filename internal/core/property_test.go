package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// TestPropertyAgainstBruteForce cross-checks the full decision
// procedure against exhaustive enumeration on random small constraint
// systems. All variable lengths are capped at 3 inside the constraints
// themselves, so the brute-force verdict is exact, and the round-one
// restrictions (complete for words of length <= 5) must agree in both
// directions — a soundness AND completeness check of the whole
// pipeline (over-approximation, case splitting, flattening, decoding,
// validation).
func TestPropertyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	patterns := []string{"a*", "(ab)*", "a|b", "(a|b)+", "[ab][ab]", "b*a"}
	words := []string{"", "a", "b", "aa", "ab", "ba", "bb",
		"aaa", "aab", "aba", "abb", "baa", "bab", "bba", "bbb"}

	iters := 50
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		prob := strcon.NewProblem()
		x := prob.NewStrVar("x")
		y := prob.NewStrVar("y")
		vars := []strcon.Var{x, y}
		for _, v := range vars {
			prob.Add(&strcon.Arith{F: lia.Le(lia.V(prob.LenVar(v)), lia.Const(3))})
		}
		ncons := 1 + rng.Intn(3)
		for i := 0; i < ncons; i++ {
			switch rng.Intn(4) {
			case 0: // word equation with a constant
				w := words[1+rng.Intn(6)]
				if rng.Intn(2) == 0 {
					prob.Add(&strcon.WordEq{
						L: strcon.T(strcon.TV(x), strcon.TV(y)),
						R: strcon.T(strcon.TC(w)),
					})
				} else {
					prob.Add(&strcon.WordEq{
						L: strcon.T(strcon.TV(x), strcon.TC(w)),
						R: strcon.T(strcon.TC(w), strcon.TV(y)),
					})
				}
			case 1: // membership
				v := vars[rng.Intn(2)]
				pat := patterns[rng.Intn(len(patterns))]
				prob.Add(&strcon.Membership{X: v, A: regex.MustCompile(pat), Pattern: pat})
			case 2: // length relation
				prob.Add(&strcon.Arith{F: lia.Eq(
					lia.V(prob.LenVar(x)),
					lia.V(prob.LenVar(y)).AddConst(int64(rng.Intn(3)-1)))})
			default: // disequality
				v := vars[rng.Intn(2)]
				w := words[rng.Intn(7)]
				prob.Add(&strcon.WordNeq{L: strcon.T(strcon.TV(v)), R: strcon.T(strcon.TC(w))})
			}
		}

		// Brute force before Solve mutates the constraint list.
		want := false
		for _, xs := range words {
			for _, ys := range words {
				a := &strcon.Assignment{
					Str: map[strcon.Var]string{x: xs, y: ys},
					Int: lia.Model{},
				}
				if prob.Eval(a) {
					want = true
					break
				}
			}
			if want {
				break
			}
		}

		res := Solve(prob, Options{Timeout: 20 * time.Second, MaxRounds: 1})
		if want {
			// Completeness on the bounded domain: the round-1
			// restrictions represent every word of length <= 3, so a
			// satisfiable instance must be found.
			if res.Status != StatusSat {
				t.Fatalf("iter %d: pipeline=%v, brute found a model", iter, res.Status)
			}
			continue
		}
		// Soundness: an unsatisfiable instance must never come back SAT
		// (UNSAT when the over-approximation catches it, otherwise
		// UNKNOWN — under-approximation failure proves nothing, exactly
		// as in the paper's procedure).
		if res.Status == StatusSat {
			t.Fatalf("iter %d: pipeline=sat on an unsatisfiable instance", iter)
		}
	}
}
