package regex

import (
	"regexp"
	"testing"
)

func match(t *testing.T, pattern, s string) bool {
	t.Helper()
	n, err := Compile(pattern)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	return Matches(n, s)
}

func TestLiterals(t *testing.T) {
	if !match(t, "abc", "abc") {
		t.Error("abc should match abc")
	}
	if match(t, "abc", "ab") || match(t, "abc", "abcd") {
		t.Error("anchored literal mismatch")
	}
	if !match(t, "", "") {
		t.Error("empty pattern should match empty string")
	}
}

func TestQuantifiers(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"a*", "", true},
		{"a*", "aaaa", true},
		{"a*", "ab", false},
		{"a+", "", false},
		{"a+", "a", true},
		{"a?b", "b", true},
		{"a?b", "ab", true},
		{"a?b", "aab", false},
		{"a{3}", "aaa", true},
		{"a{3}", "aa", false},
		{"a{2,4}", "aaa", true},
		{"a{2,4}", "aaaaa", false},
		{"a{2,}", "aaaaaaa", true},
		{"a{2,}", "a", false},
	}
	for _, c := range cases {
		if got := match(t, c.pat, c.s); got != c.want {
			t.Errorf("%q on %q: got %v want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestClassesAndDot(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"[0-9]+", "0123", true},
		{"[0-9]+", "12a", false},
		{"[1-9][0-9]*", "907", true},
		{"[1-9][0-9]*", "07", false},
		{"[abc]", "b", true},
		{"[abc]", "d", false},
		{"[^abc]", "d", true},
		{"[^abc]", "a", false},
		{"[a-z0-9_]+", "hello_42", true},
		{".", "x", true},
		{".", "", false},
		{".*", "anything at all!", true},
		{"\\d+", "314", true},
		{"\\d+", "31a", false},
		{"\\w+", "Az09_", true},
		{"[.]", ".", true},
		{"[.]", "x", false},
		{"\\.", ".", true},
		{"\\.", "a", false},
		{"[-a]", "-", true},
		{"[a-]", "-", true},
	}
	for _, c := range cases {
		if got := match(t, c.pat, c.s); got != c.want {
			t.Errorf("%q on %q: got %v want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestAlternationGrouping(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"ab|cd", "ab", true},
		{"ab|cd", "cd", true},
		{"ab|cd", "ad", false},
		{"(ab)+", "ababab", true},
		{"(ab)+", "aba", false},
		{"(a|b)*c", "abbac", true},
		{"(a|b)*c", "abbad", false},
		{"x(1|2|3){2}y", "x12y", true},
		{"x(1|2|3){2}y", "x1y", false},
	}
	for _, c := range cases {
		if got := match(t, c.pat, c.s); got != c.want {
			t.Errorf("%q on %q: got %v want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestIPOctetPattern(t *testing.T) {
	// The pattern used by the LeetCode-style IP benchmarks.
	pat := "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
	for i := 0; i <= 299; i++ {
		s := itoa(i)
		want := i <= 255
		if got := match(t, pat, s); got != want {
			t.Errorf("octet %q: got %v want %v", s, got, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestErrors(t *testing.T) {
	bad := []string{"(", ")", "a)", "(a", "[", "[a", "a{", "a{x}", "a{3,1}", "*", "+a"[0:1], "\\"}
	for _, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) should fail", p)
		}
	}
}

// TestAgainstStdlib cross-validates our engine with regexp/syntax on a
// shared dialect subset.
func TestAgainstStdlib(t *testing.T) {
	patterns := []string{
		"a*b+c?",
		"(ab|ba)*",
		"[0-9]{1,3}",
		"x.y",
		"(a|bb)+(c|d)*",
		"[a-f]+[0-9]*",
	}
	inputs := []string{"", "a", "b", "ab", "ba", "abba", "aabbc", "x5y", "xy", "123", "1234",
		"abc", "cd", "bbd", "af09", "fff", "a0", "zz"}
	for _, p := range patterns {
		std := regexp.MustCompile("^(?:" + p + ")$")
		n := MustCompile(p)
		for _, in := range inputs {
			want := std.MatchString(in)
			if got := Matches(n, in); got != want {
				t.Errorf("pattern %q input %q: got %v want %v", p, in, got, want)
			}
		}
	}
}
