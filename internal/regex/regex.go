// Package regex parses a practical regular-expression dialect and
// compiles it to the NFAs of package automata (over the solver's
// numeric alphabet). Supported syntax: literals, escapes (\d \w \s \.
// etc.), '.', character classes with ranges and negation, grouping,
// alternation, and the quantifiers * + ? {n} {n,} {n,m}. Matching is
// anchored (whole-string) as is conventional for regular constraints.
package regex

import (
	"fmt"
	"strconv"

	"repro/internal/alphabet"
	"repro/internal/automata"
)

// Compile parses the pattern and returns its automaton.
func Compile(pattern string) (*automata.NFA, error) {
	p := &parser{src: pattern}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return n, nil
}

// MustCompile is Compile for patterns known to be valid; it panics on
// error and is intended for tests and generators.
func MustCompile(pattern string) *automata.NFA {
	n, err := Compile(pattern)
	if err != nil {
		// contract: Must* is for compile-time-known patterns.
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
}

func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

func (p *parser) alternation() (*automata.NFA, error) {
	n, err := p.sequence()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return n, nil
		}
		p.pos++
		m, err := p.sequence()
		if err != nil {
			return nil, err
		}
		n = automata.Union(n, m)
	}
}

func (p *parser) sequence() (*automata.NFA, error) {
	n := automata.Epsilon()
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			return n, nil
		}
		m, err := p.quantified()
		if err != nil {
			return nil, err
		}
		n = automata.Concat(n, m)
	}
}

func (p *parser) quantified() (*automata.NFA, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return n, nil
		}
		switch c {
		case '*':
			p.pos++
			n = automata.Star(n)
		case '+':
			p.pos++
			n = automata.Plus(n)
		case '?':
			p.pos++
			n = automata.Optional(n)
		case '{':
			min, max, err := p.bounds()
			if err != nil {
				return nil, err
			}
			n = automata.Repeat(n, min, max)
		default:
			return n, nil
		}
	}
}

// bounds parses {n}, {n,} or {n,m} starting at '{'.
func (p *parser) bounds() (int, int, error) {
	start := p.pos
	p.pos++ // '{'
	i := p.pos
	for i < len(p.src) && p.src[i] != '}' {
		i++
	}
	if i == len(p.src) {
		return 0, 0, fmt.Errorf("regex: unterminated repetition at offset %d", start)
	}
	body := p.src[p.pos:i]
	p.pos = i + 1
	for ci := 0; ci < len(body); ci++ {
		if !(body[ci] >= '0' && body[ci] <= '9' || body[ci] == ',') {
			return 0, 0, fmt.Errorf("regex: bad repetition %q", body)
		}
	}
	comma := -1
	for ci := 0; ci < len(body); ci++ {
		if body[ci] == ',' {
			comma = ci
			break
		}
	}
	if comma == -1 {
		n, err := strconv.Atoi(body)
		if err != nil {
			return 0, 0, fmt.Errorf("regex: bad repetition %q", body)
		}
		return n, n, nil
	}
	lo, err := strconv.Atoi(body[:comma])
	if err != nil {
		return 0, 0, fmt.Errorf("regex: bad repetition %q", body)
	}
	if comma == len(body)-1 {
		return lo, -1, nil
	}
	hi, err := strconv.Atoi(body[comma+1:])
	if err != nil || hi < lo {
		return 0, 0, fmt.Errorf("regex: bad repetition %q", body)
	}
	return lo, hi, nil
}

func (p *parser) atom() (*automata.NFA, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("regex: unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if b, ok := p.peek(); !ok || b != ')' {
			return nil, fmt.Errorf("regex: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case '[':
		return p.class()
	case '.':
		p.pos++
		return automata.Symbol(alphabet.AnyRange), nil
	case '\\':
		p.pos++
		return p.escape()
	case '*', '+', '?', '{', ')':
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", c, p.pos)
	default:
		p.pos++
		return rangesNFA(alphabet.CodeRanges(c, c)), nil
	}
}

func (p *parser) escape() (*automata.NFA, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("regex: dangling backslash")
	}
	p.pos++
	switch c {
	case 'd':
		return rangesNFA(alphabet.CodeRanges('0', '9')), nil
	case 'w':
		rs := alphabet.CodeRanges('a', 'z')
		rs = append(rs, alphabet.CodeRanges('A', 'Z')...)
		rs = append(rs, alphabet.CodeRanges('0', '9')...)
		rs = append(rs, alphabet.CodeRanges('_', '_')...)
		return rangesNFA(rs), nil
	case 's':
		rs := alphabet.CodeRanges(' ', ' ')
		rs = append(rs, alphabet.CodeRanges('\t', '\r')...)
		return rangesNFA(rs), nil
	case 'n':
		return rangesNFA(alphabet.CodeRanges('\n', '\n')), nil
	case 't':
		return rangesNFA(alphabet.CodeRanges('\t', '\t')), nil
	default:
		// Escaped literal metacharacter.
		return rangesNFA(alphabet.CodeRanges(c, c)), nil
	}
}

// class parses a character class starting at '['.
func (p *parser) class() (*automata.NFA, error) {
	start := p.pos
	p.pos++ // '['
	negate := false
	if c, ok := p.peek(); ok && c == '^' {
		negate = true
		p.pos++
	}
	var bytes [256]bool
	first := true
	for {
		c, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("regex: unterminated class at offset %d", start)
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		if c == '\\' {
			p.pos++
			e, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("regex: dangling backslash in class")
			}
			p.pos++
			switch e {
			case 'd':
				for b := '0'; b <= '9'; b++ {
					bytes[b] = true
				}
			case 'w':
				for b := 'a'; b <= 'z'; b++ {
					bytes[b] = true
				}
				for b := 'A'; b <= 'Z'; b++ {
					bytes[b] = true
				}
				for b := '0'; b <= '9'; b++ {
					bytes[b] = true
				}
				bytes['_'] = true
			case 'n':
				bytes['\n'] = true
			case 't':
				bytes['\t'] = true
			default:
				bytes[e] = true
			}
			continue
		}
		p.pos++
		// Possible range c-d.
		if d, ok := p.peek(); ok && d == '-' {
			if e := p.pos + 1; e < len(p.src) && p.src[e] != ']' {
				hi := p.src[e]
				p.pos += 2
				if hi < c {
					return nil, fmt.Errorf("regex: inverted range %c-%c", c, hi)
				}
				for b := int(c); b <= int(hi); b++ {
					bytes[b] = true
				}
				continue
			}
		}
		bytes[c] = true
	}
	if negate {
		for i := range bytes {
			bytes[i] = !bytes[i]
		}
	}
	// Convert the byte set to maximal byte ranges, then to code ranges.
	var rs []automata.Range
	for b := 0; b < 256; {
		if !bytes[b] {
			b++
			continue
		}
		e := b
		for e+1 < 256 && bytes[e+1] {
			e++
		}
		rs = append(rs, alphabet.CodeRanges(byte(b), byte(e))...)
		b = e + 1
	}
	if len(rs) == 0 {
		return automata.Empty(), nil
	}
	return rangesNFA(rs), nil
}

// rangesNFA returns an automaton accepting any single symbol from the
// given code ranges.
func rangesNFA(rs []automata.Range) *automata.NFA {
	n := &automata.NFA{NumStates: 2, Init: 0, Finals: []int{1}}
	for _, r := range rs {
		n.Trans = append(n.Trans, automata.Transition{From: 0, R: r, To: 1})
	}
	if len(rs) == 0 {
		return automata.Empty()
	}
	return n
}

// Matches reports whether the pattern (anchored) matches s; it is a
// convenience for tests and the concrete evaluator.
func Matches(n *automata.NFA, s string) bool {
	return n.Accepts(alphabet.Encode(s))
}
