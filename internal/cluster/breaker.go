package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states. Closed passes traffic; Open sheds it; HalfOpen
// passes exactly one probe to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// Breaker is a per-shard circuit breaker. Closed counts consecutive
// failures and opens at the threshold; open sheds every request until
// the cooldown elapses, then admits exactly one half-open probe; the
// probe's outcome closes the breaker or re-opens it for another
// cooldown. Health-probe results feed the same Success/Failure
// methods as request outcomes, so a shard that comes back is noticed
// within one probe interval even with no traffic to hedge on.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open -> half-open wait
	now       func() time.Time

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // the single half-open probe is in flight
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and tests recovery after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it
// flips to half-open once the cooldown has elapsed and admits exactly
// one probe; every other caller is shed until that probe reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a completed request or health probe: it closes the
// breaker from any state and clears the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a transport failure or failed health probe. In the
// closed state it opens the breaker at the threshold; in half-open it
// re-opens immediately (the probe failed); in open it refreshes the
// cooldown clock so a shard that is down stays shed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		b.openedAt = b.now()
	}
}

// open transitions to the open state (callers hold b.mu).
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// State reports the breaker's current position without advancing it
// (an open breaker past its cooldown still reads open until a request
// claims the half-open probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
