// Package cluster is the fault-tolerant sharding layer over trauserve:
// a consistent-hash ring routes each canonical problem to an owner
// shard, a health-checked circuit breaker guards every hop, transport
// errors retry with backoff and fail over along the ring, interactive
// requests hedge after a latency-derived delay, and when every shard
// is unreachable the router degrades to solving locally — availability
// falls back to single-node behavior instead of erroring.
//
// The layer can never flip a verdict: routing only decides WHERE a
// canonical problem is solved and cached, and every served witness is
// still re-validated by the concrete evaluator against the requesting
// parse (the PR 4 invariant lives in internal/server, below this
// package). The worst a dying shard can do is cost a retry, a hedge,
// or a local solve — degradation toward UNKNOWN/latency, never toward
// a wrong answer.
//
// The package sits beside internal/server in the import graph:
// cluster imports smtlib and fault only, server imports cluster for
// the ring and the peer cache-fill client, and cmd/trauserve wires a
// local server.Server into the Router as its degraded-mode fallback.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// defaultReplicas is the virtual-node count per shard. 64 points per
// shard keeps the assignment spread within a few percent of uniform
// for small clusters while the ring stays tiny (N*64 points).
const defaultReplicas = 64

// Ring is a consistent-hash ring over shard addresses. Construction
// depends only on the shard list and replica count — no clock, no
// randomness, no process identity — so every process handed the same
// shard list computes byte-identical assignments, which is what lets
// shards answer "who owns this hash?" without consulting the router.
type Ring struct {
	shards []string
	points []ringPoint // sorted by position
}

type ringPoint struct {
	pos   uint64
	shard int // index into shards
}

// NewRing builds a ring of replicas virtual nodes per shard
// (replicas <= 0 selects the default). The shard list is used as
// given: callers pass the same ordered list to every process.
func NewRing(shards []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{shards: append([]string(nil), shards...)}
	var buf [8]byte
	for i, s := range r.shards {
		for v := 0; v < replicas; v++ {
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			sum := sha256.Sum256(append([]byte(s+"#"), buf[:]...))
			r.points = append(r.points, ringPoint{pos: binary.BigEndian.Uint64(sum[:8]), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// A 64-bit collision between vnode hashes is vanishingly rare
		// but must still order deterministically across processes.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Shards returns the ring's shard list (the slice is shared; do not
// mutate).
func (r *Ring) Shards() []string { return r.shards }

// keyPos maps a key (a canonical problem hash, or any string) to its
// ring position.
func keyPos(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the shard owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.shards[r.points[r.search(keyPos(key))].shard]
}

// Successors returns up to n distinct shards in ring order starting at
// key's owner: the owner first, then the shards a failover walks to.
// n <= 0 or n > len(shards) returns every shard.
func (r *Ring) Successors(key string, n int) []string {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.shards) {
		n = len(r.shards)
	}
	seen := make([]bool, len(r.shards))
	out := make([]string, 0, n)
	start := r.search(keyPos(key))
	for i := 0; i < len(r.points); i++ {
		if len(out) >= n {
			break
		}
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, r.shards[p.shard])
	}
	return out
}

// search returns the index of the first point at or after pos,
// wrapping to 0 past the last point.
func (r *Ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}
