package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// countingShard is a test backend that records how many requests
// reached it.
func countingShard(status int, body string) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(status)
		w.Write([]byte(body)) //nolint:errcheck — test server
	}))
	return ts, &hits
}

// TestClientRetriesTransportErrors pins the retry rule's first half:
// an injected connect failure at the first hop is retried and the
// second hop's response is returned.
func TestClientRetriesTransportErrors(t *testing.T) {
	ts, hits := countingShard(http.StatusOK, `{"ok":true}`)
	defer ts.Close()
	c := NewClient(time.Second, 2, time.Millisecond, fault.AtNet(1, fault.NetConnectFail))
	res, retries, err := c.DoRetry(context.Background(), http.MethodGet, ts.URL, nil, nil)
	if err != nil {
		t.Fatalf("DoRetry after injected connect failure: %v", err)
	}
	if res.Status != http.StatusOK || retries != 1 {
		t.Fatalf("status %d retries %d, want 200 after exactly 1 retry", res.Status, retries)
	}
	if hits.Load() != 1 {
		t.Fatalf("backend saw %d requests, want 1 (the failed hop never connected)", hits.Load())
	}
}

// TestClientNeverRetriesResponses pins the rule's second half: any
// HTTP response — even a 503 — is a verdict from the shard, returned
// as-is, never re-requested.
func TestClientNeverRetriesResponses(t *testing.T) {
	ts, hits := countingShard(http.StatusServiceUnavailable, `{"error":"busy"}`)
	defer ts.Close()
	c := NewClient(time.Second, 2, time.Millisecond, nil)
	res, retries, err := c.DoRetry(context.Background(), http.MethodGet, ts.URL, nil, nil)
	if err != nil {
		t.Fatalf("DoRetry: %v", err)
	}
	if res.Status != http.StatusServiceUnavailable || retries != 0 || hits.Load() != 1 {
		t.Fatalf("status %d retries %d hits %d, want the 503 passed through untouched",
			res.Status, retries, hits.Load())
	}
}

// TestClientCutIsTransportError pins the mid-body cut: bytes moved but
// the exchange still counts as a transport failure, eligible for
// retry.
func TestClientCutIsTransportError(t *testing.T) {
	ts, hits := countingShard(http.StatusOK, `{"ok":true}`)
	defer ts.Close()
	c := NewClient(time.Second, 2, time.Millisecond, fault.AtNet(1, fault.NetCut))
	res, retries, err := c.DoRetry(context.Background(), http.MethodGet, ts.URL, nil, nil)
	if err != nil {
		t.Fatalf("DoRetry after injected cut: %v", err)
	}
	if res.Status != http.StatusOK || retries != 1 {
		t.Fatalf("status %d retries %d, want 200 after exactly 1 retry", res.Status, retries)
	}
	if hits.Load() != 2 {
		t.Fatalf("backend saw %d requests, want 2 (the cut hop DID reach it)", hits.Load())
	}
}

// TestClientStallHonorsHopTimeout pins that an injected stall costs at
// most the per-attempt timeout, leaving budget for the retry to
// succeed.
func TestClientStallHonorsHopTimeout(t *testing.T) {
	ts, _ := countingShard(http.StatusOK, `{"ok":true}`)
	defer ts.Close()
	c := NewClient(50*time.Millisecond, 2, time.Millisecond, fault.AtNet(1, fault.NetStall))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res, retries, err := c.DoRetry(ctx, http.MethodGet, ts.URL, nil, nil)
	if err != nil {
		t.Fatalf("DoRetry after injected stall: %v", err)
	}
	if res.Status != http.StatusOK || retries != 1 {
		t.Fatalf("status %d retries %d, want 200 after exactly 1 retry", res.Status, retries)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stalled hop cost %v; the hop timeout should have cut it at ~50ms", elapsed)
	}
}

// TestClientRetriesExhaust pins the bounded-retry contract: a shard
// that stays unreachable costs exactly 1+maxRetries attempts, then the
// transport error surfaces for failover.
func TestClientRetriesExhaust(t *testing.T) {
	c := NewClient(200*time.Millisecond, 2, time.Millisecond, nil)
	// An address from TEST-NET that refuses immediately on loopback
	// setups; the point is only that every attempt errors.
	_, retries, err := c.DoRetry(context.Background(), http.MethodGet, "http://127.0.0.1:1/solve", nil, nil)
	if err == nil {
		t.Fatal("DoRetry against a dead port succeeded")
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want exactly maxRetries (2)", retries)
	}
}
