package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/smtlib"
)

// Config sizes the router. The zero value of every field selects a
// sensible default (see withDefaults); Shards is required.
type Config struct {
	// Shards is the ordered backend address list ("host:port"). Every
	// process of the cluster — router and shards alike — must be handed
	// the same list in the same order, so ring assignment is
	// byte-identical everywhere.
	Shards []string
	// Local is the degraded-mode fallback: when no shard is reachable
	// the request is served by this handler in-process (cmd/trauserve
	// passes its local server.Server). nil disables degradation — an
	// unreachable cluster answers 503.
	Local http.Handler
	// Replicas is the virtual-node count per shard on the ring
	// (default 64).
	Replicas int
	// ProbeInterval and ProbeTimeout shape the periodic /healthz
	// probes feeding each shard's breaker (defaults 250ms and 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerThreshold consecutive transport failures open a shard's
	// circuit; BreakerCooldown is the open->half-open wait (defaults 3
	// and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxRetries bounds per-shard retries on transport errors;
	// RetryBase seeds the exponential backoff (defaults 2 and 50ms).
	MaxRetries int
	RetryBase  time.Duration
	// HedgeDelay is how long an interactive request waits on its
	// primary before duplicating to the ring successor. 0 (the
	// default) derives it from the router's observed p95 latency.
	HedgeDelay time.Duration
	// RequestTimeout bounds one routed request end to end — all
	// retries, failovers, and hedges together (default 60s,
	// comfortably above the shard-side max solve budget). HopTimeout
	// bounds a single attempt against one shard (default
	// RequestTimeout), so a black-holed shard costs one hop's wait,
	// not the whole request budget. MaxRequestBytes bounds a routed
	// body (default 16 MiB, the shard-side batch bound).
	RequestTimeout  time.Duration
	HopTimeout      time.Duration
	MaxRequestBytes int64
	// Fault is the network-boundary fault schedule (injected connect
	// failures, stalls, mid-body cuts at the k-th hop). Health probes
	// deliberately bypass it so chaos sweeps count request hops
	// deterministically. nil injects nothing.
	Fault *fault.Schedule
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.HopTimeout <= 0 {
		c.HopTimeout = c.RequestTimeout
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	return c
}

// hedgeFloor is the smallest adaptive hedge delay: on a cache-hot
// workload the p95 collapses toward zero, and hedging every request
// after half a millisecond would double cluster load for nothing.
const hedgeFloor = 25 * time.Millisecond

// hedgeDefault is the hedge delay used before enough latency samples
// accumulate to derive a p95.
const hedgeDefault = 100 * time.Millisecond

// shard is the router's per-backend state: the breaker guarding it,
// the last health-probe verdict, and its traffic counters.
type shard struct {
	addr    string
	breaker *Breaker
	healthy atomic.Bool

	probesOK      atomic.Int64
	probesFail    atomic.Int64
	forwards      atomic.Int64
	transportErrs atomic.Int64
}

// Router fronts a shard cluster: it routes each request to the owner
// shard of its canonical problem hash and wraps every hop in the
// robustness stack — breaker, bounded retries, hedging, failover,
// local degradation. Create with New, expose via net/http, stop with
// Close.
type Router struct {
	cfg    Config
	ring   *Ring
	client *Client
	shards map[string]*shard
	local  http.Handler
	mux    *http.ServeMux

	lat latencies

	draining atomic.Bool
	stop     chan struct{}
	probers  sync.WaitGroup

	ctr struct {
		routed         atomic.Int64 // requests forwarded to a shard
		uncanonical    atomic.Int64 // routed by body hash (no canonical form)
		retries        atomic.Int64 // transport-error retries across all hops
		failovers      atomic.Int64 // attempts moved past a shard: transport failure or open breaker
		hedgesLaunched atomic.Int64
		hedgesWon      atomic.Int64 // hedge finished before the primary
		localSolves    atomic.Int64 // degraded-mode local fallbacks
		unroutable     atomic.Int64 // no shard and no local handler
	}

	start time.Time
}

// New builds a router over cfg.Shards and starts its health probers.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	seen := map[string]bool{}
	for _, s := range cfg.Shards {
		if s == "" || seen[s] {
			return nil, fmt.Errorf("cluster: empty or duplicate shard address %q", s)
		}
		seen[s] = true
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Shards, cfg.Replicas),
		client: NewClient(cfg.HopTimeout, cfg.MaxRetries, cfg.RetryBase, cfg.Fault),
		shards: make(map[string]*shard),
		local:  cfg.Local,
		stop:   make(chan struct{}),
		start:  time.Now(),
	}
	for _, addr := range cfg.Shards {
		rt.shards[addr] = &shard{
			addr:    addr,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /solve", rt.handleSolve)
	rt.mux.HandleFunc("POST /batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	for _, addr := range cfg.Shards {
		sh := rt.shards[addr]
		rt.probers.Add(1)
		go func() {
			defer rt.probers.Done()
			ticker := time.NewTicker(rt.cfg.ProbeInterval)
			defer ticker.Stop()
			for { //lint:nopoll probe loop runs for the router's lifetime and exits when rt.stop closes; it runs no solver code and holds no engine context
				fault.Contain("cluster.probe", func() { rt.probe(sh) })
				select {
				case <-rt.stop:
					return
				case <-ticker.C:
				}
			}
		}()
	}
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Close stops the health probers and marks the router draining (new
// requests answer 503). In-flight forwards finish on their own
// contexts; call after the http.Server has shut down.
func (rt *Router) Close() {
	if rt.draining.CompareAndSwap(false, true) {
		close(rt.stop)
	}
	rt.probers.Wait()
}

// probe performs one health check and feeds the shard's breaker, so a
// dead shard opens its circuit within threshold*interval even with no
// traffic, and a recovered one closes it again without waiting for a
// half-open request probe.
func (rt *Router) probe(sh *shard) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+sh.addr+"/healthz", nil)
	if err != nil {
		return // contract: the URL is built from a validated address
	}
	resp, err := probeClient.Do(req)
	ok := err == nil
	if ok {
		// A draining shard answers 503: reachable, but about to exit —
		// treat it as unhealthy so traffic fails over before the drain.
		ok = resp.StatusCode == http.StatusOK
		_, _ = io.Copy(io.Discard, resp.Body) // probe body is discarded
		_ = resp.Body.Close()
	}
	sh.healthy.Store(ok)
	if ok {
		sh.probesOK.Add(1)
		sh.breaker.Success()
	} else {
		sh.probesFail.Add(1)
		sh.breaker.Failure()
	}
}

// probeClient is the probers' transport: plain, outside the fault
// boundary, so chaos schedules count request hops deterministically.
var probeClient = &http.Client{}

// routeKey extracts the routing key for a /solve body: the canonical
// problem hash when the problem canonicalizes (so every alpha-variant
// of a problem lands on — and fills the cache of — one owner shard),
// the body hash otherwise (stable, but only syntactically sticky).
func (rt *Router) routeKey(body []byte) (string, bool) {
	var req struct {
		SMTLIB string `json:"smtlib"`
	}
	if err := json.Unmarshal(body, &req); err == nil && req.SMTLIB != "" {
		if script, err := smtlib.Parse(req.SMTLIB); err == nil {
			if canon, err := smtlib.Canonicalize(script.Problem); err == nil {
				return canon.Hash, true
			}
		}
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), false
}

// readBody drains a routed request's body under the router bound.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rt.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", rt.cfg.MaxRequestBytes)
		} else {
			rt.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		rt.rejectDraining(w)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key, canonical := rt.routeKey(body)
	if !canonical {
		rt.ctr.uncanonical.Add(1)
	}
	// /solve is the interactive class: hedge after the p95-derived
	// delay. The duplicate is safe — shards coalesce identical
	// canonical problems in flight and re-validate every witness, so a
	// hedged solve costs at most one extra cache fill.
	rt.forward(w, r, http.MethodPost, "/solve", body, key, true)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		rt.rejectDraining(w)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// Batches route by body hash: instances inside one batch own
	// different canonical hashes, and the job the 202 names lives on
	// whichever shard accepted it. No hedging — batch is the bulk
	// class, and a duplicated POST /batch would create a duplicate
	// job.
	sum := sha256.Sum256(body)
	rt.forwardBatch(w, r, hex.EncodeToString(sum[:]), body)
}

// handleJob routes GET /jobs/<id>: the router prefixes every batch job
// id with its shard ("s2!job-7"), so polls go straight back to the
// shard that owns the job's state.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	shardIdx, rest, ok := splitJobID(id)
	if !ok || shardIdx >= len(rt.cfg.Shards) {
		rt.writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	addr := rt.cfg.Shards[shardIdx]
	sh := rt.shards[addr]
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	res, retries, err := rt.client.DoRetry(ctx, http.MethodGet, "http://"+addr+"/jobs/"+rest, nil, nil)
	rt.ctr.retries.Add(int64(retries))
	if err != nil {
		sh.breaker.Failure()
		sh.transportErrs.Add(1)
		rt.writeError(w, http.StatusBadGateway,
			"shard %s unreachable (job state lives there): %v", addr, err)
		return
	}
	sh.breaker.Success()
	rt.relay(w, res)
}

// jobIDSep joins the shard index and the shard-local job id. The
// shard's own ids are "job-<n>", so any separator not in that alphabet
// works; "!" also survives URL paths unescaped.
const jobIDSep = "!"

func routedJobID(shardIdx int, id string) string {
	return "s" + strconv.Itoa(shardIdx) + jobIDSep + id
}

func splitJobID(id string) (shardIdx int, rest string, ok bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, "", false
	}
	i := strings.Index(id, jobIDSep)
	if i < 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(id[1:i])
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, id[i+len(jobIDSep):], true
}

// attempt is one in-flight forward's outcome.
type attempt struct {
	sh    *shard
	res   *Result
	err   error
	hedge bool
}

// forward routes one idempotent request along the ring with the full
// robustness ladder: owner first, open circuits skipped, transport
// errors retried then failed over to the next successor, an optional
// hedge duplicated to the successor after the hedge delay, first
// response wins and losers are cancelled. When every shard is
// open-circuit or exhausted it degrades to the local handler.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, method, path string, body []byte, key string, hedge bool) {
	candidates := rt.ring.Successors(key, 0)
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	resCh := make(chan attempt, len(candidates)) // buffered: losers never block
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	next := 0
	launch := func(hedged bool) bool {
		for i := next; i < len(candidates); i++ {
			sh := rt.shards[candidates[i]]
			next = i + 1
			if !sh.breaker.Allow() {
				// Shedding an open-circuit shard moves the request down
				// the ring just like a live transport failure would.
				rt.ctr.failovers.Add(1)
				continue
			}
			actx, acancel := context.WithCancel(ctx)
			cancels = append(cancels, acancel)
			header := r.Header.Clone()
			go func() {
				d := fault.Contain("cluster.forward", func() {
					res, retries, err := rt.client.DoRetry(actx, method, "http://"+sh.addr+path, header, body)
					rt.ctr.retries.Add(int64(retries))
					resCh <- attempt{sh: sh, res: res, err: err, hedge: hedged}
				})
				if d != nil {
					resCh <- attempt{sh: sh, err: d, hedge: hedged}
				}
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		// Every breaker is open: the cluster is unreachable, degrade
		// immediately rather than queueing on dead sockets.
		rt.serveLocal(w, r, body)
		return
	}
	rt.ctr.routed.Add(1)

	var hedgeC <-chan time.Time
	if hedge && len(candidates) > 1 {
		timer := time.NewTimer(rt.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}
	start := time.Now()
	pending := 1
	for { //lint:nopoll every select arm returns or re-arms a bounded attempt, and ctx.Done (RequestTimeout) guarantees exit; this is request plumbing holding no engine context
		select {
		case a := <-resCh:
			pending--
			a.sh.forwards.Add(1)
			if a.err == nil {
				a.sh.breaker.Success()
				rt.lat.observe(time.Since(start))
				if a.hedge {
					rt.ctr.hedgesWon.Add(1)
				}
				rt.relay(w, a.res)
				return
			}
			// A loser cancelled after the winner answered never gets
			// here (the winner returns); a cancellation surfacing here
			// means the CLIENT's context died — don't blame the shard.
			if ctx.Err() == nil || !errors.Is(a.err, context.Canceled) {
				a.sh.breaker.Failure()
				a.sh.transportErrs.Add(1)
			}
			if pending > 0 {
				continue // the hedge (or primary) is still running
			}
			if ctx.Err() != nil {
				rt.writeError(w, http.StatusGatewayTimeout, "cluster forward: %v", a.err)
				return
			}
			if launch(false) {
				rt.ctr.failovers.Add(1)
				pending++
				continue
			}
			rt.serveLocal(w, r, body)
			return
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				rt.ctr.hedgesLaunched.Add(1)
				pending++
			}
		case <-ctx.Done():
			rt.writeError(w, http.StatusGatewayTimeout, "cluster forward: %v", ctx.Err())
			return
		}
	}
}

// forwardBatch routes a POST /batch with failover but no hedging, and
// rewrites the job id in the 202 so /jobs polls route back to the
// owning shard.
func (rt *Router) forwardBatch(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	candidates := rt.ring.Successors(key, 0)
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	routed := false
	for _, addr := range candidates {
		sh := rt.shards[addr]
		if !sh.breaker.Allow() {
			rt.ctr.failovers.Add(1)
			continue
		}
		if !routed {
			routed = true
			rt.ctr.routed.Add(1)
		} else {
			rt.ctr.failovers.Add(1)
		}
		res, retries, err := rt.client.DoRetry(ctx, http.MethodPost, "http://"+addr+"/batch", r.Header.Clone(), body)
		rt.ctr.retries.Add(int64(retries))
		sh.forwards.Add(1)
		if err != nil {
			sh.breaker.Failure()
			sh.transportErrs.Add(1)
			if ctx.Err() != nil {
				rt.writeError(w, http.StatusGatewayTimeout, "cluster forward: %v", ctx.Err())
				return
			}
			continue
		}
		sh.breaker.Success()
		if res.Status == http.StatusAccepted {
			rt.relayBatchAccepted(w, res, addr)
			return
		}
		rt.relay(w, res)
		return
	}
	// Batch has no local degradation: job state must outlive the
	// request, and the router holds none. Reject with backoff instead.
	rt.ctr.unroutable.Add(1)
	w.Header().Set("Retry-After", "1")
	rt.writeError(w, http.StatusServiceUnavailable, "no shard reachable for batch work")
}

// relayBatchAccepted rewrites the shard's job id with the shard prefix
// before relaying the 202.
func (rt *Router) relayBatchAccepted(w http.ResponseWriter, res *Result, addr string) {
	var acc struct {
		JobID     string `json:"job_id"`
		Tenant    string `json:"tenant"`
		Instances int    `json:"instances"`
	}
	if err := json.Unmarshal(res.Body, &acc); err != nil {
		rt.relay(w, res) // unknown shape: relay verbatim
		return
	}
	for i, s := range rt.cfg.Shards {
		if s == addr {
			acc.JobID = routedJobID(i, acc.JobID)
			break
		}
	}
	rt.writeJSON(w, res.Status, acc)
}

// serveLocal is the bottom of the degradation ladder: solve in-process
// under the local server's governor, so availability falls back to
// single-node behavior instead of erroring.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if rt.local == nil {
		rt.ctr.unroutable.Add(1)
		w.Header().Set("Retry-After", "1")
		rt.writeError(w, http.StatusServiceUnavailable, "no shard reachable and no local fallback")
		return
	}
	rt.ctr.localSolves.Add(1)
	nr := r.Clone(r.Context())
	nr.Body = io.NopCloser(bytes.NewReader(body))
	nr.ContentLength = int64(len(body))
	rt.local.ServeHTTP(w, nr)
}

// relay copies a shard response through to the client.
func (rt *Router) relay(w http.ResponseWriter, res *Result) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body) // the connection may be gone; nowhere to report
}

func (rt *Router) rejectDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	rt.writeError(w, http.StatusServiceUnavailable, "router is shutting down")
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection may be gone; nowhere to report
}

func (rt *Router) writeError(w http.ResponseWriter, code int, format string, a ...any) {
	rt.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, a...)})
}

// latencies tracks recent forward latencies for the adaptive hedge
// delay: a fixed ring of samples, p95 computed on demand.
type latencies struct {
	mu  sync.Mutex
	buf [128]time.Duration
	n   int // total observations
}

func (l *latencies) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	l.mu.Unlock()
}

// p95 returns the 95th-percentile sample, or 0 until minHedgeSamples
// observations exist.
const minHedgeSamples = 16

func (l *latencies) p95() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < minHedgeSamples {
		return 0
	}
	n := l.n
	if n > len(l.buf) {
		n = len(l.buf)
	}
	sorted := make([]time.Duration, n)
	copy(sorted, l.buf[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(n*95)/100]
}

// hedgeDelay is the interactive hedging trigger: the configured value
// when set, otherwise the observed p95 clamped below by hedgeFloor
// (hedgeDefault until enough samples exist).
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	p := rt.lat.p95()
	if p == 0 {
		return hedgeDefault
	}
	if p < hedgeFloor {
		return hedgeFloor
	}
	return p
}

// Stats is the router's GET /stats body: the cluster-wide view — the
// robustness counters, the hedge delay in force, and one entry per
// shard with breaker state, health, traffic, and (when reachable) the
// shard's own /stats snapshot embedded verbatim.
type Stats struct {
	UptimeMS     float64      `json:"uptime_ms"`
	Routed       int64        `json:"routed"`
	Uncanonical  int64        `json:"uncanonical"`
	Retries      int64        `json:"retries"`
	Failovers    int64        `json:"failovers"`
	Hedges       HedgeStats   `json:"hedges"`
	LocalSolves  int64        `json:"local_solves"`
	Unroutable   int64        `json:"unroutable"`
	HedgeDelayMS float64      `json:"hedge_delay_ms"`
	Shards       []ShardStats `json:"shards"`
}

type HedgeStats struct {
	Launched int64 `json:"launched"`
	Won      int64 `json:"won"`
}

type ShardStats struct {
	Addr            string          `json:"addr"`
	Healthy         bool            `json:"healthy"`
	Breaker         string          `json:"breaker"`
	ProbesOK        int64           `json:"probes_ok"`
	ProbesFail      int64           `json:"probes_fail"`
	Forwards        int64           `json:"forwards"`
	TransportErrors int64           `json:"transport_errors"`
	Stats           json.RawMessage `json:"stats,omitempty"`
}

// Snapshot assembles the cluster-wide stats. fetch controls whether
// each live shard's own /stats is pulled in (the HTTP handler does;
// tests that only want router counters pass false).
func (rt *Router) Snapshot(fetch bool) Stats {
	st := Stats{
		UptimeMS:     float64(time.Since(rt.start)) / float64(time.Millisecond),
		Routed:       rt.ctr.routed.Load(),
		Uncanonical:  rt.ctr.uncanonical.Load(),
		Retries:      rt.ctr.retries.Load(),
		Failovers:    rt.ctr.failovers.Load(),
		Hedges:       HedgeStats{Launched: rt.ctr.hedgesLaunched.Load(), Won: rt.ctr.hedgesWon.Load()},
		LocalSolves:  rt.ctr.localSolves.Load(),
		Unroutable:   rt.ctr.unroutable.Load(),
		HedgeDelayMS: float64(rt.hedgeDelay()) / float64(time.Millisecond),
	}
	type fetched struct {
		i   int
		raw json.RawMessage
	}
	var ch chan fetched
	fetching := 0
	if fetch {
		ch = make(chan fetched, len(rt.cfg.Shards))
	}
	for i, addr := range rt.cfg.Shards {
		sh := rt.shards[addr]
		st.Shards = append(st.Shards, ShardStats{
			Addr:            addr,
			Healthy:         sh.healthy.Load(),
			Breaker:         sh.breaker.State().String(),
			ProbesOK:        sh.probesOK.Load(),
			ProbesFail:      sh.probesFail.Load(),
			Forwards:        sh.forwards.Load(),
			TransportErrors: sh.transportErrs.Load(),
		})
		if fetch && sh.healthy.Load() {
			fetching++
			go func(i int, addr string) { //lint:nocontain — one bounded HTTP GET, no solver code
				ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/stats", nil)
				if err != nil {
					ch <- fetched{i, nil}
					return
				}
				resp, err := probeClient.Do(req)
				if err != nil {
					ch <- fetched{i, nil}
					return
				}
				defer resp.Body.Close()
				raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
				if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(raw) {
					ch <- fetched{i, nil}
					return
				}
				ch <- fetched{i, raw}
			}(i, addr)
		}
	}
	for i := 0; i < fetching; i++ {
		f := <-ch
		st.Shards[f.i].Stats = f.raw
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.Snapshot(true))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if rt.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, map[string]string{"status": status})
}
