package cluster

import (
	"testing"
	"time"
)

// testClock is a manually-advanced clock wired into a breaker's now
// hook, so state transitions are tested without sleeping.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerOpensAtThreshold pins the closed->open transition:
// consecutive failures up to the threshold open the circuit, and a
// success in between resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // interleaved success resets the consecutive count
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 consecutive failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

// TestBreakerHalfOpenSingleProbe pins the open->half-open->closed
// path: after the cooldown exactly one probe passes, everyone else is
// shed until it reports, and its success closes the breaker.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("probe success did not close the breaker (state %v)", b.State())
	}
}

// TestBreakerHalfOpenFailureReopens pins the probe-failed path: the
// breaker re-opens for a full fresh cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted before its fresh cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker never recovered")
	}
}

// TestBreakerOpenFailureRefreshesCooldown pins that a shard failing
// its health probes while open stays shed: each failure pushes the
// half-open test out by a full cooldown.
func TestBreakerOpenFailureRefreshesCooldown(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.advance(900 * time.Millisecond)
	b.Failure() // e.g. a failed health probe
	clk.advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted though failures kept arriving")
	}
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker did not half-open a cooldown after the last failure")
	}
}
