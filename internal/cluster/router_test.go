package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// testShard is one fake backend: it identifies itself in every
// response and answers /healthz, and its solve latency can be dialed
// up after the ring is known (to make a specific owner slow).
type testShard struct {
	ts      *httptest.Server
	addr    string
	idx     int
	delayMS atomic.Int64
	hits    atomic.Int64
}

func newTestShard(idx int) *testShard {
	sh := &testShard{idx: idx}
	sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck — test server
			return
		}
		sh.hits.Add(1)
		if d := sh.delayMS.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"shard":%d,"path":%q}`, sh.idx, r.URL.Path)
	}))
	sh.addr = strings.TrimPrefix(sh.ts.URL, "http://")
	return sh
}

// shardReply decodes a test shard's identifying response.
type shardReply struct {
	Shard int    `json:"shard"`
	Path  string `json:"path"`
}

func startTestCluster(t *testing.T, n int, mod func(*Config)) ([]*testShard, *Router, *httptest.Server) {
	t.Helper()
	shards := make([]*testShard, n)
	addrs := make([]string, n)
	for i := range shards {
		shards[i] = newTestShard(i)
		addrs[i] = shards[i].addr
	}
	cfg := Config{
		Shards:        addrs,
		ProbeInterval: time.Hour, // one startup probe, then quiet
		MaxRetries:    -1,        // no retries unless the test wants them
		RetryBase:     time.Millisecond,
		HedgeDelay:    time.Hour, // no hedging unless the test wants it
	}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(func() {
		front.Close()
		rt.Close()
		for _, sh := range shards {
			sh.ts.Close()
		}
	})
	return shards, rt, front
}

func postVia(t *testing.T, url, path, body string) (shardReply, int) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var sr shardReply
	sr.Shard = -1
	_ = json.Unmarshal(data, &sr)
	return sr, resp.StatusCode
}

// bodyOwnerIdx predicts which shard index owns an unparseable body
// (router falls back to the body hash as routing key).
func bodyOwnerIdx(t *testing.T, shards []*testShard, body string) int {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, sh := range shards {
		addrs[i] = sh.addr
	}
	sum := sha256.Sum256([]byte(body))
	owner := NewRing(addrs, 0).Owner(hex.EncodeToString(sum[:]))
	for i, sh := range shards {
		if sh.addr == owner {
			return i
		}
	}
	t.Fatalf("owner %q not among shards", owner)
	return -1
}

// TestRouterRoutesToOwner pins request routing: the same body lands on
// the same shard every time, and that shard is the ring owner of the
// routing key.
func TestRouterRoutesToOwner(t *testing.T) {
	shards, _, front := startTestCluster(t, 3, nil)
	body := `{"opaque":"not-smtlib"}`
	want := bodyOwnerIdx(t, shards, body)
	for i := 0; i < 3; i++ {
		sr, code := postVia(t, front.URL, "/solve", body)
		if code != http.StatusOK || sr.Shard != want {
			t.Fatalf("request %d answered by shard %d with code %d, want shard %d",
				i, sr.Shard, code, want)
		}
	}
}

// TestRouterFailsOverFromDeadOwner pins the failover half of the
// robustness ladder: with the owner's process gone, the request lands
// on a ring successor and still answers 200.
func TestRouterFailsOverFromDeadOwner(t *testing.T) {
	before := fault.Snapshot()
	shards, rt, front := startTestCluster(t, 3, nil)
	body := `{"opaque":"kill-my-owner"}`
	owner := bodyOwnerIdx(t, shards, body)
	shards[owner].ts.Close()

	sr, code := postVia(t, front.URL, "/solve", body)
	if code != http.StatusOK {
		t.Fatalf("failover answered %d, want 200", code)
	}
	if sr.Shard == owner || sr.Shard < 0 {
		t.Fatalf("request answered by shard %d; owner %d is dead", sr.Shard, owner)
	}
	st := rt.Snapshot(false)
	if st.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", st.Failovers)
	}
	front.Close()
	rt.Close()
	for _, sh := range shards {
		sh.ts.Close()
	}
	fault.CheckLeaks(t, before)
}

// TestRouterHedgesSlowOwner pins hedging: an interactive request stuck
// on a slow owner is duplicated to the successor after the hedge
// delay, and the first response wins.
func TestRouterHedgesSlowOwner(t *testing.T) {
	shards, rt, front := startTestCluster(t, 3, func(c *Config) {
		c.HedgeDelay = 10 * time.Millisecond
	})
	body := `{"opaque":"slow-owner"}`
	owner := bodyOwnerIdx(t, shards, body)
	shards[owner].delayMS.Store(1500)

	start := time.Now()
	sr, code := postVia(t, front.URL, "/solve", body)
	elapsed := time.Since(start)
	if code != http.StatusOK || sr.Shard == owner {
		t.Fatalf("hedged request: code %d shard %d (owner %d)", code, sr.Shard, owner)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %v; the hedge should have won long before the owner's 1.5s", elapsed)
	}
	st := rt.Snapshot(false)
	if st.Hedges.Launched < 1 || st.Hedges.Won < 1 {
		t.Fatalf("hedge counters launched=%d won=%d, want both >= 1", st.Hedges.Launched, st.Hedges.Won)
	}
}

// TestRouterDegradesToLocalSolve pins the bottom of the ladder: with
// every shard unreachable the request is served by the local handler,
// and once every breaker is open the local path engages without
// touching the network.
func TestRouterDegradesToLocalSolve(t *testing.T) {
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"shard":-7}`)) //nolint:errcheck — test handler
	})
	// Dead ports: listeners that were never opened.
	rt, err := New(Config{
		Shards:           []string{"127.0.0.1:1", "127.0.0.2:1", "127.0.0.3:1"},
		Local:            local,
		ProbeInterval:    time.Hour,
		BreakerThreshold: 1,
		MaxRetries:       -1,
		RetryBase:        time.Millisecond,
		HedgeDelay:       time.Hour,
		HopTimeout:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	for i := 0; i < 2; i++ {
		sr, code := postVia(t, front.URL, "/solve", `{"n":1}`)
		if code != http.StatusOK || sr.Shard != -7 {
			t.Fatalf("request %d: code %d shard %d, want the local handler (-7)", i, code, sr.Shard)
		}
	}
	st := rt.Snapshot(false)
	if st.LocalSolves != 2 {
		t.Fatalf("local_solves = %d, want 2", st.LocalSolves)
	}
	// The second request found every breaker already open (threshold 1
	// opened each on the first pass), so it made no network attempts.
	open := 0
	for _, sh := range st.Shards {
		if sh.Breaker == "open" {
			open++
		}
	}
	if open != 3 {
		t.Fatalf("%d breakers open, want all 3", open)
	}
}

// TestRouterNoLocalFallbackIs503 pins degraded behavior without a
// Local handler: an unreachable cluster answers 503 with Retry-After,
// never hangs.
func TestRouterNoLocalFallbackIs503(t *testing.T) {
	rt, err := New(Config{
		Shards:        []string{"127.0.0.1:1"},
		ProbeInterval: time.Hour,
		MaxRetries:    -1,
		HopTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()
	resp, err := http.Post(front.URL+"/solve", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("code %d Retry-After %q, want 503 with a backoff hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestRouterJobIDRoundTrip pins the shard-prefixed job id scheme.
func TestRouterJobIDRoundTrip(t *testing.T) {
	id := routedJobID(2, "job-17")
	if id != "s2!job-17" {
		t.Fatalf("routedJobID = %q", id)
	}
	idx, rest, ok := splitJobID(id)
	if !ok || idx != 2 || rest != "job-17" {
		t.Fatalf("splitJobID(%q) = %d %q %v", id, idx, rest, ok)
	}
	for _, bad := range []string{"", "job-17", "s!job-1", "sx!job-1", "s-1!job-1", "s2job-1"} {
		if _, _, ok := splitJobID(bad); ok {
			t.Errorf("splitJobID(%q) accepted a malformed id", bad)
		}
	}
}

// TestRouterBatchAndJobRouting pins the async path through the
// router: the 202's job id gains the shard prefix, and polling it
// routes back to the owning shard with the original id.
func TestRouterBatchAndJobRouting(t *testing.T) {
	var batchShard atomic.Int64
	batchShard.Store(-1)
	shards := make([]*testShard, 3)
	addrs := make([]string, 3)
	for i := range shards {
		i := i
		sh := &testShard{idx: i}
		sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch {
			case r.URL.Path == "/healthz":
				w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck — test server
			case r.URL.Path == "/batch":
				batchShard.Store(int64(i))
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusAccepted)
				w.Write([]byte(`{"job_id":"job-9","tenant":"t","instances":2}`)) //nolint:errcheck — test server
			default:
				fmt.Fprintf(w, `{"shard":%d,"path":%q}`, i, r.URL.Path)
			}
		}))
		sh.addr = strings.TrimPrefix(sh.ts.URL, "http://")
		shards[i] = sh
		addrs[i] = sh.addr
	}
	rt, err := New(Config{
		Shards:        addrs,
		ProbeInterval: time.Hour,
		MaxRetries:    -1,
		HedgeDelay:    time.Hour,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	front := httptest.NewServer(rt)
	defer func() {
		front.Close()
		rt.Close()
		for _, sh := range shards {
			sh.ts.Close()
		}
	}()

	resp, err := http.Post(front.URL+"/batch", "application/json", strings.NewReader(`{"instances":[]}`))
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch 202 decode: code %d err %v", resp.StatusCode, err)
	}
	want := routedJobID(int(batchShard.Load()), "job-9")
	if acc.JobID != want {
		t.Fatalf("routed job id = %q, want %q", acc.JobID, want)
	}

	jr, code := func() (shardReply, int) {
		resp, err := http.Get(front.URL + "/jobs/" + acc.JobID)
		if err != nil {
			t.Fatalf("GET /jobs: %v", err)
		}
		defer resp.Body.Close()
		var sr shardReply
		sr.Shard = -1
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return sr, resp.StatusCode
	}()
	if code != http.StatusOK || jr.Shard != int(batchShard.Load()) || jr.Path != "/jobs/job-9" {
		t.Fatalf("job poll: code %d shard %d path %q, want shard %d path /jobs/job-9",
			code, jr.Shard, jr.Path, batchShard.Load())
	}

	if resp, err := http.Get(front.URL + "/jobs/job-9"); err != nil {
		t.Fatalf("GET unprefixed job: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unprefixed job id answered %d, want 404", resp.StatusCode)
		}
	}
}

// TestRouterDrainingRejects pins shutdown behavior: a closed router
// sheds new work with 503 + Retry-After and stops its probers.
func TestRouterDrainingRejects(t *testing.T) {
	before := fault.Snapshot()
	shards, rt, front := startTestCluster(t, 2, nil)
	rt.Close()
	resp, err := http.Post(front.URL+"/solve", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", resp.StatusCode)
	}
	front.Close()
	for _, sh := range shards {
		sh.ts.Close()
	}
	fault.CheckLeaks(t, before)
}

// TestRouterStatsAggregation pins the cluster-wide /stats: router
// counters plus one entry per shard with breaker state and the shard's
// own stats embedded when reachable.
func TestRouterStatsAggregation(t *testing.T) {
	shards, _, front := startTestCluster(t, 3, nil)
	if _, code := postVia(t, front.URL, "/solve", `{"q":1}`); code != http.StatusOK {
		t.Fatalf("warmup solve answered %d", code)
	}
	resp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.Routed < 1 {
		t.Fatalf("routed = %d, want >= 1", st.Routed)
	}
	if len(st.Shards) != len(shards) {
		t.Fatalf("stats list %d shards, want %d", len(st.Shards), len(shards))
	}
	for _, sh := range st.Shards {
		if sh.Breaker != "closed" {
			t.Errorf("shard %s breaker %q, want closed", sh.Addr, sh.Breaker)
		}
		if len(sh.Stats) == 0 {
			t.Errorf("shard %s stats not embedded", sh.Addr)
		}
	}
}
