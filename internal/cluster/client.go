package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"repro/internal/fault"
)

// maxResponseBytes bounds how much of a shard response the router will
// buffer. Responses are JSON verdicts and stats snapshots; 32 MiB is
// far past any real one and small enough that a misbehaving shard
// cannot balloon the router.
const maxResponseBytes = 32 << 20

// stallBound caps how long an injected NetStall blocks when the
// caller's context carries no deadline, so a chaos run without
// timeouts cannot hang a test forever.
const stallBound = 30 * time.Second

// Result is one completed HTTP exchange: any HTTP status is a result
// (a shard's 503 is an answer, not a transport failure — the breaker
// counts it as a success and the router forwards it). Only errors —
// refused connections, resets, timeouts, severed bodies — are
// transport failures, eligible for retry and failover.
type Result struct {
	Status int
	Header http.Header
	Body   []byte
}

// Client is the cluster transport: one HTTP exchange per Do call, with
// the network fault boundary in front (injected connect failures,
// stalls, and mid-body cuts at the k-th hop) and bounded
// backoff-with-jitter retries in DoRetry. It retries TRANSPORT
// failures only — a solver verdict, whatever its status code, is never
// re-requested, because re-solving on a verdict would turn routing
// into a semantics change.
type Client struct {
	hc         *http.Client
	maxRetries int           // additional attempts after the first
	retryBase  time.Duration // backoff base, doubled per retry
	sched      *fault.Schedule
}

// NewClient builds a transport. timeout bounds each attempt (0 = no
// per-attempt bound beyond the caller's context); maxRetries and
// retryBase shape DoRetry (defaults 2 and 50ms).
func NewClient(timeout time.Duration, maxRetries int, retryBase time.Duration, sched *fault.Schedule) *Client {
	if maxRetries < 0 {
		maxRetries = 2
	}
	if retryBase <= 0 {
		retryBase = 50 * time.Millisecond
	}
	return &Client{
		hc:         &http.Client{Timeout: timeout},
		maxRetries: maxRetries,
		retryBase:  retryBase,
		sched:      sched,
	}
}

// Do performs one HTTP exchange (one network hop) and buffers the
// response. The fault schedule's network boundary is consulted exactly
// once per call.
func (c *Client) Do(ctx context.Context, method, url string, header http.Header, body []byte) (*Result, error) {
	switch c.sched.NetVisit() {
	case fault.NetConnectFail:
		return nil, errors.New("fault: injected connect failure")
	case fault.NetStall:
		// A real black-holed peer is bounded by the per-attempt client
		// timeout; the injected stall honors the same bound so the
		// caller's retry/failover budget survives the hop.
		bound := stallBound
		if c.hc.Timeout > 0 && c.hc.Timeout < bound {
			bound = c.hc.Timeout
		}
		timer := time.NewTimer(bound)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fault: injected stall: %w", ctx.Err())
		case <-timer.C:
			return nil, errors.New("fault: injected stall expired")
		}
	case fault.NetCut:
		res, err := c.exchange(ctx, method, url, header, body, true)
		if err != nil {
			return res, err
		}
		// contract: exchange(cut=true) never returns a nil error
		panic("cluster: injected cut produced a whole response")
	}
	return c.exchange(ctx, method, url, header, body, false)
}

// exchange is the real hop. cut severs the response body halfway
// through the read, modeling a peer that died after its headers went
// out: the caller sees a transport error after bytes already moved.
func (c *Client) exchange(ctx context.Context, method, url string, header http.Header, body []byte, cut bool) (*Result, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	if cut {
		return nil, fmt.Errorf("fault: injected mid-body cut after %d bytes", len(data)/2)
	}
	return &Result{Status: resp.StatusCode, Header: resp.Header, Body: data}, nil
}

// DoRetry is Do with bounded retries: up to maxRetries additional
// attempts after a transport failure, spaced by exponential backoff
// with full jitter (base*2^i, then a uniform draw from that window, so
// synchronized retry storms decorrelate). A response — any status — is
// returned immediately; the backoff sleep respects ctx.
func (c *Client) DoRetry(ctx context.Context, method, url string, header http.Header, body []byte) (*Result, int, error) {
	var lastErr error
	retries := 0
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			retries++
			window := c.retryBase << (attempt - 1)
			jittered := time.Duration(1 + rand.Int64N(int64(window)))
			timer := time.NewTimer(jittered)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, retries, fmt.Errorf("retry wait: %w", ctx.Err())
			case <-timer.C:
			}
		}
		res, err := c.Do(ctx, method, url, header, body)
		if err == nil {
			return res, retries, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller's budget is gone; more attempts are noise
		}
	}
	return nil, retries, lastErr
}
