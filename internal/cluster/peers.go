package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/fault"
)

// CacheEntry is the wire form of one canonical verdict, served by a
// shard's GET /cache/<hash> endpoint and consumed by peer cache-fill.
// It carries the verdict in canonical coordinates — exactly what the
// verdict cache stores — so the receiving shard transports it onto its
// own parse and re-validates the witness before trusting it, the same
// rule a local cache hit obeys.
type CacheEntry struct {
	Status  string   `json:"status"` // "sat" or "unsat", never anything else
	Backend string   `json:"backend,omitempty"`
	Str     []string `json:"str,omitempty"` // canonical string witness (sat only)
	Int     []string `json:"int,omitempty"` // canonical integer witness, decimal
}

// peerFetchTimeout bounds one peer cache-fill hop. The fill is an
// optimization — a slow owner must cost less than the solve it might
// save — so the bound is tight and a miss just falls through to
// solving locally.
const peerFetchTimeout = 500 * time.Millisecond

// Peers is a shard's view of its cluster: the shared ring, its own
// address, and a guarded client for asking a canonical problem's owner
// for an already-settled verdict before solving (peer cache-fill, so
// the distributed verdict cache fills once per canonical problem). A
// nil *Peers is "no cluster" and every method degrades to a miss.
type Peers struct {
	ring     *Ring
	self     string
	client   *Client
	breakers map[string]*Breaker
}

// NewPeers builds a shard's peer view. shards is the full cluster list
// (including self, in the shared order); self is this shard's own
// address in that list. A list without self or with fewer than two
// shards returns nil: there is no one to ask.
func NewPeers(self string, shards []string, sched *fault.Schedule) *Peers {
	if len(shards) < 2 {
		return nil
	}
	found := false
	for _, s := range shards {
		if s == self {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	p := &Peers{
		ring:     NewRing(shards, 0),
		self:     self,
		client:   NewClient(peerFetchTimeout, 0, 0, sched),
		breakers: make(map[string]*Breaker),
	}
	for _, s := range shards {
		p.breakers[s] = NewBreaker(3, 2*time.Second)
	}
	return p
}

// Self returns this shard's own cluster address ("" for a nil,
// standalone view).
func (p *Peers) Self() string {
	if p == nil {
		return ""
	}
	return p.self
}

// Owner returns the shard owning hash and whether that is this shard
// itself (in which case there is no one better to ask).
func (p *Peers) Owner(hash string) (addr string, self bool) {
	if p == nil {
		return "", true
	}
	addr = p.ring.Owner(hash)
	return addr, addr == p.self
}

// Fetch asks hash's owner for a settled canonical verdict. It returns
// (nil, nil) on a miss — the owner answered 404, the owner is this
// shard, or its breaker is open — and an error only on transport
// failure. One bounded hop, no retries: the caller's fallback is
// solving the problem itself, which is always available.
func (p *Peers) Fetch(ctx context.Context, hash string) (*CacheEntry, error) {
	if p == nil {
		return nil, nil
	}
	owner, self := p.Owner(hash)
	if self {
		return nil, nil
	}
	br := p.breakers[owner]
	if !br.Allow() {
		return nil, nil
	}
	ctx, cancel := context.WithTimeout(ctx, peerFetchTimeout)
	defer cancel()
	res, err := p.client.Do(ctx, http.MethodGet, "http://"+owner+"/cache/"+hash, nil, nil)
	if err != nil {
		br.Failure()
		return nil, err
	}
	br.Success()
	if res.Status != http.StatusOK {
		return nil, nil
	}
	var e CacheEntry
	if err := json.Unmarshal(res.Body, &e); err != nil {
		return nil, fmt.Errorf("decoding peer cache entry: %w", err)
	}
	if e.Status != "sat" && e.Status != "unsat" {
		// A peer may only hand over settled verdicts; anything else is
		// treated as a miss, never cached, never served.
		return nil, nil
	}
	return &e, nil
}
