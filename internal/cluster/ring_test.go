package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like canonical problem hashes: opaque hex-ish strings.
		keys[i] = fmt.Sprintf("hash-%04x", i)
	}
	return keys
}

// TestRingDeterministicAcrossInstances pins the cross-process
// contract: two rings built from the same shard list assign every key
// identically, because construction uses nothing but the list — no
// clock, no randomness, no process identity. Shards rely on this to
// answer "who owns this hash?" without consulting the router.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	shards := []string{"10.0.0.1:9101", "10.0.0.2:9101", "10.0.0.3:9101"}
	a, b := NewRing(shards, 0), NewRing(shards, 0)
	for _, k := range ringKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("Owner(%q) differs across instances: %q vs %q", k, ao, bo)
		}
	}
}

// TestRingGoldenAssignment pins concrete owner assignments, so an
// accidental change to the hash construction (which would strand every
// deployed cluster's cache placement) fails loudly instead of
// silently remapping.
func TestRingGoldenAssignment(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	golden := map[string]string{
		"k0": "a:1",
		"k1": "a:1",
		"k2": "b:1",
		"k3": "a:1",
		"k4": "b:1",
		"k5": "c:1",
		"k6": "c:1",
		"k7": "a:1",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q", k, got, want)
		}
	}
}

// TestRingBalance checks the virtual nodes spread keys reasonably: no
// shard of a 4-shard ring owns less than half or more than double its
// fair share over a large key set.
func TestRingBalance(t *testing.T) {
	shards := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(shards, 0)
	counts := map[string]int{}
	keys := ringKeys(8000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(shards)
	for _, s := range shards {
		if c := counts[s]; c < fair/2 || c > fair*2 {
			t.Errorf("shard %q owns %d keys, fair share %d", s, c, fair)
		}
	}
}

// TestRingMinimalDisruptionOnAdd pins the consistent-hashing property
// that makes failover cheap: adding a shard only MOVES keys TO the new
// shard — every key that keeps an old owner keeps the same one — and
// only about 1/N of keys move at all.
func TestRingMinimalDisruptionOnAdd(t *testing.T) {
	old := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	grown := NewRing([]string{"a:1", "b:1", "c:1", "d:1", "e:1"}, 0)
	keys := ringKeys(8000)
	moved := 0
	for _, k := range keys {
		before, after := old.Owner(k), grown.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != "e:1" {
			t.Fatalf("key %q moved %q -> %q, but only the new shard may gain keys", k, before, after)
		}
	}
	// Expect ~1/5 of keys to move; allow generous slack for hash
	// variance but catch a full reshuffle (which would read ~4/5).
	if lo, hi := len(keys)/10, len(keys)/2; moved < lo || moved > hi {
		t.Errorf("add moved %d of %d keys, want roughly %d", moved, len(keys), len(keys)/5)
	}
}

// TestRingMinimalDisruptionOnRemove pins the mirror property: removing
// a shard only reassigns the keys it owned; everyone else's keys stay
// put. This is exactly what a breaker-open failover relies on — the
// successor walk agrees with the ring a survivor would build.
func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	full := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	shrunk := NewRing([]string{"a:1", "b:1", "d:1"}, 0)
	for _, k := range ringKeys(8000) {
		before, after := full.Owner(k), shrunk.Owner(k)
		if before == "c:1" {
			if after == "c:1" {
				t.Fatalf("key %q still owned by removed shard", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
		}
	}
}

// TestRingSuccessorsFailoverOrder pins the failover walk: distinct
// shards, owner first, and removing the owner promotes exactly the
// next successor (so a failed-over key lands where the shrunken ring
// would have put it).
func TestRingSuccessorsFailoverOrder(t *testing.T) {
	shards := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(shards, 0)
	for _, k := range ringKeys(200) {
		succ := r.Successors(k, 0)
		if len(succ) != len(shards) {
			t.Fatalf("Successors(%q) = %d shards, want %d", k, len(succ), len(shards))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) repeats %q", k, s)
			}
			seen[s] = true
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors(%q)[0] = %q, Owner = %q", k, succ[0], r.Owner(k))
		}
		// The ring without the owner must elect the first successor.
		var without []string
		for _, s := range shards {
			if s != succ[0] {
				without = append(without, s)
			}
		}
		if got := NewRing(without, 0).Owner(k); got != succ[1] {
			t.Fatalf("ring without owner elects %q, successor walk says %q", got, succ[1])
		}
	}
}

// TestRingSuccessorsBounded pins the n parameter.
func TestRingSuccessorsBounded(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	if got := r.Successors("k", 2); len(got) != 2 {
		t.Fatalf("Successors(k, 2) returned %d shards", len(got))
	}
	if got := r.Successors("k", 99); len(got) != 3 {
		t.Fatalf("Successors(k, 99) returned %d shards", len(got))
	}
}
