package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/portfolio"
	"repro/internal/strcon"
)

// portfolioInstances is the differential corpus: every generator of
// the benchmark tables plus the small end of the checkLuhn family
// (kept smaller than equivInstances — the portfolio compares against
// all five registry backends, not two modes).
func portfolioInstances() []*Instance {
	var insts []*Instance
	for _, s := range Table1Suites(3) {
		insts = append(insts, s.Instances...)
	}
	for _, s := range Table2Suites(3) {
		insts = append(insts, s.Instances...)
	}
	for k := 2; k <= 4; k++ {
		insts = append(insts, Luhn(k))
	}
	return insts
}

// TestPortfolioDifferential solves every generator instance with the
// portfolio and with each registry backend individually. Settled
// verdicts must agree everywhere (modulo UNKNOWN/deadline — an
// incomplete or timed-out engine legitimately answers UNKNOWN where
// another decided), and every SAT model, from the portfolio or any
// single backend, must validate against a fresh build of the problem.
func TestPortfolioDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite solves the full corpus once per backend")
	}
	const budget = 20 * time.Second
	for _, inst := range portfolioInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			pec := engine.WithTimeout(budget)
			pres := portfolio.New(portfolio.Config{}).Solve(inst.Build(), backend.Options{}, pec)
			checkVerdict(t, inst, "portfolio", pres)

			for _, b := range backend.All() {
				ec := engine.WithTimeout(budget)
				res := b.Solve(inst.Build(), backend.Options{}, ec)
				checkVerdict(t, inst, b.Name(), res)
				settled := func(s core.Status) bool { return s == core.StatusSat || s == core.StatusUnsat }
				if settled(res.Status) && settled(pres.Status) && res.Status != pres.Status {
					t.Fatalf("%s: backend %s says %v, portfolio says %v",
						inst.Name, b.Name(), res.Status, pres.Status)
				}
				if res.Backend != b.Name() {
					t.Fatalf("%s: backend %s labeled its result %q", inst.Name, b.Name(), res.Backend)
				}
			}
		})
	}
}

// checkVerdict asserts one result against the instance's ground truth
// and validates any model on a fresh build.
func checkVerdict(t *testing.T, inst *Instance, who string, res core.Result) {
	t.Helper()
	if inst.Expected == ExpectSat && res.Status == core.StatusUnsat ||
		inst.Expected == ExpectUnsat && res.Status == core.StatusSat {
		t.Fatalf("%s: %s verdict %v contradicts ground truth %v", inst.Name, who, res.Status, inst.Expected)
	}
	if res.Status == core.StatusSat {
		if res.Model == nil {
			t.Fatalf("%s: %s sat without model", inst.Name, who)
		}
		if !inst.Build().Eval(res.Model) {
			t.Fatalf("%s: %s model fails validation", inst.Name, who)
		}
	}
}

// TestPortfolioVerdictsDeterministic is the acceptance check for the
// racing determinism rule: repeated portfolio runs over the same
// inputs produce byte-identical verdict vectors — both across fresh
// schedulers and across repeated solves on ONE scheduler, whose win
// history has by then biased its backend selection.
func TestPortfolioVerdictsDeterministic(t *testing.T) {
	insts := portfolioInstances()
	verdicts := func(p *portfolio.Solver) string {
		var sb strings.Builder
		for _, inst := range insts {
			res := p.Solve(inst.Build(), backend.Options{}, engine.WithTimeout(20*time.Second))
			fmt.Fprintf(&sb, "%s=%v\n", inst.Name, res.Status)
		}
		return sb.String()
	}
	shared := portfolio.New(portfolio.Config{})
	first := verdicts(shared)
	biased := verdicts(shared) // second pass: history-biased scheduling
	fresh := verdicts(portfolio.New(portfolio.Config{}))
	if first != biased {
		t.Fatalf("verdicts changed once the scheduler had history:\n%s\nvs\n%s", first, biased)
	}
	if first != fresh {
		t.Fatalf("verdicts differ between fresh schedulers:\n%s\nvs\n%s", first, fresh)
	}
}

// TestPortfolioDominatesLuhn is the Table 3 acceptance criterion: on
// the checkLuhn family the portfolio settles at least every instance
// that any single backend settles within the same budget.
func TestPortfolioDominatesLuhn(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the Luhn family once per backend")
	}
	const budget = 15 * time.Second
	for k := 2; k <= 6; k++ {
		inst := Luhn(k)
		pres := portfolio.New(portfolio.Config{}).Solve(inst.Build(), backend.Options{}, engine.WithTimeout(budget))
		for _, b := range backend.All() {
			res := b.Solve(inst.Build(), backend.Options{}, engine.WithTimeout(budget))
			if (res.Status == core.StatusSat || res.Status == core.StatusUnsat) &&
				pres.Status == core.StatusUnknown {
				t.Errorf("luhn-%02d: backend %s settled %v but the portfolio answered unknown (%s)",
					k, b.Name(), res.Status, pres.Reason)
			}
		}
	}
}

// panicBackend is a fully-capable backend that always panics: raced
// into the portfolio, it stands in for a crashing engine. Its caps
// make it the scheduler's anchor, so the test also proves a crashed
// anchor cannot take the race down with it.
type panicBackend struct{}

func (panicBackend) Name() string { return "panicker" }
func (panicBackend) Caps() backend.Caps {
	return backend.Caps{ProvesSat: true, ProvesUnsat: true, Conversion: true, Regex: true, CostHint: 1}
}
func (panicBackend) Solve(_ *strcon.Problem, _ backend.Options, _ *engine.Ctx) core.Result {
	panic("injected backend crash")
}

// TestPortfolioChaosBackendPanic is the containment half of the
// differential satellite: a backend that panics mid-race degrades only
// itself. The race still settles with the ground-truth verdict from a
// surviving backend, the crash is contained (counted in the stats
// tree), and no goroutine leaks.
func TestPortfolioChaosBackendPanic(t *testing.T) {
	pool := append([]backend.Backend{panicBackend{}}, backend.All()...)
	for _, inst := range chaosInstances() {
		before := fault.Snapshot()
		ec := engine.WithTimeout(20 * time.Second)
		res := portfolio.New(portfolio.Config{Backends: pool}).Solve(inst.Build(), backend.Options{}, ec)
		want := core.StatusSat
		if inst.Expected == ExpectUnsat {
			want = core.StatusUnsat
		}
		if res.Status != want {
			t.Errorf("%s: verdict %v (reason %q), want %v despite one crashing backend",
				inst.Name, res.Status, res.Reason, want)
		}
		if res.Backend == "" || res.Backend == "panicker" {
			t.Errorf("%s: winning backend = %q", inst.Name, res.Backend)
		}
		if got := ec.Stats().Total("fault.contained"); got < 1 {
			t.Errorf("%s: contained-fault count = %d, want >= 1", inst.Name, got)
		}
		fault.CheckLeaks(t, before)
	}
}

// TestPortfolioChaosInjectionSweep runs the deterministic fault
// schedule over whole portfolio solves: a counting pass learns how
// many injectable sites a race visits, then panic/cancel/budget faults
// are injected at the first, middle, and last site. Whichever racing
// backend the fault lands in, the verdict never flips SAT<->UNSAT and
// no goroutine outlives its solve.
func TestPortfolioChaosInjectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow; skipped with -short")
	}
	for _, inst := range chaosInstances() {
		counting := fault.Counting()
		ec := engine.Background()
		ec.SetSchedule(counting)
		baseline := portfolio.New(portfolio.Config{}).Solve(inst.Build(), backend.Options{}, ec)
		if inst.Expected == ExpectSat && baseline.Status != core.StatusSat ||
			inst.Expected == ExpectUnsat && baseline.Status != core.StatusUnsat {
			t.Fatalf("%s: baseline = %v, want %v", inst.Name, baseline.Status, inst.Expected)
		}
		n := counting.Visits()
		if n == 0 {
			t.Fatalf("%s: counting pass saw no injectable sites", inst.Name)
		}
		for _, k := range []uint64{1, n/2 + 1, n} {
			for _, op := range []fault.Op{fault.OpPanic, fault.OpCancel, fault.OpBudget} {
				before := fault.Snapshot()
				ec := engine.Background()
				ec.SetSchedule(fault.At(k, op))
				res := portfolio.New(portfolio.Config{}).Solve(inst.Build(), backend.Options{}, ec)
				if res.Status != core.StatusUnknown && res.Status != baseline.Status {
					t.Errorf("%s inject %v@%d: verdict flipped %v -> %v",
						inst.Name, op, k, baseline.Status, res.Status)
				}
				if res.Status == core.StatusUnknown && res.Reason == "" {
					t.Errorf("%s inject %v@%d: unknown verdict with no reason", inst.Name, op, k)
				}
				fault.CheckLeaks(t, before)
			}
		}
	}
}

// TestPortfolioOverBudgetDegrades pins the budget-slice path: a hard
// instance under a tiny tree-wide budget makes every raced backend
// exhaust its slice, and the portfolio reports the governor's
// "budget: <site>" reason instead of a bare unknown.
func TestPortfolioOverBudgetDegrades(t *testing.T) {
	before := fault.Snapshot()
	ec := engine.Background()
	ec.SetBudget(300)
	res := portfolio.New(portfolio.Config{}).Solve(Luhn(8).Build(), backend.Options{}, ec)
	if res.Status != core.StatusUnknown {
		t.Fatalf("over-budget portfolio solve = %v, want unknown", res.Status)
	}
	if !strings.HasPrefix(res.Reason, "budget: ") {
		t.Fatalf("over-budget reason = %q, want \"budget: <site>\"", res.Reason)
	}
	if ec.Cause() != engine.CauseNone {
		t.Fatalf("root context stopped (%v); budget slices must be confined to the attempts", ec.Cause())
	}
	fault.CheckLeaks(t, before)
}
