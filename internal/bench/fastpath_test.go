package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simplex"
)

// solveForced runs one instance with the simplex fast path forced off
// (every rational operation routed through big.Rat) or left in its
// default int64-first configuration.
func solveForced(inst *Instance, slow bool) (core.Result, bool) {
	simplex.ForceSlowPath = slow
	defer func() { simplex.ForceSlowPath = false }()
	return solveMode(inst, core.IncrementalOn, 1)
}

// TestFastPathSlowPathAgreement is the differential gate for the int64
// arithmetic substrate: every generator instance of the benchmark
// tables is solved twice, once on the machine-word fast path and once
// with ForceSlowPath routing all simplex arithmetic through big.Rat.
// Because both paths compute exact rationals, the solver must be
// bit-for-bit deterministic across them: identical verdicts and
// identical witnesses, not merely models that both validate.
func TestFastPathSlowPathAgreement(t *testing.T) {
	for _, inst := range equivInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			fast, fastTO := solveForced(inst, false)
			slow, slowTO := solveForced(inst, true)
			if fast.Status != slow.Status {
				excused := fast.Status == core.StatusUnknown && fastTO ||
					slow.Status == core.StatusUnknown && slowTO
				if !excused {
					t.Fatalf("%s: fast path %v, slow path %v", inst.Name, fast.Status, slow.Status)
				}
				t.Logf("%s: verdicts differ under timeout (fast %v, slow %v)", inst.Name, fast.Status, slow.Status)
			}
			if fast.Status == core.StatusSat && slow.Status == core.StatusSat {
				if !modelsEqual(fast.Model, slow.Model) {
					t.Fatalf("%s: fast-path witness differs from slow-path witness", inst.Name)
				}
			}
			if fast.Status == core.StatusSat {
				if !inst.Build().Eval(fast.Model) {
					t.Fatalf("%s: shared witness fails concrete validation", inst.Name)
				}
			}
			if inst.Expected == ExpectSat && fast.Status == core.StatusUnsat ||
				inst.Expected == ExpectUnsat && fast.Status == core.StatusSat {
				t.Fatalf("%s: verdict %v contradicts ground truth %v", inst.Name, fast.Status, inst.Expected)
			}
		})
	}
}
