package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strcon"
)

// fakeInstance builds a trivial problem carrying n string variables, so
// a fake solver can tell instances apart without solving anything.
func fakeInstance(name string, n int) *Instance {
	return &Instance{
		Name: name,
		Build: func() *strcon.Problem {
			prob := strcon.NewProblem()
			for i := 0; i < n; i++ {
				prob.NewStrVar(fmt.Sprintf("x%d", i))
			}
			return prob
		},
		Expected: ExpectSat,
	}
}

// TestJSONSuiteReportsExcludedTimeouts is the regression test for the
// silent-exclusion bug: aggregate rows drop timed-out runs from the
// statistics means, and before stats_excluded_timeouts a JSON consumer
// could not tell an excluded run from an absent one.
func TestJSONSuiteReportsExcludedTimeouts(t *testing.T) {
	insts := []*Instance{
		fakeInstance("fast-1", 1),
		fakeInstance("slow", 2),
		fakeInstance("fast-2", 3),
	}
	// The fake solver decides instantly except on the 2-variable
	// instance, where it spins until the deadline expires.
	solver := Solver{
		Name: "fake",
		Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
			ec.Stats().Add("rounds", 4)
			if p.NumStrVars() == 2 {
				for !ec.Expired() {
					time.Sleep(time.Millisecond)
				}
				return core.StatusUnknown
			}
			return core.StatusSat
		},
	}
	r := RunSuite(insts, solver, 30*time.Millisecond, 1)
	row := jsonSuite("1", "fake-suite", solver.Name, r)

	if row.Instances != 3 {
		t.Fatalf("instances = %d, want 3", row.Instances)
	}
	if row.Timeout != 1 || row.Sat != 2 {
		t.Fatalf("counts = sat %d timeout %d, want 2/1", row.Sat, row.Timeout)
	}
	if row.StatsInstances != 2 {
		t.Fatalf("stats_instances = %d, want 2 (timed-out run excluded)", row.StatsInstances)
	}
	if row.StatsExcludedTimeouts != 1 {
		t.Fatalf("stats_excluded_timeouts = %d, want 1", row.StatsExcludedTimeouts)
	}
	if row.StatsInstances+row.StatsExcludedTimeouts != row.Instances {
		t.Fatalf("stats_instances %d + stats_excluded_timeouts %d != instances %d",
			row.StatsInstances, row.StatsExcludedTimeouts, row.Instances)
	}
	// The means are over the finished runs only: 2 runs x 4 rounds.
	if row.MeanRounds != 4.0 {
		t.Fatalf("mean_rounds = %v, want 4.0 over the 2 finished runs", row.MeanRounds)
	}
}

// TestJSONSuiteNoTimeouts pins the common case: every run finishes, so
// nothing is excluded and the two instance counts coincide.
func TestJSONSuiteNoTimeouts(t *testing.T) {
	insts := []*Instance{fakeInstance("a", 1), fakeInstance("b", 3)}
	solver := Solver{
		Name: "fake",
		Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
			return core.StatusSat
		},
	}
	r := RunSuite(insts, solver, time.Second, 1)
	row := jsonSuite("1", "fake-suite", solver.Name, r)
	if row.StatsInstances != 2 || row.StatsExcludedTimeouts != 0 {
		t.Fatalf("stats_instances %d excluded %d, want 2/0",
			row.StatsInstances, row.StatsExcludedTimeouts)
	}
}
