package bench

import (
	"strings"
	"testing"
)

func row(table, suite, solver string, mean float64, sat, unknown int) JSONSuite {
	return JSONSuite{Table: table, Suite: suite, Solver: solver, MeanMS: mean,
		Instances: sat + unknown, Sat: sat, Unknown: unknown}
}

func TestCompareFlagsRegressionsAndVerdicts(t *testing.T) {
	base := &JSONReport{
		Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 8, TimeoutMS: 5000, Workers: 1},
		Suites: []JSONSuite{
			row("3", "checkLuhn", "refine", 200, 7, 0),
			row("3", "checkLuhn", "enum", 2600, 0, 7),
			row("3", "checkLuhn", "split", 80, 0, 7),
			row("3", "checkLuhn", "gone", 50, 7, 0),
		},
	}
	cur := &JSONReport{
		Config: base.Config,
		Suites: []JSONSuite{
			row("3", "checkLuhn", "refine", 90, 7, 0), // 55% faster: fine
			row("3", "checkLuhn", "enum", 3600, 0, 7), // +38%: regression
			row("3", "checkLuhn", "split", 84, 1, 6),  // +4ms: under floor, but verdicts moved
			row("3", "checkLuhn", "fresh", 10, 7, 0),  // new suite
		},
	}
	c := Compare(base, cur, 25)
	if len(c.ConfigNotes) != 0 {
		t.Fatalf("unexpected config notes: %v", c.ConfigNotes)
	}
	if got := c.Regressions(); got != 1 {
		t.Fatalf("Regressions() = %d, want 1", got)
	}
	if got := c.VerdictChanges(); got != 1 {
		t.Fatalf("VerdictChanges() = %d, want 1", got)
	}
	byName := map[string]SuiteDelta{}
	for _, d := range c.Deltas {
		byName[d.Solver] = d
	}
	if d := byName["refine"]; d.Regression || d.VerdictChange || d.DeltaPct != -55.0 {
		t.Fatalf("refine delta wrong: %+v", d)
	}
	if d := byName["enum"]; !d.Regression {
		t.Fatalf("enum +38%% not flagged as regression: %+v", d)
	}
	if d := byName["split"]; d.Regression || !d.VerdictChange {
		t.Fatalf("split: want verdict change without regression, got %+v", d)
	}
	if d := byName["gone"]; !d.Missing {
		t.Fatalf("dropped baseline suite not marked missing: %+v", d)
	}
	if d := byName["fresh"]; !d.New || d.Regression {
		t.Fatalf("current-only suite not marked new: %+v", d)
	}

	var sb strings.Builder
	WriteComparison(&sb, c)
	out := sb.String()
	for _, want := range []string{"REGRESSION", "VERDICTS-CHANGED", "missing from current run",
		"new suite", "compare: 1 regression(s), 1 verdict change(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareAbsoluteFloor(t *testing.T) {
	// 3ms -> 6ms is +100% but under the 5ms absolute floor: noise on a
	// fast suite, never a regression.
	base := &JSONReport{Suites: []JSONSuite{row("1", "digits", "refine", 3, 5, 0)}}
	cur := &JSONReport{Suites: []JSONSuite{row("1", "digits", "refine", 6, 5, 0)}}
	if c := Compare(base, cur, 25); c.Regressions() != 0 {
		t.Fatalf("sub-floor slowdown flagged as regression: %+v", c.Deltas)
	}
	// 300 -> 306 clears the floor but not the 25% tolerance.
	base.Suites[0].MeanMS, cur.Suites[0].MeanMS = 300, 306
	if c := Compare(base, cur, 25); c.Regressions() != 0 {
		t.Fatalf("sub-tolerance slowdown flagged as regression: %+v", c.Deltas)
	}
	// 300 -> 400 clears both.
	cur.Suites[0].MeanMS = 400
	if c := Compare(base, cur, 25); c.Regressions() != 1 {
		t.Fatalf("33%% slowdown not flagged: %+v", c.Deltas)
	}
}

func TestCompareConfigNotes(t *testing.T) {
	base := &JSONReport{Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 8, TimeoutMS: 5000}}
	cur := &JSONReport{Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 10, TimeoutMS: 4000}}
	c := Compare(base, cur, 25)
	if len(c.ConfigNotes) != 2 {
		t.Fatalf("config notes = %v, want loop and timeout mismatches", c.ConfigNotes)
	}
	var sb strings.Builder
	WriteComparison(&sb, c)
	if got := sb.String(); !strings.Contains(got, "warning:") || !strings.Contains(got, "compare: ok") {
		t.Fatalf("comparison output = %q", got)
	}
}

// TestCompareToleranceBoundaries pins the strictness of both
// regression gates: drift landing EXACTLY on the percentage tolerance,
// or EXACTLY on the 5ms absolute floor, is not a regression — a row
// must be strictly past both. Exact boundaries recur in practice (a
// suite whose mean moves by a whole scheduler quantum), and an
// off-by-one in either comparison would make the CI gate flap.
func TestCompareToleranceBoundaries(t *testing.T) {
	base := &JSONReport{Suites: []JSONSuite{
		row("3", "s", "atTol", 100, 5, 0),
		row("3", "s", "pastTol", 100, 5, 0),
		row("3", "s", "atFloor", 20, 5, 0),
		row("3", "s", "pastFloor", 20, 5, 0),
		row("3", "s", "zeroBase", 0, 5, 0),
	}}
	cur := &JSONReport{Suites: []JSONSuite{
		row("3", "s", "atTol", 110, 5, 0),      // +10ms = exactly the 10% tolerance
		row("3", "s", "pastTol", 110.2, 5, 0),  // +10.2%: regression
		row("3", "s", "atFloor", 25, 5, 0),     // +25% but exactly +5.0ms: floor holds
		row("3", "s", "pastFloor", 25.2, 5, 0), // +26% and +5.2ms: regression
		row("3", "s", "zeroBase", 500, 5, 0),   // zero baseline: no meaningful delta, ever
	}}
	c := Compare(base, cur, 10)
	want := map[string]bool{
		"atTol": false, "pastTol": true,
		"atFloor": false, "pastFloor": true,
		"zeroBase": false,
	}
	for _, d := range c.Deltas {
		if d.Regression != want[d.Solver] {
			t.Errorf("%s (%.1f -> %.1f): Regression = %v, want %v",
				d.Solver, d.BaseMeanMS, d.CurMeanMS, d.Regression, want[d.Solver])
		}
	}
	if d := c.Deltas[4]; d.DeltaPct != 0 {
		t.Errorf("zero-baseline DeltaPct = %v, want 0", d.DeltaPct)
	}
	if got := c.Regressions(); got != 2 {
		t.Errorf("Regressions() = %d, want 2", got)
	}
}

// TestCompareAsymmetricSuiteSets pins both directions of a suite-set
// mismatch on their own: rows only in the baseline are Missing (no
// delta, no regression — a vanished suite must be noticed by a human,
// not silently dropped), rows only in the current report are New and
// informational, and neither direction can fail the gate by itself.
func TestCompareAsymmetricSuiteSets(t *testing.T) {
	base := &JSONReport{Suites: []JSONSuite{
		row("3", "checkLuhn", "onlyBase", 120, 5, 0),
		row("3", "checkLuhn", "both", 100, 5, 0),
	}}
	cur := &JSONReport{Suites: []JSONSuite{
		row("3", "checkLuhn", "both", 100, 5, 0),
		row("3", "checkLuhn", "onlyCur", 480, 0, 5),
	}}
	c := Compare(base, cur, 10)
	if got := c.Regressions(); got != 0 {
		t.Fatalf("Regressions() = %d, want 0 (set mismatch is not a perf verdict)", got)
	}
	if got := c.VerdictChanges(); got != 0 {
		t.Fatalf("VerdictChanges() = %d, want 0", got)
	}
	byName := map[string]SuiteDelta{}
	for _, d := range c.Deltas {
		byName[d.Solver] = d
	}
	if d := byName["onlyBase"]; !d.Missing || d.New || d.CurMeanMS != 0 {
		t.Fatalf("baseline-only row = %+v, want Missing with no current mean", d)
	}
	if d := byName["onlyCur"]; !d.New || d.Missing || d.BaseMeanMS != 0 {
		t.Fatalf("current-only row = %+v, want New with no baseline mean", d)
	}
	if d := byName["both"]; d.Missing || d.New || d.Regression {
		t.Fatalf("shared row = %+v, want a plain zero delta", d)
	}
	// Baseline order first, appended current-only rows after.
	if c.Deltas[0].Solver != "onlyBase" || c.Deltas[2].Solver != "onlyCur" {
		t.Fatalf("delta order = %v", []string{c.Deltas[0].Solver, c.Deltas[1].Solver, c.Deltas[2].Solver})
	}
	var sb strings.Builder
	WriteComparison(&sb, c)
	out := sb.String()
	for _, want := range []string{"missing from current run", "new suite", "compare: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}
