package bench

import (
	"strings"
	"testing"
)

func row(table, suite, solver string, mean float64, sat, unknown int) JSONSuite {
	return JSONSuite{Table: table, Suite: suite, Solver: solver, MeanMS: mean,
		Instances: sat + unknown, Sat: sat, Unknown: unknown}
}

func TestCompareFlagsRegressionsAndVerdicts(t *testing.T) {
	base := &JSONReport{
		Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 8, TimeoutMS: 5000, Workers: 1},
		Suites: []JSONSuite{
			row("3", "checkLuhn", "refine", 200, 7, 0),
			row("3", "checkLuhn", "enum", 2600, 0, 7),
			row("3", "checkLuhn", "split", 80, 0, 7),
			row("3", "checkLuhn", "gone", 50, 7, 0),
		},
	}
	cur := &JSONReport{
		Config: base.Config,
		Suites: []JSONSuite{
			row("3", "checkLuhn", "refine", 90, 7, 0), // 55% faster: fine
			row("3", "checkLuhn", "enum", 3600, 0, 7), // +38%: regression
			row("3", "checkLuhn", "split", 84, 1, 6),  // +4ms: under floor, but verdicts moved
			row("3", "checkLuhn", "fresh", 10, 7, 0),  // new suite
		},
	}
	c := Compare(base, cur, 25)
	if len(c.ConfigNotes) != 0 {
		t.Fatalf("unexpected config notes: %v", c.ConfigNotes)
	}
	if got := c.Regressions(); got != 1 {
		t.Fatalf("Regressions() = %d, want 1", got)
	}
	if got := c.VerdictChanges(); got != 1 {
		t.Fatalf("VerdictChanges() = %d, want 1", got)
	}
	byName := map[string]SuiteDelta{}
	for _, d := range c.Deltas {
		byName[d.Solver] = d
	}
	if d := byName["refine"]; d.Regression || d.VerdictChange || d.DeltaPct != -55.0 {
		t.Fatalf("refine delta wrong: %+v", d)
	}
	if d := byName["enum"]; !d.Regression {
		t.Fatalf("enum +38%% not flagged as regression: %+v", d)
	}
	if d := byName["split"]; d.Regression || !d.VerdictChange {
		t.Fatalf("split: want verdict change without regression, got %+v", d)
	}
	if d := byName["gone"]; !d.Missing {
		t.Fatalf("dropped baseline suite not marked missing: %+v", d)
	}
	if d := byName["fresh"]; !d.New || d.Regression {
		t.Fatalf("current-only suite not marked new: %+v", d)
	}

	var sb strings.Builder
	WriteComparison(&sb, c)
	out := sb.String()
	for _, want := range []string{"REGRESSION", "VERDICTS-CHANGED", "missing from current run",
		"new suite", "compare: 1 regression(s), 1 verdict change(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareAbsoluteFloor(t *testing.T) {
	// 3ms -> 6ms is +100% but under the 5ms absolute floor: noise on a
	// fast suite, never a regression.
	base := &JSONReport{Suites: []JSONSuite{row("1", "digits", "refine", 3, 5, 0)}}
	cur := &JSONReport{Suites: []JSONSuite{row("1", "digits", "refine", 6, 5, 0)}}
	if c := Compare(base, cur, 25); c.Regressions() != 0 {
		t.Fatalf("sub-floor slowdown flagged as regression: %+v", c.Deltas)
	}
	// 300 -> 306 clears the floor but not the 25% tolerance.
	base.Suites[0].MeanMS, cur.Suites[0].MeanMS = 300, 306
	if c := Compare(base, cur, 25); c.Regressions() != 0 {
		t.Fatalf("sub-tolerance slowdown flagged as regression: %+v", c.Deltas)
	}
	// 300 -> 400 clears both.
	cur.Suites[0].MeanMS = 400
	if c := Compare(base, cur, 25); c.Regressions() != 1 {
		t.Fatalf("33%% slowdown not flagged: %+v", c.Deltas)
	}
}

func TestCompareConfigNotes(t *testing.T) {
	base := &JSONReport{Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 8, TimeoutMS: 5000}}
	cur := &JSONReport{Config: JSONConfig{Tables: []string{"3"}, MaxLoops: 10, TimeoutMS: 4000}}
	c := Compare(base, cur, 25)
	if len(c.ConfigNotes) != 2 {
		t.Fatalf("config notes = %v, want loop and timeout mismatches", c.ConfigNotes)
	}
	var sb strings.Builder
	WriteComparison(&sb, c)
	if got := sb.String(); !strings.Contains(got, "warning:") || !strings.Contains(got, "compare: ok") {
		t.Fatalf("comparison output = %q", got)
	}
}
