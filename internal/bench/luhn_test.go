package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/strcon"
)

// luhnSum computes the checkLuhn sum of a digit string (§1 semantics).
func luhnSum(s string) int {
	sum := 0
	for i := 0; i < len(s); i++ {
		d := int(s[i] - '0')
		if (len(s)-1-i)%2 == 1 {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
	}
	return sum
}

func TestLuhnInstancesAreSolvedSat(t *testing.T) {
	for k := 2; k <= 6; k++ {
		inst := Luhn(k)
		res := core.Solve(inst.Build(), core.Options{Timeout: 60 * time.Second})
		if res.Status != core.StatusSat {
			t.Fatalf("luhn-%d: got %v (rounds %d)", k, res.Status, res.Rounds)
		}
		v := res.Model.Str[strcon.Var(0)]
		if len(v) != k {
			t.Fatalf("luhn-%d: |value0| = %d", k, len(v))
		}
		if luhnSum(v)%10 != 0 {
			t.Fatalf("luhn-%d: %q fails the Luhn test (sum %d)", k, v, luhnSum(v))
		}
		t.Logf("luhn-%d: value0 = %q, sum %d", k, v, luhnSum(v))
	}
}
