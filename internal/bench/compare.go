package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// SuiteDelta is the drift of one (table, suite, solver) row between a
// baseline report and a current run.
type SuiteDelta struct {
	Table  string
	Suite  string
	Solver string

	BaseMeanMS float64
	CurMeanMS  float64
	DeltaPct   float64 // (cur-base)/base * 100; 0 when base is 0

	// Regression marks a slowdown beyond the tolerance AND beyond the
	// absolute noise floor. VerdictChange marks any difference in the
	// sat/unsat/unknown/timeout/incorrect counts, which on identical
	// configs means the solver's answers moved, not just its speed.
	Regression    bool
	VerdictChange bool

	// Missing marks a baseline row with no counterpart in the current
	// report (suite renamed or dropped); New marks the converse. Either
	// way the row carries no delta.
	Missing bool
	New     bool
}

// Comparison is the outcome of Compare: per-suite deltas in baseline
// order plus configuration notes explaining why deltas may not be
// meaningful.
type Comparison struct {
	ConfigNotes []string
	Deltas      []SuiteDelta
}

// Regressions counts the rows flagged as perf regressions.
func (c *Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// VerdictChanges counts the rows whose verdict counts moved.
func (c *Comparison) VerdictChanges() int {
	n := 0
	for _, d := range c.Deltas {
		if d.VerdictChange {
			n++
		}
	}
	return n
}

// meanFloorMS is the absolute slowdown a suite must exhibit before the
// percentage tolerance is even consulted: sub-5ms drift on a fast suite
// is scheduler noise, not a regression, at any percentage.
const meanFloorMS = 5.0

// Compare matches the suites of two reports by (table, suite, solver)
// and computes mean_ms drift. A row regresses when it slowed down by
// more than tolerancePct percent AND more than meanFloorMS absolute.
// Rows are emitted in baseline order; current-only rows are appended
// after them as informational (no baseline, no delta).
func Compare(base, cur *JSONReport, tolerancePct float64) *Comparison {
	c := &Comparison{ConfigNotes: configNotes(base.Config, cur.Config)}
	type key struct{ table, suite, solver string }
	curBy := map[key]*JSONSuite{}
	for i := range cur.Suites {
		s := &cur.Suites[i]
		curBy[key{s.Table, s.Suite, s.Solver}] = s
	}
	seen := map[key]bool{}
	for i := range base.Suites {
		b := &base.Suites[i]
		k := key{b.Table, b.Suite, b.Solver}
		seen[k] = true
		d := SuiteDelta{Table: b.Table, Suite: b.Suite, Solver: b.Solver, BaseMeanMS: b.MeanMS}
		s, ok := curBy[k]
		if !ok {
			d.Missing = true
			c.Deltas = append(c.Deltas, d)
			continue
		}
		d.CurMeanMS = s.MeanMS
		if b.MeanMS > 0 {
			d.DeltaPct = math.Round((s.MeanMS-b.MeanMS)/b.MeanMS*1000) / 10
		}
		d.Regression = s.MeanMS-b.MeanMS > meanFloorMS &&
			b.MeanMS > 0 && (s.MeanMS-b.MeanMS)/b.MeanMS*100 > tolerancePct
		d.VerdictChange = b.Sat != s.Sat || b.Unsat != s.Unsat ||
			b.Unknown != s.Unknown || b.Timeout != s.Timeout || b.Incorrect != s.Incorrect
		c.Deltas = append(c.Deltas, d)
	}
	for i := range cur.Suites {
		s := &cur.Suites[i]
		k := key{s.Table, s.Suite, s.Solver}
		if seen[k] {
			continue
		}
		c.Deltas = append(c.Deltas, SuiteDelta{
			Table: s.Table, Suite: s.Suite, Solver: s.Solver, CurMeanMS: s.MeanMS, New: true,
		})
	}
	return c
}

// configNotes explains config drift between the runs: deltas computed
// across different workloads or deadlines compare apples to oranges, so
// the mismatch is surfaced rather than silently tolerated.
func configNotes(base, cur JSONConfig) []string {
	var notes []string
	note := func(format string, args ...any) {
		notes = append(notes, fmt.Sprintf(format, args...))
	}
	if fmt.Sprint(base.Tables) != fmt.Sprint(cur.Tables) {
		note("tables differ: baseline %v, current %v", base.Tables, cur.Tables)
	}
	if base.PerSuite != cur.PerSuite {
		note("per-suite instance counts differ: baseline %d, current %d", base.PerSuite, cur.PerSuite)
	}
	if base.MaxLoops != cur.MaxLoops {
		note("max checkLuhn loops differ: baseline %d, current %d", base.MaxLoops, cur.MaxLoops)
	}
	if base.TimeoutMS != cur.TimeoutMS {
		note("per-instance timeouts differ: baseline %dms, current %dms", base.TimeoutMS, cur.TimeoutMS)
	}
	return notes
}

// ReadJSONFile loads a benchtab -json report (e.g. the checked-in
// BENCH_BASELINE.json).
func ReadJSONFile(path string) (*JSONReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep JSONReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// WriteComparison renders a comparison as an aligned text table with
// one trailing summary line ("ok" or the regression count), so a CI log
// reader can grep the verdict without parsing the rows.
func WriteComparison(w io.Writer, c *Comparison) {
	for _, n := range c.ConfigNotes {
		fmt.Fprintf(w, "warning: %s\n", n)
	}
	for _, d := range c.Deltas {
		name := fmt.Sprintf("T%s/%s/%s", d.Table, d.Suite, d.Solver)
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-36s baseline %8.1f ms   missing from current run\n", name, d.BaseMeanMS)
			continue
		case d.New:
			fmt.Fprintf(w, "%-36s new suite            now %8.1f ms\n", name, d.CurMeanMS)
			continue
		}
		flags := ""
		if d.Regression {
			flags += "  REGRESSION"
		}
		if d.VerdictChange {
			flags += "  VERDICTS-CHANGED"
		}
		fmt.Fprintf(w, "%-36s baseline %8.1f ms   now %8.1f ms   %+6.1f%%%s\n",
			name, d.BaseMeanMS, d.CurMeanMS, d.DeltaPct, flags)
	}
	if r, v := c.Regressions(), c.VerdictChanges(); r > 0 || v > 0 {
		fmt.Fprintf(w, "compare: %d regression(s), %d verdict change(s)\n", r, v)
	} else {
		fmt.Fprintln(w, "compare: ok")
	}
}
