package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
)

// chaosInstances picks a handful of small, fast, deterministic
// instances with known ground truth for the injection sweep.
func chaosInstances() []*Instance {
	insts := []*Instance{Luhn(3)}
	var sat, unsat *Instance
	for _, in := range pyexLike(7, 8) {
		if sat == nil && in.Expected == ExpectSat {
			sat = in
		}
		if unsat == nil && in.Expected == ExpectUnsat {
			unsat = in
		}
	}
	if sat != nil {
		insts = append(insts, sat)
	}
	if unsat != nil {
		insts = append(insts, unsat)
	}
	return insts
}

// TestChaosInjectionSweep is the fault-containment contract, checked
// deterministically. For each small instance it first solves under a
// counting schedule to learn the baseline verdict and the number N of
// injectable sites visited, then re-solves with each fault kind (panic,
// cancel, budget) injected at the first, middle, and last site. After
// every run it asserts the two invariants the containment design
// guarantees:
//
//   - the verdict never flips SAT<->UNSAT — an injected fault can only
//     degrade it to UNKNOWN, and
//   - no solver goroutine outlives its solve.
func TestChaosInjectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow; skipped with -short")
	}
	for _, inst := range chaosInstances() {
		for _, parallel := range []int{1, 2} {
			opts := core.Options{MaxRounds: 6, Parallel: parallel}

			counting := fault.Counting()
			ec := engine.Background()
			ec.SetSchedule(counting)
			baseline := core.SolveCtx(inst.Build(), opts, ec)
			if inst.Expected == ExpectSat && baseline.Status != core.StatusSat ||
				inst.Expected == ExpectUnsat && baseline.Status != core.StatusUnsat {
				t.Fatalf("%s: baseline = %v, want %v", inst.Name, baseline.Status, inst.Expected)
			}
			n := counting.Visits()
			if n == 0 {
				t.Fatalf("%s: counting pass saw no injectable sites", inst.Name)
			}

			for _, k := range []uint64{1, n/2 + 1, n} {
				for _, op := range []fault.Op{fault.OpPanic, fault.OpCancel, fault.OpBudget} {
					before := fault.Snapshot()
					sched := fault.At(k, op)
					ec := engine.Background()
					ec.SetSchedule(sched)
					res := core.SolveCtx(inst.Build(), opts, ec)
					if res.Status != core.StatusUnknown && res.Status != baseline.Status {
						t.Errorf("%s parallel=%d inject %v@%d: verdict flipped %v -> %v",
							inst.Name, parallel, op, k, baseline.Status, res.Status)
					}
					if res.Status == core.StatusUnknown && res.Reason == "" {
						t.Errorf("%s parallel=%d inject %v@%d: unknown verdict with no reason",
							inst.Name, parallel, op, k)
					}
					fault.CheckLeaks(t, before)
				}
			}
		}
	}
}

// TestOverBudgetLuhnDegradesGracefully is the ISSUE's acceptance case:
// a hard instance under a tiny resource budget returns UNKNOWN with a
// "budget: <site>" reason instead of crashing, thrashing, or lying.
func TestOverBudgetLuhnDegradesGracefully(t *testing.T) {
	before := fault.Snapshot()
	ec := engine.Background()
	ec.SetBudget(100)
	res := core.SolveCtx(Luhn(8).Build(), core.Options{MaxRounds: 10}, ec)
	if res.Status != core.StatusUnknown {
		t.Fatalf("over-budget solve = %v, want unknown", res.Status)
	}
	if !strings.HasPrefix(res.Reason, "budget: ") {
		t.Fatalf("over-budget reason = %q, want \"budget: <site>\"", res.Reason)
	}
	if rem, ok := ec.BudgetRemaining(); !ok || rem >= 0 {
		t.Fatalf("budget pool = (%d, %v), want installed and exhausted", rem, ok)
	}
	fault.CheckLeaks(t, before)
}
