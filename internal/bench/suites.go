package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/automata"
	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// Suite is a named list of instances with the table it belongs to.
type Suite struct {
	Name      string
	Table     int // 1 = basic constraints, 2 = string-number conversion
	Instances []*Instance
}

// Table1Suites generates the basic-string-constraint suites of Table 1
// (PyEx-, LeetCode-, StringFuzz-, cvc4pred- and cvc4term-style).
// Instance counts are scaled down from the paper's corpora; proportions
// of SAT/UNSAT follow the originals roughly.
func Table1Suites(perSuite int) []Suite {
	return []Suite{
		{Name: "PyEx", Table: 1, Instances: pyexLike(11, perSuite)},
		{Name: "LeetCode", Table: 1, Instances: leetcodeLike(13, perSuite)},
		{Name: "StringFuzz", Table: 1, Instances: stringFuzzLike(17, perSuite)},
		{Name: "cvc4pred", Table: 1, Instances: cvc4Like(19, perSuite, true)},
		{Name: "cvc4term", Table: 1, Instances: cvc4Like(23, perSuite, false)},
	}
}

// Table2Suites generates the string-number conversion suites of Table 2
// (LeetCode-, PythonLib- and JavaScript-style).
func Table2Suites(perSuite int) []Suite {
	return []Suite{
		{Name: "Leetcode", Table: 2, Instances: conversionLeetcode(29, perSuite)},
		{Name: "PythonLib", Table: 2, Instances: conversionPythonLib(31, perSuite)},
		{Name: "JavaScript", Table: 2, Instances: conversionJavaScript(perSuite)},
	}
}

const letters = "abcd"

func randWord(rng *rand.Rand, minLen, maxLen int) string {
	n := minLen + rng.Intn(maxLen-minLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// pyexLike mimics path constraints from symbolically executing Python
// string code: concatenation splits of known strings, length
// arithmetic, simple memberships. Ground truth is planted: SAT
// instances are built around a witness; UNSAT ones add a length or
// character-count contradiction.
func pyexLike(seed int64, n int) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		w := randWord(rng, 3, 7)
		cut := 1 + rng.Intn(len(w)-1)
		sat := rng.Intn(4) != 0 // ~75% sat, as in the PyEx corpus
		sep := string(letters[rng.Intn(len(letters))])
		name := fmt.Sprintf("pyex-%03d", i)
		w2 := randWord(rng, 2, 4)
		variant := rng.Intn(3)
		out = append(out, &Instance{
			Name:     name,
			Expected: expect(sat),
			Build: func() *strcon.Problem {
				prob := strcon.NewProblem()
				x := prob.NewStrVar("x")
				y := prob.NewStrVar("y")
				z := prob.NewStrVar("z")
				// x·y = w with |x| = cut.
				prob.Add(&strcon.WordEq{
					L: strcon.T(strcon.TV(x), strcon.TV(y)),
					R: strcon.T(strcon.TC(w)),
				})
				prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), int64(cut))})
				// z = x·sep·w2.
				prob.Add(&strcon.WordEq{
					L: strcon.T(strcon.TV(z)),
					R: strcon.T(strcon.TV(x), strcon.TC(sep), strcon.TC(w2)),
				})
				zlen := int64(cut + 1 + len(w2))
				switch variant {
				case 0:
					cmp := lia.EqConst(prob.LenVar(z), zlen)
					if !sat {
						cmp = lia.EqConst(prob.LenVar(z), zlen+1)
					}
					prob.Add(&strcon.Arith{F: cmp})
				case 1:
					if sat {
						prob.Add(prob.PrefixOf(strcon.T(strcon.TC(w[:cut])), z))
					} else {
						bad := flipChar(w[:1]) + w[1:cut]
						prob.Add(prob.PrefixOf(strcon.T(strcon.TC(bad)), z))
					}
				default:
					if sat {
						prob.Add(&strcon.Arith{F: lia.Ge(lia.V(prob.LenVar(y)), lia.Const(1))})
					} else {
						prob.Add(&strcon.Arith{F: lia.Gt(
							lia.V(prob.LenVar(y)), lia.Const(int64(len(w))))})
					}
				}
				return prob
			},
		})
	}
	return out
}

func flipChar(s string) string {
	if s[0] == 'a' {
		return "b"
	}
	return "a"
}

func expect(sat bool) Expected {
	if sat {
		return ExpectSat
	}
	return ExpectUnsat
}

// leetcodeLike mimics the validation-style problems of the LeetCode
// corpus: IPv4 octets, binary strings, delimiter splits.
func leetcodeLike(seed int64, n int) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	octet := "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		sat := rng.Intn(3) != 0
		name := fmt.Sprintf("leet-%03d", i)
		switch i % 3 {
		case 0: // octet with a length constraint
			l := int64(1 + rng.Intn(3))
			if !sat {
				l = 4 // octets have at most 3 digits
			}
			out = append(out, &Instance{Name: name, Expected: expect(sat),
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					x := prob.NewStrVar("x")
					prob.Add(&strcon.Membership{X: x, A: regex.MustCompile(octet), Pattern: octet})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), l)})
					return prob
				}})
		case 1: // binary strings of equal length joined by '+'
			k := int64(2 + rng.Intn(3))
			out = append(out, &Instance{Name: name, Expected: expect(sat),
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					a := prob.NewStrVar("a")
					b := prob.NewStrVar("b")
					s := prob.NewStrVar("s")
					prob.Add(&strcon.Membership{X: a, A: regex.MustCompile("(0|1)+")})
					prob.Add(&strcon.Membership{X: b, A: regex.MustCompile("(0|1)+")})
					prob.Add(&strcon.WordEq{
						L: strcon.T(strcon.TV(s)),
						R: strcon.T(strcon.TV(a), strcon.TC("+"), strcon.TV(b)),
					})
					prob.Add(&strcon.Arith{F: lia.Eq(lia.V(prob.LenVar(a)), lia.V(prob.LenVar(b)))})
					want := 2*k + 1
					if !sat {
						want = 2 * k // even total length is impossible
					}
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(s), want)})
					return prob
				}})
		default: // abbreviation: word = pre·mid·suf with pinned lengths
			w := randWord(rng, 4, 6)
			pl := 1
			sl := 1
			ml := int64(len(w) - pl - sl)
			if !sat {
				ml++
			}
			out = append(out, &Instance{Name: name, Expected: expect(sat),
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					pre := prob.NewStrVar("pre")
					mid := prob.NewStrVar("mid")
					suf := prob.NewStrVar("suf")
					prob.Add(&strcon.WordEq{
						L: strcon.T(strcon.TC(w)),
						R: strcon.T(strcon.TV(pre), strcon.TV(mid), strcon.TV(suf)),
					})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(pre), int64(pl))})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(suf), int64(sl))})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(mid), ml)})
					return prob
				}})
		}
	}
	return out
}

// stringFuzzLike mimics the StringFuzz generator: random regular
// expressions paired with length constraints; ground truth is computed
// exactly on the automaton.
func stringFuzzLike(seed int64, n int) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		pat := randPattern(rng, 2)
		nfa := regex.MustCompile(pat)
		l := rng.Intn(7)
		sat := acceptsLength(nfa, l)
		name := fmt.Sprintf("fuzz-%03d", i)
		pl, ll := pat, int64(l)
		out = append(out, &Instance{Name: name, Expected: expect(sat),
			Build: func() *strcon.Problem {
				prob := strcon.NewProblem()
				x := prob.NewStrVar("x")
				prob.Add(&strcon.Membership{X: x, A: regex.MustCompile(pl), Pattern: pl})
				prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), ll)})
				return prob
			}})
	}
	return out
}

func randPattern(rng *rand.Rand, depth int) string {
	if depth == 0 {
		c := string(letters[rng.Intn(len(letters))])
		if rng.Intn(3) == 0 {
			return "[0-9]"
		}
		return c
	}
	a := randPattern(rng, depth-1)
	b := randPattern(rng, depth-1)
	switch rng.Intn(5) {
	case 0:
		return "(" + a + "|" + b + ")"
	case 1:
		return "(" + a + ")*"
	case 2:
		return "(" + a + ")+"
	case 3:
		return a + b
	default:
		return "(" + a + ")?" + b
	}
}

// acceptsLength reports whether the automaton accepts some word of the
// given length (exact BFS over (state, length)).
func acceptsLength(n *automata.NFA, l int) bool {
	m := n.RemoveEpsilon()
	cur := map[int]bool{m.Init: true}
	for step := 0; step < l; step++ {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range m.Trans {
				if t.From == s && t.R.Lo <= t.R.Hi {
					next[t.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for _, f := range m.Finals {
		if cur[f] {
			return true
		}
	}
	return false
}

// cvc4Like mimics the cvc4pred/cvc4term suites: predicate-heavy
// verification conditions, predominantly unsatisfiable.
func cvc4Like(seed int64, n int, pred bool) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		sat := rng.Intn(50) == 0 // overwhelmingly UNSAT, as in the corpus
		w := randWord(rng, 3, 5)
		name := fmt.Sprintf("cvc4-%03d", i)
		usePred := pred
		out = append(out, &Instance{Name: name, Expected: expect(sat),
			Build: func() *strcon.Problem {
				prob := strcon.NewProblem()
				x := prob.NewStrVar("x")
				y := prob.NewStrVar("y")
				prob.Add(&strcon.WordEq{
					L: strcon.T(strcon.TV(x)),
					R: strcon.T(strcon.TC(w), strcon.TV(y)),
				})
				if usePred {
					// Contradicting prefix predicate (or not, for sat).
					p := w
					if !sat {
						p = flipChar(w[:1]) + w[1:]
					}
					prob.Add(prob.PrefixOf(strcon.T(strcon.TC(p)), x))
				} else {
					// Term-level: |x| below the fixed prefix (or fine).
					bound := int64(len(w)) - 1
					if sat {
						bound = int64(len(w)) + 1
					}
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(x), bound)})
				}
				return prob
			}})
	}
	return out
}

// conversionLeetcode mimics the Table 2 LeetCode suite: IP-address
// restoration and digit-decoding problems built on toNum/toStr.
func conversionLeetcode(seed int64, n int) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		sat := rng.Intn(8) != 0
		name := fmt.Sprintf("convleet-%03d", i)
		switch i % 2 {
		case 0: // one octet: s = toStr(v), 0 <= v <= 255, |s| pinned
			v := int64(rng.Intn(256))
			l := int64(len(fmt.Sprint(v)))
			if !sat {
				v = int64(256 + rng.Intn(700)) // out of range
			}
			out = append(out, &Instance{Name: name, Expected: expect(sat),
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					s := prob.NewStrVar("s")
					vv := prob.NewIntVar("v")
					prob.Add(&strcon.ToStr{N: vv, X: s})
					prob.Add(&strcon.Arith{F: lia.EqConst(vv, v)})
					prob.Add(&strcon.Arith{F: lia.Le(lia.V(vv), lia.Const(255))})
					if sat {
						prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(s), l)})
					}
					return prob
				}})
		default: // decode: d = toNum(c), 1 <= d <= 26 (letter decoding)
			hi := int64(26)
			if !sat {
				hi = 0 // 1 <= d <= 0 impossible
			}
			out = append(out, &Instance{Name: name, Expected: expect(sat),
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					c := prob.NewStrVar("c")
					d := prob.NewIntVar("d")
					prob.Add(&strcon.ToNum{N: d, X: c})
					prob.Add(&strcon.Arith{F: lia.Ge(lia.V(d), lia.Const(1))})
					prob.Add(&strcon.Arith{F: lia.Le(lia.V(d), lia.Const(hi))})
					prob.Add(&strcon.Arith{F: lia.Le(lia.V(prob.LenVar(c)), lia.Const(2))})
					prob.Add(&strcon.Arith{F: lia.Ge(lia.V(prob.LenVar(c)), lia.Const(1))})
					return prob
				}})
		}
	}
	return out
}

// conversionPythonLib mimics the PythonLib suite: datetime-style
// parsing with range checks on numeric fields.
func conversionPythonLib(seed int64, n int) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		sat := rng.Intn(6) != 0
		name := fmt.Sprintf("convpy-%03d", i)
		moHi := int64(12)
		if !sat {
			moHi = 0
		}
		out = append(out, &Instance{Name: name, Expected: expect(sat),
			Build: func() *strcon.Problem {
				prob := strcon.NewProblem()
				date := prob.NewStrVar("date")
				mm := prob.NewStrVar("mm")
				dd := prob.NewStrVar("dd")
				mo := prob.NewIntVar("mo")
				da := prob.NewIntVar("da")
				// date = mm "/" dd with two-digit fields.
				prob.Add(&strcon.WordEq{
					L: strcon.T(strcon.TV(date)),
					R: strcon.T(strcon.TV(mm), strcon.TC("/"), strcon.TV(dd)),
				})
				prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(mm), 2)})
				prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(dd), 2)})
				prob.Add(&strcon.ToNum{N: mo, X: mm})
				prob.Add(&strcon.ToNum{N: da, X: dd})
				prob.Add(&strcon.Arith{F: lia.Ge(lia.V(mo), lia.Const(1))})
				prob.Add(&strcon.Arith{F: lia.Le(lia.V(mo), lia.Const(moHi))})
				prob.Add(&strcon.Arith{F: lia.Ge(lia.V(da), lia.Const(1))})
				prob.Add(&strcon.Arith{F: lia.Le(lia.V(da), lia.Const(31))})
				return prob
			}})
	}
	return out
}

// conversionJavaScript mimics the JavaScript suite: array-index
// semantics ("03"-1 = 2, so the index string is "2") and small Luhn
// path constraints — all satisfiable, as in the paper's table.
func conversionJavaScript(n int) []*Instance {
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("convjs-%03d", i)
		switch i % 2 {
		case 0: // idx = toStr(toNum(s) - 1) with s a numeral of length 2
			delta := int64(1 + i%5)
			out = append(out, &Instance{Name: name, Expected: ExpectSat,
				Build: func() *strcon.Problem {
					prob := strcon.NewProblem()
					s := prob.NewStrVar("s")
					idx := prob.NewStrVar("idx")
					nv := prob.NewIntVar("n")
					mv := prob.NewIntVar("m")
					prob.Add(&strcon.ToNum{N: nv, X: s})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(s), 2)})
					prob.Add(&strcon.Arith{F: lia.Ge(lia.V(nv), lia.Const(0))})
					prob.Add(&strcon.Arith{F: lia.Eq(lia.V(mv), lia.V(nv).AddConst(-delta))})
					prob.Add(&strcon.Arith{F: lia.Ge(lia.V(mv), lia.Const(0))})
					prob.Add(&strcon.ToStr{N: mv, X: idx})
					prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(idx), 1)})
					return prob
				}})
		default:
			k := 2 + i%4
			out = append(out, Luhn(k))
		}
	}
	return out
}
