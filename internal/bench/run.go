package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strcon"
)

// Solver is one engine under comparison. Run solves the problem under
// the context's deadline and cancellation and is expected to record its
// statistics on the context's stats tree.
type Solver struct {
	Name string
	Run  func(prob *strcon.Problem, ec *engine.Ctx) core.Status
}

// Solvers returns the engines of the evaluation: the paper's solver
// (Z3-Trau reproduction) and the two baseline families standing in for
// the closed competitor tools (see package doc of internal/baseline).
func Solvers() []Solver {
	return []Solver{
		{Name: "trau-go", Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
			return core.SolveCtx(p, core.Options{}, ec).Status
		}},
		{Name: "enum", Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
			return baseline.SolveEnum(p, baseline.EnumOptions{}, ec).Status
		}},
		{Name: "split", Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
			return baseline.SolveSplit(p, baseline.SplitOptions{}, ec).Status
		}},
	}
}

// Counts are the per-suite result counters, with the same rows as the
// paper's tables.
type Counts struct {
	Sat       int
	Unsat     int
	Unknown   int
	Timeout   int
	Incorrect int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Sat += other.Sat
	c.Unsat += other.Unsat
	c.Unknown += other.Unknown
	c.Timeout += other.Timeout
	c.Incorrect += other.Incorrect
}

// Agg aggregates solver statistics over the instances of a suite,
// summed from each run's stats tree.
type Agg struct {
	Instances int64
	Rounds    int64
	Conflicts int64
	Pivots    int64
}

// Add accumulates other into a.
func (a *Agg) Add(other Agg) {
	a.Instances += other.Instances
	a.Rounds += other.Rounds
	a.Conflicts += other.Conflicts
	a.Pivots += other.Pivots
}

// mean renders n/a.Instances with one decimal.
func (a Agg) mean(n int64) string {
	if a.Instances == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(n)/float64(a.Instances))
}

// Cell renders the aggregate as mean rounds/conflicts/pivots per
// instance.
func (a Agg) Cell() string {
	return fmt.Sprintf("%s/%s/%s", a.mean(a.Rounds), a.mean(a.Conflicts), a.mean(a.Pivots))
}

// instResult is one instance's outcome plus the statistics totals the
// suite aggregates.
type instResult struct {
	status    core.Status
	timedOut  bool
	rounds    int64
	conflicts int64
	pivots    int64
}

// RunSuite runs every instance of a suite through one solver, on up to
// workers goroutines (values <= 1 run sequentially; the counts are
// identical either way). An instance counts as TIMEOUT only when its
// context actually expired — an early "unknown" (budget exhaustion,
// incomplete fragment) stays an UNKNOWN even if it took a while.
func RunSuite(insts []*Instance, solver Solver, timeout time.Duration, workers int) (Counts, Agg) {
	results := make([]instResult, len(insts))
	run1 := func(i int) {
		ec := engine.WithTimeout(timeout)
		status := solver.Run(insts[i].Build(), ec)
		st := ec.Stats()
		results[i] = instResult{
			status:    status,
			timedOut:  ec.TimedOut(),
			rounds:    st.Total("rounds"),
			conflicts: st.Total("conflicts"),
			pivots:    st.Total("pivots"),
		}
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	if workers <= 1 {
		for i := range insts {
			run1(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(insts) {
						return
					}
					run1(i)
				}
			}()
		}
		wg.Wait()
	}

	var c Counts
	agg := Agg{Instances: int64(len(insts))}
	for i, inst := range insts {
		r := results[i]
		switch r.status {
		case core.StatusSat:
			if inst.Expected == ExpectUnsat {
				c.Incorrect++
			} else {
				c.Sat++
			}
		case core.StatusUnsat:
			if inst.Expected == ExpectSat {
				c.Incorrect++
			} else {
				c.Unsat++
			}
		default:
			if r.timedOut {
				c.Timeout++
			} else {
				c.Unknown++
			}
		}
		agg.Rounds += r.rounds
		agg.Conflicts += r.conflicts
		agg.Pivots += r.pivots
	}
	return c, agg
}

// Table runs all suites against all solvers and renders the result in
// the layout of the paper's Tables 1 and 2, followed by per-suite
// aggregate solver statistics. workers bounds the per-suite instance
// parallelism; the output is byte-identical for every worker count.
func Table(w io.Writer, suites []Suite, solvers []Solver, timeout time.Duration, workers int) {
	rows := []string{"SAT", "UNSAT", "UNKNOWN", "TIMEOUT", "INCORRECT"}
	pick := func(c Counts, row string) int {
		switch row {
		case "SAT":
			return c.Sat
		case "UNSAT":
			return c.Unsat
		case "UNKNOWN":
			return c.Unknown
		case "TIMEOUT":
			return c.Timeout
		default:
			return c.Incorrect
		}
	}
	fmt.Fprintf(w, "%-12s %-10s", "Suite", "Result")
	for _, s := range solvers {
		fmt.Fprintf(w, " %10s", s.Name)
	}
	fmt.Fprintln(w)
	totals := make([]Counts, len(solvers))
	aggs := make([][]Agg, len(suites))
	for si, suite := range suites {
		counts := make([]Counts, len(solvers))
		aggs[si] = make([]Agg, len(solvers))
		for i, s := range solvers {
			counts[i], aggs[si][i] = RunSuite(suite.Instances, s, timeout, workers)
			totals[i].Add(counts[i])
		}
		for ri, row := range rows {
			label := ""
			if ri == 0 {
				label = suite.Name
			}
			fmt.Fprintf(w, "%-12s %-10s", label, row)
			for i := range solvers {
				fmt.Fprintf(w, " %10d", pick(counts[i], row))
			}
			fmt.Fprintln(w)
		}
	}
	for ri, row := range rows {
		label := ""
		if ri == 0 {
			label = "Total"
		}
		fmt.Fprintf(w, "%-12s %-10s", label, row)
		for i := range solvers {
			fmt.Fprintf(w, " %10d", pick(totals[i], row))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Mean statistics per instance (rounds/conflicts/pivots)")
	fmt.Fprintf(w, "%-12s", "Suite")
	for _, s := range solvers {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)
	for si, suite := range suites {
		fmt.Fprintf(w, "%-12s", suite.Name)
		for i := range solvers {
			fmt.Fprintf(w, " %22s", aggs[si][i].Cell())
		}
		fmt.Fprintln(w)
	}
}

// Table3 runs the checkLuhn family (the paper's Table 3) and renders
// status and time per solver and loop count, followed by aggregate
// solver statistics over the family.
func Table3(w io.Writer, maxLoops int, solvers []Solver, timeout time.Duration) {
	fmt.Fprintf(w, "%-8s", "# Loops")
	for _, s := range solvers {
		fmt.Fprintf(w, " %20s", s.Name)
	}
	fmt.Fprintln(w)
	aggs := make([]Agg, len(solvers))
	for k := 2; k <= maxLoops; k++ {
		inst := Luhn(k)
		fmt.Fprintf(w, "%-8d", k)
		for i, s := range solvers {
			ec := engine.WithTimeout(timeout)
			start := time.Now()
			status := s.Run(inst.Build(), ec)
			elapsed := time.Since(start).Round(10 * time.Millisecond)
			st := ec.Stats()
			aggs[i].Add(Agg{
				Instances: 1,
				Rounds:    st.Total("rounds"),
				Conflicts: st.Total("conflicts"),
				Pivots:    st.Total("pivots"),
			})
			cell := "UNKNOWN"
			switch status {
			case core.StatusSat:
				cell = fmt.Sprintf("SAT(%v)", elapsed)
			case core.StatusUnsat:
				cell = "INCORRECT"
			default:
				if ec.TimedOut() {
					cell = "TIMEOUT"
				}
			}
			fmt.Fprintf(w, " %20s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Mean statistics per instance (rounds/conflicts/pivots)")
	fmt.Fprintf(w, "%-8s", "")
	for i, s := range solvers {
		fmt.Fprintf(w, " %20s", s.Name+" "+aggs[i].Cell())
	}
	fmt.Fprintln(w)
}
