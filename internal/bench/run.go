package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/strcon"
)

// Solver is one engine under comparison.
type Solver struct {
	Name string
	Run  func(prob *strcon.Problem, timeout time.Duration) core.Status
}

// Solvers returns the engines of the evaluation: the paper's solver
// (Z3-Trau reproduction) and the two baseline families standing in for
// the closed competitor tools (see package doc of internal/baseline).
func Solvers() []Solver {
	return []Solver{
		{Name: "trau-go", Run: func(p *strcon.Problem, to time.Duration) core.Status {
			return core.Solve(p, core.Options{Timeout: to}).Status
		}},
		{Name: "enum", Run: func(p *strcon.Problem, to time.Duration) core.Status {
			return baseline.SolveEnum(p, baseline.EnumOptions{Timeout: to}).Status
		}},
		{Name: "split", Run: func(p *strcon.Problem, to time.Duration) core.Status {
			return baseline.SolveSplit(p, baseline.SplitOptions{Timeout: to}).Status
		}},
	}
}

// Counts are the per-suite result counters, with the same rows as the
// paper's tables.
type Counts struct {
	Sat       int
	Unsat     int
	Unknown   int
	Timeout   int
	Incorrect int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Sat += other.Sat
	c.Unsat += other.Unsat
	c.Unknown += other.Unknown
	c.Timeout += other.Timeout
	c.Incorrect += other.Incorrect
}

// RunSuite runs every instance of a suite through one solver.
func RunSuite(insts []*Instance, solver Solver, timeout time.Duration) Counts {
	var c Counts
	for _, inst := range insts {
		start := time.Now()
		status := solver.Run(inst.Build(), timeout)
		elapsed := time.Since(start)
		switch status {
		case core.StatusSat:
			if inst.Expected == ExpectUnsat {
				c.Incorrect++
			} else {
				c.Sat++
			}
		case core.StatusUnsat:
			if inst.Expected == ExpectSat {
				c.Incorrect++
			} else {
				c.Unsat++
			}
		default:
			if elapsed >= timeout-50*time.Millisecond {
				c.Timeout++
			} else {
				c.Unknown++
			}
		}
	}
	return c
}

// Table runs all suites against all solvers and renders the result in
// the layout of the paper's Tables 1 and 2.
func Table(w io.Writer, suites []Suite, solvers []Solver, timeout time.Duration) {
	rows := []string{"SAT", "UNSAT", "UNKNOWN", "TIMEOUT", "INCORRECT"}
	pick := func(c Counts, row string) int {
		switch row {
		case "SAT":
			return c.Sat
		case "UNSAT":
			return c.Unsat
		case "UNKNOWN":
			return c.Unknown
		case "TIMEOUT":
			return c.Timeout
		default:
			return c.Incorrect
		}
	}
	fmt.Fprintf(w, "%-12s %-10s", "Suite", "Result")
	for _, s := range solvers {
		fmt.Fprintf(w, " %10s", s.Name)
	}
	fmt.Fprintln(w)
	totals := make([]Counts, len(solvers))
	for _, suite := range suites {
		counts := make([]Counts, len(solvers))
		for i, s := range solvers {
			counts[i] = RunSuite(suite.Instances, s, timeout)
			totals[i].Add(counts[i])
		}
		for ri, row := range rows {
			label := ""
			if ri == 0 {
				label = suite.Name
			}
			fmt.Fprintf(w, "%-12s %-10s", label, row)
			for i := range solvers {
				fmt.Fprintf(w, " %10d", pick(counts[i], row))
			}
			fmt.Fprintln(w)
		}
	}
	for ri, row := range rows {
		label := ""
		if ri == 0 {
			label = "Total"
		}
		fmt.Fprintf(w, "%-12s %-10s", label, row)
		for i := range solvers {
			fmt.Fprintf(w, " %10d", pick(totals[i], row))
		}
		fmt.Fprintln(w)
	}
}

// Table3 runs the checkLuhn family (the paper's Table 3) and renders
// status and time per solver and loop count.
func Table3(w io.Writer, maxLoops int, solvers []Solver, timeout time.Duration) {
	fmt.Fprintf(w, "%-8s", "# Loops")
	for _, s := range solvers {
		fmt.Fprintf(w, " %20s", s.Name)
	}
	fmt.Fprintln(w)
	for k := 2; k <= maxLoops; k++ {
		inst := Luhn(k)
		fmt.Fprintf(w, "%-8d", k)
		for _, s := range solvers {
			start := time.Now()
			status := s.Run(inst.Build(), timeout)
			elapsed := time.Since(start).Round(10 * time.Millisecond)
			cell := "TIMEOUT"
			switch status {
			case core.StatusSat:
				cell = fmt.Sprintf("SAT(%v)", elapsed)
			case core.StatusUnsat:
				cell = "INCORRECT"
			default:
				if elapsed < timeout-50*time.Millisecond {
					cell = "UNKNOWN"
				}
			}
			fmt.Fprintf(w, " %20s", cell)
		}
		fmt.Fprintln(w)
	}
}
