package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/portfolio"
	"repro/internal/strcon"
)

// Solver is one engine under comparison. Run solves the problem under
// the context's deadline and cancellation and is expected to record its
// statistics on the context's stats tree.
type Solver struct {
	Name string
	Run  func(prob *strcon.Problem, ec *engine.Ctx) core.Status
}

// Config selects how the solvers under comparison are configured.
type Config struct {
	// Incremental toggles the incremental refinement engine of the
	// refine solver (the baselines are unaffected).
	Incremental bool
}

// FromBackend adapts a registry backend (or the portfolio solver) to a
// comparison row. This is the only bridge between the registry and the
// bench tables — the per-solver closures the package used to rebuild
// on every call are gone.
func FromBackend(b backend.Backend, opts backend.Options) Solver {
	return Solver{Name: b.Name(), Run: func(p *strcon.Problem, ec *engine.Ctx) core.Status {
		return b.Solve(p, opts, ec).Status
	}}
}

// Solvers returns the engines of the evaluation with the default
// configuration (incremental engine on).
func Solvers() []Solver {
	return SolversWith(Config{Incremental: true})
}

// SolversWith returns the engines of the evaluation: the paper's
// refinement solver (Z3-Trau reproduction), the two baseline families
// standing in for the closed competitor tools (see package doc of
// internal/baseline), and the portfolio racing the whole registry —
// all resolved from the backend registry. The portfolio row carries
// fresh scheduling state per call, so repeated table runs start from
// the same unbiased schedule.
func SolversWith(cfg Config) []Solver {
	refine := "refine"
	if !cfg.Incremental {
		refine = "refine-fresh"
	}
	out := make([]Solver, 0, 4)
	for _, name := range []string{refine, "enum", "split"} {
		b, ok := backend.Get(name)
		if !ok {
			panic("bench: backend missing from registry: " + name) // contract: registry is fixed
		}
		out = append(out, FromBackend(b, backend.Options{}))
	}
	return append(out, FromBackend(portfolio.New(portfolio.Config{}), backend.Options{}))
}

// SolverByName resolves one comparison row: any registry backend by
// name, or "portfolio" for a fresh portfolio over the whole registry.
func SolverByName(name string) (Solver, bool) {
	if name == "portfolio" {
		return FromBackend(portfolio.New(portfolio.Config{}), backend.Options{}), true
	}
	b, ok := backend.Get(name)
	if !ok {
		return Solver{}, false
	}
	return FromBackend(b, backend.Options{}), true
}

// SolverNames lists every name SolverByName resolves.
func SolverNames() []string {
	return append(backend.Names(), "portfolio")
}

// Counts are the per-suite result counters, with the same rows as the
// paper's tables.
type Counts struct {
	Sat       int
	Unsat     int
	Unknown   int
	Timeout   int
	Incorrect int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Sat += other.Sat
	c.Unsat += other.Unsat
	c.Unknown += other.Unknown
	c.Timeout += other.Timeout
	c.Incorrect += other.Incorrect
}

// Agg aggregates solver statistics over the instances of a suite,
// summed from each run's stats tree.
type Agg struct {
	Instances int64
	Rounds    int64
	Conflicts int64
	Pivots    int64
}

// Add accumulates other into a.
func (a *Agg) Add(other Agg) {
	a.Instances += other.Instances
	a.Rounds += other.Rounds
	a.Conflicts += other.Conflicts
	a.Pivots += other.Pivots
}

// mean renders n/a.Instances with one decimal.
func (a Agg) mean(n int64) string {
	if a.Instances == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(n)/float64(a.Instances))
}

// Cell renders the aggregate as mean rounds/conflicts/pivots per
// instance.
func (a Agg) Cell() string {
	return fmt.Sprintf("%s/%s/%s", a.mean(a.Rounds), a.mean(a.Conflicts), a.mean(a.Pivots))
}

// instResult is one instance's outcome plus the statistics totals the
// suite aggregates.
type instResult struct {
	status    core.Status
	timedOut  bool
	elapsed   time.Duration
	rounds    int64
	conflicts int64
	pivots    int64
}

// SuiteResult is the full outcome of running one suite through one
// solver: the status counters, the aggregate solver statistics, and the
// per-instance wall-clock times (index-aligned with the instances).
type SuiteResult struct {
	Counts Counts
	Agg    Agg
	Times  []time.Duration
}

// RunSuite runs every instance of a suite through one solver, on up to
// workers goroutines (values <= 1 run sequentially; the counts are
// identical either way). An instance counts as TIMEOUT only when its
// context actually expired — an early "unknown" (budget exhaustion,
// incomplete fragment) stays an UNKNOWN even if it took a while.
func RunSuite(insts []*Instance, solver Solver, timeout time.Duration, workers int) SuiteResult {
	results := make([]instResult, len(insts))
	run1 := func(i int) {
		ec := engine.WithTimeout(timeout)
		start := time.Now()
		status := solver.Run(insts[i].Build(), ec)
		st := ec.Stats()
		results[i] = instResult{
			status:    status,
			timedOut:  ec.TimedOut(),
			elapsed:   time.Since(start),
			rounds:    st.Total("rounds"),
			conflicts: st.Total("conflicts"),
			pivots:    st.Total("pivots"),
		}
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	if workers <= 1 {
		for i := range insts {
			run1(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() { //lint:nocontain — run1 solves through core.SolveCtx, whose boundary contains panics
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(insts) {
						return
					}
					run1(i)
				}
			}()
		}
		wg.Wait()
	}

	var c Counts
	var agg Agg
	times := make([]time.Duration, len(insts))
	for i, inst := range insts {
		r := results[i]
		switch r.status {
		case core.StatusSat:
			if inst.Expected == ExpectUnsat {
				c.Incorrect++
			} else {
				c.Sat++
			}
		case core.StatusUnsat:
			if inst.Expected == ExpectSat {
				c.Incorrect++
			} else {
				c.Unsat++
			}
		default:
			if r.timedOut {
				c.Timeout++
			} else {
				c.Unknown++
			}
		}
		times[i] = r.elapsed
		if r.timedOut {
			// A timed-out run's counters reflect wherever the deadline
			// happened to land, which would make the aggregate row vary
			// with machine load. Completed runs (including deterministic
			// budget-exhaustion UNKNOWNs) have reproducible counters.
			continue
		}
		agg.Instances++
		agg.Rounds += r.rounds
		agg.Conflicts += r.conflicts
		agg.Pivots += r.pivots
	}
	return SuiteResult{Counts: c, Agg: agg, Times: times}
}

// Table runs all suites against all solvers and renders the result in
// the layout of the paper's Tables 1 and 2, followed by per-suite
// aggregate solver statistics. workers bounds the per-suite instance
// parallelism; the output is byte-identical for every worker count.
func Table(w io.Writer, suites []Suite, solvers []Solver, timeout time.Duration, workers int) {
	rows := []string{"SAT", "UNSAT", "UNKNOWN", "TIMEOUT", "INCORRECT"}
	pick := func(c Counts, row string) int {
		switch row {
		case "SAT":
			return c.Sat
		case "UNSAT":
			return c.Unsat
		case "UNKNOWN":
			return c.Unknown
		case "TIMEOUT":
			return c.Timeout
		default:
			return c.Incorrect
		}
	}
	fmt.Fprintf(w, "%-12s %-10s", "Suite", "Result")
	for _, s := range solvers {
		fmt.Fprintf(w, " %10s", s.Name)
	}
	fmt.Fprintln(w)
	totals := make([]Counts, len(solvers))
	aggs := make([][]Agg, len(suites))
	for si, suite := range suites {
		counts := make([]Counts, len(solvers))
		aggs[si] = make([]Agg, len(solvers))
		for i, s := range solvers {
			r := RunSuite(suite.Instances, s, timeout, workers)
			counts[i], aggs[si][i] = r.Counts, r.Agg
			totals[i].Add(counts[i])
		}
		for ri, row := range rows {
			label := ""
			if ri == 0 {
				label = suite.Name
			}
			fmt.Fprintf(w, "%-12s %-10s", label, row)
			for i := range solvers {
				fmt.Fprintf(w, " %10d", pick(counts[i], row))
			}
			fmt.Fprintln(w)
		}
	}
	for ri, row := range rows {
		label := ""
		if ri == 0 {
			label = "Total"
		}
		fmt.Fprintf(w, "%-12s %-10s", label, row)
		for i := range solvers {
			fmt.Fprintf(w, " %10d", pick(totals[i], row))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Mean statistics per instance (rounds/conflicts/pivots)")
	fmt.Fprintf(w, "%-12s", "Suite")
	for _, s := range solvers {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)
	for si, suite := range suites {
		fmt.Fprintf(w, "%-12s", suite.Name)
		for i := range solvers {
			fmt.Fprintf(w, " %22s", aggs[si][i].Cell())
		}
		fmt.Fprintln(w)
	}
}

// LuhnResult is the outcome of one solver on one checkLuhn instance.
type LuhnResult struct {
	K        int
	Status   core.Status
	TimedOut bool
	Elapsed  time.Duration
	Agg      Agg
}

// RunLuhn runs one solver over the checkLuhn family with 2..maxLoops
// loops (the paper's Table 3 workload), sequentially.
func RunLuhn(maxLoops int, solver Solver, timeout time.Duration) []LuhnResult {
	var out []LuhnResult
	for k := 2; k <= maxLoops; k++ {
		inst := Luhn(k)
		ec := engine.WithTimeout(timeout)
		start := time.Now()
		status := solver.Run(inst.Build(), ec)
		st := ec.Stats()
		out = append(out, LuhnResult{
			K:        k,
			Status:   status,
			TimedOut: ec.TimedOut(),
			Elapsed:  time.Since(start),
			Agg: Agg{
				Instances: 1,
				Rounds:    st.Total("rounds"),
				Conflicts: st.Total("conflicts"),
				Pivots:    st.Total("pivots"),
			},
		})
	}
	return out
}

// Table3 runs the checkLuhn family (the paper's Table 3) and renders
// status and time per solver and loop count, followed by aggregate
// solver statistics over the family.
func Table3(w io.Writer, maxLoops int, solvers []Solver, timeout time.Duration) {
	fmt.Fprintf(w, "%-8s", "# Loops")
	for _, s := range solvers {
		fmt.Fprintf(w, " %20s", s.Name)
	}
	fmt.Fprintln(w)
	aggs := make([]Agg, len(solvers))
	results := make([][]LuhnResult, len(solvers))
	for i, s := range solvers {
		results[i] = RunLuhn(maxLoops, s, timeout)
	}
	for ki := 0; ki <= maxLoops-2; ki++ {
		fmt.Fprintf(w, "%-8d", ki+2)
		for i := range solvers {
			r := results[i][ki]
			if !r.TimedOut {
				// See RunSuite: timed-out counters vary with load.
				aggs[i].Add(r.Agg)
			}
			cell := "UNKNOWN"
			switch r.Status {
			case core.StatusSat:
				cell = fmt.Sprintf("SAT(%v)", r.Elapsed.Round(10*time.Millisecond))
			case core.StatusUnsat:
				cell = "INCORRECT"
			default:
				if r.TimedOut {
					cell = "TIMEOUT"
				}
			}
			fmt.Fprintf(w, " %20s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Mean statistics per instance (rounds/conflicts/pivots)")
	fmt.Fprintf(w, "%-8s", "")
	for i, s := range solvers {
		fmt.Fprintf(w, " %20s", s.Name+" "+aggs[i].Cell())
	}
	fmt.Fprintln(w)
}
