package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strcon"
)

// equivInstances is the cross-mode equivalence corpus: every generator
// of the benchmark tables plus the small end of the checkLuhn family.
func equivInstances() []*Instance {
	var insts []*Instance
	for _, s := range Table1Suites(4) {
		insts = append(insts, s.Instances...)
	}
	for _, s := range Table2Suites(4) {
		insts = append(insts, s.Instances...)
	}
	for k := 2; k <= 6; k++ {
		insts = append(insts, Luhn(k))
	}
	return insts
}

// solveMode runs one instance through the decision procedure in the
// given mode. timedOut reports whether the solve hit its deadline,
// which excuses an Unknown verdict in the cross-mode comparison.
func solveMode(inst *Instance, mode core.IncrementalMode, parallel int) (res core.Result, timedOut bool) {
	prob := inst.Build()
	ec := engine.WithTimeout(30 * time.Second)
	res = core.SolveCtx(prob, core.Options{Incremental: mode, Parallel: parallel}, ec)
	return res, ec.TimedOut()
}

// checkAgreement asserts that the incremental and fresh solves of one
// instance agree: identical verdict, and each SAT model validates
// against its own fresh copy of the problem.
func checkAgreement(t *testing.T, inst *Instance, inc, fresh core.Result, incTO, freshTO bool) {
	t.Helper()
	if inc.Status != fresh.Status {
		// Equivalence holds modulo resource limits: a side that ran out
		// of time legitimately answers Unknown where the other decided.
		excused := inc.Status == core.StatusUnknown && incTO ||
			fresh.Status == core.StatusUnknown && freshTO
		if !excused {
			t.Fatalf("%s: incremental %v, fresh %v", inst.Name, inc.Status, fresh.Status)
		}
		t.Logf("%s: verdicts differ under timeout (incremental %v, fresh %v)", inst.Name, inc.Status, fresh.Status)
	}
	for _, r := range []struct {
		mode string
		res  core.Result
	}{{"incremental", inc}, {"fresh", fresh}} {
		if r.res.Status != core.StatusSat {
			continue
		}
		if r.res.Model == nil {
			t.Fatalf("%s: %s mode sat without model", inst.Name, r.mode)
		}
		if !inst.Build().Eval(r.res.Model) {
			t.Fatalf("%s: %s-mode model fails validation", inst.Name, r.mode)
		}
	}
}

// TestIncrementalEquivalence solves every generator instance of the
// benchmark suites with the incremental engine on and off and requires
// identical verdicts, with every model passing the concrete validator.
func TestIncrementalEquivalence(t *testing.T) {
	for _, inst := range equivInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			inc, incTO := solveMode(inst, core.IncrementalOn, 1)
			fresh, freshTO := solveMode(inst, core.IncrementalOff, 1)
			checkAgreement(t, inst, inc, fresh, incTO, freshTO)
			if inst.Expected == ExpectSat && inc.Status == core.StatusUnsat ||
				inst.Expected == ExpectUnsat && inc.Status == core.StatusSat {
				t.Fatalf("%s: verdict %v contradicts ground truth %v", inst.Name, inc.Status, inst.Expected)
			}
		})
	}
}

// TestIncrementalParallelSessions exercises per-branch sessions under
// the parallel branch race (run with -race to check the sessions stay
// confined to their workers) and requires the parallel verdicts and
// models to match the sequential ones in both modes.
func TestIncrementalParallelSessions(t *testing.T) {
	var insts []*Instance
	for _, s := range Table1Suites(2) {
		insts = append(insts, s.Instances...)
	}
	for _, s := range Table2Suites(2) {
		insts = append(insts, s.Instances...)
	}
	for _, inst := range insts {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			for _, mode := range []core.IncrementalMode{core.IncrementalOn, core.IncrementalOff} {
				seq, _ := solveMode(inst, mode, 1)
				par, _ := solveMode(inst, mode, 4)
				if seq.Status != par.Status {
					t.Fatalf("%s mode %d: sequential %v, parallel %v", inst.Name, mode, seq.Status, par.Status)
				}
				if seq.Status == core.StatusSat && !modelsEqual(seq.Model, par.Model) {
					t.Fatalf("%s mode %d: parallel model differs from sequential", inst.Name, mode)
				}
			}
		})
	}
}

// modelsEqual compares the string parts and the integer parts of two
// assignments.
func modelsEqual(a, b *strcon.Assignment) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Str) != len(b.Str) {
		return false
	}
	for v, s := range a.Str {
		if b.Str[v] != s {
			return false
		}
	}
	if len(a.Int) != len(b.Int) {
		return false
	}
	for v, x := range a.Int {
		y, ok := b.Int[v]
		if !ok || x.Cmp(y) != 0 {
			return false
		}
	}
	return true
}
