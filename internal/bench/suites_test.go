package bench

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestSuitesAreDeterministic(t *testing.T) {
	a := Table1Suites(10)
	b := Table1Suites(10)
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Instances) != len(b[i].Instances) {
			t.Fatalf("suite %d differs", i)
		}
		for j := range a[i].Instances {
			if a[i].Instances[j].Name != b[i].Instances[j].Name ||
				a[i].Instances[j].Expected != b[i].Instances[j].Expected {
				t.Fatalf("instance %s differs between generations", a[i].Instances[j].Name)
			}
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	for _, s := range Table1Suites(17) {
		if len(s.Instances) != 17 {
			t.Errorf("suite %s: %d instances, want 17", s.Name, len(s.Instances))
		}
	}
	for _, s := range Table2Suites(9) {
		if len(s.Instances) != 9 {
			t.Errorf("suite %s: %d instances, want 9", s.Name, len(s.Instances))
		}
	}
}

// TestGroundTruthAgainstSolver validates the planted expected statuses
// on a sample: whenever the solver decides, it must agree.
func TestGroundTruthAgainstSolver(t *testing.T) {
	suites := append(Table1Suites(6), Table2Suites(6)...)
	checked := 0
	for _, suite := range suites {
		for _, inst := range suite.Instances {
			res := core.Solve(inst.Build(), core.Options{Timeout: 5 * time.Second})
			if res.Status == core.StatusUnknown {
				continue
			}
			checked++
			want := core.StatusSat
			if inst.Expected == ExpectUnsat {
				want = core.StatusUnsat
			}
			if res.Status != want {
				t.Errorf("%s/%s: solver says %v, generator planted %v",
					suite.Name, inst.Name, res.Status, inst.Expected)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d instances decided; sample too small", checked)
	}
}

func TestRunSuiteClassification(t *testing.T) {
	insts := Table2Suites(4)[0].Instances
	counts := RunSuite(insts, Solvers()[0], 5*time.Second, 1).Counts
	if counts.Sat+counts.Unsat+counts.Unknown+counts.Timeout+counts.Incorrect != len(insts) {
		t.Fatalf("counts %+v do not add up to %d", counts, len(insts))
	}
	if counts.Incorrect != 0 {
		t.Fatalf("%d incorrect answers", counts.Incorrect)
	}
}
