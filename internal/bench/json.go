package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
)

// JSONConfig records the benchmark configuration a report was produced
// under, so deltas are only computed between comparable runs.
type JSONConfig struct {
	Tables    []string `json:"tables"`
	PerSuite  int      `json:"per_suite,omitempty"`
	MaxLoops  int      `json:"max_loops,omitempty"`
	TimeoutMS int64    `json:"timeout_ms"`
	Workers   int      `json:"workers"`
}

// JSONSuite is one (suite, solver) row of a machine-readable report.
type JSONSuite struct {
	Table  string `json:"table"`
	Suite  string `json:"suite"`
	Solver string `json:"solver"`

	Instances int `json:"instances"`
	Sat       int `json:"sat"`
	Unsat     int `json:"unsat"`
	Unknown   int `json:"unknown"`
	Timeout   int `json:"timeout"`
	Incorrect int `json:"incorrect"`

	MeanMS   float64 `json:"mean_ms"`
	MedianMS float64 `json:"median_ms"`

	// The statistics means below are computed over StatsInstances runs:
	// the ones that finished before their deadline. StatsExcludedTimeouts
	// says how many runs were dropped from the means (not the same thing
	// as the Timeout verdict count — a run that settles just after its
	// deadline lands is excluded here yet not an UNKNOWN), so a consumer
	// can tell "excluded" from "absent".
	StatsInstances        int `json:"stats_instances"`
	StatsExcludedTimeouts int `json:"stats_excluded_timeouts"`

	MeanRounds    float64 `json:"mean_rounds"`
	MeanConflicts float64 `json:"mean_conflicts"`
	MeanPivots    float64 `json:"mean_pivots"`
}

// JSONInstance is one instance of a per-instance family (Table 3).
type JSONInstance struct {
	Name   string  `json:"name"`
	Status string  `json:"status"`
	MS     float64 `json:"ms"`
	Rounds int64   `json:"rounds"`
}

// JSONReport is the machine-readable benchmark report emitted by
// benchtab -json and checked in as BENCH_BASELINE.json.
type JSONReport struct {
	Config    JSONConfig     `json:"config"`
	Suites    []JSONSuite    `json:"suites"`
	Instances []JSONInstance `json:"instances,omitempty"`
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*10) / 10
}

func meanMedianMS(times []time.Duration) (mean, median float64) {
	if len(times) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, t := range sorted {
		total += t
	}
	mean = ms(total / time.Duration(len(sorted)))
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		median = ms(sorted[mid])
	} else {
		median = ms((sorted[mid-1] + sorted[mid]) / 2)
	}
	return mean, median
}

func jsonSuite(table, suite, solver string, r SuiteResult) JSONSuite {
	mean, median := meanMedianMS(r.Times)
	// Statistics means are over the runs that finished on their own
	// (Agg excludes timed-out runs, whose counters depend on machine
	// load); the instance count stays the full suite size.
	n := r.Agg.Instances
	frac := func(v int64) float64 {
		if n == 0 {
			return 0
		}
		return math.Round(float64(v)/float64(n)*10) / 10
	}
	c := r.Counts
	instances := c.Sat + c.Unsat + c.Unknown + c.Timeout + c.Incorrect
	return JSONSuite{
		Table:                 table,
		Suite:                 suite,
		Solver:                solver,
		Instances:             instances,
		Sat:                   r.Counts.Sat,
		Unsat:                 r.Counts.Unsat,
		Unknown:               r.Counts.Unknown,
		Timeout:               r.Counts.Timeout,
		Incorrect:             r.Counts.Incorrect,
		MeanMS:                mean,
		MedianMS:              median,
		StatsInstances:        int(n),
		StatsExcludedTimeouts: instances - int(n),
		MeanRounds:            frac(r.Agg.Rounds),
		MeanConflicts:         frac(r.Agg.Conflicts),
		MeanPivots:            frac(r.Agg.Pivots),
	}
}

// TableJSON runs the given suites against all solvers and appends the
// per-suite rows to the report.
func TableJSON(rep *JSONReport, table string, suites []Suite, solvers []Solver, timeout time.Duration, workers int) {
	for _, suite := range suites {
		for _, s := range solvers {
			r := RunSuite(suite.Instances, s, timeout, workers)
			rep.Suites = append(rep.Suites, jsonSuite(table, suite.Name, s.Name, r))
		}
	}
}

// Table3JSON runs the checkLuhn family against all solvers and appends
// one suite row per solver plus per-instance rows for the first solver
// (the solver under measurement).
func Table3JSON(rep *JSONReport, maxLoops int, solvers []Solver, timeout time.Duration) {
	for i, s := range solvers {
		results := RunLuhn(maxLoops, s, timeout)
		var sr SuiteResult
		for _, r := range results {
			sr.Times = append(sr.Times, r.Elapsed)
			if !r.TimedOut {
				sr.Agg.Add(r.Agg)
			}
			switch r.Status {
			case core.StatusSat:
				sr.Counts.Sat++
			case core.StatusUnsat:
				sr.Counts.Unsat++
			default:
				if r.TimedOut {
					sr.Counts.Timeout++
				} else {
					sr.Counts.Unknown++
				}
			}
			if i == 0 {
				status := r.Status.String()
				if r.Status == core.StatusUnknown && r.TimedOut {
					status = "timeout"
				}
				rep.Instances = append(rep.Instances, JSONInstance{
					Name:   fmt.Sprintf("luhn-%02d", r.K),
					Status: status,
					MS:     ms(r.Elapsed),
					Rounds: r.Agg.Rounds,
				})
			}
		}
		rep.Suites = append(rep.Suites, jsonSuite("3", "checkLuhn", s.Name, sr))
	}
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
