package bench

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strcon"
)

// TestTimeoutClassification pins the TIMEOUT/UNKNOWN split: an instance
// is a TIMEOUT only when its context actually expired, never merely
// because the solver gave up.
func TestTimeoutClassification(t *testing.T) {
	insts := Table1Suites(2)[0].Instances

	giveUp := Solver{Name: "give-up", Run: func(_ *strcon.Problem, _ *engine.Ctx) core.Status {
		return core.StatusUnknown
	}}
	c := RunSuite(insts, giveUp, time.Minute, 1).Counts
	if c.Timeout != 0 || c.Unknown != len(insts) {
		t.Fatalf("instant unknowns classified as %+v, want all UNKNOWN", c)
	}

	spin := Solver{Name: "spin", Run: func(_ *strcon.Problem, ec *engine.Ctx) core.Status {
		for !ec.Poll() {
		}
		return core.StatusUnknown
	}}
	c = RunSuite(insts, spin, 30*time.Millisecond, 1).Counts
	if c.Unknown != 0 || c.Timeout != len(insts) {
		t.Fatalf("deadline-bound unknowns classified as %+v, want all TIMEOUT", c)
	}
}

// TestTableParallelByteIdentical is the -j acceptance check: rendering
// the tables with a worker pool must produce byte-identical output to
// the sequential run, for any worker count. The portfolio row is
// excluded here: its verdicts are deterministic (see the portfolio
// differential tests) but its aggregate conflict/pivot counters depend
// on which racing backend gets cancelled first, which is timing.
func TestTableParallelByteIdentical(t *testing.T) {
	suites := []Suite{Table1Suites(3)[1], Table2Suites(3)[0]}
	solvers := Solvers()[:3]
	timeout := 20 * time.Second

	var seq bytes.Buffer
	Table(&seq, suites, solvers, timeout, 1)
	for _, workers := range []int{2, 4} {
		var par bytes.Buffer
		Table(&par, suites, solvers, timeout, workers)
		if par.String() != seq.String() {
			t.Fatalf("workers=%d output differs from sequential:\n%s\nvs\n%s",
				workers, par.String(), seq.String())
		}
	}
}
