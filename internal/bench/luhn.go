// Package bench generates the benchmark workloads of the paper's
// evaluation (§9): the checkLuhn family (Table 3), basic-string-
// constraint suites in the style of PyEx, LeetCode, StringFuzz,
// cvc4pred and cvc4term (Table 1), and string-number conversion suites
// in the style of the LeetCode/PythonLib/JavaScript corpora (Table 2).
// All generators are deterministic given their seeds.
package bench

import (
	"fmt"

	"repro/internal/lia"
	"repro/internal/regex"
	"repro/internal/strcon"
)

// Instance is one benchmark problem with its ground-truth status when
// known (Unknown means the generator cannot certify it). Build returns
// a fresh problem each call: solvers mutate problems (Prepare), so each
// run gets its own copy.
type Instance struct {
	Name     string
	Build    func() *strcon.Problem
	Expected Expected
}

// Expected is the ground-truth satisfiability of an instance.
type Expected int

// Ground-truth values.
const (
	ExpectUnknown Expected = iota
	ExpectSat
	ExpectUnsat
)

func (e Expected) String() string {
	switch e {
	case ExpectSat:
		return "sat"
	case ExpectUnsat:
		return "unsat"
	}
	return "unknown"
}

// Luhn builds the path-feasibility constraint of the checkLuhn program
// from §1 for an input of k digits (the paper's Table 3 instances,
// parameterized 2..12): the input is a nonzero-digit string of length
// k, each character is converted to a number, every second digit from
// the right is doubled (minus nine when above nine), and the decimal
// representation of the sum must end in "0".
//
// charAt(value,i) is expressed by splitting value into k single-
// character variables in one word equation; the final test
// charAt(s,|s|-1) = "0" is expressed as s = pre·"0" (equivalent
// desugarings of the same constraints).
func Luhn(k int) *Instance {
	return &Instance{
		Name:     fmt.Sprintf("luhn-%02d", k),
		Build:    func() *strcon.Problem { return buildLuhn(k) },
		Expected: ExpectSat, // a valid Luhn number exists for every k >= 2
	}
}

func buildLuhn(k int) *strcon.Problem {
	prob := strcon.NewProblem()
	value := prob.NewStrVar("value0")
	prob.Add(&strcon.Membership{X: value, A: regex.MustCompile("[1-9]+"), Pattern: "[1-9]+"})
	prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(value), int64(k))})

	// value0 = c_0 ... c_{k-1}, one character each.
	chars := make([]strcon.Var, k)
	term := make(strcon.Term, k)
	for i := range chars {
		chars[i] = prob.NewStrVar(fmt.Sprintf("c%d", i))
		term[i] = strcon.TV(chars[i])
		prob.Add(&strcon.Arith{F: lia.EqConst(prob.LenVar(chars[i]), 1)})
	}
	prob.Add(&strcon.WordEq{L: strcon.T(strcon.TV(value)), R: term})

	// d_i = toNum(c_i); sum accumulates with the doubling rule on every
	// second digit from the right.
	sum := lia.NewLin()
	for i := 0; i < k; i++ {
		d := prob.NewIntVar(fmt.Sprintf("d%d", i))
		prob.Add(&strcon.ToNum{N: d, X: chars[i]})
		fromRight := k - 1 - i
		if fromRight%2 == 0 {
			sum.AddTermInt(d, 1)
			continue
		}
		// e = ite(2d > 9, 2d-9, 2d), a pure integer disjunction.
		e := prob.NewIntVar(fmt.Sprintf("e%d", i))
		dbl := lia.V(d).ScaleInt(2)
		prob.Add(&strcon.Arith{F: lia.Or(
			lia.And(lia.Ge(dbl.Clone(), lia.Const(10)), lia.Eq(lia.V(e), dbl.Clone().AddConst(-9))),
			lia.And(lia.Le(dbl.Clone(), lia.Const(9)), lia.Eq(lia.V(e), dbl.Clone())),
		)})
		sum.AddTermInt(e, 1)
	}
	total := prob.NewIntVar("sum")
	prob.Add(&strcon.Arith{F: lia.Eq(lia.V(total), sum)})

	// last digit of toStr(sum) is '0'.
	sumStr := prob.NewStrVar("sumStr")
	pre := prob.NewStrVar("sumPre")
	prob.Add(&strcon.ToStr{N: total, X: sumStr})
	prob.Add(&strcon.WordEq{
		L: strcon.T(strcon.TV(sumStr)),
		R: strcon.T(strcon.TV(pre), strcon.TC("0")),
	})
	return prob
}
