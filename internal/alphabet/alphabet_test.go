package alphabet

import (
	"testing"
	"testing/quick"
)

func TestDigitCodes(t *testing.T) {
	for d := byte('0'); d <= '9'; d++ {
		if got := Code(d); got != int(d-'0') {
			t.Errorf("Code(%q) = %d, want %d", d, got, d-'0')
		}
	}
}

func TestBijection(t *testing.T) {
	seen := make(map[int]byte)
	for b := 0; b < 256; b++ {
		c := Code(byte(b))
		if c < 0 || c > MaxCode {
			t.Fatalf("Code(%d) = %d out of range", b, c)
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("code %d assigned to both %d and %d", c, prev, b)
		}
		seen[c] = byte(b)
		if back := Byte(c); back != byte(b) {
			t.Fatalf("Byte(Code(%d)) = %d", b, back)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return Decode(Encode(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeRangesCoverExactly(t *testing.T) {
	cases := []struct{ lo, hi byte }{
		{'0', '9'}, {'a', 'z'}, {0, 255}, {'!', 'A'}, {'5', 'x'}, {'0', '0'}, {' ', '/'},
	}
	for _, c := range cases {
		rs := CodeRanges(c.lo, c.hi)
		inRanges := func(code int) bool {
			for _, r := range rs {
				if r.Contains(code) {
					return true
				}
			}
			return false
		}
		for b := 0; b < 256; b++ {
			want := byte(b) >= c.lo && byte(b) <= c.hi
			if got := inRanges(Code(byte(b))); got != want {
				t.Errorf("range [%q,%q]: byte %d covered=%v want %v", c.lo, c.hi, b, got, want)
			}
		}
	}
}

func TestIsDigit(t *testing.T) {
	for code := -1; code <= MaxCode; code++ {
		want := code >= 0 && code <= 9
		if IsDigit(code) != want {
			t.Errorf("IsDigit(%d) = %v", code, !want)
		}
	}
}
