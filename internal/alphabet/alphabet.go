// Package alphabet fixes the bijection between characters (bytes) and
// the numeric symbols used throughout the solver. Following the paper
// (§3) the digits '0'..'9' are mapped to the numbers 0..9 so that
// string-number conversion constraints read digit values directly off
// character variables; every other byte is mapped bijectively into
// 10..255. The empty word ε is encoded by the number -1 (the paper's
// Ψ_last uses v = -1 for exactly this purpose).
package alphabet

import "repro/internal/automata"

// Epsilon is the numeric encoding of ε in character-variable
// interpretations.
const Epsilon = -1

// MaxCode is the largest character code.
const MaxCode = 255

// Code maps a byte to its numeric symbol.
func Code(b byte) int {
	switch {
	case '0' <= b && b <= '9':
		return int(b - '0')
	case b < '0':
		return int(b) + 10
	default:
		return int(b)
	}
}

// Byte maps a numeric symbol back to its byte. It panics on codes
// outside [0, MaxCode], which indicates an encoding bug in the caller.
func Byte(code int) byte {
	switch {
	case 0 <= code && code <= 9:
		return byte('0' + code)
	case 10 <= code && code <= 57:
		return byte(code - 10)
	case 58 <= code && code <= MaxCode:
		return byte(code)
	}
	// contract: callers validate codes first (decode paths use decodeChar).
	panic("alphabet: code out of range")
}

// Encode maps a string to its symbol sequence.
func Encode(s string) []int {
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = Code(s[i])
	}
	return out
}

// Decode maps a symbol sequence back to a string.
func Decode(codes []int) string {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = Byte(c)
	}
	return string(out)
}

// IsDigit reports whether the code is a decimal digit symbol.
func IsDigit(code int) bool { return 0 <= code && code <= 9 }

// CodeRanges converts an inclusive byte range into the equivalent set
// of code ranges. Because digits are relocated to 0..9, a byte range
// can split into up to three code ranges.
func CodeRanges(lo, hi byte) []automata.Range {
	if lo > hi {
		return nil
	}
	var out []automata.Range
	// Segment below '0': codes b+10.
	if lo < '0' {
		h := hi
		if h >= '0' {
			h = '0' - 1
		}
		out = append(out, automata.Range{Lo: int(lo) + 10, Hi: int(h) + 10})
	}
	// Digit segment: codes b-'0'.
	dl, dh := lo, hi
	if dl < '0' {
		dl = '0'
	}
	if dh > '9' {
		dh = '9'
	}
	if dl <= dh && dl >= '0' && dh <= '9' {
		out = append(out, automata.Range{Lo: int(dl - '0'), Hi: int(dh - '0')})
	}
	// Segment above '9': codes b.
	if hi > '9' {
		l := lo
		if l <= '9' {
			l = '9' + 1
		}
		out = append(out, automata.Range{Lo: int(l), Hi: int(hi)})
	}
	return out
}

// AnyRange is the full symbol range.
var AnyRange = automata.Range{Lo: 0, Hi: MaxCode}
