package lia

import (
	"math/big"
	"math/rand"
	"testing"
)

func mustSat(t *testing.T, f Formula) Model {
	t.Helper()
	res, m := Solve(f, nil)
	if res != ResSat {
		t.Fatalf("Solve = %v, want sat", res)
	}
	if !Eval(f, m) {
		t.Fatalf("model does not satisfy formula")
	}
	return m
}

func mustUnsat(t *testing.T, f Formula) {
	t.Helper()
	res, _ := Solve(f, nil)
	if res != ResUnsat {
		t.Fatalf("Solve = %v, want unsat", res)
	}
}

func TestTrivial(t *testing.T) {
	mustSat(t, True)
	mustUnsat(t, False)
}

func TestSingleAtom(t *testing.T) {
	p := NewPool()
	x := p.Fresh("x")
	mustSat(t, Ge(V(x), Const(5)))
	mustUnsat(t, And(Ge(V(x), Const(5)), Le(V(x), Const(4))))
}

func TestEquationSystem(t *testing.T) {
	p := NewPool()
	x, y := p.Fresh("x"), p.Fresh("y")
	// x + y = 10, x - y = 4 -> x=7, y=3
	f := And(
		Eq(V(x).Add(V(y)), Const(10)),
		Eq(V(x).Sub(V(y)), Const(4)),
	)
	m := mustSat(t, f)
	if m.Int64(x) != 7 || m.Int64(y) != 3 {
		t.Fatalf("got x=%v y=%v, want 7,3", m.Value(x), m.Value(y))
	}
}

func TestIntegrality(t *testing.T) {
	p := NewPool()
	x := p.Fresh("x")
	// 2x = 7 has no integer solution.
	mustUnsat(t, Eq(V(x).ScaleInt(2), Const(7)))
	// 2x+4y = 6 has solutions; 2x+4y = 7 does not.
	y := p.Fresh("y")
	mustSat(t, Eq(V(x).ScaleInt(2).Add(V(y).ScaleInt(4)), Const(6)))
	mustUnsat(t, Eq(V(x).ScaleInt(2).Add(V(y).ScaleInt(4)), Const(7)))
}

func TestDisjunction(t *testing.T) {
	p := NewPool()
	x := p.Fresh("x")
	f := And(
		Or(Eq(V(x), Const(3)), Eq(V(x), Const(8))),
		Ge(V(x), Const(5)),
	)
	m := mustSat(t, f)
	if m.Int64(x) != 8 {
		t.Fatalf("x = %v, want 8", m.Value(x))
	}
}

func TestNotAndNe(t *testing.T) {
	p := NewPool()
	x := p.Fresh("x")
	f := And(
		Ge(V(x), Const(0)),
		Le(V(x), Const(2)),
		Ne(V(x), Const(0)),
		Ne(V(x), Const(1)),
		Ne(V(x), Const(2)),
	)
	mustUnsat(t, f)

	g := And(
		Ge(V(x), Const(0)),
		Le(V(x), Const(2)),
		Negate(Eq(V(x), Const(0))),
		Negate(Eq(V(x), Const(1))),
	)
	m := mustSat(t, g)
	if m.Int64(x) != 2 {
		t.Fatalf("x = %v, want 2", m.Value(x))
	}
}

func TestBigCoefficients(t *testing.T) {
	p := NewPool()
	x, n := p.Fresh("x"), p.Fresh("n")
	// n = 10^25 * x, n >= 10^25, x <= 1 -> x = 1.
	pow := new(big.Int).Exp(big.NewInt(10), big.NewInt(25), nil)
	f := And(
		Eq(V(n), V(x).Scale(pow)),
		Ge(V(n), ConstBig(pow)),
		Le(V(x), Const(1)),
	)
	m := mustSat(t, f)
	if m.Value(x).Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("x = %v, want 1", m.Value(x))
	}
	if m.Value(n).Cmp(pow) != 0 {
		t.Fatalf("n = %v, want 10^25", m.Value(n))
	}
}

func TestImpliesIff(t *testing.T) {
	p := NewPool()
	x, y := p.Fresh("x"), p.Fresh("y")
	f := And(
		Implies(Ge(V(x), Const(1)), Ge(V(y), Const(10))),
		Ge(V(x), Const(5)),
		Le(V(y), Const(9)),
	)
	mustUnsat(t, f)

	g := And(
		Iff(Ge(V(x), Const(1)), Ge(V(y), Const(10))),
		Le(V(x), Const(0)),
		Ge(V(y), Const(10)),
	)
	mustUnsat(t, g)
}

func TestNestedBooleans(t *testing.T) {
	p := NewPool()
	x, y, z := p.Fresh("x"), p.Fresh("y"), p.Fresh("z")
	f := And(
		Or(
			And(Eq(V(x), Const(1)), Eq(V(y), Const(2))),
			And(Eq(V(x), Const(3)), Eq(V(y), Const(4))),
		),
		Eq(V(z), V(x).Add(V(y))),
		Ge(V(z), Const(6)),
	)
	m := mustSat(t, f)
	if m.Int64(x) != 3 || m.Int64(y) != 4 || m.Int64(z) != 7 {
		t.Fatalf("got x=%v y=%v z=%v", m.Value(x), m.Value(y), m.Value(z))
	}
}

func TestUnboundedDirections(t *testing.T) {
	p := NewPool()
	x, y := p.Fresh("x"), p.Fresh("y")
	// x can be arbitrarily negative; formula still sat.
	mustSat(t, And(Le(V(x), Const(-1000)), Ge(V(y).Sub(V(x)), Const(2000))))
}

// TestRandomAgainstBruteForce compares Solve against exhaustive search
// over a small box, on random boolean combinations of linear atoms.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPool()
	vars := []Var{p.Fresh("a"), p.Fresh("b"), p.Fresh("c")}

	randAtom := func() Formula {
		e := NewLin()
		for _, v := range vars {
			e.AddTermInt(v, int64(rng.Intn(5)-2))
		}
		e.AddConst(int64(rng.Intn(9) - 4))
		ops := []Rel{LE, LT, GE, GT, EQ, NE}
		f := Cmp(e, ops[rng.Intn(len(ops))], Const(0))
		return f
	}
	var randFormula func(depth int) Formula
	randFormula = func(depth int) Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			return randAtom()
		}
		n := 2 + rng.Intn(2)
		args := make([]Formula, n)
		for i := range args {
			args[i] = randFormula(depth - 1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(args...)
		case 1:
			return Or(args...)
		default:
			return Negate(And(args...))
		}
	}

	for iter := 0; iter < 150; iter++ {
		f := randFormula(2)
		// Constrain to the box [-3,3]^3 so brute force is exact.
		box := make([]Formula, 0, 7)
		box = append(box, f)
		for _, v := range vars {
			box = append(box, Ge(V(v), Const(-3)), Le(V(v), Const(3)))
		}
		g := And(box...)

		want := false
		m := Model{}
		for a := int64(-3); a <= 3 && !want; a++ {
			for b := int64(-3); b <= 3 && !want; b++ {
				for c := int64(-3); c <= 3 && !want; c++ {
					m[vars[0]] = big.NewInt(a)
					m[vars[1]] = big.NewInt(b)
					m[vars[2]] = big.NewInt(c)
					if Eval(g, m) {
						want = true
					}
				}
			}
		}

		res, model := Solve(g, nil)
		if res == ResUnknown {
			t.Fatalf("iter %d: unexpected unknown", iter)
		}
		if (res == ResSat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v formula=%s", iter, res, want, String(g, p))
		}
		if res == ResSat && !Eval(g, model) {
			t.Fatalf("iter %d: returned model invalid", iter)
		}
	}
}

func TestEvalAndString(t *testing.T) {
	p := NewPool()
	x := p.Fresh("x")
	f := And(Ge(V(x), Const(1)), Negate(Eq(V(x), Const(2))))
	m := Model{x: big.NewInt(3)}
	if !Eval(f, m) {
		t.Errorf("Eval = false, want true")
	}
	m[x] = big.NewInt(2)
	if Eval(f, m) {
		t.Errorf("Eval = true, want false")
	}
	if s := String(f, p); s == "" {
		t.Errorf("String returned empty")
	}
}

func TestLinExprOps(t *testing.T) {
	p := NewPool()
	x, y := p.Fresh("x"), p.Fresh("y")
	e := V(x).ScaleInt(3).Add(V(y)).AddConst(5) // 3x + y + 5
	m := Model{x: big.NewInt(2), y: big.NewInt(-1)}
	if got := e.Eval(m); got.Int64() != 10 {
		t.Fatalf("eval = %v, want 10", got)
	}
	e2 := e.Clone().Sub(V(y)) // 3x + 5
	if got := e2.Eval(m); got.Int64() != 11 {
		t.Fatalf("eval2 = %v, want 11", got)
	}
	if e2.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1", e2.NumTerms())
	}
	// Cancelling terms.
	e3 := V(x).Sub(V(x))
	if k, ok := e3.IsConst(); !ok || k.Sign() != 0 {
		t.Fatalf("x - x should be constant 0")
	}
}

func TestCanonAtomSharing(t *testing.T) {
	p := NewPool()
	x, y := p.Fresh("x"), p.Fresh("y")
	// 2x+2y <= 4 and x+y >= 5 must share the same combination key.
	k1, _, b1, up1 := canonAtom(V(x).ScaleInt(2).Add(V(y).ScaleInt(2)).AddConst(-4))
	k2, _, b2, up2 := canonAtom(V(x).Neg().Sub(V(y)).AddConst(5))
	if k1 != k2 {
		t.Fatalf("keys differ: %q vs %q", k1, k2)
	}
	if !up1 || b1.Int64() != 2 {
		t.Fatalf("atom1: upper=%v bound=%v, want upper bound 2", up1, b1)
	}
	if up2 || b2.Int64() != 5 {
		t.Fatalf("atom2: upper=%v bound=%v, want lower bound 5", up2, b2)
	}
}

func TestDeadline(t *testing.T) {
	// A formula that takes some search: magic series-like constraints.
	p := NewPool()
	n := 9
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = p.Fresh("")
	}
	var fs []Formula
	sum := NewLin()
	for i, v := range vs {
		fs = append(fs, Ge(V(v), Const(0)), Le(V(v), Const(int64(n))))
		sum.AddTermInt(v, int64(i+1))
	}
	fs = append(fs, Eq(sum, Const(int64(n*n))))
	f := And(fs...)
	res, m := Solve(f, nil)
	if res != ResSat {
		t.Fatalf("got %v", res)
	}
	if !Eval(f, m) {
		t.Fatalf("bad model")
	}
}
