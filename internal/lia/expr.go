package lia

import (
	"math/big"
	"sort"
	"strings"
)

// LinExpr is a sparse linear expression sum(coeff_i * var_i) + k with
// arbitrary-precision integer coefficients. The numeric PFA flattening
// produces coefficients up to 10^m, which overflow int64 for large m,
// hence big.Int throughout.
//
// LinExpr values are mutable; the arithmetic methods modify and return
// the receiver so expressions can be built fluently. Use Clone when a
// value must be preserved.
type LinExpr struct {
	terms map[Var]*big.Int
	k     *big.Int
}

// NewLin returns the zero expression.
func NewLin() *LinExpr {
	return &LinExpr{terms: make(map[Var]*big.Int), k: new(big.Int)}
}

// Const returns the constant expression k.
func Const(k int64) *LinExpr {
	e := NewLin()
	e.k.SetInt64(k)
	return e
}

// ConstBig returns the constant expression k.
func ConstBig(k *big.Int) *LinExpr {
	e := NewLin()
	e.k.Set(k)
	return e
}

// V returns the expression consisting of the single variable v.
func V(v Var) *LinExpr {
	e := NewLin()
	e.terms[v] = big.NewInt(1)
	return e
}

// Clone returns a deep copy of e.
func (e *LinExpr) Clone() *LinExpr {
	c := &LinExpr{terms: make(map[Var]*big.Int, len(e.terms)), k: new(big.Int).Set(e.k)}
	for v, a := range e.terms {
		c.terms[v] = new(big.Int).Set(a)
	}
	return c
}

// AddTerm adds coeff*v to e and returns e.
func (e *LinExpr) AddTerm(v Var, coeff *big.Int) *LinExpr {
	if coeff.Sign() == 0 {
		return e
	}
	if cur, ok := e.terms[v]; ok {
		cur.Add(cur, coeff)
		if cur.Sign() == 0 {
			delete(e.terms, v)
		}
	} else {
		e.terms[v] = new(big.Int).Set(coeff)
	}
	return e
}

// AddTermInt adds coeff*v to e and returns e.
func (e *LinExpr) AddTermInt(v Var, coeff int64) *LinExpr {
	return e.AddTerm(v, big.NewInt(coeff))
}

// AddConst adds k to the constant part and returns e.
func (e *LinExpr) AddConst(k int64) *LinExpr {
	e.k.Add(e.k, big.NewInt(k))
	return e
}

// AddConstBig adds k to the constant part and returns e.
func (e *LinExpr) AddConstBig(k *big.Int) *LinExpr {
	e.k.Add(e.k, k)
	return e
}

// Add adds o to e (term-wise) and returns e.
func (e *LinExpr) Add(o *LinExpr) *LinExpr {
	for v, a := range o.terms {
		e.AddTerm(v, a)
	}
	e.k.Add(e.k, o.k)
	return e
}

// Sub subtracts o from e and returns e.
func (e *LinExpr) Sub(o *LinExpr) *LinExpr {
	neg := new(big.Int)
	for v, a := range o.terms {
		e.AddTerm(v, neg.Neg(a))
	}
	e.k.Sub(e.k, o.k)
	return e
}

// Scale multiplies e by c and returns e.
func (e *LinExpr) Scale(c *big.Int) *LinExpr {
	if c.Sign() == 0 {
		e.terms = make(map[Var]*big.Int)
		e.k.SetInt64(0)
		return e
	}
	for v, a := range e.terms {
		a.Mul(a, c)
		_ = v
	}
	e.k.Mul(e.k, c)
	return e
}

// ScaleInt multiplies e by c and returns e.
func (e *LinExpr) ScaleInt(c int64) *LinExpr {
	return e.Scale(big.NewInt(c))
}

// Neg negates e in place and returns e.
func (e *LinExpr) Neg() *LinExpr {
	for _, a := range e.terms {
		a.Neg(a)
	}
	e.k.Neg(e.k)
	return e
}

// IsConst reports whether e has no variable terms, and if so its value.
func (e *LinExpr) IsConst() (*big.Int, bool) {
	if len(e.terms) == 0 {
		return e.k, true
	}
	return nil, false
}

// ConstPart returns the constant part of e.
func (e *LinExpr) ConstPart() *big.Int { return e.k }

// Coeff returns the coefficient of v (zero if absent). The returned
// value must not be modified.
func (e *LinExpr) Coeff(v Var) *big.Int {
	if a, ok := e.terms[v]; ok {
		return a
	}
	return bigZero
}

// Vars returns the variables with nonzero coefficients, in ascending order.
func (e *LinExpr) Vars() []Var {
	vs := make([]Var, 0, len(e.terms))
	for v := range e.terms {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// NumTerms reports the number of variable terms.
func (e *LinExpr) NumTerms() int { return len(e.terms) }

// Eval evaluates e under the model, treating absent variables as zero.
func (e *LinExpr) Eval(m Model) *big.Int {
	res := new(big.Int).Set(e.k)
	tmp := new(big.Int)
	for v, a := range e.terms {
		val := m.Value(v)
		res.Add(res, tmp.Mul(a, val))
	}
	return res
}

var bigZero = new(big.Int)

// key returns a canonical string for the variable part of e (excluding
// the constant), used to share slack variables between atoms over the
// same linear combination.
func (e *LinExpr) key() string {
	vs := e.Vars()
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(e.terms[v].String())
		b.WriteByte('*')
		b.WriteString(itoa(int(v)))
		b.WriteByte(' ')
	}
	return b.String()
}

func itoa(n int) string {
	return big.NewInt(int64(n)).String()
}

// String renders e using the pool's variable names.
func (e *LinExpr) String(p *Pool) string {
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		a := e.terms[v]
		if first {
			first = false
		} else if a.Sign() >= 0 {
			b.WriteString(" + ")
		} else {
			b.WriteString(" ")
		}
		if a.Cmp(bigOne) == 0 {
			b.WriteString(p.Name(v))
		} else {
			b.WriteString(a.String())
			b.WriteByte('*')
			b.WriteString(p.Name(v))
		}
	}
	if first {
		return e.k.String()
	}
	if e.k.Sign() > 0 {
		b.WriteString(" + ")
		b.WriteString(e.k.String())
	} else if e.k.Sign() < 0 {
		b.WriteString(" ")
		b.WriteString(e.k.String())
	}
	return b.String()
}

var bigOne = big.NewInt(1)
