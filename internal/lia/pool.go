// Package lia implements quantifier-free linear integer arithmetic:
// formula construction, normalization, Tseitin CNF conversion, and a
// DPLL(T) satisfiability procedure built on the sat (CDCL) and simplex
// (exact-rational simplex with branch-and-bound) packages.
//
// The under-approximation module of the string solver translates string
// constraints restricted by parametric flat automata into formulas of
// this package (paper sections 6-8).
package lia

import "fmt"

// Var identifies an integer variable allocated from a Pool.
type Var int

// Pool allocates integer variables and remembers their names for
// diagnostics and model printing. The zero value is not ready for use;
// call NewPool.
type Pool struct {
	names []string
}

// NewPool returns an empty variable pool.
func NewPool() *Pool {
	return &Pool{}
}

// Fresh allocates a new variable. The name is used only for printing;
// it need not be unique.
func (p *Pool) Fresh(name string) Var {
	v := Var(len(p.names))
	if name == "" {
		name = fmt.Sprintf("v%d", v)
	}
	p.names = append(p.names, name)
	return v
}

// Name reports the name the variable was allocated with.
func (p *Pool) Name(v Var) string {
	if int(v) < 0 || int(v) >= len(p.names) {
		return fmt.Sprintf("?%d", v)
	}
	return p.names[v]
}

// Size reports how many variables have been allocated.
func (p *Pool) Size() int { return len(p.names) }

// Clone returns an independent copy of the pool: variables allocated in
// the clone do not affect the original (and vice versa). The parallel
// portfolio core gives each case-split branch a cloned pool so
// concurrent flattenings allocate identically numbered variables.
func (p *Pool) Clone() *Pool {
	return &Pool{names: append([]string(nil), p.names...)}
}
